// Package cbfww_bench holds the top-level benchmark harness: one
// testing.B benchmark per paper artifact (they regenerate the same tables
// cmd/cbfww-bench prints; see EXPERIMENTS.md for the index), plus
// micro-benchmarks of the warehouse's hot paths.
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkFig8 -benchtime=1x    # one regeneration
package cbfww_bench

import (
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cbfww/internal/core"
	"cbfww/internal/experiments"
	"cbfww/internal/gateway"
	"cbfww/internal/simweb"
	"cbfww/internal/warehouse"
	"cbfww/internal/workload"
)

// benchSeed keeps regenerated tables identical across runs.
const benchSeed = 1

// run regenerates a table b.N times and reports its row count so the
// harness fails loudly if an experiment silently produces nothing.
func run(b *testing.B, f func(int64) experiments.Table) {
	b.Helper()
	var rows int
	for i := 0; i < b.N; i++ {
		t := f(benchSeed)
		rows = len(t.Rows)
	}
	if rows == 0 {
		b.Fatal("experiment produced an empty table")
	}
	b.ReportMetric(float64(rows), "rows")
}

func noSeed(f func() experiments.Table) func(int64) experiments.Table {
	return func(int64) experiments.Table { return f() }
}

// BenchmarkTable1Capabilities regenerates Table 1 (E-T1).
func BenchmarkTable1Capabilities(b *testing.B) { run(b, noSeed(experiments.T1Capabilities)) }

// BenchmarkTable2UsageAttributes regenerates Table 2 (E-T2).
func BenchmarkTable2UsageAttributes(b *testing.B) { run(b, noSeed(experiments.T2UsageAttributes)) }

// BenchmarkClaim60PctOneTimers regenerates the §1 measurement (E-C1).
func BenchmarkClaim60PctOneTimers(b *testing.B) { run(b, experiments.C1OneTimers) }

// BenchmarkFig2SharedObjectPriority regenerates Figure 2 (E-F2).
func BenchmarkFig2SharedObjectPriority(b *testing.B) {
	run(b, noSeed(experiments.F2SharedObjectPriority))
}

// BenchmarkFig3StorageMapping regenerates Figure 3 (E-F3).
func BenchmarkFig3StorageMapping(b *testing.B) { run(b, experiments.F3StorageMapping) }

// BenchmarkFig5LogicalDocuments regenerates Figure 5 (E-F5).
func BenchmarkFig5LogicalDocuments(b *testing.B) { run(b, experiments.F5LogicalDocuments) }

// BenchmarkFig6LogicalContent regenerates Figure 6 (E-F6).
func BenchmarkFig6LogicalContent(b *testing.B) { run(b, noSeed(experiments.F6LogicalContent)) }

// BenchmarkFig7SemanticRegions regenerates Figure 7 (E-F7).
func BenchmarkFig7SemanticRegions(b *testing.B) { run(b, experiments.F7SemanticRegions) }

// BenchmarkFig8AdmissionPriority regenerates Figure 8 (E-F8).
func BenchmarkFig8AdmissionPriority(b *testing.B) { run(b, experiments.F8AdmissionPriority) }

// BenchmarkQ1PopularityQueries regenerates the §4.3 query demonstration
// (E-Q1).
func BenchmarkQ1PopularityQueries(b *testing.B) { run(b, experiments.Q1PopularityQueries) }

// BenchmarkX1FrequencyEstimators regenerates the §4.2 estimator comparison
// (E-X1).
func BenchmarkX1FrequencyEstimators(b *testing.B) { run(b, experiments.X1FrequencyEstimators) }

// BenchmarkX2TopicSensor regenerates the Topic Sensor ablation (E-X2).
func BenchmarkX2TopicSensor(b *testing.B) { run(b, experiments.X2TopicSensor) }

// BenchmarkX3BoundedBaselines regenerates the bounded-policy sweep (E-X3).
func BenchmarkX3BoundedBaselines(b *testing.B) { run(b, experiments.X3BoundedBaselines) }

// BenchmarkX4CopyControl regenerates the failure-injection table (E-X4).
func BenchmarkX4CopyControl(b *testing.B) { run(b, experiments.X4CopyControl) }

// BenchmarkX5Consistency regenerates the consistency comparison (E-X5).
func BenchmarkX5Consistency(b *testing.B) { run(b, experiments.X5Consistency) }

// BenchmarkHotSpotLifetimes regenerates the §4.4 hot-spot analysis.
func BenchmarkHotSpotLifetimes(b *testing.B) { run(b, experiments.AnalyzerHotSpots) }

// BenchmarkA1OmegaTitleWeight regenerates the ω ablation (E-A1).
func BenchmarkA1OmegaTitleWeight(b *testing.B) { run(b, experiments.A1OmegaTitleWeight) }

// BenchmarkA2RegionThreshold regenerates the region-threshold ablation
// (E-A2).
func BenchmarkA2RegionThreshold(b *testing.B) { run(b, experiments.A2RegionThreshold) }

// BenchmarkA3AdmissionDecay regenerates the admission-decay ablation
// (E-A3).
func BenchmarkA3AdmissionDecay(b *testing.B) { run(b, experiments.A3AdmissionDecay) }

// BenchmarkB1BlobDedup regenerates the content-addressed dedup
// measurement.
func BenchmarkB1BlobDedup(b *testing.B) { run(b, experiments.B1BlobDedup) }

// BenchmarkL1TertiaryLocality regenerates the §4.4 locality-of-reference
// experiment.
func BenchmarkL1TertiaryLocality(b *testing.B) { run(b, experiments.L1TertiaryLocality) }

// --- hot-path micro-benchmarks ---------------------------------------

// benchWorld builds a warmed warehouse for the micro-benchmarks.
func benchWorld(b *testing.B) (*warehouse.Warehouse, *workload.GeneratedWeb, *core.SimClock) {
	b.Helper()
	clock := core.NewSimClock(0)
	wcfg := workload.DefaultWebConfig()
	wcfg.Sites, wcfg.PagesPerSite, wcfg.Seed = 10, 50, benchSeed
	g, err := workload.GenerateWeb(clock, wcfg)
	if err != nil {
		b.Fatal(err)
	}
	w, err := warehouse.New(warehouse.DefaultConfig(), clock, g.Web)
	if err != nil {
		b.Fatal(err)
	}
	for _, u := range g.PageURLs {
		if _, err := w.Get("warm", u); err != nil {
			b.Fatal(err)
		}
		clock.Advance(1)
	}
	return w, g, clock
}

// BenchmarkWarehouseGetHit measures the resident-page serve path.
func BenchmarkWarehouseGetHit(b *testing.B) {
	w, g, clock := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clock.Advance(1)
		if _, err := w.Get("bench", g.PageURLs[i%len(g.PageURLs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWarehouseQueryMFU measures a modifier query over the populated
// warehouse.
func BenchmarkWarehouseQueryMFU(b *testing.B) {
	w, _, _ := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Query("SELECT MFU 10 p.url FROM Physical_Page p"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWarehouseQueryMention measures a MENTION scan.
func BenchmarkWarehouseQueryMention(b *testing.B) {
	w, g, _ := benchWorld(b)
	// Use a term guaranteed to exist: the first page's first title word.
	snap, ok := w.Versions().Latest(g.PageURLs[0])
	if !ok {
		b.Fatal("no content")
	}
	term := firstWord(snap.Title)
	q := fmt.Sprintf("SELECT MRU 10 p.url FROM Physical_Page p WHERE p.title MENTION '%s'", term)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWarehouseMaintain measures a full self-organization sweep.
func BenchmarkWarehouseMaintain(b *testing.B) {
	w, _, clock := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clock.Advance(3600)
		if _, err := w.Maintain(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWarehouseMinePaths measures the discovery sweep over the
// accumulated operational log.
func BenchmarkWarehouseMinePaths(b *testing.B) {
	w, _, _ := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.MinePaths(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- read-path benchmarks ---------------------------------------------

// popWorld caches the large populated warehouse the read-path benchmarks
// share: building it admits every page (each admission re-places the whole
// storage population), so it is built once per process.
var popWorld struct {
	once  sync.Once
	w     *warehouse.Warehouse
	g     *workload.GeneratedWeb
	clock *core.SimClock
	term  string
	err   error
}

// benchPopulatedWorld returns a warmed ≥5k-page warehouse plus a query term
// guaranteed to match indexed content.
func benchPopulatedWorld(b *testing.B) (*warehouse.Warehouse, *workload.GeneratedWeb, string) {
	b.Helper()
	popWorld.once.Do(func() {
		clock := core.NewSimClock(0)
		wcfg := workload.DefaultWebConfig()
		wcfg.Sites, wcfg.PagesPerSite, wcfg.Seed = 100, 50, benchSeed
		g, err := workload.GenerateWeb(clock, wcfg)
		if err != nil {
			popWorld.err = err
			return
		}
		w, err := warehouse.New(warehouse.DefaultConfig(), clock, g.Web)
		if err != nil {
			popWorld.err = err
			return
		}
		for _, u := range g.PageURLs {
			if _, err := w.Get("warm", u); err != nil {
				popWorld.err = err
				return
			}
			clock.Advance(1)
		}
		snap, ok := w.Versions().Latest(g.PageURLs[0])
		if !ok {
			popWorld.err = fmt.Errorf("populated world: no content for %s", g.PageURLs[0])
			return
		}
		popWorld.w, popWorld.g, popWorld.clock = w, g, clock
		popWorld.term = firstWord(snap.Title)
	})
	if popWorld.err != nil {
		b.Fatal(popWorld.err)
	}
	return popWorld.w, popWorld.g, popWorld.term
}

// BenchmarkSearchTieredPopulated measures ranked retrieval through the
// index hierarchy on a populated (≥5k-page) warehouse — the read path the
// hot-index maintenance strategy dominates.
func BenchmarkSearchTieredPopulated(b *testing.B) {
	w, _, term := benchPopulatedWorld(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := w.SearchTiered(term, 10)
		if len(res.Scores) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkHotIndexSizePopulated measures the membership-size probe, which
// shares the hot-index maintenance path with SearchTiered.
func BenchmarkHotIndexSizePopulated(b *testing.B) {
	w, _, _ := benchPopulatedWorld(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if w.HotIndexSize() < 0 {
			b.Fatal("negative size")
		}
	}
}

// BenchmarkQueryMFUPopulated measures the popularity-ordered query path
// (§4.3 modifiers) over ~5k physical pages.
func BenchmarkQueryMFUPopulated(b *testing.B) {
	w, _, _ := benchPopulatedWorld(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Query("SELECT MFU 10 p.url FROM Physical_Page p"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVectorCosinePopulated measures sparse-vector similarity between
// two real document vectors from the populated corpus — the primitive under
// clustering, recommendation, topic heat and admission priority.
func BenchmarkVectorCosinePopulated(b *testing.B) {
	w, g, _ := benchPopulatedWorld(b)
	snapA, okA := w.Versions().Latest(g.PageURLs[0])
	snapB, okB := w.Versions().Latest(g.PageURLs[1])
	if !okA || !okB {
		b.Fatal("no content")
	}
	va := w.Corpus().Vectorize(snapA.Title + "\n" + snapA.Body)
	vb := w.Corpus().Vectorize(snapB.Title + "\n" + snapB.Body)
	b.ReportAllocs()
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += va.Cosine(vb)
	}
	if acc < 0 {
		b.Fatal("negative similarity")
	}
}

// --- shard-scaling benchmarks -----------------------------------------

// slowOrigin adds real wall-clock latency to every body fetch, standing
// in for origin RTT. Refresh holds its shard's lock across the fetch, so
// the sleep makes lock-hold time visible: with one stripe a refresh
// stalls every reader, with N stripes it stalls only 1/N of the URL
// space.
type slowOrigin struct {
	*simweb.Web
	delay time.Duration
}

func (o *slowOrigin) Fetch(url string) (simweb.FetchResult, error) {
	time.Sleep(o.delay)
	return o.Web.Fetch(url)
}

func (o *slowOrigin) FetchCtx(ctx context.Context, url string) (simweb.FetchResult, error) {
	time.Sleep(o.delay)
	return o.Web.FetchCtx(ctx, url)
}

// benchShardedWorld builds a fully warmed warehouse with the given stripe
// count. delay > 0 puts slowOrigin in front of the generated web.
func benchShardedWorld(b *testing.B, shards int, delay time.Duration) (*warehouse.Warehouse, *workload.GeneratedWeb) {
	b.Helper()
	clock := core.NewSimClock(0)
	wcfg := workload.DefaultWebConfig()
	wcfg.Sites, wcfg.PagesPerSite, wcfg.Seed = 8, 25, benchSeed
	g, err := workload.GenerateWeb(clock, wcfg)
	if err != nil {
		b.Fatal(err)
	}
	var origin warehouse.Origin = g.Web
	if delay > 0 {
		origin = &slowOrigin{Web: g.Web, delay: delay}
	}
	cfg := warehouse.DefaultConfig()
	cfg.Shards = shards
	w, err := warehouse.New(cfg, clock, origin)
	if err != nil {
		b.Fatal(err)
	}
	for _, u := range g.PageURLs {
		if _, err := w.Get("warm", u); err != nil {
			b.Fatal(err)
		}
	}
	return w, g
}

// shardedReaders drives parallel resident-hit reads over urls, each
// worker starting at a different offset so the load spreads across
// stripes.
func shardedReaders(b *testing.B, w *warehouse.Warehouse, urls []string) {
	var worker atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		i := int(worker.Add(1)) * 7919
		for pb.Next() {
			if _, err := w.Get("bench", urls[i%len(urls)]); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

// BenchmarkShardedReadHit measures pure resident-hit throughput of the
// lock-striped warehouse under parallel readers. Run with -cpu 8 to match
// the 8-goroutine scaling check recorded in bench_tables.txt.
func BenchmarkShardedReadHit(b *testing.B) {
	for _, n := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			w, g := benchShardedWorld(b, n, 0)
			b.ResetTimer()
			shardedReaders(b, w, g.PageURLs)
		})
	}
}

// BenchmarkShardedReadUnderRefresh is the stall-isolation case the
// stripes exist for: parallel readers serve resident hits while
// background writers loop Refresh on one stripe's pages through an origin
// with 200µs of real latency. Refresh holds its shard's lock across that
// fetch, so with a single stripe every reader serializes behind the
// sleeping writers; with 8 stripes the stall is confined to the refreshed
// stripe and reads of the other seven proceed at full speed.
//
// The workload split is fixed by the 8-way FNV mapping in both cases —
// refreshers hammer pages of one stripe, readers the rest — so the only
// variable between sub-benchmarks is how many locks cover that URL space.
func BenchmarkShardedReadUnderRefresh(b *testing.B) {
	const (
		originDelay = 200 * time.Microsecond
		stripes     = 8
		refreshers  = 4
	)
	for _, n := range []int{1, stripes} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			w, g := benchShardedWorld(b, n, originDelay)
			hot := warehouse.ShardIndex(g.PageURLs[0], stripes)
			var hotURLs, readURLs []string
			for _, u := range g.PageURLs {
				if warehouse.ShardIndex(u, stripes) == hot {
					hotURLs = append(hotURLs, u)
				} else {
					readURLs = append(readURLs, u)
				}
			}
			if len(hotURLs) < refreshers || len(readURLs) == 0 {
				b.Fatalf("degenerate stripe split: %d hot, %d read", len(hotURLs), len(readURLs))
			}
			done := make(chan struct{})
			var wg sync.WaitGroup
			for r := 0; r < refreshers; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					for i := r; ; i += refreshers {
						select {
						case <-done:
							return
						default:
						}
						if _, err := w.Refresh(context.Background(), hotURLs[i%len(hotURLs)]); err != nil {
							b.Error(err)
							return
						}
					}
				}(r)
			}
			b.ResetTimer()
			shardedReaders(b, w, readURLs)
			b.StopTimer()
			close(done)
			wg.Wait()
		})
	}
}

// --- gateway (network daemon) benchmarks ------------------------------

// benchGateway stands a gateway daemon up over a fresh warehouse on a real
// test socket. warm pre-fetches every page so /fetch serves pure hits.
func benchGateway(b *testing.B, warm bool) (*httptest.Server, *workload.GeneratedWeb, *warehouse.Warehouse) {
	b.Helper()
	clock := core.NewSimClock(0)
	wcfg := workload.DefaultWebConfig()
	wcfg.Sites, wcfg.PagesPerSite, wcfg.Seed = 10, 50, benchSeed
	g, err := workload.GenerateWeb(clock, wcfg)
	if err != nil {
		b.Fatal(err)
	}
	w, err := warehouse.New(warehouse.DefaultConfig(), clock, g.Web)
	if err != nil {
		b.Fatal(err)
	}
	if warm {
		for _, u := range g.PageURLs {
			if _, err := w.Get("warm", u); err != nil {
				b.Fatal(err)
			}
		}
	}
	s, err := gateway.New(gateway.Config{}, w)
	if err != nil {
		b.Fatal(err)
	}
	return httptest.NewServer(s.Handler()), g, w
}

// BenchmarkGatewayParallelFetch measures hot-hit serving under parallel
// clients: every requested URL is already resident, so the daemon's
// read-locked serve path and the HTTP plumbing are what is being timed.
func BenchmarkGatewayParallelFetch(b *testing.B) {
	ts, g, _ := benchGateway(b, true)
	defer ts.Close()
	client := ts.Client()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			u := g.PageURLs[i%len(g.PageURLs)]
			i++
			resp, err := client.Get(ts.URL + "/fetch?url=" + u)
			if err != nil {
				b.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				b.Errorf("fetch %s = %d", u, resp.StatusCode)
				return
			}
		}
	})
}

// BenchmarkGatewayMissStorm measures the coalesced cold path: 50
// concurrent requests for one cold URL, which must cost exactly one
// origin fetch (the paper's hot-spot arrival shape, §3(3)).
func BenchmarkGatewayMissStorm(b *testing.B) {
	const storm = 50
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ts, g, w := benchGateway(b, false)
		client := ts.Client()
		cold := g.PageURLs[0]
		b.StartTimer()

		var wg sync.WaitGroup
		for j := 0; j < storm; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, err := client.Get(ts.URL + "/fetch?url=" + cold)
				if err != nil {
					b.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					b.Errorf("storm fetch = %d", resp.StatusCode)
				}
			}()
		}
		wg.Wait()

		b.StopTimer()
		if n := w.Stats().OriginFetches; n != 1 {
			b.Fatalf("miss storm cost %d origin fetches, want exactly 1", n)
		}
		ts.Close()
		b.StartTimer()
	}
	b.ReportMetric(storm, "reqs/storm")
}

func firstWord(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' {
			return s[:i]
		}
	}
	return s
}
