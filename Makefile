# Capacity Bound-free Web Warehouse — build targets.

GO ?= go

.PHONY: all build test race cover bench bench-read bench-store bench-serve test-disk test-mmap tables matrix matrix-check matrix-baseline serve faults soak fuzz cluster chaos examples clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# One regeneration of every experiment under the bench harness, plus the
# storage-tier benchmarks.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x . ./internal/storage

# Read-path microbenchmarks over the populated 5k-page world — the numbers
# behind bench_tables.txt's "read path" table (event-driven hot index +
# allocation-light top-k). Paste the output over the table when it moves.
bench-read:
	$(GO) test -bench Populated -benchmem -benchtime=2s -run '^$$' .

# Storage-tier microbenchmarks: Fetch cost per serving tier, for both the
# all-in-heap backends and the real file-backed ones — the numbers behind
# bench_tables.txt's "storage engine" table.
bench-store:
	$(GO) test -bench AccessByTier -benchmem -benchtime=2s -run '^$$' ./internal/storage/

# Serve-path gate: the warm heap-tier GET /body benchmark plus the
# allocs/op ceiling test — fails when the zero-copy serve path regresses
# to materializing bodies (CI runs this in the bench-smoke job).
bench-serve:
	$(GO) test -bench ServeBody -benchmem -benchtime=100x \
		-run 'ServeBodyHeapAllocCeiling|HeapStreamAllocs' \
		./internal/gateway/ ./internal/storage/

# The storage and warehouse suites against real file-backed tiers (what
# the storage-disk CI job runs).
test-disk:
	CBFWW_DISK_TIER=1 $(GO) test -race ./internal/storage/... ./internal/warehouse/...

# Same suites with the middle tier on the mmap arena store (what the
# storage-mmap CI job runs): CBFWW_MMAP_TIER swaps the default tier
# table's disk tier onto the mmap backend.
test-mmap:
	CBFWW_DISK_TIER=1 CBFWW_MMAP_TIER=1 $(GO) test -race ./internal/storage/... ./internal/warehouse/...

# Paper tables via the CLI (same experiments, readable output).
tables:
	$(GO) run ./cmd/cbfww-bench

# The scenario-matrix regression rig (internal/scenario). `matrix` runs
# the curated default matrix and emits BENCH_default.json + the table;
# `matrix-check` gates a fresh run of both specs against the checked-in
# baselines; `matrix-baseline` regenerates the baselines (commit the diff
# when numbers move intentionally).
MATRIX ?= scenarios/default.toml
matrix:
	$(GO) run ./cmd/cbfww-bench -matrix $(MATRIX)

matrix-check:
	$(GO) run ./cmd/cbfww-bench -matrix scenarios/smoke.toml -check -baseline scenarios/smoke.baseline.json
	$(GO) run ./cmd/cbfww-bench -matrix scenarios/default.toml -check -baseline scenarios/default.baseline.json

matrix-baseline:
	$(GO) run ./cmd/cbfww-bench -matrix scenarios/smoke.toml -out scenarios/smoke.baseline.json -tables ""
	$(GO) run ./cmd/cbfww-bench -matrix scenarios/default.toml -out scenarios/default.baseline.json -tables ""

# The warehouse as a network daemon (ctrl-C drains and exits).
serve:
	$(GO) run ./cmd/cbfww-serve

# Fault-injection drill: the daemon against a flaky / blacked-out origin.
faults:
	$(GO) test -race -v -run 'Fault|Blackout|Retries|Degrade|Stale' \
		./internal/gateway ./internal/warehouse ./internal/simweb ./cmd/cbfww-serve

# Concurrency soak: the sharded warehouse oracle and the gateway under
# fault-injecting load, twice each, under the race detector.
soak:
	$(GO) test -race -count=2 -run 'Oracle|Soak|Concurrent' \
		./internal/warehouse ./internal/gateway

# Multi-node drill: the peer ring's unit tests plus the three-daemon
# integration test (real sockets, fault-injecting origin, owner killed
# mid-test), all under the race detector.
cluster:
	$(GO) test -race -v -run 'Cluster|Ring|Peer|Proxy|Forwarded|Redirect|Owners|Healthz' \
		./internal/peers ./internal/gateway ./cmd/cbfww-serve

# Replication chaos drill: replica sets, health prober, hinted handoff,
# and the kill/restart integration test (three daemons, R=2, a replica
# killed mid-workload and restarted), all under the race detector.
chaos:
	$(GO) test -race -v -run 'Chaos|Handoff|Health|Prober|Owners|Replica' \
		./internal/peers ./internal/gateway ./internal/warehouse ./cmd/cbfww-serve

# Native fuzzing of the query lexer/parser (30s per target; crank
# FUZZTIME for a longer hunt).
FUZZTIME ?= 30s
fuzz:
	$(GO) test -fuzz FuzzParse -fuzztime $(FUZZTIME) -run '^$$' ./internal/query/
	$(GO) test -fuzz FuzzRunString -fuzztime $(FUZZTIME) -run '^$$' ./internal/query/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/loganalysis
	$(GO) run ./examples/hotspotnews
	$(GO) run ./examples/socialnav
	$(GO) run ./examples/crawler
	$(GO) run ./examples/proxywarehouse

clean:
	$(GO) clean -testcache
