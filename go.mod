module cbfww

go 1.22
