// Command cbfww-bench regenerates every table and figure of the paper's
// reproduction (see EXPERIMENTS.md for the index):
//
//	cbfww-bench                 # run everything
//	cbfww-bench -exp f8,x3      # run selected experiments
//	cbfww-bench -list           # list experiment IDs
//	cbfww-bench -seed 7         # change the workload seed
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"cbfww/internal/experiments"
)

// experiment binds an ID to its generator.
type experiment struct {
	id    string
	title string
	run   func(seed int64) experiments.Table
}

func catalog() []experiment {
	noSeed := func(f func() experiments.Table) func(int64) experiments.Table {
		return func(int64) experiments.Table { return f() }
	}
	return []experiment{
		{"t1", "Table 1: system-class comparison", noSeed(experiments.T1Capabilities)},
		{"t2", "Table 2: usage-history attributes", noSeed(experiments.T2UsageAttributes)},
		{"c1", "§1 claim: >60% one-timers", experiments.C1OneTimers},
		{"f2", "Figure 2: shared-object priority", noSeed(experiments.F2SharedObjectPriority)},
		{"f3", "Figure 3: storage-hierarchy mapping", experiments.F3StorageMapping},
		{"f5", "Figure 5: logical documents", experiments.F5LogicalDocuments},
		{"f6", "Figure 6: logical content assembly", noSeed(experiments.F6LogicalContent)},
		{"f7", "Figure 7: semantic regions", experiments.F7SemanticRegions},
		{"f8", "Figure 8: admission-time priority", experiments.F8AdmissionPriority},
		{"q1", "§4.3: popularity-aware queries", experiments.Q1PopularityQueries},
		{"x1", "§4.2: frequency estimators", experiments.X1FrequencyEstimators},
		{"x2", "§3(3): topic sensor", experiments.X2TopicSensor},
		{"x3", "bounded baselines sweep", experiments.X3BoundedBaselines},
		{"x4", "§4.4: copy control & recovery", experiments.X4CopyControl},
		{"x5", "§3(7): consistency modes", experiments.X5Consistency},
		{"hs", "§4.4: hot-spot lifetimes", experiments.AnalyzerHotSpots},
		{"a1", "ablation: §5.3 title weight ω", experiments.A1OmegaTitleWeight},
		{"a2", "ablation: region similarity threshold", experiments.A2RegionThreshold},
		{"a3", "ablation: admission-estimate decay", experiments.A3AdmissionDecay},
		{"b1", "blob store: content-addressed dedup", experiments.B1BlobDedup},
		{"l1", "§4.4: tertiary locality of reference", experiments.L1TertiaryLocality},
	}
}

func main() {
	var (
		expFlag  = flag.String("exp", "", "comma-separated experiment IDs (default: all)")
		seed     = flag.Int64("seed", 1, "workload seed")
		listOnly = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	all := catalog()
	if *listOnly {
		for _, e := range all {
			fmt.Printf("%-4s %s\n", e.id, e.title)
		}
		return
	}

	want := map[string]bool{}
	if *expFlag != "" {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.TrimSpace(strings.ToLower(id))] = true
		}
		known := map[string]bool{}
		for _, e := range all {
			known[e.id] = true
		}
		var unknown []string
		for id := range want {
			if !known[id] {
				unknown = append(unknown, id)
			}
		}
		if len(unknown) > 0 {
			sort.Strings(unknown)
			fmt.Fprintf(os.Stderr, "cbfww-bench: unknown experiment(s): %s (use -list)\n",
				strings.Join(unknown, ", "))
			os.Exit(2)
		}
	}

	for _, e := range all {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		start := time.Now()
		table := e.run(*seed)
		fmt.Println(table)
		fmt.Printf("[%s finished in %v]\n\n", e.id, time.Since(start).Round(time.Millisecond))
	}
}
