// Command cbfww-bench regenerates every table and figure of the paper's
// reproduction (see EXPERIMENTS.md for the index) and drives the
// scenario-matrix regression rig:
//
//	cbfww-bench                              # run every experiment
//	cbfww-bench -exp f8,x3                   # run selected experiments
//	cbfww-bench -exp c1 -json                # machine-readable, deterministic
//	cbfww-bench -list                        # list experiment IDs
//	cbfww-bench -seed 7                      # change the workload seed
//	cbfww-bench -matrix scenarios/default.toml          # run a matrix
//	cbfww-bench -matrix spec.toml -check -baseline b.json  # regression gate
//	cbfww-bench -check a.json b.json         # diff two saved A/B runs
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"cbfww/internal/experiments"
	"cbfww/internal/scenario"
)

// experiment binds an ID to its generator.
type experiment struct {
	id    string
	title string
	run   func(seed int64) experiments.Table
}

func catalog(tierStacks []string) []experiment {
	noSeed := func(f func() experiments.Table) func(int64) experiments.Table {
		return func(int64) experiments.Table { return f() }
	}
	return []experiment{
		{"t1", "Table 1: system-class comparison", noSeed(experiments.T1Capabilities)},
		{"t2", "Table 2: usage-history attributes", noSeed(experiments.T2UsageAttributes)},
		{"c1", "§1 claim: >60% one-timers", experiments.C1OneTimers},
		{"f2", "Figure 2: shared-object priority", noSeed(experiments.F2SharedObjectPriority)},
		{"f3", "Figure 3: storage-hierarchy mapping", experiments.F3StorageMapping},
		{"f5", "Figure 5: logical documents", experiments.F5LogicalDocuments},
		{"f6", "Figure 6: logical content assembly", noSeed(experiments.F6LogicalContent)},
		{"f7", "Figure 7: semantic regions", experiments.F7SemanticRegions},
		{"f8", "Figure 8: admission-time priority", experiments.F8AdmissionPriority},
		{"q1", "§4.3: popularity-aware queries", experiments.Q1PopularityQueries},
		{"x1", "§4.2: frequency estimators", experiments.X1FrequencyEstimators},
		{"x2", "§3(3): topic sensor", experiments.X2TopicSensor},
		{"x3", "bounded baselines sweep", experiments.X3BoundedBaselines},
		{"x4", "§4.4: copy control & recovery", experiments.X4CopyControl},
		{"x5", "§3(7): consistency modes", experiments.X5Consistency},
		{"hs", "§4.4: hot-spot lifetimes", experiments.AnalyzerHotSpots},
		{"a1", "ablation: §5.3 title weight ω", experiments.A1OmegaTitleWeight},
		{"a2", "ablation: region similarity threshold", experiments.A2RegionThreshold},
		{"a3", "ablation: admission-estimate decay", experiments.A3AdmissionDecay},
		{"b1", "blob store: content-addressed dedup", experiments.B1BlobDedup},
		{"l1", "§4.4: tertiary locality of reference", experiments.L1TertiaryLocality},
		{"tc", "access cost vs tier capacity (-tiers selects stacks)", func(seed int64) experiments.Table {
			return experiments.TierCurves(seed, tierStacks)
		}},
	}
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment injected, so tests can drive the full
// CLI (and the determinism tests can compare two -json runs byte for
// byte).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cbfww-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		expFlag  = fs.String("exp", "", "comma-separated experiment IDs (default: all)")
		seed     = fs.Int64("seed", 1, "workload seed")
		listOnly = fs.Bool("list", false, "list experiment IDs and exit")
		jsonOut  = fs.Bool("json", false, "emit experiment tables as JSON (deterministic: no timing lines)")
		matrix   = fs.String("matrix", "", "scenario spec file (.toml or .json): run the matrix instead of experiments")
		outPath  = fs.String("out", "", "matrix results path (default BENCH_<name>.json)")
		tables   = fs.String("tables", "bench_tables.txt", "append the matrix table to this file (empty disables)")
		baseline = fs.String("baseline", "", "baseline results JSON for -check (default: the -out path)")
		check    = fs.Bool("check", false, "compare the fresh matrix run against -baseline; exit 1 on regression, writing nothing")
		tiers    = fs.String("tiers", "classic,mmap", "comma-separated tier stacks for the tc experiment (classic, mmap)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var tierStacks []string
	knownStacks := map[string]bool{}
	for _, s := range experiments.TierCurveStacks {
		knownStacks[s] = true
	}
	for _, s := range strings.Split(*tiers, ",") {
		s = strings.TrimSpace(strings.ToLower(s))
		if s == "" {
			continue
		}
		if !knownStacks[s] {
			fmt.Fprintf(stderr, "cbfww-bench: unknown tier stack %q (known: %s)\n",
				s, strings.Join(experiments.TierCurveStacks, ", "))
			return 2
		}
		tierStacks = append(tierStacks, s)
	}
	if len(tierStacks) == 0 {
		tierStacks = experiments.TierCurveStacks
	}

	if *matrix != "" {
		return runMatrix(*matrix, *outPath, *tables, *baseline, *check, stdout, stderr)
	}
	if *check && fs.NArg() == 2 {
		// Two-file mode: diff a pair of saved results (A/B runs of the same
		// spec) without re-running anything.
		return diffResults(fs.Arg(0), fs.Arg(1), stdout, stderr)
	}
	if *check || *baseline != "" {
		fmt.Fprintln(stderr, "cbfww-bench: -check needs -matrix, or two results files: -check a.json b.json")
		return 2
	}

	all := catalog(tierStacks)
	if *listOnly {
		for _, e := range all {
			fmt.Fprintf(stdout, "%-4s %s\n", e.id, e.title)
		}
		return 0
	}

	want := map[string]bool{}
	if *expFlag != "" {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.TrimSpace(strings.ToLower(id))] = true
		}
		known := map[string]bool{}
		for _, e := range all {
			known[e.id] = true
		}
		var unknown []string
		for id := range want {
			if !known[id] {
				unknown = append(unknown, id)
			}
		}
		if len(unknown) > 0 {
			sort.Strings(unknown)
			fmt.Fprintf(stderr, "cbfww-bench: unknown experiment(s): %s (use -list)\n",
				strings.Join(unknown, ", "))
			return 2
		}
	}

	for _, e := range all {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		start := time.Now()
		table := e.run(*seed)
		if *jsonOut {
			data, err := table.JSON()
			if err != nil {
				fmt.Fprintf(stderr, "cbfww-bench: %s: %v\n", e.id, err)
				return 1
			}
			stdout.Write(data)
			continue
		}
		fmt.Fprintln(stdout, table)
		fmt.Fprintf(stdout, "[%s finished in %v]\n\n", e.id, time.Since(start).Round(time.Millisecond))
	}
	return 0
}

// diffResults gates fresh (the B run) against base (the A run), two saved
// matrix-results files, under the default tolerance of 5% on every gated
// metric — the offline half of an A/B comparison: run the matrix once per
// build with -out, then diff the files without re-running either side.
func diffResults(basePath, freshPath string, stdout, stderr io.Writer) int {
	load := func(path string) (*scenario.Results, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return scenario.ParseResults(data)
	}
	base, err := load(basePath)
	if err != nil {
		fmt.Fprintf(stderr, "cbfww-bench: baseline: %v\n", err)
		return 2
	}
	fresh, err := load(freshPath)
	if err != nil {
		fmt.Fprintf(stderr, "cbfww-bench: fresh: %v\n", err)
		return 2
	}
	// No spec in this mode: every gated metric gets the default slack.
	spec := &scenario.Spec{Tolerances: map[string]float64{"default": 0.05}}
	regs := scenario.Check(base, fresh, spec)
	if len(regs) == 0 {
		fmt.Fprintf(stdout, "cbfww-bench: %s: %d cells within tolerance of %s\n",
			freshPath, len(fresh.Cells), basePath)
		return 0
	}
	for _, g := range regs {
		fmt.Fprintf(stdout, "REGRESSION %s\n", g)
	}
	fmt.Fprintf(stderr, "cbfww-bench: %s: %d regression(s) against %s\n",
		freshPath, len(regs), basePath)
	return 1
}

// runMatrix loads, runs, and either emits or checks a scenario matrix.
func runMatrix(specPath, outPath, tablesPath, baselinePath string, check bool, stdout, stderr io.Writer) int {
	spec, err := scenario.Load(specPath)
	if err != nil {
		fmt.Fprintf(stderr, "cbfww-bench: %v\n", err)
		return 2
	}
	if outPath == "" {
		outPath = "BENCH_" + spec.Name + ".json"
	}

	runner := &scenario.Runner{
		Spec: spec,
		Progress: func(i, n int, id string) {
			fmt.Fprintf(stderr, "[%d/%d] %s\n", i, n, id)
		},
	}
	fresh, err := runner.Run()
	if err != nil {
		fmt.Fprintf(stderr, "cbfww-bench: %v\n", err)
		return 1
	}

	if check {
		if baselinePath == "" {
			baselinePath = outPath
		}
		baseData, err := os.ReadFile(baselinePath)
		if err != nil {
			fmt.Fprintf(stderr, "cbfww-bench: baseline: %v\n", err)
			return 2
		}
		base, err := scenario.ParseResults(baseData)
		if err != nil {
			fmt.Fprintf(stderr, "cbfww-bench: baseline: %v\n", err)
			return 2
		}
		regs := scenario.Check(base, fresh, spec)
		if len(regs) == 0 {
			fmt.Fprintf(stdout, "cbfww-bench: matrix %s: %d cells within tolerance of %s\n",
				spec.Name, len(fresh.Cells), baselinePath)
			return 0
		}
		for _, g := range regs {
			fmt.Fprintf(stdout, "REGRESSION %s\n", g)
		}
		fmt.Fprintf(stderr, "cbfww-bench: matrix %s: %d regression(s) against %s\n",
			spec.Name, len(regs), baselinePath)
		return 1
	}

	data, err := fresh.JSON()
	if err != nil {
		fmt.Fprintf(stderr, "cbfww-bench: %v\n", err)
		return 1
	}
	if dir := filepath.Dir(outPath); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintf(stderr, "cbfww-bench: %v\n", err)
			return 1
		}
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		fmt.Fprintf(stderr, "cbfww-bench: %v\n", err)
		return 1
	}
	table := fresh.Table()
	fmt.Fprintln(stdout, table)
	fmt.Fprintf(stdout, "results: %s\n", outPath)
	if tablesPath != "" {
		f, err := os.OpenFile(tablesPath, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintf(stderr, "cbfww-bench: %v\n", err)
			return 1
		}
		if _, err := fmt.Fprintf(f, "%s\n", table); err != nil {
			f.Close()
			fmt.Fprintf(stderr, "cbfww-bench: %v\n", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(stderr, "cbfww-bench: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "table appended to %s\n", tablesPath)
	}
	return 0
}
