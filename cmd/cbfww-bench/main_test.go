package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cbfww/internal/experiments"
)

// The experiment catalog must have unique, non-empty IDs and working
// generators — cmd-level sanity for the harness users script against.
func TestCatalogIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range catalog(experiments.TierCurveStacks) {
		if e.id == "" || e.title == "" || e.run == nil {
			t.Errorf("incomplete entry %+v", e)
		}
		if seen[e.id] {
			t.Errorf("duplicate experiment id %q", e.id)
		}
		seen[e.id] = true
	}
	if len(seen) < 16 {
		t.Errorf("catalog has only %d experiments", len(seen))
	}
}

// The cheap experiments must produce non-empty tables through the catalog
// wiring (the expensive ones are covered by internal/experiments tests).
func TestCatalogCheapExperimentsRun(t *testing.T) {
	cheap := map[string]bool{"t1": true, "t2": true, "f2": true, "f6": true, "x4": true, "b1": true}
	for _, e := range catalog(experiments.TierCurveStacks) {
		if !cheap[e.id] {
			continue
		}
		tb := e.run(1)
		if len(tb.Rows) == 0 {
			t.Errorf("%s produced no rows", e.id)
		}
		if tb.String() == "" {
			t.Errorf("%s renders empty", e.id)
		}
	}
}

// tinyMatrix writes a fast 2-cell spec and returns its path.
func tinyMatrix(t *testing.T, dir string) string {
	t.Helper()
	spec := `
name = "cmdtest"
[run]
sites = 3
pages_per_site = 8
sessions = 40
users = 10
length = 6000
maintain_every = 2000
[policy]
policies = ["paper", "lru"]
`
	path := filepath.Join(dir, "cmdtest.toml")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// The matrix subcommand must emit the results JSON, append the table, and
// rerun byte-identically with the same seed — the rig's core contract.
func TestMatrixRunAndDeterminism(t *testing.T) {
	dir := t.TempDir()
	spec := tinyMatrix(t, dir)
	outA := filepath.Join(dir, "a.json")
	outB := filepath.Join(dir, "b.json")
	tables := filepath.Join(dir, "tables.txt")

	code, stdout, stderr := runCLI(t, "-matrix", spec, "-out", outA, "-tables", tables)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "Scenario matrix: cmdtest") {
		t.Errorf("stdout missing table: %s", stdout)
	}
	if code, _, stderr := runCLI(t, "-matrix", spec, "-out", outB, "-tables", ""); code != 0 {
		t.Fatalf("second run exit %d, stderr: %s", code, stderr)
	}
	a, err := os.ReadFile(outA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(outB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed, different results JSON")
	}
	tb, err := os.ReadFile(tables)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(tb), "Scenario matrix: cmdtest") {
		t.Errorf("tables file missing matrix table: %s", tb)
	}
}

// -check must pass against a faithful baseline and fail — naming the
// regressed cell and metric — against a perturbed one.
func TestMatrixCheck(t *testing.T) {
	dir := t.TempDir()
	spec := tinyMatrix(t, dir)
	base := filepath.Join(dir, "base.json")
	if code, _, stderr := runCLI(t, "-matrix", spec, "-out", base, "-tables", ""); code != 0 {
		t.Fatalf("baseline run exit %d, stderr: %s", code, stderr)
	}

	code, stdout, _ := runCLI(t, "-matrix", spec, "-check", "-baseline", base)
	if code != 0 {
		t.Fatalf("clean check exit %d: %s", code, stdout)
	}

	var doc struct {
		Cells []struct {
			ID      string             `json:"id"`
			Metrics map[string]float64 `json:"metrics"`
		} `json:"cells"`
	}
	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	doc.Cells[0].Metrics["hit_ratio"] = doc.Cells[0].Metrics["hit_ratio"]*2 + 0.5
	perturbed, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	badBase := filepath.Join(dir, "perturbed.json")
	if err := os.WriteFile(badBase, perturbed, 0o644); err != nil {
		t.Fatal(err)
	}

	code, stdout, _ = runCLI(t, "-matrix", spec, "-check", "-baseline", badBase)
	if code == 0 {
		t.Fatalf("perturbed check passed: %s", stdout)
	}
	if !strings.Contains(stdout, "REGRESSION") ||
		!strings.Contains(stdout, doc.Cells[0].ID) ||
		!strings.Contains(stdout, "hit_ratio") {
		t.Errorf("regression output does not name cell and metric: %s", stdout)
	}
}

// TestCheckDiffTwoFiles drives the offline A/B mode: `-check a.json
// b.json` diffs two saved results files without re-running the matrix,
// passing on identical runs and naming cell + metric on a regression.
func TestCheckDiffTwoFiles(t *testing.T) {
	dir := t.TempDir()
	spec := tinyMatrix(t, dir)
	a := filepath.Join(dir, "a.json")
	if code, _, stderr := runCLI(t, "-matrix", spec, "-out", a, "-tables", ""); code != 0 {
		t.Fatalf("A run exit %d, stderr: %s", code, stderr)
	}

	// A vs itself: nothing can regress.
	code, stdout, stderr := runCLI(t, "-check", a, a)
	if code != 0 {
		t.Fatalf("self diff exit %d: %s / %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "within tolerance") {
		t.Errorf("self diff output: %s", stdout)
	}

	// Degrade one gated metric in the B file past the 5% default slack.
	var doc struct {
		Cells []struct {
			ID      string             `json:"id"`
			Metrics map[string]float64 `json:"metrics"`
		} `json:"cells"`
	}
	data, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	doc.Cells[0].Metrics["hit_ratio"] *= 0.5
	worse, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	b := filepath.Join(dir, "b.json")
	if err := os.WriteFile(b, worse, 0o644); err != nil {
		t.Fatal(err)
	}

	code, stdout, _ = runCLI(t, "-check", a, b)
	if code != 1 {
		t.Fatalf("degraded diff exit %d, want 1: %s", code, stdout)
	}
	if !strings.Contains(stdout, "REGRESSION") ||
		!strings.Contains(stdout, doc.Cells[0].ID) ||
		!strings.Contains(stdout, "hit_ratio") {
		t.Errorf("diff output does not name cell and metric: %s", stdout)
	}

	// The other direction — B as baseline, A as fresh — is an improvement,
	// not a regression.
	if code, stdout, _ := runCLI(t, "-check", b, a); code != 0 {
		t.Errorf("improvement flagged as regression (exit %d): %s", code, stdout)
	}
}

// Experiment output under -json must be byte-identical across same-seed
// runs (no timing lines, no map-order leaks) — c1 and x3 cover both the
// workload generators and the cache sweeps.
func TestExpJSONDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full experiment passes")
	}
	code, a, stderr := runCLI(t, "-exp", "c1,x3", "-json")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	code, b, stderr := runCLI(t, "-exp", "c1,x3", "-json")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if a != b {
		t.Fatalf("same seed, different -json output")
	}
	var probe any
	dec := json.NewDecoder(strings.NewReader(a))
	for dec.More() {
		if err := dec.Decode(&probe); err != nil {
			t.Fatalf("output is not a JSON stream: %v", err)
		}
	}
}

// Flag validation: bad combinations and unknown experiments exit 2.
func TestCLIErrors(t *testing.T) {
	if code, _, stderr := runCLI(t, "-check"); code != 2 ||
		!strings.Contains(stderr, "needs -matrix") {
		t.Errorf("-check without -matrix: code %d, stderr %s", code, stderr)
	}
	// Two-file mode needs exactly two positional files.
	if code, _, stderr := runCLI(t, "-check", "only-one.json"); code != 2 ||
		!strings.Contains(stderr, "needs -matrix") {
		t.Errorf("-check with one file: code %d, stderr %s", code, stderr)
	}
	if code, _, stderr := runCLI(t, "-check", "/nonexistent/a.json", "/nonexistent/b.json"); code != 2 ||
		!strings.Contains(stderr, "baseline") {
		t.Errorf("-check with missing files: code %d, stderr %s", code, stderr)
	}
	if code, _, stderr := runCLI(t, "-exp", "nope"); code != 2 ||
		!strings.Contains(stderr, "unknown experiment") {
		t.Errorf("unknown exp: code %d, stderr %s", code, stderr)
	}
	if code, _, _ := runCLI(t, "-matrix", "/nonexistent/spec.toml"); code != 2 {
		t.Errorf("missing spec: code %d", code)
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.toml")
	os.WriteFile(bad, []byte("name = \"x\"\nbogus = 1\n"), 0o644)
	if code, _, stderr := runCLI(t, "-matrix", bad); code != 2 ||
		!strings.Contains(stderr, "unknown key bogus") {
		t.Errorf("bad spec: code %d, stderr %s", code, stderr)
	}
}
