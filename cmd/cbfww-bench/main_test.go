package main

import "testing"

// The experiment catalog must have unique, non-empty IDs and working
// generators — cmd-level sanity for the harness users script against.
func TestCatalogIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range catalog() {
		if e.id == "" || e.title == "" || e.run == nil {
			t.Errorf("incomplete entry %+v", e)
		}
		if seen[e.id] {
			t.Errorf("duplicate experiment id %q", e.id)
		}
		seen[e.id] = true
	}
	if len(seen) < 16 {
		t.Errorf("catalog has only %d experiments", len(seen))
	}
}

// The cheap experiments must produce non-empty tables through the catalog
// wiring (the expensive ones are covered by internal/experiments tests).
func TestCatalogCheapExperimentsRun(t *testing.T) {
	cheap := map[string]bool{"t1": true, "t2": true, "f2": true, "f6": true, "x4": true, "b1": true}
	for _, e := range catalog() {
		if !cheap[e.id] {
			continue
		}
		tb := e.run(1)
		if len(tb.Rows) == 0 {
			t.Errorf("%s produced no rows", e.id)
		}
		if tb.String() == "" {
			t.Errorf("%s renders empty", e.id)
		}
	}
}
