// Command cbfww-loadgen generates synthetic webs and Kyoto-inet-like
// access traces to files, for inspection or for feeding external tools:
//
//	cbfww-loadgen -sites 20 -pages 100 -sessions 5000 -out trace.log
//	cbfww-loadgen -report            # print the analyzer report instead
//
// The trace is written in the extended Common Log Format of
// internal/logmine (one record per line); -urls additionally dumps the
// generated page URLs with their ground-truth topics.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cbfww/internal/analyzer"
	"cbfww/internal/core"
	"cbfww/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment injected so tests can drive the CLI.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cbfww-loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		sites    = fs.Int("sites", 20, "number of origin sites")
		pages    = fs.Int("pages", 50, "pages per site")
		topics   = fs.Int("topics", 10, "ground-truth topics")
		sessions = fs.Int("sessions", 2000, "navigation sessions to generate")
		length   = fs.Int64("length", 30*24*3600, "trace length in ticks (1 tick = 1s)")
		zipf     = fs.Float64("zipf", 0.9, "popularity skew s")
		affinity = fs.Float64("affinity", 0.5, "topic-popularity affinity [0,1]")
		churn    = fs.Float64("churn", 0.001, "expected page updates per tick")
		seed     = fs.Int64("seed", 1, "random seed")
		out      = fs.String("out", "-", "trace output file (- = stdout)")
		urls     = fs.String("urls", "", "also dump page URLs + topics to this file")
		report   = fs.Bool("report", false, "print analyzer report instead of the raw trace")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	clock := core.NewSimClock(0)
	wcfg := workload.DefaultWebConfig()
	wcfg.Sites, wcfg.PagesPerSite, wcfg.Topics, wcfg.Seed = *sites, *pages, *topics, *seed
	g, err := workload.GenerateWeb(clock, wcfg)
	if err != nil {
		return fatal(stderr, err)
	}

	tcfg := workload.DefaultTraceConfig()
	tcfg.Sessions = *sessions
	tcfg.Length = core.Duration(*length)
	tcfg.ZipfS = *zipf
	tcfg.TopicAffinity = *affinity
	tcfg.UpdatesPerTick = *churn
	tcfg.Seed = *seed
	tr, err := workload.GenerateTrace(g, clock, tcfg)
	if err != nil {
		return fatal(stderr, err)
	}

	if *urls != "" {
		f, err := os.Create(*urls)
		if err != nil {
			return fatal(stderr, err)
		}
		for _, u := range g.PageURLs {
			fmt.Fprintf(f, "%s topic=%d\n", u, g.TopicOf[u])
		}
		if err := f.Close(); err != nil {
			return fatal(stderr, err)
		}
	}

	if *report {
		rep := analyzer.Analyze(tr.Log, 3)
		fmt.Fprint(stdout, rep)
		fmt.Fprintln(stdout, "top 10 URLs:")
		for _, uc := range rep.TopK(10) {
			fmt.Fprintf(stdout, "  %6d  %s\n", uc.Count, uc.URL)
		}
		return 0
	}

	w := stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return fatal(stderr, err)
		}
		defer f.Close()
		w = f
	}
	if _, err := tr.Log.WriteTo(w); err != nil {
		return fatal(stderr, err)
	}
	fmt.Fprintf(stderr, "wrote %d records (%d content updates applied)\n", len(tr.Log), tr.Updates)
	return 0
}

func fatal(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "cbfww-loadgen:", err)
	return 1
}
