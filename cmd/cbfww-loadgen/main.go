// Command cbfww-loadgen generates synthetic webs and Kyoto-inet-like
// access traces to files, for inspection or for feeding external tools:
//
//	cbfww-loadgen -sites 20 -pages 100 -sessions 5000 -out trace.log
//	cbfww-loadgen -report            # print the analyzer report instead
//
// The trace is written in the extended Common Log Format of
// internal/logmine (one record per line); -urls additionally dumps the
// generated page URLs with their ground-truth topics.
package main

import (
	"flag"
	"fmt"
	"os"

	"cbfww/internal/analyzer"
	"cbfww/internal/core"
	"cbfww/internal/workload"
)

func main() {
	var (
		sites    = flag.Int("sites", 20, "number of origin sites")
		pages    = flag.Int("pages", 50, "pages per site")
		topics   = flag.Int("topics", 10, "ground-truth topics")
		sessions = flag.Int("sessions", 2000, "navigation sessions to generate")
		length   = flag.Int64("length", 30*24*3600, "trace length in ticks (1 tick = 1s)")
		zipf     = flag.Float64("zipf", 0.9, "popularity skew s")
		affinity = flag.Float64("affinity", 0.5, "topic-popularity affinity [0,1]")
		churn    = flag.Float64("churn", 0.001, "expected page updates per tick")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("out", "-", "trace output file (- = stdout)")
		urls     = flag.String("urls", "", "also dump page URLs + topics to this file")
		report   = flag.Bool("report", false, "print analyzer report instead of the raw trace")
	)
	flag.Parse()

	clock := core.NewSimClock(0)
	wcfg := workload.DefaultWebConfig()
	wcfg.Sites, wcfg.PagesPerSite, wcfg.Topics, wcfg.Seed = *sites, *pages, *topics, *seed
	g, err := workload.GenerateWeb(clock, wcfg)
	if err != nil {
		fatal(err)
	}

	tcfg := workload.DefaultTraceConfig()
	tcfg.Sessions = *sessions
	tcfg.Length = core.Duration(*length)
	tcfg.ZipfS = *zipf
	tcfg.TopicAffinity = *affinity
	tcfg.UpdatesPerTick = *churn
	tcfg.Seed = *seed
	tr, err := workload.GenerateTrace(g, clock, tcfg)
	if err != nil {
		fatal(err)
	}

	if *urls != "" {
		f, err := os.Create(*urls)
		if err != nil {
			fatal(err)
		}
		for _, u := range g.PageURLs {
			fmt.Fprintf(f, "%s topic=%d\n", u, g.TopicOf[u])
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	if *report {
		rep := analyzer.Analyze(tr.Log, 3)
		fmt.Print(rep)
		fmt.Println("top 10 URLs:")
		for _, uc := range rep.TopK(10) {
			fmt.Printf("  %6d  %s\n", uc.Count, uc.URL)
		}
		return
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if _, err := tr.Log.WriteTo(w); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d records (%d content updates applied)\n", len(tr.Log), tr.Updates)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cbfww-loadgen:", err)
	os.Exit(1)
}
