package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cbfww/internal/logmine"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// A generated trace must survive the logmine round trip: every record the
// generator wrote parses back identically.
func TestTraceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.log")
	urls := filepath.Join(dir, "urls.txt")

	code, _, stderr := runCLI(t,
		"-sites", "3", "-pages", "10", "-sessions", "50", "-length", "10000",
		"-out", trace, "-urls", urls)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "wrote") {
		t.Errorf("no summary on stderr: %s", stderr)
	}

	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	log, err := logmine.Parse(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("generated trace does not parse: %v", err)
	}
	if len(log) == 0 {
		t.Fatal("empty trace")
	}
	var buf bytes.Buffer
	if _, err := log.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, buf.Bytes()) {
		t.Errorf("trace does not round-trip byte-identically through logmine")
	}

	udata, err := os.ReadFile(urls)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(udata), "topic=") {
		t.Errorf("urls dump missing topics: %s", udata)
	}
}

// Same seed, same bytes — the generator feeds the regression rig, so it
// must be deterministic through the CLI too.
func TestTraceDeterministic(t *testing.T) {
	args := []string{"-sites", "3", "-pages", "8", "-sessions", "40", "-length", "8000", "-seed", "7"}
	_, a, _ := runCLI(t, args...)
	_, b, _ := runCLI(t, args...)
	if a == "" || a != b {
		t.Fatalf("same seed produced different traces")
	}
}

func TestReportSmoke(t *testing.T) {
	code, stdout, stderr := runCLI(t,
		"-sites", "3", "-pages", "10", "-sessions", "60", "-length", "10000", "-report")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "top 10 URLs:") {
		t.Errorf("report missing top-URLs section: %s", stdout)
	}
	if len(stdout) < 100 {
		t.Errorf("suspiciously short report: %q", stdout)
	}
}

func TestFlagErrors(t *testing.T) {
	if code, _, _ := runCLI(t, "-sites", "abc"); code != 2 {
		t.Errorf("bad int flag: code %d", code)
	}
	if code, _, _ := runCLI(t, "-nope"); code != 2 {
		t.Errorf("unknown flag: code %d", code)
	}
	// Invalid generation parameters surface as exit 1, not a panic.
	if code, _, stderr := runCLI(t, "-sites", "0"); code != 1 ||
		!strings.Contains(stderr, "cbfww-loadgen:") {
		t.Errorf("invalid sites: code %d, stderr %s", code, stderr)
	}
	if code, _, _ := runCLI(t, "-sessions", "0"); code != 1 {
		t.Errorf("invalid sessions: code %d", code)
	}
	if code, _, _ := runCLI(t, "-out", filepath.Join(t.TempDir(), "no", "such", "dir", "t.log")); code != 1 {
		t.Errorf("unwritable out: code %d", code)
	}
}
