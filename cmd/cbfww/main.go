// Command cbfww runs an interactive Capacity Bound-free Web Warehouse over
// a generated synthetic web and exposes every non-transparent surface of
// the system as a small REPL:
//
//	get <url> [user]     fetch through the warehouse
//	query <select ...>   popularity-aware query (§4.3)
//	search <terms>       ranked full-text retrieval
//	hot                  current hot topics
//	related <term>       co-occurring terms
//	recommend <user>     content suggestions
//	next <url>           social-navigation suggestions
//	mine                 discover logical pages / semantic regions
//	maintain             run a maintenance sweep
//	history <url>        stored versions
//	pages | stats | analyze | urls | help | quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"cbfww/internal/core"
	"cbfww/internal/schema"
	"cbfww/internal/warehouse"
	"cbfww/internal/workload"
)

func main() {
	var (
		sites      = flag.Int("sites", 8, "origin sites in the synthetic web")
		pages      = flag.Int("pages", 25, "pages per site")
		seed       = flag.Int64("seed", 1, "random seed")
		schemaFile = flag.String("schema", "", "storage schema definition file (see internal/schema)")
	)
	flag.Parse()

	clock := core.NewSimClock(0)
	wcfg := workload.DefaultWebConfig()
	wcfg.Sites, wcfg.PagesPerSite, wcfg.Seed = *sites, *pages, *seed
	g, err := workload.GenerateWeb(clock, wcfg)
	if err != nil {
		fatal(err)
	}
	cfg := warehouse.DefaultConfig()
	cfg.Miner.MinSupport = 2
	if *schemaFile != "" {
		text, err := os.ReadFile(*schemaFile)
		if err != nil {
			fatal(err)
		}
		s, err := schema.Parse(string(text))
		if err != nil {
			fatal(err)
		}
		cfg.ApplySchema(s)
		fmt.Printf("applied schema %s (admission rules: %v, consistency: %v)\n",
			*schemaFile, s.Admission.Rules(), s.Consistency.Mode)
	}
	w, err := warehouse.New(cfg, clock, g.Web)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("CBFWW ready: %d pages on %d sites (try 'urls', then 'get <url>'; 'help' lists commands)\n",
		g.Web.NumPages(), *sites)
	repl(w, g, clock)
}

func repl(w *warehouse.Warehouse, g *workload.GeneratedWeb, clock *core.SimClock) {
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("cbfww> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		cmd, rest, _ := strings.Cut(line, " ")
		rest = strings.TrimSpace(rest)
		clock.Advance(1)
		switch strings.ToLower(cmd) {
		case "quit", "exit":
			return
		case "help":
			help()
		case "urls":
			for i, u := range g.PageURLs {
				if i >= 20 {
					fmt.Printf("  ... and %d more\n", len(g.PageURLs)-20)
					break
				}
				fmt.Println(" ", u)
			}
		case "get":
			url, user, _ := strings.Cut(rest, " ")
			if url == "" {
				fmt.Println("usage: get <url> [user]")
				continue
			}
			if user == "" {
				user = "console"
			}
			res, err := w.Get(user, url)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("%s [%s, latency %d, prio %.2f, hit=%v]\n  %s\n",
				res.Page.Title, res.Source, int64(res.Latency), float64(res.Priority), res.Hit,
				trim(res.Page.Body, 120))
			if !res.Hit {
				fmt.Println("  admission:", res.Explanation)
			}
		case "query":
			rows, err := w.Query(rest)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			for _, r := range rows {
				cells := make([]string, len(r.Values))
				for i, v := range r.Values {
					cells[i] = v.String()
				}
				fmt.Println(" ", strings.Join(cells, " | "))
			}
			fmt.Printf("(%d rows)\n", len(rows))
		case "search":
			for _, s := range w.Search(rest, 8) {
				fmt.Printf("  %.3f %v\n", s.Value, s.Doc)
			}
		case "wsearch":
			res, err := w.SearchWithFallback(rest, 5, 5)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			if len(res.Fetched) > 0 {
				fmt.Printf("  fetched from web (%d rounds): %v\n", res.Rounds, res.Fetched)
			}
			for _, s := range res.Scores {
				fmt.Printf("  %.3f %v\n", s.Value, s.Doc)
			}
		case "tsearch":
			res := w.SearchTiered(rest, 8)
			fmt.Printf("  served by %s index (latency %d):\n", res.Tier, int64(res.Latency))
			for _, s := range res.Scores {
				fmt.Printf("  %.3f %v\n", s.Value, s.Doc)
			}
		case "diff":
			parts := strings.Fields(rest)
			if len(parts) != 3 {
				fmt.Println("usage: diff <url> <fromVersion> <toVersion>")
				continue
			}
			v1, err1 := strconv.Atoi(parts[1])
			v2, err2 := strconv.Atoi(parts[2])
			if err1 != nil || err2 != nil {
				fmt.Println("versions must be integers")
				continue
			}
			d, ok := w.Versions().DiffVersions(parts[0], v1, v2)
			if !ok {
				fmt.Println("versions not stored")
				continue
			}
			fmt.Printf("  %s\n  added:   %v\n  removed: %v\n", d, d.Added, d.Removed)
		case "save":
			if rest == "" {
				fmt.Println("usage: save <file>")
				continue
			}
			if err := w.Versions().SaveFile(rest); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Printf("  saved %d URL histories (%v)\n",
					len(w.Versions().URLs()), w.Versions().Bytes())
			}
		case "hot":
			for _, wt := range w.Topics().HotTerms(10) {
				fmt.Printf("  %.3f %s\n", wt.Weight, wt.Term)
			}
		case "related":
			for _, wt := range w.Topics().Related(rest, 8) {
				fmt.Printf("  %.3f %s\n", wt.Weight, wt.Term)
			}
		case "recommend":
			for _, s := range w.Recommend(rest, 5) {
				fmt.Printf("  %.3f %v\n", s.Score, s.ID)
			}
		case "next":
			for _, p := range w.NextHops(rest, 5) {
				fmt.Printf("  support=%d via %s\n", p.Support, strings.Join(p.URLs, " -> "))
			}
		case "mine":
			rep, err := w.MinePaths()
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("  sessions=%d paths=%d logical=%d regions=%d\n",
				rep.Sessions, rep.Paths, rep.LogicalPages, rep.Regions)
		case "maintain":
			rep, err := w.Maintain()
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("  bursts=%d prefetched=%d migrations=%d\n",
				len(rep.Bursts), rep.Prefetched, rep.Migrations)
		case "view":
			parts := strings.SplitN(rest, " ", 3)
			switch {
			case len(parts) >= 3 && parts[0] == "save":
				if err := w.SaveView("console", parts[1], parts[2]); err != nil {
					fmt.Println("error:", err)
				} else {
					fmt.Printf("  view %q saved\n", parts[1])
				}
			case len(parts) >= 2 && parts[0] == "drop":
				if err := w.DropView("console", parts[1]); err != nil {
					fmt.Println("error:", err)
				}
			case len(parts) == 1 && parts[0] == "list":
				for _, v := range w.Views("console") {
					fmt.Printf("  %-12s %s\n", v.Name, v.Query)
				}
			case len(parts) == 1 && parts[0] != "":
				rows, err := w.View("console", parts[0])
				if err != nil {
					fmt.Println("error:", err)
					continue
				}
				for _, r := range rows {
					cells := make([]string, len(r.Values))
					for i, v := range r.Values {
						cells[i] = v.String()
					}
					fmt.Println(" ", strings.Join(cells, " | "))
				}
			default:
				fmt.Println("usage: view save <name> <query> | view <name> | view list | view drop <name>")
			}
		case "history":
			for _, s := range w.Versions().History(rest) {
				fmt.Printf("  v%d @%v %q\n", s.Version, s.Time, trim(s.Title, 60))
			}
		case "pages":
			infos := w.Pages()
			sort.Slice(infos, func(i, j int) bool { return infos[i].Priority > infos[j].Priority })
			for i, info := range infos {
				if i >= 15 {
					fmt.Printf("  ... and %d more\n", len(infos)-15)
					break
				}
				fmt.Printf("  %.2f %-8s %s\n", float64(info.Priority), info.Tier, info.URL)
			}
		case "stats":
			s := w.Stats()
			fmt.Printf("  requests=%d hits=%d (%.1f%%) memoryHits=%d origin=%d reval=%d prefetch=%d meanLatency=%.1f\n",
				s.Requests, s.Hits, 100*s.HitRatio(), s.MemoryHits,
				s.OriginFetches, s.Revalidations, s.Prefetches, s.MeanLatency())
		case "analyze":
			fmt.Print(w.Analyze())
		default:
			fmt.Printf("unknown command %q (try 'help')\n", cmd)
		}
	}
}

func help() {
	fmt.Print(`  get <url> [user]      fetch a page through the warehouse
  query <select ...>    popularity-aware query, e.g.
                        query SELECT MFU 5 p.url FROM Physical_Page p
  search <terms>        ranked retrieval over stored contents
  tsearch <terms>       tiered retrieval (memory index first, §4.1)
  wsearch <terms>       retrieval with web fallback (§3(1) feedback loop)
  diff <url> <v1> <v2>  term-level delta between stored versions
  save <file>           persist version histories to disk
  view save|list|drop   per-user stored views (§3(5))
  hot / related <term>  topic model
  recommend <user>      content suggestions for a user
  next <url>            social-navigation suggestions
  mine / maintain       discovery and self-organization sweeps
  history <url>         stored versions
  pages / stats / analyze / urls / quit
`)
}

func trim(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cbfww:", err)
	os.Exit(1)
}
