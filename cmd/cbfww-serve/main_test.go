package main

// Smoke test: bring the daemon up on an ephemeral port, hit /healthz and
// one /fetch over a real socket, and shut down cleanly.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestServeSmoke(t *testing.T) {
	d, err := build(options{
		addr:         "127.0.0.1:0",
		sites:        3,
		pages:        8,
		seed:         1,
		workers:      4,
		fetchTimeout: 5 * time.Second,
		// maintainEvery 0: no background sweeps during the smoke test.
	})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := d.start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	base := "http://" + d.srv.Addr()
	client := &http.Client{Timeout: 10 * time.Second}

	resp, err := client.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var hz struct {
		Status string   `json:"status"`
		Detail []string `json:"detail"`
	}
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatalf("healthz decode: %v (%q)", err, body)
	}
	if resp.StatusCode != http.StatusOK || hz.Status != "ok" || len(hz.Detail) != 0 {
		t.Fatalf("healthz = %d %q", resp.StatusCode, body)
	}

	if len(d.urls) == 0 {
		t.Fatal("daemon over built-in web reported no sample URLs")
	}
	resp, err = client.Get(base + "/fetch?url=" + d.urls[0])
	if err != nil {
		t.Fatalf("fetch: %v", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fetch = %d (%s)", resp.StatusCode, body)
	}
	var fr struct {
		URL    string `json:"url"`
		Title  string `json:"title"`
		Source string `json:"source"`
	}
	if err := json.Unmarshal(body, &fr); err != nil {
		t.Fatalf("fetch decode: %v (%q)", err, body)
	}
	if fr.URL != d.urls[0] || fr.Source != "origin" || fr.Title == "" {
		t.Fatalf("fetch payload implausible: %+v", fr)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := d.shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := (&http.Client{Timeout: time.Second}).Get(base + "/healthz"); err == nil {
		t.Fatal("daemon still serving after shutdown")
	}
}

// TestServeFaultSmoke brings up the daemon against its own fault-injecting
// origin and checks that retries absorb the faults and /stats reports the
// resilience counters.
func TestServeFaultSmoke(t *testing.T) {
	d, err := build(options{
		addr:             "127.0.0.1:0",
		sites:            3,
		pages:            8,
		seed:             11,
		workers:          4,
		fetchTimeout:     5 * time.Second,
		retry:            4,
		breakerThreshold: 0, // breaker off: every URL should eventually land
		faultRate:        0.3,
	})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := d.start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	base := "http://" + d.srv.Addr()
	client := &http.Client{Timeout: 10 * time.Second}

	ok := 0
	for _, u := range d.urls {
		resp, err := client.Get(base + "/fetch?url=" + u)
		if err != nil {
			t.Fatalf("fetch %s: %v", u, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			ok++
		}
	}
	// 30% per-attempt error rate with 4 attempts: per-URL failure odds are
	// under 1%; most of the 24 URLs must land.
	if ok < len(d.urls)/2 {
		t.Fatalf("only %d/%d fetches succeeded against faulty origin with retries", ok, len(d.urls))
	}

	resp, err := client.Get(base + "/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var stats struct {
		Resilience struct {
			Retries         uint64 `json:"retries"`
			FaultInjections uint64 `json:"fault_injections"`
		} `json:"resilience"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatalf("stats decode: %v (%q)", err, body)
	}
	if stats.Resilience.FaultInjections == 0 {
		t.Error("stats fault_injections = 0 with fault rate 0.3")
	}
	if stats.Resilience.Retries == 0 {
		t.Error("stats retries = 0 with faults injected and retry 4")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := d.shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestServeMaintenanceLoop(t *testing.T) {
	d, err := build(options{
		addr: "127.0.0.1:0", sites: 2, pages: 4, seed: 2,
		maintainEvery: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	d.sweepSignal = make(chan struct{}, 4)
	if err := d.start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	// Synchronize on actual sweeps instead of sleeping a guessed interval.
	for i := 0; i < 2; i++ {
		select {
		case <-d.sweepSignal:
		case <-time.After(10 * time.Second):
			t.Fatal("maintenance loop never swept")
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := d.shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// Shutdown is idempotent enough to not hang when called with the loop
	// already stopped.
	if d.stopMaintain != nil {
		t.Fatal("maintenance loop not cleared after shutdown")
	}
}

// TestServeMmapTierAndMemPressure brings the daemon up on the four-tier
// stack (-mmap-tier) with an impossible heap budget (-mem-pressure 1):
// the pressure loop must shrink the memory tier to its floor, the /stats
// storage section must show all four tiers, and /admin/resize must
// retarget the warm tier live.
func TestServeMmapTierAndMemPressure(t *testing.T) {
	d, err := build(options{
		addr:          "127.0.0.1:0",
		sites:         2,
		pages:         6,
		seed:          3,
		workers:       4,
		dataDir:       t.TempDir(),
		fetchTimeout:  5 * time.Second,
		admin:         true,
		mmapTier:      1 << 20,
		memPressure:   1, // 1-byte budget: any Go heap is over it
		pressureEvery: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	d.pressureSignal = make(chan struct{}, 4)
	if err := d.start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	base := "http://" + d.srv.Addr()
	client := &http.Client{Timeout: 10 * time.Second}

	// Admit something so the stack is live, then wait for a pressure tick.
	resp, err := client.Get(base + "/fetch?url=" + d.urls[0])
	if err != nil {
		t.Fatalf("fetch: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	for i := 0; i < 2; i++ {
		select {
		case <-d.pressureSignal:
		case <-time.After(10 * time.Second):
			t.Fatal("pressure loop never sampled")
		}
	}

	var stats struct {
		Storage []struct {
			Name     string `json:"name"`
			Backend  string `json:"backend"`
			Capacity int64  `json:"capacity"`
		} `json:"storage"`
	}
	resp, err = client.Get(base + "/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatalf("stats decode: %v", err)
	}
	if len(stats.Storage) != 4 {
		t.Fatalf("storage section has %d tiers, want 4 (%s)", len(stats.Storage), body)
	}
	if stats.Storage[1].Name != "mmap" || stats.Storage[1].Backend != "mmap" {
		t.Errorf("tier 1 = %+v, want the mmap warm tier", stats.Storage[1])
	}
	// The loop shrinks the tier by the heap's overage past the budget —
	// with a 1-byte budget that is (almost) the whole live heap — clamped
	// to the floor. Either way the target must be strictly below the
	// configured capacity and never under the floor.
	floor := int64(d.baseMemCap / 16)
	if got := stats.Storage[0].Capacity; got >= int64(d.baseMemCap) || got < floor {
		t.Errorf("pressured memory capacity = %d, want in [%d, %d)", got, floor, int64(d.baseMemCap))
	}

	// Live retarget of the warm tier through the admin surface.
	resp, err = client.Post(base+"/admin/resize", "application/json",
		strings.NewReader(`{"targets": {"mmap": 2097152}}`))
	if err != nil {
		t.Fatalf("admin resize: %v", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin resize = %d (%s)", resp.StatusCode, body)
	}
	var rr struct {
		Storage []struct {
			Name     string `json:"name"`
			Capacity int64  `json:"capacity"`
		} `json:"storage"`
	}
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatalf("resize decode: %v", err)
	}
	if rr.Storage[1].Name != "mmap" || rr.Storage[1].Capacity != 2097152 {
		t.Errorf("resized mmap tier = %+v", rr.Storage[1])
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := d.shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestServeRestartSmoke proves the durability story over a real socket:
// a daemon with -data-dir admits a page, shuts down (checkpointing its
// durable state), and a second daemon over the same directory serves the
// same page as a warehouse hit — no origin fetch.
func TestServeRestartSmoke(t *testing.T) {
	opts := options{
		addr:         "127.0.0.1:0",
		sites:        3,
		pages:        8,
		seed:         1,
		workers:      4,
		dataDir:      t.TempDir(),
		fetchTimeout: 5 * time.Second,
	}
	d, err := build(opts)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := d.start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	client := &http.Client{Timeout: 10 * time.Second}
	url := d.urls[0]

	type fetchView struct {
		Body   string `json:"body"`
		Hit    bool   `json:"hit"`
		Source string `json:"source"`
	}
	fetchOnce := func(d *daemon) fetchView {
		t.Helper()
		resp, err := client.Get("http://" + d.srv.Addr() + "/fetch?url=" + url)
		if err != nil {
			t.Fatalf("fetch: %v", err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("fetch = %d (%s)", resp.StatusCode, body)
		}
		var fr fetchView
		if err := json.Unmarshal(body, &fr); err != nil {
			t.Fatalf("fetch decode: %v (%q)", err, body)
		}
		return fr
	}

	first := fetchOnce(d)
	if first.Source != "origin" || first.Body == "" {
		t.Fatalf("cold fetch: %+v", first)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := d.shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Second life over the same directory: the page must be served from
	// the warehouse tiers, never the origin.
	d2, err := build(opts)
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	if err := d2.start(); err != nil {
		t.Fatalf("restart: %v", err)
	}
	second := fetchOnce(d2)
	if !second.Hit || second.Source == "origin" {
		t.Errorf("restarted fetch: Hit=%v Source=%q, want a warehouse hit", second.Hit, second.Source)
	}
	if second.Body != first.Body {
		t.Errorf("restarted body differs from admitted body")
	}
	if n := d2.wh.Stats().OriginFetches; n != 0 {
		t.Errorf("restarted daemon performed %d origin fetches", n)
	}

	// The /body endpoint streams the same bytes with tier metadata.
	resp, err := client.Get("http://" + d2.srv.Addr() + "/body?url=" + url)
	if err != nil {
		t.Fatalf("body: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(raw) != first.Body {
		t.Fatalf("body = %d %q", resp.StatusCode, raw)
	}
	if src := resp.Header.Get("X-CBFWW-Source"); src == "" || src == "origin" {
		t.Errorf("body X-CBFWW-Source = %q, want a tier name", src)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if err := d2.shutdown(ctx2); err != nil {
		t.Fatalf("shutdown 2: %v", err)
	}
}
