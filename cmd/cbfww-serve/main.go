// Command cbfww-serve runs the warehouse as a network daemon: the gateway
// subsystem serving fetch-through, popularity-aware queries, search and
// recommendations over HTTP.
//
// By default it warehouses a generated synthetic web (in-process origin):
//
//	cbfww-serve -addr 127.0.0.1:8642 -sites 8 -pages 25
//
// With -origin it fetches through real HTTP sockets instead, resolving
// every logical host to the given address (e.g. a simweb origin started
// elsewhere):
//
//	cbfww-serve -origin 127.0.0.1:9000
//
// With -data-dir the storage tiers are file-backed and durable: shutdown
// checkpoints the placement manifest, version history and page catalog,
// and the next start rehydrates them, serving previously admitted pages
// without contacting the origin:
//
//	cbfww-serve -data-dir /var/tmp/cbfww
//
// With -join the daemon becomes one node of a static peer ring: URLs hash
// to a replica set of -replicas nodes (default 2), non-replicas proxy
// (or, with -redirect, 307) to the first healthy replica, admitted
// payloads replicate asynchronously to the other replicas, and a
// replica's cold miss checks its peers before the origin, so an object
// admitted anywhere in the cluster hits the origin once. A health prober
// (-probe-interval, -probe-threshold) marks unresponsive peers Down:
// traffic routes around them, replication pushes park in a hinted-handoff
// queue and drain when the peer returns. List every member (self included
// or not — it is added automatically):
//
//	cbfww-serve -addr 127.0.0.1:8642 -origin 127.0.0.1:9000 \
//	    -join 127.0.0.1:8642,127.0.0.1:8643,127.0.0.1:8644
//
// Endpoints: GET /fetch?url=, GET /body?url=, POST /query, GET /search,
// GET /recommend, GET /peer/fetch?url= and POST /peer/put
// (cluster-internal), GET /stats, GET /healthz (JSON; "degraded" with
// detail when a peer is Down or a breaker open, always HTTP 200).
// SIGINT/SIGTERM shut down gracefully, draining in-flight requests and
// flushing durable state.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime/metrics"
	"strings"
	"syscall"
	"time"

	"cbfww/internal/core"
	"cbfww/internal/crawl"
	"cbfww/internal/gateway"
	"cbfww/internal/peers"
	"cbfww/internal/resilience"
	"cbfww/internal/schema"
	"cbfww/internal/simweb"
	"cbfww/internal/warehouse"
	"cbfww/internal/workload"
)

// options collects the daemon's flags (separated from flag parsing so the
// smoke test can build a daemon directly).
type options struct {
	addr          string
	sites, pages  int
	seed          int64
	schemaFile    string
	dataDir       string
	origin        string
	workers       int
	shards        int
	fetchTimeout  time.Duration
	maintainEvery time.Duration

	// Origin resilience: retry attempts per origin call, per-host breaker
	// threshold/cool-down, and the in-process fault-injection rate.
	retry            int
	breakerThreshold int
	breakerCooldown  time.Duration
	faultRate        float64

	// pprof mounts net/http/pprof under /debug/pprof/ on the gateway.
	pprof bool
	// admin mounts POST /admin/resize on the gateway (operator surface,
	// gated like -pprof).
	admin bool

	// mmapTier, when positive, inserts an mmap-backed warm tier of this
	// capacity between memory and disk (the four-tier stack).
	mmapTier int64
	// memPressure, when positive, is the live-heap budget in bytes: a
	// sampling loop shrinks the heap tier's capacity target when the Go
	// heap outgrows it and restores the configured target as pressure
	// subsides. pressureEvery is the sampling cadence.
	memPressure   int64
	pressureEvery time.Duration

	// Cluster membership: join lists every ring member (comma-separated
	// host:port; self is added if absent), advertise overrides the
	// self-address peers see (defaults to the bound listen address),
	// redirect switches ownership routing from proxying to 307s, vnodes
	// tunes the ring's virtual-node count. replicas is the replica-set
	// size per URL; probeInterval/probeThreshold drive the health prober
	// that marks unresponsive peers Down.
	join           string
	advertise      string
	redirect       bool
	vnodes         int
	replicas       int
	probeInterval  time.Duration
	probeThreshold int
}

// splitJoin parses the -join list into member addresses.
func splitJoin(join string) []string {
	var members []string
	for _, m := range strings.Split(join, ",") {
		if m = strings.TrimSpace(m); m != "" {
			members = append(members, m)
		}
	}
	return members
}

// daemon bundles the running pieces: the gateway server, the warehouse
// behind it, and the optional maintenance loop.
type daemon struct {
	srv     *gateway.Server
	wh      *warehouse.Warehouse
	cluster *peers.Cluster
	// join/advertise defer membership wiring to start(): with an
	// ephemeral listen port the self address exists only after bind.
	join      []string
	advertise string
	// urls samples the built-in simulated web (empty with -origin) so
	// operators and tests have something to curl.
	urls []string

	maintainEvery time.Duration
	stopMaintain  chan struct{}
	maintainDone  chan struct{}

	// Memory-pressure loop state: the heap budget, the heap tier's
	// configured (unpressured) capacity target, and the sampling cadence.
	memPressure   int64
	baseMemCap    core.Bytes
	pressureEvery time.Duration
	stopPressure  chan struct{}
	pressureDone  chan struct{}
	// pressureSignal, when non-nil, receives a token after every sampling
	// pass (dropped when full) — test synchronization, like sweepSignal.
	pressureSignal chan struct{}
	// sweepSignal, when non-nil, receives a token after every completed
	// maintenance sweep (dropped when full). Tests synchronize on it
	// instead of sleeping and hoping the ticker fired.
	sweepSignal chan struct{}
}

// build assembles warehouse + gateway per the options.
func build(opts options) (*daemon, error) {
	cfg := warehouse.DefaultConfig()
	cfg.Miner.MinSupport = 2
	cfg.Shards = opts.shards
	// -data-dir makes the tiers real: disk and tertiary bytes live under
	// it, and the daemon checkpoints on shutdown / rehydrates on start.
	// Empty keeps every tier in the heap (the simulation shape).
	cfg.DataDir = opts.dataDir
	if opts.mmapTier > 0 {
		// Four-tier stack: heap / mmap arena / disk / segment log. The warm
		// tier needs a data directory to map its arena file under.
		if opts.dataDir == "" {
			return nil, fmt.Errorf("cbfww-serve: -mmap-tier requires -data-dir")
		}
		cfg.Storage = cfg.Storage.WithMmapTier(core.Bytes(opts.mmapTier))
	}
	if opts.schemaFile != "" {
		text, err := os.ReadFile(opts.schemaFile)
		if err != nil {
			return nil, err
		}
		s, err := schema.Parse(string(text))
		if err != nil {
			return nil, err
		}
		cfg.ApplySchema(s)
	}

	// A serving daemon lives on wall-clock time: usage windows, aging and
	// consistency polling all tick in real seconds.
	clock := core.NewWallClock()

	var (
		origin resilience.ContextOrigin
		faults *simweb.FaultyOrigin
		urls   []string
	)
	if opts.origin != "" {
		req, err := crawl.NewRequester(crawl.DefaultConfig(), crawl.FixedResolver(opts.origin))
		if err != nil {
			return nil, err
		}
		origin = req
	} else {
		wcfg := workload.DefaultWebConfig()
		wcfg.Sites, wcfg.PagesPerSite, wcfg.Seed = opts.sites, opts.pages, opts.seed
		g, err := workload.GenerateWeb(clock, wcfg)
		if err != nil {
			return nil, err
		}
		origin = g.Web
		urls = g.PageURLs
		if opts.faultRate > 0 {
			// Fault injection applies to the in-process origin only: a real
			// -origin is flaky enough on its own.
			faults = simweb.NewFaultyOrigin(g.Web, simweb.FaultConfig{
				Seed:      opts.seed,
				ErrorRate: opts.faultRate,
			})
			origin = faults
		}
	}

	var resilient *resilience.Origin
	if opts.retry > 1 || opts.breakerThreshold > 0 {
		var err error
		resilient, err = resilience.Wrap(origin, resilience.Config{
			Retry: resilience.RetryPolicy{
				MaxAttempts: opts.retry,
				BaseBackoff: 50 * time.Millisecond,
				MaxBackoff:  2 * time.Second,
			},
			Breaker: resilience.BreakerConfig{
				Threshold: opts.breakerThreshold,
				Cooldown:  opts.breakerCooldown,
			},
		})
		if err != nil {
			return nil, err
		}
		origin = resilient
	}

	wh, err := warehouse.New(cfg, clock, origin)
	if err != nil {
		return nil, err
	}
	if restored, err := wh.Rehydrate(); err != nil {
		return nil, err
	} else if restored > 0 {
		log.Printf("rehydrated %d pages from %s", restored, opts.dataDir)
	}
	cluster := peers.NewCluster(peers.Config{
		VNodes:         opts.vnodes,
		Replicas:       opts.replicas,
		ProbeInterval:  opts.probeInterval,
		ProbeThreshold: opts.probeThreshold,
		Breaker: resilience.BreakerConfig{
			Threshold: opts.breakerThreshold,
			Cooldown:  opts.breakerCooldown,
		},
	})
	wh.SetPeerSource(cluster)
	wh.SetReplicator(cluster.ReplicateAdmitted)
	srv, err := gateway.New(gateway.Config{
		Addr:         opts.addr,
		FetchWorkers: opts.workers,
		FetchTimeout: opts.fetchTimeout,
		Resilient:    resilient,
		Faults:       faults,
		EnablePprof:  opts.pprof,
		EnableAdmin:  opts.admin,
		Cluster:      cluster,
		Redirect:     opts.redirect,
	}, wh)
	if err != nil {
		return nil, err
	}
	d := &daemon{
		srv: srv, wh: wh, cluster: cluster,
		join: splitJoin(opts.join), advertise: opts.advertise,
		urls: urls, maintainEvery: opts.maintainEvery,
		memPressure: opts.memPressure, pressureEvery: opts.pressureEvery,
	}
	if d.memPressure > 0 {
		if d.pressureEvery <= 0 {
			d.pressureEvery = 5 * time.Second
		}
		// The configured target is what the tier returns to when the heap
		// shrinks back under budget.
		d.baseMemCap = wh.StorageManager().Tiers()[0].Capacity
	}
	return d, nil
}

// liveHeapBytes samples the Go runtime's live-heap size: bytes occupied
// by reachable or not-yet-swept objects, the number an operator's memory
// budget actually constrains.
func liveHeapBytes() int64 {
	s := []metrics.Sample{{Name: "/memory/classes/heap/objects:bytes"}}
	metrics.Read(s)
	if s[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return int64(s[0].Value.Uint64())
}

// pressureLoop retargets the heap tier from live heap statistics: when
// the Go heap exceeds the -mem-pressure budget, the tier shrinks by the
// overage (the incremental resize demotes only the lowest-priority
// delta, so each sample's cost is proportional to the change); when the
// heap falls back under budget the tier is restored toward its
// configured target. The tier never drops below 1/16 of that target —
// a pressured warehouse still serves its hottest pages from memory.
func (d *daemon) pressureLoop() {
	defer close(d.pressureDone)
	mgr := d.wh.StorageManager()
	tier0 := mgr.TierName(0)
	floor := d.baseMemCap / 16
	if floor < 1 {
		floor = 1
	}
	current := d.baseMemCap
	t := time.NewTicker(d.pressureEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			target := d.baseMemCap
			if over := liveHeapBytes() - d.memPressure; over > 0 {
				target -= core.Bytes(over)
				if target < floor {
					target = floor
				}
			}
			if target != current {
				if err := mgr.ResizeTiers(map[string]core.Bytes{tier0: target}); err != nil {
					log.Printf("mem-pressure resize: %v", err)
				} else {
					log.Printf("mem-pressure: %s tier target %d -> %d bytes", tier0, current, target)
					current = target
				}
			}
			if d.pressureSignal != nil {
				select {
				case d.pressureSignal <- struct{}{}:
				default:
				}
			}
		case <-d.stopPressure:
			return
		}
	}
}

// start binds the listener and, when configured, the maintenance loop.
func (d *daemon) start() error {
	if err := d.srv.Start(); err != nil {
		return err
	}
	if len(d.join) > 0 {
		// Membership waits for the bind: with an ephemeral port the self
		// address only exists now. A -join list without self still works —
		// Configure adds the advertised address to the ring.
		self := d.advertise
		if self == "" {
			self = d.srv.Addr()
		}
		d.cluster.Configure(self, d.join)
		// The prober and replication worker only matter with peers to
		// probe and push to.
		d.cluster.Start()
	}
	if d.memPressure > 0 {
		d.stopPressure = make(chan struct{})
		d.pressureDone = make(chan struct{})
		go d.pressureLoop()
	}
	if d.maintainEvery > 0 {
		d.stopMaintain = make(chan struct{})
		d.maintainDone = make(chan struct{})
		go func() {
			defer close(d.maintainDone)
			t := time.NewTicker(d.maintainEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if _, err := d.wh.Maintain(); err != nil {
						log.Printf("maintain: %v", err)
					}
					if d.sweepSignal != nil {
						select {
						case d.sweepSignal <- struct{}{}:
						default:
						}
					}
				case <-d.stopMaintain:
					return
				}
			}
		}()
	}
	return nil
}

// shutdown drains in-flight requests, stops the maintenance loop, then
// flushes the warehouse's durable state: a final backup pass plus the
// storage manifest, version history and page catalog (Checkpoint), and a
// sync/close of the file-backed tiers. A daemon without -data-dir has
// nothing durable; Checkpoint and Close are then no-ops.
func (d *daemon) shutdown(ctx context.Context) error {
	if d.stopMaintain != nil {
		close(d.stopMaintain)
		<-d.maintainDone
		d.stopMaintain = nil
	}
	if d.stopPressure != nil {
		close(d.stopPressure)
		<-d.pressureDone
		d.stopPressure = nil
	}
	// Stop probing and replicating before the drain: peers are likely
	// shutting down too, and a dying node has no business marking them
	// Down or pushing payloads at them.
	d.cluster.Stop()
	if err := d.srv.Shutdown(ctx); err != nil {
		return err
	}
	if err := d.wh.Checkpoint(); err != nil {
		return err
	}
	return d.wh.Close()
}

func main() {
	opts := options{}
	flag.StringVar(&opts.addr, "addr", "127.0.0.1:8642", "listen address")
	flag.IntVar(&opts.sites, "sites", 8, "origin sites in the synthetic web (in-process origin)")
	flag.IntVar(&opts.pages, "pages", 25, "pages per site (in-process origin)")
	flag.Int64Var(&opts.seed, "seed", 1, "random seed for the synthetic web")
	flag.StringVar(&opts.schemaFile, "schema", "", "storage schema definition file (see internal/schema)")
	flag.StringVar(&opts.dataDir, "data-dir", "", "root for durable state (file-backed disk/tertiary tiers, checkpoints); empty = all tiers in heap")
	flag.StringVar(&opts.origin, "origin", "", "fetch through real HTTP, resolving all hosts to this host:port")
	flag.IntVar(&opts.workers, "workers", 32, "max concurrent origin fetches")
	flag.IntVar(&opts.shards, "shards", 0, "warehouse lock stripes (0 = GOMAXPROCS)")
	flag.DurationVar(&opts.fetchTimeout, "fetch-timeout", 10*time.Second, "per-request origin fetch budget")
	flag.DurationVar(&opts.maintainEvery, "maintain-every", time.Minute, "maintenance sweep interval (0 disables)")
	flag.IntVar(&opts.retry, "retry", 3, "origin attempts per fetch (1 disables retries)")
	flag.IntVar(&opts.breakerThreshold, "breaker-threshold", 5, "consecutive host failures that open the circuit breaker (0 disables)")
	flag.DurationVar(&opts.breakerCooldown, "breaker-cooldown", 30*time.Second, "open-breaker cool-down before a half-open probe")
	flag.Float64Var(&opts.faultRate, "fault-rate", 0, "injected origin error probability (in-process origin only)")
	flag.BoolVar(&opts.pprof, "pprof", false, "serve net/http/pprof profiles under /debug/pprof/ (do not expose publicly)")
	flag.BoolVar(&opts.admin, "admin", false, "serve POST /admin/resize for live tier-capacity retargets (do not expose publicly)")
	flag.Int64Var(&opts.mmapTier, "mmap-tier", 0, "insert an mmap-backed warm tier of this many bytes between memory and disk (requires -data-dir; 0 = off)")
	flag.Int64Var(&opts.memPressure, "mem-pressure", 0, "live-heap budget in bytes: shrink the memory tier when the Go heap exceeds it (0 = off)")
	flag.DurationVar(&opts.pressureEvery, "pressure-every", 5*time.Second, "heap sampling cadence for -mem-pressure")
	flag.StringVar(&opts.join, "join", "", "comma-separated cluster members (host:port,...); empty = standalone")
	flag.StringVar(&opts.advertise, "advertise", "", "self address peers should use (default: the bound listen address)")
	flag.BoolVar(&opts.redirect, "redirect", false, "307-redirect to the owner node instead of proxying")
	flag.IntVar(&opts.vnodes, "vnodes", 0, "virtual nodes per ring member (0 = default 128)")
	flag.IntVar(&opts.replicas, "replicas", 0, "replica-set size per URL (0 = default 2)")
	flag.DurationVar(&opts.probeInterval, "probe-interval", 0, "health-probe cadence between peers (0 = default 1s)")
	flag.IntVar(&opts.probeThreshold, "probe-threshold", 0, "consecutive failed probes before a peer is marked Down (0 = default 3)")
	grace := flag.Duration("grace", 15*time.Second, "graceful-shutdown drain budget")
	flag.Parse()

	d, err := build(opts)
	if err != nil {
		log.Fatalf("cbfww-serve: %v", err)
	}
	if err := d.start(); err != nil {
		log.Fatalf("cbfww-serve: %v", err)
	}
	log.Printf("cbfww-serve listening on http://%s", d.srv.Addr())
	if len(d.urls) > 0 {
		log.Printf("try: curl 'http://%s/fetch?url=%s'", d.srv.Addr(), d.urls[0])
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	log.Printf("received %v; draining in-flight requests", s)

	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := d.shutdown(ctx); err != nil {
		log.Fatalf("cbfww-serve: shutdown: %v", err)
	}
	st := d.wh.Stats()
	fmt.Printf("served %d requests (%.0f%% hits), %d origin fetches\n",
		st.Requests, 100*st.HitRatio(), st.OriginFetches)
}
