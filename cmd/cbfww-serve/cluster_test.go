package main

// Multi-daemon integration: three cbfww-serve daemons federated with
// -join semantics over real sockets, fetching through a real (and
// fault-injecting) simweb origin socket. Asserts the cluster contract:
// ownership routing with observable headers, a single origin fetch per
// object cluster-wide, and node loss degrading to local fetch + peer
// hits + stale serves — never to request failures.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cbfww/internal/core"
	"cbfww/internal/peers"
	"cbfww/internal/simweb"
	"cbfww/internal/workload"
)

// clusterFixture is the running topology: one shared origin socket and
// one daemon per member, all federated.
type clusterFixture struct {
	origin  *simweb.HTTPOrigin
	daemons []*daemon
	addrs   []string
	urls    []string
	client  *http.Client
	co      clusterOpts
	schema  string
}

// clusterOpts shapes a test topology. The zero value reproduces the PR 6
// single-owner cluster: one owner per URL, no prober, no replication.
type clusterOpts struct {
	redirect       bool
	replicas       int           // replica-set size; 0 = 1 (single-owner)
	probeInterval  time.Duration // health-probe cadence; 0 = inert (hourly)
	probeThreshold int
	faultRate      float64 // injected origin error rate
	strongSchema   bool    // strong consistency (revalidate every serve)
	health         bool    // start each member's prober + replication worker
	fixedAddrs     bool    // pre-reserve ports so members can restart in place
}

// strongSchema writes a schema forcing strong consistency, so every
// resident access revalidates against the origin — the lever that makes
// stale-serve degradation observable when the origin goes dark.
func strongSchema(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "strong.schema")
	if err := os.WriteFile(path, []byte("consistency strong\n"), 0o644); err != nil {
		t.Fatalf("write schema: %v", err)
	}
	return path
}

// startCluster brings up the origin plus n federated daemons. Membership
// is configured after every listener binds (the ephemeral-port dance the
// -join flag does for fixed addresses).
func startCluster(t *testing.T, n int, co clusterOpts) *clusterFixture {
	t.Helper()
	g, err := workload.GenerateWeb(core.NewSimClock(0), func() workload.WebConfig {
		cfg := workload.DefaultWebConfig()
		cfg.Sites, cfg.PagesPerSite, cfg.Seed = 4, 10, 42
		return cfg
	}())
	if err != nil {
		t.Fatalf("GenerateWeb: %v", err)
	}
	var faults *simweb.FaultConfig
	if co.faultRate > 0 {
		faults = &simweb.FaultConfig{Seed: 9, ErrorRate: co.faultRate}
	}
	origin, err := simweb.NewHTTPOrigin(g.Web, faults)
	if err != nil {
		t.Fatalf("NewHTTPOrigin: %v", err)
	}
	f := &clusterFixture{origin: origin, urls: g.PageURLs, client: &http.Client{Timeout: 15 * time.Second}, co: co}
	t.Cleanup(func() { origin.Close() })

	if co.strongSchema {
		f.schema = strongSchema(t)
	}
	bind := make([]string, n)
	if co.fixedAddrs {
		reserved, err := simweb.ReserveAddrs(n)
		if err != nil {
			t.Fatalf("ReserveAddrs: %v", err)
		}
		copy(bind, reserved)
	} else {
		for i := range bind {
			bind[i] = "127.0.0.1:0"
		}
	}
	for i := 0; i < n; i++ {
		d := f.buildDaemon(t, bind[i])
		f.daemons = append(f.daemons, d)
		f.addrs = append(f.addrs, d.srv.Addr())
	}
	for i, d := range f.daemons {
		f.joinRing(d, f.addrs[i])
	}
	t.Cleanup(func() {
		for _, d := range f.daemons {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			d.shutdown(ctx)
			cancel()
		}
	})
	return f
}

// buildDaemon builds and starts one member on addr with the fixture's
// options. Membership is wired separately (joinRing) once every
// listener's address is known.
func (f *clusterFixture) buildDaemon(t *testing.T, addr string) *daemon {
	t.Helper()
	replicas := f.co.replicas
	if replicas == 0 {
		replicas = 1
	}
	probeInterval := f.co.probeInterval
	if probeInterval == 0 {
		probeInterval = time.Hour // inert: tests drive health by hand
	}
	d, err := build(options{
		addr:             addr,
		origin:           f.origin.Addr(),
		schemaFile:       f.schema,
		workers:          8,
		fetchTimeout:     5 * time.Second,
		retry:            4,
		breakerThreshold: 3,
		breakerCooldown:  time.Minute,
		redirect:         f.co.redirect,
		replicas:         replicas,
		probeInterval:    probeInterval,
		probeThreshold:   f.co.probeThreshold,
	})
	if err != nil {
		t.Fatalf("build daemon on %s: %v", addr, err)
	}
	if err := d.start(); err != nil {
		t.Fatalf("start daemon on %s: %v", addr, err)
	}
	return d
}

// joinRing wires one member into the fixture's static ring and, when the
// topology runs health, starts its prober and replication worker.
func (f *clusterFixture) joinRing(d *daemon, self string) {
	d.cluster.Configure(self, f.addrs)
	if f.co.health {
		d.cluster.Start()
	}
}

// kill shuts member i down — the node crash of a chaos run. Its address
// stays in every survivor's ring; only the process goes away.
func (f *clusterFixture) kill(t *testing.T, i int) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := f.daemons[i].shutdown(ctx); err != nil {
		t.Fatalf("kill daemon %d: %v", i, err)
	}
}

// restart brings member i back on its old address with a cold warehouse,
// the way a crashed node rejoins: same ring position, empty memory. The
// bind retries briefly — the OS has just released the port.
func (f *clusterFixture) restart(t *testing.T, i int) {
	t.Helper()
	addr := f.addrs[i]
	deadline := time.Now().Add(5 * time.Second)
	for {
		replicas := f.co.replicas
		if replicas == 0 {
			replicas = 1
		}
		probeInterval := f.co.probeInterval
		if probeInterval == 0 {
			probeInterval = time.Hour
		}
		d, err := build(options{
			addr:             addr,
			origin:           f.origin.Addr(),
			schemaFile:       f.schema,
			workers:          8,
			fetchTimeout:     5 * time.Second,
			retry:            4,
			breakerThreshold: 3,
			breakerCooldown:  time.Minute,
			redirect:         f.co.redirect,
			replicas:         replicas,
			probeInterval:    probeInterval,
			probeThreshold:   f.co.probeThreshold,
		})
		if err != nil {
			t.Fatalf("rebuild daemon %d: %v", i, err)
		}
		if err := d.start(); err != nil {
			if time.Now().After(deadline) {
				t.Fatalf("restart daemon %d on %s: %v", i, addr, err)
			}
			time.Sleep(50 * time.Millisecond)
			continue
		}
		f.joinRing(d, addr)
		f.daemons[i] = d
		return
	}
}

// fetchView is the slice of the /fetch response (plus routing headers)
// the assertions care about.
type fetchView struct {
	status int
	node   string
	owner  string
	stale  bool
	Body   string `json:"body"`
	Hit    bool   `json:"hit"`
	Source string `json:"source"`
}

// fetchVia GETs pageURL through the daemon at via and fails the test on
// any transport error — the cluster contract is "never fail a request".
func (f *clusterFixture) fetchVia(t *testing.T, via, pageURL string) fetchView {
	t.Helper()
	resp, err := f.client.Get("http://" + via + "/fetch?url=" + url.QueryEscape(pageURL))
	if err != nil {
		t.Fatalf("fetch %s via %s: %v", pageURL, via, err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	v := fetchView{
		status: resp.StatusCode,
		node:   resp.Header.Get(peers.HeaderNode),
		owner:  resp.Header.Get(peers.HeaderOwner),
		stale:  resp.Header.Get("X-CBFWW-Stale") == "1",
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatalf("fetch %s via %s: decode: %v (%q)", pageURL, via, err, body)
		}
	}
	return v
}

// urlOwnedBy picks a page URL the ring assigns to addrs[want].
func urlOwnedBy(t *testing.T, ring *peers.Ring, urls []string, owner string) string {
	t.Helper()
	for _, u := range urls {
		if ring.Owner(u) == owner {
			return u
		}
	}
	t.Fatalf("no URL owned by %s among %d pages", owner, len(urls))
	return ""
}

func TestClusterOwnershipAndSingleOriginFetch(t *testing.T) {
	// The PR 6 shape on purpose: single owner per URL, flaky origin,
	// strong consistency. Replication and the prober stay out of the
	// picture so the baseline routing contract stays pinned.
	f := startCluster(t, 3, clusterOpts{faultRate: 0.15, strongSchema: true})
	ring := peers.NewRing(peers.DefaultVNodes, f.addrs)

	// Pick an object owned by the node we will later kill, and two
	// bystander gateways.
	ownerAddr := f.addrs[1]
	u := urlOwnedBy(t, ring, f.urls, ownerAddr)
	gwA, gwC := f.addrs[0], f.addrs[2]

	// Admit via a non-owner gateway: the request must be proxied to the
	// owner, which cold-misses, finds no peer copy, and fetches origin.
	v := f.fetchVia(t, gwA, u)
	if v.status != http.StatusOK || v.Body == "" {
		t.Fatalf("admit via %s = %d %+v", gwA, v.status, v)
	}
	if v.owner != ownerAddr || v.node != ownerAddr {
		t.Errorf("admit headers: node=%q owner=%q, want both %q (proxied to owner)", v.node, v.owner, ownerAddr)
	}
	if v.Source != "origin" || v.Hit {
		t.Errorf("admit result: source=%q hit=%v, want a cold origin fetch", v.Source, v.Hit)
	}
	admittedBody := v.Body

	// Served from every gateway: the owner hits locally; the other
	// bystander proxies. Exactly one origin fetch total.
	v = f.fetchVia(t, ownerAddr, u)
	if v.status != http.StatusOK || !v.Hit || v.node != ownerAddr {
		t.Errorf("owner serve: %+v, want a local hit on %s", v, ownerAddr)
	}
	v = f.fetchVia(t, gwC, u)
	if v.status != http.StatusOK || !v.Hit || v.node != ownerAddr || v.Body != admittedBody {
		t.Errorf("bystander serve: %+v, want the owner's copy proxied through %s", v, gwC)
	}
	if got := f.origin.Web().FetchCount(u); got != 1 {
		t.Fatalf("origin fetches after cluster-wide serves = %d, want exactly 1", got)
	}

	// The proxying gateways' ledgers saw the traffic.
	var proxied uint64
	for _, p := range f.daemons[0].cluster.Stats().Peers {
		proxied += p.Proxied
	}
	if proxied == 0 {
		t.Error("gateway A proxied counter = 0 after routing to the owner")
	}

	// --- Node loss: kill the owner mid-test. ---
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := f.daemons[1].shutdown(ctx); err != nil {
		t.Fatalf("shutdown owner: %v", err)
	}
	cancel()

	// Gateway A holds no copy: its proxy dies, it falls back locally,
	// probes peers (owner dead, C empty), and re-fetches from origin —
	// degraded locality, not a failed request.
	v = f.fetchVia(t, gwA, u)
	if v.status != http.StatusOK {
		t.Fatalf("fetch with dead owner via %s = %d, want 200 (local fallback)", gwA, v.status)
	}
	if v.node != gwA || v.Source != "origin" {
		t.Errorf("dead-owner fallback: node=%q source=%q, want %s serving its own origin fetch", v.node, v.Source, gwA)
	}
	if got := f.origin.Web().FetchCount(u); got != 2 {
		t.Errorf("origin fetches after owner loss = %d, want 2 (one re-admission)", got)
	}

	// Gateway C also falls back — but now A holds a copy, so C's peer
	// probe finds it: no third origin fetch.
	v = f.fetchVia(t, gwC, u)
	if v.status != http.StatusOK {
		t.Fatalf("fetch with dead owner via %s = %d, want 200", gwC, v.status)
	}
	if v.Source != "peer" {
		t.Errorf("bystander fallback source = %q, want \"peer\" (A's copy found before origin)", v.Source)
	}
	if got := f.origin.Web().FetchCount(u); got != 2 {
		t.Errorf("origin fetches after peer-hit fallback = %d, want still 2", got)
	}
	if got := f.daemons[2].wh.Stats().PeerFetches; got == 0 {
		t.Error("warehouse C peer-fetch counter = 0 after a peer admission")
	}

	// Repeated traffic opens the dead owner's breaker; requests keep
	// succeeding, now routed around without proxy attempts.
	for i := 0; i < 3; i++ {
		if v := f.fetchVia(t, gwA, u); v.status != http.StatusOK {
			t.Fatalf("fetch %d with open breaker = %d, want 200", i, v.status)
		}
	}
	if got := f.daemons[0].cluster.BreakerState(ownerAddr); got != "open" {
		t.Errorf("A's breaker for dead owner = %q, want open", got)
	}
	var around uint64
	for _, p := range f.daemons[0].cluster.Stats().Peers {
		around += p.RoutedAround
	}
	if around == 0 {
		t.Error("routed_around = 0 after breaker opened")
	}

	// --- Origin loss: blackout the page's host. Strong consistency makes
	// every resident serve revalidate; with the origin dark that fails,
	// and the warehouse degrades to its admitted copy, flagged stale.
	host := strings.TrimPrefix(u, "http://")
	host = host[:strings.IndexByte(host, '/')]
	f.origin.Blackout(host, true)
	v = f.fetchVia(t, gwA, u)
	if v.status != http.StatusOK || v.Body != admittedBody {
		t.Fatalf("blackout serve = %d, want 200 with the admitted copy", v.status)
	}
	if !v.stale {
		t.Error("blackout serve not flagged X-CBFWW-Stale")
	}
	if got := f.origin.Web().FetchCount(u); got != 2 {
		t.Errorf("origin fetches after blackout serves = %d, want still 2", got)
	}

	// The /stats cluster section on a surviving node reflects the run.
	resp, err := f.client.Get("http://" + gwA + "/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var stats struct {
		Cluster peers.ClusterStats `json:"cluster"`
	}
	if err := json.Unmarshal(raw, &stats); err != nil {
		t.Fatalf("stats decode: %v", err)
	}
	if !stats.Cluster.Enabled || stats.Cluster.Members != 3 || len(stats.Cluster.Peers) != 2 {
		t.Errorf("cluster stats = %+v, want enabled with 3 members and 2 peers", stats.Cluster)
	}
	var openSeen bool
	for _, p := range stats.Cluster.Peers {
		if p.Addr == ownerAddr && p.Breaker == "open" {
			openSeen = true
		}
	}
	if !openSeen {
		t.Errorf("stats does not show the dead owner's breaker open: %+v", stats.Cluster.Peers)
	}
}

// TestClusterRedirectMode: with -redirect the non-owner answers 307
// pointing at the owner instead of proxying, and a redirect-following
// client lands on the owner's serve.
func TestClusterRedirectMode(t *testing.T) {
	f := startCluster(t, 2, clusterOpts{redirect: true, faultRate: 0.15, strongSchema: true})
	ring := peers.NewRing(peers.DefaultVNodes, f.addrs)
	ownerAddr := f.addrs[1]
	u := urlOwnedBy(t, ring, f.urls, ownerAddr)

	noFollow := &http.Client{
		Timeout: 15 * time.Second,
		CheckRedirect: func(*http.Request, []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
	resp, err := noFollow.Get("http://" + f.addrs[0] + "/fetch?url=" + url.QueryEscape(u))
	if err != nil {
		t.Fatalf("redirect fetch: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("non-owner fetch = %d, want 307", resp.StatusCode)
	}
	loc := resp.Header.Get("Location")
	if !strings.HasPrefix(loc, "http://"+ownerAddr+"/fetch") {
		t.Fatalf("Location = %q, want the owner %s", loc, ownerAddr)
	}

	// Following the redirect (default client behavior) serves the page.
	v := f.fetchVia(t, f.addrs[0], u)
	if v.status != http.StatusOK || v.Body == "" || v.node != ownerAddr {
		t.Fatalf("followed redirect = %d node=%q, want the owner's serve", v.status, v.node)
	}
	if got := f.origin.Web().FetchCount(u); got != 1 {
		t.Errorf("origin fetches = %d, want 1", got)
	}
}

// waitUntil polls cond every 5ms for up to 5s.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// residentOn reports whether node holds url, via the resident-only probe
// endpoint (never triggers an origin fetch).
func (f *clusterFixture) residentOn(node, pageURL string) bool {
	resp, err := f.client.Get("http://" + node + peers.PeerFetchPath + "?url=" + url.QueryEscape(pageURL))
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// peerStat digs addr's row out of d's cluster stats.
func peerStat(d *daemon, addr string) (peers.PeerStat, bool) {
	for _, p := range d.cluster.Stats().Peers {
		if p.Addr == addr {
			return p, true
		}
	}
	return peers.PeerStat{}, false
}

// TestClusterChaosKillRestart is the replication chaos run: three
// daemons, R=2, fault-free origin. Kill a node mid-workload — reads of
// everything already admitted keep succeeding off the surviving replicas
// with ZERO origin refetches and zero failed requests; writes destined
// for the dead node park in hinted handoff. Restart it — the handoff
// drains into it and the health view flips back Up.
func TestClusterChaosKillRestart(t *testing.T) {
	f := startCluster(t, 3, clusterOpts{
		replicas:       2,
		probeInterval:  25 * time.Millisecond,
		probeThreshold: 2,
		health:         true,
		fixedAddrs:     true,
	})
	ring := peers.NewRing(peers.DefaultVNodes, f.addrs)
	victim := f.addrs[1]
	survivors := []*daemon{f.daemons[0], f.daemons[2]}
	survivorAddrs := []string{f.addrs[0], f.addrs[2]}

	// URLs replicated on the victim are the interesting ones: its death
	// must cost nothing for them.
	var onVictim []string
	for _, u := range f.urls {
		for _, o := range ring.Owners(u, 2) {
			if o == victim {
				onVictim = append(onVictim, u)
				break
			}
		}
	}
	if len(onVictim) < 11 {
		t.Fatalf("only %d URLs replicate on the victim, need 11", len(onVictim))
	}
	admitted := onVictim[:8]

	// --- Phase 1: admit through rotating gateways; replication must land
	// a second copy on every replica before we pull the plug.
	for i, u := range admitted {
		if v := f.fetchVia(t, f.addrs[i%3], u); v.status != http.StatusOK {
			t.Fatalf("admit %s = %d", u, v.status)
		}
	}
	for _, u := range admitted {
		u := u
		owners := ring.Owners(u, 2)
		waitUntil(t, "replicas of "+u, func() bool {
			for _, o := range owners {
				if !f.residentOn(o, u) {
					return false
				}
			}
			return true
		})
		if got := f.origin.Web().FetchCount(u); got != 1 {
			t.Fatalf("origin fetches for %s after replication = %d, want 1 (pushes must not refetch)", u, got)
		}
	}

	// --- Phase 2: kill the victim. Every admitted object still has a
	// live replica; reads succeed from any gateway without origin help.
	f.kill(t, 1)
	for pass := 0; pass < 2; pass++ {
		for i, u := range admitted {
			if v := f.fetchVia(t, survivorAddrs[(i+pass)%2], u); v.status != http.StatusOK {
				t.Fatalf("read of %s with victim dead = %d, want 200", u, v.status)
			}
		}
	}
	for _, u := range admitted {
		if got := f.origin.Web().FetchCount(u); got != 1 {
			t.Errorf("origin fetches for %s after node loss = %d, want still 1 (zero refetches)", u, got)
		}
	}
	waitUntil(t, "survivors to mark the victim Down", func() bool {
		return survivors[0].cluster.PeerDown(victim) && survivors[1].cluster.PeerDown(victim)
	})
	if ps, ok := peerStat(survivors[0], victim); !ok || ps.Health != "down" || ps.WentDown == 0 {
		t.Errorf("survivor stats for dead victim = %+v, want health down", ps)
	}

	// --- Phase 3: admissions while the victim is Down park their
	// replication pushes in hinted handoff instead of losing them.
	handedOff := onVictim[8:11]
	for i, u := range handedOff {
		if v := f.fetchVia(t, survivorAddrs[i%2], u); v.status != http.StatusOK {
			t.Fatalf("admit %s with victim dead = %d, want 200", u, v.status)
		}
	}
	waitUntil(t, "handoff to park the victim's copies", func() bool {
		var queued int
		for _, d := range survivors {
			if ps, ok := peerStat(d, victim); ok {
				queued += ps.HandoffQueued
			}
		}
		return queued >= len(handedOff)
	})

	// --- Phase 4: restart the victim in place. The survivors' probers
	// notice, flip it Up, and drain the parked payloads into it — no
	// origin traffic involved.
	f.restart(t, 1)
	waitUntil(t, "survivors to mark the victim Up", func() bool {
		return !survivors[0].cluster.PeerDown(victim) && !survivors[1].cluster.PeerDown(victim)
	})
	waitUntil(t, "handoff to drain", func() bool {
		for _, d := range survivors {
			if ps, ok := peerStat(d, victim); ok && ps.HandoffQueued != 0 {
				return false
			}
		}
		return true
	})
	for _, u := range handedOff {
		u := u
		waitUntil(t, "drained copy of "+u+" on the restarted victim", func() bool {
			return f.residentOn(victim, u)
		})
		if got := f.origin.Web().FetchCount(u); got != 1 {
			t.Errorf("origin fetches for handed-off %s = %d, want 1 (drain must not refetch)", u, got)
		}
	}
	var drained uint64
	for _, d := range survivors {
		if ps, ok := peerStat(d, victim); ok {
			if ps.Health != "up" {
				t.Errorf("survivor health view of restarted victim = %+v, want up", ps)
			}
			drained += ps.HandoffDrained
		}
	}
	if drained < uint64(len(handedOff)) {
		t.Errorf("handoff drained = %d, want >= %d", drained, len(handedOff))
	}
}
