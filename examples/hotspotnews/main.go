// Hotspotnews: the Topic Sensor in action. A news feed announces a local
// event before the request wave arrives (the paper's Kyoto-inet
// observation: hot spots follow news). With the sensor watching the feed,
// the warehouse prefetches the event pages and boosts their topic, so the
// wave's first requests already hit warm copies.
package main

import (
	"fmt"
	"log"

	"cbfww/internal/core"
	"cbfww/internal/simweb"
	"cbfww/internal/warehouse"
	"cbfww/internal/workload"
)

func main() {
	clock := core.NewSimClock(0)
	wcfg := workload.DefaultWebConfig()
	wcfg.Sites, wcfg.PagesPerSite = 6, 15
	web, err := workload.GenerateWeb(clock, wcfg)
	if err != nil {
		log.Fatal(err)
	}
	w, err := warehouse.New(warehouse.DefaultConfig(), clock, web.Web)
	if err != nil {
		log.Fatal(err)
	}

	// The news feed the sensor watches.
	feed := simweb.NewNewsFeed("kyoto-news")
	w.WatchFeed(feed)

	// Pick an "event topic" and its pages.
	const eventTopic = 2
	var eventPages []string
	for _, u := range web.PageURLs {
		if web.TopicOf[u] == eventTopic {
			eventPages = append(eventPages, u)
		}
	}
	fmt.Printf("event topic %d has %d pages\n\n", eventTopic, len(eventPages))

	// Background traffic on other topics so the system has usage history.
	for i, u := range web.PageURLs {
		if web.TopicOf[u] != eventTopic && i%3 == 0 {
			if _, err := w.Get("background", u); err != nil {
				log.Fatal(err)
			}
			clock.Advance(30)
		}
	}

	// T-2h: the paper publishes. Articles name the pages they cover.
	fmt.Printf("[%v] news: festival announced — %d articles published\n", clock.Now(), len(eventPages))
	for _, u := range eventPages {
		feed.Publish(simweb.Article{
			Time:     clock.Now(),
			Headline: "gion festival parade schedule announced",
			URL:      u,
		})
	}

	// The hourly maintenance sweep polls the sensor.
	clock.Advance(3600)
	rep, err := w.Maintain()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[%v] maintenance: %d bursting terms, %d pages prefetched\n",
		clock.Now(), len(rep.Bursts), rep.Prefetched)
	for i, b := range rep.Bursts {
		if i >= 5 {
			break
		}
		fmt.Printf("         burst: %-12s score %.1f\n", b.Term, b.Score)
	}

	// T0: the request wave hits.
	clock.Advance(3600)
	fmt.Printf("\n[%v] the wave arrives:\n", clock.Now())
	hits := 0
	for _, u := range eventPages {
		res, err := w.Get("crowd", u)
		if err != nil {
			log.Fatal(err)
		}
		if res.Hit {
			hits++
		}
		clock.Advance(10)
	}
	fmt.Printf("first-request warm hits: %d/%d (without the sensor: 0/%d — every first request \n"+
		"would pay an origin fetch)\n", hits, len(eventPages), len(eventPages))

	st := w.Stats()
	fmt.Printf("\nstats: prefetches=%d requests=%d hitRatio=%.0f%%\n",
		st.Prefetches, st.Requests, 100*st.HitRatio())
}
