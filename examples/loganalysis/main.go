// Loganalysis: reproduce the paper's headline measurement on a month-long
// synthetic access log — "Over 60% of web pages once used will never be
// retrieved again before modified or replaced" — plus the hot-spot and
// popularity analyses the Data Analyzer provides.
package main

import (
	"fmt"
	"log"

	"cbfww/internal/analyzer"
	"cbfww/internal/core"
	"cbfww/internal/logmine"
	"cbfww/internal/workload"
)

func main() {
	// One month of traffic (1 tick = 1 second) over 3 000 pages.
	clock := core.NewSimClock(0)
	wcfg := workload.DefaultWebConfig()
	wcfg.Sites, wcfg.PagesPerSite = 25, 200
	web, err := workload.GenerateWeb(clock, wcfg)
	if err != nil {
		log.Fatal(err)
	}
	tcfg := workload.DefaultTraceConfig()
	tcfg.Sessions = 4000
	tcfg.Length = 30 * 24 * 3600
	tcfg.FollowLinkProb = 0.35
	tcfg.UpdatesPerTick = 0.004
	tcfg.Events = []workload.Event{
		{Start: 12 * 24 * 3600, Length: 6 * 3600, Topic: 4, Intensity: 0.8,
			Headline: "city marathon today", Lead: 3600},
	}
	trace, err := workload.GenerateTrace(web, clock, tcfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d requests over %d pages (%d content updates)\n\n",
		len(trace.Log), web.Web.NumPages(), trace.Updates)

	// The paper's measurement.
	reuse := logmine.AnalyzeReuse(trace.Log)
	fmt.Printf("objects referenced:        %d\n", reuse.Objects)
	fmt.Printf("one-timers:                %d\n", reuse.OneTimers)
	fmt.Printf("one-timer ratio:           %.1f%%   (paper: \"over 60%%\")\n",
		100*reuse.OneTimerRatio())
	fmt.Printf("infinite-cache hit bound:  %.1f%%\n\n", 100*reuse.MaxHitRatio())

	// The full analyzer report.
	rep := analyzer.Analyze(trace.Log, 4)
	fmt.Print(rep)

	fmt.Println("\ntop 5 pages:")
	for _, uc := range rep.TopK(5) {
		fmt.Printf("  %6d  %s (topic %d)\n", uc.Count, uc.URL, web.TopicOf[uc.URL])
	}

	fmt.Println("\nburstiest hot spots (count over middle-80% lifetime):")
	for i, h := range rep.HotSpots {
		if i >= 5 {
			break
		}
		fmt.Printf("  %4d refs in %7d ticks  %s\n", h.Count, int64(h.Lifetime), h.URL)
	}

	// Inter-arrival distribution: how quickly reuse happens when it does.
	gaps := logmine.InterArrival(trace.Log)
	if len(gaps) > 0 {
		fmt.Printf("\nre-reference gaps: p50=%d p90=%d p99=%d ticks\n",
			gaps[len(gaps)/2], gaps[len(gaps)*9/10], gaps[len(gaps)*99/100])
	}
	_ = core.TimeNever
}
