// Crawler: populate a warehouse over real HTTP. The simulated web is
// served on a socket; a polite concurrent crawler walks its link graph
// through the crawl.Requester (which also implements warehouse.Origin),
// and every crawled page is prefetched into the warehouse — so by the
// time users arrive, the warehouse is warm and queryable.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"cbfww/internal/core"
	"cbfww/internal/crawl"
	"cbfww/internal/warehouse"
	"cbfww/internal/workload"
)

func main() {
	// The origin: a synthetic web on a real listener.
	clock := core.NewSimClock(0)
	wcfg := workload.DefaultWebConfig()
	wcfg.Sites, wcfg.PagesPerSite = 5, 12
	web, err := workload.GenerateWeb(clock, wcfg)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, web.Web.Handler())
	fmt.Printf("origin: %d pages on %d sites at http://%s\n\n",
		web.Web.NumPages(), wcfg.Sites, ln.Addr())

	// The Web Requester: HTTP fetcher with per-host politeness.
	rcfg := crawl.DefaultConfig()
	rcfg.PerHostInterval = 2 * time.Millisecond
	requester, err := crawl.NewRequester(rcfg, crawl.FixedResolver(ln.Addr().String()))
	if err != nil {
		log.Fatal(err)
	}

	// The warehouse fetches through the same requester (real sockets).
	w, err := warehouse.New(warehouse.DefaultConfig(), clock, requester)
	if err != nil {
		log.Fatal(err)
	}

	// Crawl breadth-first from three seeds and prefetch every page found.
	c, err := crawl.NewCrawler(requester, crawl.CrawlConfig{
		MaxPages: 200, MaxDepth: 5, Workers: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	res := c.Crawl(web.PageURLs[0], web.PageURLs[13], web.PageURLs[26])
	fmt.Printf("crawl: %d pages in %v (%d errors, %d skipped, %d HTTP requests)\n",
		len(res.Pages), time.Since(start).Round(time.Millisecond),
		res.Errors, res.Skipped, requester.Fetches())

	for _, p := range res.Pages {
		if err := w.Prefetch(p.URL); err != nil {
			log.Fatal(err)
		}
		clock.Advance(1)
	}
	fmt.Printf("warehouse: %d pages admitted via prefetch\n\n", w.ResidentPages())

	// A user arrives: everything crawled is already warm.
	warm := 0
	for _, p := range res.Pages[:10] {
		r, err := w.Get("visitor", p.URL)
		if err != nil {
			log.Fatal(err)
		}
		if r.Hit {
			warm++
		}
		clock.Advance(1)
	}
	fmt.Printf("first 10 visitor requests: %d/10 warm hits\n", warm)

	// And the crawl's harvest is queryable.
	rows, err := w.Query("SELECT LFU 5 p.url, p.size FROM Physical_Page p WHERE p.size > 100,000")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nlargest rarely-used pages (SELECT LFU 5 ... WHERE p.size > 100,000):")
	for _, r := range rows {
		fmt.Printf("  %-44s %s bytes\n", r.Values[0], r.Values[1])
	}
}
