// Socialnav: logical documents and social navigation (§3(5), §5.2). Users
// repeatedly traverse the same link paths; the warehouse mines those paths
// into logical pages, and new users standing on an entry page get the
// community's trodden continuations plus content recommendations from
// their own interest profile.
package main

import (
	"fmt"
	"log"
	"strings"

	"cbfww/internal/core"
	"cbfww/internal/warehouse"
	"cbfww/internal/workload"
)

func main() {
	clock := core.NewSimClock(0)
	wcfg := workload.DefaultWebConfig()
	wcfg.Sites, wcfg.PagesPerSite = 5, 12
	web, err := workload.GenerateWeb(clock, wcfg)
	if err != nil {
		log.Fatal(err)
	}
	cfg := warehouse.DefaultConfig()
	cfg.Miner.MinSupport = 3
	w, err := warehouse.New(cfg, clock, web.Web)
	if err != nil {
		log.Fatal(err)
	}

	// Find a real 3-hop path in the generated link graph.
	entry := web.PageURLs[0]
	p0, _ := web.Web.Lookup(entry)
	if len(p0.Anchors) == 0 {
		log.Fatal("generated entry page has no links; re-run with another seed")
	}
	second := p0.Anchors[0].Target
	p1, _ := web.Web.Lookup(second)
	third := ""
	for _, a := range p1.Anchors {
		if a.Target != entry && a.Target != second {
			third = a.Target
			break
		}
	}
	path := []string{entry, second}
	if third != "" {
		path = append(path, third)
	}
	fmt.Printf("the community's habitual route (%d hops):\n", len(path))
	for _, u := range path {
		fmt.Println("  ", u)
	}

	// Seven users walk it; others wander.
	for i := 0; i < 7; i++ {
		user := fmt.Sprintf("user%02d", i)
		for _, u := range path {
			if _, err := w.Get(user, u); err != nil {
				log.Fatal(err)
			}
			clock.Advance(5)
		}
		clock.Advance(4000) // session boundary
	}
	for i, u := range web.PageURLs[5:15] {
		if _, err := w.Get(fmt.Sprintf("wanderer%d", i%3), u); err != nil {
			log.Fatal(err)
		}
		clock.Advance(2500)
	}

	// Mine logical pages.
	rep, err := w.MinePaths()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmined: %d sessions -> %d frequent paths -> %d logical pages in %d regions\n",
		rep.Sessions, rep.Paths, rep.LogicalPages, rep.Regions)

	// Social navigation: a newcomer lands on the entry page.
	fmt.Printf("\na newcomer is on %s; the community suggests:\n", entry)
	for _, s := range w.NextHops(entry, 3) {
		fmt.Printf("  support=%2d  -> %s\n", s.Support, strings.Join(s.URLs, " -> "))
	}

	// The logical document is queryable, title assembled per §5.3.
	rows, err := w.Query(`SELECT MFU 3 l.path, l.title FROM Logical_Page l`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nlogical pages (anchor-text titles):")
	for _, r := range rows {
		fmt.Printf("  %s\n    title: %q\n", r.Values[0], r.Values[1])
	}

	// Content recommendation from the newcomer's profile after one visit.
	if _, err := w.Get("newcomer", entry); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncontent recommendations for the newcomer:")
	for _, s := range w.Recommend("newcomer", 3) {
		fmt.Printf("  score=%.3f %v\n", s.Score, s.ID)
	}
	_ = core.TimeNever
}
