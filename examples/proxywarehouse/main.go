// Proxywarehouse: the warehouse as an HTTP front over a live (simulated)
// origin — everything crossing real sockets.
//
// Topology:
//
//	client ──HTTP──► proxy (this process) ──► warehouse ──► origin (simweb
//	                                                        over net/http)
//
// The proxy serves /fetch?url=... from the warehouse and reports where the
// body came from and what it cost; /stats exposes the counters. The demo
// client hammers a few URLs and prints the miss-then-hit latencies.
package main

import (
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"cbfww/internal/core"
	"cbfww/internal/warehouse"
	"cbfww/internal/workload"
)

func main() {
	clock := core.NewSimClock(0)
	wcfg := workload.DefaultWebConfig()
	wcfg.Sites, wcfg.PagesPerSite = 4, 10
	web, err := workload.GenerateWeb(clock, wcfg)
	if err != nil {
		log.Fatal(err)
	}

	// Origin: the simulated web served over a real listener. The warehouse
	// itself talks to simweb directly (its Web Requester), but the origin
	// being curl-able demonstrates the full substrate.
	origin, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(origin, web.Web.Handler())
	fmt.Printf("origin listening on http://%s (Host header selects the site)\n", origin.Addr())

	w, err := warehouse.New(warehouse.DefaultConfig(), clock, web.Web)
	if err != nil {
		log.Fatal(err)
	}

	// Proxy: serves pages out of the warehouse.
	mux := http.NewServeMux()
	mux.HandleFunc("/fetch", func(rw http.ResponseWriter, req *http.Request) {
		url := req.URL.Query().Get("url")
		user := req.URL.Query().Get("user")
		if url == "" {
			http.Error(rw, "missing url parameter", http.StatusBadRequest)
			return
		}
		clock.Advance(1)
		res, err := w.Get(user, url)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusBadGateway)
			return
		}
		rw.Header().Set("X-CBFWW-Source", res.Source)
		rw.Header().Set("X-CBFWW-Latency", fmt.Sprint(int64(res.Latency)))
		rw.Header().Set("X-CBFWW-Priority", fmt.Sprintf("%.3f", float64(res.Priority)))
		fmt.Fprintf(rw, "<html><head><title>%s</title></head><body>%s</body></html>\n",
			res.Page.Title, res.Page.Body)
	})
	mux.HandleFunc("/stats", func(rw http.ResponseWriter, _ *http.Request) {
		s := w.Stats()
		fmt.Fprintf(rw, "requests=%d hits=%d hitRatio=%.3f originFetches=%d meanLatency=%.1f\n",
			s.Requests, s.Hits, s.HitRatio(), s.OriginFetches, s.MeanLatency())
	})
	proxy, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(proxy, mux)
	fmt.Printf("proxy  listening on http://%s\n\n", proxy.Addr())

	// Demo client: fetch three pages twice each through the proxy.
	client := &http.Client{Timeout: 5 * time.Second}
	for _, url := range web.PageURLs[:3] {
		for attempt := 1; attempt <= 2; attempt++ {
			target := fmt.Sprintf("http://%s/fetch?user=demo&url=%s", proxy.Addr(), url)
			resp, err := client.Get(target)
			if err != nil {
				log.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			fmt.Printf("fetch %-44s try %d: source=%-8s simulated-latency=%s ticks\n",
				url, attempt, resp.Header.Get("X-CBFWW-Source"),
				resp.Header.Get("X-CBFWW-Latency"))
		}
	}

	resp, err := client.Get(fmt.Sprintf("http://%s/stats", proxy.Addr()))
	if err != nil {
		log.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("\n/stats: %s", body)
}
