// Quickstart: build a warehouse over a tiny synthetic web, fetch pages
// through it, and run a popularity-aware query — the smallest end-to-end
// tour of the public API.
package main

import (
	"fmt"
	"log"
	"strings"

	"cbfww/internal/core"
	"cbfww/internal/warehouse"
	"cbfww/internal/workload"
)

func main() {
	// 1. A simulated web (stands in for the live web; see DESIGN.md).
	clock := core.NewSimClock(0)
	wcfg := workload.DefaultWebConfig()
	wcfg.Sites, wcfg.PagesPerSite = 3, 8
	web, err := workload.GenerateWeb(clock, wcfg)
	if err != nil {
		log.Fatal(err)
	}

	// 2. The warehouse: cache + database + search engine + data warehouse.
	w, err := warehouse.New(warehouse.DefaultConfig(), clock, web.Web)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Fetch through it. First access misses (origin fetch + admission
	// with an evidence-based priority); repeats hit warehouse tiers.
	url := web.PageURLs[0]
	for i := 0; i < 3; i++ {
		res, err := w.Get("alice", url)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("get #%d: hit=%-5v source=%-8s latency=%3d prio=%.2f  %q\n",
			i+1, res.Hit, res.Source, int64(res.Latency), float64(res.Priority),
			res.Page.Title)
		clock.Advance(5)
	}

	// 4. Touch more pages so a query has something to rank.
	for i, u := range web.PageURLs[1:6] {
		for j := 0; j <= i; j++ {
			if _, err := w.Get("alice", u); err != nil {
				log.Fatal(err)
			}
			clock.Advance(3)
		}
	}

	// 5. A §4.3 popularity-aware query: the five most frequently used
	// pages, straight from the usage metadata the warehouse maintains.
	rows, err := w.Query(`SELECT MFU 5 p.url, p.freq FROM Physical_Page p`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSELECT MFU 5 p.url, p.freq FROM Physical_Page p")
	for _, r := range rows {
		fmt.Printf("  %-42s freq=%s\n", r.Values[0], r.Values[1])
	}

	// 6. Ranked retrieval over stored content.
	title := strings.Fields(rowsTitle(w, web.PageURLs[0]))[0]
	fmt.Printf("\nsearch %q:\n", title)
	for _, s := range w.Search(title, 3) {
		fmt.Printf("  score=%.3f %v\n", s.Value, s.Doc)
	}

	st := w.Stats()
	fmt.Printf("\nstats: %d requests, %.0f%% hits, mean latency %.1f ticks\n",
		st.Requests, 100*st.HitRatio(), st.MeanLatency())
}

func rowsTitle(w *warehouse.Warehouse, url string) string {
	snap, ok := w.Versions().Latest(url)
	if !ok {
		return "kyoto"
	}
	return snap.Title
}
