package crawl

import (
	"errors"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"cbfww/internal/core"
	"cbfww/internal/simweb"
	"cbfww/internal/warehouse"
	"cbfww/internal/workload"
)

// originFixture serves a generated simweb over a real listener and
// returns a Requester pointed at it.
func originFixture(t *testing.T, cfg Config) (*workload.GeneratedWeb, *Requester, *core.SimClock) {
	t.Helper()
	clock := core.NewSimClock(0)
	wcfg := workload.DefaultWebConfig()
	wcfg.Sites, wcfg.PagesPerSite = 3, 8
	g, err := workload.GenerateWeb(clock, wcfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(g.Web.Handler())
	t.Cleanup(srv.Close)
	addr := strings.TrimPrefix(srv.URL, "http://")
	r, err := NewRequester(cfg, FixedResolver(addr))
	if err != nil {
		t.Fatal(err)
	}
	return g, r, clock
}

func TestRequesterFetchReconstructsPage(t *testing.T) {
	g, r, _ := originFixture(t, DefaultConfig())
	url := g.PageURLs[0]
	want, _ := g.Web.Lookup(url)

	got, err := r.Fetch(url)
	if err != nil {
		t.Fatal(err)
	}
	p := got.Page
	if p.URL != url {
		t.Errorf("URL = %q", p.URL)
	}
	if p.Title != want.Title {
		t.Errorf("Title = %q, want %q", p.Title, want.Title)
	}
	if p.Version != want.Version {
		t.Errorf("Version = %d, want %d", p.Version, want.Version)
	}
	if len(p.Anchors) != len(want.Anchors) {
		t.Fatalf("anchors: got %d, want %d", len(p.Anchors), len(want.Anchors))
	}
	for i, a := range p.Anchors {
		if a.Target != want.Anchors[i].Target || a.Text != want.Anchors[i].Text {
			t.Errorf("anchor %d = %+v, want %+v", i, a, want.Anchors[i])
		}
	}
	if len(p.Components) != len(want.Components) {
		t.Fatalf("components: got %d, want %d", len(p.Components), len(want.Components))
	}
	for i, c := range p.Components {
		if c.URL != want.Components[i].URL || c.Size != want.Components[i].Size {
			t.Errorf("component %d = %+v, want %+v", i, c, want.Components[i])
		}
	}
	// Body text survives (modulo whitespace normalization).
	for _, w := range strings.Fields(want.Body)[:5] {
		if !strings.Contains(p.Body, w) {
			t.Errorf("body missing %q", w)
		}
	}
	if got.Latency == 0 {
		t.Error("latency header not propagated")
	}
}

func TestRequesterHead(t *testing.T) {
	g, r, clock := originFixture(t, DefaultConfig())
	url := g.PageURLs[1]
	v, _, err := r.Head(url)
	if err != nil || v != 1 {
		t.Fatalf("Head = %d, %v", v, err)
	}
	clock.Advance(42)
	g.Web.Update(url, "new content")
	v2, lm, err := r.Head(url)
	if err != nil || v2 != 2 || lm != 42 {
		t.Errorf("Head after update = %d @%v, %v", v2, lm, err)
	}
}

func TestRequesterErrors(t *testing.T) {
	g, r, _ := originFixture(t, DefaultConfig())
	_ = g
	if _, err := r.Fetch("http://site00.example/nonexistent.html"); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("fetch 404 err = %v", err)
	}
	if _, _, err := r.Head("http://site00.example/nonexistent.html"); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("head 404 err = %v", err)
	}
	if _, err := r.Fetch("ftp://bad"); !errors.Is(err, core.ErrInvalid) {
		t.Errorf("bad scheme err = %v", err)
	}
	if _, err := NewRequester(DefaultConfig(), nil); err == nil {
		t.Error("nil resolver accepted")
	}
}

func TestRequesterPoliteness(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PerHostInterval = 30 * time.Millisecond
	g, r, _ := originFixture(t, cfg)
	url := g.PageURLs[0]
	start := time.Now()
	const n = 4
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := r.Fetch(url); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if min := time.Duration(n-1) * cfg.PerHostInterval; elapsed < min {
		t.Errorf("4 same-host fetches took %v, politeness demands >= %v", elapsed, min)
	}
	if r.Fetches() != n {
		t.Errorf("Fetches = %d", r.Fetches())
	}
}

func TestWarehouseOverHTTP(t *testing.T) {
	g, r, clock := originFixture(t, DefaultConfig())
	w, err := warehouse.New(warehouse.DefaultConfig(), clock, r)
	if err != nil {
		t.Fatal(err)
	}
	url := g.PageURLs[0]
	r1, err := w.Get("alice", url)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Hit {
		t.Error("first HTTP-backed access was a hit")
	}
	r2, err := w.Get("alice", url)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Hit {
		t.Error("second access missed")
	}
	if r2.Page.Title != r1.Page.Title {
		t.Error("content mismatch between origin fetch and warehouse hit")
	}
	// Full admission happened: queryable.
	rows, err := w.Query("SELECT MRU p.url FROM Physical_Page p")
	if err != nil || len(rows) != 1 {
		t.Errorf("query over HTTP-admitted page: %v, %v", rows, err)
	}
}

func TestCrawlerCoversReachableGraph(t *testing.T) {
	g, r, _ := originFixture(t, DefaultConfig())
	c, err := NewCrawler(r, CrawlConfig{MaxPages: 1000, MaxDepth: 10, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	res := c.Crawl(g.PageURLs[0])
	if len(res.Pages) < 2 {
		t.Fatalf("crawl found only %d pages", len(res.Pages))
	}
	// No duplicates.
	seen := map[string]bool{}
	for _, p := range res.Pages {
		if seen[p.URL] {
			t.Errorf("duplicate crawl of %q", p.URL)
		}
		seen[p.URL] = true
	}
	if res.Errors != 0 {
		t.Errorf("crawl errors: %d", res.Errors)
	}
}

func TestCrawlerRespectsLimits(t *testing.T) {
	g, r, _ := originFixture(t, DefaultConfig())
	c, _ := NewCrawler(r, CrawlConfig{MaxPages: 3, MaxDepth: 10, Workers: 4})
	res := c.Crawl(g.PageURLs[0])
	if len(res.Pages) > 3 {
		t.Errorf("MaxPages violated: %d", len(res.Pages))
	}
	c2, _ := NewCrawler(r, CrawlConfig{MaxPages: 1000, MaxDepth: 0, Workers: 4})
	res2 := c2.Crawl(g.PageURLs[0])
	if len(res2.Pages) != 1 {
		t.Errorf("MaxDepth 0 crawled %d pages", len(res2.Pages))
	}
	if res2.Skipped == 0 {
		t.Error("depth-limited crawl skipped nothing")
	}
	if _, err := NewCrawler(nil, DefaultCrawlConfig()); err == nil {
		t.Error("nil origin accepted")
	}
}

func TestCrawlerSameHostOnly(t *testing.T) {
	g, r, _ := originFixture(t, DefaultConfig())
	c, _ := NewCrawler(r, CrawlConfig{MaxPages: 1000, MaxDepth: 10, Workers: 4, SameHostOnly: true})
	seed := g.PageURLs[0]
	host := strings.TrimPrefix(seed, "http://")
	host = host[:strings.IndexByte(host, '/')]
	res := c.Crawl(seed)
	for _, p := range res.Pages {
		if !strings.HasPrefix(p.URL, "http://"+host+"/") {
			t.Errorf("cross-host page crawled: %q", p.URL)
		}
	}
}

func TestParsePageEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		html string
		chk  func(t *testing.T, p simweb.Page)
	}{
		{"empty", "", func(t *testing.T, p simweb.Page) {
			if p.Title != "" || p.Body != "" || p.Anchors != nil {
				t.Errorf("parsed %+v from empty", p)
			}
		}},
		{"plain text", "just words", func(t *testing.T, p simweb.Page) {
			if p.Body != "just words" {
				t.Errorf("body = %q", p.Body)
			}
		}},
		{"unclosed title", "<title>half", func(t *testing.T, p simweb.Page) {
			if p.Title != "half" {
				t.Errorf("title = %q", p.Title)
			}
		}},
		{"single quotes", `<a href='http://x/y'>link text</a>`, func(t *testing.T, p simweb.Page) {
			if len(p.Anchors) != 1 || p.Anchors[0].Target != "http://x/y" {
				t.Errorf("anchors = %+v", p.Anchors)
			}
		}},
		{"bare attr", `<img src=http://x/i.png width=512>`, func(t *testing.T, p simweb.Page) {
			if len(p.Components) != 1 || p.Components[0].Size != 512 {
				t.Errorf("components = %+v", p.Components)
			}
		}},
		{"anchor without href", `<a name=top>here</a>`, func(t *testing.T, p simweb.Page) {
			if len(p.Anchors) != 0 {
				t.Errorf("anchors = %+v", p.Anchors)
			}
		}},
		{"script stripped", `<script>var x = "kyoto";</script>real body`, func(t *testing.T, p simweb.Page) {
			if strings.Contains(p.Body, "kyoto") || !strings.Contains(p.Body, "real body") {
				t.Errorf("body = %q", p.Body)
			}
		}},
		{"nested markup in anchor", `<a href="u"><b>bold</b> text</a>`, func(t *testing.T, p simweb.Page) {
			if len(p.Anchors) != 1 || !strings.Contains(p.Anchors[0].Text, "bold") {
				t.Errorf("anchors = %+v", p.Anchors)
			}
		}},
		{"lone lt", "a < b", func(t *testing.T, p simweb.Page) {
			if !strings.HasPrefix(p.Body, "a") {
				t.Errorf("body = %q", p.Body)
			}
		}},
		{"case-insensitive close", `<TITLE>Mixed</TITLE>rest`, func(t *testing.T, p simweb.Page) {
			if p.Title != "Mixed" {
				t.Errorf("title = %q", p.Title)
			}
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			c.chk(t, ParsePage("http://h/p", c.html))
		})
	}
}

func TestParsePageRoundTripProperty(t *testing.T) {
	// Every page the generator produces must round-trip through the
	// HTML serializer (simweb.Handler's format) and ParsePage with
	// structure intact. Exercise via the HTTP fixture across all pages.
	g, r, _ := originFixture(t, DefaultConfig())
	for _, url := range g.PageURLs {
		want, _ := g.Web.Lookup(url)
		got, err := r.Fetch(url)
		if err != nil {
			t.Fatalf("fetch %q: %v", url, err)
		}
		if got.Page.Title != want.Title {
			t.Errorf("%q: title %q != %q", url, got.Page.Title, want.Title)
		}
		var wantTargets, gotTargets []string
		for _, a := range want.Anchors {
			wantTargets = append(wantTargets, a.Target)
		}
		for _, a := range got.Page.Anchors {
			gotTargets = append(gotTargets, a.Target)
		}
		if !reflect.DeepEqual(gotTargets, wantTargets) {
			t.Errorf("%q: anchor targets %v != %v", url, gotTargets, wantTargets)
		}
	}
}

func TestAttrValue(t *testing.T) {
	cases := []struct{ attrs, name, want string }{
		{`href="x"`, "href", "x"},
		{`class="c" href="x"`, "href", "x"},
		{`href='y'`, "href", "y"},
		{`href=z id=3`, "href", "z"},
		{`xhref="no"`, "href", ""},
		{`href=`, "href", ""},
		{`HREF="up"`, "href", "up"}, // lowercased key match
		{``, "href", ""},
	}
	for _, c := range cases {
		if got := attrValue(c.attrs, c.name); got != c.want {
			t.Errorf("attrValue(%q, %q) = %q, want %q", c.attrs, c.name, got, c.want)
		}
	}
}
