package crawl

import (
	"fmt"
	"sync"

	"cbfww/internal/core"
	"cbfww/internal/simweb"
)

// CrawlConfig bounds a crawl.
type CrawlConfig struct {
	// MaxPages stops the crawl after this many successful fetches.
	MaxPages int
	// MaxDepth bounds link distance from the seeds (0 = seeds only).
	MaxDepth int
	// Workers is the number of concurrent fetchers.
	Workers int
	// SameHostOnly restricts the frontier to the seeds' hosts.
	SameHostOnly bool
}

// DefaultCrawlConfig crawls up to 256 pages, 4 links deep, 8 workers.
func DefaultCrawlConfig() CrawlConfig {
	return CrawlConfig{MaxPages: 256, MaxDepth: 4, Workers: 8}
}

// CrawlResult is what a crawl returns.
type CrawlResult struct {
	// Pages are the successfully fetched pages, in completion order.
	Pages []simweb.Page
	// Errors counts failed fetches (dead links, non-200s).
	Errors int
	// Skipped counts frontier entries dropped by depth/host/size limits.
	Skipped int
}

// Crawler walks the link graph breadth-first through a Requester (or any
// origin) with a bounded worker pool. It is the "robots will search
// through internet" half of the paper's index trade-off — here used to
// seed a warehouse.
type Crawler struct {
	origin interface {
		Fetch(url string) (simweb.FetchResult, error)
	}
	cfg CrawlConfig
}

// NewCrawler returns a crawler over any Fetch-capable origin.
func NewCrawler(origin interface {
	Fetch(url string) (simweb.FetchResult, error)
}, cfg CrawlConfig) (*Crawler, error) {
	if origin == nil {
		return nil, fmt.Errorf("crawl: %w: nil origin", core.ErrInvalid)
	}
	if cfg.MaxPages < 1 {
		cfg.MaxPages = 1
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	return &Crawler{origin: origin, cfg: cfg}, nil
}

// job is one frontier entry.
type job struct {
	url   string
	depth int
}

// Crawl runs a breadth-first crawl from the seeds.
func (c *Crawler) Crawl(seeds ...string) CrawlResult {
	var (
		mu      sync.Mutex
		res     CrawlResult
		seen    = make(map[string]bool)
		hosts   = make(map[string]bool)
		pending sync.WaitGroup
	)
	for _, s := range seeds {
		if host, _, err := splitURL(s); err == nil {
			hosts[host] = true
		}
	}
	// A buffered channel holds the frontier; pending tracks outstanding
	// jobs so the crawl terminates when the frontier drains.
	frontier := make(chan job, 4096)
	enqueue := func(j job) {
		mu.Lock()
		defer mu.Unlock()
		if seen[j.url] {
			return
		}
		if j.depth > c.cfg.MaxDepth {
			res.Skipped++
			return
		}
		if c.cfg.SameHostOnly {
			if host, _, err := splitURL(j.url); err != nil || !hosts[host] {
				res.Skipped++
				return
			}
		}
		if len(seen) >= c.cfg.MaxPages {
			res.Skipped++
			return
		}
		seen[j.url] = true
		pending.Add(1)
		select {
		case frontier <- j:
		default:
			// Frontier overflow: drop rather than deadlock.
			pending.Done()
			delete(seen, j.url)
			res.Skipped++
		}
	}
	for _, s := range seeds {
		enqueue(job{url: s, depth: 0})
	}

	var workers sync.WaitGroup
	for w := 0; w < c.cfg.Workers; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for j := range frontier {
				fr, err := c.origin.Fetch(j.url)
				mu.Lock()
				if err != nil {
					res.Errors++
					mu.Unlock()
				} else {
					res.Pages = append(res.Pages, fr.Page)
					mu.Unlock()
					for _, a := range fr.Page.Anchors {
						enqueue(job{url: a.Target, depth: j.depth + 1})
					}
				}
				pending.Done()
			}
		}()
	}
	pending.Wait()
	close(frontier)
	workers.Wait()
	return res
}
