package crawl

// Requester robustness: politeness waits must yield to cancellation, and
// non-200 responses must not cost the keep-alive connection.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoliteWaitYieldsToCancellation(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	addr := strings.TrimPrefix(srv.URL, "http://")

	cfg := DefaultConfig()
	cfg.PerHostInterval = time.Hour
	r, err := NewRequester(cfg, FixedResolver(addr))
	if err != nil {
		t.Fatal(err)
	}

	// First request claims the politeness slot.
	if _, err := r.Fetch("http://h.example/"); err != nil {
		t.Fatalf("first fetch: %v", err)
	}

	// Second request would wait an hour; cancellation must free it now.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := r.FetchCtx(ctx, "http://h.example/")
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let it enter the polite wait
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled polite wait err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled request still stuck in polite wait")
	}

	// An already-cancelled context never even claims a slot.
	if _, err := r.FetchCtx(ctx, "http://other.example/"); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled fetch err = %v, want context.Canceled", err)
	}
}

// TestNon200KeepsConnectionAlive: an error response with a body must be
// drained, not abandoned — abandoning it kills the TCP connection and the
// next request pays a fresh dial.
func TestNon200KeepsConnectionAlive(t *testing.T) {
	var conns atomic.Int32
	var hits atomic.Int32
	srv := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if hits.Add(1) == 1 {
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprint(w, strings.Repeat("error detail ", 512))
			return
		}
		fmt.Fprint(w, "<html><head><title>ok</title></head><body>fine</body></html>")
	}))
	srv.Config.ConnState = func(_ net.Conn, st http.ConnState) {
		if st == http.StateNew {
			conns.Add(1)
		}
	}
	srv.Start()
	defer srv.Close()
	addr := strings.TrimPrefix(srv.URL, "http://")

	r, err := NewRequester(DefaultConfig(), FixedResolver(addr))
	if err != nil {
		t.Fatal(err)
	}

	// First fetch: 500 with a body. Must surface a classifiable error.
	_, err = r.Fetch("http://h.example/")
	var se *StatusError
	if !errors.As(err, &se) || se.HTTPStatus() != http.StatusInternalServerError {
		t.Fatalf("500 fetch err = %v, want StatusError(500)", err)
	}

	// Second fetch succeeds — over the same connection.
	if _, err := r.Fetch("http://h.example/"); err != nil {
		t.Fatalf("second fetch: %v", err)
	}
	if n := conns.Load(); n != 1 {
		t.Errorf("server saw %d connections, want 1 (keep-alive lost after non-200)", n)
	}
}

// TestHeadNon200KeepsConnectionAlive mirrors the GET case for HEAD.
func TestHeadNon200KeepsConnectionAlive(t *testing.T) {
	var conns atomic.Int32
	var hits atomic.Int32
	srv := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if hits.Add(1) == 1 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("X-Simweb-Version", "3")
	}))
	srv.Config.ConnState = func(_ net.Conn, st http.ConnState) {
		if st == http.StateNew {
			conns.Add(1)
		}
	}
	srv.Start()
	defer srv.Close()
	addr := strings.TrimPrefix(srv.URL, "http://")

	r, err := NewRequester(DefaultConfig(), FixedResolver(addr))
	if err != nil {
		t.Fatal(err)
	}

	_, _, err = r.Head("http://h.example/")
	var se *StatusError
	if !errors.As(err, &se) || se.HTTPStatus() != http.StatusServiceUnavailable {
		t.Fatalf("503 head err = %v, want StatusError(503)", err)
	}
	if v, _, err := r.Head("http://h.example/"); err != nil || v != 3 {
		t.Fatalf("second head = %d, %v", v, err)
	}
	if n := conns.Load(); n != 1 {
		t.Errorf("server saw %d connections, want 1", n)
	}
}
