package crawl

import (
	"strconv"
	"strings"

	"cbfww/internal/core"
	"cbfww/internal/simweb"
)

// ParsePage reconstructs the document model from HTML: title from
// <title>, anchors from <a href> (with their anchor texts), media
// components from <img src> (width attribute, when numeric, is taken as
// the component size — simweb's convention), and body text from everything
// else. The parser is deliberately small — a tag scanner, not a browser —
// but handles the malformed-markup cases a crawler meets (unclosed tags,
// missing quotes, nested elements).
func ParsePage(url, html string) simweb.Page {
	p := simweb.Page{URL: url}
	var body strings.Builder

	i := 0
	n := len(html)
	for i < n {
		lt := strings.IndexByte(html[i:], '<')
		if lt < 0 {
			body.WriteString(html[i:])
			break
		}
		body.WriteString(html[i : i+lt])
		i += lt
		tag, attrs, end, ok := scanTag(html, i)
		if !ok {
			// A lone '<': treat the rest as text.
			body.WriteString(html[i:])
			break
		}
		switch strings.ToLower(tag) {
		case "title":
			text, after := textUntilClose(html, end, "title")
			p.Title = strings.TrimSpace(text)
			i = after
		case "a":
			href := attrValue(attrs, "href")
			text, after := textUntilClose(html, end, "a")
			text = strings.TrimSpace(text)
			if href != "" {
				p.Anchors = append(p.Anchors, simweb.Anchor{Text: text, Target: href})
			}
			body.WriteString(text) // anchor text is page text too
			body.WriteByte(' ')
			i = after
		case "img":
			src := attrValue(attrs, "src")
			if src != "" {
				size := core.Bytes(0)
				if w := attrValue(attrs, "width"); w != "" {
					if v, err := strconv.ParseInt(w, 10, 64); err == nil {
						size = core.Bytes(v)
					}
				}
				p.Components = append(p.Components, simweb.Component{URL: src, Size: size})
			}
			i = end
		case "script", "style":
			_, after := textUntilClose(html, end, tag)
			i = after
		default:
			// Any other tag is a separator.
			body.WriteByte(' ')
			i = end
		}
	}
	p.Body = strings.Join(strings.Fields(body.String()), " ")
	return p
}

// scanTag parses the tag starting at html[i] == '<'. It returns the tag
// name, the raw attribute text, the index just past '>', and whether a
// complete tag was found.
func scanTag(html string, i int) (name, attrs string, end int, ok bool) {
	gt := strings.IndexByte(html[i:], '>')
	if gt < 0 {
		return "", "", 0, false
	}
	inner := html[i+1 : i+gt]
	end = i + gt + 1
	inner = strings.TrimPrefix(inner, "/")
	inner = strings.TrimSuffix(inner, "/")
	name, attrs, _ = strings.Cut(strings.TrimSpace(inner), " ")
	return name, attrs, end, true
}

// textUntilClose collects text from pos until </tag> (case-insensitive),
// returning the text and the index just past the closing tag. Nested
// different tags inside are stripped; a missing close consumes the rest.
func textUntilClose(html string, pos int, tag string) (string, int) {
	lower := strings.ToLower(html)
	closeTag := "</" + strings.ToLower(tag)
	idx := strings.Index(lower[pos:], closeTag)
	if idx < 0 {
		return stripTags(html[pos:]), len(html)
	}
	text := stripTags(html[pos : pos+idx])
	// Skip past the closing '>'.
	after := pos + idx
	if gt := strings.IndexByte(html[after:], '>'); gt >= 0 {
		after += gt + 1
	} else {
		after = len(html)
	}
	return text, after
}

// stripTags removes <...> runs from a fragment.
func stripTags(s string) string {
	var b strings.Builder
	depth := 0
	for _, r := range s {
		switch {
		case r == '<':
			depth++
		case r == '>':
			if depth > 0 {
				depth--
				b.WriteByte(' ')
			} else {
				b.WriteRune(r)
			}
		case depth == 0:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// attrValue extracts the value of name from a raw attribute string,
// accepting double-quoted, single-quoted and bare values.
func attrValue(attrs, name string) string {
	lower := strings.ToLower(attrs)
	key := name + "="
	for start := 0; ; {
		idx := strings.Index(lower[start:], key)
		if idx < 0 {
			return ""
		}
		idx += start
		// Must be at a word boundary.
		if idx > 0 && !isSpace(lower[idx-1]) {
			start = idx + len(key)
			continue
		}
		v := attrs[idx+len(key):]
		if v == "" {
			return ""
		}
		switch v[0] {
		case '"':
			if end := strings.IndexByte(v[1:], '"'); end >= 0 {
				return v[1 : 1+end]
			}
			return v[1:]
		case '\'':
			if end := strings.IndexByte(v[1:], '\''); end >= 0 {
				return v[1 : 1+end]
			}
			return v[1:]
		default:
			end := 0
			for end < len(v) && !isSpace(v[end]) {
				end++
			}
			return v[:end]
		}
	}
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}
