// Package crawl is the Web Requester of Figure 1 realized over real HTTP:
// a polite, concurrent fetcher that retrieves pages from origin servers
// through net/http, reconstructs their document structure (title, body,
// anchors, media components) from the HTML, and exposes the
// warehouse.Origin interface so a CBFWW can run against socket-served
// origins instead of the in-process simulation.
//
// The package also provides Crawler, a bounded-depth concurrent frontier
// crawler used to pre-populate a warehouse ("store everything as long as
// it seems to be worthwhile").
package crawl

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"cbfww/internal/core"
	"cbfww/internal/simweb"
)

// Resolver maps a logical host ("site00.example") to a dialable address
// ("127.0.0.1:41234"). Simulated hosts are not in DNS, so the requester
// needs this indirection; a production deployment would return the host
// unchanged.
type Resolver func(host string) (string, error)

// FixedResolver resolves every host to one address — the common test
// setup where a single listener serves all sites by Host header.
func FixedResolver(addr string) Resolver {
	return func(string) (string, error) { return addr, nil }
}

// Config tunes the requester.
type Config struct {
	// PerHostInterval is the politeness delay between requests to the
	// same host (wall-clock; zero disables).
	PerHostInterval time.Duration
	// Timeout bounds each HTTP request.
	Timeout time.Duration
	// MaxBodyBytes bounds how much of a response body is read.
	MaxBodyBytes int64
}

// DefaultConfig is polite enough for tests and local use.
func DefaultConfig() Config {
	return Config{
		PerHostInterval: 0,
		Timeout:         10 * time.Second,
		MaxBodyBytes:    4 << 20,
	}
}

// Requester fetches pages over HTTP. It implements warehouse.Origin.
// Safe for concurrent use; politeness is enforced per host.
type Requester struct {
	cfg     Config
	resolve Resolver
	client  *http.Client

	mu      sync.Mutex
	lastHit map[string]time.Time
	fetches int
}

// NewRequester returns a Requester using the given resolver.
func NewRequester(cfg Config, resolve Resolver) (*Requester, error) {
	if resolve == nil {
		return nil, fmt.Errorf("crawl: %w: nil resolver", core.ErrInvalid)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 4 << 20
	}
	return &Requester{
		cfg:     cfg,
		resolve: resolve,
		client:  &http.Client{Timeout: cfg.Timeout},
		lastHit: make(map[string]time.Time),
	}, nil
}

// Fetches returns the number of HTTP requests issued (GET and HEAD).
func (r *Requester) Fetches() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fetches
}

// polite blocks until the per-host interval has elapsed, then claims the
// slot. The wait is interruptible: a cancelled request releases its
// worker-pool slot immediately instead of sleeping out the interval.
func (r *Requester) polite(ctx context.Context, host string) error {
	if r.cfg.PerHostInterval <= 0 {
		r.mu.Lock()
		r.fetches++
		r.mu.Unlock()
		return ctx.Err()
	}
	for {
		r.mu.Lock()
		last := r.lastHit[host]
		now := time.Now()
		if wait := r.cfg.PerHostInterval - now.Sub(last); wait > 0 {
			r.mu.Unlock()
			t := time.NewTimer(wait)
			select {
			case <-t.C:
				continue
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			}
		}
		r.lastHit[host] = now
		r.fetches++
		r.mu.Unlock()
		return nil
	}
}

// do issues one request with the Host header carrying the logical host.
// The context bounds the whole exchange (on top of the client timeout).
func (r *Requester) do(ctx context.Context, method, url string) (*http.Response, error) {
	host, path, err := splitURL(url)
	if err != nil {
		return nil, err
	}
	addr, err := r.resolve(host)
	if err != nil {
		return nil, fmt.Errorf("crawl: resolve %q: %w", host, err)
	}
	if err := r.polite(ctx, host); err != nil {
		return nil, fmt.Errorf("crawl: %s %s: %w", method, url, err)
	}
	req, err := http.NewRequestWithContext(ctx, method, "http://"+addr+path, nil)
	if err != nil {
		return nil, fmt.Errorf("crawl: %w: %v", core.ErrInvalid, err)
	}
	req.Host = host
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("crawl: %s %s: %w", method, url, err)
	}
	return resp, nil
}

// Fetch implements warehouse.Origin over HTTP: GET the page, parse its
// HTML back into the document model, and report the origin's simulated
// latency (X-Simweb-Latency header; absent headers degrade gracefully).
func (r *Requester) Fetch(url string) (simweb.FetchResult, error) {
	return r.FetchCtx(context.Background(), url)
}

// FetchCtx is Fetch bounded by a context: cancellation or deadline expiry
// aborts the HTTP exchange. It implements warehouse.ContextOrigin.
func (r *Requester) FetchCtx(ctx context.Context, url string) (simweb.FetchResult, error) {
	resp, err := r.do(ctx, http.MethodGet, url)
	if err != nil {
		return simweb.FetchResult{}, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode == http.StatusNotFound {
		return simweb.FetchResult{}, fmt.Errorf("crawl: fetch %q: %w", url, core.ErrNotFound)
	}
	if resp.StatusCode != http.StatusOK {
		return simweb.FetchResult{}, fmt.Errorf("crawl: fetch %q: %w", url, &StatusError{Code: resp.StatusCode})
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, r.cfg.MaxBodyBytes))
	if err != nil {
		return simweb.FetchResult{}, fmt.Errorf("crawl: read %q: %w", url, err)
	}
	page := ParsePage(url, string(body))
	page.Version = headerInt(resp.Header, "X-Simweb-Version", 1)
	page.LastMod = core.Time(headerInt(resp.Header, "X-Simweb-LastMod", 0))
	if page.Size == 0 {
		page.Size = core.Bytes(len(body))
	}
	lat := core.Duration(headerInt(resp.Header, "X-Simweb-Latency", 0))
	return simweb.FetchResult{Page: page, Latency: lat}, nil
}

// Head implements warehouse.Origin's revalidation probe.
func (r *Requester) Head(url string) (int, core.Time, error) {
	return r.HeadCtx(context.Background(), url)
}

// HeadCtx is Head bounded by a context. It implements
// warehouse.ContextOrigin.
func (r *Requester) HeadCtx(ctx context.Context, url string) (int, core.Time, error) {
	resp, err := r.do(ctx, http.MethodHead, url)
	if err != nil {
		return 0, 0, err
	}
	drainClose(resp.Body)
	if resp.StatusCode == http.StatusNotFound {
		return 0, 0, fmt.Errorf("crawl: head %q: %w", url, core.ErrNotFound)
	}
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("crawl: head %q: %w", url, &StatusError{Code: resp.StatusCode})
	}
	v := headerInt(resp.Header, "X-Simweb-Version", 1)
	lm := core.Time(headerInt(resp.Header, "X-Simweb-LastMod", 0))
	return v, lm, nil
}

// StatusError reports a non-200, non-404 origin response. It exposes the
// code via HTTPStatus so retry policies can classify 5xx as transient
// without importing this package.
type StatusError struct{ Code int }

func (e *StatusError) Error() string { return "status " + strconv.Itoa(e.Code) }

// HTTPStatus returns the response status code.
func (e *StatusError) HTTPStatus() int { return e.Code }

// drainClose consumes what remains of body before closing it, so the
// underlying connection returns to the keep-alive pool instead of being
// torn down. The drain is bounded: a huge error body is not worth a
// connection.
func drainClose(body io.ReadCloser) {
	io.Copy(io.Discard, io.LimitReader(body, 256<<10))
	body.Close()
}

func headerInt(h http.Header, key string, def int) int {
	s := h.Get(key)
	if s == "" {
		return def
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return def
	}
	return n
}

// splitURL separates an http:// URL into host and path.
func splitURL(url string) (host, path string, err error) {
	rest, ok := strings.CutPrefix(url, "http://")
	if !ok {
		return "", "", fmt.Errorf("crawl: %w: URL %q must be http://", core.ErrInvalid, url)
	}
	host, path, _ = strings.Cut(rest, "/")
	if host == "" {
		return "", "", fmt.Errorf("crawl: %w: URL %q has no host", core.ErrInvalid, url)
	}
	return host, "/" + path, nil
}
