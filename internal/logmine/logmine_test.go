package logmine

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"cbfww/internal/core"
)

func rec(t core.Time, user, url string) Record {
	return Record{Time: t, User: user, URL: url, Status: 200, Bytes: 1024}
}

func TestLogSortAndSpan(t *testing.T) {
	l := Log{rec(30, "u1", "/a"), rec(10, "u2", "/b"), rec(20, "u1", "/c")}
	l.Sort()
	if l[0].Time != 10 || l[2].Time != 30 {
		t.Errorf("Sort order wrong: %v", l)
	}
	first, last, ok := l.Span()
	if !ok || first != 10 || last != 30 {
		t.Errorf("Span = %v, %v, %v", first, last, ok)
	}
	if _, _, ok := (Log{}).Span(); ok {
		t.Error("empty Span ok = true")
	}
}

func TestLogRoundTrip(t *testing.T) {
	orig := Log{
		{Time: 5, User: "u1", URL: "/index.html", Referrer: "", Status: 200, Bytes: 2048, Modified: false},
		{Time: 9, User: "u2", URL: "/news/today.html", Referrer: "/index.html", Status: 200, Bytes: 512, Modified: true},
		{Time: 12, User: "u1", URL: "/img/logo.png", Referrer: "/index.html", Status: 304, Bytes: 0, Modified: false},
	}
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !reflect.DeepEqual(got, orig) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, orig)
	}
}

func TestParseSkipsCommentsAndBlank(t *testing.T) {
	in := "# comment\n\nu1 - - [5] \"GET /a HTTP/1.0\" 200 10 \"\" 0\n"
	got, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(got) != 1 || got[0].URL != "/a" {
		t.Errorf("Parse = %+v", got)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, in := range []string{
		"garbage line",
		`u1 - - [x] "GET /a HTTP/1.0" 200 10 "" 0`,
		`u1 - - [5] "POST /a HTTP/1.0" 200 10 "" 0`,
	} {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestSessionize(t *testing.T) {
	l := Log{
		rec(0, "u1", "/a"), rec(5, "u1", "/b"), rec(8, "u1", "/c"),
		rec(100, "u1", "/a"), rec(103, "u1", "/d"),
		rec(4, "u2", "/x"),
	}
	got := Sessionize(l, 30)
	if len(got) != 3 {
		t.Fatalf("got %d sessions: %+v", len(got), got)
	}
	// Ordered by user then start time.
	if got[0].User != "u1" || !reflect.DeepEqual(got[0].URLs, []string{"/a", "/b", "/c"}) {
		t.Errorf("session 0 = %+v", got[0])
	}
	if got[1].Start != 100 || !reflect.DeepEqual(got[1].URLs, []string{"/a", "/d"}) {
		t.Errorf("session 1 = %+v", got[1])
	}
	if got[2].User != "u2" || got[2].Len() != 1 {
		t.Errorf("session 2 = %+v", got[2])
	}
	if got[0].End != 8 {
		t.Errorf("session 0 End = %v", got[0].End)
	}
}

func TestSessionizeUnsortedInput(t *testing.T) {
	l := Log{rec(8, "u1", "/c"), rec(0, "u1", "/a"), rec(5, "u1", "/b")}
	got := Sessionize(l, 30)
	if len(got) != 1 || !reflect.DeepEqual(got[0].URLs, []string{"/a", "/b", "/c"}) {
		t.Errorf("Sessionize unsorted = %+v", got)
	}
}

func TestAnalyzeReuseBasic(t *testing.T) {
	l := Log{
		rec(0, "u1", "/once"),                          // one-timer
		rec(1, "u1", "/twice"), rec(2, "u2", "/twice"), // reused
		rec(3, "u1", "/mod"),
	}
	// /mod is re-accessed but the content was modified in between: both
	// epochs are one-use, so /mod is a one-timer URL.
	m := rec(4, "u2", "/mod")
	m.Modified = true
	l = append(l, m)

	s := AnalyzeReuse(l)
	if s.Objects != 3 {
		t.Errorf("Objects = %d", s.Objects)
	}
	if s.OneTimers != 2 {
		t.Errorf("OneTimers = %d, want 2 (/once and /mod)", s.OneTimers)
	}
	if s.TotalRefs != 5 {
		t.Errorf("TotalRefs = %d", s.TotalRefs)
	}
	if s.ReusedRefs != 1 {
		t.Errorf("ReusedRefs = %d, want 1 (second /twice)", s.ReusedRefs)
	}
	if r := s.OneTimerRatio(); r < 0.66 || r > 0.67 {
		t.Errorf("OneTimerRatio = %v, want 2/3", r)
	}
	if r := s.MaxHitRatio(); r != 0.2 {
		t.Errorf("MaxHitRatio = %v, want 0.2", r)
	}
}

func TestAnalyzeReuseEmpty(t *testing.T) {
	s := AnalyzeReuse(nil)
	if s.OneTimerRatio() != 0 || s.MaxHitRatio() != 0 {
		t.Errorf("empty log stats = %+v", s)
	}
}

// Property: OneTimers <= Objects and ReusedRefs <= TotalRefs - Objects.
func TestAnalyzeReuseInvariants(t *testing.T) {
	f := func(urls []uint8, mods []bool) bool {
		l := make(Log, 0, len(urls))
		for i, u := range urls {
			r := rec(core.Time(i), "u", "/p"+string(rune('a'+u%7)))
			if i < len(mods) {
				r.Modified = mods[i]
			}
			l = append(l, r)
		}
		s := AnalyzeReuse(l)
		if s.OneTimers > s.Objects {
			return false
		}
		if s.TotalRefs != len(l) {
			return false
		}
		return s.ReusedRefs <= s.TotalRefs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestInterArrival(t *testing.T) {
	l := Log{rec(0, "u", "/a"), rec(10, "u", "/a"), rec(13, "u", "/b"), rec(25, "u", "/a")}
	got := InterArrival(l)
	want := []core.Duration{10, 15}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("InterArrival = %v, want %v", got, want)
	}
}

// sessionsFromSeqs builds sessions directly for path-mining tests.
func sessionsFromSeqs(seqs ...[]string) []Session {
	out := make([]Session, len(seqs))
	for i, s := range seqs {
		out[i] = Session{User: "u", URLs: s}
	}
	return out
}

func TestMinePathsFig5(t *testing.T) {
	// Figure 5: paths "A-B-E" and "A-D-G"; A-D-G traversed 13 times.
	var seqs [][]string
	for i := 0; i < 13; i++ {
		seqs = append(seqs, []string{"/A", "/D", "/G"})
	}
	for i := 0; i < 5; i++ {
		seqs = append(seqs, []string{"/A", "/B", "/E"})
	}
	seqs = append(seqs, []string{"/A", "/C"}) // below support
	paths := MinePaths(sessionsFromSeqs(seqs...), MinerConfig{MinLength: 3, MaxLength: 3, MinSupport: 3})
	if len(paths) != 2 {
		t.Fatalf("got %d paths: %+v", len(paths), paths)
	}
	if paths[0].Key() != "/A -> /D -> /G" || paths[0].Support != 13 {
		t.Errorf("top path = %+v", paths[0])
	}
	if paths[1].Key() != "/A -> /B -> /E" || paths[1].Support != 5 {
		t.Errorf("second path = %+v", paths[1])
	}
	if paths[0].Entry() != "/A" || paths[0].Terminal() != "/G" {
		t.Errorf("entry/terminal = %q/%q", paths[0].Entry(), paths[0].Terminal())
	}
}

func TestMinePathsSkipsReloads(t *testing.T) {
	paths := MinePaths(sessionsFromSeqs(
		[]string{"/a", "/a", "/b"},
		[]string{"/a", "/a", "/b"},
		[]string{"/a", "/a", "/b"},
	), MinerConfig{MinLength: 2, MaxLength: 2, MinSupport: 2})
	for _, p := range paths {
		if p.URLs[0] == p.URLs[1] {
			t.Errorf("reload path mined: %+v", p)
		}
	}
	// /a -> /b should still be found.
	found := false
	for _, p := range paths {
		if p.Key() == "/a -> /b" && p.Support == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("missing /a -> /b: %+v", paths)
	}
}

func TestMinePathsRespectsMaxPaths(t *testing.T) {
	seqs := sessionsFromSeqs(
		[]string{"/a", "/b", "/c", "/d"},
		[]string{"/a", "/b", "/c", "/d"},
	)
	paths := MinePaths(seqs, MinerConfig{MinLength: 2, MaxLength: 3, MinSupport: 2, MaxPaths: 2})
	if len(paths) != 2 {
		t.Errorf("MaxPaths ignored: %d paths", len(paths))
	}
}

func TestMaximalOnly(t *testing.T) {
	paths := []Path{
		{URLs: []string{"/a", "/b", "/c"}, Support: 5},
		{URLs: []string{"/a", "/b"}, Support: 5}, // contained, equal support: dropped
		{URLs: []string{"/b", "/c"}, Support: 9}, // contained but higher support: kept
		{URLs: []string{"/x", "/y"}, Support: 2}, // unrelated: kept
	}
	got := MaximalOnly(paths)
	keys := make([]string, len(got))
	for i, p := range got {
		keys[i] = p.Key()
	}
	want := []string{"/a -> /b -> /c", "/b -> /c", "/x -> /y"}
	if !reflect.DeepEqual(keys, want) {
		t.Errorf("MaximalOnly = %v, want %v", keys, want)
	}
}

func TestPathsEndingAt(t *testing.T) {
	paths := []Path{
		{URLs: []string{"/a", "/cidr"}, Support: 7},
		{URLs: []string{"/b", "/x"}, Support: 4},
		{URLs: []string{"/c", "/d", "/cidr"}, Support: 3},
	}
	got := PathsEndingAt(paths, "/cidr")
	if len(got) != 2 || got[0].Support != 7 || got[1].Support != 3 {
		t.Errorf("PathsEndingAt = %+v", got)
	}
}

// Property: sessionization preserves every record exactly once, in
// per-user time order, with no within-session gap above the timeout.
func TestSessionizePartitionProperty(t *testing.T) {
	f := func(times []uint16, users []uint8) bool {
		n := len(times)
		if len(users) < n {
			n = len(users)
		}
		var l Log
		for i := 0; i < n; i++ {
			l = append(l, Record{
				Time: core.Time(times[i]),
				User: "u" + string(rune('a'+users[i]%4)),
				URL:  "/p",
			})
		}
		const timeout = 100
		sessions := Sessionize(l, timeout)
		total := 0
		for _, s := range sessions {
			total += s.Len()
			if s.Start > s.End {
				return false
			}
			if d := s.End.Sub(s.Start); core.Duration(s.Len()-1)*timeout < d && s.Len() > 1 {
				// End-Start can exceed timeout only via multiple steps,
				// each <= timeout.
				_ = d
			}
		}
		return total == len(l)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
