// Package logmine is the access-log substrate of CBFWW: the record model,
// a Common-Log-Format reader/writer, sessionization of per-user request
// streams, reference-reuse statistics (the paper's "over 60% of web pages
// once used will never be retrieved again before modified or replaced"
// measurement), and frequent-path mining, which discovers the repeated
// traversal paths that §5.2 promotes to logical documents.
package logmine

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"cbfww/internal/core"
)

// Record is one entry of a web access log. Fields mirror what a proxy can
// observe; URL strings identify objects because logs predate warehouse IDs.
type Record struct {
	// Time is the request time in simulation ticks.
	Time core.Time
	// User identifies the client (IP or session cookie in real logs).
	User string
	// URL is the requested resource.
	URL string
	// Referrer is the page the request came from ("" when typed directly).
	Referrer string
	// Status is the HTTP-like status code of the response.
	Status int
	// Bytes is the size of the returned body.
	Bytes core.Bytes
	// Modified reports whether this access observed content newer than the
	// previous access to the same URL (an update had happened in between).
	Modified bool
}

// Log is an ordered sequence of records. Generators produce logs sorted by
// Time; Sort restores that invariant after merging.
type Log []Record

// Sort orders the log by time, breaking ties by user then URL for
// determinism.
func (l Log) Sort() {
	sort.SliceStable(l, func(i, j int) bool {
		a, b := l[i], l[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.User != b.User {
			return a.User < b.User
		}
		return a.URL < b.URL
	})
}

// Span returns the first and last timestamps; ok is false for empty logs.
func (l Log) Span() (first, last core.Time, ok bool) {
	if len(l) == 0 {
		return 0, 0, false
	}
	first, last = l[0].Time, l[0].Time
	for _, r := range l[1:] {
		if r.Time < first {
			first = r.Time
		}
		if r.Time > last {
			last = r.Time
		}
	}
	return first, last, true
}

// WriteTo serializes the log in an extended Common Log Format, one record
// per line:
//
//	user - - [tick] "GET url HTTP/1.0" status bytes "referrer" modified
//
// The bracketed field holds the simulation tick rather than a calendar
// date; everything else follows CLF conventions so standard tooling can
// at least field-split the output.
func (l Log) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	for _, r := range l {
		mod := 0
		if r.Modified {
			mod = 1
		}
		c, err := fmt.Fprintf(bw, "%s - - [%d] %q %d %d %q %d\n",
			r.User, int64(r.Time), "GET "+r.URL+" HTTP/1.0",
			r.Status, int64(r.Bytes), r.Referrer, mod)
		n += int64(c)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// Parse reads a log in the format produced by WriteTo. Lines that are
// blank or start with '#' are skipped. A malformed line aborts with an
// error naming the line number.
func Parse(r io.Reader) (Log, error) {
	var l Log
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rec, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("logmine: line %d: %w", lineNo, err)
		}
		l = append(l, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("logmine: read: %w", err)
	}
	return l, nil
}

func parseLine(line string) (Record, error) {
	var (
		rec   Record
		tick  int64
		req   string
		bytes int64
		mod   int
	)
	_, err := fmt.Sscanf(line, "%s - - [%d] %q %d %d %q %d",
		&rec.User, &tick, &req, &rec.Status, &bytes, &rec.Referrer, &mod)
	if err != nil {
		return Record{}, fmt.Errorf("%w: %q: %v", core.ErrInvalid, line, err)
	}
	parts := strings.Fields(req)
	if len(parts) != 3 || parts[0] != "GET" {
		return Record{}, fmt.Errorf("%w: bad request field %q", core.ErrInvalid, req)
	}
	rec.Time = core.Time(tick)
	rec.URL = parts[1]
	rec.Bytes = core.Bytes(bytes)
	rec.Modified = mod != 0
	return rec, nil
}
