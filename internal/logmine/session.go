package logmine

import (
	"sort"

	"cbfww/internal/core"
)

// Session is one user's contiguous burst of activity: a time-ordered
// sequence of visited URLs with no gap exceeding the sessionizer timeout.
type Session struct {
	User  string
	Start core.Time
	End   core.Time
	// URLs is the visit sequence, in time order, duplicates preserved
	// (back-and-forth navigation is meaningful for path mining).
	URLs []string
}

// Len returns the number of page views in the session.
func (s *Session) Len() int { return len(s.URLs) }

// Sessionize groups the log into per-user sessions. A gap of more than
// timeout ticks between consecutive requests of the same user starts a new
// session. The input log need not be sorted. Sessions are returned ordered
// by (user, start time).
func Sessionize(l Log, timeout core.Duration) []Session {
	if timeout <= 0 {
		timeout = 1
	}
	byUser := make(map[string][]Record)
	for _, r := range l {
		byUser[r.User] = append(byUser[r.User], r)
	}
	users := make([]string, 0, len(byUser))
	for u := range byUser {
		users = append(users, u)
	}
	sort.Strings(users)

	var sessions []Session
	for _, u := range users {
		recs := byUser[u]
		sort.SliceStable(recs, func(i, j int) bool { return recs[i].Time < recs[j].Time })
		var cur *Session
		for _, r := range recs {
			if cur == nil || r.Time.Sub(cur.End) > timeout {
				sessions = append(sessions, Session{User: u, Start: r.Time, End: r.Time})
				cur = &sessions[len(sessions)-1]
			}
			cur.URLs = append(cur.URLs, r.URL)
			cur.End = r.Time
		}
	}
	return sessions
}

// ReuseStats summarizes how often referenced objects are ever referenced
// again — the measurement behind the paper's design thesis.
type ReuseStats struct {
	// Objects is the number of distinct URLs referenced at all.
	Objects int
	// OneTimers is the number of URLs referenced exactly once before being
	// modified or never again: for these, caching the body bought nothing.
	OneTimers int
	// TotalRefs is the total number of requests.
	TotalRefs int
	// ReusedRefs is the number of requests that were re-references to
	// content already fetched and unmodified since — the upper bound on
	// what *any* cache, however large, can serve locally.
	ReusedRefs int
}

// OneTimerRatio returns the fraction of once-used objects that were never
// retrieved again before modification or end of log — the paper's ">60%"
// number.
func (s ReuseStats) OneTimerRatio() float64 {
	if s.Objects == 0 {
		return 0
	}
	return float64(s.OneTimers) / float64(s.Objects)
}

// MaxHitRatio returns the hit ratio of a hypothetical infinite cache with
// perfect consistency: reused references over total references.
func (s ReuseStats) MaxHitRatio() float64 {
	if s.TotalRefs == 0 {
		return 0
	}
	return float64(s.ReusedRefs) / float64(s.TotalRefs)
}

// AnalyzeReuse scans the log and computes ReuseStats. An object "survives"
// between two references only if no modification was observed in between
// (Record.Modified on the later access); a modified re-access counts as a
// fresh first use of the new content.
func AnalyzeReuse(l Log) ReuseStats {
	sorted := append(Log(nil), l...)
	sorted.Sort()

	type state struct {
		usesSinceFetch int // references to the current content version
		oneTimerEpochs int // content versions used exactly once
		epochs         int // content versions seen
	}
	states := make(map[string]*state)
	var stats ReuseStats
	for _, r := range sorted {
		stats.TotalRefs++
		st := states[r.URL]
		if st == nil {
			st = &state{}
			states[r.URL] = st
			st.epochs = 1
			st.usesSinceFetch = 1
			continue
		}
		if r.Modified {
			// The content changed since the previous access: close the
			// epoch; if it had exactly one use it was a one-timer epoch.
			if st.usesSinceFetch == 1 {
				st.oneTimerEpochs++
			}
			st.epochs++
			st.usesSinceFetch = 1
			continue
		}
		st.usesSinceFetch++
		stats.ReusedRefs++
	}
	for _, st := range states {
		stats.Objects++
		if st.usesSinceFetch == 1 {
			st.oneTimerEpochs++
		}
		// A URL counts as a one-timer if *every* content epoch was used
		// exactly once; this matches "once used, never retrieved again
		// before modified or replaced".
		if st.oneTimerEpochs == st.epochs {
			stats.OneTimers++
		}
	}
	return stats
}

// InterArrival returns the sorted gaps between consecutive references to
// each URL, pooled over all URLs — input for hot-spot lifetime analysis.
func InterArrival(l Log) []core.Duration {
	sorted := append(Log(nil), l...)
	sorted.Sort()
	last := make(map[string]core.Time)
	var gaps []core.Duration
	for _, r := range sorted {
		if prev, ok := last[r.URL]; ok {
			gaps = append(gaps, r.Time.Sub(prev))
		}
		last[r.URL] = r.Time
	}
	sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })
	return gaps
}
