package logmine

import (
	"sort"
	"strings"
)

// Path is a traversal path: an ordered URL sequence a user followed via
// links. Frequent paths become logical documents (§5.2: "We define a path
// frequently traversed by some users as a logical document").
type Path struct {
	URLs    []string
	Support int // number of observed traversals
}

// Key returns a canonical string form of the path, usable as a map key.
func (p Path) Key() string { return strings.Join(p.URLs, " -> ") }

// Entry returns the entry document (first URL) of the path.
func (p Path) Entry() string { return p.URLs[0] }

// Terminal returns the terminal document (last URL) of the path.
func (p Path) Terminal() string { return p.URLs[len(p.URLs)-1] }

// MinerConfig bounds the frequent-path search.
type MinerConfig struct {
	// MinLength and MaxLength bound the number of documents in a path.
	// Paths of length 1 are permitted by the paper ("each visited document
	// can [be] a logical document") but are usually mined with MinLength 2.
	MinLength, MaxLength int
	// MinSupport is the minimum number of traversals for a path to be
	// reported.
	MinSupport int
	// MaxPaths caps the result size (0 = unlimited); the most frequent
	// paths are kept.
	MaxPaths int
}

// DefaultMinerConfig matches the examples in the paper: paths of two to
// four documents, traversed at least three times.
func DefaultMinerConfig() MinerConfig {
	return MinerConfig{MinLength: 2, MaxLength: 4, MinSupport: 3}
}

// MinePaths finds frequently traversed paths in the sessions. Every
// contiguous subsequence of each session with length in [MinLength,
// MaxLength] counts as one traversal of that path; paths meeting MinSupport
// are returned in descending support order (ties broken lexically).
//
// A "successful traversal" in the paper additionally requires each step to
// happen "within a limited time interval"; that bound is what the
// sessionizer timeout enforces, so by construction every within-session
// subsequence qualifies.
func MinePaths(sessions []Session, cfg MinerConfig) []Path {
	if cfg.MinLength < 1 {
		cfg.MinLength = 1
	}
	if cfg.MaxLength < cfg.MinLength {
		cfg.MaxLength = cfg.MinLength
	}
	if cfg.MinSupport < 1 {
		cfg.MinSupport = 1
	}
	support := make(map[string]int)
	first := make(map[string][]string) // key -> URL slice
	for _, s := range sessions {
		n := len(s.URLs)
		for length := cfg.MinLength; length <= cfg.MaxLength; length++ {
			for i := 0; i+length <= n; i++ {
				sub := s.URLs[i : i+length]
				if hasImmediateRepeat(sub) {
					// A self-loop (reload) is not a traversal step.
					continue
				}
				key := strings.Join(sub, " -> ")
				support[key]++
				if _, ok := first[key]; !ok {
					first[key] = append([]string(nil), sub...)
				}
			}
		}
	}
	var out []Path
	for key, c := range support {
		if c >= cfg.MinSupport {
			out = append(out, Path{URLs: first[key], Support: c})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		return out[i].Key() < out[j].Key()
	})
	if cfg.MaxPaths > 0 && len(out) > cfg.MaxPaths {
		out = out[:cfg.MaxPaths]
	}
	return out
}

func hasImmediateRepeat(urls []string) bool {
	for i := 1; i < len(urls); i++ {
		if urls[i] == urls[i-1] {
			return true
		}
	}
	return false
}

// MaximalOnly filters a mined path set down to maximal paths: a path is
// dropped when some other reported path contains it as a contiguous
// subsequence with at least the same support. This is how the Logical Page
// Manager avoids registering every prefix of a popular route.
func MaximalOnly(paths []Path) []Path {
	var out []Path
	for i, p := range paths {
		sub := false
		for j, q := range paths {
			if i == j || len(q.URLs) <= len(p.URLs) || q.Support < p.Support {
				continue
			}
			if containsSeq(q.URLs, p.URLs) {
				sub = true
				break
			}
		}
		if !sub {
			out = append(out, p)
		}
	}
	return out
}

func containsSeq(haystack, needle []string) bool {
	if len(needle) > len(haystack) {
		return false
	}
	for i := 0; i+len(needle) <= len(haystack); i++ {
		match := true
		for j := range needle {
			if haystack[i+j] != needle[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// PathsEndingAt returns the mined paths whose terminal document is url, in
// descending support order — the primitive behind the paper's
// "most frequently used logical pages that end at <URL>" query.
func PathsEndingAt(paths []Path, url string) []Path {
	var out []Path
	for _, p := range paths {
		if p.Terminal() == url {
			out = append(out, p)
		}
	}
	return out
}
