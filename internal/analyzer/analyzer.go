// Package analyzer implements the Data Analyzer of Figure 1: usage mining
// over the warehouse's stored logs. It turns raw access logs into the
// reports the paper's design decisions rest on — the one-timer ratio, the
// popularity distribution, and hot-spot lifetimes ("for local events,
// there will be almost no access of the corresponding web pages after the
// event even though the event was very popular").
package analyzer

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"cbfww/internal/core"
	"cbfww/internal/logmine"
)

// Report is the analyzer's standard output over one log.
type Report struct {
	// Reuse carries the one-timer measurement (E-C1).
	Reuse logmine.ReuseStats
	// Popularity is the reference count per URL, descending.
	Popularity []URLCount
	// GiniCoefficient summarizes popularity skew in [0,1] (0 = uniform).
	GiniCoefficient float64
	// ZipfExponent is the least-squares fit of s in count ∝ rank^(-s)
	// over the popularity distribution (0 when too few points to fit).
	ZipfExponent float64
	// HotSpots lists the URLs with the most concentrated usage.
	HotSpots []HotSpot
	// Span is the log's time extent.
	Start, End core.Time
	Requests   int
}

// URLCount pairs a URL with its reference count.
type URLCount struct {
	URL   string
	Count int
}

// HotSpot describes a URL whose accesses cluster in a short burst.
type HotSpot struct {
	URL string
	// Count is the total accesses.
	Count int
	// Lifetime is the span containing the middle 80% of accesses —
	// short lifetimes are the paper's hot-spot signature.
	Lifetime core.Duration
	// Peak is the time of the median access.
	Peak core.Time
}

// Analyze builds a full report. minHotSpotRefs bounds which URLs qualify
// for hot-spot analysis (URLs with fewer references have no meaningful
// lifetime).
func Analyze(l logmine.Log, minHotSpotRefs int) Report {
	if minHotSpotRefs < 2 {
		minHotSpotRefs = 2
	}
	rep := Report{
		Reuse:    logmine.AnalyzeReuse(l),
		Requests: len(l),
	}
	rep.Start, rep.End, _ = l.Span()

	times := make(map[string][]core.Time)
	for _, r := range l {
		times[r.URL] = append(times[r.URL], r.Time)
	}
	for url, ts := range times {
		rep.Popularity = append(rep.Popularity, URLCount{URL: url, Count: len(ts)})
		if len(ts) >= minHotSpotRefs {
			sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
			lo := ts[len(ts)/10]
			hi := ts[len(ts)-1-len(ts)/10]
			rep.HotSpots = append(rep.HotSpots, HotSpot{
				URL:      url,
				Count:    len(ts),
				Lifetime: hi.Sub(lo),
				Peak:     ts[len(ts)/2],
			})
		}
	}
	sort.Slice(rep.Popularity, func(i, j int) bool {
		if rep.Popularity[i].Count != rep.Popularity[j].Count {
			return rep.Popularity[i].Count > rep.Popularity[j].Count
		}
		return rep.Popularity[i].URL < rep.Popularity[j].URL
	})
	// Hot spots: most accesses in the shortest lifetime first — burstiness
	// = count / (lifetime+1).
	sort.Slice(rep.HotSpots, func(i, j int) bool {
		bi := float64(rep.HotSpots[i].Count) / float64(rep.HotSpots[i].Lifetime+1)
		bj := float64(rep.HotSpots[j].Count) / float64(rep.HotSpots[j].Lifetime+1)
		if bi != bj {
			return bi > bj
		}
		return rep.HotSpots[i].URL < rep.HotSpots[j].URL
	})
	rep.GiniCoefficient = gini(rep.Popularity)
	rep.ZipfExponent = zipfFit(rep.Popularity)
	return rep
}

// zipfFit estimates s by ordinary least squares in log-log space:
// log(count_r) = c - s·log(r). Requires at least 5 distinct ranks.
func zipfFit(pop []URLCount) float64 {
	if len(pop) < 5 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	n := 0
	for i, p := range pop {
		if p.Count <= 0 {
			continue
		}
		x := math.Log(float64(i + 1))
		y := math.Log(float64(p.Count))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		n++
	}
	if n < 5 {
		return 0
	}
	den := float64(n)*sxx - sx*sx
	if den == 0 {
		return 0
	}
	slope := (float64(n)*sxy - sx*sy) / den
	return -slope
}

// gini computes the Gini coefficient of the popularity counts.
func gini(pop []URLCount) float64 {
	n := len(pop)
	if n == 0 {
		return 0
	}
	counts := make([]float64, n)
	var total float64
	for i, p := range pop {
		counts[i] = float64(p.Count)
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	sort.Float64s(counts)
	var cum float64
	for i, c := range counts {
		cum += float64(i+1) * c
	}
	g := (2*cum)/(float64(n)*total) - (float64(n)+1)/float64(n)
	return math.Max(0, g)
}

// TopK returns the k most popular URLs.
func (r Report) TopK(k int) []URLCount {
	if k > len(r.Popularity) {
		k = len(r.Popularity)
	}
	return r.Popularity[:k]
}

// MedianHotSpotLifetime returns the median hot-spot lifetime, or 0 when
// there are no hot spots.
func (r Report) MedianHotSpotLifetime() core.Duration {
	if len(r.HotSpots) == 0 {
		return 0
	}
	ls := make([]core.Duration, len(r.HotSpots))
	for i, h := range r.HotSpots {
		ls[i] = h.Lifetime
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	return ls[len(ls)/2]
}

// String renders the report as the experiment tables print it.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests=%d objects=%d span=[%v,%v]\n",
		r.Requests, r.Reuse.Objects, r.Start, r.End)
	fmt.Fprintf(&b, "one-timer ratio=%.1f%% max hit ratio=%.1f%% gini=%.2f zipf-s=%.2f\n",
		100*r.Reuse.OneTimerRatio(), 100*r.Reuse.MaxHitRatio(), r.GiniCoefficient, r.ZipfExponent)
	fmt.Fprintf(&b, "hot spots=%d median lifetime=%d\n",
		len(r.HotSpots), int64(r.MedianHotSpotLifetime()))
	return b.String()
}
