package analyzer

import (
	"math"
	"strings"
	"testing"

	"cbfww/internal/core"
	"cbfww/internal/logmine"
)

func rec(t core.Time, url string) logmine.Record {
	return logmine.Record{Time: t, User: "u", URL: url, Status: 200, Bytes: 1}
}

func TestAnalyzeBasics(t *testing.T) {
	l := logmine.Log{
		rec(0, "/hot"), rec(1, "/hot"), rec(2, "/hot"), rec(3, "/hot"),
		rec(10, "/once"),
		rec(5, "/slow"), rec(500, "/slow"),
	}
	r := Analyze(l, 2)
	if r.Requests != 7 {
		t.Errorf("Requests = %d", r.Requests)
	}
	if r.Start != 0 || r.End != 500 {
		t.Errorf("span = [%v, %v]", r.Start, r.End)
	}
	if r.Reuse.Objects != 3 || r.Reuse.OneTimers != 1 {
		t.Errorf("reuse = %+v", r.Reuse)
	}
	// Popularity descending.
	if r.Popularity[0].URL != "/hot" || r.Popularity[0].Count != 4 {
		t.Errorf("top = %+v", r.Popularity[0])
	}
	top := r.TopK(2)
	if len(top) != 2 {
		t.Errorf("TopK = %v", top)
	}
	if got := r.TopK(100); len(got) != 3 {
		t.Errorf("TopK(100) = %d", len(got))
	}
	// Hot spots: /hot (4 refs in 3 ticks) must be burstier than /slow
	// (2 refs in 495 ticks).
	if len(r.HotSpots) != 2 {
		t.Fatalf("hot spots = %+v", r.HotSpots)
	}
	if r.HotSpots[0].URL != "/hot" {
		t.Errorf("burstiest = %+v", r.HotSpots[0])
	}
	if r.HotSpots[0].Lifetime >= r.HotSpots[1].Lifetime {
		t.Errorf("lifetimes: %v vs %v", r.HotSpots[0].Lifetime, r.HotSpots[1].Lifetime)
	}
	if r.MedianHotSpotLifetime() == 0 && len(r.HotSpots) > 0 {
		// median over {3ish, 495} must be nonzero
		t.Errorf("median lifetime = 0")
	}
	if s := r.String(); !strings.Contains(s, "one-timer ratio") {
		t.Errorf("String() = %q", s)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	r := Analyze(nil, 2)
	if r.Requests != 0 || len(r.Popularity) != 0 || r.GiniCoefficient != 0 {
		t.Errorf("empty report = %+v", r)
	}
	if r.MedianHotSpotLifetime() != 0 {
		t.Error("median lifetime on empty report")
	}
}

func TestGiniSkew(t *testing.T) {
	// Uniform popularity: gini ~ 0.
	var uniform logmine.Log
	for i := 0; i < 10; i++ {
		for j := 0; j < 5; j++ {
			uniform = append(uniform, rec(core.Time(i*5+j), "/p"+string(rune('0'+i))))
		}
	}
	ru := Analyze(uniform, 2)
	if ru.GiniCoefficient > 0.05 {
		t.Errorf("uniform gini = %v", ru.GiniCoefficient)
	}
	// Extreme skew: one URL dominates.
	var skew logmine.Log
	for i := 0; i < 96; i++ {
		skew = append(skew, rec(core.Time(i), "/star"))
	}
	for i := 0; i < 4; i++ {
		skew = append(skew, rec(core.Time(100+i), "/tail"+string(rune('0'+i))))
	}
	rs := Analyze(skew, 2)
	if rs.GiniCoefficient < 0.5 {
		t.Errorf("skewed gini = %v", rs.GiniCoefficient)
	}
	if rs.GiniCoefficient <= ru.GiniCoefficient {
		t.Error("gini ordering wrong")
	}
}

func TestZipfFitRecoversExponent(t *testing.T) {
	// Build a popularity distribution that is exactly count = 1000/rank^s.
	for _, s := range []float64{0.7, 1.0, 1.3} {
		var l logmine.Log
		tm := core.Time(0)
		for rank := 1; rank <= 50; rank++ {
			count := int(1000.0 / math.Pow(float64(rank), s))
			if count < 1 {
				count = 1
			}
			url := "/r" + string(rune('a'+rank%26)) + string(rune('a'+rank/26))
			for j := 0; j < count; j++ {
				l = append(l, rec(tm, url))
				tm++
			}
		}
		r := Analyze(l, 2)
		if r.ZipfExponent < s-0.25 || r.ZipfExponent > s+0.25 {
			t.Errorf("s=%v: fitted %v", s, r.ZipfExponent)
		}
	}
}

func TestZipfFitTooFewPoints(t *testing.T) {
	l := logmine.Log{rec(0, "/a"), rec(1, "/b")}
	if got := Analyze(l, 2).ZipfExponent; got != 0 {
		t.Errorf("ZipfExponent = %v for 2 URLs", got)
	}
}

func TestHotSpotMinRefs(t *testing.T) {
	l := logmine.Log{rec(0, "/a"), rec(1, "/a"), rec(2, "/b")}
	r := Analyze(l, 3)
	if len(r.HotSpots) != 0 {
		t.Errorf("hot spots below threshold: %+v", r.HotSpots)
	}
	// minHotSpotRefs below 2 is clamped to 2.
	r2 := Analyze(l, 0)
	if len(r2.HotSpots) != 1 || r2.HotSpots[0].URL != "/a" {
		t.Errorf("clamped threshold: %+v", r2.HotSpots)
	}
}
