package simweb

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"cbfww/internal/core"
)

// Fault injection: a wrapper origin that makes the simulated web flaky on
// demand — random fetch failures, latency spikes and per-host blackouts —
// so the resilience layer (retries, circuit breakers, stale-serve
// degradation) is testable end-to-end. All randomness flows through one
// seeded *rand.Rand, so a given seed produces the same fault sequence on
// every run.

// ErrInjected is the sentinel wrapped by every injected fault, including
// blackout refusals.
var ErrInjected = errors.New("injected origin fault")

// FaultConfig tunes the fault process.
type FaultConfig struct {
	// Seed drives the fault RNG (0 behaves like 1: deterministic).
	Seed int64
	// ErrorRate is the per-request probability of an injected failure.
	ErrorRate float64
	// SpikeRate is the per-request probability of a latency spike.
	SpikeRate float64
	// SpikeLatency is the extra simulated latency a spike adds.
	SpikeLatency core.Duration
}

// FaultStats counts injected faults by kind.
type FaultStats struct {
	InjectedErrors   int
	LatencySpikes    int
	BlackoutRefusals int
}

// Total is the overall injected-fault count.
func (s FaultStats) Total() int {
	return s.InjectedErrors + s.LatencySpikes + s.BlackoutRefusals
}

// FaultyOrigin wraps a *Web as an origin that misbehaves per FaultConfig.
// It implements warehouse.ContextOrigin. Safe for concurrent use.
type FaultyOrigin struct {
	web *Web
	cfg FaultConfig

	mu        sync.Mutex
	rng       *rand.Rand
	blackouts map[string]bool
	stats     FaultStats
}

// NewFaultyOrigin wraps web with the given fault process.
func NewFaultyOrigin(web *Web, cfg FaultConfig) *FaultyOrigin {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &FaultyOrigin{
		web:       web,
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(seed)),
		blackouts: make(map[string]bool),
	}
}

// Blackout turns the named host's blackout on or off: while on, every
// request to it fails as if the site were unreachable.
func (f *FaultyOrigin) Blackout(host string, on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if on {
		f.blackouts[host] = true
	} else {
		delete(f.blackouts, host)
	}
}

// Stats returns a snapshot of the injected-fault counters.
func (f *FaultyOrigin) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Web exposes the wrapped simulated web.
func (f *FaultyOrigin) Web() *Web { return f.web }

// decide rolls the fault dice for one request, returning extra latency to
// add or the injected error.
func (f *FaultyOrigin) decide(url string) (core.Duration, error) {
	host, err := hostOf(url)
	if err != nil {
		return 0, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.blackouts[host] {
		f.stats.BlackoutRefusals++
		return 0, fmt.Errorf("simweb: host %q blacked out: %w", host, ErrInjected)
	}
	if f.cfg.ErrorRate > 0 && f.rng.Float64() < f.cfg.ErrorRate {
		f.stats.InjectedErrors++
		return 0, fmt.Errorf("simweb: %q: %w", url, ErrInjected)
	}
	if f.cfg.SpikeRate > 0 && f.rng.Float64() < f.cfg.SpikeRate {
		f.stats.LatencySpikes++
		return f.cfg.SpikeLatency, nil
	}
	return 0, nil
}

// Fetch implements warehouse.Origin with fault injection.
func (f *FaultyOrigin) Fetch(url string) (FetchResult, error) {
	extra, err := f.decide(url)
	if err != nil {
		return FetchResult{}, err
	}
	res, err := f.web.Fetch(url)
	if err != nil {
		return FetchResult{}, err
	}
	res.Latency += extra
	return res, nil
}

// Head implements warehouse.Origin with fault injection.
func (f *FaultyOrigin) Head(url string) (int, core.Time, error) {
	if _, err := f.decide(url); err != nil {
		return 0, 0, err
	}
	return f.web.Head(url)
}

// FetchCtx implements warehouse.ContextOrigin (see Web.FetchCtx).
func (f *FaultyOrigin) FetchCtx(ctx context.Context, url string) (FetchResult, error) {
	if err := ctx.Err(); err != nil {
		return FetchResult{}, fmt.Errorf("simweb: fetch %q: %w", url, err)
	}
	return f.Fetch(url)
}

// HeadCtx implements warehouse.ContextOrigin (see Web.HeadCtx).
func (f *FaultyOrigin) HeadCtx(ctx context.Context, url string) (int, core.Time, error) {
	if err := ctx.Err(); err != nil {
		return 0, 0, fmt.Errorf("simweb: head %q: %w", url, err)
	}
	return f.Head(url)
}
