// Package simweb is the simulated-web substrate of the reproduction. The
// paper's system fetches from the live web, watches news sites, and serves
// a provider's (Kyoto-inet) user population; none of that is available, so
// simweb provides a deterministic synthetic equivalent:
//
//   - sites with per-site fetch latency (origin distance),
//   - pages with topical content, titles, anchors/links and embedded media
//     components (the Dexter-style document composition of §5.1),
//   - content update processes that bump page versions,
//   - news feeds whose term bursts drive the Topic Sensor,
//   - an http.Handler so integration tests exercise real sockets.
//
// All randomness flows through explicitly seeded *rand.Rand instances and
// all time through core.Clock, so every experiment is reproducible.
package simweb

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"cbfww/internal/core"
)

// Anchor is a link source inside a page: the anchor text plus the target
// URL (span-to-node links per §5.1).
type Anchor struct {
	// Text is the anchor text — "often describe[s] the linked document,
	// used as a navigation guide".
	Text string
	// Target is the absolute URL the link leads to.
	Target string
}

// Component is an embedded media file (image, audio, ...) referenced from a
// container page. Components may be shared by several pages — the sharing
// that makes Figure 2's priority question interesting.
type Component struct {
	URL  string
	Size core.Bytes
}

// Page is one web document: a container file plus embedded components.
type Page struct {
	URL   string
	Title string
	Body  string
	// Topic is the ground-truth topic index used to validate clustering
	// (E-F7); real pages don't carry this label, so nothing in the
	// warehouse reads it.
	Topic int
	// Anchors are the outgoing links.
	Anchors []Anchor
	// Components are the embedded media files.
	Components []Component
	// Size is the container file size.
	Size core.Bytes
	// Version counts content updates; starts at 1.
	Version int
	// LastMod is the time of the last content update.
	LastMod core.Time
}

// TotalSize returns container plus all component sizes.
func (p *Page) TotalSize() core.Bytes {
	s := p.Size
	for _, c := range p.Components {
		s += c.Size
	}
	return s
}

// Content returns title and body joined, the text an indexer sees.
func (p *Page) Content() string { return p.Title + "\n" + p.Body }

// Site is an origin server: a host with pages and a fetch latency that
// models its network distance.
type Site struct {
	Host    string
	Latency core.Duration
	pages   map[string]*Page // by full URL
}

// Web is the simulated web: a set of sites plus global URL lookup. Safe
// for concurrent use.
type Web struct {
	mu    sync.RWMutex
	clock core.Clock
	sites map[string]*Site
	pages map[string]*Page // all pages by URL
	// FetchCount tallies origin fetches per URL, for traffic accounting.
	fetchCount map[string]int
}

// NewWeb returns an empty web on the given clock.
func NewWeb(clock core.Clock) *Web {
	return &Web{
		clock:      clock,
		sites:      make(map[string]*Site),
		pages:      make(map[string]*Page),
		fetchCount: make(map[string]int),
	}
}

// AddSite registers a host with the given origin latency. Adding an
// existing host returns the existing site (latency unchanged).
func (w *Web) AddSite(host string, latency core.Duration) *Site {
	w.mu.Lock()
	defer w.mu.Unlock()
	if s, ok := w.sites[host]; ok {
		return s
	}
	s := &Site{Host: host, Latency: latency, pages: make(map[string]*Page)}
	w.sites[host] = s
	return s
}

// AddPage installs a page. The page URL must have the form
// "http://host/path" with a registered host. Version and LastMod are
// initialized if zero.
func (w *Web) AddPage(p *Page) error {
	host, err := hostOf(p.URL)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	s, ok := w.sites[host]
	if !ok {
		return fmt.Errorf("simweb: %w: host %q not registered", core.ErrNotFound, host)
	}
	if _, dup := w.pages[p.URL]; dup {
		return fmt.Errorf("simweb: %w: page %q", core.ErrExists, p.URL)
	}
	if p.Version == 0 {
		p.Version = 1
	}
	if p.LastMod == 0 {
		p.LastMod = w.clock.Now()
	}
	s.pages[p.URL] = p
	w.pages[p.URL] = p
	return nil
}

// hostOf extracts the host from an http:// URL.
func hostOf(url string) (string, error) {
	rest, ok := strings.CutPrefix(url, "http://")
	if !ok {
		return "", fmt.Errorf("simweb: %w: URL %q must start with http://", core.ErrInvalid, url)
	}
	host, _, _ := strings.Cut(rest, "/")
	if host == "" {
		return "", fmt.Errorf("simweb: %w: URL %q has no host", core.ErrInvalid, url)
	}
	return host, nil
}

// FetchResult is what an origin fetch returns: a snapshot of the page and
// the simulated latency the fetch cost.
type FetchResult struct {
	Page    Page
	Latency core.Duration
}

// Fetch retrieves the current content of url, simulating the origin
// round-trip cost. The returned Page is a copy; mutating it does not
// affect the web.
func (w *Web) Fetch(url string) (FetchResult, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	p, ok := w.pages[url]
	if !ok {
		return FetchResult{}, fmt.Errorf("simweb: fetch %q: %w", url, core.ErrNotFound)
	}
	w.fetchCount[url]++
	host, _ := hostOf(url)
	lat := w.sites[host].Latency
	cp := *p
	cp.Anchors = append([]Anchor(nil), p.Anchors...)
	cp.Components = append([]Component(nil), p.Components...)
	return FetchResult{Page: cp, Latency: lat}, nil
}

// FetchCtx is Fetch with context propagation: an already-cancelled or
// expired context aborts before the (in-process, instantaneous) fetch.
// It implements warehouse.ContextOrigin so daemons can bound simulated
// origin fetches the same way they bound real HTTP ones.
func (w *Web) FetchCtx(ctx context.Context, url string) (FetchResult, error) {
	if err := ctx.Err(); err != nil {
		return FetchResult{}, fmt.Errorf("simweb: fetch %q: %w", url, err)
	}
	return w.Fetch(url)
}

// HeadCtx is Head with context propagation (see FetchCtx).
func (w *Web) HeadCtx(ctx context.Context, url string) (int, core.Time, error) {
	if err := ctx.Err(); err != nil {
		return 0, 0, fmt.Errorf("simweb: head %q: %w", url, err)
	}
	return w.Head(url)
}

// Head returns the page's version and last-modified time without a body
// transfer — the cheap consistency probe used by weak-consistency polling.
func (w *Web) Head(url string) (version int, lastMod core.Time, err error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	p, ok := w.pages[url]
	if !ok {
		return 0, 0, fmt.Errorf("simweb: head %q: %w", url, core.ErrNotFound)
	}
	return p.Version, p.LastMod, nil
}

// Update modifies the page's body (appending an update marker and new
// terms), bumps its version and stamps LastMod with the current time.
// extra is appended to the body; it may be empty.
func (w *Web) Update(url, extra string) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	p, ok := w.pages[url]
	if !ok {
		return fmt.Errorf("simweb: update %q: %w", url, core.ErrNotFound)
	}
	p.Version++
	p.LastMod = w.clock.Now()
	if extra != "" {
		p.Body += " " + extra
	}
	return nil
}

// Lookup returns the live page object (not a copy) for generators that
// need to inspect structure, plus whether it exists. Callers must not
// mutate the result.
func (w *Web) Lookup(url string) (*Page, bool) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	p, ok := w.pages[url]
	return p, ok
}

// URLs returns all page URLs in sorted order.
func (w *Web) URLs() []string {
	w.mu.RLock()
	defer w.mu.RUnlock()
	out := make([]string, 0, len(w.pages))
	for u := range w.pages {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// NumPages returns the number of installed pages.
func (w *Web) NumPages() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return len(w.pages)
}

// FetchCount returns how many origin fetches url has served.
func (w *Web) FetchCount(url string) int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.fetchCount[url]
}

// TotalFetches returns the total origin traffic in requests.
func (w *Web) TotalFetches() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	n := 0
	for _, c := range w.fetchCount {
		n += c
	}
	return n
}
