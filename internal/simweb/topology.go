package simweb

import (
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"
)

// HTTPOrigin serves a simulated web over a real TCP socket, optionally
// behind the fault process — the origin for multi-daemon cluster tests.
// It wraps Web.Handler, so one listener fronts every simulated host (the
// request's Host header picks the site), and applies fault decisions
// BEFORE the inner handler runs: an injected error answers 503 without
// ever touching Web.Fetch, so Web.FetchCount still counts exactly the
// fetches that succeeded — the currency of single-origin-fetch
// assertions.
type HTTPOrigin struct {
	web     *Web
	faults  *FaultyOrigin
	handler http.Handler
	addr    string
	ln      net.Listener
	srv     *http.Server
	done    chan error
}

// NewHTTPOrigin starts serving web on an ephemeral localhost port. A
// non-nil fault config wires the fault process in front of the handler
// (blackouts and error injection become 503s). Close releases the socket.
func NewHTTPOrigin(web *Web, faults *FaultConfig) (*HTTPOrigin, error) {
	if web == nil {
		return nil, fmt.Errorf("simweb: nil web")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("simweb: listen: %w", err)
	}
	o := &HTTPOrigin{web: web, ln: ln, done: make(chan error, 1)}
	if faults != nil {
		o.faults = NewFaultyOrigin(web, *faults)
	}
	inner := web.Handler()
	o.handler = http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		if o.faults != nil {
			host := req.Host
			if i := strings.IndexByte(host, ':'); i >= 0 {
				host = host[:i]
			}
			if _, err := o.faults.decide("http://" + host + req.URL.Path); err != nil {
				http.Error(rw, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		inner.ServeHTTP(rw, req)
	})
	o.addr = ln.Addr().String()
	o.srv = &http.Server{Handler: o.handler}
	go func() { o.done <- o.srv.Serve(ln) }()
	return o, nil
}

// Addr returns the bound host:port (stable across Stop/Restart).
func (o *HTTPOrigin) Addr() string { return o.addr }

// Web exposes the served simulated web (for FetchCount assertions).
func (o *HTTPOrigin) Web() *Web { return o.web }

// Blackout toggles a per-host blackout (no-op without a fault config).
func (o *HTTPOrigin) Blackout(host string, on bool) {
	if o.faults != nil {
		o.faults.Blackout(host, on)
	}
}

// FaultStats snapshots the injected-fault counters (zero without faults).
func (o *HTTPOrigin) FaultStats() FaultStats {
	if o.faults == nil {
		return FaultStats{}
	}
	return o.faults.Stats()
}

// Close stops the listener and waits briefly for the server to exit.
func (o *HTTPOrigin) Close() error {
	err := o.srv.Close()
	select {
	case <-o.done:
	case <-time.After(2 * time.Second):
	}
	return err
}

// Stop kills the origin — socket released, in-flight connections cut —
// while remembering the bound address so Restart can bring it back on
// the same host:port. This is the "origin crashed" half of kill/restart
// chaos tests; Close is for good.
func (o *HTTPOrigin) Stop() error { return o.Close() }

// Restart rebinds the address Stop released and serves again with the
// same web and fault process. Fault state (blackouts, counters) carries
// over — a crash does not absolve an unreliable origin.
func (o *HTTPOrigin) Restart() error {
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return fmt.Errorf("simweb: restart: %w", err)
	}
	o.ln = ln
	o.srv = &http.Server{Handler: o.handler}
	o.done = make(chan error, 1)
	go func() { o.done <- o.srv.Serve(ln) }()
	return nil
}

// ReserveAddrs binds and immediately releases n ephemeral localhost
// ports, returning their addresses. Kill/restart topologies need stable
// node addresses — a restarted daemon must come back where the ring
// expects it — and pre-reserving is the standard (briefly racy,
// practically reliable) way to get fixed ports without hardcoding them.
func ReserveAddrs(n int) ([]string, error) {
	addrs := make([]string, 0, n)
	lns := make([]net.Listener, 0, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range lns {
				l.Close()
			}
			return nil, fmt.Errorf("simweb: reserve: %w", err)
		}
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	for _, l := range lns {
		l.Close()
	}
	return addrs, nil
}
