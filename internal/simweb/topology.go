package simweb

import (
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"
)

// HTTPOrigin serves a simulated web over a real TCP socket, optionally
// behind the fault process — the origin for multi-daemon cluster tests.
// It wraps Web.Handler, so one listener fronts every simulated host (the
// request's Host header picks the site), and applies fault decisions
// BEFORE the inner handler runs: an injected error answers 503 without
// ever touching Web.Fetch, so Web.FetchCount still counts exactly the
// fetches that succeeded — the currency of single-origin-fetch
// assertions.
type HTTPOrigin struct {
	web    *Web
	faults *FaultyOrigin
	ln     net.Listener
	srv    *http.Server
	done   chan error
}

// NewHTTPOrigin starts serving web on an ephemeral localhost port. A
// non-nil fault config wires the fault process in front of the handler
// (blackouts and error injection become 503s). Close releases the socket.
func NewHTTPOrigin(web *Web, faults *FaultConfig) (*HTTPOrigin, error) {
	if web == nil {
		return nil, fmt.Errorf("simweb: nil web")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("simweb: listen: %w", err)
	}
	o := &HTTPOrigin{web: web, ln: ln, done: make(chan error, 1)}
	if faults != nil {
		o.faults = NewFaultyOrigin(web, *faults)
	}
	inner := web.Handler()
	o.srv = &http.Server{Handler: http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		if o.faults != nil {
			host := req.Host
			if i := strings.IndexByte(host, ':'); i >= 0 {
				host = host[:i]
			}
			if _, err := o.faults.decide("http://" + host + req.URL.Path); err != nil {
				http.Error(rw, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		inner.ServeHTTP(rw, req)
	})}
	go func() { o.done <- o.srv.Serve(ln) }()
	return o, nil
}

// Addr returns the bound host:port.
func (o *HTTPOrigin) Addr() string { return o.ln.Addr().String() }

// Web exposes the served simulated web (for FetchCount assertions).
func (o *HTTPOrigin) Web() *Web { return o.web }

// Blackout toggles a per-host blackout (no-op without a fault config).
func (o *HTTPOrigin) Blackout(host string, on bool) {
	if o.faults != nil {
		o.faults.Blackout(host, on)
	}
}

// FaultStats snapshots the injected-fault counters (zero without faults).
func (o *HTTPOrigin) FaultStats() FaultStats {
	if o.faults == nil {
		return FaultStats{}
	}
	return o.faults.Stats()
}

// Close stops the listener and waits briefly for the server to exit.
func (o *HTTPOrigin) Close() error {
	err := o.srv.Close()
	select {
	case <-o.done:
	case <-time.After(2 * time.Second):
	}
	return err
}
