package simweb

import (
	"context"
	"errors"
	"testing"

	"cbfww/internal/core"
)

func faultWeb(t *testing.T) *Web {
	t.Helper()
	clock := core.NewSimClock(0)
	w := NewWeb(clock)
	w.AddSite("a.example", 10)
	w.AddSite("b.example", 20)
	pages := []*Page{
		{URL: "http://a.example/x", Title: "ax", Body: "alpha", Size: core.KB},
		{URL: "http://a.example/y", Title: "ay", Body: "beta", Size: core.KB},
		{URL: "http://b.example/z", Title: "bz", Body: "gamma", Size: core.KB},
	}
	for _, p := range pages {
		if err := w.AddPage(p); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

func TestFaultyOriginPassThrough(t *testing.T) {
	f := NewFaultyOrigin(faultWeb(t), FaultConfig{Seed: 1})
	res, err := f.Fetch("http://a.example/x")
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if res.Page.Title != "ax" || res.Latency != 10 {
		t.Errorf("res = %+v", res)
	}
	if v, _, err := f.Head("http://a.example/x"); err != nil || v != 1 {
		t.Errorf("Head = %d, %v", v, err)
	}
	if st := f.Stats(); st.Total() != 0 {
		t.Errorf("faults injected with everything off: %+v", st)
	}
}

func TestFaultyOriginErrorRateIsDeterministic(t *testing.T) {
	run := func() (failures int, errSample error) {
		f := NewFaultyOrigin(faultWeb(t), FaultConfig{Seed: 42, ErrorRate: 0.3})
		for i := 0; i < 200; i++ {
			if _, err := f.Fetch("http://a.example/x"); err != nil {
				failures++
				errSample = err
			}
		}
		return failures, errSample
	}
	n1, err := run()
	n2, _ := run()
	if n1 != n2 {
		t.Fatalf("same seed, different fault sequences: %d vs %d", n1, n2)
	}
	// ~30% of 200 — allow generous slack, determinism is the point.
	if n1 < 30 || n1 > 90 {
		t.Errorf("failures = %d of 200 at rate 0.3", n1)
	}
	if !errors.Is(err, ErrInjected) {
		t.Errorf("injected error %v does not match ErrInjected", err)
	}
}

func TestFaultyOriginLatencySpikes(t *testing.T) {
	f := NewFaultyOrigin(faultWeb(t), FaultConfig{Seed: 7, SpikeRate: 1, SpikeLatency: 500})
	res, err := f.Fetch("http://a.example/x")
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if res.Latency != 510 {
		t.Errorf("latency = %d, want site 10 + spike 500", res.Latency)
	}
	if st := f.Stats(); st.LatencySpikes != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFaultyOriginBlackout(t *testing.T) {
	f := NewFaultyOrigin(faultWeb(t), FaultConfig{Seed: 1})
	f.Blackout("a.example", true)

	if _, err := f.Fetch("http://a.example/x"); !errors.Is(err, ErrInjected) {
		t.Fatalf("blacked-out fetch err = %v", err)
	}
	if _, _, err := f.Head("http://a.example/y"); !errors.Is(err, ErrInjected) {
		t.Fatalf("blacked-out head err = %v", err)
	}
	// Other hosts unaffected.
	if _, err := f.Fetch("http://b.example/z"); err != nil {
		t.Fatalf("other host: %v", err)
	}
	if st := f.Stats(); st.BlackoutRefusals != 2 {
		t.Errorf("stats = %+v", st)
	}

	// Lifting the blackout restores service.
	f.Blackout("a.example", false)
	if _, err := f.Fetch("http://a.example/x"); err != nil {
		t.Fatalf("post-blackout fetch: %v", err)
	}
}

func TestFaultyOriginContextCancelled(t *testing.T) {
	f := NewFaultyOrigin(faultWeb(t), FaultConfig{Seed: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.FetchCtx(ctx, "http://a.example/x"); !errors.Is(err, context.Canceled) {
		t.Fatalf("FetchCtx err = %v", err)
	}
	if _, _, err := f.HeadCtx(ctx, "http://a.example/x"); !errors.Is(err, context.Canceled) {
		t.Fatalf("HeadCtx err = %v", err)
	}
}
