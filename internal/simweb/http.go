package simweb

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// Handler adapts the simulated web to net/http so the crawler path and the
// proxy example run over real sockets. Pages are served as minimal HTML
// with their anchors rendered as <a href> links and components as <img>
// references; version and last-modified surface as headers.
//
// The handler serves any host: the request's Host header selects the site,
// so one listener can front the whole simulated web (point the client's
// proxy at it).
func (w *Web) Handler() http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(rw, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		host := req.Host
		if host == "" {
			host = req.URL.Host
		}
		// Strip any port mapping the test listener introduced.
		if i := strings.IndexByte(host, ':'); i >= 0 {
			host = host[:i]
		}
		url := "http://" + host + req.URL.Path
		if req.Method == http.MethodHead {
			// HEAD is the consistency probe: version and last-modified
			// without a body transfer, and — deliberately — without counting
			// as an origin fetch (FetchCount stays the currency of
			// single-fetch assertions).
			version, lastMod, err := w.Head(url)
			if err != nil {
				http.NotFound(rw, req)
				return
			}
			rw.Header().Set("Content-Type", "text/html; charset=utf-8")
			rw.Header().Set("X-Simweb-Version", strconv.Itoa(version))
			rw.Header().Set("X-Simweb-LastMod", strconv.FormatInt(int64(lastMod), 10))
			return
		}
		res, err := w.Fetch(url)
		if err != nil {
			http.NotFound(rw, req)
			return
		}
		p := res.Page
		rw.Header().Set("Content-Type", "text/html; charset=utf-8")
		rw.Header().Set("X-Simweb-Version", strconv.Itoa(p.Version))
		rw.Header().Set("X-Simweb-LastMod", strconv.FormatInt(int64(p.LastMod), 10))
		rw.Header().Set("X-Simweb-Latency", strconv.FormatInt(int64(res.Latency), 10))
		fmt.Fprintf(rw, "<html><head><title>%s</title></head><body>\n", p.Title)
		fmt.Fprintf(rw, "<p>%s</p>\n", p.Body)
		for _, a := range p.Anchors {
			fmt.Fprintf(rw, "<a href=%q>%s</a>\n", a.Target, a.Text)
		}
		for _, c := range p.Components {
			fmt.Fprintf(rw, "<img src=%q width=%d>\n", c.URL, int64(c.Size))
		}
		fmt.Fprint(rw, "</body></html>\n")
	})
}
