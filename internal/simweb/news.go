package simweb

import (
	"sort"
	"sync"

	"cbfww/internal/core"
)

// Article is one news item: a headline published at a moment in time. The
// Topic Sensor reads headlines to detect term bursts that predict future
// hot queries (§3(3): "Topic Sensor searches typical news sites to find
// out important topics. These topics can be used to predict future
// frequent queries.").
type Article struct {
	Time     core.Time
	Headline string
	// URL optionally names the event page the article announces, so
	// prefetch experiments can check whether the sensor's boost reached
	// the right object.
	URL string
}

// NewsFeed is a time-ordered stream of articles from one news site. Safe
// for concurrent use.
type NewsFeed struct {
	mu       sync.RWMutex
	name     string
	articles []Article // sorted by Time
}

// NewNewsFeed returns an empty feed with the given name.
func NewNewsFeed(name string) *NewsFeed { return &NewsFeed{name: name} }

// Name returns the feed name.
func (f *NewsFeed) Name() string { return f.name }

// Publish appends an article. Articles may be published out of order; the
// feed keeps them sorted.
func (f *NewsFeed) Publish(a Article) {
	f.mu.Lock()
	defer f.mu.Unlock()
	i := sort.Search(len(f.articles), func(i int) bool {
		return f.articles[i].Time > a.Time
	})
	f.articles = append(f.articles, Article{})
	copy(f.articles[i+1:], f.articles[i:])
	f.articles[i] = a
}

// Since returns the articles published in (after, upto], i.e. those a
// sensor polling at time upto has not seen if it last polled at time after.
func (f *NewsFeed) Since(after, upto core.Time) []Article {
	f.mu.RLock()
	defer f.mu.RUnlock()
	lo := sort.Search(len(f.articles), func(i int) bool {
		return f.articles[i].Time > after
	})
	hi := sort.Search(len(f.articles), func(i int) bool {
		return f.articles[i].Time > upto
	})
	out := make([]Article, hi-lo)
	copy(out, f.articles[lo:hi])
	return out
}

// Len returns the total number of published articles.
func (f *NewsFeed) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.articles)
}
