package simweb

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"cbfww/internal/core"
)

func newTestWeb(t *testing.T) (*Web, *core.SimClock) {
	t.Helper()
	clock := core.NewSimClock(0)
	w := NewWeb(clock)
	w.AddSite("a.example", 100)
	if err := w.AddPage(&Page{
		URL:   "http://a.example/index.html",
		Title: "Kyoto Travel",
		Body:  "travel guide to kyoto station",
		Size:  4 * core.KB,
		Anchors: []Anchor{
			{Text: "bus stations", Target: "http://a.example/bus.html"},
		},
		Components: []Component{
			{URL: "http://a.example/logo.png", Size: 16 * core.KB},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.AddPage(&Page{
		URL:   "http://a.example/bus.html",
		Title: "List of bus stations",
		Body:  "bus station list",
		Size:  2 * core.KB,
	}); err != nil {
		t.Fatal(err)
	}
	return w, clock
}

func TestFetchReturnsCopy(t *testing.T) {
	w, _ := newTestWeb(t)
	res, err := w.Fetch("http://a.example/index.html")
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency != 100 {
		t.Errorf("Latency = %v, want 100", res.Latency)
	}
	if res.Page.Version != 1 {
		t.Errorf("Version = %d", res.Page.Version)
	}
	// Mutating the copy must not affect the web.
	res.Page.Anchors[0].Text = "CLOBBERED"
	res.Page.Body = "CLOBBERED"
	res2, _ := w.Fetch("http://a.example/index.html")
	if res2.Page.Anchors[0].Text != "bus stations" || res2.Page.Body == "CLOBBERED" {
		t.Error("Fetch result aliases web state")
	}
	if got := w.FetchCount("http://a.example/index.html"); got != 2 {
		t.Errorf("FetchCount = %d", got)
	}
	if got := w.TotalFetches(); got != 2 {
		t.Errorf("TotalFetches = %d", got)
	}
}

func TestFetchUnknown(t *testing.T) {
	w, _ := newTestWeb(t)
	if _, err := w.Fetch("http://a.example/nope.html"); err == nil {
		t.Error("Fetch(unknown) succeeded")
	}
	if _, _, err := w.Head("http://nowhere/x"); err == nil {
		t.Error("Head(unknown) succeeded")
	}
}

func TestAddPageValidation(t *testing.T) {
	w, _ := newTestWeb(t)
	if err := w.AddPage(&Page{URL: "ftp://x/y"}); err == nil {
		t.Error("non-http URL accepted")
	}
	if err := w.AddPage(&Page{URL: "http:///path"}); err == nil {
		t.Error("hostless URL accepted")
	}
	if err := w.AddPage(&Page{URL: "http://unregistered/x"}); err == nil {
		t.Error("unregistered host accepted")
	}
	if err := w.AddPage(&Page{URL: "http://a.example/index.html"}); err == nil {
		t.Error("duplicate URL accepted")
	}
}

func TestUpdateBumpsVersion(t *testing.T) {
	w, clock := newTestWeb(t)
	clock.Advance(50)
	if err := w.Update("http://a.example/index.html", "breaking news festival"); err != nil {
		t.Fatal(err)
	}
	v, mod, err := w.Head("http://a.example/index.html")
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 || mod != 50 {
		t.Errorf("Head = v%d @%v, want v2 @50", v, mod)
	}
	res, _ := w.Fetch("http://a.example/index.html")
	if !strings.Contains(res.Page.Body, "festival") {
		t.Error("update text missing from body")
	}
	if err := w.Update("http://a.example/nope", ""); err == nil {
		t.Error("Update(unknown) succeeded")
	}
}

func TestPageHelpers(t *testing.T) {
	w, _ := newTestWeb(t)
	p, ok := w.Lookup("http://a.example/index.html")
	if !ok {
		t.Fatal("Lookup failed")
	}
	if got := p.TotalSize(); got != 20*core.KB {
		t.Errorf("TotalSize = %v", got)
	}
	if !strings.Contains(p.Content(), "Kyoto Travel") {
		t.Error("Content missing title")
	}
	urls := w.URLs()
	if len(urls) != 2 || urls[0] != "http://a.example/bus.html" {
		t.Errorf("URLs = %v", urls)
	}
	if w.NumPages() != 2 {
		t.Errorf("NumPages = %d", w.NumPages())
	}
}

func TestAddSiteIdempotent(t *testing.T) {
	w := NewWeb(core.NewSimClock(0))
	s1 := w.AddSite("h", 10)
	s2 := w.AddSite("h", 99)
	if s1 != s2 {
		t.Error("AddSite created duplicate site")
	}
	if s2.Latency != 10 {
		t.Error("existing latency overwritten")
	}
}

func TestWebConcurrent(t *testing.T) {
	w, _ := newTestWeb(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				w.Fetch("http://a.example/index.html")
				w.Head("http://a.example/bus.html")
				w.Update("http://a.example/bus.html", "")
			}
		}()
	}
	wg.Wait()
	v, _, _ := w.Head("http://a.example/bus.html")
	if v != 801 {
		t.Errorf("version = %d, want 801", v)
	}
}

func TestNewsFeed(t *testing.T) {
	f := NewNewsFeed("kyoto-np")
	if f.Name() != "kyoto-np" {
		t.Errorf("Name = %q", f.Name())
	}
	f.Publish(Article{Time: 30, Headline: "gion festival tonight"})
	f.Publish(Article{Time: 10, Headline: "new shinkansen schedule"})
	f.Publish(Article{Time: 20, Headline: "temple restoration complete"})
	if f.Len() != 3 {
		t.Fatalf("Len = %d", f.Len())
	}
	got := f.Since(10, 30)
	if len(got) != 2 || got[0].Time != 20 || got[1].Time != 30 {
		t.Errorf("Since(10,30) = %+v", got)
	}
	if got := f.Since(30, 100); len(got) != 0 {
		t.Errorf("Since(30,100) = %+v", got)
	}
	all := f.Since(core.TimeNever, 100)
	if len(all) != 3 || all[0].Time != 10 {
		t.Errorf("Since(never,100) = %+v", all)
	}
}

func TestHTTPHandlerServesPages(t *testing.T) {
	w, _ := newTestWeb(t)
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()

	req, _ := http.NewRequest("GET", srv.URL+"/index.html", nil)
	req.Host = "a.example"
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if v := resp.Header.Get("X-Simweb-Version"); v != "1" {
		t.Errorf("version header = %q", v)
	}
	body, _ := io.ReadAll(resp.Body)
	html := string(body)
	for _, want := range []string{"<title>Kyoto Travel</title>", `href="http://a.example/bus.html"`, "logo.png"} {
		if !strings.Contains(html, want) {
			t.Errorf("body missing %q:\n%s", want, html)
		}
	}

	// HEAD returns headers only.
	req2, _ := http.NewRequest("HEAD", srv.URL+"/bus.html", nil)
	req2.Host = "a.example"
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.Header.Get("X-Simweb-Version") == "" {
		t.Error("HEAD missing version header")
	}

	// Unknown path is a 404; unsupported method is a 405.
	req3, _ := http.NewRequest("GET", srv.URL+"/nope.html", nil)
	req3.Host = "a.example"
	resp3, _ := http.DefaultClient.Do(req3)
	resp3.Body.Close()
	if resp3.StatusCode != 404 {
		t.Errorf("unknown page status = %d", resp3.StatusCode)
	}
	req4, _ := http.NewRequest("POST", srv.URL+"/index.html", strings.NewReader("x"))
	req4.Host = "a.example"
	resp4, _ := http.DefaultClient.Do(req4)
	resp4.Body.Close()
	if resp4.StatusCode != 405 {
		t.Errorf("POST status = %d", resp4.StatusCode)
	}
}
