package simweb

import (
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
)

// originGet fetches url (a simweb URL) through the HTTPOrigin socket by
// dialing the listener and carrying the simweb host in the Host header —
// the same shape the crawl requester's fixed resolver produces.
func originGet(t *testing.T, o *HTTPOrigin, url string) (*http.Response, string) {
	t.Helper()
	rest := strings.TrimPrefix(url, "http://")
	i := strings.IndexByte(rest, '/')
	host, path := rest[:i], rest[i:]
	req, err := http.NewRequest(http.MethodGet, "http://"+o.Addr()+path, nil)
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	req.Host = host
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET %s via origin: %v", url, err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, string(body)
}

func TestHTTPOriginServesAndCounts(t *testing.T) {
	web, _ := newTestWeb(t)
	o, err := NewHTTPOrigin(web, nil)
	if err != nil {
		t.Fatalf("NewHTTPOrigin: %v", err)
	}
	defer o.Close()

	url := web.URLs()[0]
	resp, body := originGet(t, o, url)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if !strings.Contains(body, "<html>") {
		t.Fatalf("body is not the rendered page: %q", body[:min(len(body), 80)])
	}
	if got := web.FetchCount(url); got != 1 {
		t.Fatalf("FetchCount(%s) = %d, want 1", url, got)
	}
}

func TestHTTPOriginFaultsDoNotCountFetches(t *testing.T) {
	web, _ := newTestWeb(t)
	o, err := NewHTTPOrigin(web, &FaultConfig{Seed: 7})
	if err != nil {
		t.Fatalf("NewHTTPOrigin: %v", err)
	}
	defer o.Close()

	url := web.URLs()[0]
	host, err := hostOf(url)
	if err != nil {
		t.Fatalf("hostOf: %v", err)
	}
	o.Blackout(host, true)
	resp, _ := originGet(t, o, url)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("blacked-out status = %d, want 503", resp.StatusCode)
	}
	if got := web.FetchCount(url); got != 0 {
		t.Fatalf("FetchCount after injected fault = %d, want 0 (faults decide before Fetch)", got)
	}
	if o.FaultStats().BlackoutRefusals != 1 {
		t.Fatalf("BlackoutRefusals = %d, want 1", o.FaultStats().BlackoutRefusals)
	}

	o.Blackout(host, false)
	resp, _ = originGet(t, o, url)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-blackout status = %d, want 200", resp.StatusCode)
	}
	if got := web.FetchCount(url); got != 1 {
		t.Fatalf("FetchCount after recovery = %d, want 1", got)
	}

	if _, err := NewHTTPOrigin(nil, nil); err == nil {
		t.Fatal("NewHTTPOrigin(nil) succeeded, want error")
	} else if errors.Is(err, ErrInjected) {
		t.Fatalf("unexpected sentinel: %v", err)
	}
}
