package recommend

import (
	"sync"
	"testing"

	"cbfww/internal/core"
	"cbfww/internal/logmine"
	"cbfww/internal/text"
)

func TestObserveVisitBuildsProfile(t *testing.T) {
	c := text.NewCorpus()
	m := NewManager(0.3)
	if _, ok := m.Profile("alice"); ok {
		t.Error("profile exists before visits")
	}
	m.ObserveVisit("alice", 1, c.VectorizeNew("kyoto temple garden"))
	p, ok := m.Profile("alice")
	if !ok || p.Norm() == 0 {
		t.Fatalf("profile = %v, %v", p, ok)
	}
	// Vectors are immutable, so the returned profile cannot corrupt
	// internal state; repeated calls must agree exactly.
	p2, _ := m.Profile("alice")
	if p.Cosine(p2) < 1-1e-12 {
		t.Fatal("Profile unstable across calls")
	}
	if m.Users() != 1 {
		t.Errorf("Users = %d", m.Users())
	}
}

func TestRecommendRanksAndExcludesVisited(t *testing.T) {
	c := text.NewCorpus()
	m := NewManager(0.3)
	kyoto := c.VectorizeNew("kyoto temple garden shrine")
	cooking := c.VectorizeNew("ramen broth noodle recipe")
	weather := c.VectorizeNew("typhoon rainfall humidity")

	m.ObserveVisit("alice", 1, kyoto)
	candidates := map[core.ObjectID]text.Vector{
		1: kyoto, // visited: excluded
		2: c.Vectorize("kyoto garden visit"),
		3: cooking,
		4: weather,
	}
	got := m.Recommend("alice", candidates, 10)
	if len(got) == 0 {
		t.Fatal("no recommendations")
	}
	for _, s := range got {
		if s.ID == 1 {
			t.Error("visited object recommended")
		}
	}
	if got[0].ID != 2 {
		t.Errorf("top suggestion = %v, want the kyoto page", got[0])
	}
	// Unknown user: nothing.
	if got := m.Recommend("nobody", candidates, 5); got != nil {
		t.Errorf("cold user got %v", got)
	}
	// n limits output.
	if got := m.Recommend("alice", candidates, 1); len(got) != 1 {
		t.Errorf("limit ignored: %v", got)
	}
}

func TestProfileTracksDrift(t *testing.T) {
	c := text.NewCorpus()
	m := NewManager(0.5)
	kyoto := c.VectorizeNew("kyoto temple garden")
	cooking := c.VectorizeNew("ramen noodle broth")
	m.ObserveVisit("u", 1, kyoto)
	for i := core.ObjectID(2); i < 10; i++ {
		m.ObserveVisit("u", i, cooking)
	}
	p, _ := m.Profile("u")
	if p.Cosine(cooking) <= p.Cosine(kyoto) {
		t.Errorf("profile did not drift: cook=%v kyoto=%v",
			p.Cosine(cooking), p.Cosine(kyoto))
	}
}

func TestNextHops(t *testing.T) {
	m := NewManager(0)
	m.SetPaths([]logmine.Path{
		{URLs: []string{"/a", "/d", "/g"}, Support: 13},
		{URLs: []string{"/a", "/b", "/e"}, Support: 5},
		{URLs: []string{"/x", "/y"}, Support: 9},
	})
	got := m.NextHops("/a", 10)
	if len(got) != 2 {
		t.Fatalf("NextHops = %+v", got)
	}
	if got[0].Support != 13 || got[0].URLs[0] != "/d" || got[0].URLs[1] != "/g" {
		t.Errorf("top suggestion = %+v", got[0])
	}
	if got[1].URLs[0] != "/b" {
		t.Errorf("second suggestion = %+v", got[1])
	}
	if got := m.NextHops("/nowhere", 10); len(got) != 0 {
		t.Errorf("unknown entry: %v", got)
	}
	if got := m.NextHops("/a", 1); len(got) != 1 {
		t.Errorf("limit ignored: %v", got)
	}
	// Replacing the path set replaces suggestions.
	m.SetPaths(nil)
	if got := m.NextHops("/a", 10); len(got) != 0 {
		t.Errorf("stale paths survived SetPaths(nil): %v", got)
	}
}

func TestManagerConcurrent(t *testing.T) {
	c := text.NewCorpus()
	m := NewManager(0.2)
	vec := c.VectorizeNew("kyoto station")
	cands := map[core.ObjectID]text.Vector{7: c.Vectorize("kyoto gardens")}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				m.ObserveVisit("u", core.ObjectID(i%5+1), vec)
				m.Recommend("u", cands, 3)
				m.NextHops("/a", 2)
				m.SetPaths([]logmine.Path{{URLs: []string{"/a", "/b"}, Support: g}})
			}
		}(g)
	}
	wg.Wait()
}
