// Package recommend implements the Recommendation Manager of §3(5).
//
// "High quality contents and useful navigation paths can be obtained from
// usage and content mining, and used for recommendation. Views of relevant
// contents are maintained for each user... Navigation that takes advantage
// of experiences of others is also known as 'Social Navigation'."
//
// Two recommenders live here:
//
//   - Content: per-user interest profiles (aged mean of visited document
//     vectors) ranked against the warehouse's objects by cosine.
//   - Navigation: given the page a user is on, the frequently traversed
//     paths (logical documents) that start there, ranked by support — the
//     guided-navigation trigger of §4.1 ("supporting guided navigation when
//     a reference is detected towards the start point ... of a logical page
//     path").
package recommend

import (
	"sort"
	"sync"

	"cbfww/internal/core"
	"cbfww/internal/logmine"
	"cbfww/internal/text"
)

// Suggestion is one content recommendation.
type Suggestion struct {
	ID    core.ObjectID
	Score float64
}

// PathSuggestion is one navigation recommendation.
type PathSuggestion struct {
	// URLs is the suggested continuation, starting with the next hop.
	URLs []string
	// Support is how many traversals the full path has.
	Support int
}

// Manager holds user profiles and the mined path set. Safe for concurrent
// use.
type Manager struct {
	mu sync.RWMutex
	// profileDecay blends old interests with the newest visit; 0.2 means
	// each visit contributes 20% of the new profile.
	profileBlend float64
	profiles     map[string]text.Vector
	visited      map[string]map[core.ObjectID]bool
	paths        []logmine.Path
	// byEntry indexes mined paths by entry URL.
	byEntry map[string][]int
}

// NewManager returns an empty recommender. profileBlend in (0,1] controls
// how fast profiles track new interests; out-of-range values default to
// 0.2.
func NewManager(profileBlend float64) *Manager {
	if profileBlend <= 0 || profileBlend > 1 {
		profileBlend = 0.2
	}
	return &Manager{
		profileBlend: profileBlend,
		profiles:     make(map[string]text.Vector),
		visited:      make(map[string]map[core.ObjectID]bool),
		byEntry:      make(map[string][]int),
	}
}

// ObserveVisit folds a visit into the user's interest profile.
func (m *Manager) ObserveVisit(user string, id core.ObjectID, vec text.Vector) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.profiles[user]
	if !ok {
		m.profiles[user] = vec.Clone()
	} else {
		m.profiles[user] = p.Scale(1-m.profileBlend).AddScaled(vec, m.profileBlend).Normalize()
	}
	v := m.visited[user]
	if v == nil {
		v = make(map[core.ObjectID]bool)
		m.visited[user] = v
	}
	v[id] = true
}

// Profile returns a copy of the user's interest vector.
func (m *Manager) Profile(user string) (text.Vector, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	p, ok := m.profiles[user]
	if !ok {
		return text.Vector{}, false
	}
	return p.Clone(), true
}

// Recommend ranks the candidate objects by similarity to the user's
// profile, excluding already-visited objects, and returns the top n. A
// user without a profile gets nothing (cold start is the Topic Manager's
// job).
func (m *Manager) Recommend(user string, candidates map[core.ObjectID]text.Vector, n int) []Suggestion {
	m.mu.RLock()
	profile, ok := m.profiles[user]
	if !ok {
		m.mu.RUnlock()
		return nil
	}
	seen := m.visited[user]
	out := make([]Suggestion, 0, len(candidates))
	for id, vec := range candidates {
		if seen[id] {
			continue
		}
		if s := profile.Cosine(vec); s > 0 {
			out = append(out, Suggestion{ID: id, Score: s})
		}
	}
	m.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	if n >= 0 && n < len(out) {
		out = out[:n]
	}
	return out
}

// SetPaths replaces the mined path set used for navigation suggestions.
func (m *Manager) SetPaths(paths []logmine.Path) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.paths = append([]logmine.Path(nil), paths...)
	m.byEntry = make(map[string][]int)
	for i, p := range m.paths {
		m.byEntry[p.Entry()] = append(m.byEntry[p.Entry()], i)
	}
}

// NextHops suggests continuations for a user standing on url: the mined
// paths entering at url, ranked by support, each trimmed to the hops after
// url.
func (m *Manager) NextHops(url string, n int) []PathSuggestion {
	m.mu.RLock()
	defer m.mu.RUnlock()
	idxs := m.byEntry[url]
	out := make([]PathSuggestion, 0, len(idxs))
	for _, i := range idxs {
		p := m.paths[i]
		if len(p.URLs) < 2 {
			continue
		}
		out = append(out, PathSuggestion{
			URLs:    append([]string(nil), p.URLs[1:]...),
			Support: p.Support,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		return len(out[i].URLs) > len(out[j].URLs)
	})
	if n >= 0 && n < len(out) {
		out = out[:n]
	}
	return out
}

// Users returns the number of users with profiles.
func (m *Manager) Users() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.profiles)
}
