// Package core holds the small set of types shared by every CBFWW
// subsystem: object identifiers, the simulated clock, storage-size
// quantities and common sentinel errors.
//
// Every algorithm in this repository is driven by a core.Clock rather than
// wall time, so simulations are deterministic and tests can advance time
// explicitly.
package core

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// ObjectID uniquely identifies an object managed by the warehouse. IDs are
// assigned by an IDAllocator and are never reused within one warehouse
// instance.
type ObjectID uint64

// InvalidID is the zero ObjectID; no live object ever has it.
const InvalidID ObjectID = 0

// String renders the ID in the form used by logs and query results.
func (id ObjectID) String() string { return "obj:" + strconv.FormatUint(uint64(id), 10) }

// Valid reports whether the ID refers to a (potentially) live object.
func (id ObjectID) Valid() bool { return id != InvalidID }

// IDAllocator hands out fresh ObjectIDs. It is safe for concurrent use.
type IDAllocator struct{ last atomic.Uint64 }

// NewIDAllocator returns an allocator whose first ID is 1.
func NewIDAllocator() *IDAllocator { return &IDAllocator{} }

// Next returns a fresh, never-before-returned ObjectID.
func (a *IDAllocator) Next() ObjectID { return ObjectID(a.last.Add(1)) }

// Bump raises the allocator's high-water mark to at least id, so that
// objects restored with persisted IDs never collide with fresh ones.
func (a *IDAllocator) Bump(id ObjectID) {
	for {
		cur := a.last.Load()
		if cur >= uint64(id) || a.last.CompareAndSwap(cur, uint64(id)) {
			return
		}
	}
}

// Time is a point on the simulation timeline. The unit is abstract "ticks";
// workload generators conventionally use one tick per second so that a
// month-long trace spans ~2.6 million ticks, but nothing in the system
// depends on that convention.
type Time int64

// TimeNever is the sentinel "no such event yet" timestamp. The paper uses
// -infinity for the time of the k-th reference when fewer than k references
// have happened; TimeNever plays that role.
const TimeNever Time = -1 << 62

// Duration is a span between two Times, in ticks.
type Duration int64

// Add returns t shifted forward by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// String renders the tick count; TimeNever renders as "never".
func (t Time) String() string {
	if t == TimeNever {
		return "never"
	}
	return "t" + strconv.FormatInt(int64(t), 10)
}

// Clock supplies the current simulation time. Implementations must be safe
// for concurrent use.
type Clock interface {
	// Now returns the current time on this clock.
	Now() Time
}

// SimClock is a manually advanced Clock for simulations and tests.
type SimClock struct {
	mu  sync.Mutex
	now Time
}

// NewSimClock returns a SimClock starting at the given time.
func NewSimClock(start Time) *SimClock { return &SimClock{now: start} }

// Now returns the current simulated time.
func (c *SimClock) Now() Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d ticks and returns the new time.
// Advancing by a negative duration panics: simulation time is monotonic.
func (c *SimClock) Advance(d Duration) Time {
	if d < 0 {
		panic("core: SimClock.Advance with negative duration")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	return c.now
}

// Set jumps the clock to exactly t. Moving backwards panics.
func (c *SimClock) Set(t Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t < c.now {
		panic("core: SimClock.Set moving backwards")
	}
	c.now = t
}

// WallClock adapts real time to the Clock interface at one tick per second
// since the epoch captured at construction. It exists for the interactive
// binaries; simulations never use it.
type WallClock struct{ epoch time.Time }

// NewWallClock returns a WallClock whose tick 0 is "now".
func NewWallClock() *WallClock { return &WallClock{epoch: time.Now()} }

// Now returns whole seconds elapsed since the clock was created.
func (c *WallClock) Now() Time { return Time(time.Since(c.epoch) / time.Second) }

// Bytes is a storage size. It is signed so that accounting deltas can be
// expressed directly, but live object sizes are always non-negative.
type Bytes int64

// Common size units.
const (
	KB Bytes = 1 << 10
	MB Bytes = 1 << 20
	GB Bytes = 1 << 30
	TB Bytes = 1 << 40
)

// String renders the size with a binary-unit suffix, e.g. "1.5MB".
func (b Bytes) String() string {
	neg := ""
	v := b
	if v < 0 {
		neg, v = "-", -v
	}
	switch {
	case v >= TB:
		return fmt.Sprintf("%s%.1fTB", neg, float64(v)/float64(TB))
	case v >= GB:
		return fmt.Sprintf("%s%.1fGB", neg, float64(v)/float64(GB))
	case v >= MB:
		return fmt.Sprintf("%s%.1fMB", neg, float64(v)/float64(MB))
	case v >= KB:
		return fmt.Sprintf("%s%.1fKB", neg, float64(v)/float64(KB))
	default:
		return fmt.Sprintf("%s%dB", neg, int64(v))
	}
}

// Priority is the warehouse-wide object priority. Higher is more valuable.
// Priorities are comparable across object kinds; the Priority Manager keeps
// them normalized to [0, 1] for admission-time assignment, but structural
// propagation and topic boosts may push values above 1, which is fine —
// only the order matters for placement.
type Priority float64

// Common priority levels used as defaults and in tests.
const (
	PriorityMin     Priority = 0
	PriorityDefault Priority = 0.5
	PriorityMax     Priority = 1
)

// Clamp returns p restricted to [lo, hi].
func (p Priority) Clamp(lo, hi Priority) Priority {
	if p < lo {
		return lo
	}
	if p > hi {
		return hi
	}
	return p
}

// Sentinel errors shared across packages. Subsystems wrap these with
// context via fmt.Errorf("...: %w", err).
var (
	// ErrNotFound reports that the named object, version or key does not
	// exist in the queried structure.
	ErrNotFound = errors.New("not found")
	// ErrExists reports an attempt to create something that already exists.
	ErrExists = errors.New("already exists")
	// ErrInvalid reports a structurally invalid argument (bad ID, negative
	// size, malformed query, ...).
	ErrInvalid = errors.New("invalid argument")
	// ErrConstraint reports that an operation was refused by the Constraint
	// Manager (admission or consistency constraint violated).
	ErrConstraint = errors.New("constraint violated")
	// ErrClosed reports use of a component after Close.
	ErrClosed = errors.New("closed")
	// ErrCorrupt reports stored bytes that fail integrity verification
	// (torn segment frame, CRC mismatch, truncated record).
	ErrCorrupt = errors.New("corrupt data")
)
