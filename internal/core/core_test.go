package core

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestIDAllocatorSequential(t *testing.T) {
	a := NewIDAllocator()
	for want := ObjectID(1); want <= 100; want++ {
		if got := a.Next(); got != want {
			t.Fatalf("Next() = %v, want %v", got, want)
		}
	}
}

func TestIDAllocatorConcurrentUnique(t *testing.T) {
	a := NewIDAllocator()
	const goroutines, perG = 8, 1000
	var mu sync.Mutex
	seen := make(map[ObjectID]bool, goroutines*perG)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]ObjectID, 0, perG)
			for i := 0; i < perG; i++ {
				local = append(local, a.Next())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, id := range local {
				if seen[id] {
					t.Errorf("duplicate ID %v", id)
				}
				seen[id] = true
			}
		}()
	}
	wg.Wait()
	if len(seen) != goroutines*perG {
		t.Fatalf("got %d unique IDs, want %d", len(seen), goroutines*perG)
	}
}

func TestObjectIDValidAndString(t *testing.T) {
	if InvalidID.Valid() {
		t.Error("InvalidID.Valid() = true")
	}
	if !ObjectID(7).Valid() {
		t.Error("ObjectID(7).Valid() = false")
	}
	if got, want := ObjectID(42).String(), "obj:42"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestSimClockAdvance(t *testing.T) {
	c := NewSimClock(10)
	if c.Now() != 10 {
		t.Fatalf("Now() = %v, want 10", c.Now())
	}
	if got := c.Advance(5); got != 15 {
		t.Fatalf("Advance(5) = %v, want 15", got)
	}
	c.Set(100)
	if c.Now() != 100 {
		t.Fatalf("after Set(100), Now() = %v", c.Now())
	}
}

func TestSimClockPanicsOnBackwards(t *testing.T) {
	c := NewSimClock(50)
	mustPanic(t, "Advance(-1)", func() { c.Advance(-1) })
	mustPanic(t, "Set(10)", func() { c.Set(10) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	f()
}

func TestTimeArithmetic(t *testing.T) {
	a := Time(100)
	b := a.Add(25)
	if b != 125 {
		t.Fatalf("Add = %v", b)
	}
	if d := b.Sub(a); d != 25 {
		t.Fatalf("Sub = %v", d)
	}
	if !a.Before(b) || !b.After(a) {
		t.Fatal("Before/After inconsistent")
	}
	if TimeNever.String() != "never" {
		t.Errorf("TimeNever.String() = %q", TimeNever.String())
	}
	if Time(5).String() != "t5" {
		t.Errorf("Time(5).String() = %q", Time(5).String())
	}
}

func TestBytesString(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{0, "0B"},
		{512, "512B"},
		{KB, "1.0KB"},
		{1536, "1.5KB"},
		{3 * MB, "3.0MB"},
		{2 * GB, "2.0GB"},
		{5 * TB, "5.0TB"},
		{-2 * MB, "-2.0MB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Bytes(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestPriorityClamp(t *testing.T) {
	if got := Priority(2).Clamp(0, 1); got != 1 {
		t.Errorf("Clamp high = %v", got)
	}
	if got := Priority(-1).Clamp(0, 1); got != 0 {
		t.Errorf("Clamp low = %v", got)
	}
	if got := Priority(0.3).Clamp(0, 1); got != 0.3 {
		t.Errorf("Clamp mid = %v", got)
	}
}

func TestPriorityClampProperty(t *testing.T) {
	f := func(p float64) bool {
		got := Priority(p).Clamp(PriorityMin, PriorityMax)
		return got >= PriorityMin && got <= PriorityMax
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWallClockMonotone(t *testing.T) {
	c := NewWallClock()
	a := c.Now()
	b := c.Now()
	if b < a {
		t.Fatalf("WallClock went backwards: %v then %v", a, b)
	}
}
