package storage

import (
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"sync"

	"cbfww/internal/core"
)

// BlobKey names one stored blob: an object's content at a specific
// version, either the full body or its levels-of-detail summary. A tier
// backend may hold several versions of the same object transiently (the
// manager deletes superseded keys as it goes), so the version is part of
// the identity, not an attribute.
type BlobKey struct {
	ID      core.ObjectID
	Version int
	Summary bool
}

// String renders the key the way the disk store names its files.
func (k BlobKey) String() string {
	s := fmt.Sprintf("%d-v%d", uint64(k.ID), k.Version)
	if k.Summary {
		s += ".s"
	}
	return s
}

// BlobStore is one tier's byte store. Implementations are safe for
// concurrent use; the manager serializes placement but lets reads overlap.
//
// Get and Put transfer ownership conservatively: Put may retain the slice
// it is given (callers must not mutate it afterwards) and callers must not
// mutate a slice returned by Get.
type BlobStore interface {
	// Put stores data under k, replacing any previous blob with that key.
	Put(k BlobKey, data []byte) error
	// Get returns the blob stored under k, or core.ErrNotFound.
	Get(k BlobKey) ([]byte, error)
	// Open returns a streaming reader over the blob stored under k, or
	// core.ErrNotFound. Backends with integrity framing (the segment
	// store) verify it here and return core.ErrCorrupt on damage, so a
	// caller that gets a reader never sees a short stream. The caller
	// must Close the reader.
	Open(k BlobKey) (BlobReader, error)
	// PutFrom stores the next n bytes of r under k, replacing any
	// previous blob with that key. It is Put without the body-sized
	// intermediate buffer: file-backed tiers stream r to their medium
	// through bounded chunk buffers.
	PutFrom(k BlobKey, r io.Reader, n int64) error
	// Delete removes k. Deleting an absent key is a no-op.
	Delete(k BlobKey) error
	// Contains reports whether k is stored.
	Contains(k BlobKey) bool
	// Keys lists every stored key in unspecified order.
	Keys() []BlobKey
	// Len returns the number of stored blobs.
	Len() int
	// Sync flushes buffered state to stable storage.
	Sync() error
	// Close releases file handles. The store is unusable afterwards.
	Close() error
}

// compacter is implemented by backends that reclaim garbage (the segment
// store); the manager pokes it from Backup, the paper's periodic process.
type compacter interface {
	MaybeCompact() error
}

// memStore is the in-heap BlobStore: a mutex-guarded map. It backs the
// memory tier always, and every tier in all-in-heap mode (empty DataDir).
type memStore struct {
	mu sync.RWMutex
	m  map[BlobKey][]byte
}

func newMemStore() *memStore {
	return &memStore{m: make(map[BlobKey][]byte)}
}

func (s *memStore) Put(k BlobKey, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[k] = data
	return nil
}

func (s *memStore) Get(k BlobKey) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.m[k]
	if !ok {
		return nil, fmt.Errorf("storage: mem get %v: %w", k, core.ErrNotFound)
	}
	return data, nil
}

func (s *memStore) Delete(k BlobKey) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, k)
	return nil
}

func (s *memStore) Contains(k BlobKey) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.m[k]
	return ok
}

func (s *memStore) Keys() []BlobKey {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]BlobKey, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	return keys
}

func (s *memStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

func (s *memStore) Sync() error  { return nil }
func (s *memStore) Close() error { return nil }

// openBackends builds one blob store per tier-table row: all in-heap
// when DataDir is empty, otherwise each persistent tier rooted under
// DataDir/<tier name> ("disk" and "tertiary" on the default table, so
// legacy data directories keep their paths).
func openBackends(cfg Config, tiers []TierSpec) ([]BlobStore, error) {
	b := make([]BlobStore, len(tiers))
	if cfg.DataDir == "" {
		for t := range b {
			b[t] = newMemStore()
		}
		return b, nil
	}
	closeAll := func() {
		for _, s := range b {
			if s != nil {
				s.Close()
			}
		}
	}
	segSize := cfg.SegmentSize
	if segSize <= 0 {
		segSize = 4 * core.MB
	}
	for t, ts := range tiers {
		dir := filepath.Join(cfg.DataDir, ts.Name)
		var err error
		switch ts.Backend {
		case "heap":
			b[t] = newMemStore()
		case "disk":
			b[t], err = OpenDiskStore(dir)
		case "mmap":
			b[t], err = OpenMmapStore(dir)
		case "segment":
			b[t], err = OpenSegmentStore(dir, segSize)
		default:
			err = fmt.Errorf("storage: %w: unknown backend %q", core.ErrInvalid, ts.Backend)
		}
		if err != nil {
			closeAll()
			return nil, err
		}
	}
	return b, nil
}

// sortKeys orders keys by (ID, Version, Summary) for deterministic walks.
func sortKeys(keys []BlobKey) {
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		if a.Version != b.Version {
			return a.Version < b.Version
		}
		return !a.Summary && b.Summary
	})
}
