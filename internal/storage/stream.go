package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"cbfww/internal/core"
)

// BlobReader is a streaming handle on one stored blob. It is a positioned
// one-shot reader: Read/WriteTo consume the payload front to back, Len
// reports the total payload size (independent of how much has been read),
// and Close releases whatever the backend pinned (an open file for the
// disk and segment tiers, nothing for the heap tier). Callers must Close
// every reader, including after partial reads.
//
// The point of the interface is the io.WriterTo leg: io.Copy (and
// net/http's ResponseWriter.ReadFrom path) consult it first, so each
// backend can pick its cheapest byte-moving strategy — a single Write of
// the resident slice for heap blobs, io.Copy from the raw *os.File for
// disk blobs (sendfile/copy_file_range eligible), and a pooled-buffer
// pread loop over the segment window for tertiary blobs. None of these
// allocate proportionally to the body.
type BlobReader interface {
	io.Reader
	io.WriterTo
	io.Closer
	// Len returns the total payload size in bytes, regardless of read
	// position.
	Len() int64
}

// copyBufPool holds the chunk buffers used wherever streamed bytes must
// pass through user space (segment CRC verification and reads, streamed
// segment appends, codec-era fallbacks in the warehouse). 32KB matches
// io.Copy's internal default.
var copyBufPool = sync.Pool{
	New: func() any { return make([]byte, 32*1024) },
}

// CopyBuffer returns a pooled 32KB chunk buffer; release it with
// PutCopyBuffer. Exported for upper layers (warehouse, gateway) that
// stream through user space and want to share the pool.
func CopyBuffer() []byte { return copyBufPool.Get().([]byte) }

// PutCopyBuffer returns a buffer obtained from CopyBuffer to the pool.
func PutCopyBuffer(buf []byte) { copyBufPool.Put(buf) } //nolint:staticcheck // slice headers are fine here

// memReader is the heap tier's BlobReader: a cursor over the resident
// slice. WriteTo hands the remaining window to the destination in one
// Write — zero copies, zero allocations.
type memReader struct {
	data []byte
	off  int
}

func (r *memReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

func (r *memReader) WriteTo(w io.Writer) (int64, error) {
	if r.off >= len(r.data) {
		return 0, nil
	}
	n, err := w.Write(r.data[r.off:])
	r.off += n
	return int64(n), err
}

func (r *memReader) Len() int64   { return int64(len(r.data)) }
func (r *memReader) Close() error { return nil }

// fileReader is the disk tier's BlobReader: the open blob file itself.
// WriteTo delegates to io.Copy(w, f) so when w unwraps to a socket (the
// net/http ResponseWriter.ReadFrom path) the kernel moves the bytes via
// sendfile, never surfacing them in user space.
type fileReader struct {
	f    *os.File
	size int64
}

func (r *fileReader) Read(p []byte) (int, error) { return r.f.Read(p) }

func (r *fileReader) WriteTo(w io.Writer) (int64, error) {
	// io.Copy sees the raw *os.File: *net.TCPConn (via http) takes the
	// sendfile path, another *os.File takes copy_file_range.
	return io.Copy(w, r.f)
}

func (r *fileReader) Len() int64   { return r.size }
func (r *fileReader) Close() error { return r.f.Close() }

// sectionReader is the segment store's BlobReader: a pread window over
// the store's shared, refcounted segment file handle (see segFile). Open
// pins the segment; Close releases the pin, and the last release of a
// segment Compact has retired performs the deferred close+unlink. WriteTo
// moves bytes through a pooled chunk buffer, so there is no per-stream
// descriptor at all — just the reader itself.
type sectionReader struct {
	sr      *io.SectionReader
	size    int64
	release func() error
}

func (r *sectionReader) Read(p []byte) (int, error) { return r.sr.Read(p) }

func (r *sectionReader) WriteTo(w io.Writer) (int64, error) {
	buf := CopyBuffer()
	defer PutCopyBuffer(buf)
	var written int64
	for {
		n, err := r.sr.Read(buf)
		if n > 0 {
			wn, werr := w.Write(buf[:n])
			written += int64(wn)
			if werr != nil {
				return written, werr
			}
			if wn < n {
				return written, io.ErrShortWrite
			}
		}
		if err == io.EOF {
			return written, nil
		}
		if err != nil {
			return written, err
		}
	}
}

func (r *sectionReader) Len() int64 { return r.size }

func (r *sectionReader) Close() error {
	rel := r.release
	r.release = nil
	if rel == nil {
		return nil
	}
	return rel()
}

// --- memStore streaming ---

func (s *memStore) Open(k BlobKey) (BlobReader, error) {
	s.mu.RLock()
	data, ok := s.m[k]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("storage: mem open %v: %w", k, core.ErrNotFound)
	}
	return &memReader{data: data}, nil
}

// PutFrom for the heap store materializes, as it must — but when the
// source is another heap tier's reader (all-in-heap mode migrations) it
// adopts the underlying slice directly, keeping heap↔heap movement
// zero-copy just like the []byte Put path was.
func (s *memStore) PutFrom(k BlobKey, r io.Reader, n int64) error {
	if mr, ok := r.(*memReader); ok && mr.off == 0 && int64(len(mr.data)) == n {
		mr.off = len(mr.data)
		return s.Put(k, mr.data)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		return fmt.Errorf("storage: mem put-from %v: %w", k, err)
	}
	return s.Put(k, data)
}

// --- DiskStore streaming ---

// Open returns the blob's file, opened for reading. The caller owns the
// handle; an unlink (Delete, version turnover) while the stream is in
// flight is harmless — the open descriptor keeps the bytes readable.
func (s *DiskStore) Open(k BlobKey) (BlobReader, error) {
	s.mu.RLock()
	_, ok := s.index[k]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("storage: disk open %v: %w", k, core.ErrNotFound)
	}
	f, err := os.Open(s.path(k))
	if err != nil {
		return nil, fmt.Errorf("storage: disk open %v: %w", k, err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: disk open %v: %w", k, err)
	}
	return &fileReader{f: f, size: fi.Size()}, nil
}

// PutFrom streams n bytes from r into a temp file and renames it into
// place — the same torn-write guarantee as Put, without a body-sized heap
// buffer. io.Copy negotiates the cheapest transfer with r (ReadFrom on
// *os.File takes copy_file_range for disk→disk migrations).
func (s *DiskStore) PutFrom(k BlobKey, r io.Reader, n int64) error {
	dst := s.path(k)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("storage: disk put-from %v: %w", k, err)
	}
	tmp, err := os.CreateTemp(s.root, ".blob-*")
	if err != nil {
		return fmt.Errorf("storage: disk put-from %v: %w", k, err)
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	written, err := io.Copy(tmp, r)
	if err == nil && written != n {
		err = fmt.Errorf("wrote %d of %d bytes", written, n)
	}
	if err != nil {
		tmp.Close()
		return fmt.Errorf("storage: disk put-from %v: %w", k, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("storage: disk put-from %v: %w", k, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("storage: disk put-from %v: %w", k, err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return fmt.Errorf("storage: disk put-from %v: %w", k, err)
	}
	s.mu.Lock()
	s.index[k] = struct{}{}
	s.mu.Unlock()
	return nil
}

// --- SegmentStore streaming ---

// Open verifies the record's frame and payload CRC, then returns a pread
// window over the payload. Verification streams through a pooled chunk
// buffer — the body is never materialized — and any mismatch (torn
// header, truncated payload, bad checksum) surfaces as core.ErrCorrupt
// rather than a short read at serve time. The reader pins the store's
// shared segment handle (a refcount taken under the read lock, so
// Compact — which needs the write lock — cannot retire the file first);
// once Open returns, the pin keeps the window readable even if Compact
// retires the segment while the stream is still in flight: the close and
// unlink are deferred until the last reader drains. Verification itself
// runs after the lock is dropped — the pin alone keeps the bytes stable,
// since old segment bytes are never overwritten.
func (s *SegmentStore) Open(k BlobKey) (BlobReader, error) {
	s.mu.RLock()
	loc, ok := s.index[k]
	var sf *segFile
	if ok {
		sf = s.files[loc.seg]
		s.refMu.Lock()
		sf.refs++
		s.refMu.Unlock()
	}
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("storage: segment open %v: %w", k, core.ErrNotFound)
	}
	fail := func(err error) error {
		s.releaseSegFile(sf)
		return err
	}
	f := sf.f
	var hdr [segHeaderLen]byte
	if _, err := f.ReadAt(hdr[:], loc.off-segHeaderLen); err != nil {
		return nil, fail(fmt.Errorf("storage: segment open %v: torn header: %w", k, core.ErrCorrupt))
	}
	if hdr[0] != segMagic || hdr[1] != segKindPut ||
		core.ObjectID(binary.BigEndian.Uint64(hdr[3:11])) != k.ID ||
		int(binary.BigEndian.Uint32(hdr[11:15])) != k.Version ||
		(hdr[2] == 1) != k.Summary ||
		int(binary.BigEndian.Uint32(hdr[15:19])) != loc.n {
		return nil, fail(fmt.Errorf("storage: segment open %v: frame mismatch: %w", k, core.ErrCorrupt))
	}
	crc := crc32.NewIEEE()
	crc.Write(hdr[:])
	buf := CopyBuffer()
	sec := io.NewSectionReader(f, loc.off, int64(loc.n))
	if _, err := io.CopyBuffer(onlyWriter{crc}, sec, buf); err != nil {
		PutCopyBuffer(buf)
		return nil, fail(fmt.Errorf("storage: segment open %v: torn payload: %w", k, core.ErrCorrupt))
	}
	PutCopyBuffer(buf)
	var trailer [segTrailerLen]byte
	if _, err := f.ReadAt(trailer[:], loc.off+int64(loc.n)); err != nil {
		return nil, fail(fmt.Errorf("storage: segment open %v: torn trailer: %w", k, core.ErrCorrupt))
	}
	if binary.BigEndian.Uint32(trailer[:]) != crc.Sum32() {
		return nil, fail(fmt.Errorf("storage: segment open %v: checksum mismatch: %w", k, core.ErrCorrupt))
	}
	return &sectionReader{
		sr:      io.NewSectionReader(f, loc.off, int64(loc.n)),
		size:    int64(loc.n),
		release: func() error { return s.releaseSegFile(sf) },
	}, nil
}

// onlyWriter hides any other methods of the wrapped writer so
// io.CopyBuffer actually uses the provided buffer.
type onlyWriter struct{ w io.Writer }

func (o onlyWriter) Write(p []byte) (int, error) { return o.w.Write(p) }

// PutFrom appends one record streaming the payload from r through a
// pooled chunk buffer: header, then chunks feeding both the file and the
// running CRC, then the trailer. On any failure the active segment is
// truncated back to the record start so the append offset stays clean.
func (s *SegmentStore) PutFrom(k BlobKey, r io.Reader, n int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.activeSize >= int64(s.maxSize) {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	seg := s.segs[len(s.segs)-1]
	f := s.files[seg].f
	start := s.activeSize
	fail := func(err error) error {
		f.Truncate(start)
		f.Seek(start, io.SeekStart)
		return fmt.Errorf("storage: segment put-from %v: %w", k, err)
	}
	var hdr [segHeaderLen]byte
	hdr[0] = segMagic
	hdr[1] = segKindPut
	if k.Summary {
		hdr[2] = 1
	}
	binary.BigEndian.PutUint64(hdr[3:11], uint64(k.ID))
	binary.BigEndian.PutUint32(hdr[11:15], uint32(k.Version))
	binary.BigEndian.PutUint32(hdr[15:19], uint32(n))
	crc := crc32.NewIEEE()
	crc.Write(hdr[:])
	if _, err := f.Write(hdr[:]); err != nil {
		return fail(err)
	}
	buf := CopyBuffer()
	written, err := io.CopyBuffer(onlyWriter{io.MultiWriter(f, crc)}, io.LimitReader(r, n), buf)
	PutCopyBuffer(buf)
	if err == nil && written != n {
		err = fmt.Errorf("wrote %d of %d payload bytes", written, n)
	}
	if err != nil {
		return fail(err)
	}
	var trailer [segTrailerLen]byte
	binary.BigEndian.PutUint32(trailer[:], crc.Sum32())
	if _, err := f.Write(trailer[:]); err != nil {
		return fail(err)
	}
	if old, ok := s.index[k]; ok {
		oldRec := int64(segHeaderLen + old.n + segTrailerLen)
		s.deadBytes += oldRec
		s.liveBytes -= oldRec
	}
	s.index[k] = segLoc{seg: seg, off: start + segHeaderLen, n: int(n)}
	recLen := segHeaderLen + n + segTrailerLen
	s.liveBytes += recLen
	s.activeSize += recLen
	return nil
}
