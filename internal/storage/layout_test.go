package storage

import (
	"errors"
	"testing"

	"cbfww/internal/core"
)

func layoutManager(t *testing.T, n int) *Manager {
	t.Helper()
	m, err := NewManager(Config{
		MemCapacity: 10, DiskCapacity: 10, // everything lands on tertiary
		DiskLatency: 10, TertiaryLatency: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]Admission, n)
	for i := range batch {
		batch[i] = Admission{ID: core.ObjectID(i + 1), Size: 100, Version: 1}
	}
	if err := m.AdmitAll(batch); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestLayoutAssignsPositions(t *testing.T) {
	m := layoutManager(t, 5)
	if err := m.LayoutTertiary([]core.ObjectID{3, 1}); err != nil {
		t.Fatal(err)
	}
	wants := map[core.ObjectID]int{3: 0, 1: 1, 2: 2, 4: 3, 5: 4}
	for id, want := range wants {
		got, ok := m.TertiaryPosition(id)
		if !ok || got != want {
			t.Errorf("pos(%v) = %d, %v; want %d", id, got, ok, want)
		}
	}
}

func TestLayoutValidation(t *testing.T) {
	m := layoutManager(t, 3)
	if err := m.LayoutTertiary([]core.ObjectID{99}); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("unknown id err = %v", err)
	}
	if err := m.LayoutTertiary([]core.ObjectID{1, 1}); !errors.Is(err, core.ErrInvalid) {
		t.Errorf("duplicate err = %v", err)
	}
	if _, ok := m.TertiaryPosition(99); ok {
		t.Error("position for unknown id")
	}
}

func TestRunCostClusteredVsScattered(t *testing.T) {
	m := layoutManager(t, 10)
	group := []core.ObjectID{2, 5, 7, 9}

	// Scattered: natural ID layout; reading the group seeks between every
	// pair (positions 1, 4, 6, 8).
	if err := m.LayoutTertiary(nil); err != nil {
		t.Fatal(err)
	}
	const seek = 1000
	scattered, err := m.RunCost(group, seek)
	if err != nil {
		t.Fatal(err)
	}

	// Clustered: the vacuum-cleaner lays the group out adjacently.
	if err := m.LayoutTertiary(group); err != nil {
		t.Fatal(err)
	}
	clustered, err := m.RunCost(group, seek)
	if err != nil {
		t.Fatal(err)
	}

	wantScattered := core.Duration(4*seek + 4*100)
	wantClustered := core.Duration(1*seek + 4*100)
	if scattered != wantScattered {
		t.Errorf("scattered = %v, want %v", scattered, wantScattered)
	}
	if clustered != wantClustered {
		t.Errorf("clustered = %v, want %v", clustered, wantClustered)
	}
	if clustered >= scattered {
		t.Error("clustering did not reduce run cost")
	}
}

func TestRunCostRequiresTertiaryCopies(t *testing.T) {
	m := layoutManager(t, 2)
	m.DropTier(Tertiary)
	if _, err := m.RunCost([]core.ObjectID{1}, 10); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("err = %v", err)
	}
}

func TestRunCostEmpty(t *testing.T) {
	m := layoutManager(t, 2)
	c, err := m.RunCost(nil, 10)
	if err != nil || c != 0 {
		t.Errorf("empty run = %v, %v", c, err)
	}
}
