package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"cbfww/internal/core"
)

// SegmentStore is the append-only BlobStore backing the tertiary tier: a
// linear medium in the paper's sense, written front to back. Blobs are
// appended as self-describing records to numbered segment files
// (seg-000000.seg, seg-000001.seg, ...), the active segment rotating once
// it exceeds the configured size. Overwrites and deletes never touch old
// bytes — a Put of an existing key appends a fresh record, a Delete
// appends a tombstone — so the live data slowly drowns in garbage, and
// Compact rewrites the live set into fresh segments when the dead
// fraction crosses half. MaybeCompact is driven from Manager.Backup, the
// paper's periodic background process.
//
// Record layout (big-endian):
//
//	magic(1)=0xC5 kind(1) summary(1) id(8) version(4) length(4) payload crc32(4)
//
// where kind is 1 (put) or 2 (tombstone, length 0), and the CRC covers
// header + payload. On Open, segments are replayed in order; the first
// record that fails to parse or checksum ends the usable data in that
// segment (a crashed writer only damages the tail), and a damaged tail in
// the newest segment is truncated away so appends resume cleanly.
type SegmentStore struct {
	dir     string
	maxSize core.Bytes

	mu    sync.RWMutex
	index map[BlobKey]segLoc
	files map[int]*segFile // open segment handles, by segment number
	segs  []int            // segment numbers, ascending; last is active
	// refMu guards the refs/retired fields of every segFile. Ordered
	// after mu: Open pins under the read lock, Compact retires under the
	// write lock, and a reader's Close takes only refMu.
	refMu sync.Mutex
	// active append state.
	activeSize int64
	// live/dead record bytes (including headers), for the garbage ratio.
	liveBytes, deadBytes int64
	// Compactions counts completed compaction passes (for tests/stats).
	Compactions int
}

// segFile is one shared, refcounted segment file handle. Stream readers
// pin it (refs) instead of opening their own descriptor; Compact retires
// superseded segments, deferring the close — and the unlink, when set —
// until the last in-flight reader drains.
type segFile struct {
	f       *os.File
	refs    int    // in-flight stream readers
	retired bool   // superseded by Compact or Close
	unlink  string // path to remove at teardown ("" = close only)
}

// releaseSegFile drops one reader's pin, performing the deferred
// teardown when the segment is retired and this was the last pin.
func (s *SegmentStore) releaseSegFile(sf *segFile) error {
	s.refMu.Lock()
	sf.refs--
	drained := sf.refs == 0 && sf.retired
	s.refMu.Unlock()
	if drained {
		return sf.teardown()
	}
	return nil
}

// teardown closes the handle and removes the file when marked for
// unlinking. Called with no pins outstanding.
func (sf *segFile) teardown() error {
	err := sf.f.Close()
	if sf.unlink != "" {
		if rmErr := os.Remove(sf.unlink); rmErr != nil && err == nil {
			err = rmErr
		}
	}
	return err
}

type segLoc struct {
	seg int
	off int64 // payload offset within the segment
	n   int   // payload length
}

const (
	segMagic      = 0xC5
	segKindPut    = 1
	segKindDelete = 2
	segHeaderLen  = 1 + 1 + 1 + 8 + 4 + 4
	segTrailerLen = 4 // crc32
)

func segName(n int) string { return fmt.Sprintf("seg-%06d.seg", n) }

// OpenSegmentStore opens (creating if needed) a segment store in dir,
// replaying every segment to rebuild the key index.
func OpenSegmentStore(dir string, maxSize core.Bytes) (*SegmentStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: open segment store: %w", err)
	}
	if maxSize <= 0 {
		maxSize = 4 * core.MB
	}
	s := &SegmentStore{
		dir:     dir,
		maxSize: maxSize,
		index:   make(map[BlobKey]segLoc),
		files:   make(map[int]*segFile),
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("storage: open segment store: %w", err)
	}
	for _, e := range ents {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "seg-%06d.seg", &n); err == nil {
			s.segs = append(s.segs, n)
		}
	}
	sort.Ints(s.segs)
	for i, n := range s.segs {
		if err := s.replaySegment(n, i == len(s.segs)-1); err != nil {
			s.Close()
			return nil, err
		}
	}
	if len(s.segs) == 0 {
		if err := s.rotateLocked(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// replaySegment scans one segment file, applying its intact record prefix
// to the index. When active (the newest segment), a damaged tail is
// truncated so subsequent appends start from a clean offset.
func (s *SegmentStore) replaySegment(n int, active bool) error {
	f, err := os.OpenFile(filepath.Join(s.dir, segName(n)), os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("storage: replay segment %d: %w", n, err)
	}
	s.files[n] = &segFile{f: f}
	var off int64
	hdr := make([]byte, segHeaderLen)
	for {
		if _, err := io.ReadFull(f, hdr); err != nil {
			break // clean EOF or truncated header: end of usable data
		}
		if hdr[0] != segMagic || (hdr[1] != segKindPut && hdr[1] != segKindDelete) {
			break
		}
		k := BlobKey{
			ID:      core.ObjectID(binary.BigEndian.Uint64(hdr[3:11])),
			Version: int(binary.BigEndian.Uint32(hdr[11:15])),
			Summary: hdr[2] == 1,
		}
		length := int(binary.BigEndian.Uint32(hdr[15:19]))
		body := make([]byte, length+segTrailerLen)
		if _, err := io.ReadFull(f, body); err != nil {
			break
		}
		crc := crc32.NewIEEE()
		crc.Write(hdr)
		crc.Write(body[:length])
		if binary.BigEndian.Uint32(body[length:]) != crc.Sum32() {
			break
		}
		recLen := int64(segHeaderLen + length + segTrailerLen)
		if old, ok := s.index[k]; ok {
			oldRec := int64(segHeaderLen + old.n + segTrailerLen)
			s.liveBytes -= oldRec
			s.deadBytes += oldRec
		}
		switch hdr[1] {
		case segKindPut:
			s.index[k] = segLoc{seg: n, off: off + segHeaderLen, n: length}
			s.liveBytes += recLen
		case segKindDelete:
			delete(s.index, k)
			s.deadBytes += recLen // the tombstone itself is garbage
		}
		off += recLen
	}
	if active {
		if err := f.Truncate(off); err != nil {
			return fmt.Errorf("storage: replay segment %d: %w", n, err)
		}
		if _, err := f.Seek(off, io.SeekStart); err != nil {
			return fmt.Errorf("storage: replay segment %d: %w", n, err)
		}
		s.activeSize = off
	}
	return nil
}

// rotateLocked opens the next segment file as the append target.
func (s *SegmentStore) rotateLocked() error {
	next := 0
	if len(s.segs) > 0 {
		next = s.segs[len(s.segs)-1] + 1
	}
	f, err := os.OpenFile(filepath.Join(s.dir, segName(next)), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("storage: rotate segment: %w", err)
	}
	s.segs = append(s.segs, next)
	s.files[next] = &segFile{f: f}
	s.activeSize = 0
	return nil
}

// appendLocked writes one record to the active segment, rotating first if
// the segment is full. Returns the payload offset.
func (s *SegmentStore) appendLocked(kind byte, k BlobKey, payload []byte) (seg int, off int64, err error) {
	if s.activeSize >= int64(s.maxSize) {
		if err := s.rotateLocked(); err != nil {
			return 0, 0, err
		}
	}
	seg = s.segs[len(s.segs)-1]
	f := s.files[seg].f
	rec := make([]byte, segHeaderLen+len(payload)+segTrailerLen)
	rec[0] = segMagic
	rec[1] = kind
	if k.Summary {
		rec[2] = 1
	}
	binary.BigEndian.PutUint64(rec[3:11], uint64(k.ID))
	binary.BigEndian.PutUint32(rec[11:15], uint32(k.Version))
	binary.BigEndian.PutUint32(rec[15:19], uint32(len(payload)))
	copy(rec[segHeaderLen:], payload)
	crc := crc32.NewIEEE()
	crc.Write(rec[:segHeaderLen+len(payload)])
	binary.BigEndian.PutUint32(rec[segHeaderLen+len(payload):], crc.Sum32())
	if _, err := f.Write(rec); err != nil {
		return 0, 0, fmt.Errorf("storage: segment append %v: %w", k, err)
	}
	off = s.activeSize + segHeaderLen
	s.activeSize += int64(len(rec))
	return seg, off, nil
}

func (s *SegmentStore) Put(k BlobKey, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.index[k]; ok {
		s.deadBytes += int64(segHeaderLen + old.n + segTrailerLen)
		s.liveBytes -= int64(segHeaderLen + old.n + segTrailerLen)
	}
	seg, off, err := s.appendLocked(segKindPut, k, data)
	if err != nil {
		return err
	}
	s.index[k] = segLoc{seg: seg, off: off, n: len(data)}
	s.liveBytes += int64(segHeaderLen + len(data) + segTrailerLen)
	return nil
}

func (s *SegmentStore) Get(k BlobKey) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	loc, ok := s.index[k]
	if !ok {
		return nil, fmt.Errorf("storage: segment get %v: %w", k, core.ErrNotFound)
	}
	data := make([]byte, loc.n)
	if _, err := s.files[loc.seg].f.ReadAt(data, loc.off); err != nil {
		return nil, fmt.Errorf("storage: segment get %v: %w", k, err)
	}
	return data, nil
}

func (s *SegmentStore) Delete(k BlobKey) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	loc, ok := s.index[k]
	if !ok {
		return nil
	}
	if _, _, err := s.appendLocked(segKindDelete, k, nil); err != nil {
		return err
	}
	delete(s.index, k)
	rec := int64(segHeaderLen + loc.n + segTrailerLen)
	s.liveBytes -= rec
	s.deadBytes += rec + segHeaderLen + segTrailerLen
	return nil
}

func (s *SegmentStore) Contains(k BlobKey) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.index[k]
	return ok
}

func (s *SegmentStore) Keys() []BlobKey {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]BlobKey, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	return keys
}

func (s *SegmentStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Sync fsyncs the active segment and the store directory.
func (s *SegmentStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.segs) > 0 {
		if err := s.files[s.segs[len(s.segs)-1]].f.Sync(); err != nil {
			return fmt.Errorf("storage: segment sync: %w", err)
		}
	}
	return syncDir(s.dir)
}

// Close releases the store's segment handles. Handles pinned by
// in-flight stream readers are retired instead: their close happens when
// the last reader drains, so shutdown never yanks bytes out from under a
// stream.
func (s *SegmentStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var drained []*segFile
	s.refMu.Lock()
	for _, sf := range s.files {
		sf.retired = true
		if sf.refs == 0 {
			drained = append(drained, sf)
		}
	}
	s.refMu.Unlock()
	var first error
	for _, sf := range drained {
		if err := sf.teardown(); err != nil && first == nil {
			first = err
		}
	}
	s.files = make(map[int]*segFile)
	return first
}

// GarbageRatio reports the dead fraction of all record bytes written.
func (s *SegmentStore) GarbageRatio() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := s.liveBytes + s.deadBytes
	if total == 0 {
		return 0
	}
	return float64(s.deadBytes) / float64(total)
}

// MaybeCompact compacts when at least half the written bytes are garbage.
func (s *SegmentStore) MaybeCompact() error {
	if s.GarbageRatio() > 0.5 {
		return s.Compact()
	}
	return nil
}

// Compact rewrites the live records into fresh segments and retires the
// old files — stop-the-world for writers and new opens, but safe against
// in-flight streams: readers hold refcounted pins on the shared segment
// handles, so a retired segment's close and unlink are deferred until its
// last reader drains. Segments with no pins are torn down immediately.
func (s *SegmentStore) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Read every live blob (ordered for a deterministic new layout).
	keys := make([]BlobKey, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sortKeys(keys)
	blobs := make([][]byte, len(keys))
	for i, k := range keys {
		loc := s.index[k]
		data := make([]byte, loc.n)
		if _, err := s.files[loc.seg].f.ReadAt(data, loc.off); err != nil {
			return fmt.Errorf("storage: compact read %v: %w", k, err)
		}
		blobs[i] = data
	}
	// Retire the old segments: unlink now when unpinned, else at drain.
	var drained []*segFile
	s.refMu.Lock()
	for n, sf := range s.files {
		sf.retired = true
		sf.unlink = filepath.Join(s.dir, segName(n))
		if sf.refs == 0 {
			drained = append(drained, sf)
		}
	}
	s.refMu.Unlock()
	for _, sf := range drained {
		if err := sf.teardown(); err != nil {
			return fmt.Errorf("storage: compact remove segment: %w", err)
		}
	}
	nextSeg := 0
	if len(s.segs) > 0 {
		nextSeg = s.segs[len(s.segs)-1] + 1 // never reuse numbers: replay order stays honest
	}
	s.files = make(map[int]*segFile)
	s.segs = nil
	s.index = make(map[BlobKey]segLoc)
	s.liveBytes, s.deadBytes, s.activeSize = 0, 0, 0
	// Rewrite the live set.
	f, err := os.OpenFile(filepath.Join(s.dir, segName(nextSeg)), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("storage: compact: %w", err)
	}
	s.segs = append(s.segs, nextSeg)
	s.files[nextSeg] = &segFile{f: f}
	for i, k := range keys {
		seg, off, err := s.appendLocked(segKindPut, k, blobs[i])
		if err != nil {
			return err
		}
		s.index[k] = segLoc{seg: seg, off: off, n: len(blobs[i])}
		s.liveBytes += int64(segHeaderLen + len(blobs[i]) + segTrailerLen)
	}
	s.Compactions++
	return nil
}
