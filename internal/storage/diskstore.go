package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"cbfww/internal/core"
)

// DiskStore is the file-per-blob BlobStore backing the disk tier. Each
// blob lives in its own file under the root:
//
//	<root>/<id mod 256, hex>/<id>-v<version>[.s]
//
// The 256 fan-out directories keep listings short at warehouse scale. A
// Put writes to a temp file in the root and renames into place, so a
// crash never leaves a torn blob — only a whole old one, a whole new one,
// or a stray .tmp that Open sweeps away. The key set is mirrored in an
// in-memory index rebuilt by walking the tree on Open, which is what
// makes crash recovery possible: surviving files *are* the store.
type DiskStore struct {
	root string

	mu    sync.RWMutex
	index map[BlobKey]struct{}
}

// OpenDiskStore opens (creating if needed) a disk store rooted at dir and
// rebuilds its index from the files present, deleting leftover temp files
// from a crashed writer.
func OpenDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: open disk store: %w", err)
	}
	s := &DiskStore{root: dir, index: make(map[BlobKey]struct{})}
	sub, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("storage: open disk store: %w", err)
	}
	for _, d := range sub {
		if !d.IsDir() {
			if strings.HasPrefix(d.Name(), ".blob-") {
				os.Remove(filepath.Join(dir, d.Name()))
			}
			continue
		}
		files, err := os.ReadDir(filepath.Join(dir, d.Name()))
		if err != nil {
			return nil, fmt.Errorf("storage: open disk store: %w", err)
		}
		for _, f := range files {
			if k, ok := parseBlobName(f.Name()); ok {
				s.index[k] = struct{}{}
			}
		}
	}
	return s, nil
}

// parseBlobName inverts BlobKey.String.
func parseBlobName(name string) (BlobKey, bool) {
	var k BlobKey
	if strings.HasSuffix(name, ".s") {
		k.Summary = true
		name = strings.TrimSuffix(name, ".s")
	}
	id, ver, ok := strings.Cut(name, "-v")
	if !ok {
		return BlobKey{}, false
	}
	n, err := strconv.ParseUint(id, 10, 64)
	if err != nil {
		return BlobKey{}, false
	}
	v, err := strconv.Atoi(ver)
	if err != nil || v < 0 {
		return BlobKey{}, false
	}
	k.ID = core.ObjectID(n)
	k.Version = v
	return k, true
}

// path returns the blob file path for k.
func (s *DiskStore) path(k BlobKey) string {
	return filepath.Join(s.root, fmt.Sprintf("%02x", uint64(k.ID)%256), k.String())
}

func (s *DiskStore) Put(k BlobKey, data []byte) error {
	dst := s.path(k)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("storage: disk put %v: %w", k, err)
	}
	tmp, err := os.CreateTemp(s.root, ".blob-*")
	if err != nil {
		return fmt.Errorf("storage: disk put %v: %w", k, err)
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("storage: disk put %v: %w", k, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("storage: disk put %v: %w", k, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("storage: disk put %v: %w", k, err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return fmt.Errorf("storage: disk put %v: %w", k, err)
	}
	s.mu.Lock()
	s.index[k] = struct{}{}
	s.mu.Unlock()
	return nil
}

func (s *DiskStore) Get(k BlobKey) ([]byte, error) {
	s.mu.RLock()
	_, ok := s.index[k]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("storage: disk get %v: %w", k, core.ErrNotFound)
	}
	data, err := os.ReadFile(s.path(k))
	if err != nil {
		return nil, fmt.Errorf("storage: disk get %v: %w", k, err)
	}
	return data, nil
}

func (s *DiskStore) Delete(k BlobKey) error {
	s.mu.Lock()
	_, ok := s.index[k]
	delete(s.index, k)
	s.mu.Unlock()
	if !ok {
		return nil
	}
	if err := os.Remove(s.path(k)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("storage: disk delete %v: %w", k, err)
	}
	return nil
}

func (s *DiskStore) Contains(k BlobKey) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.index[k]
	return ok
}

func (s *DiskStore) Keys() []BlobKey {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]BlobKey, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	return keys
}

func (s *DiskStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Sync fsyncs the fan-out directories so renames performed since the last
// sync are durable. Blob contents are fsynced at Put time.
func (s *DiskStore) Sync() error {
	sub, err := os.ReadDir(s.root)
	if err != nil {
		return fmt.Errorf("storage: disk sync: %w", err)
	}
	for _, d := range sub {
		if !d.IsDir() {
			continue
		}
		if err := syncDir(filepath.Join(s.root, d.Name())); err != nil {
			return err
		}
	}
	return syncDir(s.root)
}

func (s *DiskStore) Close() error { return nil }

// syncDir fsyncs a directory (making renames within it durable).
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("storage: sync dir: %w", err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("storage: sync dir %s: %w", dir, err)
	}
	return nil
}
