package storage

import (
	"fmt"
	"sort"

	"cbfww/internal/core"
)

// §4.4, locality of reference: "Related objects are stored in adjacent
// areas of storage (disks, tapes) so that they can be retrieved together
// efficiently. ... web data once in hot spot may be retrieved together for
// analysis purpose. Such data are clustered in the tertiary storage."
//
// The manager models tertiary storage as a linear medium: every object
// with a tertiary copy has a position, and a multi-object retrieval pays a
// seek whenever consecutive accesses are not physically adjacent. The
// vacuum-cleaner sweep can lay related objects out together so an
// analysis run over a past hot spot costs one seek instead of hundreds.

// LayoutTertiary assigns tertiary positions following the given order:
// listed objects first (in order), then every other tertiary resident in
// ascending ID order. Objects without a tertiary copy are ignored in the
// listing but get positions once a Backup lands them. Unknown IDs are an
// error.
func (m *Manager) LayoutTertiary(order []core.ObjectID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	seen := make(map[core.ObjectID]bool, len(order))
	pos := 0
	for _, id := range order {
		o, ok := m.objects[id]
		if !ok {
			return fmt.Errorf("storage: layout: %v: %w", id, core.ErrNotFound)
		}
		if seen[id] {
			return fmt.Errorf("storage: layout: %v listed twice: %w", id, core.ErrInvalid)
		}
		seen[id] = true
		if o.copies[Tertiary].present {
			o.tertiaryPos = pos
			pos++
		}
	}
	rest := make([]core.ObjectID, 0, len(m.objects))
	for id, o := range m.objects {
		if !seen[id] && o.copies[Tertiary].present {
			rest = append(rest, id)
		}
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
	for _, id := range rest {
		m.objects[id].tertiaryPos = pos
		pos++
	}
	return nil
}

// TertiaryPosition returns the object's position on the tertiary medium;
// ok is false when it has no tertiary copy.
func (m *Manager) TertiaryPosition(id core.ObjectID) (int, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	o, ok := m.objects[id]
	if !ok || !o.copies[Tertiary].present {
		return 0, false
	}
	return o.tertiaryPos, true
}

// RunCost models retrieving the given objects from tertiary storage in
// order: each object costs TertiaryLatency to transfer, plus seekCost
// whenever it is not physically adjacent to (directly after) the previous
// one. Objects without tertiary copies are an error — the analysis
// workload this models reads archived data.
func (m *Manager) RunCost(ids []core.ObjectID, seekCost core.Duration) (core.Duration, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var cost core.Duration
	prev := -2 // forces a seek on the first access
	for _, id := range ids {
		o, ok := m.objects[id]
		if !ok || !o.copies[Tertiary].present {
			return 0, fmt.Errorf("storage: run cost: %v not on tertiary: %w", id, core.ErrNotFound)
		}
		if o.tertiaryPos != prev+1 {
			cost += seekCost
		}
		cost += m.cfg.TertiaryLatency
		prev = o.tertiaryPos
	}
	return cost, nil
}
