package storage

import (
	"errors"
	"os"
	"testing"
	"testing/quick"

	"cbfww/internal/core"
)

func newTestManager(t *testing.T) *Manager {
	t.Helper()
	cfg := Config{
		MemCapacity:  100,
		DiskCapacity: 1000,
		MemLatency:   0, DiskLatency: 10, TertiaryLatency: 100,
		SummaryRatio:     0.1,
		SummaryThreshold: 0.5, // objects > 50 bytes are "large documents"
	}
	// CBFWW_DISK_TIER=1 (the storage-disk CI job) runs the whole suite
	// against real file-backed disk and tertiary tiers in a tempdir.
	if os.Getenv("CBFWW_DISK_TIER") != "" {
		cfg.DataDir = t.TempDir()
	}
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func TestNewManagerValidation(t *testing.T) {
	bad := []Config{
		{MemCapacity: 0, DiskCapacity: 10, DiskLatency: 1, TertiaryLatency: 2},
		{MemCapacity: 10, DiskCapacity: 0, DiskLatency: 1, TertiaryLatency: 2},
		{MemCapacity: 10, DiskCapacity: 10, MemLatency: 5, DiskLatency: 1, TertiaryLatency: 2},
		{MemCapacity: 10, DiskCapacity: 10, DiskLatency: 1, TertiaryLatency: 2, SummaryRatio: 1.5},
	}
	for i, cfg := range bad {
		if _, err := NewManager(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if _, err := NewManager(DefaultConfig()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestAdmitPlacesByPriority(t *testing.T) {
	m := newTestManager(t)
	// Memory holds 100 bytes: two 40-byte high-priority objects fit, the
	// third (low priority) does not.
	if err := m.Admit(1, 40, 1, 0.9); err != nil {
		t.Fatal(err)
	}
	if err := m.Admit(2, 40, 1, 0.8); err != nil {
		t.Fatal(err)
	}
	if err := m.Admit(3, 40, 1, 0.1); err != nil {
		t.Fatal(err)
	}
	for id, want := range map[core.ObjectID]Tier{1: Memory, 2: Memory, 3: Disk} {
		got, ok := m.Contains(id)
		if !ok || got != want {
			t.Errorf("Contains(%v) = %v, %v; want %v", id, got, ok, want)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Access costs follow tiers.
	r1, err := m.Access(1)
	if err != nil || r1.Tier != Memory || r1.Latency != 0 {
		t.Errorf("Access(1) = %+v, %v", r1, err)
	}
	r3, err := m.Access(3)
	if err != nil || r3.Tier != Disk || r3.Latency != 10 {
		t.Errorf("Access(3) = %+v, %v", r3, err)
	}
	st := m.Stats()
	if st.Accesses != 2 || st.CostTotal != 10 {
		t.Errorf("stats = %+v", st)
	}
}

func TestAdmitErrors(t *testing.T) {
	m := newTestManager(t)
	if err := m.Admit(1, 0, 1, 0.5); !errors.Is(err, core.ErrInvalid) {
		t.Errorf("zero size err = %v", err)
	}
	if err := m.Admit(1, 10, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := m.Admit(1, 10, 1, 0.5); !errors.Is(err, core.ErrExists) {
		t.Errorf("dup err = %v", err)
	}
	if _, err := m.Access(99); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("missing access err = %v", err)
	}
	if err := m.Remove(99); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("missing remove err = %v", err)
	}
	if err := m.SetPriority(99, 1); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("missing set-priority err = %v", err)
	}
}

func TestMemoryResidentHasDiskCopy(t *testing.T) {
	m := newTestManager(t)
	if err := m.Admit(1, 50, 1, 1.0); err != nil {
		t.Fatal(err)
	}
	mem := m.ResidentIDs(Memory)
	disk := m.ResidentIDs(Disk)
	if len(mem) != 1 || len(disk) != 1 {
		t.Fatalf("residents: mem=%v disk=%v", mem, disk)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLevelsOfDetailSummary(t *testing.T) {
	m := newTestManager(t)
	// 60-byte object with SummaryThreshold 0.5*100 = 50: a large document,
	// so memory holds a 6-byte summary while disk holds the body.
	if err := m.Admit(1, 60, 1, 1.0); err != nil {
		t.Fatal(err)
	}
	res, err := m.Access(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tier != Disk {
		t.Errorf("full body served from %v, want disk", res.Tier)
	}
	if !res.HasPreview || res.PreviewTier != Memory || res.PreviewLatency != 0 {
		t.Errorf("no memory preview: %+v", res)
	}
	if used := m.Used(Memory); used != 6 {
		t.Errorf("memory used = %v, want 6 (summary)", used)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPriorityChangeMigrates(t *testing.T) {
	m := newTestManager(t)
	m.Admit(1, 40, 1, 0.9)
	m.Admit(2, 40, 1, 0.8)
	m.Admit(3, 40, 1, 0.1)
	if tier, _ := m.Contains(3); tier != Disk {
		t.Fatalf("precondition: 3 at %v", tier)
	}
	// Promote 3 above 2: they swap places.
	if err := m.SetPriority(3, 0.85); err != nil {
		t.Fatal(err)
	}
	if tier, _ := m.Contains(3); tier != Memory {
		t.Errorf("3 at %v after promotion", tier)
	}
	if tier, _ := m.Contains(2); tier != Disk {
		t.Errorf("2 at %v after demotion", tier)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Migrations == 0 {
		t.Error("no migrations counted")
	}

	// Bulk form.
	m.ApplyPriorities(map[core.ObjectID]core.Priority{2: 0.95, 3: 0.05})
	if tier, _ := m.Contains(2); tier != Memory {
		t.Errorf("bulk: 2 at %v", tier)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateAndBackupVersioning(t *testing.T) {
	m := newTestManager(t)
	m.Admit(1, 40, 1, 0.9) // memory + disk + tertiary
	if err := m.Update(1, 2); err != nil {
		t.Fatal(err)
	}
	// Fast copies current, tertiary stale.
	res, _ := m.Access(1)
	if res.Stale {
		t.Error("memory copy stale after update")
	}
	if err := m.Update(1, 1); !errors.Is(err, core.ErrInvalid) {
		t.Errorf("regressing version err = %v", err)
	}
	if err := m.Update(99, 5); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("unknown update err = %v", err)
	}
	// Drop fast tiers: only the stale tertiary copy remains.
	m.DropTier(Memory)
	m.DropTier(Disk)
	res2, err := m.Access(1)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Tier != Tertiary || !res2.Stale {
		t.Errorf("tertiary access = %+v, want stale", res2)
	}
	// Backup refreshes tertiary.
	m.Backup()
	res3, _ := m.Access(1)
	if res3.Stale {
		t.Error("tertiary still stale after backup")
	}
	if m.Stats().Backups != 1 {
		t.Errorf("backups = %d", m.Stats().Backups)
	}
}

func TestUpdateTertiaryOnlyObject(t *testing.T) {
	m := newTestManager(t)
	// Low priority object larger than disk would allow? Use tiny disk.
	m2, err := NewManager(Config{MemCapacity: 10, DiskCapacity: 10,
		DiskLatency: 1, TertiaryLatency: 2})
	if err != nil {
		t.Fatal(err)
	}
	m2.Admit(1, 50, 1, 0.5) // fits nowhere fast: tertiary only
	if tier, _ := m2.Contains(1); tier != Tertiary {
		t.Fatalf("at %v", tier)
	}
	if err := m2.Update(1, 2); err != nil {
		t.Fatal(err)
	}
	res, _ := m2.Access(1)
	if res.Stale {
		t.Error("direct tertiary update left stale copy")
	}
	_ = m
}

func TestDropMemoryRecoverFromDisk(t *testing.T) {
	m := newTestManager(t)
	m.Admit(1, 40, 1, 0.9)
	m.Admit(2, 40, 1, 0.8)
	if err := m.DropTier(Memory); err != nil {
		t.Fatal(err)
	}
	if ids := m.ResidentIDs(Memory); len(ids) != 0 {
		t.Fatalf("memory not empty after drop: %v", ids)
	}
	rep := m.Recover()
	if rep.Lost != 0 || rep.Stale != 0 {
		t.Errorf("report = %+v", rep)
	}
	if rep.Restored == 0 {
		t.Error("nothing restored")
	}
	if ids := m.ResidentIDs(Memory); len(ids) != 2 {
		t.Errorf("memory after recover: %v", ids)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDropDiskRecoverStale(t *testing.T) {
	m := newTestManager(t)
	m.Admit(1, 40, 1, 0.9)
	m.Update(1, 3) // tertiary copy stays at v1
	// Lose both fast tiers: only the stale tertiary backup survives.
	m.DropTier(Memory)
	m.DropTier(Disk)
	rep := m.Recover()
	if rep.Stale != 1 {
		t.Errorf("stale = %d, want 1", rep.Stale)
	}
	if rep.Lost != 0 {
		t.Errorf("lost = %d", rep.Lost)
	}
	res, err := m.Access(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stale {
		t.Error("recovered copy still flagged stale (should be authoritative now)")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDropAllTiersLosesObject(t *testing.T) {
	m := newTestManager(t)
	m.Admit(1, 40, 1, 0.9)
	m.DropTier(Memory)
	m.DropTier(Disk)
	m.DropTier(Tertiary)
	rep := m.Recover()
	if rep.Lost != 1 {
		t.Errorf("lost = %d, want 1", rep.Lost)
	}
	if m.Len() != 0 {
		t.Errorf("Len = %d after total loss", m.Len())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDropTierValidation(t *testing.T) {
	m := newTestManager(t)
	if err := m.DropTier(Tier(9)); !errors.Is(err, core.ErrInvalid) {
		t.Errorf("bad tier err = %v", err)
	}
}

func TestRemoveFreesSpace(t *testing.T) {
	m := newTestManager(t)
	m.Admit(1, 40, 1, 0.9)
	usedT := m.Used(Tertiary)
	if err := m.Remove(1); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 0 {
		t.Errorf("Len = %d", m.Len())
	}
	if m.Used(Tertiary) != usedT-40 {
		t.Errorf("tertiary used = %v", m.Used(Tertiary))
	}
}

func TestAdmitAllBulk(t *testing.T) {
	m := newTestManager(t)
	batch := make([]Admission, 20)
	for i := range batch {
		batch[i] = Admission{
			ID: core.ObjectID(i + 1), Size: 10, Version: 1,
			Priority: core.Priority(i) / 20,
		}
	}
	if err := m.AdmitAll(batch); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 20 {
		t.Fatalf("Len = %d", m.Len())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The ten highest priorities (IDs 11..20) fill memory (100/10).
	mem := m.ResidentIDs(Memory)
	if len(mem) != 10 {
		t.Fatalf("memory residents = %v", mem)
	}
	if mem[0] != 11 {
		t.Errorf("lowest memory resident = %v, want 11", mem[0])
	}
	// Dup detection.
	if err := m.AdmitAll([]Admission{{ID: 5, Size: 1}}); !errors.Is(err, core.ErrExists) {
		t.Errorf("bulk dup err = %v", err)
	}
}

func TestTierString(t *testing.T) {
	if Memory.String() != "memory" || Disk.String() != "disk" ||
		Tertiary.String() != "tertiary" || Tier(7).String() != "tier(7)" {
		t.Error("Tier.String wrong")
	}
}

// Property: any sequence of admits, priority changes, updates, backups and
// tier drops + recover preserves the invariants.
func TestStorageInvariantsProperty(t *testing.T) {
	f := func(kinds, ids, vals []uint8) bool {
		n := len(kinds)
		if len(ids) < n {
			n = len(ids)
		}
		if len(vals) < n {
			n = len(vals)
		}
		type op struct{ kind, id, val uint8 }
		ops := make([]op, n)
		for i := range ops {
			ops[i] = op{kinds[i], ids[i], vals[i]}
		}
		m, err := NewManager(Config{
			MemCapacity: 50, DiskCapacity: 200,
			DiskLatency: 1, TertiaryLatency: 10, SummaryRatio: 0.1,
		})
		if err != nil {
			return false
		}
		version := make(map[core.ObjectID]int)
		for _, o := range ops {
			id := core.ObjectID(o.id%10 + 1)
			switch o.kind % 6 {
			case 0:
				if err := m.Admit(id, core.Bytes(o.val%30+1), 1, core.Priority(o.val)/255); err == nil {
					version[id] = 1
				}
			case 1:
				m.SetPriority(id, core.Priority(o.val)/255)
			case 2:
				if v, ok := version[id]; ok {
					if err := m.Update(id, v+1); err == nil {
						version[id] = v + 1
					}
				}
			case 3:
				m.Backup()
			case 4:
				m.DropTier(Tier(o.val % 3))
				rep := m.Recover()
				for id2 := range version {
					if _, ok := m.Priority(id2); !ok {
						delete(version, id2)
					}
				}
				_ = rep
			case 5:
				m.Access(id)
			}
			if err := m.CheckInvariants(); err != nil {
				t.Logf("invariant violated: %v", err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func BenchmarkApplyPriorities(b *testing.B) {
	m, err := NewManager(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	const n = 2000
	batch := make([]Admission, n)
	for i := range batch {
		batch[i] = Admission{
			ID: core.ObjectID(i + 1), Size: core.Bytes((i%100 + 1)) * core.KB,
			Version: 1, Priority: core.Priority(i%97) / 97,
		}
	}
	if err := m.AdmitAll(batch); err != nil {
		b.Fatal(err)
	}
	prios := make(map[core.ObjectID]core.Priority, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < n; j++ {
			prios[core.ObjectID(j+1)] = core.Priority((i+j)%101) / 101
		}
		m.ApplyPriorities(prios)
	}
}
