package storage

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"cbfww/internal/core"
)

// Manager is the storage manager. Safe for concurrent use.
type Manager struct {
	mu      sync.RWMutex
	cfg     Config
	objects map[core.ObjectID]*object
	// backends hold the actual payload bytes, one store per tier.
	backends [numTiers]BlobStore
	used     [numTiers]core.Bytes
	stats    Stats
	// memGen counts memory-residency changes; memDirty is the coalesced set
	// of objects whose memory-tier copy changed since the last drain. The
	// hierarchy-of-indices layer polls these instead of sweeping ResidentIDs
	// on every read.
	memGen   atomic.Uint64
	memDirty map[core.ObjectID]struct{}
}

// NewManager returns an empty manager. Capacities must be positive and
// latencies non-decreasing down the hierarchy. With cfg.DataDir set, the
// disk and tertiary backends are opened (created) under it; RecoverFromDisk
// re-adopts whatever a previous process left there.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.MemCapacity <= 0 || cfg.DiskCapacity <= 0 {
		return nil, fmt.Errorf("storage: %w: capacities must be positive", core.ErrInvalid)
	}
	if cfg.MemLatency > cfg.DiskLatency || cfg.DiskLatency > cfg.TertiaryLatency {
		return nil, fmt.Errorf("storage: %w: latencies must grow down the hierarchy", core.ErrInvalid)
	}
	if cfg.SummaryRatio < 0 || cfg.SummaryRatio >= 1 {
		return nil, fmt.Errorf("storage: %w: summary ratio %v outside [0,1)", core.ErrInvalid, cfg.SummaryRatio)
	}
	if cfg.SummaryThreshold == 0 {
		cfg.SummaryThreshold = 0.25
	}
	backends, err := openBackends(cfg)
	if err != nil {
		return nil, err
	}
	return &Manager{
		cfg:      cfg,
		objects:  make(map[core.ObjectID]*object),
		backends: backends,
		memDirty: make(map[core.ObjectID]struct{}),
	}, nil
}

// Backend exposes the blob store behind one tier (read-mostly: tests and
// benchmarks inspect it; mutating it behind the manager's back breaks the
// placement invariants).
func (m *Manager) Backend(t Tier) BlobStore {
	return m.backends[t]
}

// noteMemLocked records that id's memory-tier copy changed. Requires m.mu.
func (m *Manager) noteMemLocked(id core.ObjectID) {
	m.memDirty[id] = struct{}{}
	m.memGen.Add(1)
}

// MemoryResidencyGen returns a counter that advances whenever any object's
// memory-tier copy changes. Readers compare it against a remembered value
// to skip reconciliation entirely when nothing moved; it is lock-free.
func (m *Manager) MemoryResidencyGen() uint64 {
	return m.memGen.Load()
}

// DrainMemoryChanges returns the IDs whose memory-tier copy changed since
// the previous drain (ascending, for determinism) and the generation the
// drain reflects, clearing the pending set. The events are coalesced and
// idempotent: consumers re-check current residency per ID rather than
// replaying individual transitions.
func (m *Manager) DrainMemoryChanges() ([]core.ObjectID, uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	gen := m.memGen.Load()
	if len(m.memDirty) == 0 {
		return nil, gen
	}
	ids := make([]core.ObjectID, 0, len(m.memDirty))
	for id := range m.memDirty {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	m.memDirty = make(map[core.ObjectID]struct{})
	return ids, gen
}

// ResidentAt reports whether id currently has a copy (full or summary) at
// tier t.
func (m *Manager) ResidentAt(id core.ObjectID, t Tier) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	o, ok := m.objects[id]
	return ok && t >= Memory && t < numTiers && o.copies[t].present
}

// latency returns the access latency of tier t.
func (m *Manager) latency(t Tier) core.Duration {
	switch t {
	case Memory:
		return m.cfg.MemLatency
	case Disk:
		return m.cfg.DiskLatency
	default:
		return m.cfg.TertiaryLatency
	}
}

// Admit stores a new object with the given size, content version and
// priority, placing it according to the current population. Admitting an
// existing ID is an error; use Update for content changes and SetPriority
// for reprioritization. Objects admitted this way carry no payload bytes
// — only placement metadata moves; use AdmitBytes for real content.
func (m *Manager) Admit(id core.ObjectID, size core.Bytes, version int, prio core.Priority) error {
	return m.admit(id, size, version, prio, nil, false)
}

// AdmitBytes admits an object together with its content. The payload
// lands in the tertiary backend first (the unbounded level), then the
// placement pass copies it upward as far as its priority earns. The
// manager owns the slice afterwards.
func (m *Manager) AdmitBytes(id core.ObjectID, size core.Bytes, version int, prio core.Priority, payload []byte) error {
	return m.admit(id, size, version, prio, payload, true)
}

func (m *Manager) admit(id core.ObjectID, size core.Bytes, version int, prio core.Priority, payload []byte, hasPayload bool) error {
	if size <= 0 {
		return fmt.Errorf("storage: admit %v: %w: size %v", id, core.ErrInvalid, size)
	}
	if version < 1 {
		version = 1
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.objects[id]; dup {
		return fmt.Errorf("storage: admit %v: %w", id, core.ErrExists)
	}
	o := &object{id: id, size: size, version: version, priority: prio, hasPayload: hasPayload}
	// Everything lands in tertiary first (the unbounded level), then the
	// placement pass promotes it as far as its priority earns.
	if hasPayload {
		if err := m.backends[Tertiary].Put(BlobKey{ID: id, Version: version}, payload); err != nil {
			return fmt.Errorf("storage: admit %v: %w", id, err)
		}
	}
	o.copies[Tertiary] = copyState{present: true, version: version}
	m.objects[id] = o
	m.used[Tertiary] += size
	m.stats.MovedBytes[Tertiary] += size
	m.placeLocked()
	return nil
}

// Admission is one entry of a bulk admission.
type Admission struct {
	ID       core.ObjectID
	Size     core.Bytes
	Version  int
	Priority core.Priority
	// Payload, when non-nil, admits the entry with content (AdmitBytes
	// semantics); nil admits metadata only.
	Payload []byte
}

// AdmitAll admits a batch with a single placement pass — O(n log n) total
// instead of per object, for trace replays and experiment setup.
func (m *Manager) AdmitAll(batch []Admission) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, a := range batch {
		if a.Size <= 0 {
			return fmt.Errorf("storage: admit %v: %w: size %v", a.ID, core.ErrInvalid, a.Size)
		}
		if _, dup := m.objects[a.ID]; dup {
			return fmt.Errorf("storage: admit %v: %w", a.ID, core.ErrExists)
		}
		v := a.Version
		if v < 1 {
			v = 1
		}
		o := &object{id: a.ID, size: a.Size, version: v, priority: a.Priority, hasPayload: a.Payload != nil}
		if o.hasPayload {
			if err := m.backends[Tertiary].Put(BlobKey{ID: a.ID, Version: v}, a.Payload); err != nil {
				return fmt.Errorf("storage: admit %v: %w", a.ID, err)
			}
		}
		o.copies[Tertiary] = copyState{present: true, version: v}
		m.objects[a.ID] = o
		m.used[Tertiary] += a.Size
		m.stats.MovedBytes[Tertiary] += a.Size
	}
	m.placeLocked()
	return nil
}

// Remove deletes the object from all tiers (admission-constraint
// enforcement path), including its stored bytes. Removing an unknown ID
// is an error.
func (m *Manager) Remove(id core.ObjectID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	o, ok := m.objects[id]
	if !ok {
		return fmt.Errorf("storage: remove %v: %w", id, core.ErrNotFound)
	}
	for t := Memory; t < numTiers; t++ {
		m.used[t] -= o.footprint(t, m.cfg.SummaryRatio)
		if o.hasPayload && o.copies[t].present {
			m.backends[t].Delete(o.copies[t].key(id))
		}
	}
	if o.copies[Memory].present {
		m.noteMemLocked(id)
	}
	delete(m.objects, id)
	return nil
}

// Access serves the object, preferring the fastest tier with a full copy,
// and reports the cost. Accessing an unknown ID fails.
func (m *Manager) Access(id core.ObjectID) (AccessResult, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	res, _, err := m.accessLocked(id)
	return res, err
}

// Fetch serves the object like Access and additionally returns its
// payload bytes, read from the backend of the serving tier. Fetching an
// object admitted without payload returns nil bytes.
func (m *Manager) Fetch(id core.ObjectID) (AccessResult, []byte, error) {
	m.mu.Lock()
	res, o, err := m.accessLocked(id)
	m.mu.Unlock()
	if err != nil || !o.hasPayload {
		return res, nil, err
	}
	// The backend read happens outside the manager lock: the blob stores
	// are internally synchronized, and a concurrent placement that deletes
	// the copy between unlock and read surfaces as ErrNotFound, which the
	// caller handles like a miss.
	data, err := m.backends[res.Tier].Get(BlobKey{ID: id, Version: res.Version})
	if err != nil {
		return res, nil, err
	}
	return res, data, nil
}

// FetchStream serves the object like Fetch — identical placement and
// usage accounting — but returns a streaming reader over the payload
// instead of materialized bytes, so the caller can move them to a socket
// or another tier without a body-sized heap buffer. The caller must Close
// the reader. Objects admitted without payload return a nil reader.
func (m *Manager) FetchStream(id core.ObjectID) (AccessResult, BlobReader, error) {
	m.mu.Lock()
	res, o, err := m.accessLocked(id)
	m.mu.Unlock()
	if err != nil || !o.hasPayload {
		return res, nil, err
	}
	// As with Fetch, the backend open happens outside the manager lock; a
	// concurrent placement that deletes the copy surfaces as ErrNotFound.
	br, err := m.backends[res.Tier].Open(BlobKey{ID: id, Version: res.Version})
	if err != nil {
		return res, nil, err
	}
	return res, br, nil
}

// PeekStream is Peek with a streaming reader: the fastest full copy's
// payload and content version, without touching the access stats. The
// caller must Close the reader.
func (m *Manager) PeekStream(id core.ObjectID) (BlobReader, int, error) {
	m.mu.RLock()
	o, ok := m.objects[id]
	if !ok || !o.hasPayload {
		m.mu.RUnlock()
		return nil, 0, fmt.Errorf("storage: peek %v: %w", id, core.ErrNotFound)
	}
	var (
		tier  Tier
		ver   int
		found bool
	)
	for t := Memory; t < numTiers; t++ {
		if c := o.copies[t]; c.present && !c.summaryOnly {
			tier, ver, found = t, c.version, true
			break
		}
	}
	m.mu.RUnlock()
	if !found {
		return nil, 0, fmt.Errorf("storage: peek %v: no full copy resident: %w", id, core.ErrNotFound)
	}
	br, err := m.backends[tier].Open(BlobKey{ID: id, Version: ver})
	if err != nil {
		return nil, 0, err
	}
	return br, ver, nil
}

// Peek returns the payload bytes and content version of the fastest full
// copy without touching the access stats — the rehydration and index-feed
// read path. Objects without payload return core.ErrNotFound.
func (m *Manager) Peek(id core.ObjectID) ([]byte, int, error) {
	m.mu.RLock()
	o, ok := m.objects[id]
	if !ok || !o.hasPayload {
		m.mu.RUnlock()
		return nil, 0, fmt.Errorf("storage: peek %v: %w", id, core.ErrNotFound)
	}
	var (
		tier  Tier
		ver   int
		found bool
	)
	for t := Memory; t < numTiers; t++ {
		if c := o.copies[t]; c.present && !c.summaryOnly {
			tier, ver, found = t, c.version, true
			break
		}
	}
	m.mu.RUnlock()
	if !found {
		return nil, 0, fmt.Errorf("storage: peek %v: no full copy resident: %w", id, core.ErrNotFound)
	}
	data, err := m.backends[tier].Get(BlobKey{ID: id, Version: ver})
	if err != nil {
		return nil, 0, err
	}
	return data, ver, nil
}

// accessLocked is the shared body of Access and Fetch. Requires m.mu.
func (m *Manager) accessLocked(id core.ObjectID) (AccessResult, *object, error) {
	o, ok := m.objects[id]
	if !ok {
		return AccessResult{}, nil, fmt.Errorf("storage: access %v: %w", id, core.ErrNotFound)
	}
	var res AccessResult
	served := false
	for t := Memory; t < numTiers; t++ {
		c := o.copies[t]
		if !c.present {
			continue
		}
		if c.summaryOnly {
			if !res.HasPreview {
				res.HasPreview = true
				res.PreviewTier = t
				res.PreviewLatency = m.latency(t)
			}
			continue
		}
		res.Tier = t
		res.Latency = m.latency(t)
		res.Stale = c.version < o.version
		res.Version = c.version
		served = true
		break
	}
	if !served {
		return AccessResult{}, nil, fmt.Errorf("storage: access %v: no full copy resident: %w", id, core.ErrNotFound)
	}
	m.stats.Accesses++
	m.stats.CostTotal += res.Latency
	return res, o, nil
}

// Contains reports whether id is stored at all, and at which fastest tier.
func (m *Manager) Contains(id core.ObjectID) (Tier, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	o, ok := m.objects[id]
	if !ok {
		return 0, false
	}
	for t := Memory; t < numTiers; t++ {
		if o.copies[t].present {
			return t, true
		}
	}
	return 0, false
}

// SetPriority updates one object's priority and replaces it in the
// hierarchy.
func (m *Manager) SetPriority(id core.ObjectID, prio core.Priority) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	o, ok := m.objects[id]
	if !ok {
		return fmt.Errorf("storage: set priority %v: %w", id, core.ErrNotFound)
	}
	o.priority = prio
	m.placeLocked()
	return nil
}

// ApplyPriorities bulk-updates priorities (ids absent from the map keep
// their current priority) and re-places everything — the self-organizing
// "vacuum cleaner" sweep.
func (m *Manager) ApplyPriorities(prios map[core.ObjectID]core.Priority) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for id, p := range prios {
		if o, ok := m.objects[id]; ok {
			o.priority = p
		}
	}
	m.placeLocked()
}

// Update records a new content version: the fast copies (memory, disk)
// are rewritten in place; the tertiary copy goes stale until the next
// Backup. An object resident only in tertiary is updated there directly.
// Payload-carrying objects must use UpdateBytes so the rewritten copies
// have the bytes their new version label claims.
func (m *Manager) Update(id core.ObjectID, newVersion int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	o, ok := m.objects[id]
	if !ok {
		return fmt.Errorf("storage: update %v: %w", id, core.ErrNotFound)
	}
	if o.hasPayload {
		return fmt.Errorf("storage: update %v: %w: payload object requires UpdateBytes", id, core.ErrInvalid)
	}
	return m.updateLocked(o, newVersion, nil)
}

// UpdateBytes records a new content version together with its bytes,
// rewriting the fast copies in place per the copy-control rule. The
// manager owns the slice afterwards.
func (m *Manager) UpdateBytes(id core.ObjectID, newVersion int, payload []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	o, ok := m.objects[id]
	if !ok {
		return fmt.Errorf("storage: update %v: %w", id, core.ErrNotFound)
	}
	return m.updateLocked(o, newVersion, payload)
}

// updateLocked applies a version bump, moving payload bytes when the
// object carries them. Requires m.mu.
func (m *Manager) updateLocked(o *object, newVersion int, payload []byte) error {
	if newVersion <= o.version {
		return fmt.Errorf("storage: update %v: %w: version %d <= current %d", o.id, core.ErrInvalid, newVersion, o.version)
	}
	o.version = newVersion
	fastCopy := false
	for t := Memory; t < Tertiary; t++ {
		c := &o.copies[t]
		if !c.present {
			continue
		}
		if o.hasPayload {
			m.backends[t].Delete(c.key(o.id))
			data := payload
			if c.summaryOnly {
				data = m.summarize(payload, o.summarySize(m.cfg.SummaryRatio))
			}
			if err := m.backends[t].Put(BlobKey{ID: o.id, Version: newVersion, Summary: c.summaryOnly}, data); err != nil {
				return fmt.Errorf("storage: update %v: %w", o.id, err)
			}
			m.stats.MovedBytes[t] += core.Bytes(len(data))
		}
		c.version = newVersion
		fastCopy = true
	}
	if !fastCopy {
		c := &o.copies[Tertiary]
		if o.hasPayload {
			m.backends[Tertiary].Delete(c.key(o.id))
			if err := m.backends[Tertiary].Put(BlobKey{ID: o.id, Version: newVersion}, payload); err != nil {
				return fmt.Errorf("storage: update %v: %w", o.id, err)
			}
			m.stats.MovedBytes[Tertiary] += core.Bytes(len(payload))
		}
		c.version = newVersion
	}
	return nil
}

// summarize produces the levels-of-detail abstract of payload at roughly
// the target size, via the configured hook or prefix truncation.
func (m *Manager) summarize(payload []byte, target core.Bytes) []byte {
	if m.cfg.Summarize != nil {
		return m.cfg.Summarize(payload, target)
	}
	if core.Bytes(len(payload)) <= target {
		return payload
	}
	return payload[:target]
}

// Backup refreshes every stale or missing tertiary copy from the current
// content — the periodic process the paper's copy-control rule assumes —
// and then offers the tertiary backend a compaction pass. For an object
// whose current bytes no longer exist on a fast tier (demotion already
// dropped them), the stale tertiary copy is left as-is: backup copies
// data, it does not invent it.
func (m *Manager) Backup() {
	m.mu.Lock()
	for _, o := range m.objects {
		ct := &o.copies[Tertiary]
		if ct.present && ct.version >= o.version {
			continue
		}
		if o.hasPayload {
			br, ver, ok := m.openFullLocked(o)
			if !ok {
				continue // nothing fresher to copy from
			}
			if ct.present && ver <= ct.version {
				br.Close()
				continue
			}
			if ct.present {
				m.backends[Tertiary].Delete(ct.key(o.id))
			}
			n := br.Len()
			err := m.backends[Tertiary].PutFrom(BlobKey{ID: o.id, Version: ver}, br, n)
			br.Close()
			if err != nil {
				continue // leave the old copy standing; retried next sweep
			}
			m.stats.MovedBytes[Tertiary] += core.Bytes(n)
			if !ct.present {
				m.used[Tertiary] += o.size
			}
			*ct = copyState{present: true, version: ver}
			continue
		}
		if !ct.present {
			*ct = copyState{present: true, version: o.version}
			m.used[Tertiary] += o.size
		} else {
			ct.version = o.version
		}
	}
	m.stats.Backups++
	m.mu.Unlock()
	if c, ok := m.backends[Tertiary].(compacter); ok {
		c.MaybeCompact()
	}
}

// Sync flushes every backend to stable storage.
func (m *Manager) Sync() error {
	for t := Memory; t < numTiers; t++ {
		if err := m.backends[t].Sync(); err != nil {
			return err
		}
	}
	return nil
}

// Close releases the backends' file handles. The manager is unusable
// afterwards.
func (m *Manager) Close() error {
	var first error
	for t := Memory; t < numTiers; t++ {
		if err := m.backends[t].Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Used returns the bytes resident at tier t.
func (m *Manager) Used(t Tier) core.Bytes {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.used[t]
}

// Len returns the number of objects known to the manager.
func (m *Manager) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.objects)
}

// ResidentIDs returns the IDs with a copy (full or summary) at tier t, in
// ascending order — e.g. the membership of the memory tier's detailed
// index.
func (m *Manager) ResidentIDs(t Tier) []core.ObjectID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []core.ObjectID
	for id, o := range m.objects {
		if o.copies[t].present {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Resize retargets the finite tiers' capacities at runtime and
// immediately re-places the whole population under the new targets —
// shrinking demotes the lowest-priority residents (their fast copies are
// deleted; the tertiary copy always survives), growing promotes the
// highest-priority spillovers back up. This is the capacity-shrink-
// mid-workload lever the scenario matrix exercises.
func (m *Manager) Resize(mem, disk core.Bytes) error {
	if mem < 0 || disk < 0 {
		return fmt.Errorf("storage: resize: %w: capacities %v/%v", core.ErrInvalid, mem, disk)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cfg.MemCapacity, m.cfg.DiskCapacity = mem, disk
	m.placeLocked()
	return nil
}

// Capacities returns the current finite-tier capacity targets.
func (m *Manager) Capacities() (mem, disk core.Bytes) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.cfg.MemCapacity, m.cfg.DiskCapacity
}

// Stats returns a copy of the activity counters.
func (m *Manager) Stats() Stats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.stats
}

// Priority returns the object's current priority.
func (m *Manager) Priority(id core.ObjectID) (core.Priority, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	o, ok := m.objects[id]
	if !ok {
		return 0, false
	}
	return o.priority, true
}
