package storage

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"cbfww/internal/core"
)

// Manager is the storage manager. Safe for concurrent use.
type Manager struct {
	mu  sync.RWMutex
	cfg Config
	// tiers is the live tier table, fastest first. The slice itself is
	// immutable after construction (Name/Backend/Latency never change);
	// Capacity is retargeted under mu by ResizeTiers.
	tiers   []TierSpec
	objects map[core.ObjectID]*object
	// backends hold the actual payload bytes, one store per tier-table row.
	backends []BlobStore
	used     []core.Bytes
	stats    Stats
	// memGen counts memory-residency changes; memDirty is the coalesced set
	// of objects whose memory-tier copy changed since the last drain. The
	// hierarchy-of-indices layer polls these instead of sweeping ResidentIDs
	// on every read.
	memGen   atomic.Uint64
	memDirty map[core.ObjectID]struct{}
}

// NewManager returns an empty manager. The tier table comes from
// Config.Tiers when set, else the classic memory/disk/tertiary stack from
// the legacy capacity/latency fields. With cfg.DataDir set, the persistent
// backends are opened (created) under it; RecoverFromDisk re-adopts
// whatever a previous process left there.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.SummaryRatio < 0 || cfg.SummaryRatio >= 1 {
		return nil, fmt.Errorf("storage: %w: summary ratio %v outside [0,1)", core.ErrInvalid, cfg.SummaryRatio)
	}
	if cfg.SummaryThreshold == 0 {
		cfg.SummaryThreshold = 0.25
	}
	tiers, err := cfg.tierTable()
	if err != nil {
		return nil, err
	}
	backends, err := openBackends(cfg, tiers)
	if err != nil {
		return nil, err
	}
	m := &Manager{
		cfg:      cfg,
		tiers:    tiers,
		objects:  make(map[core.ObjectID]*object),
		backends: backends,
		used:     make([]core.Bytes, len(tiers)),
		memDirty: make(map[core.ObjectID]struct{}),
	}
	m.stats.MovedBytes = make([]core.Bytes, len(tiers))
	m.stats.DemotedBytes = make([]core.Bytes, len(tiers))
	return m, nil
}

// numTiers returns the live depth of the hierarchy as a Tier bound.
func (m *Manager) numTiers() Tier { return Tier(len(m.tiers)) }

// last returns the anchor tier: the unbounded bottom of the table.
func (m *Manager) last() Tier { return Tier(len(m.tiers) - 1) }

// newObject allocates an object record sized for the live tier table.
func (m *Manager) newObject(id core.ObjectID, size core.Bytes, version int, prio core.Priority, hasPayload bool) *object {
	return &object{
		id: id, size: size, version: version, priority: prio,
		hasPayload: hasPayload,
		copies:     make([]copyState, len(m.tiers)),
	}
}

// NumTiers returns the depth of the live tier table.
func (m *Manager) NumTiers() int { return len(m.tiers) }

// TierName names tier t per the live table ("memory", "mmap", "disk", ...).
func (m *Manager) TierName(t Tier) string {
	if t < 0 || t >= m.numTiers() {
		return t.String()
	}
	return m.tiers[t].Name
}

// TierByName resolves a tier-table name to its index.
func (m *Manager) TierByName(name string) (Tier, bool) {
	for t, ts := range m.tiers {
		if ts.Name == name {
			return Tier(t), true
		}
	}
	return 0, false
}

// Tiers returns a snapshot of the live tier table with occupancy and
// movement counters — the /stats storage section and the admin-resize
// response body.
func (m *Manager) Tiers() []TierInfo {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]TierInfo, len(m.tiers))
	for t, ts := range m.tiers {
		out[t] = TierInfo{
			Name:     ts.Name,
			Backend:  ts.Backend,
			Capacity: ts.Capacity,
			Used:     m.used[t],
			Moved:    m.stats.MovedBytes[t],
			Demoted:  m.stats.DemotedBytes[t],
			Latency:  ts.Latency,
		}
	}
	for _, o := range m.objects {
		for t := range m.tiers {
			if o.copies[t].present {
				out[t].Objects++
			}
		}
	}
	return out
}

// Backend exposes the blob store behind one tier (read-mostly: tests and
// benchmarks inspect it; mutating it behind the manager's back breaks the
// placement invariants).
func (m *Manager) Backend(t Tier) BlobStore {
	return m.backends[t]
}

// noteMemLocked records that id's memory-tier copy changed. Requires m.mu.
func (m *Manager) noteMemLocked(id core.ObjectID) {
	m.memDirty[id] = struct{}{}
	m.memGen.Add(1)
}

// MemoryResidencyGen returns a counter that advances whenever any object's
// memory-tier copy changes. Readers compare it against a remembered value
// to skip reconciliation entirely when nothing moved; it is lock-free.
func (m *Manager) MemoryResidencyGen() uint64 {
	return m.memGen.Load()
}

// DrainMemoryChanges returns the IDs whose memory-tier copy changed since
// the previous drain (ascending, for determinism) and the generation the
// drain reflects, clearing the pending set. The events are coalesced and
// idempotent: consumers re-check current residency per ID rather than
// replaying individual transitions.
func (m *Manager) DrainMemoryChanges() ([]core.ObjectID, uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	gen := m.memGen.Load()
	if len(m.memDirty) == 0 {
		return nil, gen
	}
	ids := make([]core.ObjectID, 0, len(m.memDirty))
	for id := range m.memDirty {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	m.memDirty = make(map[core.ObjectID]struct{})
	return ids, gen
}

// ResidentAt reports whether id currently has a copy (full or summary) at
// tier t.
func (m *Manager) ResidentAt(id core.ObjectID, t Tier) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	o, ok := m.objects[id]
	return ok && t >= 0 && t < m.numTiers() && o.copies[t].present
}

// latency returns the access latency of tier t.
func (m *Manager) latency(t Tier) core.Duration {
	return m.tiers[t].Latency
}

// Admit stores a new object with the given size, content version and
// priority, placing it according to the current population. Admitting an
// existing ID is an error; use Update for content changes and SetPriority
// for reprioritization. Objects admitted this way carry no payload bytes
// — only placement metadata moves; use AdmitBytes for real content.
func (m *Manager) Admit(id core.ObjectID, size core.Bytes, version int, prio core.Priority) error {
	return m.admit(id, size, version, prio, nil, false)
}

// AdmitBytes admits an object together with its content. The payload
// lands in the anchor backend first (the unbounded level), then the
// placement pass copies it upward as far as its priority earns. The
// manager owns the slice afterwards.
func (m *Manager) AdmitBytes(id core.ObjectID, size core.Bytes, version int, prio core.Priority, payload []byte) error {
	return m.admit(id, size, version, prio, payload, true)
}

func (m *Manager) admit(id core.ObjectID, size core.Bytes, version int, prio core.Priority, payload []byte, hasPayload bool) error {
	if size <= 0 {
		return fmt.Errorf("storage: admit %v: %w: size %v", id, core.ErrInvalid, size)
	}
	if version < 1 {
		version = 1
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.objects[id]; dup {
		return fmt.Errorf("storage: admit %v: %w", id, core.ErrExists)
	}
	anchor := m.last()
	o := m.newObject(id, size, version, prio, hasPayload)
	// Everything lands in the anchor tier first (the unbounded level), then
	// the placement pass promotes it as far as its priority earns.
	if hasPayload {
		if err := m.backends[anchor].Put(BlobKey{ID: id, Version: version}, payload); err != nil {
			return fmt.Errorf("storage: admit %v: %w", id, err)
		}
	}
	o.copies[anchor] = copyState{present: true, version: version}
	m.objects[id] = o
	m.used[anchor] += size
	m.stats.MovedBytes[anchor] += size
	m.placeLocked()
	return nil
}

// Admission is one entry of a bulk admission.
type Admission struct {
	ID       core.ObjectID
	Size     core.Bytes
	Version  int
	Priority core.Priority
	// Payload, when non-nil, admits the entry with content (AdmitBytes
	// semantics); nil admits metadata only.
	Payload []byte
}

// AdmitAll admits a batch with a single placement pass — O(n log n) total
// instead of per object, for trace replays and experiment setup.
func (m *Manager) AdmitAll(batch []Admission) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	anchor := m.last()
	for _, a := range batch {
		if a.Size <= 0 {
			return fmt.Errorf("storage: admit %v: %w: size %v", a.ID, core.ErrInvalid, a.Size)
		}
		if _, dup := m.objects[a.ID]; dup {
			return fmt.Errorf("storage: admit %v: %w", a.ID, core.ErrExists)
		}
		v := a.Version
		if v < 1 {
			v = 1
		}
		o := m.newObject(a.ID, a.Size, v, a.Priority, a.Payload != nil)
		if o.hasPayload {
			if err := m.backends[anchor].Put(BlobKey{ID: a.ID, Version: v}, a.Payload); err != nil {
				return fmt.Errorf("storage: admit %v: %w", a.ID, err)
			}
		}
		o.copies[anchor] = copyState{present: true, version: v}
		m.objects[a.ID] = o
		m.used[anchor] += a.Size
		m.stats.MovedBytes[anchor] += a.Size
	}
	m.placeLocked()
	return nil
}

// Remove deletes the object from all tiers (admission-constraint
// enforcement path), including its stored bytes. Removing an unknown ID
// is an error.
func (m *Manager) Remove(id core.ObjectID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	o, ok := m.objects[id]
	if !ok {
		return fmt.Errorf("storage: remove %v: %w", id, core.ErrNotFound)
	}
	for t := Tier(0); t < m.numTiers(); t++ {
		m.used[t] -= o.footprint(t, m.cfg.SummaryRatio)
		if o.hasPayload && o.copies[t].present {
			m.backends[t].Delete(o.copies[t].key(id))
		}
	}
	if o.copies[Memory].present {
		m.noteMemLocked(id)
	}
	delete(m.objects, id)
	return nil
}

// Access serves the object, preferring the fastest tier with a full copy,
// and reports the cost. Accessing an unknown ID fails.
func (m *Manager) Access(id core.ObjectID) (AccessResult, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	res, _, err := m.accessLocked(id)
	return res, err
}

// Fetch serves the object like Access and additionally returns its
// payload bytes, read from the backend of the serving tier. Fetching an
// object admitted without payload returns nil bytes.
func (m *Manager) Fetch(id core.ObjectID) (AccessResult, []byte, error) {
	m.mu.Lock()
	res, o, err := m.accessLocked(id)
	m.mu.Unlock()
	if err != nil || !o.hasPayload {
		return res, nil, err
	}
	// The backend read happens outside the manager lock: the blob stores
	// are internally synchronized. A concurrent placement (a resize
	// mid-migration) may delete the copy between unlock and read; the copy
	// then lives at some other tier, so re-resolve and retry rather than
	// reporting a missing blob that the manager still holds.
	data, err := m.backends[res.Tier].Get(BlobKey{ID: id, Version: res.Version})
	for retry := 0; err != nil && errors.Is(err, core.ErrNotFound) && retry < relocateRetries; retry++ {
		tier, ver, ok := m.fullCopy(id)
		if !ok {
			break
		}
		res.Tier, res.Version = tier, ver
		res.Latency = m.latency(tier)
		data, err = m.backends[tier].Get(BlobKey{ID: id, Version: ver})
	}
	if err != nil {
		return res, nil, err
	}
	return res, data, nil
}

// relocateRetries bounds how often the streaming read paths chase a blob
// that a concurrent resize moved between tier resolution and backend open.
const relocateRetries = 4

// fullCopy locates the fastest full copy of id right now (no stats).
func (m *Manager) fullCopy(id core.ObjectID) (Tier, int, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	o, ok := m.objects[id]
	if !ok {
		return 0, 0, false
	}
	for t := Tier(0); t < m.numTiers(); t++ {
		if c := o.copies[t]; c.present && !c.summaryOnly {
			return t, c.version, true
		}
	}
	return 0, 0, false
}

// FetchStream serves the object like Fetch — identical placement and
// usage accounting — but returns a streaming reader over the payload
// instead of materialized bytes, so the caller can move them to a socket
// or another tier without a body-sized heap buffer. The caller must Close
// the reader. Objects admitted without payload return a nil reader.
func (m *Manager) FetchStream(id core.ObjectID) (AccessResult, BlobReader, error) {
	m.mu.Lock()
	res, o, err := m.accessLocked(id)
	m.mu.Unlock()
	if err != nil || !o.hasPayload {
		return res, nil, err
	}
	// As with Fetch, the backend open happens outside the manager lock; a
	// copy deleted by a concurrent resize is re-resolved from its new tier
	// so a mid-migration blob serves from either its old or new home.
	br, err := m.backends[res.Tier].Open(BlobKey{ID: id, Version: res.Version})
	for retry := 0; err != nil && errors.Is(err, core.ErrNotFound) && retry < relocateRetries; retry++ {
		tier, ver, ok := m.fullCopy(id)
		if !ok {
			break
		}
		res.Tier, res.Version = tier, ver
		res.Latency = m.latency(tier)
		br, err = m.backends[tier].Open(BlobKey{ID: id, Version: ver})
	}
	if err != nil {
		return res, nil, err
	}
	return res, br, nil
}

// PeekStream is Peek with a streaming reader: the fastest full copy's
// payload and content version, without touching the access stats. The
// caller must Close the reader.
func (m *Manager) PeekStream(id core.ObjectID) (BlobReader, int, error) {
	m.mu.RLock()
	o, ok := m.objects[id]
	hasPayload := ok && o.hasPayload
	m.mu.RUnlock()
	if !hasPayload {
		return nil, 0, fmt.Errorf("storage: peek %v: %w", id, core.ErrNotFound)
	}
	for attempt := 0; ; attempt++ {
		tier, ver, found := m.fullCopy(id)
		if !found {
			return nil, 0, fmt.Errorf("storage: peek %v: no full copy resident: %w", id, core.ErrNotFound)
		}
		br, err := m.backends[tier].Open(BlobKey{ID: id, Version: ver})
		if err == nil {
			return br, ver, nil
		}
		if !errors.Is(err, core.ErrNotFound) || attempt >= relocateRetries {
			return nil, 0, err
		}
	}
}

// Peek returns the payload bytes and content version of the fastest full
// copy without touching the access stats — the rehydration and index-feed
// read path. Objects without payload return core.ErrNotFound.
func (m *Manager) Peek(id core.ObjectID) ([]byte, int, error) {
	m.mu.RLock()
	o, ok := m.objects[id]
	hasPayload := ok && o.hasPayload
	m.mu.RUnlock()
	if !hasPayload {
		return nil, 0, fmt.Errorf("storage: peek %v: %w", id, core.ErrNotFound)
	}
	for attempt := 0; ; attempt++ {
		tier, ver, found := m.fullCopy(id)
		if !found {
			return nil, 0, fmt.Errorf("storage: peek %v: no full copy resident: %w", id, core.ErrNotFound)
		}
		data, err := m.backends[tier].Get(BlobKey{ID: id, Version: ver})
		if err == nil {
			return data, ver, nil
		}
		if !errors.Is(err, core.ErrNotFound) || attempt >= relocateRetries {
			return nil, 0, err
		}
	}
}

// accessLocked is the shared body of Access and Fetch. Requires m.mu.
func (m *Manager) accessLocked(id core.ObjectID) (AccessResult, *object, error) {
	o, ok := m.objects[id]
	if !ok {
		return AccessResult{}, nil, fmt.Errorf("storage: access %v: %w", id, core.ErrNotFound)
	}
	var res AccessResult
	served := false
	for t := Tier(0); t < m.numTiers(); t++ {
		c := o.copies[t]
		if !c.present {
			continue
		}
		if c.summaryOnly {
			if !res.HasPreview {
				res.HasPreview = true
				res.PreviewTier = t
				res.PreviewLatency = m.latency(t)
			}
			continue
		}
		res.Tier = t
		res.Latency = m.latency(t)
		res.Stale = c.version < o.version
		res.Version = c.version
		served = true
		break
	}
	if !served {
		return AccessResult{}, nil, fmt.Errorf("storage: access %v: no full copy resident: %w", id, core.ErrNotFound)
	}
	m.stats.Accesses++
	m.stats.CostTotal += res.Latency
	return res, o, nil
}

// Contains reports whether id is stored at all, and at which fastest tier.
func (m *Manager) Contains(id core.ObjectID) (Tier, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	o, ok := m.objects[id]
	if !ok {
		return 0, false
	}
	for t := Tier(0); t < m.numTiers(); t++ {
		if o.copies[t].present {
			return t, true
		}
	}
	return 0, false
}

// SetPriority updates one object's priority and replaces it in the
// hierarchy.
func (m *Manager) SetPriority(id core.ObjectID, prio core.Priority) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	o, ok := m.objects[id]
	if !ok {
		return fmt.Errorf("storage: set priority %v: %w", id, core.ErrNotFound)
	}
	o.priority = prio
	m.placeLocked()
	return nil
}

// ApplyPriorities bulk-updates priorities (ids absent from the map keep
// their current priority) and re-places everything — the self-organizing
// "vacuum cleaner" sweep.
func (m *Manager) ApplyPriorities(prios map[core.ObjectID]core.Priority) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for id, p := range prios {
		if o, ok := m.objects[id]; ok {
			o.priority = p
		}
	}
	m.placeLocked()
}

// Update records a new content version: the fast copies are rewritten in
// place; the anchor copy goes stale until the next Backup. An object
// resident only in the anchor is updated there directly. Payload-carrying
// objects must use UpdateBytes so the rewritten copies have the bytes
// their new version label claims.
func (m *Manager) Update(id core.ObjectID, newVersion int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	o, ok := m.objects[id]
	if !ok {
		return fmt.Errorf("storage: update %v: %w", id, core.ErrNotFound)
	}
	if o.hasPayload {
		return fmt.Errorf("storage: update %v: %w: payload object requires UpdateBytes", id, core.ErrInvalid)
	}
	return m.updateLocked(o, newVersion, nil)
}

// UpdateBytes records a new content version together with its bytes,
// rewriting the fast copies in place per the copy-control rule. The
// manager owns the slice afterwards.
func (m *Manager) UpdateBytes(id core.ObjectID, newVersion int, payload []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	o, ok := m.objects[id]
	if !ok {
		return fmt.Errorf("storage: update %v: %w", id, core.ErrNotFound)
	}
	return m.updateLocked(o, newVersion, payload)
}

// updateLocked applies a version bump, moving payload bytes when the
// object carries them. Requires m.mu.
func (m *Manager) updateLocked(o *object, newVersion int, payload []byte) error {
	if newVersion <= o.version {
		return fmt.Errorf("storage: update %v: %w: version %d <= current %d", o.id, core.ErrInvalid, newVersion, o.version)
	}
	o.version = newVersion
	anchor := m.last()
	fastCopy := false
	for t := Tier(0); t < anchor; t++ {
		c := &o.copies[t]
		if !c.present {
			continue
		}
		if o.hasPayload {
			m.backends[t].Delete(c.key(o.id))
			data := payload
			if c.summaryOnly {
				data = m.summarize(payload, o.summarySize(m.cfg.SummaryRatio))
			}
			if err := m.backends[t].Put(BlobKey{ID: o.id, Version: newVersion, Summary: c.summaryOnly}, data); err != nil {
				return fmt.Errorf("storage: update %v: %w", o.id, err)
			}
			m.stats.MovedBytes[t] += core.Bytes(len(data))
		}
		c.version = newVersion
		fastCopy = true
	}
	if !fastCopy {
		c := &o.copies[anchor]
		if o.hasPayload {
			m.backends[anchor].Delete(c.key(o.id))
			if err := m.backends[anchor].Put(BlobKey{ID: o.id, Version: newVersion}, payload); err != nil {
				return fmt.Errorf("storage: update %v: %w", o.id, err)
			}
			m.stats.MovedBytes[anchor] += core.Bytes(len(payload))
		}
		c.version = newVersion
	}
	return nil
}

// summarize produces the levels-of-detail abstract of payload at roughly
// the target size, via the configured hook or prefix truncation.
func (m *Manager) summarize(payload []byte, target core.Bytes) []byte {
	if m.cfg.Summarize != nil {
		return m.cfg.Summarize(payload, target)
	}
	if core.Bytes(len(payload)) <= target {
		return payload
	}
	return payload[:target]
}

// Backup refreshes every stale or missing anchor copy from the current
// content — the periodic process the paper's copy-control rule assumes —
// and then offers the anchor backend a compaction pass. For an object
// whose current bytes no longer exist on a fast tier (demotion already
// dropped them), the stale anchor copy is left as-is: backup copies
// data, it does not invent it.
func (m *Manager) Backup() {
	m.mu.Lock()
	anchor := m.last()
	for _, o := range m.objects {
		ct := &o.copies[anchor]
		if ct.present && ct.version >= o.version {
			continue
		}
		if o.hasPayload {
			br, ver, ok := m.openFullLocked(o)
			if !ok {
				continue // nothing fresher to copy from
			}
			if ct.present && ver <= ct.version {
				br.Close()
				continue
			}
			if ct.present {
				m.backends[anchor].Delete(ct.key(o.id))
			}
			n := br.Len()
			err := m.backends[anchor].PutFrom(BlobKey{ID: o.id, Version: ver}, br, n)
			br.Close()
			if err != nil {
				continue // leave the old copy standing; retried next sweep
			}
			m.stats.MovedBytes[anchor] += core.Bytes(n)
			if !ct.present {
				m.used[anchor] += o.size
			}
			*ct = copyState{present: true, version: ver}
			continue
		}
		if !ct.present {
			*ct = copyState{present: true, version: o.version}
			m.used[anchor] += o.size
		} else {
			ct.version = o.version
		}
	}
	m.stats.Backups++
	m.mu.Unlock()
	for t := m.numTiers() - 1; t >= 0; t-- {
		if c, ok := m.backends[t].(compacter); ok {
			c.MaybeCompact()
		}
	}
}

// Sync flushes every backend to stable storage.
func (m *Manager) Sync() error {
	for _, b := range m.backends {
		if err := b.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// Close releases the backends' file handles. The manager is unusable
// afterwards.
func (m *Manager) Close() error {
	var first error
	for _, b := range m.backends {
		if err := b.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Used returns the bytes resident at tier t.
func (m *Manager) Used(t Tier) core.Bytes {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.used[t]
}

// Len returns the number of objects known to the manager.
func (m *Manager) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.objects)
}

// ResidentIDs returns the IDs with a copy (full or summary) at tier t, in
// ascending order — e.g. the membership of the memory tier's detailed
// index.
func (m *Manager) ResidentIDs(t Tier) []core.ObjectID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []core.ObjectID
	for id, o := range m.objects {
		if o.copies[t].present {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Resize retargets the classic finite tiers — tier 0 and the
// second-to-last tier ("memory" and "disk" on the default table) — and
// incrementally re-solves placement. Kept as the two-argument legacy
// surface; ResizeTiers addresses any tier by name.
func (m *Manager) Resize(mem, disk core.Bytes) error {
	if mem < 0 || disk < 0 {
		return fmt.Errorf("storage: resize: %w: capacities %v/%v", core.ErrInvalid, mem, disk)
	}
	targets := map[string]core.Bytes{m.tiers[0].Name: mem}
	if d := m.last() - 1; d > 0 {
		targets[m.tiers[d].Name] = disk
	}
	return m.ResizeTiers(targets)
}

// ResizeTiers retargets any subset of the finite tiers' capacities by
// tier-table name and re-solves placement *incrementally*: only the delta
// set of blobs moves. Shrinking a tier demotes its lowest-priority
// residents (invalidating the fast copies — free in I/O terms, counted in
// DemotedBytes); growing promotes the highest-priority candidates that
// hold a copy one tier down, streaming bytes upward (counted in
// MovedBytes). A resize never sweeps or re-materializes the whole
// population the way admission-time placement does.
func (m *Manager) ResizeTiers(targets map[string]core.Bytes) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, c := range targets {
		t, ok := m.TierByName(name)
		if !ok {
			return fmt.Errorf("storage: resize: %w: unknown tier %q", core.ErrInvalid, name)
		}
		if t == m.last() {
			return fmt.Errorf("storage: resize: %w: tier %q is the unbounded anchor", core.ErrInvalid, name)
		}
		if c < 0 {
			return fmt.Errorf("storage: resize: %w: tier %q capacity %v", core.ErrInvalid, name, c)
		}
	}
	for name, c := range targets {
		t, _ := m.TierByName(name)
		m.tiers[t].Capacity = c
	}
	m.stats.Resizes++
	m.resizeLocked()
	return nil
}

// Capacities returns the current capacity targets of the classic finite
// tiers (tier 0 and the second-to-last tier).
func (m *Manager) Capacities() (mem, disk core.Bytes) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.tiers[0].Capacity, m.tiers[m.last()-1].Capacity
}

// Stats returns a copy of the activity counters.
func (m *Manager) Stats() Stats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	s := m.stats
	s.MovedBytes = append([]core.Bytes(nil), m.stats.MovedBytes...)
	s.DemotedBytes = append([]core.Bytes(nil), m.stats.DemotedBytes...)
	return s
}

// Priority returns the object's current priority.
func (m *Manager) Priority(id core.ObjectID) (core.Priority, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	o, ok := m.objects[id]
	if !ok {
		return 0, false
	}
	return o.priority, true
}
