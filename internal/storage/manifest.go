package storage

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"cbfww/internal/core"
)

// The manifest is the manager's durable object table: one line per known
// object, saved atomically into the data directory at checkpoint time.
// Together with the blobs the disk and tertiary backends rebuild from
// their own files, it turns a restart into genuine crash recovery — the
// restored placement points at whichever on-disk bytes actually survived,
// rather than replaying a layout over content that may be gone.
//
// Format (same CRC-per-line crash discipline as the layout file):
//
//	cbfww-manifest v1
//	<id> <size> <version> <priority> <tertiaryPos> <payload 0|1> <crc32>
//	...
//
// Each entry line carries a CRC32 (IEEE) of its own payload prefix; on
// load, the first line that fails to parse or checksum ends the usable
// data, and the intact prefix is recovered.

const manifestHeader = "cbfww-manifest v1"

// ManifestName is the manifest's file name inside the data directory.
const ManifestName = "MANIFEST"

type manifestEntry struct {
	id          core.ObjectID
	size        core.Bytes
	version     int
	priority    core.Priority
	tertiaryPos int
	hasPayload  bool
}

// SaveManifest writes the object table to DataDir/MANIFEST atomically
// (temp file + rename). In all-in-heap mode (no DataDir) it is a no-op:
// there is nothing durable for a manifest to describe.
func (m *Manager) SaveManifest() error {
	if m.cfg.DataDir == "" {
		return nil
	}
	m.mu.RLock()
	entries := make([]manifestEntry, 0, len(m.objects))
	for id, o := range m.objects {
		entries = append(entries, manifestEntry{
			id: id, size: o.size, version: o.version, priority: o.priority,
			tertiaryPos: o.tertiaryPos, hasPayload: o.hasPayload,
		})
	}
	m.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].id < entries[j].id })

	var b strings.Builder
	b.WriteString(manifestHeader)
	b.WriteByte('\n')
	for _, e := range entries {
		p := 0
		if e.hasPayload {
			p = 1
		}
		line := fmt.Sprintf("%d %d %d %s %d %d",
			uint64(e.id), int64(e.size), e.version,
			strconv.FormatFloat(float64(e.priority), 'g', -1, 64),
			e.tertiaryPos, p)
		fmt.Fprintf(&b, "%s %08x\n", line, crc32.ChecksumIEEE([]byte(line)))
	}

	path := filepath.Join(m.cfg.DataDir, ManifestName)
	tmp, err := os.CreateTemp(m.cfg.DataDir, ".manifest-*")
	if err != nil {
		return fmt.Errorf("storage: save manifest: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if _, err := tmp.WriteString(b.String()); err != nil {
		tmp.Close()
		return fmt.Errorf("storage: save manifest: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("storage: save manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("storage: save manifest: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("storage: save manifest: %w", err)
	}
	return syncDir(m.cfg.DataDir)
}

// loadManifest reads the intact prefix of a manifest file.
func loadManifest(path string) ([]manifestEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	if !sc.Scan() || sc.Text() != manifestHeader {
		return nil, fmt.Errorf("storage: load manifest %s: %w: bad header", path, core.ErrInvalid)
	}
	var entries []manifestEntry
	for sc.Scan() {
		line := sc.Text()
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			break // truncated tail
		}
		payload, sumHex := line[:i], line[i+1:]
		sum, err := strconv.ParseUint(sumHex, 16, 32)
		if err != nil || uint32(sum) != crc32.ChecksumIEEE([]byte(payload)) {
			break // corrupt or half-written line
		}
		var (
			id, size    int64
			version     int
			prio        float64
			tpos, hasPl int
		)
		if _, err := fmt.Sscanf(payload, "%d %d %d %g %d %d",
			&id, &size, &version, &prio, &tpos, &hasPl); err != nil {
			break
		}
		entries = append(entries, manifestEntry{
			id: core.ObjectID(id), size: core.Bytes(size), version: version,
			priority: core.Priority(prio), tertiaryPos: tpos, hasPayload: hasPl == 1,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("storage: load manifest %s: %w", path, err)
	}
	return entries, nil
}

// RecoverFromDisk rebuilds the manager from the data directory: the
// manifest supplies the object table, the disk and tertiary backends
// supply whatever blobs survived, and the recovery pass re-places
// everything so the restored placement points only at bytes that exist.
// Memory-tier contents are gone by definition (the heap died with the
// process); the placement pass repromotes from the surviving copies.
//
// Returns the number of objects restored and the recovery report. A
// missing manifest is a fresh start, not an error. The manager must be
// empty (freshly constructed) and configured with the same DataDir.
func (m *Manager) RecoverFromDisk() (int, RecoveryReport, error) {
	if m.cfg.DataDir == "" {
		return 0, RecoveryReport{}, fmt.Errorf("storage: recover from disk: %w: no data directory", core.ErrInvalid)
	}
	entries, err := loadManifest(filepath.Join(m.cfg.DataDir, ManifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, RecoveryReport{}, nil
		}
		return 0, RecoveryReport{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.objects) != 0 {
		return 0, RecoveryReport{}, fmt.Errorf("storage: recover from disk: %w: manager not empty", core.ErrInvalid)
	}

	// Index each persistent backend's surviving full copies: best (newest
	// not exceeding the manifest's version) full blob per object. Tiers on
	// the heap backend died with the process and are never adopted.
	anchor := m.last()
	persistent := make([]Tier, 0, len(m.tiers))
	for t, ts := range m.tiers {
		if ts.Backend != "heap" {
			persistent = append(persistent, Tier(t))
		}
	}
	type best map[core.ObjectID]int
	bestAt := make(map[Tier]best, len(persistent))
	for _, t := range persistent {
		bestAt[t] = best{}
	}
	current := make(map[core.ObjectID]int, len(entries))
	for _, e := range entries {
		current[e.id] = e.version
	}
	for t, b := range bestAt {
		for _, k := range m.backends[t].Keys() {
			limit, known := current[k.ID]
			if !known || k.Summary || k.Version > limit {
				continue
			}
			if v, ok := b[k.ID]; !ok || k.Version > v {
				b[k.ID] = k.Version
			}
		}
	}

	for _, e := range entries {
		o := &object{
			id: e.id, size: e.size, version: e.version, priority: e.priority,
			tertiaryPos: e.tertiaryPos, hasPayload: e.hasPayload,
			copies: make([]copyState, len(m.tiers)),
		}
		if e.hasPayload {
			// Adopt only copies whose bytes actually survived, slowest tier
			// first. The anchor boundary tolerates version drift (backups
			// lag); between finite tiers the exact-copy rule holds, so a
			// faster tier's blob is adopted only when it matches the
			// version adopted one tier down — otherwise it is swept and
			// re-promoted by placement.
			adopted := false
			for i := len(persistent) - 1; i >= 0; i-- {
				t := persistent[i]
				v, ok := bestAt[t][e.id]
				if !ok {
					continue
				}
				if t < anchor-1 && (!o.copies[t+1].present || o.copies[t+1].version != v) {
					continue
				}
				o.copies[t] = copyState{present: true, version: v}
				adopted = true
			}
			if !adopted {
				continue // lost entirely; the warehouse refetches on access
			}
		} else {
			// Metadata-only objects have no bytes to lose: their anchor
			// copy is notional and survives with the manifest.
			o.copies[anchor] = copyState{present: true, version: e.version}
		}
		m.objects[e.id] = o
	}

	// Sweep orphans: blobs not referenced by any adopted copy (summaries
	// are always regenerated, stray versions are superseded garbage).
	for _, t := range persistent {
		for _, k := range m.backends[t].Keys() {
			o, ok := m.objects[k.ID]
			if ok && !k.Summary && o.copies[t].present && o.copies[t].version == k.Version {
				continue
			}
			m.backends[t].Delete(k)
		}
	}

	m.used = make([]core.Bytes, len(m.tiers))
	for _, o := range m.objects {
		for t := range m.tiers {
			m.used[t] += o.footprint(Tier(t), m.cfg.SummaryRatio)
		}
	}
	rep := m.recoverLocked()
	return len(m.objects), rep, nil
}
