package storage

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"cbfww/internal/core"
)

// payloadFixture builds a manager over real file-backed disk and tertiary
// tiers in a tempdir (same shape as newTestManager, but always on disk —
// these tests are about the bytes).
func payloadFixture(t *testing.T) (*Manager, string) {
	t.Helper()
	dir := t.TempDir()
	cfg := Config{
		MemCapacity:  100,
		DiskCapacity: 1000,
		MemLatency:   0, DiskLatency: 10, TertiaryLatency: 100,
		SummaryRatio:     0.1,
		SummaryThreshold: 0.5,
		DataDir:          dir,
	}
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m, dir
}

func mustInvariants(t *testing.T, m *Manager) {
	t.Helper()
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestAdmitBytesMovesBytes: an admitted payload lands in tertiary and is
// copied — not just labeled — into every tier its priority earns.
func TestAdmitBytesMovesBytes(t *testing.T) {
	m, _ := payloadFixture(t)
	body := []byte("the quick brown fox jumps over the lazy dog")
	if err := m.AdmitBytes(1, 40, 1, 0.9, body); err != nil {
		t.Fatal(err)
	}
	mustInvariants(t, m)

	k := BlobKey{ID: 1, Version: 1}
	for tier := Memory; tier < numTiers; tier++ {
		got, err := m.Backend(tier).Get(k)
		if err != nil {
			t.Fatalf("%v backend: %v", tier, err)
		}
		if !bytes.Equal(got, body) {
			t.Fatalf("%v bytes = %q, want %q", tier, got, body)
		}
	}
	res, data, err := m.Fetch(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tier != Memory || !bytes.Equal(data, body) {
		t.Fatalf("Fetch tier=%v data=%q", res.Tier, data)
	}
}

// TestSummaryBlobsMaterialized: a large document's memory summary is a
// real stored blob of roughly SummaryRatio the size, not a flag.
func TestSummaryBlobsMaterialized(t *testing.T) {
	m, _ := payloadFixture(t)
	body := bytes.Repeat([]byte("x"), 80) // 80 > 0.5 * 100: a "large document"
	if err := m.AdmitBytes(7, 80, 1, 0.9, body); err != nil {
		t.Fatal(err)
	}
	mustInvariants(t, m)
	sk := BlobKey{ID: 7, Version: 1, Summary: true}
	got, err := m.Backend(Memory).Get(sk)
	if err != nil {
		t.Fatalf("summary blob missing from memory backend: %v", err)
	}
	want := body[:8] // summarySize = 0.1 * 80
	if !bytes.Equal(got, want) {
		t.Fatalf("summary bytes = %q, want %q", got, want)
	}
	// The full body sits one level down, byte for byte.
	if got, err := m.Backend(Disk).Get(BlobKey{ID: 7, Version: 1}); err != nil || !bytes.Equal(got, body) {
		t.Fatalf("disk full copy = %q, %v", got, err)
	}
}

// TestDemotionDeletesBytes: dropping an object's priority removes its
// fast-tier blobs, not just the copy flags.
func TestDemotionDeletesBytes(t *testing.T) {
	m, _ := payloadFixture(t)
	if err := m.AdmitBytes(1, 40, 1, 0.9, []byte("payload-one")); err != nil {
		t.Fatal(err)
	}
	if err := m.SetPriority(1, 0.0001); err != nil {
		t.Fatal(err)
	}
	mustInvariants(t, m)
	// Priority alone doesn't demote while capacity is free; crowd it out.
	for i := 2; i <= 30; i++ {
		if err := m.AdmitBytes(core.ObjectID(i), 40, 1, 0.5, []byte(fmt.Sprintf("filler-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	mustInvariants(t, m)
	tier, ok := m.Contains(1)
	if !ok || tier != Tertiary {
		t.Fatalf("object 1 at %v (ok=%v), want tertiary-only", tier, ok)
	}
	k := BlobKey{ID: 1, Version: 1}
	if m.Backend(Memory).Contains(k) || m.Backend(Disk).Contains(k) {
		t.Fatal("demoted object still has fast-tier bytes")
	}
	if _, err := m.Backend(Tertiary).Get(k); err != nil {
		t.Fatalf("tertiary lost the payload: %v", err)
	}
}

// TestRecoverAfterDiskDropRestoresExactCopies is the direct test of the
// copy-control invariant "data in main memory have exact copies on disk":
// when the disk tier fails wholesale, Recover must rebuild the disk copies
// of every memory-resident object from the memory bytes, byte for byte.
func TestRecoverAfterDiskDropRestoresExactCopies(t *testing.T) {
	m, _ := payloadFixture(t)
	want := map[core.ObjectID][]byte{}
	for i := 1; i <= 2; i++ {
		id := core.ObjectID(i)
		body := []byte(fmt.Sprintf("memory-resident body %d", i))
		if err := m.AdmitBytes(id, 40, 1, 0.9, body); err != nil {
			t.Fatal(err)
		}
		want[id] = body
	}
	if got := m.ResidentIDs(Memory); len(got) != 2 {
		t.Fatalf("memory residents = %v, want both objects", got)
	}
	if err := m.DropTier(Disk); err != nil {
		t.Fatal(err)
	}
	if m.Backend(Disk).Len() != 0 {
		t.Fatal("dropped disk tier still holds blobs")
	}
	rep := m.Recover()
	if rep.Lost != 0 {
		t.Fatalf("recover lost %d objects despite memory copies", rep.Lost)
	}
	mustInvariants(t, m)
	for id, body := range want {
		if !m.ResidentAt(id, Memory) {
			t.Fatalf("%v no longer memory-resident after recover", id)
		}
		got, err := m.Backend(Disk).Get(BlobKey{ID: id, Version: 1})
		if err != nil {
			t.Fatalf("%v disk copy not restored: %v", id, err)
		}
		if !bytes.Equal(got, body) {
			t.Fatalf("%v restored disk bytes = %q, want %q", id, got, body)
		}
	}
}

// TestBackupVersionDriftStaleRecover: a tertiary backup older than the
// current version (Backup ran, then the content changed, then both fast
// tiers died) must surface as Stale from Recover and on access, serving
// the old bytes — the warehouse's cue to refetch.
func TestBackupVersionDriftStaleRecover(t *testing.T) {
	m, _ := payloadFixture(t)
	v1 := []byte("version one content")
	v2 := []byte("version two content, never backed up")
	if err := m.AdmitBytes(1, 40, 1, 0.9, v1); err != nil {
		t.Fatal(err)
	}
	m.Backup() // tertiary now holds v1 exactly
	if err := m.UpdateBytes(1, 2, v2); err != nil {
		t.Fatal(err)
	}
	// Fast copies carry v2; the backup lags at v1.
	if got, err := m.Backend(Tertiary).Get(BlobKey{ID: 1, Version: 1}); err != nil || !bytes.Equal(got, v1) {
		t.Fatalf("tertiary backup = %q, %v; want v1 bytes", got, err)
	}
	if err := m.DropTier(Memory); err != nil {
		t.Fatal(err)
	}
	if err := m.DropTier(Disk); err != nil {
		t.Fatal(err)
	}
	rep := m.Recover()
	if rep.Stale != 1 {
		t.Fatalf("recover stale = %d, want 1", rep.Stale)
	}
	mustInvariants(t, m)
	res, data, err := m.Fetch(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 1 || !bytes.Equal(data, v1) {
		t.Fatalf("recovered fetch = v%d %q, want the v1 backup", res.Version, data)
	}
	// Recover reverted the authoritative version to the survivor, so the
	// copy is current again from storage's point of view; the warehouse
	// notices the drift through the version number it gets back.
	if res.Stale {
		t.Fatal("recovered copy still marked stale after version reversion")
	}
}

// TestUpdateRequiresBytesForPayloadObjects: the metadata-only Update path
// must refuse payload objects rather than strand version labels without
// matching bytes.
func TestUpdateRequiresBytesForPayloadObjects(t *testing.T) {
	m, _ := payloadFixture(t)
	if err := m.AdmitBytes(1, 40, 1, 0.9, []byte("content")); err != nil {
		t.Fatal(err)
	}
	if err := m.Update(1, 2); !errors.Is(err, core.ErrInvalid) {
		t.Fatalf("Update on payload object err = %v, want ErrInvalid", err)
	}
	if err := m.UpdateBytes(1, 2, []byte("new content")); err != nil {
		t.Fatal(err)
	}
	mustInvariants(t, m)
	if _, data, err := m.Fetch(1); err != nil || string(data) != "new content" {
		t.Fatalf("after UpdateBytes: %q, %v", data, err)
	}
}

// TestDiskStoreReopen: the disk store's index is the filesystem — a
// reopened store sees exactly the blobs that were renamed into place,
// and sweeps crashed writers' temp files.
func TestDiskStoreReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := []BlobKey{
		{ID: 1, Version: 1},
		{ID: 1, Version: 2, Summary: true},
		{ID: 300, Version: 7},
	}
	for i, k := range keys {
		if err := s.Put(k, []byte(fmt.Sprintf("blob-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete(keys[1]); err != nil {
		t.Fatal(err)
	}
	// A crashed writer leaves a temp file behind.
	if err := os.WriteFile(filepath.Join(dir, ".blob-crashed"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	r, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 2 {
		t.Fatalf("reopened Len = %d, want 2 (keys: %v)", r.Len(), r.Keys())
	}
	if got, err := r.Get(keys[0]); err != nil || string(got) != "blob-0" {
		t.Fatalf("reopened get = %q, %v", got, err)
	}
	if r.Contains(keys[1]) {
		t.Fatal("deleted key survived reopen")
	}
	if _, err := os.Stat(filepath.Join(dir, ".blob-crashed")); !os.IsNotExist(err) {
		t.Fatal("crashed temp file not swept on open")
	}
}

// TestSegmentStoreReplayRotationCompaction exercises the tertiary log end
// to end: rotation under a tiny segment size, overwrite and tombstone
// garbage, replay after reopen, tail-corruption truncation, compaction.
func TestSegmentStoreReplayRotationCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmentStore(dir, 256) // force rotation quickly
	if err != nil {
		t.Fatal(err)
	}
	blob := func(i, v int) []byte { return bytes.Repeat([]byte{byte('a' + i%26)}, 40+v) }
	for i := 0; i < 8; i++ {
		if err := s.Put(BlobKey{ID: core.ObjectID(i + 1), Version: 1}, blob(i, 1)); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrites and deletes pile up garbage.
	for i := 0; i < 4; i++ {
		if err := s.Put(BlobKey{ID: core.ObjectID(i + 1), Version: 2}, blob(i, 2)); err != nil {
			t.Fatal(err)
		}
		if err := s.Delete(BlobKey{ID: core.ObjectID(i + 1), Version: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(s.segs); n < 2 {
		t.Fatalf("no rotation happened: %d segments", n)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Reopen replays the log; a torn tail on the newest segment is cut.
	names, _ := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	last := names[len(names)-1]
	f, err := os.OpenFile(last, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{segMagic, segKindPut, 0, 0, 0}) // half a header
	f.Close()

	r, err := OpenSegmentStore(dir, 256)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 8 {
		t.Fatalf("replayed Len = %d, want 8", r.Len())
	}
	for i := 0; i < 8; i++ {
		v := 1
		if i < 4 {
			v = 2
		}
		k := BlobKey{ID: core.ObjectID(i + 1), Version: v}
		got, err := r.Get(k)
		if err != nil || !bytes.Equal(got, blob(i, v)) {
			t.Fatalf("replayed %v = %q, %v", k, got, err)
		}
	}
	// Appends continue cleanly past the truncated tail.
	if err := r.Put(BlobKey{ID: 99, Version: 1}, []byte("after-truncate")); err != nil {
		t.Fatal(err)
	}

	if g := r.GarbageRatio(); g <= 0.3 {
		t.Fatalf("garbage ratio = %v, expected substantial garbage", g)
	}
	if err := r.Compact(); err != nil {
		t.Fatal(err)
	}
	if r.Compactions != 1 {
		t.Fatalf("Compactions = %d", r.Compactions)
	}
	if g := r.GarbageRatio(); g != 0 {
		t.Fatalf("garbage ratio after compaction = %v", g)
	}
	if r.Len() != 9 {
		t.Fatalf("post-compaction Len = %d, want 9", r.Len())
	}
	for i := 0; i < 8; i++ {
		v := 1
		if i < 4 {
			v = 2
		}
		k := BlobKey{ID: core.ObjectID(i + 1), Version: v}
		if got, err := r.Get(k); err != nil || !bytes.Equal(got, blob(i, v)) {
			t.Fatalf("post-compaction %v = %q, %v", k, got, err)
		}
	}
	r.Close()

	// And the compacted log replays.
	r2, err := OpenSegmentStore(dir, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.Len() != 9 {
		t.Fatalf("compacted replay Len = %d, want 9", r2.Len())
	}
}

// TestManifestRoundTripRecoverFromDisk is process-restart crash recovery
// at the storage layer: save a manifest, build a fresh manager over the
// same data directory, and the restored placement serves the same bytes —
// including an object whose only current copy was on the (surviving)
// disk tier, and excluding the memory tier, which died with the process.
func TestManifestRoundTripRecoverFromDisk(t *testing.T) {
	m, dir := payloadFixture(t)
	if err := m.AdmitBytes(1, 40, 1, 0.9, []byte("hot object")); err != nil {
		t.Fatal(err)
	}
	if err := m.AdmitBytes(2, 40, 1, 0.5, []byte("warm object")); err != nil {
		t.Fatal(err)
	}
	if err := m.Admit(3, 10, 1, 0.4); err != nil { // metadata-only rides along
		t.Fatal(err)
	}
	m.Backup()
	if err := m.UpdateBytes(1, 2, []byte("hot object v2")); err != nil {
		t.Fatal(err)
	}
	if err := m.SaveManifest(); err != nil {
		t.Fatal(err)
	}
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	cfg := Config{
		MemCapacity:  100,
		DiskCapacity: 1000,
		MemLatency:   0, DiskLatency: 10, TertiaryLatency: 100,
		SummaryRatio:     0.1,
		SummaryThreshold: 0.5,
		DataDir:          dir,
	}
	m2, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	n, rep, err := m2.RecoverFromDisk()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("restored %d objects, want 3", n)
	}
	if rep.Lost != 0 {
		t.Fatalf("lost %d objects across restart", rep.Lost)
	}
	mustInvariants(t, m2)
	// Object 1's v2 bytes lived on disk (tertiary backup lagged at v1):
	// recovery must adopt the surviving v2 disk copy, not the stale backup.
	res, data, err := m2.Fetch(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 2 || string(data) != "hot object v2" {
		t.Fatalf("restart fetch = v%d %q, want v2 bytes", res.Version, data)
	}
	if _, data, err := m2.Fetch(2); err != nil || string(data) != "warm object" {
		t.Fatalf("restart fetch 2 = %q, %v", data, err)
	}
	if _, ok := m2.Contains(3); !ok {
		t.Fatal("metadata-only object lost across restart")
	}
	if p, ok := m2.Priority(2); !ok || p != 0.5 {
		t.Fatalf("priority not restored: %v %v", p, ok)
	}
	// A fresh directory is a fresh start, not an error.
	m3, err := NewManager(Config{
		MemCapacity: 100, DiskCapacity: 1000,
		DiskLatency: 10, TertiaryLatency: 100,
		DataDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m3.Close()
	if n, _, err := m3.RecoverFromDisk(); err != nil || n != 0 {
		t.Fatalf("fresh dir recover = %d, %v", n, err)
	}
}
