package storage

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"cbfww/internal/core"
)

// The tertiary layout — which object sits at which position on the linear
// medium — is the one piece of Storage Manager state worth persisting:
// §4.4's clustering is recomputed only by a full maintenance sweep, so a
// restarted warehouse would otherwise serve analysis runs from a scrambled
// tape until the next sweep. The layout file is an append-ordered text
// format built for crash recovery:
//
//	cbfww-layout v1
//	<position> <object-id> <crc32>
//	...
//
// Each entry line carries a CRC32 (IEEE) of its own "<position> <id>"
// prefix. A crash mid-write leaves a truncated or half-written tail; on
// load, the first line that fails to parse or checksum ends the usable
// data, and the intact prefix is recovered — a shorter layout, never a
// corrupt one.

const layoutHeader = "cbfww-layout v1"

// SaveLayout writes the current tertiary layout to path atomically (temp
// file + rename), positions in ascending order.
func (m *Manager) SaveLayout(path string) error {
	m.mu.RLock()
	type entry struct {
		pos int
		id  core.ObjectID
	}
	entries := make([]entry, 0, len(m.objects))
	for id, o := range m.objects {
		if o.copies[Tertiary].present {
			entries = append(entries, entry{pos: o.tertiaryPos, id: id})
		}
	}
	m.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].pos < entries[j].pos })

	var b strings.Builder
	b.WriteString(layoutHeader)
	b.WriteByte('\n')
	for _, e := range entries {
		line := fmt.Sprintf("%d %d", e.pos, int64(e.id))
		fmt.Fprintf(&b, "%s %08x\n", line, crc32.ChecksumIEEE([]byte(line)))
	}

	tmp, err := os.CreateTemp(filepath.Dir(path), ".layout-*")
	if err != nil {
		return fmt.Errorf("storage: save layout: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if _, err := tmp.WriteString(b.String()); err != nil {
		tmp.Close()
		return fmt.Errorf("storage: save layout: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("storage: save layout: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("storage: save layout: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("storage: save layout: %w", err)
	}
	return nil
}

// LoadLayout reads a layout file and returns the longest intact prefix of
// object IDs in layout order. Entries after the first corrupt, truncated
// or out-of-order line are discarded (a crashed writer only damages the
// tail). A missing file is an error the caller can test with
// errors.Is(err, fs.ErrNotExist); a bad header is core.ErrInvalid.
func LoadLayout(path string) ([]core.ObjectID, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: load layout: %w", err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	if !sc.Scan() || sc.Text() != layoutHeader {
		return nil, fmt.Errorf("storage: load layout %s: %w: bad header", path, core.ErrInvalid)
	}
	var order []core.ObjectID
	next := 0
	for sc.Scan() {
		line := sc.Text()
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			break // truncated tail
		}
		payload, sumHex := line[:i], line[i+1:]
		sum, err := strconv.ParseUint(sumHex, 16, 32)
		if err != nil || uint32(sum) != crc32.ChecksumIEEE([]byte(payload)) {
			break // corrupt or half-written line
		}
		var pos int
		var id int64
		if _, err := fmt.Sscanf(payload, "%d %d", &pos, &id); err != nil || pos != next {
			break // malformed or out-of-order: not part of the intact prefix
		}
		order = append(order, core.ObjectID(id))
		next++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("storage: load layout %s: %w", path, err)
	}
	return order, nil
}

// RestoreLayout loads the layout file and re-applies it to the manager,
// skipping IDs the manager no longer knows (objects lost since the save).
// It returns how many entries were applied. A recovered prefix shorter
// than the resident population is fine: unlisted residents follow in ID
// order, exactly as LayoutTertiary always lays them.
func (m *Manager) RestoreLayout(path string) (int, error) {
	order, err := LoadLayout(path)
	if err != nil {
		return 0, err
	}
	known := order[:0]
	for _, id := range order {
		if _, ok := m.Contains(id); ok {
			known = append(known, id)
		}
	}
	if err := m.LayoutTertiary(known); err != nil {
		return 0, err
	}
	return len(known), nil
}
