package storage

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cbfww/internal/core"
)

// layoutFixture admits n objects and lays them out in reverse-ID order so
// the layout is distinguishable from the default ascending-ID placement.
func layoutFixture(t *testing.T, n int) (*Manager, []core.ObjectID) {
	t.Helper()
	m := newTestManager(t)
	order := make([]core.ObjectID, n)
	for i := 0; i < n; i++ {
		id := core.ObjectID(i + 1)
		if err := m.Admit(id, 10, 1, 0.5); err != nil {
			t.Fatal(err)
		}
		order[n-1-i] = id
	}
	if err := m.LayoutTertiary(order); err != nil {
		t.Fatal(err)
	}
	return m, order
}

func positions(t *testing.T, m *Manager, ids []core.ObjectID) []int {
	t.Helper()
	out := make([]int, len(ids))
	for i, id := range ids {
		pos, ok := m.TertiaryPosition(id)
		if !ok {
			t.Fatalf("object %v has no tertiary position", id)
		}
		out[i] = pos
	}
	return out
}

func TestLayoutSaveLoadRoundtrip(t *testing.T) {
	m, order := layoutFixture(t, 8)
	path := filepath.Join(t.TempDir(), "layout")
	if err := m.SaveLayout(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadLayout(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(order) {
		t.Fatalf("loaded %d entries, want %d", len(got), len(order))
	}
	for i := range order {
		if got[i] != order[i] {
			t.Fatalf("entry %d = %v, want %v", i, got[i], order[i])
		}
	}

	// A fresh manager with the same population recovers the exact layout.
	m2, _ := layoutFixture(t, 8)
	if err := m2.LayoutTertiary(nil); err != nil { // scramble to default order
		t.Fatal(err)
	}
	applied, err := m2.RestoreLayout(path)
	if err != nil {
		t.Fatal(err)
	}
	if applied != len(order) {
		t.Fatalf("applied %d entries, want %d", applied, len(order))
	}
	want := positions(t, m, order)
	if got := positions(t, m2, order); !equalInts(got, want) {
		t.Fatalf("restored positions %v, want %v", got, want)
	}
}

// A crash that truncates the file mid-line must yield the intact prefix,
// not an error and not garbage.
func TestLayoutRecoversTruncatedFile(t *testing.T) {
	m, order := layoutFixture(t, 8)
	path := filepath.Join(t.TempDir(), "layout")
	if err := m.SaveLayout(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop into the middle of the last line.
	cut := data[:len(data)-9]
	if err := os.WriteFile(path, cut, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadLayout(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(order)-1 {
		t.Fatalf("truncated load returned %d entries, want %d", len(got), len(order)-1)
	}
	for i := range got {
		if got[i] != order[i] {
			t.Fatalf("prefix entry %d = %v, want %v", i, got[i], order[i])
		}
	}
}

// A partial in-place write (crash without the atomic rename: some middle
// line is half old, half new bytes) must stop recovery at the damage — the
// entries before it survive, those after are discarded even if their own
// checksums are fine.
func TestLayoutRecoversPartialWrite(t *testing.T) {
	m, order := layoutFixture(t, 8)
	path := filepath.Join(t.TempDir(), "layout")
	if err := m.SaveLayout(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(data), "\n")
	// Corrupt the 4th entry line (index 4: header is line 0).
	lines[4] = "garbage " + lines[4][:4]
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadLayout(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("partial-write load returned %d entries, want 3", len(got))
	}
	for i := range got {
		if got[i] != order[i] {
			t.Fatalf("prefix entry %d = %v, want %v", i, got[i], order[i])
		}
	}

	// RestoreLayout applies the prefix; the rest follow in ID order and
	// the medium stays dense (positions 0..n-1, no holes).
	applied, err := m.RestoreLayout(path)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 3 {
		t.Fatalf("applied %d entries, want 3", applied)
	}
	seen := make(map[int]bool)
	for _, id := range order {
		pos, ok := m.TertiaryPosition(id)
		if !ok || seen[pos] {
			t.Fatalf("object %v: position %d (ok=%v, dup=%v)", id, pos, ok, seen[pos])
		}
		seen[pos] = true
	}
	for p := 0; p < len(order); p++ {
		if !seen[p] {
			t.Fatalf("position %d unoccupied after restore", p)
		}
	}
}

func TestLayoutMissingFileAndBadHeader(t *testing.T) {
	m, _ := layoutFixture(t, 2)
	missing := filepath.Join(t.TempDir(), "nope")
	if _, err := LoadLayout(missing); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing file err = %v, want fs.ErrNotExist", err)
	}
	if _, err := m.RestoreLayout(missing); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("restore missing file err = %v, want fs.ErrNotExist", err)
	}

	bad := filepath.Join(t.TempDir(), "bad")
	if err := os.WriteFile(bad, []byte("not a layout\n0 1 deadbeef\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLayout(bad); !errors.Is(err, core.ErrInvalid) {
		t.Fatalf("bad header err = %v, want core.ErrInvalid", err)
	}
}

// IDs saved before a tier failure may be gone after Recover drops lost
// objects; restoring must skip them instead of failing.
func TestLayoutRestoreSkipsLostObjects(t *testing.T) {
	m, order := layoutFixture(t, 6)
	path := filepath.Join(t.TempDir(), "layout")
	if err := m.SaveLayout(path); err != nil {
		t.Fatal(err)
	}

	// Lose every copy of one object: drop all tiers, then resurrect the
	// rest by hand via a fresh manager holding a subset.
	m2 := newTestManager(t)
	for _, id := range order[1:] {
		if err := m2.Admit(id, 10, 1, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	applied, err := m2.RestoreLayout(path)
	if err != nil {
		t.Fatal(err)
	}
	if applied != len(order)-1 {
		t.Fatalf("applied %d entries, want %d", applied, len(order)-1)
	}
	// Survivors keep their relative layout order.
	prev := -1
	for _, id := range order[1:] {
		pos, ok := m2.TertiaryPosition(id)
		if !ok {
			t.Fatalf("survivor %v lost its tertiary position", id)
		}
		if pos <= prev {
			t.Fatalf("survivor %v at %d breaks layout order (prev %d)", id, pos, prev)
		}
		prev = pos
	}
	if err := m2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
