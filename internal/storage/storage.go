// Package storage implements the Storage Manager of §4.4 and Figure 3: the
// mapping of the object hierarchy onto a storage hierarchy of main memory,
// disk and tertiary storage.
//
// The warehouse is capacity bound-free in aggregate — the tertiary level
// never refuses data — but the fast levels are finite, so placement is the
// whole game: objects are ranked by priority and water-filled top-down
// (highest priorities into memory until its capacity target, next into
// disk, the rest to tertiary).
//
// The manager also implements the paper's copy-control rules:
//
//   - data in main memory have exact copies on disk;
//   - data on disk have backup copies in tertiary storage "which may not
//     be exact copies due to the periodical back-up process";
//   - downgrading a priority just invalidates the fast copy; upgrading
//     copies data upward.
//
// and the "levels of details" rule of §4.1: an object too large for the
// tier its priority deserves keeps a small summary (B′) at that tier while
// the full body stays one level down.
package storage

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"cbfww/internal/core"
)

// Tier is one level of the storage hierarchy.
type Tier int

// The three levels of Figure 3. Smaller is faster.
const (
	Memory Tier = iota
	Disk
	Tertiary
	numTiers
)

// String names the tier.
func (t Tier) String() string {
	switch t {
	case Memory:
		return "memory"
	case Disk:
		return "disk"
	case Tertiary:
		return "tertiary"
	default:
		return fmt.Sprintf("tier(%d)", int(t))
	}
}

// Config sizes the hierarchy. Capacities are *targets* for the finite
// tiers: placement fills them in priority order. Tertiary is unbounded.
type Config struct {
	MemCapacity  core.Bytes
	DiskCapacity core.Bytes
	// Latencies per access, in ticks.
	MemLatency, DiskLatency, TertiaryLatency core.Duration
	// SummaryRatio is the size of a levels-of-detail summary relative to
	// the full object (e.g. 0.05). Zero disables summaries.
	SummaryRatio float64
	// SummaryThreshold: objects larger than this fraction of the memory
	// capacity are "large documents" (§4.3 problem (3)) and are stored in
	// memory as summaries only. Zero defaults to 0.25.
	SummaryThreshold float64
}

// DefaultConfig models the 2003-era ratios the paper argues from: memory
// is thousands of times faster than a web fetch, disk tens of times.
func DefaultConfig() Config {
	return Config{
		MemCapacity:     64 * core.MB,
		DiskCapacity:    2 * core.GB,
		MemLatency:      0,
		DiskLatency:     10,
		TertiaryLatency: 100,
		SummaryRatio:    0.05,
	}
}

// copyState describes one tier's copy of an object.
type copyState struct {
	present bool
	// version of the content this copy holds.
	version int
	// summaryOnly marks a levels-of-detail abstract rather than the body.
	summaryOnly bool
}

// object is the manager's record of one stored object.
type object struct {
	id       core.ObjectID
	size     core.Bytes
	version  int // current (latest known) content version
	priority core.Priority
	copies   [numTiers]copyState
	// tertiaryPos is the object's position on the linear tertiary medium
	// (§4.4 locality of reference); meaningful only while a tertiary copy
	// exists.
	tertiaryPos int
}

// summarySize returns the levels-of-detail footprint of the object.
func (o *object) summarySize(ratio float64) core.Bytes {
	s := core.Bytes(float64(o.size) * ratio)
	if s < 1 {
		s = 1
	}
	return s
}

// footprint returns the bytes the object occupies at tier t.
func (o *object) footprint(t Tier, ratio float64) core.Bytes {
	c := o.copies[t]
	if !c.present {
		return 0
	}
	if c.summaryOnly {
		return o.summarySize(ratio)
	}
	return o.size
}

// AccessResult reports how an access was served.
type AccessResult struct {
	// Tier that served the full object.
	Tier Tier
	// Latency of serving the full object.
	Latency core.Duration
	// PreviewTier/PreviewLatency are set when a faster tier held a
	// summary: the user sees an abstract at PreviewLatency while the body
	// arrives at Latency (§4.3's "fast preview even [when] the original
	// document is currently not available").
	PreviewTier    Tier
	PreviewLatency core.Duration
	HasPreview     bool
	// Stale marks a copy older than the object's current version.
	Stale bool
}

// Stats counts manager activity.
type Stats struct {
	Accesses   int
	Migrations int
	Backups    int
	// CostTotal accumulates access latency, the E-F3 metric.
	CostTotal core.Duration
}

// Manager is the storage manager. Safe for concurrent use.
type Manager struct {
	mu      sync.RWMutex
	cfg     Config
	objects map[core.ObjectID]*object
	used    [numTiers]core.Bytes
	stats   Stats
	// memGen counts memory-residency changes; memDirty is the coalesced set
	// of objects whose memory-tier copy changed since the last drain. The
	// hierarchy-of-indices layer polls these instead of sweeping ResidentIDs
	// on every read.
	memGen   atomic.Uint64
	memDirty map[core.ObjectID]struct{}
}

// NewManager returns an empty manager. Capacities must be positive and
// latencies non-decreasing down the hierarchy.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.MemCapacity <= 0 || cfg.DiskCapacity <= 0 {
		return nil, fmt.Errorf("storage: %w: capacities must be positive", core.ErrInvalid)
	}
	if cfg.MemLatency > cfg.DiskLatency || cfg.DiskLatency > cfg.TertiaryLatency {
		return nil, fmt.Errorf("storage: %w: latencies must grow down the hierarchy", core.ErrInvalid)
	}
	if cfg.SummaryRatio < 0 || cfg.SummaryRatio >= 1 {
		return nil, fmt.Errorf("storage: %w: summary ratio %v outside [0,1)", core.ErrInvalid, cfg.SummaryRatio)
	}
	if cfg.SummaryThreshold == 0 {
		cfg.SummaryThreshold = 0.25
	}
	return &Manager{
		cfg:      cfg,
		objects:  make(map[core.ObjectID]*object),
		memDirty: make(map[core.ObjectID]struct{}),
	}, nil
}

// noteMemLocked records that id's memory-tier copy changed. Requires m.mu.
func (m *Manager) noteMemLocked(id core.ObjectID) {
	m.memDirty[id] = struct{}{}
	m.memGen.Add(1)
}

// MemoryResidencyGen returns a counter that advances whenever any object's
// memory-tier copy changes. Readers compare it against a remembered value
// to skip reconciliation entirely when nothing moved; it is lock-free.
func (m *Manager) MemoryResidencyGen() uint64 {
	return m.memGen.Load()
}

// DrainMemoryChanges returns the IDs whose memory-tier copy changed since
// the previous drain (ascending, for determinism) and the generation the
// drain reflects, clearing the pending set. The events are coalesced and
// idempotent: consumers re-check current residency per ID rather than
// replaying individual transitions.
func (m *Manager) DrainMemoryChanges() ([]core.ObjectID, uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	gen := m.memGen.Load()
	if len(m.memDirty) == 0 {
		return nil, gen
	}
	ids := make([]core.ObjectID, 0, len(m.memDirty))
	for id := range m.memDirty {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	m.memDirty = make(map[core.ObjectID]struct{})
	return ids, gen
}

// ResidentAt reports whether id currently has a copy (full or summary) at
// tier t.
func (m *Manager) ResidentAt(id core.ObjectID, t Tier) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	o, ok := m.objects[id]
	return ok && t >= Memory && t < numTiers && o.copies[t].present
}

// latency returns the access latency of tier t.
func (m *Manager) latency(t Tier) core.Duration {
	switch t {
	case Memory:
		return m.cfg.MemLatency
	case Disk:
		return m.cfg.DiskLatency
	default:
		return m.cfg.TertiaryLatency
	}
}

// Admit stores a new object with the given size, content version and
// priority, placing it according to the current population. Admitting an
// existing ID is an error; use Update for content changes and SetPriority
// for reprioritization.
func (m *Manager) Admit(id core.ObjectID, size core.Bytes, version int, prio core.Priority) error {
	if size <= 0 {
		return fmt.Errorf("storage: admit %v: %w: size %v", id, core.ErrInvalid, size)
	}
	if version < 1 {
		version = 1
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.objects[id]; dup {
		return fmt.Errorf("storage: admit %v: %w", id, core.ErrExists)
	}
	o := &object{id: id, size: size, version: version, priority: prio}
	// Everything lands in tertiary first (the unbounded level), then the
	// placement pass promotes it as far as its priority earns.
	o.copies[Tertiary] = copyState{present: true, version: version}
	m.objects[id] = o
	m.used[Tertiary] += size
	m.placeLocked()
	return nil
}

// Admission is one entry of a bulk admission.
type Admission struct {
	ID       core.ObjectID
	Size     core.Bytes
	Version  int
	Priority core.Priority
}

// AdmitAll admits a batch with a single placement pass — O(n log n) total
// instead of per object, for trace replays and experiment setup.
func (m *Manager) AdmitAll(batch []Admission) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, a := range batch {
		if a.Size <= 0 {
			return fmt.Errorf("storage: admit %v: %w: size %v", a.ID, core.ErrInvalid, a.Size)
		}
		if _, dup := m.objects[a.ID]; dup {
			return fmt.Errorf("storage: admit %v: %w", a.ID, core.ErrExists)
		}
		v := a.Version
		if v < 1 {
			v = 1
		}
		o := &object{id: a.ID, size: a.Size, version: v, priority: a.Priority}
		o.copies[Tertiary] = copyState{present: true, version: v}
		m.objects[a.ID] = o
		m.used[Tertiary] += a.Size
	}
	m.placeLocked()
	return nil
}

// Remove deletes the object from all tiers (admission-constraint
// enforcement path). Removing an unknown ID is an error.
func (m *Manager) Remove(id core.ObjectID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	o, ok := m.objects[id]
	if !ok {
		return fmt.Errorf("storage: remove %v: %w", id, core.ErrNotFound)
	}
	for t := Memory; t < numTiers; t++ {
		m.used[t] -= o.footprint(t, m.cfg.SummaryRatio)
	}
	if o.copies[Memory].present {
		m.noteMemLocked(id)
	}
	delete(m.objects, id)
	return nil
}

// Access serves the object, preferring the fastest tier with a full copy,
// and reports the cost. Accessing an unknown ID fails.
func (m *Manager) Access(id core.ObjectID) (AccessResult, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	o, ok := m.objects[id]
	if !ok {
		return AccessResult{}, fmt.Errorf("storage: access %v: %w", id, core.ErrNotFound)
	}
	var res AccessResult
	served := false
	for t := Memory; t < numTiers; t++ {
		c := o.copies[t]
		if !c.present {
			continue
		}
		if c.summaryOnly {
			if !res.HasPreview {
				res.HasPreview = true
				res.PreviewTier = t
				res.PreviewLatency = m.latency(t)
			}
			continue
		}
		res.Tier = t
		res.Latency = m.latency(t)
		res.Stale = c.version < o.version
		served = true
		break
	}
	if !served {
		return AccessResult{}, fmt.Errorf("storage: access %v: no full copy resident: %w", id, core.ErrNotFound)
	}
	m.stats.Accesses++
	m.stats.CostTotal += res.Latency
	return res, nil
}

// Contains reports whether id is stored at all, and at which fastest tier.
func (m *Manager) Contains(id core.ObjectID) (Tier, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	o, ok := m.objects[id]
	if !ok {
		return 0, false
	}
	for t := Memory; t < numTiers; t++ {
		if o.copies[t].present {
			return t, true
		}
	}
	return 0, false
}

// SetPriority updates one object's priority and replaces it in the
// hierarchy.
func (m *Manager) SetPriority(id core.ObjectID, prio core.Priority) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	o, ok := m.objects[id]
	if !ok {
		return fmt.Errorf("storage: set priority %v: %w", id, core.ErrNotFound)
	}
	o.priority = prio
	m.placeLocked()
	return nil
}

// ApplyPriorities bulk-updates priorities (ids absent from the map keep
// their current priority) and re-places everything — the self-organizing
// "vacuum cleaner" sweep.
func (m *Manager) ApplyPriorities(prios map[core.ObjectID]core.Priority) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for id, p := range prios {
		if o, ok := m.objects[id]; ok {
			o.priority = p
		}
	}
	m.placeLocked()
}

// Update records a new content version: the fast copies (memory, disk) are
// rewritten in place; the tertiary copy goes stale until the next Backup.
// An object resident only in tertiary is updated there directly.
func (m *Manager) Update(id core.ObjectID, newVersion int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	o, ok := m.objects[id]
	if !ok {
		return fmt.Errorf("storage: update %v: %w", id, core.ErrNotFound)
	}
	if newVersion <= o.version {
		return fmt.Errorf("storage: update %v: %w: version %d <= current %d", id, core.ErrInvalid, newVersion, o.version)
	}
	o.version = newVersion
	fastCopy := false
	for t := Memory; t < Tertiary; t++ {
		if o.copies[t].present {
			o.copies[t].version = newVersion
			fastCopy = true
		}
	}
	if !fastCopy {
		o.copies[Tertiary].version = newVersion
	}
	return nil
}

// Backup refreshes every stale or missing tertiary copy from the current
// content — the periodic process the paper's copy-control rule assumes.
func (m *Manager) Backup() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, o := range m.objects {
		if !o.copies[Tertiary].present {
			o.copies[Tertiary] = copyState{present: true, version: o.version}
			m.used[Tertiary] += o.size
		} else if o.copies[Tertiary].version < o.version {
			o.copies[Tertiary].version = o.version
		}
	}
	m.stats.Backups++
}

// placeLocked recomputes the whole placement: objects sorted by priority
// (descending; ties by ID for determinism) water-fill memory then disk;
// everyone keeps/earns copies per the copy-control rules. Requires m.mu.
func (m *Manager) placeLocked() {
	ids := make([]core.ObjectID, 0, len(m.objects))
	for id := range m.objects {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := m.objects[ids[i]], m.objects[ids[j]]
		if a.priority != b.priority {
			return a.priority > b.priority
		}
		return a.id < b.id
	})

	var memUsed, diskUsed core.Bytes
	for _, id := range ids {
		o := m.objects[id]
		wantMem := false
		memAsSummary := false
		// Memory placement: a large document (§4.3 problem (3)) keeps only
		// its summary in memory; a normal one gets a full copy if it fits.
		// Small objects that simply don't fit go to disk — summaries are a
		// levels-of-detail device for big documents, not a universal
		// fallback.
		big := float64(o.size) > m.cfg.SummaryThreshold*float64(m.cfg.MemCapacity)
		switch {
		case big && m.cfg.SummaryRatio > 0 &&
			memUsed+o.summarySize(m.cfg.SummaryRatio) <= m.cfg.MemCapacity:
			wantMem, memAsSummary = true, true
		case !big && memUsed+o.size <= m.cfg.MemCapacity:
			wantMem = true
		}
		// Disk fills by the same priority order until capacity. The disk
		// copy carries the full body even when memory holds a summary.
		wantDisk := diskUsed+o.size <= m.cfg.DiskCapacity
		if wantMem && !wantDisk {
			// Cannot satisfy the exact-copy invariant: demote from memory.
			wantMem, memAsSummary = false, false
		}

		m.applyPlacement(o, Memory, wantMem, memAsSummary)
		m.applyPlacement(o, Disk, wantDisk, false)
		if wantMem {
			memUsed += o.footprint(Memory, m.cfg.SummaryRatio)
		}
		if wantDisk {
			diskUsed += o.size
		}
	}
	m.used[Memory] = memUsed
	m.used[Disk] = diskUsed
}

// applyPlacement transitions one object's copy at tier t to the desired
// state, counting migrations and maintaining version semantics: a copy
// created by promotion carries the current version (upgrade copies data);
// an invalidated copy simply disappears (downgrade is free).
func (m *Manager) applyPlacement(o *object, t Tier, want, summaryOnly bool) {
	c := &o.copies[t]
	switch {
	case want && !c.present:
		*c = copyState{present: true, version: o.version, summaryOnly: summaryOnly}
	case want && c.present && c.summaryOnly != summaryOnly:
		c.summaryOnly = summaryOnly
		c.version = o.version
	case !want && c.present:
		*c = copyState{}
	default:
		return // no change: nothing to count or note
	}
	m.stats.Migrations++
	if t == Memory {
		m.noteMemLocked(o.id)
	}
}

// Used returns the bytes resident at tier t.
func (m *Manager) Used(t Tier) core.Bytes {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.used[t]
}

// Len returns the number of objects known to the manager.
func (m *Manager) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.objects)
}

// ResidentIDs returns the IDs with a copy (full or summary) at tier t, in
// ascending order — e.g. the membership of the memory tier's detailed
// index.
func (m *Manager) ResidentIDs(t Tier) []core.ObjectID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []core.ObjectID
	for id, o := range m.objects {
		if o.copies[t].present {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats returns a copy of the activity counters.
func (m *Manager) Stats() Stats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.stats
}

// Priority returns the object's current priority.
func (m *Manager) Priority(id core.ObjectID) (core.Priority, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	o, ok := m.objects[id]
	if !ok {
		return 0, false
	}
	return o.priority, true
}
