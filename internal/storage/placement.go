package storage

import (
	"sort"

	"cbfww/internal/core"
)

// placeLocked recomputes the whole placement: objects sorted by priority
// (descending; ties by ID for determinism) water-fill the finite tiers
// top-down; everyone keeps/earns copies per the copy-control rules, which
// generalize from the Figure-3 stack to any tier table as "a copy at tier
// t requires a copy at tier t+1". Requires m.mu.
func (m *Manager) placeLocked() {
	ids := make([]core.ObjectID, 0, len(m.objects))
	for id := range m.objects {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := m.objects[ids[i]], m.objects[ids[j]]
		if a.priority != b.priority {
			return a.priority > b.priority
		}
		return a.id < b.id
	})

	anchor := m.last()
	var usedNow [maxTiers]core.Bytes
	var want, asSummary [maxTiers]bool
	for _, id := range ids {
		o := m.objects[id]
		// Decide bottom-up so the nesting rule composes: a tier only wants
		// the object if the next slower tier does too (the anchor always
		// holds it). Intermediate tiers hold full bodies; the summary
		// device applies at tier 0 only — "an object too large for the
		// tier its priority deserves keeps a small summary at that tier
		// while the full body stays one level down".
		for t := anchor - 1; t >= 1; t-- {
			below := t == anchor-1 || want[t+1]
			want[t] = below && usedNow[t]+o.size <= m.tiers[t].Capacity
			asSummary[t] = false
		}
		memCap := m.tiers[0].Capacity
		big := float64(o.size) > m.cfg.SummaryThreshold*float64(memCap)
		below := anchor == 1 || want[1]
		want[0], asSummary[0] = false, false
		switch {
		case !below:
			// Cannot satisfy the exact-copy invariant: stay demoted.
		case big && m.cfg.SummaryRatio > 0 &&
			usedNow[0]+o.summarySize(m.cfg.SummaryRatio) <= memCap:
			want[0], asSummary[0] = true, true
		case !big && usedNow[0]+o.size <= memCap:
			want[0] = true
		}

		// Apply bottom-up so promotions find their source one tier down
		// already materialized (the cheapest copy distance).
		for t := anchor - 1; t >= 0; t-- {
			m.applyPlacement(o, t, want[t], asSummary[t])
		}
		// footprint, not the wanted state, feeds the accounting: a payload
		// promotion that found no source bytes leaves the copy absent.
		for t := Tier(0); t < anchor; t++ {
			usedNow[t] += o.footprint(t, m.cfg.SummaryRatio)
		}
	}
	for t := Tier(0); t < anchor; t++ {
		m.used[t] = usedNow[t]
	}
}

// resizeLocked re-solves placement incrementally after a capacity
// retarget: only the delta set of blobs moves. Requires m.mu.
//
// Shrink pass (slowest tier first): a tier over its new target demotes
// its lowest-priority residents, cascading the invalidation to every
// faster tier so the nesting invariant survives. Demotion deletes bytes,
// it never writes them — the anchor copy is the durable source — so a
// shrink costs no I/O and is visible in DemotedBytes, not MovedBytes.
//
// Grow pass (slowest tier first, so a promotion can cascade upward in one
// call): a tier under its target promotes the highest-priority objects
// that hold a copy one tier down and none here, streaming bytes upward
// through the normal applyPlacement/copyBlobLocked path (MovedBytes).
func (m *Manager) resizeLocked() {
	anchor := m.last()

	for t := anchor - 1; t >= 0; t-- {
		if m.used[t] <= m.tiers[t].Capacity {
			continue
		}
		// Ascending priority: the mirror image of the water-fill order, so
		// the demoted frontier is exactly the set a full sweep would evict.
		resid := m.residentsLocked(t)
		sort.Slice(resid, func(i, j int) bool {
			a, b := resid[i], resid[j]
			if a.priority != b.priority {
				return a.priority < b.priority
			}
			return a.id > b.id
		})
		for _, o := range resid {
			if m.used[t] <= m.tiers[t].Capacity {
				break
			}
			for u := Tier(0); u <= t; u++ {
				m.demoteLocked(o, u)
			}
		}
	}

	for t := anchor - 1; t >= 0; t-- {
		if m.used[t] >= m.tiers[t].Capacity {
			continue
		}
		// Promotion candidates hold a full copy one tier down and either
		// nothing here or (tier 0 only) a summary that a grown capacity
		// may now upgrade to the full body.
		cands := make([]*object, 0)
		for _, o := range m.objects {
			if !o.copies[t+1].present || o.copies[t+1].summaryOnly {
				continue
			}
			if !o.copies[t].present || (t == 0 && o.copies[t].summaryOnly) {
				cands = append(cands, o)
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			a, b := cands[i], cands[j]
			if a.priority != b.priority {
				return a.priority > b.priority
			}
			return a.id < b.id
		})
		for _, o := range cands {
			summaryOnly := false
			fp := o.size
			if t == 0 {
				big := float64(o.size) > m.cfg.SummaryThreshold*float64(m.tiers[0].Capacity)
				if big {
					if m.cfg.SummaryRatio <= 0 {
						continue
					}
					summaryOnly = true
					fp = o.summarySize(m.cfg.SummaryRatio)
				}
			}
			prev := o.footprint(t, m.cfg.SummaryRatio)
			if o.copies[t].present && o.copies[t].summaryOnly == summaryOnly {
				continue // already in the deserved shape
			}
			if m.used[t]-prev+fp > m.tiers[t].Capacity {
				continue // a smaller, lower-priority object may still fit
			}
			m.applyPlacement(o, t, true, summaryOnly)
			m.used[t] += o.footprint(t, m.cfg.SummaryRatio) - prev
		}
	}
}

// residentsLocked lists the objects with a copy at tier t. Requires m.mu.
func (m *Manager) residentsLocked(t Tier) []*object {
	out := make([]*object, 0)
	for _, o := range m.objects {
		if o.copies[t].present {
			out = append(out, o)
		}
	}
	return out
}

// demoteLocked invalidates o's copy at tier t (a no-op when absent):
// bytes are deleted, never moved, and the loss is counted in
// DemotedBytes. Requires m.mu.
func (m *Manager) demoteLocked(o *object, t Tier) {
	c := &o.copies[t]
	if !c.present {
		return
	}
	fp := o.footprint(t, m.cfg.SummaryRatio)
	if o.hasPayload {
		m.backends[t].Delete(c.key(o.id))
	}
	*c = copyState{}
	m.used[t] -= fp
	m.stats.DemotedBytes[t] += fp
	m.stats.Migrations++
	if t == 0 {
		m.noteMemLocked(o.id)
	}
}

// applyPlacement transitions one object's copy at tier t to the desired
// state, counting migrations and maintaining version semantics: a copy
// created by promotion carries its source's version (upgrade copies
// data, so a copy promoted from a stale backup is honestly stale too);
// an invalidated copy simply disappears (downgrade is free, its bytes
// are deleted and counted in DemotedBytes). For metadata-only objects
// there are no bytes to move and the promoted copy is labeled with the
// current version, as before.
func (m *Manager) applyPlacement(o *object, t Tier, want, summaryOnly bool) {
	moved := o.size
	if summaryOnly {
		moved = o.summarySize(m.cfg.SummaryRatio)
	}
	c := &o.copies[t]
	switch {
	case want && !c.present:
		ver := o.version
		if o.hasPayload {
			srcVer, ok := m.copyBlobLocked(o, t, summaryOnly)
			if !ok {
				return // no source bytes anywhere: the copy cannot exist
			}
			ver = srcVer
		}
		*c = copyState{present: true, version: ver, summaryOnly: summaryOnly}
		m.stats.MovedBytes[t] += moved
	case want && c.present && c.summaryOnly != summaryOnly:
		ver := o.version
		if o.hasPayload {
			old := c.key(o.id)
			srcVer, ok := m.copyBlobLocked(o, t, summaryOnly)
			if !ok {
				return
			}
			if old != (BlobKey{ID: o.id, Version: srcVer, Summary: summaryOnly}) {
				m.backends[t].Delete(old)
			}
			ver = srcVer
		}
		c.summaryOnly = summaryOnly
		c.version = ver
		m.stats.MovedBytes[t] += moved
	case !want && c.present:
		m.stats.DemotedBytes[t] += o.footprint(t, m.cfg.SummaryRatio)
		if o.hasPayload {
			m.backends[t].Delete(c.key(o.id))
		}
		*c = copyState{}
	default:
		return // no change: nothing to count or note
	}
	m.stats.Migrations++
	if t == 0 {
		m.noteMemLocked(o.id)
	}
}

// copyBlobLocked materializes o's bytes at tier t — the full body or its
// levels-of-detail summary — sourcing from the fastest tier holding a
// full copy. Returns the version the written blob carries. Requires m.mu.
//
// Full copies stream reader→writer (io.Copy under PutFrom) so a 4MB
// migration never doubles resident heap; summary copies still materialize
// because the summarize hook needs the whole payload in hand.
func (m *Manager) copyBlobLocked(o *object, t Tier, summaryOnly bool) (int, bool) {
	if summaryOnly {
		data, srcVer, ok := m.readFullLocked(o)
		if !ok {
			return 0, false
		}
		data = m.summarize(data, o.summarySize(m.cfg.SummaryRatio))
		if err := m.backends[t].Put(BlobKey{ID: o.id, Version: srcVer, Summary: true}, data); err != nil {
			return 0, false
		}
		return srcVer, true
	}
	br, srcVer, ok := m.openFullLocked(o)
	if !ok {
		return 0, false
	}
	err := m.backends[t].PutFrom(BlobKey{ID: o.id, Version: srcVer}, br, br.Len())
	br.Close()
	if err != nil {
		return 0, false
	}
	return srcVer, true
}

// readFullLocked reads the bytes of o's fastest full copy. Requires m.mu.
func (m *Manager) readFullLocked(o *object) ([]byte, int, bool) {
	for t := Tier(0); t < m.numTiers(); t++ {
		c := o.copies[t]
		if !c.present || c.summaryOnly {
			continue
		}
		if data, err := m.backends[t].Get(c.key(o.id)); err == nil {
			return data, c.version, true
		}
	}
	return nil, 0, false
}

// openFullLocked opens a stream over o's fastest full copy. Requires m.mu.
func (m *Manager) openFullLocked(o *object) (BlobReader, int, bool) {
	for t := Tier(0); t < m.numTiers(); t++ {
		c := o.copies[t]
		if !c.present || c.summaryOnly {
			continue
		}
		if br, err := m.backends[t].Open(c.key(o.id)); err == nil {
			return br, c.version, true
		}
	}
	return nil, 0, false
}
