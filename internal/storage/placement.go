package storage

import (
	"sort"

	"cbfww/internal/core"
)

// placeLocked recomputes the whole placement: objects sorted by priority
// (descending; ties by ID for determinism) water-fill memory then disk;
// everyone keeps/earns copies per the copy-control rules. Requires m.mu.
func (m *Manager) placeLocked() {
	ids := make([]core.ObjectID, 0, len(m.objects))
	for id := range m.objects {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := m.objects[ids[i]], m.objects[ids[j]]
		if a.priority != b.priority {
			return a.priority > b.priority
		}
		return a.id < b.id
	})

	var memUsed, diskUsed core.Bytes
	for _, id := range ids {
		o := m.objects[id]
		wantMem := false
		memAsSummary := false
		// Memory placement: a large document (§4.3 problem (3)) keeps only
		// its summary in memory; a normal one gets a full copy if it fits.
		// Small objects that simply don't fit go to disk — summaries are a
		// levels-of-detail device for big documents, not a universal
		// fallback.
		big := float64(o.size) > m.cfg.SummaryThreshold*float64(m.cfg.MemCapacity)
		switch {
		case big && m.cfg.SummaryRatio > 0 &&
			memUsed+o.summarySize(m.cfg.SummaryRatio) <= m.cfg.MemCapacity:
			wantMem, memAsSummary = true, true
		case !big && memUsed+o.size <= m.cfg.MemCapacity:
			wantMem = true
		}
		// Disk fills by the same priority order until capacity. The disk
		// copy carries the full body even when memory holds a summary.
		wantDisk := diskUsed+o.size <= m.cfg.DiskCapacity
		if wantMem && !wantDisk {
			// Cannot satisfy the exact-copy invariant: demote from memory.
			wantMem, memAsSummary = false, false
		}

		m.applyPlacement(o, Memory, wantMem, memAsSummary)
		m.applyPlacement(o, Disk, wantDisk, false)
		// footprint, not the wanted state, feeds the accounting: a payload
		// promotion that found no source bytes leaves the copy absent.
		memUsed += o.footprint(Memory, m.cfg.SummaryRatio)
		diskUsed += o.footprint(Disk, m.cfg.SummaryRatio)
	}
	m.used[Memory] = memUsed
	m.used[Disk] = diskUsed
}

// applyPlacement transitions one object's copy at tier t to the desired
// state, counting migrations and maintaining version semantics: a copy
// created by promotion carries its source's version (upgrade copies
// data, so a copy promoted from a stale backup is honestly stale too);
// an invalidated copy simply disappears (downgrade is free, its bytes
// are deleted). For metadata-only objects there are no bytes to move and
// the promoted copy is labeled with the current version, as before.
func (m *Manager) applyPlacement(o *object, t Tier, want, summaryOnly bool) {
	moved := o.size
	if summaryOnly {
		moved = o.summarySize(m.cfg.SummaryRatio)
	}
	c := &o.copies[t]
	switch {
	case want && !c.present:
		ver := o.version
		if o.hasPayload {
			srcVer, ok := m.copyBlobLocked(o, t, summaryOnly)
			if !ok {
				return // no source bytes anywhere: the copy cannot exist
			}
			ver = srcVer
		}
		*c = copyState{present: true, version: ver, summaryOnly: summaryOnly}
		m.stats.MovedBytes[t] += moved
	case want && c.present && c.summaryOnly != summaryOnly:
		ver := o.version
		if o.hasPayload {
			old := c.key(o.id)
			srcVer, ok := m.copyBlobLocked(o, t, summaryOnly)
			if !ok {
				return
			}
			if old != (BlobKey{ID: o.id, Version: srcVer, Summary: summaryOnly}) {
				m.backends[t].Delete(old)
			}
			ver = srcVer
		}
		c.summaryOnly = summaryOnly
		c.version = ver
		m.stats.MovedBytes[t] += moved
	case !want && c.present:
		if o.hasPayload {
			m.backends[t].Delete(c.key(o.id))
		}
		*c = copyState{}
	default:
		return // no change: nothing to count or note
	}
	m.stats.Migrations++
	if t == Memory {
		m.noteMemLocked(o.id)
	}
}

// copyBlobLocked materializes o's bytes at tier t — the full body or its
// levels-of-detail summary — sourcing from the fastest tier holding a
// full copy. Returns the version the written blob carries. Requires m.mu.
//
// Full copies stream reader→writer (io.Copy under PutFrom) so a 4MB
// migration never doubles resident heap; summary copies still materialize
// because the summarize hook needs the whole payload in hand.
func (m *Manager) copyBlobLocked(o *object, t Tier, summaryOnly bool) (int, bool) {
	if summaryOnly {
		data, srcVer, ok := m.readFullLocked(o)
		if !ok {
			return 0, false
		}
		data = m.summarize(data, o.summarySize(m.cfg.SummaryRatio))
		if err := m.backends[t].Put(BlobKey{ID: o.id, Version: srcVer, Summary: true}, data); err != nil {
			return 0, false
		}
		return srcVer, true
	}
	br, srcVer, ok := m.openFullLocked(o)
	if !ok {
		return 0, false
	}
	err := m.backends[t].PutFrom(BlobKey{ID: o.id, Version: srcVer}, br, br.Len())
	br.Close()
	if err != nil {
		return 0, false
	}
	return srcVer, true
}

// readFullLocked reads the bytes of o's fastest full copy. Requires m.mu.
func (m *Manager) readFullLocked(o *object) ([]byte, int, bool) {
	for t := Memory; t < numTiers; t++ {
		c := o.copies[t]
		if !c.present || c.summaryOnly {
			continue
		}
		if data, err := m.backends[t].Get(c.key(o.id)); err == nil {
			return data, c.version, true
		}
	}
	return nil, 0, false
}

// openFullLocked opens a stream over o's fastest full copy. Requires m.mu.
func (m *Manager) openFullLocked(o *object) (BlobReader, int, bool) {
	for t := Memory; t < numTiers; t++ {
		c := o.copies[t]
		if !c.present || c.summaryOnly {
			continue
		}
		if br, err := m.backends[t].Open(c.key(o.id)); err == nil {
			return br, c.version, true
		}
	}
	return nil, 0, false
}
