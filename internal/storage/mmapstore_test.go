package storage

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"cbfww/internal/core"
)

func openMmap(t *testing.T, dir string) *MmapStore {
	t.Helper()
	s, err := OpenMmapStore(dir)
	if err != nil {
		t.Fatalf("OpenMmapStore: %v", err)
	}
	return s
}

// TestMmapReopenReplay: the arena replays to the same index after a
// close/reopen cycle — puts, overwrites and deletes all land durably.
func TestMmapReopenReplay(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "mmap")
	s := openMmap(t, dir)
	k1 := BlobKey{ID: 1, Version: 1}
	k2 := BlobKey{ID: 2, Version: 1}
	k3 := BlobKey{ID: 3, Version: 1}
	want1 := streamPayload(10_000)
	if err := s.Put(k1, streamPayload(5_000)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Put(k1, want1); err != nil { // overwrite: replay keeps the newer record
		t.Fatalf("Put overwrite: %v", err)
	}
	if err := s.Put(k2, streamPayload(64)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Put(k3, streamPayload(128)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Delete(k3); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s = openMmap(t, dir)
	defer s.Close()
	if s.Len() != 2 {
		t.Fatalf("Len after reopen = %d, want 2", s.Len())
	}
	got, err := s.Get(k1)
	if err != nil {
		t.Fatalf("Get after reopen: %v", err)
	}
	if len(got) != len(want1) || !bytes.Equal(got, want1) {
		t.Fatalf("reopen payload mismatch: got %d bytes", len(got))
	}
	if s.Contains(k3) {
		t.Fatal("deleted key resurrected by replay")
	}
	// The store must stay writable after a replayed open.
	if err := s.Put(BlobKey{ID: 9, Version: 1}, streamPayload(256)); err != nil {
		t.Fatalf("Put after reopen: %v", err)
	}
}

// TestMmapTornRecordTruncated: a record whose payload was damaged on
// disk (torn write) ends the usable prefix at replay — records before
// it survive, the damaged one and everything after are dropped, and
// the store appends cleanly over the dead tail.
func TestMmapTornRecordTruncated(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "mmap")
	s := openMmap(t, dir)
	k1 := BlobKey{ID: 1, Version: 1}
	k2 := BlobKey{ID: 2, Version: 1}
	if err := s.Put(k1, streamPayload(4_000)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	s.mu.RLock()
	tornStart := s.size // k2's record begins at the current append offset
	s.mu.RUnlock()
	if err := s.Put(k2, streamPayload(4_000)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Flip one byte inside the second record's payload on disk.
	path := filepath.Join(dir, arenaName(0))
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatalf("open arena: %v", err)
	}
	pos := tornStart + mmapHeaderLen + 100
	buf := make([]byte, 1)
	if _, err := f.ReadAt(buf, pos); err != nil {
		t.Fatalf("read arena: %v", err)
	}
	buf[0] ^= 0xFF
	if _, err := f.WriteAt(buf, pos); err != nil {
		t.Fatalf("corrupt arena: %v", err)
	}
	f.Close()

	s = openMmap(t, dir)
	defer s.Close()
	if !s.Contains(k1) {
		t.Fatal("intact record before the tear was lost")
	}
	if s.Contains(k2) {
		t.Fatal("torn record survived replay")
	}
	// The dead tail is append space again.
	if err := s.Put(k2, streamPayload(512)); err != nil {
		t.Fatalf("Put over dead tail: %v", err)
	}
	got, err := s.Get(k2)
	if err != nil || len(got) != 512 {
		t.Fatalf("Get after re-put: %v (%d bytes)", err, len(got))
	}
}

// TestMmapOpenFrameMismatch: Open's O(1) frame check surfaces header
// damage as core.ErrCorrupt instead of serving wrong bytes.
func TestMmapOpenFrameMismatch(t *testing.T) {
	s := openMmap(t, filepath.Join(t.TempDir(), "mmap"))
	defer s.Close()
	k := BlobKey{ID: 7, Version: 2}
	if err := s.Put(k, streamPayload(1_000)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	s.mu.Lock()
	loc := s.index[k]
	s.arena.data[loc.off-mmapHeaderLen] = 0x00 // scribble the magic byte
	s.mu.Unlock()
	_, err := s.Open(k)
	if !errors.Is(err, core.ErrCorrupt) {
		t.Fatalf("Open on damaged frame: err = %v, want ErrCorrupt", err)
	}
}

// TestMmapStreamSurvivesCompact: a zero-copy window opened before a
// compaction keeps serving its bytes — the retired arena stays mapped
// until the reader closes, and only then is its file unlinked.
func TestMmapStreamSurvivesCompact(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "mmap")
	s := openMmap(t, dir)
	defer s.Close()
	k := BlobKey{ID: 1, Version: 1}
	churn := BlobKey{ID: 2, Version: 1}
	want := streamPayload(200_000)
	if err := s.Put(k, want); err != nil {
		t.Fatalf("Put: %v", err)
	}
	for i := 0; i < 8; i++ { // pile up garbage so MaybeCompact fires
		if err := s.Put(churn, streamPayload(100_000)); err != nil {
			t.Fatalf("Put churn: %v", err)
		}
	}

	r, err := s.Open(k)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	oldPath := filepath.Join(dir, arenaName(0))
	if err := s.MaybeCompact(); err != nil {
		t.Fatalf("MaybeCompact: %v", err)
	}
	if s.Compactions != 1 {
		t.Fatalf("Compactions = %d, want 1 (garbage ratio %v)", s.Compactions, s.GarbageRatio())
	}
	// Old arena file must survive while the reader pins its mapping.
	if _, err := os.Stat(oldPath); err != nil {
		t.Fatalf("old arena removed under live reader: %v", err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("read across compaction: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("bytes changed under compaction: got %d bytes", len(got))
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close reader: %v", err)
	}
	if _, err := os.Stat(oldPath); !os.IsNotExist(err) {
		t.Fatalf("old arena not unlinked after reader drained: %v", err)
	}
	// The compacted store still round-trips.
	got, err = s.Get(k)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("Get after compaction: %v (%d bytes)", err, len(got))
	}
}

// TestMmapStreamSurvivesGrowth: a window into the old, smaller mapping
// stays valid while appends force the arena to grow and remap.
func TestMmapStreamSurvivesGrowth(t *testing.T) {
	s := openMmap(t, filepath.Join(t.TempDir(), "mmap"))
	defer s.Close()
	k := BlobKey{ID: 1, Version: 1}
	want := streamPayload(4_096)
	if err := s.Put(k, want); err != nil {
		t.Fatalf("Put: %v", err)
	}
	r, err := s.Open(k)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// Push well past the 1MB minimum arena so ensureLocked remaps.
	big := streamPayload(600_000)
	for i := 0; i < 4; i++ {
		if err := s.Put(BlobKey{ID: core.ObjectID(10 + i), Version: 1}, big); err != nil {
			t.Fatalf("Put big: %v", err)
		}
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("read across growth: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("bytes changed under growth remap: got %d bytes", len(got))
	}
	r.Close()
}
