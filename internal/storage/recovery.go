package storage

import (
	"bytes"
	"fmt"

	"cbfww/internal/core"
)

// RecoveryReport summarizes a Recover run after tier failures.
type RecoveryReport struct {
	// Restored counts copies recreated from surviving replicas.
	Restored int
	// Stale counts restorations whose best surviving replica was older
	// than the object's current version (tertiary backups lag).
	Stale int
	// Lost counts objects with no surviving full copy anywhere.
	Lost int
}

// DropTier simulates the failure of one tier: every copy there vanishes,
// metadata and bytes both. Dropping the anchor is allowed (a tape library
// can burn down too).
func (m *Manager) DropTier(t Tier) error {
	if t < 0 || t >= m.numTiers() {
		return fmt.Errorf("storage: drop: %w: tier %d", core.ErrInvalid, int(t))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for id, o := range m.objects {
		if o.copies[t].present {
			o.copies[t] = copyState{}
			if t == 0 {
				m.noteMemLocked(id)
			}
		}
	}
	// A failed tier has no surviving blobs either.
	for _, k := range m.backends[t].Keys() {
		m.backends[t].Delete(k)
	}
	m.used[t] = 0
	return nil
}

// Recover rebuilds the placement from surviving copies: each object is
// restored to the tiers its priority earns, sourcing content from its best
// surviving replica. Objects with no surviving full copy are dropped from
// the manager entirely (and counted Lost) — the warehouse must refetch
// them from the origin.
func (m *Manager) Recover() RecoveryReport {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.recoverLocked()
}

// recoverLocked is the shared body of Recover and RecoverFromDisk.
// Requires m.mu.
func (m *Manager) recoverLocked() RecoveryReport {
	var rep RecoveryReport
	anchor := m.last()

	for id, o := range m.objects {
		if o.hasPayload {
			// A copy whose bytes are gone is no copy at all: trust the
			// backends over the metadata (the metadata may have outlived a
			// crash the bytes did not).
			for t := Tier(0); t < m.numTiers(); t++ {
				c := &o.copies[t]
				if c.present && !m.backends[t].Contains(c.key(id)) {
					m.used[t] -= o.footprint(t, m.cfg.SummaryRatio)
					*c = copyState{}
					if t == 0 {
						m.noteMemLocked(id)
					}
				}
			}
		}
		bestVersion := -1
		for t := Tier(0); t < m.numTiers(); t++ {
			c := o.copies[t]
			if c.present && !c.summaryOnly && c.version > bestVersion {
				bestVersion = c.version
			}
		}
		if bestVersion < 0 {
			// No full copy survived anywhere.
			for t := Tier(0); t < m.numTiers(); t++ {
				m.used[t] -= o.footprint(t, m.cfg.SummaryRatio)
				if o.hasPayload && o.copies[t].present {
					m.backends[t].Delete(o.copies[t].key(id))
				}
			}
			if o.copies[Memory].present {
				m.noteMemLocked(id)
			}
			delete(m.objects, id)
			rep.Lost++
			continue
		}
		if bestVersion < o.version {
			rep.Stale++
			// The stale replica becomes the authoritative content: the
			// newer version is gone. Surviving summaries of the lost newer
			// content are dropped (payload: their bytes describe content
			// that no longer exists) or refreshed from the restored body.
			o.version = bestVersion
			for t := Tier(0); t < m.numTiers(); t++ {
				c := &o.copies[t]
				if !c.present || c.version <= bestVersion {
					continue
				}
				if o.hasPayload {
					m.used[t] -= o.footprint(t, m.cfg.SummaryRatio)
					m.backends[t].Delete(c.key(id))
					*c = copyState{}
					if t == 0 {
						m.noteMemLocked(id)
					}
				} else {
					c.version = bestVersion
				}
			}
		}
		// Ensure the anchor copy exists so placement invariants hold.
		if !o.copies[anchor].present {
			if o.hasPayload {
				data, ver, ok := m.readFullLocked(o)
				if !ok {
					continue // unreachable: bestVersion proved a readable copy
				}
				if err := m.backends[anchor].Put(BlobKey{ID: id, Version: ver}, data); err != nil {
					continue
				}
				o.copies[anchor] = copyState{present: true, version: ver}
			} else {
				o.copies[anchor] = copyState{present: true, version: bestVersion}
			}
			rep.Restored++
		}
	}
	// Recompute the anchor's usage from scratch (objects may have been lost).
	var bottom core.Bytes
	for _, o := range m.objects {
		if o.copies[anchor].present {
			bottom += o.size
		}
	}
	m.used[anchor] = bottom

	// Re-place: promotions here are the restorations of fast copies.
	before := m.stats.Migrations
	m.placeLocked()
	rep.Restored += m.stats.Migrations - before
	return rep
}

// CheckInvariants verifies the copy-control and capacity invariants; it
// returns nil when all hold. Tests and property checks call this after
// every mutation sequence. The Figure-3 rules generalize to any tier
// table: a copy at finite tier t requires a copy at t+1, and a full copy
// at tier t is an exact (same-version, byte-identical) duplicate of the
// t+1 copy — except across the anchor boundary, where the backup "may not
// be an exact copy due to the periodical back-up process". For
// payload-carrying objects it additionally verifies that every advertised
// copy's bytes exist in its tier backend.
func (m *Manager) CheckInvariants() error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	anchor := m.last()
	recount := make([]core.Bytes, len(m.tiers))
	for id, o := range m.objects {
		resident := false
		for t := Tier(0); t < m.numTiers(); t++ {
			c := o.copies[t]
			if !c.present {
				continue
			}
			resident = true
			if c.version > o.version {
				return fmt.Errorf("storage: %v has copy newer than current version at %s", id, m.TierName(t))
			}
			recount[t] += o.footprint(t, m.cfg.SummaryRatio)
		}
		if !resident {
			return fmt.Errorf("storage: %v resident nowhere", id)
		}
		for t := Tier(0); t < anchor-1; t++ {
			c, next := o.copies[t], o.copies[t+1]
			if !c.present {
				continue
			}
			if !next.present {
				return fmt.Errorf("storage: %v at %s without %s copy", id, m.TierName(t), m.TierName(t+1))
			}
			if !c.summaryOnly {
				if next.summaryOnly {
					return fmt.Errorf("storage: %v full at %s over summary at %s", id, m.TierName(t), m.TierName(t+1))
				}
				if c.version != next.version {
					return fmt.Errorf("storage: %v %s v%d != %s v%d (exact-copy rule)", id, m.TierName(t), c.version, m.TierName(t+1), next.version)
				}
			}
		}
		if o.hasPayload {
			for t := Tier(0); t < m.numTiers(); t++ {
				if c := o.copies[t]; c.present && !m.backends[t].Contains(c.key(id)) {
					return fmt.Errorf("storage: %v copy at %s has no bytes (%v)", id, m.TierName(t), c.key(id))
				}
			}
			for t := Tier(0); t < anchor-1; t++ {
				c, next := o.copies[t], o.copies[t+1]
				if !c.present || c.summaryOnly {
					continue
				}
				a, err1 := m.backends[t].Get(c.key(id))
				b, err2 := m.backends[t+1].Get(next.key(id))
				if err1 != nil || err2 != nil {
					return fmt.Errorf("storage: %v exact-copy bytes unreadable: %v / %v", id, err1, err2)
				}
				if !bytes.Equal(a, b) {
					return fmt.Errorf("storage: %v %s bytes differ from %s bytes (exact-copy rule)", id, m.TierName(t), m.TierName(t+1))
				}
			}
		}
	}
	for t := Tier(0); t < anchor; t++ {
		if recount[t] != m.used[t] {
			return fmt.Errorf("storage: %s accounting %v != recount %v", m.TierName(t), m.used[t], recount[t])
		}
		if m.used[t] > m.tiers[t].Capacity {
			return fmt.Errorf("storage: %s over capacity: %v > %v", m.TierName(t), m.used[t], m.tiers[t].Capacity)
		}
	}
	return nil
}
