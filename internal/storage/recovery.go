package storage

import (
	"bytes"
	"fmt"

	"cbfww/internal/core"
)

// RecoveryReport summarizes a Recover run after tier failures.
type RecoveryReport struct {
	// Restored counts copies recreated from surviving replicas.
	Restored int
	// Stale counts restorations whose best surviving replica was older
	// than the object's current version (tertiary backups lag).
	Stale int
	// Lost counts objects with no surviving full copy anywhere.
	Lost int
}

// DropTier simulates the failure of one tier: every copy there vanishes,
// metadata and bytes both. Dropping Tertiary is allowed (a tape library
// can burn down too).
func (m *Manager) DropTier(t Tier) error {
	if t < Memory || t >= numTiers {
		return fmt.Errorf("storage: drop: %w: tier %d", core.ErrInvalid, int(t))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for id, o := range m.objects {
		if o.copies[t].present {
			o.copies[t] = copyState{}
			if t == Memory {
				m.noteMemLocked(id)
			}
		}
	}
	// A failed tier has no surviving blobs either.
	for _, k := range m.backends[t].Keys() {
		m.backends[t].Delete(k)
	}
	m.used[t] = 0
	return nil
}

// Recover rebuilds the placement from surviving copies: each object is
// restored to the tiers its priority earns, sourcing content from its best
// surviving replica. Objects with no surviving full copy are dropped from
// the manager entirely (and counted Lost) — the warehouse must refetch
// them from the origin.
func (m *Manager) Recover() RecoveryReport {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.recoverLocked()
}

// recoverLocked is the shared body of Recover and RecoverFromDisk.
// Requires m.mu.
func (m *Manager) recoverLocked() RecoveryReport {
	var rep RecoveryReport

	for id, o := range m.objects {
		if o.hasPayload {
			// A copy whose bytes are gone is no copy at all: trust the
			// backends over the metadata (the metadata may have outlived a
			// crash the bytes did not).
			for t := Memory; t < numTiers; t++ {
				c := &o.copies[t]
				if c.present && !m.backends[t].Contains(c.key(id)) {
					m.used[t] -= o.footprint(t, m.cfg.SummaryRatio)
					*c = copyState{}
					if t == Memory {
						m.noteMemLocked(id)
					}
				}
			}
		}
		bestVersion := -1
		for t := Memory; t < numTiers; t++ {
			c := o.copies[t]
			if c.present && !c.summaryOnly && c.version > bestVersion {
				bestVersion = c.version
			}
		}
		if bestVersion < 0 {
			// No full copy survived anywhere.
			for t := Memory; t < numTiers; t++ {
				m.used[t] -= o.footprint(t, m.cfg.SummaryRatio)
				if o.hasPayload && o.copies[t].present {
					m.backends[t].Delete(o.copies[t].key(id))
				}
			}
			if o.copies[Memory].present {
				m.noteMemLocked(id)
			}
			delete(m.objects, id)
			rep.Lost++
			continue
		}
		if bestVersion < o.version {
			rep.Stale++
			// The stale replica becomes the authoritative content: the
			// newer version is gone. Surviving summaries of the lost newer
			// content are dropped (payload: their bytes describe content
			// that no longer exists) or refreshed from the restored body.
			o.version = bestVersion
			for t := Memory; t < numTiers; t++ {
				c := &o.copies[t]
				if !c.present || c.version <= bestVersion {
					continue
				}
				if o.hasPayload {
					m.used[t] -= o.footprint(t, m.cfg.SummaryRatio)
					m.backends[t].Delete(c.key(id))
					*c = copyState{}
					if t == Memory {
						m.noteMemLocked(id)
					}
				} else {
					c.version = bestVersion
				}
			}
		}
		// Ensure the tertiary anchor exists so placement invariants hold.
		if !o.copies[Tertiary].present {
			if o.hasPayload {
				data, ver, ok := m.readFullLocked(o)
				if !ok {
					continue // unreachable: bestVersion proved a readable copy
				}
				if err := m.backends[Tertiary].Put(BlobKey{ID: id, Version: ver}, data); err != nil {
					continue
				}
				o.copies[Tertiary] = copyState{present: true, version: ver}
			} else {
				o.copies[Tertiary] = copyState{present: true, version: bestVersion}
			}
			rep.Restored++
		}
	}
	// Recompute used[Tertiary] from scratch (objects may have been lost).
	var tert core.Bytes
	for _, o := range m.objects {
		if o.copies[Tertiary].present {
			tert += o.size
		}
	}
	m.used[Tertiary] = tert

	// Re-place: promotions here are the restorations of fast copies.
	before := m.stats.Migrations
	m.placeLocked()
	rep.Restored += m.stats.Migrations - before
	return rep
}

// CheckInvariants verifies the copy-control and capacity invariants; it
// returns nil when all hold. Tests and property checks call this after
// every mutation sequence. For payload-carrying objects it additionally
// verifies that every advertised copy's bytes exist in its tier backend
// and that the memory tier's full copies are byte-exact duplicates of
// their disk copies.
func (m *Manager) CheckInvariants() error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var mem, disk core.Bytes
	for id, o := range m.objects {
		cm, cd, ct := o.copies[Memory], o.copies[Disk], o.copies[Tertiary]
		if cm.present && !cd.present {
			return fmt.Errorf("storage: %v in memory without disk copy", id)
		}
		if cm.present && !cm.summaryOnly {
			if cd.summaryOnly {
				return fmt.Errorf("storage: %v full in memory over summary on disk", id)
			}
			if cm.version != cd.version {
				return fmt.Errorf("storage: %v memory v%d != disk v%d (exact-copy rule)", id, cm.version, cd.version)
			}
		}
		if cm.present && cm.version > o.version || cd.present && cd.version > o.version || ct.present && ct.version > o.version {
			return fmt.Errorf("storage: %v has copy newer than current version", id)
		}
		if !cm.present && !cd.present && !ct.present {
			return fmt.Errorf("storage: %v resident nowhere", id)
		}
		if o.hasPayload {
			for t := Memory; t < numTiers; t++ {
				if c := o.copies[t]; c.present && !m.backends[t].Contains(c.key(id)) {
					return fmt.Errorf("storage: %v copy at %v has no bytes (%v)", id, t, c.key(id))
				}
			}
			if cm.present && !cm.summaryOnly {
				a, err1 := m.backends[Memory].Get(cm.key(id))
				b, err2 := m.backends[Disk].Get(cd.key(id))
				if err1 != nil || err2 != nil {
					return fmt.Errorf("storage: %v exact-copy bytes unreadable: %v / %v", id, err1, err2)
				}
				if !bytes.Equal(a, b) {
					return fmt.Errorf("storage: %v memory bytes differ from disk bytes (exact-copy rule)", id)
				}
			}
		}
		mem += o.footprint(Memory, m.cfg.SummaryRatio)
		disk += o.footprint(Disk, m.cfg.SummaryRatio)
	}
	if mem != m.used[Memory] {
		return fmt.Errorf("storage: memory accounting %v != recount %v", m.used[Memory], mem)
	}
	if disk != m.used[Disk] {
		return fmt.Errorf("storage: disk accounting %v != recount %v", m.used[Disk], disk)
	}
	if m.used[Memory] > m.cfg.MemCapacity {
		return fmt.Errorf("storage: memory over capacity: %v > %v", m.used[Memory], m.cfg.MemCapacity)
	}
	if m.used[Disk] > m.cfg.DiskCapacity {
		return fmt.Errorf("storage: disk over capacity: %v > %v", m.used[Disk], m.cfg.DiskCapacity)
	}
	return nil
}
