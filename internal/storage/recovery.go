package storage

import (
	"fmt"

	"cbfww/internal/core"
)

// RecoveryReport summarizes a Recover run after tier failures.
type RecoveryReport struct {
	// Restored counts copies recreated from surviving replicas.
	Restored int
	// Stale counts restorations whose best surviving replica was older
	// than the object's current version (tertiary backups lag).
	Stale int
	// Lost counts objects with no surviving full copy anywhere.
	Lost int
}

// DropTier simulates the failure of one tier: every copy there vanishes.
// Dropping Tertiary is allowed (a tape library can burn down too).
func (m *Manager) DropTier(t Tier) error {
	if t < Memory || t >= numTiers {
		return fmt.Errorf("storage: drop: %w: tier %d", core.ErrInvalid, int(t))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for id, o := range m.objects {
		if o.copies[t].present {
			o.copies[t] = copyState{}
			if t == Memory {
				m.noteMemLocked(id)
			}
		}
	}
	m.used[t] = 0
	return nil
}

// Recover rebuilds the placement from surviving copies: each object is
// restored to the tiers its priority earns, sourcing content from its best
// surviving replica. Objects with no surviving full copy are dropped from
// the manager entirely (and counted Lost) — the warehouse must refetch
// them from the origin.
func (m *Manager) Recover() RecoveryReport {
	m.mu.Lock()
	defer m.mu.Unlock()
	var rep RecoveryReport

	for id, o := range m.objects {
		bestVersion := -1
		for t := Memory; t < numTiers; t++ {
			c := o.copies[t]
			if c.present && !c.summaryOnly && c.version > bestVersion {
				bestVersion = c.version
			}
		}
		if bestVersion < 0 {
			// No full copy survived anywhere.
			for t := Memory; t < numTiers; t++ {
				m.used[t] -= o.footprint(t, m.cfg.SummaryRatio)
			}
			if o.copies[Memory].present {
				m.noteMemLocked(id)
			}
			delete(m.objects, id)
			rep.Lost++
			continue
		}
		if bestVersion < o.version {
			rep.Stale++
			// The stale replica becomes the authoritative content: the
			// newer version is gone. Surviving summaries of the lost newer
			// content are refreshed from the restored body.
			o.version = bestVersion
			for t := Memory; t < numTiers; t++ {
				if c := &o.copies[t]; c.present && c.version > bestVersion {
					c.version = bestVersion
				}
			}
		}
		// Ensure the tertiary anchor exists so placement invariants hold.
		if !o.copies[Tertiary].present {
			o.copies[Tertiary] = copyState{present: true, version: bestVersion}
			rep.Restored++
		}
	}
	// Recompute used[Tertiary] from scratch (objects may have been lost).
	var tert core.Bytes
	for _, o := range m.objects {
		if o.copies[Tertiary].present {
			tert += o.size
		}
	}
	m.used[Tertiary] = tert

	// Re-place: promotions here are the restorations of fast copies.
	before := m.stats.Migrations
	m.placeLocked()
	rep.Restored += m.stats.Migrations - before
	return rep
}

// CheckInvariants verifies the copy-control and capacity invariants; it
// returns nil when all hold. Tests and property checks call this after
// every mutation sequence.
func (m *Manager) CheckInvariants() error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var mem, disk core.Bytes
	for id, o := range m.objects {
		cm, cd, ct := o.copies[Memory], o.copies[Disk], o.copies[Tertiary]
		if cm.present && !cd.present {
			return fmt.Errorf("storage: %v in memory without disk copy", id)
		}
		if cm.present && !cm.summaryOnly {
			if cd.summaryOnly {
				return fmt.Errorf("storage: %v full in memory over summary on disk", id)
			}
			if cm.version != cd.version {
				return fmt.Errorf("storage: %v memory v%d != disk v%d (exact-copy rule)", id, cm.version, cd.version)
			}
		}
		if cm.present && cm.version > o.version || cd.present && cd.version > o.version || ct.present && ct.version > o.version {
			return fmt.Errorf("storage: %v has copy newer than current version", id)
		}
		if !cm.present && !cd.present && !ct.present {
			return fmt.Errorf("storage: %v resident nowhere", id)
		}
		mem += o.footprint(Memory, m.cfg.SummaryRatio)
		disk += o.footprint(Disk, m.cfg.SummaryRatio)
	}
	if mem != m.used[Memory] {
		return fmt.Errorf("storage: memory accounting %v != recount %v", m.used[Memory], mem)
	}
	if disk != m.used[Disk] {
		return fmt.Errorf("storage: disk accounting %v != recount %v", m.used[Disk], disk)
	}
	if m.used[Memory] > m.cfg.MemCapacity {
		return fmt.Errorf("storage: memory over capacity: %v > %v", m.used[Memory], m.cfg.MemCapacity)
	}
	if m.used[Disk] > m.cfg.DiskCapacity {
		return fmt.Errorf("storage: disk over capacity: %v > %v", m.used[Disk], m.cfg.DiskCapacity)
	}
	return nil
}
