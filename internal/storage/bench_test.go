package storage

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"cbfww/internal/core"
)

// benchSizes spans the payload spectrum: the original small-object shape
// plus large bodies where per-byte costs (disk reads, segment-log seeks,
// copies) dominate the fixed per-fetch overhead.
var benchSizes = []struct {
	label string
	bytes int64
}{
	{"64B", 64},
	{"64KB", 64 << 10},
	{"1MB", 1 << 20},
	{"4MB", 4 << 20},
}

// BenchmarkAccessByTier measures Fetch cost per serving tier and payload
// size, for both the all-in-heap backends and the real file-backed ones
// (`make bench-store`). The fixture pins one payload object per tier by
// priority: high lands a full copy in memory, middling stops at disk,
// and a floor-priority object crowded out of both is served from the
// tertiary segment log. Capacities scale with the payload (memory holds
// one object, disk two) so the pinning works at every size.
func BenchmarkAccessByTier(b *testing.B) {
	for _, backing := range []string{"heap", "disk", "mmap"} {
		for _, size := range benchSizes {
			cfg := Config{
				MemCapacity:  core.Bytes(size.bytes),
				DiskCapacity: core.Bytes(2 * size.bytes),
				MemLatency:   0, DiskLatency: 10, TertiaryLatency: 100,
				SummaryRatio:     0.1,
				SummaryThreshold: 1, // no "large documents": full copies only
			}
			switch backing {
			case "disk":
				cfg.DataDir = b.TempDir()
			case "mmap":
				// Same three-level shape, middle tier on the arena store: its
				// rows land between heap and per-file disk in cost.
				cfg.DataDir = b.TempDir()
				cfg.Tiers = []TierSpec{
					{Name: "memory", Backend: "heap", Capacity: cfg.MemCapacity, Latency: cfg.MemLatency},
					{Name: "mmap", Backend: "mmap", Capacity: cfg.DiskCapacity, Latency: cfg.DiskLatency},
					{Name: "tertiary", Backend: "segment", Capacity: 0, Latency: cfg.TertiaryLatency},
				}
			}
			m, err := NewManager(cfg)
			if err != nil {
				b.Fatal(err)
			}
			payload := func(i int) []byte {
				return bytes.Repeat([]byte{byte('a' + i)}, int(size.bytes))
			}
			// One object per tier: the top-priority object fills memory, the
			// next fills the rest of disk, the third has nowhere fast to live.
			ids := map[Tier]core.ObjectID{Memory: 1, Disk: 2, Tertiary: 3}
			for i, prio := range []core.Priority{0.9, 0.5, 0.1} {
				if err := m.AdmitBytes(core.ObjectID(i+1), core.Bytes(size.bytes), 1, prio, payload(i)); err != nil {
					b.Fatal(err)
				}
			}
			for tier, id := range ids {
				res, _, err := m.Fetch(id)
				if err != nil || res.Tier != tier {
					b.Fatalf("fixture: object %v served from %v (err %v), want %v", id, res.Tier, err, tier)
				}
			}
			for tier := Memory; tier < numTiers; tier++ {
				id := ids[tier]
				b.Run(fmt.Sprintf("backing=%s/size=%s/tier=%s/mode=fetch", backing, size.label, m.TierName(tier)), func(b *testing.B) {
					b.ReportAllocs()
					b.SetBytes(size.bytes)
					for i := 0; i < b.N; i++ {
						if _, _, err := m.Fetch(id); err != nil {
							b.Fatal(err)
						}
					}
				})
				// The streaming rows move the same bytes through Open +
				// WriteTo instead of materializing a []byte: B/op must stay
				// flat as the payload grows, on every backend.
				b.Run(fmt.Sprintf("backing=%s/size=%s/tier=%s/mode=stream", backing, size.label, m.TierName(tier)), func(b *testing.B) {
					b.ReportAllocs()
					b.SetBytes(size.bytes)
					for i := 0; i < b.N; i++ {
						_, br, err := m.FetchStream(id)
						if err != nil {
							b.Fatal(err)
						}
						if _, err := br.WriteTo(io.Discard); err != nil {
							b.Fatal(err)
						}
						br.Close()
					}
				})
			}
			m.Close()
		}
	}
}
