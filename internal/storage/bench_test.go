package storage

import (
	"fmt"
	"testing"

	"cbfww/internal/core"
)

// BenchmarkAccessByTier measures Fetch cost per serving tier, for both
// the all-in-heap backends and the real file-backed ones (`make
// bench-store`). The fixture pins one payload object per tier by
// priority: high lands a full copy in memory, middling stops at disk,
// and a floor-priority object crowded out of both is served from the
// tertiary segment log.
func BenchmarkAccessByTier(b *testing.B) {
	for _, backing := range []string{"heap", "disk"} {
		cfg := Config{
			MemCapacity:  64,
			DiskCapacity: 128,
			MemLatency:   0, DiskLatency: 10, TertiaryLatency: 100,
			SummaryRatio:     0.1,
			SummaryThreshold: 1, // no "large documents": full copies only
		}
		if backing == "disk" {
			cfg.DataDir = b.TempDir()
		}
		m, err := NewManager(cfg)
		if err != nil {
			b.Fatal(err)
		}
		payload := func(i int) []byte { return []byte(fmt.Sprintf("benchmark payload body %02d", i)) }
		// 64-byte memory / 128-byte disk targets with 64-byte objects: the
		// top-priority object fills memory, the next fills the rest of
		// disk, the third has nowhere fast to live.
		ids := map[Tier]core.ObjectID{Memory: 1, Disk: 2, Tertiary: 3}
		for i, prio := range []core.Priority{0.9, 0.5, 0.1} {
			if err := m.AdmitBytes(core.ObjectID(i+1), 64, 1, prio, payload(i)); err != nil {
				b.Fatal(err)
			}
		}
		for tier, id := range ids {
			res, _, err := m.Fetch(id)
			if err != nil || res.Tier != tier {
				b.Fatalf("fixture: object %v served from %v (err %v), want %v", id, res.Tier, err, tier)
			}
		}
		for tier := Memory; tier < numTiers; tier++ {
			id := ids[tier]
			b.Run(fmt.Sprintf("backing=%s/tier=%s", backing, tier), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, _, err := m.Fetch(id); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		m.Close()
	}
}
