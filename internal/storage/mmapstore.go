package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"unsafe"

	"cbfww/internal/core"
)

// MmapStore is the byte-addressable BlobStore backing the "warm" tier
// between heap and per-file disk: the NVM-shaped level of the dynamic
// hierarchy. All blobs live in one append-only arena file mapped
// MAP_SHARED into the address space, so a read is a load from the
// mapping — no syscall, no page-cache copy into user space — while the
// bytes still survive the process (the kernel writes dirty pages back;
// Sync forces it with msync).
//
// Record layout is the segment store's, with a distinct magic:
//
//	magic(1)=0xCB kind(1) summary(1) id(8) version(4) length(4) payload crc32(4)
//
// CRCs are verified once, at replay on open — the store's integrity
// premise is the mapping's (memory-like), so Open does only an O(1)
// frame check and hands out a zero-copy window into the arena. That
// keeps a 4MB stream the same cost as a 64B one.
//
// Overwrites and deletes append (fresh record / tombstone), so garbage
// accumulates; Compact rewrites the live set into a new arena
// generation (arena-%06d.dat) via the temp+rename protocol and retires
// the old mapping — kept mapped until every in-flight reader window
// drains, so compaction never invalidates a handed-out slice.
type MmapStore struct {
	dir string

	mu    sync.RWMutex
	f     *os.File // active arena file
	gen   int      // active arena generation
	arena *mmapArena
	size  int64 // append offset (bytes used)
	fcap  int64 // file/mapping capacity
	index map[BlobKey]mmapLoc
	// live/dead record bytes (including frames), for the garbage ratio.
	liveBytes, deadBytes int64
	// Compactions counts completed compaction passes (for tests/stats).
	Compactions int

	// refMu guards reader refcounts and retirement across all arenas.
	refMu sync.Mutex
}

type mmapLoc struct {
	off int64 // payload offset within the arena
	n   int   // payload length
}

// mmapArena is one mapping of one arena file. Readers pin it; a retired
// arena (superseded by growth or compaction) is unmapped — and, when it
// owns the file, closed and unlinked — once the last reader drains.
type mmapArena struct {
	data    []byte
	refs    int
	retired bool
	f       *os.File // non-nil when this arena owns the file handle
	unlink  string   // non-empty: remove the file at drain
}

const (
	mmapMagic      = 0xCB
	mmapMinArena   = 1 << 20 // 1 MB initial/minimum mapping
	mmapHeaderLen  = segHeaderLen
	mmapTrailerLen = segTrailerLen
)

func arenaName(gen int) string { return fmt.Sprintf("arena-%06d.dat", gen) }

// OpenMmapStore opens (creating if needed) an mmap arena store in dir,
// replaying the newest arena generation to rebuild the key index. A
// damaged tail (torn by a crash mid-append) is truncated away; stale
// generations and temp files left by an interrupted compaction are
// removed — the rename into the generation name is the commit point.
func OpenMmapStore(dir string) (*MmapStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: open mmap store: %w", err)
	}
	s := &MmapStore{dir: dir, index: make(map[BlobKey]mmapLoc)}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("storage: open mmap store: %w", err)
	}
	gens := []int(nil)
	for _, e := range ents {
		var g int
		if _, err := fmt.Sscanf(e.Name(), "arena-%06d.dat", &g); err == nil {
			gens = append(gens, g)
		} else if strings.HasPrefix(e.Name(), ".arena-") {
			os.Remove(filepath.Join(dir, e.Name())) // interrupted compaction temp
		}
	}
	sort.Ints(gens)
	for _, g := range gens[:max(0, len(gens)-1)] {
		os.Remove(filepath.Join(dir, arenaName(g))) // superseded by a committed compaction
	}
	if len(gens) > 0 {
		s.gen = gens[len(gens)-1]
	}
	path := filepath.Join(dir, arenaName(s.gen))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open mmap store: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: open mmap store: %w", err)
	}
	s.fcap = fi.Size()
	if s.fcap < mmapMinArena {
		s.fcap = mmapMinArena
		if err := f.Truncate(s.fcap); err != nil {
			f.Close()
			return nil, fmt.Errorf("storage: open mmap store: %w", err)
		}
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(s.fcap), syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: mmap arena: %w", err)
	}
	s.f = f
	s.arena = &mmapArena{data: data}
	s.replay()
	return s, nil
}

// replay scans the arena's intact record prefix, rebuilding the index.
// The first record that fails to parse or checksum ends the usable data
// (a crashed writer only damages the tail); everything past it is dead
// space the next append overwrites.
func (s *MmapStore) replay() {
	data := s.arena.data
	var off int64
	for off+mmapHeaderLen <= s.fcap {
		hdr := data[off : off+mmapHeaderLen]
		if hdr[0] != mmapMagic || (hdr[1] != segKindPut && hdr[1] != segKindDelete) {
			break
		}
		k := BlobKey{
			ID:      core.ObjectID(binary.BigEndian.Uint64(hdr[3:11])),
			Version: int(binary.BigEndian.Uint32(hdr[11:15])),
			Summary: hdr[2] == 1,
		}
		length := int64(binary.BigEndian.Uint32(hdr[15:19]))
		if off+mmapHeaderLen+length+mmapTrailerLen > s.fcap {
			break
		}
		payload := data[off+mmapHeaderLen : off+mmapHeaderLen+length]
		crc := crc32.NewIEEE()
		crc.Write(hdr)
		crc.Write(payload)
		if binary.BigEndian.Uint32(data[off+mmapHeaderLen+length:]) != crc.Sum32() {
			break
		}
		recLen := mmapHeaderLen + length + mmapTrailerLen
		if old, ok := s.index[k]; ok {
			oldRec := int64(mmapHeaderLen + old.n + mmapTrailerLen)
			s.liveBytes -= oldRec
			s.deadBytes += oldRec
		}
		switch hdr[1] {
		case segKindPut:
			s.index[k] = mmapLoc{off: off + mmapHeaderLen, n: int(length)}
			s.liveBytes += recLen
		case segKindDelete:
			delete(s.index, k)
			s.deadBytes += recLen
		}
		off += recLen
	}
	s.size = off
}

// retireLocked marks the given arena superseded; it is torn down
// immediately if no reader pins it. Callers hold s.mu.
func (s *MmapStore) retireLocked(a *mmapArena) {
	s.refMu.Lock()
	a.retired = true
	drain := a.refs == 0
	s.refMu.Unlock()
	if drain {
		teardownArena(a)
	}
}

// teardownArena unmaps a drained arena and releases the file it owns.
// munmap is independent of the descriptor, so growth-superseded
// mappings (which own no file) tear down while the store keeps writing
// the same arena file through a newer, larger mapping.
func teardownArena(a *mmapArena) {
	syscall.Munmap(a.data)
	if a.f != nil {
		a.f.Close()
	}
	if a.unlink != "" {
		os.Remove(a.unlink)
	}
}

// acquireReader pins the active arena and returns its release hook.
func (s *MmapStore) acquireReader(a *mmapArena) func() {
	s.refMu.Lock()
	a.refs++
	s.refMu.Unlock()
	return func() {
		s.refMu.Lock()
		a.refs--
		drain := a.retired && a.refs == 0
		s.refMu.Unlock()
		if drain {
			teardownArena(a)
		}
	}
}

// ensureLocked grows the arena file and remaps it so at least n more
// bytes fit past the append offset. The old, smaller mapping of the
// same file is retired (unmapped once its readers drain); in-flight
// windows into it stay valid throughout.
func (s *MmapStore) ensureLocked(n int64) error {
	if s.size+n <= s.fcap {
		return nil
	}
	newCap := s.fcap * 2
	for newCap < s.size+n {
		newCap *= 2
	}
	if err := s.f.Truncate(newCap); err != nil {
		return fmt.Errorf("storage: grow mmap arena: %w", err)
	}
	data, err := syscall.Mmap(int(s.f.Fd()), 0, int(newCap), syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return fmt.Errorf("storage: remap arena: %w", err)
	}
	s.retireLocked(s.arena)
	s.arena = &mmapArena{data: data}
	s.fcap = newCap
	return nil
}

// frameLocked writes a record header+trailer around a payload already
// present at s.size+mmapHeaderLen, commits the index entry and advances
// the append offset. Callers hold s.mu and have ensured capacity.
func (s *MmapStore) frameLocked(kind byte, k BlobKey, n int64) {
	data := s.arena.data
	off := s.size
	hdr := data[off : off+mmapHeaderLen]
	hdr[0] = mmapMagic
	hdr[1] = kind
	hdr[2] = 0
	if k.Summary {
		hdr[2] = 1
	}
	binary.BigEndian.PutUint64(hdr[3:11], uint64(k.ID))
	binary.BigEndian.PutUint32(hdr[11:15], uint32(k.Version))
	binary.BigEndian.PutUint32(hdr[15:19], uint32(n))
	payload := data[off+mmapHeaderLen : off+mmapHeaderLen+n]
	crc := crc32.NewIEEE()
	crc.Write(hdr)
	crc.Write(payload)
	binary.BigEndian.PutUint32(data[off+mmapHeaderLen+n:], crc.Sum32())

	recLen := mmapHeaderLen + n + mmapTrailerLen
	if old, ok := s.index[k]; ok {
		oldRec := int64(mmapHeaderLen + old.n + mmapTrailerLen)
		s.deadBytes += oldRec
		s.liveBytes -= oldRec
	}
	switch kind {
	case segKindPut:
		s.index[k] = mmapLoc{off: off + mmapHeaderLen, n: int(n)}
		s.liveBytes += recLen
	case segKindDelete:
		delete(s.index, k)
		s.deadBytes += recLen
	}
	s.size += recLen
}

func (s *MmapStore) Put(k BlobKey, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := int64(len(data))
	if err := s.ensureLocked(mmapHeaderLen + n + mmapTrailerLen); err != nil {
		return fmt.Errorf("storage: mmap put %v: %w", k, err)
	}
	copy(s.arena.data[s.size+mmapHeaderLen:], data)
	s.frameLocked(segKindPut, k, n)
	return nil
}

// Get copies the payload out of the mapping. The copy is deliberate:
// callers (summarize hooks, heap-tier adoption in all-in-heap mode)
// may retain the slice past a compaction, and a retained window into a
// retired, unmapped arena would fault. Zero-copy reads go through Open.
func (s *MmapStore) Get(k BlobKey) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	loc, ok := s.index[k]
	if !ok {
		return nil, fmt.Errorf("storage: mmap get %v: %w", k, core.ErrNotFound)
	}
	data := make([]byte, loc.n)
	copy(data, s.arena.data[loc.off:loc.off+int64(loc.n)])
	return data, nil
}

// Open returns a zero-copy window into the mapping. The frame around
// the payload is checked in O(1) — magic, key identity, length — and a
// mismatch surfaces as core.ErrCorrupt; payload CRCs were verified at
// replay, and the mapping is memory, so there is no per-open scan. The
// window pins its arena: growth and compaction retire mappings but
// never unmap one under a live reader.
func (s *MmapStore) Open(k BlobKey) (BlobReader, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	loc, ok := s.index[k]
	if !ok {
		return nil, fmt.Errorf("storage: mmap open %v: %w", k, core.ErrNotFound)
	}
	hdr := s.arena.data[loc.off-mmapHeaderLen : loc.off]
	if hdr[0] != mmapMagic || hdr[1] != segKindPut ||
		core.ObjectID(binary.BigEndian.Uint64(hdr[3:11])) != k.ID ||
		int(binary.BigEndian.Uint32(hdr[11:15])) != k.Version ||
		(hdr[2] == 1) != k.Summary ||
		int(binary.BigEndian.Uint32(hdr[15:19])) != loc.n {
		return nil, fmt.Errorf("storage: mmap open %v: frame mismatch: %w", k, core.ErrCorrupt)
	}
	return &mmapReader{
		data:    s.arena.data[loc.off : loc.off+int64(loc.n)],
		release: s.acquireReader(s.arena),
	}, nil
}

// PutFrom streams n bytes from r straight into the mapping — the
// record's payload slot is the destination buffer, so the bytes land
// exactly once. Nothing is committed (index, offset) until the full
// payload has arrived, so a short read leaves the arena state clean.
func (s *MmapStore) PutFrom(k BlobKey, r io.Reader, n int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.ensureLocked(mmapHeaderLen + n + mmapTrailerLen); err != nil {
		return fmt.Errorf("storage: mmap put-from %v: %w", k, err)
	}
	window := s.arena.data[s.size+mmapHeaderLen : s.size+mmapHeaderLen+n]
	if _, err := io.ReadFull(r, window); err != nil {
		return fmt.Errorf("storage: mmap put-from %v: %w", k, err)
	}
	s.frameLocked(segKindPut, k, n)
	return nil
}

func (s *MmapStore) Delete(k BlobKey) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[k]; !ok {
		return nil
	}
	if err := s.ensureLocked(mmapHeaderLen + mmapTrailerLen); err != nil {
		return fmt.Errorf("storage: mmap delete %v: %w", k, err)
	}
	s.frameLocked(segKindDelete, k, 0)
	return nil
}

func (s *MmapStore) Contains(k BlobKey) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.index[k]
	return ok
}

func (s *MmapStore) Keys() []BlobKey {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]BlobKey, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	return keys
}

func (s *MmapStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Sync msyncs the mapping so dirty pages reach the arena file.
func (s *MmapStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := msync(s.arena.data); err != nil {
		return fmt.Errorf("storage: mmap sync: %w", err)
	}
	return syncDir(s.dir)
}

func (s *MmapStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.arena == nil {
		return nil
	}
	s.retireLocked(s.arena)
	s.arena = nil
	err := s.f.Close()
	s.f = nil
	return err
}

// GarbageRatio reports the dead fraction of all record bytes written.
func (s *MmapStore) GarbageRatio() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := s.liveBytes + s.deadBytes
	if total == 0 {
		return 0
	}
	return float64(s.deadBytes) / float64(total)
}

// MaybeCompact compacts when at least half the written bytes are
// garbage; Manager.Backup drives it, like the segment store's.
func (s *MmapStore) MaybeCompact() error {
	if s.GarbageRatio() > 0.5 {
		return s.Compact()
	}
	return nil
}

// Compact rewrites the live set into a fresh arena generation. The new
// arena is built in a temp file and renamed into its generation name —
// the commit point; a crash before the rename leaves the old arena
// authoritative, a crash after it leaves at most a stale old file that
// the next open removes. The old mapping is retired, not unmapped:
// in-flight reader windows keep their bytes until they Close.
func (s *MmapStore) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]BlobKey, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sortKeys(keys)
	need := int64(0)
	for _, k := range keys {
		need += mmapHeaderLen + int64(s.index[k].n) + mmapTrailerLen
	}
	newCap := int64(mmapMinArena)
	for newCap < need {
		newCap *= 2
	}
	tmp, err := os.CreateTemp(s.dir, ".arena-*")
	if err != nil {
		return fmt.Errorf("storage: mmap compact: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if err := tmp.Truncate(newCap); err != nil {
		tmp.Close()
		return fmt.Errorf("storage: mmap compact: %w", err)
	}
	data, err := syscall.Mmap(int(tmp.Fd()), 0, int(newCap), syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		tmp.Close()
		return fmt.Errorf("storage: mmap compact: %w", err)
	}
	oldArena, oldIndex := s.arena, s.index
	oldF, oldPath := s.f, filepath.Join(s.dir, arenaName(s.gen))
	oldSize, oldFcap := s.size, s.fcap
	oldLive, oldDead := s.liveBytes, s.deadBytes
	s.arena = &mmapArena{data: data}
	s.index = make(map[BlobKey]mmapLoc, len(keys))
	s.size, s.fcap = 0, newCap
	s.liveBytes, s.deadBytes = 0, 0
	for _, k := range keys {
		loc := oldIndex[k]
		copy(data[s.size+mmapHeaderLen:], oldArena.data[loc.off:loc.off+int64(loc.n)])
		s.frameLocked(segKindPut, k, int64(loc.n))
	}
	fail := func(err error) error {
		// Roll back to the old arena; the temp mapping is abandoned.
		syscall.Munmap(data)
		tmp.Close()
		s.arena, s.index = oldArena, oldIndex
		s.f = oldF
		s.size, s.fcap = oldSize, oldFcap
		s.liveBytes, s.deadBytes = oldLive, oldDead
		return fmt.Errorf("storage: mmap compact: %w", err)
	}
	if err := msync(data); err != nil {
		return fail(err)
	}
	newPath := filepath.Join(s.dir, arenaName(s.gen+1))
	if err := os.Rename(tmp.Name(), newPath); err != nil {
		return fail(err)
	}
	s.gen++
	s.f = tmp
	// The old arena owns its file now: close+unlink when readers drain.
	oldArena.f = oldF
	oldArena.unlink = oldPath
	s.retireLocked(oldArena)
	s.Compactions++
	return nil
}

// msync flushes a mapping's dirty pages synchronously. The syscall
// package has no wrapper, and pulling in x/sys for one call isn't
// worth it; addresses from Mmap are page-aligned as msync requires.
func msync(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	_, _, errno := syscall.Syscall(syscall.SYS_MSYNC,
		uintptr(unsafe.Pointer(&data[0])), uintptr(len(data)), uintptr(syscall.MS_SYNC))
	if errno != 0 {
		return errno
	}
	return nil
}

// mmapReader is the mmap tier's BlobReader: a cursor over the payload
// window in the arena mapping. WriteTo hands the remaining window to
// the destination in one Write — zero copies, zero allocations, flat
// cost from 64B to 4MB. Close releases the pin on the arena; a window
// must not be used after Close (the mapping may be gone).
type mmapReader struct {
	data    []byte
	off     int
	once    sync.Once
	release func()
}

func (r *mmapReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

func (r *mmapReader) WriteTo(w io.Writer) (int64, error) {
	if r.off >= len(r.data) {
		return 0, nil
	}
	n, err := w.Write(r.data[r.off:])
	r.off += n
	return int64(n), err
}

func (r *mmapReader) Len() int64 { return int64(len(r.data)) }

func (r *mmapReader) Close() error {
	r.once.Do(r.release)
	return nil
}
