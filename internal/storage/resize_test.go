package storage

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"

	"cbfww/internal/core"
)

// resizeTestManager disables the large-document summary path (threshold
// 1.0: nothing is "big") so placement is a pure water-fill and the
// resize assertions are about capacity, not levels of detail.
func resizeTestManager(t *testing.T) *Manager {
	t.Helper()
	m, err := NewManager(Config{
		MemCapacity:  100,
		DiskCapacity: 1000,
		MemLatency:   0, DiskLatency: 10, TertiaryLatency: 100,
		SummaryRatio:     0.1,
		SummaryThreshold: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

// Resize must re-run placement under the new capacities: objects that no
// longer fit in memory spill down the hierarchy instead of vanishing —
// the scenario matrix's capacity-shrink lever.
func TestResizeShrinkSpillsDown(t *testing.T) {
	m := resizeTestManager(t)
	for id := core.ObjectID(1); id <= 2; id++ {
		if err := m.Admit(id, 40, 1, 0.9); err != nil {
			t.Fatal(err)
		}
	}
	if tier, ok := m.Contains(1); !ok || tier != Memory {
		t.Fatalf("object 1 not in memory before resize")
	}

	if err := m.Resize(40, 1000); err != nil {
		t.Fatal(err)
	}
	if mem, disk := m.Capacities(); mem != 40 || disk != 1000 {
		t.Errorf("Capacities = %v, %v", mem, disk)
	}
	inMem := 0
	for id := core.ObjectID(1); id <= 2; id++ {
		tier, ok := m.Contains(id)
		if !ok {
			t.Fatalf("object %d lost by resize", id)
		}
		if tier == Memory {
			inMem++
		}
	}
	if inMem != 1 {
		t.Errorf("memory residents after shrink = %d, want 1", inMem)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Growing back re-promotes.
	if err := m.Resize(100, 1000); err != nil {
		t.Fatal(err)
	}
	for id := core.ObjectID(1); id <= 2; id++ {
		if tier, ok := m.Contains(id); !ok || tier != Memory {
			t.Errorf("object %d tier after grow = %v, %v", id, tier, ok)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestResizeRejectsNegative(t *testing.T) {
	m := resizeTestManager(t)
	if err := m.Resize(-1, 10); !errors.Is(err, core.ErrInvalid) {
		t.Errorf("negative mem err = %v", err)
	}
	if err := m.Resize(10, -1); !errors.Is(err, core.ErrInvalid) {
		t.Errorf("negative disk err = %v", err)
	}
}

// MovedBytes must account the bytes written into each tier: admission
// lands copies at every tier, a shrink-driven demotion deletes (moves
// nothing), and a re-promotion writes into memory again. The counters
// never decrease.
func TestMovedBytesAccounting(t *testing.T) {
	m := resizeTestManager(t)
	for id := core.ObjectID(1); id <= 2; id++ {
		if err := m.Admit(id, 40, 1, 0.9); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	for tier := Memory; tier <= Tertiary; tier++ {
		if st.MovedBytes[tier] < 80 {
			t.Errorf("moved[%v] = %v after two 40B admissions, want >= 80", tier, st.MovedBytes[tier])
		}
	}

	// Shrink: one object leaves memory — deletion, not movement.
	if err := m.Resize(40, 1000); err != nil {
		t.Fatal(err)
	}
	afterShrink := m.Stats()
	if afterShrink.MovedBytes[Memory] != st.MovedBytes[Memory] {
		t.Errorf("demotion moved memory bytes: %v -> %v", st.MovedBytes[Memory], afterShrink.MovedBytes[Memory])
	}

	// Grow: the demoted object is promoted back — a fresh memory write.
	if err := m.Resize(100, 1000); err != nil {
		t.Fatal(err)
	}
	afterGrow := m.Stats()
	if afterGrow.MovedBytes[Memory] < afterShrink.MovedBytes[Memory]+40 {
		t.Errorf("promotion did not count: %v -> %v", afterShrink.MovedBytes[Memory], afterGrow.MovedBytes[Memory])
	}
	for tier := Memory; tier <= Tertiary; tier++ {
		if afterGrow.MovedBytes[tier] < st.MovedBytes[tier] {
			t.Errorf("moved[%v] decreased: %v -> %v", tier, st.MovedBytes[tier], afterGrow.MovedBytes[tier])
		}
	}
}

// TestResizeDeltaSetOnly pins the incremental contract: shrinking a
// tier by X touches only the delta set — ≈X bytes (± one blob) of the
// lowest-priority residents demote, everything above the frontier
// stays put, and growing back re-promotes ≈X bytes. A full-sweep
// re-placement would churn far more than the delta.
func TestResizeDeltaSetOnly(t *testing.T) {
	m, err := NewManager(Config{
		MemCapacity:  1000,
		DiskCapacity: 100_000,
		MemLatency:   0, DiskLatency: 10, TertiaryLatency: 100,
		SummaryRatio:     0.1,
		SummaryThreshold: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Ten 100B payload objects, priorities strictly increasing with id:
	// ids 1..10 exactly fill memory, and the demotion frontier is ids 1..k.
	const blob = 100
	for id := core.ObjectID(1); id <= 10; id++ {
		payload := bytes.Repeat([]byte{byte(id)}, blob)
		if err := m.AdmitBytes(id, blob, 1, core.Priority(float64(id)/10), payload); err != nil {
			t.Fatal(err)
		}
	}
	if m.Used(Memory) != 1000 {
		t.Fatalf("memory used = %v, want 1000", m.Used(Memory))
	}
	before := m.Stats()

	// Shrink memory by 450B. The frontier demotes ids 1..5 (500B): the
	// smallest prefix of ascending-priority residents that fits.
	const shrinkX = 450
	if err := m.ResizeTiers(map[string]core.Bytes{"memory": 1000 - shrinkX}); err != nil {
		t.Fatal(err)
	}
	after := m.Stats()
	demoted := after.DemotedBytes[Memory] - before.DemotedBytes[Memory]
	if demoted < shrinkX || demoted >= shrinkX+blob {
		t.Errorf("shrink by %d demoted %v bytes, want [%d, %d)", shrinkX, demoted, shrinkX, shrinkX+blob)
	}
	if after.MovedBytes[Memory] != before.MovedBytes[Memory] {
		t.Errorf("shrink moved bytes into memory: %v -> %v", before.MovedBytes[Memory], after.MovedBytes[Memory])
	}
	if after.Resizes != before.Resizes+1 {
		t.Errorf("Resizes = %d, want %d", after.Resizes, before.Resizes+1)
	}
	// Only the delta set moved: high-priority residents are untouched,
	// the demoted ones still live lower in the hierarchy.
	for id := core.ObjectID(6); id <= 10; id++ {
		if tier, ok := m.Contains(id); !ok || tier != Memory {
			t.Errorf("object %d left memory outside the delta set (tier %v, %v)", id, tier, ok)
		}
	}
	for id := core.ObjectID(1); id <= 5; id++ {
		if tier, ok := m.Contains(id); !ok || tier == Memory {
			t.Errorf("object %d not demoted (tier %v, %v)", id, tier, ok)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Grow back: exactly the demoted set re-promotes, as fresh writes.
	if err := m.ResizeTiers(map[string]core.Bytes{"memory": 1000}); err != nil {
		t.Fatal(err)
	}
	grown := m.Stats()
	promoted := grown.MovedBytes[Memory] - after.MovedBytes[Memory]
	if promoted != demoted {
		t.Errorf("grow re-promoted %v bytes, want the demoted %v", promoted, demoted)
	}
	for id := core.ObjectID(1); id <= 10; id++ {
		if tier, ok := m.Contains(id); !ok || tier != Memory {
			t.Errorf("object %d tier after grow = %v, %v", id, tier, ok)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestResizeTiersValidation: named targets hit the right tiers and the
// bad ones are rejected — unknown names, the unbounded anchor, negatives.
func TestResizeTiersValidation(t *testing.T) {
	m := resizeTestManager(t)
	if err := m.ResizeTiers(map[string]core.Bytes{"nvm": 10}); !errors.Is(err, core.ErrInvalid) {
		t.Errorf("unknown tier err = %v", err)
	}
	if err := m.ResizeTiers(map[string]core.Bytes{"tertiary": 10}); !errors.Is(err, core.ErrInvalid) {
		t.Errorf("anchor resize err = %v", err)
	}
	if err := m.ResizeTiers(map[string]core.Bytes{"memory": -5}); !errors.Is(err, core.ErrInvalid) {
		t.Errorf("negative target err = %v", err)
	}
	if err := m.ResizeTiers(map[string]core.Bytes{"memory": 80, "disk": 900}); err != nil {
		t.Fatal(err)
	}
	var mem, disk core.Bytes
	for _, ti := range m.Tiers() {
		switch ti.Name {
		case "memory":
			mem = ti.Capacity
		case "disk":
			disk = ti.Capacity
		}
	}
	if mem != 80 || disk != 900 {
		t.Errorf("capacities after ResizeTiers = %v, %v", mem, disk)
	}
}

// TestResizeMmapTier drives a four-tier stack (heap/mmap/disk/segment)
// through a named shrink of the warm tier: the mmap frontier spills to
// disk, the cascade erases the now-orphaned faster copies, and the
// invariants hold on the deeper table.
func TestResizeMmapTier(t *testing.T) {
	cfg := Config{
		MemCapacity:  300,
		DiskCapacity: 100_000,
		MemLatency:   0, DiskLatency: 20, TertiaryLatency: 100,
		SummaryRatio:     0.1,
		SummaryThreshold: 1.0,
		DataDir:          t.TempDir(),
	}.WithMmapTier(1000)
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	warm, ok := m.TierByName("mmap")
	if !ok {
		t.Fatal("no mmap tier in table")
	}

	const blob = 100
	for id := core.ObjectID(1); id <= 10; id++ {
		payload := bytes.Repeat([]byte{byte(id)}, blob)
		if err := m.AdmitBytes(id, blob, 1, core.Priority(float64(id)/10), payload); err != nil {
			t.Fatal(err)
		}
	}
	if m.Used(warm) != 1000 {
		t.Fatalf("mmap used = %v, want 1000", m.Used(warm))
	}
	before := m.Stats()
	if err := m.ResizeTiers(map[string]core.Bytes{"mmap": 500}); err != nil {
		t.Fatal(err)
	}
	after := m.Stats()
	if d := after.DemotedBytes[warm] - before.DemotedBytes[warm]; d != 500 {
		t.Errorf("mmap shrink demoted %v bytes, want 500", d)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Every object still reads back intact from wherever it landed.
	for id := core.ObjectID(1); id <= 10; id++ {
		_, data, err := m.Fetch(id)
		if err != nil {
			t.Fatalf("Fetch %d after mmap shrink: %v", id, err)
		}
		if len(data) != blob || data[0] != byte(id) {
			t.Fatalf("Fetch %d returned wrong bytes (%d)", id, len(data))
		}
	}
}

// TestResizeRacesStreamReaders hammers ResizeTiers against concurrent
// FetchStream readers on a four-tier stack: a blob mid-migration must
// be served from the old tier or the new one, never short-read or
// corrupted. Run with -race this is the satellite's concurrency gate.
func TestResizeRacesStreamReaders(t *testing.T) {
	cfg := Config{
		MemCapacity:  4_000,
		DiskCapacity: 1 << 30,
		MemLatency:   0, DiskLatency: 20, TertiaryLatency: 100,
		SummaryRatio:     0.1,
		SummaryThreshold: 1.0,
		DataDir:          t.TempDir(),
	}.WithMmapTier(8_000)
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	const nObjects = 12
	const blob = 1_000
	payloads := make(map[core.ObjectID][]byte, nObjects)
	for id := core.ObjectID(1); id <= nObjects; id++ {
		p := bytes.Repeat([]byte{byte(id)}, blob)
		payloads[id] = p
		if err := m.AdmitBytes(id, blob, 1, core.Priority(float64(id)/nObjects), p); err != nil {
			t.Fatal(err)
		}
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	report := func(err error) {
		select {
		case errc <- err:
		default:
		}
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			id := core.ObjectID(seed%nObjects + 1)
			for {
				select {
				case <-done:
					return
				default:
				}
				_, br, err := m.FetchStream(id)
				if err != nil {
					report(fmt.Errorf("FetchStream %d: %w", id, err))
					return
				}
				data, err := io.ReadAll(br)
				br.Close()
				if err != nil {
					report(fmt.Errorf("read %d: %w", id, err))
					return
				}
				if !bytes.Equal(data, payloads[id]) {
					report(fmt.Errorf("object %d: got %d bytes, first %x", id, len(data), data[:min(8, len(data))]))
					return
				}
				id = id%nObjects + 1
			}
		}(r)
	}

	// Oscillate both finite fast tiers so migrations run in both
	// directions while the readers stream.
	for i := 0; i < 60; i++ {
		targets := map[string]core.Bytes{"memory": 2_000, "mmap": 3_000}
		if i%2 == 0 {
			targets = map[string]core.Bytes{"memory": 4_000, "mmap": 8_000}
		}
		if err := m.ResizeTiers(targets); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
