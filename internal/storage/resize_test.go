package storage

import (
	"errors"
	"testing"

	"cbfww/internal/core"
)

// resizeTestManager disables the large-document summary path (threshold
// 1.0: nothing is "big") so placement is a pure water-fill and the
// resize assertions are about capacity, not levels of detail.
func resizeTestManager(t *testing.T) *Manager {
	t.Helper()
	m, err := NewManager(Config{
		MemCapacity:  100,
		DiskCapacity: 1000,
		MemLatency:   0, DiskLatency: 10, TertiaryLatency: 100,
		SummaryRatio:     0.1,
		SummaryThreshold: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

// Resize must re-run placement under the new capacities: objects that no
// longer fit in memory spill down the hierarchy instead of vanishing —
// the scenario matrix's capacity-shrink lever.
func TestResizeShrinkSpillsDown(t *testing.T) {
	m := resizeTestManager(t)
	for id := core.ObjectID(1); id <= 2; id++ {
		if err := m.Admit(id, 40, 1, 0.9); err != nil {
			t.Fatal(err)
		}
	}
	if tier, ok := m.Contains(1); !ok || tier != Memory {
		t.Fatalf("object 1 not in memory before resize")
	}

	if err := m.Resize(40, 1000); err != nil {
		t.Fatal(err)
	}
	if mem, disk := m.Capacities(); mem != 40 || disk != 1000 {
		t.Errorf("Capacities = %v, %v", mem, disk)
	}
	inMem := 0
	for id := core.ObjectID(1); id <= 2; id++ {
		tier, ok := m.Contains(id)
		if !ok {
			t.Fatalf("object %d lost by resize", id)
		}
		if tier == Memory {
			inMem++
		}
	}
	if inMem != 1 {
		t.Errorf("memory residents after shrink = %d, want 1", inMem)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Growing back re-promotes.
	if err := m.Resize(100, 1000); err != nil {
		t.Fatal(err)
	}
	for id := core.ObjectID(1); id <= 2; id++ {
		if tier, ok := m.Contains(id); !ok || tier != Memory {
			t.Errorf("object %d tier after grow = %v, %v", id, tier, ok)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestResizeRejectsNegative(t *testing.T) {
	m := resizeTestManager(t)
	if err := m.Resize(-1, 10); !errors.Is(err, core.ErrInvalid) {
		t.Errorf("negative mem err = %v", err)
	}
	if err := m.Resize(10, -1); !errors.Is(err, core.ErrInvalid) {
		t.Errorf("negative disk err = %v", err)
	}
}

// MovedBytes must account the bytes written into each tier: admission
// lands copies at every tier, a shrink-driven demotion deletes (moves
// nothing), and a re-promotion writes into memory again. The counters
// never decrease.
func TestMovedBytesAccounting(t *testing.T) {
	m := resizeTestManager(t)
	for id := core.ObjectID(1); id <= 2; id++ {
		if err := m.Admit(id, 40, 1, 0.9); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	for tier := Memory; tier <= Tertiary; tier++ {
		if st.MovedBytes[tier] < 80 {
			t.Errorf("moved[%v] = %v after two 40B admissions, want >= 80", tier, st.MovedBytes[tier])
		}
	}

	// Shrink: one object leaves memory — deletion, not movement.
	if err := m.Resize(40, 1000); err != nil {
		t.Fatal(err)
	}
	afterShrink := m.Stats()
	if afterShrink.MovedBytes[Memory] != st.MovedBytes[Memory] {
		t.Errorf("demotion moved memory bytes: %v -> %v", st.MovedBytes[Memory], afterShrink.MovedBytes[Memory])
	}

	// Grow: the demoted object is promoted back — a fresh memory write.
	if err := m.Resize(100, 1000); err != nil {
		t.Fatal(err)
	}
	afterGrow := m.Stats()
	if afterGrow.MovedBytes[Memory] < afterShrink.MovedBytes[Memory]+40 {
		t.Errorf("promotion did not count: %v -> %v", afterShrink.MovedBytes[Memory], afterGrow.MovedBytes[Memory])
	}
	for tier := Memory; tier <= Tertiary; tier++ {
		if afterGrow.MovedBytes[tier] < st.MovedBytes[tier] {
			t.Errorf("moved[%v] decreased: %v -> %v", tier, st.MovedBytes[tier], afterGrow.MovedBytes[tier])
		}
	}
}
