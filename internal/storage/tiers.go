// Package storage implements the Storage Manager of §4.4 and Figure 3: the
// mapping of the object hierarchy onto a storage hierarchy of main memory,
// disk and tertiary storage.
//
// The warehouse is capacity bound-free in aggregate — the tertiary level
// never refuses data — but the fast levels are finite, so placement is the
// whole game: objects are ranked by priority and water-filled top-down
// (highest priorities into memory until its capacity target, next into
// disk, the rest to tertiary).
//
// The manager also implements the paper's copy-control rules:
//
//   - data in main memory have exact copies on disk;
//   - data on disk have backup copies in tertiary storage "which may not
//     be exact copies due to the periodical back-up process";
//   - downgrading a priority just invalidates the fast copy; upgrading
//     copies data upward.
//
// and the "levels of details" rule of §4.1: an object too large for the
// tier its priority deserves keeps a small summary (B′) at that tier while
// the full body stays one level down.
//
// Each tier is backed by a BlobStore that holds the actual payload bytes:
// an in-heap map, a file-per-blob directory tree, or an append-only
// segment log (see backend.go, diskstore.go, segment.go). Placement moves
// real bytes between the backends; the metadata in copyState is an index
// over them, not a simulation.
package storage

import (
	"fmt"
	"os"

	"cbfww/internal/core"
)

// Tier is one level of the storage hierarchy: an index into the
// manager's tier table. Tier 0 is always the fastest level (the one the
// hierarchy-of-indices layer watches); the last tier is always the
// unbounded anchor every object has a copy in.
type Tier int

// The three levels of Figure 3 — the indices of the default tier table.
// Smaller is faster. A manager built from an explicit Config.Tiers table
// may have more levels (e.g. an mmap-backed warm tier between memory
// and disk); code that must work against any stack asks the manager
// (NumTiers, TierName) instead of using these constants.
const (
	Memory Tier = iota
	Disk
	Tertiary
	// numTiers is the default stack's depth. The live depth of a manager
	// is len(m.tiers); this constant only sizes the classic table.
	numTiers
)

// maxTiers bounds a tier table so placement scratch state can live on
// the stack.
const maxTiers = 8

// TierSpec declares one level of the hierarchy: the row of the
// declarative tier table the manager iterates instead of hardcoding the
// three Figure-3 levels.
type TierSpec struct {
	// Name identifies the tier in ResizeTiers targets, /stats sections
	// and scenario metrics (e.g. "memory", "mmap", "disk", "tertiary").
	Name string
	// Backend picks the blob store when Config.DataDir is set: "heap",
	// "mmap" (arena mapping, the NVM-shaped tier), "disk" (file per
	// blob) or "segment" (append-only log). With no DataDir every tier
	// is heap-backed regardless.
	Backend string
	// Capacity is the placement target. 0 means unbounded, required on
	// (exactly) the last tier.
	Capacity core.Bytes
	// Latency is the per-access cost in ticks; must be non-decreasing
	// down the table.
	Latency core.Duration
}

var knownBackends = map[string]bool{"heap": true, "mmap": true, "disk": true, "segment": true}

// String names the tier.
func (t Tier) String() string {
	switch t {
	case Memory:
		return "memory"
	case Disk:
		return "disk"
	case Tertiary:
		return "tertiary"
	default:
		return fmt.Sprintf("tier(%d)", int(t))
	}
}

// Config sizes the hierarchy. Capacities are *targets* for the finite
// tiers: placement fills them in priority order. Tertiary is unbounded.
type Config struct {
	MemCapacity  core.Bytes
	DiskCapacity core.Bytes
	// Latencies per access, in ticks.
	MemLatency, DiskLatency, TertiaryLatency core.Duration
	// SummaryRatio is the size of a levels-of-detail summary relative to
	// the full object (e.g. 0.05). Zero disables summaries.
	SummaryRatio float64
	// SummaryThreshold: objects larger than this fraction of the memory
	// capacity are "large documents" (§4.3 problem (3)) and are stored in
	// memory as summaries only. Zero defaults to 0.25.
	SummaryThreshold float64

	// DataDir roots the persistent backends: the disk tier stores blobs
	// under DataDir/disk, the tertiary tier appends to segment files under
	// DataDir/tertiary, and SaveManifest writes DataDir/MANIFEST. Empty
	// means all-in-heap mode: every tier is an in-memory store and nothing
	// survives the process (today's test and benchmark behavior).
	DataDir string
	// Summarize produces the levels-of-detail abstract of a payload,
	// targeting roughly the given size. Nil falls back to prefix
	// truncation; the warehouse installs a content-aware hook.
	Summarize func(payload []byte, target core.Bytes) []byte
	// SegmentSize is the tertiary segment-file rotation threshold. Zero
	// defaults to 4 MB.
	SegmentSize core.Bytes

	// Tiers, when non-empty, declares the hierarchy explicitly — ordered
	// fastest to slowest — and overrides MemCapacity, DiskCapacity and
	// the per-tier latency fields above. The last entry must be
	// unbounded (Capacity 0), every other entry finite. Empty builds
	// the classic memory/disk/tertiary table from the legacy fields.
	Tiers []TierSpec
}

// WithMmapTier returns cfg with an explicit four-tier table: the classic
// stack plus an mmap-backed "mmap" tier between memory and disk, sized
// warm, at an access cost a quarter of the way from memory to disk. The
// serve daemon's -mmap-tier flag, the scenario matrix's backend=mmap
// cells and the bench harness's -tiers flag all build their stacks here.
func (cfg Config) WithMmapTier(warm core.Bytes) Config {
	cfg.Tiers = []TierSpec{
		{Name: "memory", Backend: "heap", Capacity: cfg.MemCapacity, Latency: cfg.MemLatency},
		{Name: "mmap", Backend: "mmap", Capacity: warm, Latency: cfg.MemLatency + (cfg.DiskLatency-cfg.MemLatency)/4},
		{Name: "disk", Backend: "disk", Capacity: cfg.DiskCapacity, Latency: cfg.DiskLatency},
		{Name: "tertiary", Backend: "segment", Capacity: 0, Latency: cfg.TertiaryLatency},
	}
	return cfg
}

// tierTable derives the manager's tier table from the configuration,
// validating it. The CBFWW_MMAP_TIER environment hook (the storage-mmap
// CI job) swaps the classic table's disk tier onto the mmap backend so
// the whole suite exercises the arena store without touching fixtures.
func (cfg Config) tierTable() ([]TierSpec, error) {
	if len(cfg.Tiers) == 0 {
		if cfg.MemCapacity <= 0 || cfg.DiskCapacity <= 0 {
			return nil, fmt.Errorf("storage: %w: capacities must be positive", core.ErrInvalid)
		}
		if cfg.MemLatency > cfg.DiskLatency || cfg.DiskLatency > cfg.TertiaryLatency {
			return nil, fmt.Errorf("storage: %w: latencies must grow down the hierarchy", core.ErrInvalid)
		}
		diskBackend := "disk"
		if os.Getenv("CBFWW_MMAP_TIER") != "" {
			diskBackend = "mmap"
		}
		return []TierSpec{
			{Name: "memory", Backend: "heap", Capacity: cfg.MemCapacity, Latency: cfg.MemLatency},
			{Name: "disk", Backend: diskBackend, Capacity: cfg.DiskCapacity, Latency: cfg.DiskLatency},
			{Name: "tertiary", Backend: "segment", Capacity: 0, Latency: cfg.TertiaryLatency},
		}, nil
	}
	if len(cfg.Tiers) < 2 || len(cfg.Tiers) > maxTiers {
		return nil, fmt.Errorf("storage: %w: tier table must have 2..%d entries, got %d", core.ErrInvalid, maxTiers, len(cfg.Tiers))
	}
	table := append([]TierSpec(nil), cfg.Tiers...)
	seen := make(map[string]bool, len(table))
	for i, ts := range table {
		if ts.Name == "" || seen[ts.Name] {
			return nil, fmt.Errorf("storage: %w: tier %d name %q empty or duplicate", core.ErrInvalid, i, ts.Name)
		}
		seen[ts.Name] = true
		if !knownBackends[ts.Backend] {
			return nil, fmt.Errorf("storage: %w: tier %q backend %q (want heap, mmap, disk or segment)", core.ErrInvalid, ts.Name, ts.Backend)
		}
		if i == len(table)-1 {
			if ts.Capacity != 0 {
				return nil, fmt.Errorf("storage: %w: last tier %q must be unbounded (capacity 0)", core.ErrInvalid, ts.Name)
			}
		} else if ts.Capacity <= 0 {
			return nil, fmt.Errorf("storage: %w: tier %q capacity must be positive", core.ErrInvalid, ts.Name)
		}
		if i > 0 && table[i-1].Latency > ts.Latency {
			return nil, fmt.Errorf("storage: %w: latencies must grow down the hierarchy", core.ErrInvalid)
		}
	}
	return table, nil
}

// DefaultConfig models the 2003-era ratios the paper argues from: memory
// is thousands of times faster than a web fetch, disk tens of times.
func DefaultConfig() Config {
	return Config{
		MemCapacity:     64 * core.MB,
		DiskCapacity:    2 * core.GB,
		MemLatency:      0,
		DiskLatency:     10,
		TertiaryLatency: 100,
		SummaryRatio:    0.05,
	}
}

// copyState describes one tier's copy of an object.
type copyState struct {
	present bool
	// version of the content this copy holds.
	version int
	// summaryOnly marks a levels-of-detail abstract rather than the body.
	summaryOnly bool
}

// key returns the blob key naming this copy's bytes in its tier's backend.
func (c copyState) key(id core.ObjectID) BlobKey {
	return BlobKey{ID: id, Version: c.version, Summary: c.summaryOnly}
}

// object is the manager's record of one stored object.
type object struct {
	id       core.ObjectID
	size     core.Bytes
	version  int // current (latest known) content version
	priority core.Priority
	copies   []copyState // one entry per tier-table row
	// hasPayload marks objects admitted with real bytes (AdmitBytes):
	// placement moves their content between the tier backends. Objects
	// admitted metadata-only (Admit) are tracked and placed identically
	// but own no blobs — the experiments and benchmark harnesses use them
	// to study placement without paying for payload I/O.
	hasPayload bool
	// tertiaryPos is the object's position on the linear tertiary medium
	// (§4.4 locality of reference); meaningful only while a tertiary copy
	// exists.
	tertiaryPos int
}

// summarySize returns the levels-of-detail footprint of the object.
func (o *object) summarySize(ratio float64) core.Bytes {
	s := core.Bytes(float64(o.size) * ratio)
	if s < 1 {
		s = 1
	}
	return s
}

// footprint returns the bytes the object occupies at tier t.
func (o *object) footprint(t Tier, ratio float64) core.Bytes {
	c := o.copies[t]
	if !c.present {
		return 0
	}
	if c.summaryOnly {
		return o.summarySize(ratio)
	}
	return o.size
}

// AccessResult reports how an access was served.
type AccessResult struct {
	// Tier that served the full object.
	Tier Tier
	// Latency of serving the full object.
	Latency core.Duration
	// PreviewTier/PreviewLatency are set when a faster tier held a
	// summary: the user sees an abstract at PreviewLatency while the body
	// arrives at Latency (§4.3's "fast preview even [when] the original
	// document is currently not available").
	PreviewTier    Tier
	PreviewLatency core.Duration
	HasPreview     bool
	// Stale marks a copy older than the object's current version.
	Stale bool
	// Version is the content version of the copy that served the access
	// (older than the object's current version exactly when Stale).
	Version int
}

// Stats counts manager activity.
type Stats struct {
	Accesses   int
	Migrations int
	Backups    int
	// Resizes counts capacity retargets (Resize/ResizeTiers calls).
	Resizes int
	// CostTotal accumulates access latency, the E-F3 metric.
	CostTotal core.Duration
	// MovedBytes accumulates, per tier, the bytes written into that tier
	// by admissions, placement copies, updates and backups (downgrades
	// delete bytes and move nothing). Indexed by tier-table position
	// (Memory/Disk/Tertiary on the default stack) — the scenario
	// matrix's bytes-moved-per-tier metric.
	MovedBytes []core.Bytes
	// DemotedBytes accumulates, per tier, the bytes invalidated at that
	// tier by downgrades. A downgrade deletes the fast copy — free in
	// I/O terms, invisible to MovedBytes — so this is the counter that
	// makes a capacity shrink observable: shrinking a tier by X demotes
	// ≈X bytes (± one blob) here.
	DemotedBytes []core.Bytes
}

// TierInfo is one row of the manager's live tier table: the /stats
// storage section and the admin-resize response body.
type TierInfo struct {
	Name     string        `json:"name"`
	Backend  string        `json:"backend"`
	Capacity core.Bytes    `json:"capacity"`
	Used     core.Bytes    `json:"used"`
	Moved    core.Bytes    `json:"moved_bytes"`
	Demoted  core.Bytes    `json:"demoted_bytes"`
	Latency  core.Duration `json:"latency"`
	Objects  int           `json:"objects"`
}
