// Package storage implements the Storage Manager of §4.4 and Figure 3: the
// mapping of the object hierarchy onto a storage hierarchy of main memory,
// disk and tertiary storage.
//
// The warehouse is capacity bound-free in aggregate — the tertiary level
// never refuses data — but the fast levels are finite, so placement is the
// whole game: objects are ranked by priority and water-filled top-down
// (highest priorities into memory until its capacity target, next into
// disk, the rest to tertiary).
//
// The manager also implements the paper's copy-control rules:
//
//   - data in main memory have exact copies on disk;
//   - data on disk have backup copies in tertiary storage "which may not
//     be exact copies due to the periodical back-up process";
//   - downgrading a priority just invalidates the fast copy; upgrading
//     copies data upward.
//
// and the "levels of details" rule of §4.1: an object too large for the
// tier its priority deserves keeps a small summary (B′) at that tier while
// the full body stays one level down.
//
// Each tier is backed by a BlobStore that holds the actual payload bytes:
// an in-heap map, a file-per-blob directory tree, or an append-only
// segment log (see backend.go, diskstore.go, segment.go). Placement moves
// real bytes between the backends; the metadata in copyState is an index
// over them, not a simulation.
package storage

import (
	"fmt"

	"cbfww/internal/core"
)

// Tier is one level of the storage hierarchy.
type Tier int

// The three levels of Figure 3. Smaller is faster.
const (
	Memory Tier = iota
	Disk
	Tertiary
	numTiers
)

// String names the tier.
func (t Tier) String() string {
	switch t {
	case Memory:
		return "memory"
	case Disk:
		return "disk"
	case Tertiary:
		return "tertiary"
	default:
		return fmt.Sprintf("tier(%d)", int(t))
	}
}

// Config sizes the hierarchy. Capacities are *targets* for the finite
// tiers: placement fills them in priority order. Tertiary is unbounded.
type Config struct {
	MemCapacity  core.Bytes
	DiskCapacity core.Bytes
	// Latencies per access, in ticks.
	MemLatency, DiskLatency, TertiaryLatency core.Duration
	// SummaryRatio is the size of a levels-of-detail summary relative to
	// the full object (e.g. 0.05). Zero disables summaries.
	SummaryRatio float64
	// SummaryThreshold: objects larger than this fraction of the memory
	// capacity are "large documents" (§4.3 problem (3)) and are stored in
	// memory as summaries only. Zero defaults to 0.25.
	SummaryThreshold float64

	// DataDir roots the persistent backends: the disk tier stores blobs
	// under DataDir/disk, the tertiary tier appends to segment files under
	// DataDir/tertiary, and SaveManifest writes DataDir/MANIFEST. Empty
	// means all-in-heap mode: every tier is an in-memory store and nothing
	// survives the process (today's test and benchmark behavior).
	DataDir string
	// Summarize produces the levels-of-detail abstract of a payload,
	// targeting roughly the given size. Nil falls back to prefix
	// truncation; the warehouse installs a content-aware hook.
	Summarize func(payload []byte, target core.Bytes) []byte
	// SegmentSize is the tertiary segment-file rotation threshold. Zero
	// defaults to 4 MB.
	SegmentSize core.Bytes
}

// DefaultConfig models the 2003-era ratios the paper argues from: memory
// is thousands of times faster than a web fetch, disk tens of times.
func DefaultConfig() Config {
	return Config{
		MemCapacity:     64 * core.MB,
		DiskCapacity:    2 * core.GB,
		MemLatency:      0,
		DiskLatency:     10,
		TertiaryLatency: 100,
		SummaryRatio:    0.05,
	}
}

// copyState describes one tier's copy of an object.
type copyState struct {
	present bool
	// version of the content this copy holds.
	version int
	// summaryOnly marks a levels-of-detail abstract rather than the body.
	summaryOnly bool
}

// key returns the blob key naming this copy's bytes in its tier's backend.
func (c copyState) key(id core.ObjectID) BlobKey {
	return BlobKey{ID: id, Version: c.version, Summary: c.summaryOnly}
}

// object is the manager's record of one stored object.
type object struct {
	id       core.ObjectID
	size     core.Bytes
	version  int // current (latest known) content version
	priority core.Priority
	copies   [numTiers]copyState
	// hasPayload marks objects admitted with real bytes (AdmitBytes):
	// placement moves their content between the tier backends. Objects
	// admitted metadata-only (Admit) are tracked and placed identically
	// but own no blobs — the experiments and benchmark harnesses use them
	// to study placement without paying for payload I/O.
	hasPayload bool
	// tertiaryPos is the object's position on the linear tertiary medium
	// (§4.4 locality of reference); meaningful only while a tertiary copy
	// exists.
	tertiaryPos int
}

// summarySize returns the levels-of-detail footprint of the object.
func (o *object) summarySize(ratio float64) core.Bytes {
	s := core.Bytes(float64(o.size) * ratio)
	if s < 1 {
		s = 1
	}
	return s
}

// footprint returns the bytes the object occupies at tier t.
func (o *object) footprint(t Tier, ratio float64) core.Bytes {
	c := o.copies[t]
	if !c.present {
		return 0
	}
	if c.summaryOnly {
		return o.summarySize(ratio)
	}
	return o.size
}

// AccessResult reports how an access was served.
type AccessResult struct {
	// Tier that served the full object.
	Tier Tier
	// Latency of serving the full object.
	Latency core.Duration
	// PreviewTier/PreviewLatency are set when a faster tier held a
	// summary: the user sees an abstract at PreviewLatency while the body
	// arrives at Latency (§4.3's "fast preview even [when] the original
	// document is currently not available").
	PreviewTier    Tier
	PreviewLatency core.Duration
	HasPreview     bool
	// Stale marks a copy older than the object's current version.
	Stale bool
	// Version is the content version of the copy that served the access
	// (older than the object's current version exactly when Stale).
	Version int
}

// Stats counts manager activity.
type Stats struct {
	Accesses   int
	Migrations int
	Backups    int
	// CostTotal accumulates access latency, the E-F3 metric.
	CostTotal core.Duration
	// MovedBytes accumulates, per tier, the bytes written into that tier
	// by admissions, placement copies, updates and backups (downgrades
	// delete bytes and move nothing). Indexed by Memory/Disk/Tertiary —
	// the scenario matrix's bytes-moved-per-tier metric.
	MovedBytes [numTiers]core.Bytes
}
