package storage

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"cbfww/internal/core"
)

// streamBackends builds one of each backend, file-backed ones under a
// temp dir.
func streamBackends(t *testing.T) map[string]BlobStore {
	t.Helper()
	disk, err := OpenDiskStore(filepath.Join(t.TempDir(), "disk"))
	if err != nil {
		t.Fatalf("OpenDiskStore: %v", err)
	}
	seg, err := OpenSegmentStore(filepath.Join(t.TempDir(), "tertiary"), 1*core.MB)
	if err != nil {
		t.Fatalf("OpenSegmentStore: %v", err)
	}
	mm, err := OpenMmapStore(filepath.Join(t.TempDir(), "mmap"))
	if err != nil {
		t.Fatalf("OpenMmapStore: %v", err)
	}
	t.Cleanup(func() { disk.Close(); seg.Close(); mm.Close() })
	return map[string]BlobStore{"mem": newMemStore(), "disk": disk, "segment": seg, "mmap": mm}
}

func streamPayload(n int) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i*7 + i>>8)
	}
	return data
}

// TestOpenRoundTrip: every backend's Open serves the exact stored bytes,
// via both Read and WriteTo, reports Len, and fails absent keys with
// ErrNotFound.
func TestOpenRoundTrip(t *testing.T) {
	for name, s := range streamBackends(t) {
		t.Run(name, func(t *testing.T) {
			k := BlobKey{ID: 7, Version: 3}
			data := streamPayload(100_000)
			if err := s.Put(k, data); err != nil {
				t.Fatalf("Put: %v", err)
			}
			br, err := s.Open(k)
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			if br.Len() != int64(len(data)) {
				t.Errorf("Len = %d, want %d", br.Len(), len(data))
			}
			got, err := io.ReadAll(br)
			if err != nil {
				t.Fatalf("ReadAll: %v", err)
			}
			br.Close()
			if !bytes.Equal(got, data) {
				t.Fatalf("Read bytes differ from stored (%d vs %d)", len(got), len(data))
			}

			br, err = s.Open(k)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			var sink bytes.Buffer
			n, err := br.WriteTo(&sink)
			br.Close()
			if err != nil || n != int64(len(data)) {
				t.Fatalf("WriteTo = %d, %v; want %d bytes", n, err, len(data))
			}
			if !bytes.Equal(sink.Bytes(), data) {
				t.Fatalf("WriteTo bytes differ from stored")
			}

			if _, err := s.Open(BlobKey{ID: 99, Version: 1}); !errors.Is(err, core.ErrNotFound) {
				t.Errorf("Open of absent key = %v, want ErrNotFound", err)
			}
		})
	}
}

// TestPutFromRoundTrip: streaming writes land byte-identical to Put, and
// a source that runs short of the declared length fails without
// corrupting the store.
func TestPutFromRoundTrip(t *testing.T) {
	for name, s := range streamBackends(t) {
		t.Run(name, func(t *testing.T) {
			k := BlobKey{ID: 11, Version: 1}
			data := streamPayload(300_000)
			if err := s.PutFrom(k, bytes.NewReader(data), int64(len(data))); err != nil {
				t.Fatalf("PutFrom: %v", err)
			}
			got, err := s.Get(k)
			if err != nil {
				t.Fatalf("Get after PutFrom: %v", err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("stored bytes differ from streamed input")
			}

			// A short source must not replace the existing blob.
			short := BlobKey{ID: 12, Version: 1}
			if err := s.PutFrom(short, bytes.NewReader(data[:10]), int64(len(data))); err == nil {
				t.Fatalf("PutFrom with short source succeeded, want error")
			}
			if s.Contains(short) {
				t.Errorf("short PutFrom left key %v in the index", short)
			}
			// The store keeps working after the aborted write.
			k2 := BlobKey{ID: 13, Version: 1}
			if err := s.PutFrom(k2, bytes.NewReader(data), int64(len(data))); err != nil {
				t.Fatalf("PutFrom after aborted write: %v", err)
			}
			if got, err := s.Get(k2); err != nil || !bytes.Equal(got, data) {
				t.Fatalf("Get after recovery: %v", err)
			}
		})
	}
}

// TestSegmentOpenTornRecord: a torn or bit-flipped segment record fails
// Open with core.ErrCorrupt — never a reader that would short-read at
// serve time.
func TestSegmentOpenTornRecord(t *testing.T) {
	dir := t.TempDir()
	seg, err := OpenSegmentStore(dir, 1*core.MB)
	if err != nil {
		t.Fatalf("OpenSegmentStore: %v", err)
	}
	defer seg.Close()
	k := BlobKey{ID: 21, Version: 2}
	data := streamPayload(64 * 1024)
	if err := seg.Put(k, data); err != nil {
		t.Fatalf("Put: %v", err)
	}
	segFile := filepath.Join(dir, segName(0))

	flip := func(off int64) {
		t.Helper()
		f, err := os.OpenFile(segFile, os.O_RDWR, 0o644)
		if err != nil {
			t.Fatalf("open segment file: %v", err)
		}
		defer f.Close()
		var b [1]byte
		if _, err := f.ReadAt(b[:], off); err != nil {
			t.Fatalf("read byte: %v", err)
		}
		b[0] ^= 0xFF
		if _, err := f.WriteAt(b[:], off); err != nil {
			t.Fatalf("write byte: %v", err)
		}
	}

	// Bit-flip mid-payload: CRC verification must catch it on Open.
	flip(segHeaderLen + 1000)
	if _, err := seg.Open(k); !errors.Is(err, core.ErrCorrupt) {
		t.Fatalf("Open over flipped payload = %v, want ErrCorrupt", err)
	}
	flip(segHeaderLen + 1000) // restore
	if br, err := seg.Open(k); err != nil {
		t.Fatalf("Open after restore = %v, want clean read", err)
	} else {
		br.Close()
	}

	// Header damage: the frame check must catch it.
	flip(0) // magic byte
	if _, err := seg.Open(k); !errors.Is(err, core.ErrCorrupt) {
		t.Fatalf("Open over damaged magic = %v, want ErrCorrupt", err)
	}
	flip(0)

	// Truncation through the payload: a torn tail, not a short read.
	if err := os.Truncate(segFile, segHeaderLen+1000); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if _, err := seg.Open(k); !errors.Is(err, core.ErrCorrupt) {
		t.Fatalf("Open over truncated record = %v, want ErrCorrupt", err)
	}
}

// TestSegmentStreamSurvivesCompact: a stream opened before Compact keeps
// serving its exact bytes after Compact has closed and unlinked the old
// segment files, because the reader owns its descriptor. The regression
// was a truncated response after Content-Length was committed whenever
// the background Backup→MaybeCompact pass raced an in-flight tertiary
// GET /body.
func TestSegmentStreamSurvivesCompact(t *testing.T) {
	seg, err := OpenSegmentStore(filepath.Join(t.TempDir(), "tertiary"), 256*core.KB)
	if err != nil {
		t.Fatalf("OpenSegmentStore: %v", err)
	}
	defer seg.Close()
	k := BlobKey{ID: 31, Version: 1}
	data := streamPayload(96 * 1024)
	if err := seg.Put(k, data); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Churn another key so the compaction has garbage to drop.
	for i := 0; i < 4; i++ {
		if err := seg.Put(BlobKey{ID: 32, Version: 1}, streamPayload(32*1024)); err != nil {
			t.Fatalf("Put churn: %v", err)
		}
	}

	br, err := seg.Open(k)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer br.Close()
	head := make([]byte, 1024)
	if _, err := io.ReadFull(br, head); err != nil {
		t.Fatalf("read head: %v", err)
	}

	if err := seg.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if seg.Compactions != 1 {
		t.Fatalf("Compactions = %d, want 1", seg.Compactions)
	}

	rest, err := io.ReadAll(br)
	if err != nil {
		t.Fatalf("read after Compact: %v", err)
	}
	if got := append(head, rest...); !bytes.Equal(got, data) {
		t.Fatalf("stream across Compact = %d bytes, differs from stored %d", len(got), len(data))
	}
	if err := br.Close(); err != nil {
		t.Errorf("Close after Compact: %v", err)
	}

	// The store itself still serves the key from the rewritten segments.
	br2, err := seg.Open(k)
	if err != nil {
		t.Fatalf("Open after Compact: %v", err)
	}
	got, err := io.ReadAll(br2)
	br2.Close()
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("post-Compact read = %d bytes, %v; want stored payload", len(got), err)
	}
}

// TestFetchStreamAccounting: FetchStream counts accesses and serves the
// same bytes Fetch would, per tier.
func TestFetchStreamAccounting(t *testing.T) {
	m := newTestManagerBytes(t)
	payload := streamPayload(64)
	if err := m.AdmitBytes(1, 64, 1, 0.9, payload); err != nil {
		t.Fatalf("AdmitBytes: %v", err)
	}
	before := m.Stats().Accesses
	res, br, err := m.FetchStream(1)
	if err != nil {
		t.Fatalf("FetchStream: %v", err)
	}
	defer br.Close()
	if m.Stats().Accesses != before+1 {
		t.Errorf("FetchStream did not count an access")
	}
	got, err := io.ReadAll(br)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("FetchStream bytes = %d, %v; want stored payload", len(got), err)
	}
	if res.Tier != Memory {
		t.Errorf("high-priority object served from %v, want memory", res.Tier)
	}

	// PeekStream: same bytes, no access counted.
	before = m.Stats().Accesses
	pr, ver, err := m.PeekStream(1)
	if err != nil {
		t.Fatalf("PeekStream: %v", err)
	}
	defer pr.Close()
	if ver != 1 {
		t.Errorf("PeekStream version = %d, want 1", ver)
	}
	if m.Stats().Accesses != before {
		t.Errorf("PeekStream counted an access")
	}
	if got, _ := io.ReadAll(pr); !bytes.Equal(got, payload) {
		t.Fatalf("PeekStream bytes differ")
	}
}

// newTestManagerBytes builds a small all-heap manager for streaming tests.
func newTestManagerBytes(t *testing.T) *Manager {
	t.Helper()
	m, err := NewManager(Config{
		MemCapacity: 1 * core.KB, DiskCapacity: 4 * core.KB,
		MemLatency: 1, DiskLatency: 10, TertiaryLatency: 100,
	})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	return m
}

// TestHeapStreamAllocs: the heap-tier stream path (FetchStream + WriteTo)
// must run allocation-flat — a fixed handful of allocs regardless of body
// size, never a body-sized buffer.
func TestHeapStreamAllocs(t *testing.T) {
	m := newTestManagerBytes(t)
	payload := streamPayload(512)
	if err := m.AdmitBytes(1, 512, 1, 0.9, payload); err != nil {
		t.Fatalf("AdmitBytes: %v", err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		_, br, err := m.FetchStream(1)
		if err != nil {
			t.Fatalf("FetchStream: %v", err)
		}
		if _, err := br.WriteTo(io.Discard); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		br.Close()
	})
	// One alloc for the memReader, one for the BlobKey-to-interface
	// conversions inside the map lookups; give headroom to 4 but never a
	// body-scaled number.
	if allocs > 4 {
		t.Errorf("heap stream path allocs/op = %.1f, want <= 4", allocs)
	}
}
