// Package priority implements the Priority Manager of §3(4) and §5.3.
//
// Conventional caches give a newly fetched page the top of the LRU stack
// and let disuse demote it. CBFWW inverts this: because ~60% of pages are
// never referenced again, the priority of a page is decided *when it is
// retrieved*, from evidence available at that moment:
//
//   - similarity to semantic regions whose popularity is known ("if a new
//     page has many words/phrases in common with some pages that have known
//     priority, then the same priority will be assigned to the new page");
//   - hot-topic heat from the Topic Sensor ("if a web page has hot topic
//     words/phrases, the priority will be increased").
//
// Region popularity itself is a λ-aged reference rate, so priorities track
// the short-lived hot spots of §4.4 without manual tuning.
package priority

import (
	"fmt"
	"math"
	"sync"

	"cbfww/internal/cluster"
	"cbfww/internal/core"
	"cbfww/internal/text"
	"cbfww/internal/topic"
)

// Config tunes the admission-priority blend.
type Config struct {
	// SimilarityWeight scales the semantic-region evidence; TopicWeight
	// scales hot-topic heat. Both default to 1 and 0.5 respectively.
	SimilarityWeight float64
	TopicWeight      float64
	// MinSimilarity is the region similarity below which the region
	// evidence is considered uninformative and the default applies.
	MinSimilarity float64
	// Default is the priority of a page with no usable evidence.
	Default core.Priority
	// Lambda is the per-epoch decay of region heat, as in §4.2 λ-aging.
	Lambda float64
	// EpochLength converts ticks to heat epochs.
	EpochLength core.Duration
}

// DefaultConfig returns the blend used by the experiments.
func DefaultConfig() Config {
	return Config{
		SimilarityWeight: 1.0,
		TopicWeight:      0.5,
		MinSimilarity:    0.1,
		Default:          0.3,
		Lambda:           0.3,
		EpochLength:      3600, // one hour at one tick per second
	}
}

// Explanation records how an admission priority was derived, for
// experiment output and the REPL's EXPLAIN.
type Explanation struct {
	// Region is the nearest semantic region (-1 when none usable).
	Region int
	// Similarity to that region's centroid.
	Similarity float64
	// RegionHeat is the region's aged popularity in [0, 1].
	RegionHeat float64
	// TopicHeat is the hot-topic score of the document.
	TopicHeat float64
	// Result is the final clamped priority.
	Result core.Priority
}

// String renders the explanation for humans.
func (e Explanation) String() string {
	if e.Region < 0 {
		return fmt.Sprintf("no region evidence; topic=%.2f -> p=%.2f", e.TopicHeat, float64(e.Result))
	}
	return fmt.Sprintf("region %d (sim=%.2f, heat=%.2f) topic=%.2f -> p=%.2f",
		e.Region, e.Similarity, e.RegionHeat, e.TopicHeat, float64(e.Result))
}

// Manager computes admission priorities and maintains region heat. Safe
// for concurrent use.
type Manager struct {
	cfg     Config
	clock   core.Clock
	regions *cluster.Online
	topics  *topic.Manager

	mu    sync.Mutex
	heat  map[int]*heatEntry // region index -> aged reference rate
	epoch int64
}

type heatEntry struct {
	value float64
	epoch int64
}

// NewManager wires the manager to its evidence sources. Both may be nil
// when the corresponding evidence is disabled (tests, ablations).
func NewManager(cfg Config, clock core.Clock, regions *cluster.Online, topics *topic.Manager) (*Manager, error) {
	if cfg.Lambda <= 0 || cfg.Lambda > 1 {
		return nil, fmt.Errorf("priority: %w: lambda %v outside (0,1]", core.ErrInvalid, cfg.Lambda)
	}
	if cfg.EpochLength <= 0 {
		return nil, fmt.Errorf("priority: %w: epoch length %v", core.ErrInvalid, cfg.EpochLength)
	}
	if clock == nil {
		return nil, fmt.Errorf("priority: %w: nil clock", core.ErrInvalid)
	}
	return &Manager{
		cfg:     cfg,
		clock:   clock,
		regions: regions,
		topics:  topics,
		heat:    make(map[int]*heatEntry),
	}, nil
}

// epochOf converts a time to a heat epoch.
func (m *Manager) epochOf(t core.Time) int64 {
	return int64(t) / int64(m.cfg.EpochLength)
}

// settle ages a heat entry to the given epoch.
func (m *Manager) settle(e *heatEntry, epoch int64) {
	if gap := epoch - e.epoch; gap > 0 {
		e.value *= math.Pow(1-m.cfg.Lambda, float64(gap))
		e.epoch = epoch
	}
}

// RecordAccess notes a reference that was served by a member of the given
// region, reinforcing the region's heat.
func (m *Manager) RecordAccess(region int) {
	if region < 0 {
		return
	}
	epoch := m.epochOf(m.clock.Now())
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.heat[region]
	if e == nil {
		e = &heatEntry{epoch: epoch}
		m.heat[region] = e
	}
	m.settle(e, epoch)
	e.value += m.cfg.Lambda
}

// RegionHeat returns the region's aged *per-member* popularity mapped to
// [0, 1). The raw aged value approximates accesses per epoch to the whole
// region; dividing by member count gives the typical member's rate m, and
// m/(1+m) puts it on the same saturating scale as a page's own
// aged-frequency heat. That alignment is what lets an admission priority
// inherited from a region be compared directly against measured page
// priorities: a new page gets the priority of a *typical* similar page,
// never more than the region's genuinely hot members (Fig. 8's intent
// without its failure mode).
func (m *Manager) RegionHeat(region int) float64 {
	epoch := m.epochOf(m.clock.Now())
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.regionHeatLocked(region, epoch)
}

func (m *Manager) regionHeatLocked(region int, epoch int64) float64 {
	e, ok := m.heat[region]
	if !ok {
		return 0
	}
	m.settle(e, epoch)
	size := 1
	if m.regions != nil {
		if s := m.regions.SizeOf(region); s > 1 {
			size = s
		}
	}
	perMember := e.value / float64(size)
	return perMember / (1 + perMember)
}

// DecayAll ages every region to the current epoch. Called on the
// warehouse's maintenance cadence.
func (m *Manager) DecayAll() {
	epoch := m.epochOf(m.clock.Now())
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, e := range m.heat {
		m.settle(e, epoch)
	}
}

// AdmissionPriority derives the priority of a newly retrieved document
// from its feature vector:
//
//	p = simWeight · sim(doc, nearest region) · heat(region)
//	  + topicWeight · topicHeat(doc)
//
// clamped to [0, 1], falling back to cfg.Default when neither evidence
// source is informative.
func (m *Manager) AdmissionPriority(vec text.Vector) (core.Priority, Explanation) {
	exp := Explanation{Region: -1}
	var score float64
	informative := false

	if m.regions != nil && m.cfg.SimilarityWeight > 0 {
		if idx, sim, ok := m.regions.Nearest(vec); ok && sim >= m.cfg.MinSimilarity {
			epoch := m.epochOf(m.clock.Now())
			m.mu.Lock()
			heat := m.regionHeatLocked(idx, epoch)
			m.mu.Unlock()
			exp.Region = idx
			exp.Similarity = sim
			exp.RegionHeat = heat
			score += m.cfg.SimilarityWeight * sim * heat
			informative = true
		}
	}
	if m.topics != nil {
		th := m.topics.Heat(vec)
		exp.TopicHeat = th
		// Evidence only counts as informative when it can actually move
		// the score; a zero weight must fall through to the default.
		if th > 0 && m.cfg.TopicWeight > 0 {
			score += m.cfg.TopicWeight * th
			informative = true
		}
	}
	if !informative {
		exp.Result = m.cfg.Default
		return exp.Result, exp
	}
	exp.Result = core.Priority(score).Clamp(core.PriorityMin, core.PriorityMax)
	return exp.Result, exp
}
