package priority

import (
	"sync"
	"testing"

	"cbfww/internal/cluster"
	"cbfww/internal/core"
	"cbfww/internal/text"
	"cbfww/internal/topic"
)

func newFixture(t *testing.T) (*Manager, *cluster.Online, *topic.Manager, *text.Corpus, *core.SimClock) {
	t.Helper()
	clock := core.NewSimClock(0)
	corpus := text.NewCorpus()
	regions, err := cluster.NewOnline(0.15, 0)
	if err != nil {
		t.Fatal(err)
	}
	topics := topic.NewManager(corpus.Dict())
	cfg := DefaultConfig()
	cfg.EpochLength = 100
	m, err := NewManager(cfg, clock, regions, topics)
	if err != nil {
		t.Fatal(err)
	}
	return m, regions, topics, corpus, clock
}

func TestNewManagerValidation(t *testing.T) {
	clock := core.NewSimClock(0)
	bad := []Config{
		{Lambda: 0, EpochLength: 1},
		{Lambda: 1.5, EpochLength: 1},
		{Lambda: 0.5, EpochLength: 0},
	}
	for i, cfg := range bad {
		if _, err := NewManager(cfg, clock, nil, nil); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if _, err := NewManager(DefaultConfig(), nil, nil, nil); err == nil {
		t.Error("nil clock accepted")
	}
}

func TestDefaultWithoutEvidence(t *testing.T) {
	m, _, _, corpus, _ := newFixture(t)
	p, exp := m.AdmissionPriority(corpus.Vectorize("anything at all"))
	if p != m.cfg.Default {
		t.Errorf("priority = %v, want default %v", p, m.cfg.Default)
	}
	if exp.Region != -1 {
		t.Errorf("explanation region = %d", exp.Region)
	}
	if exp.String() == "" {
		t.Error("empty explanation string")
	}
}

// The §5.3 scenario: a new page similar to a hot region inherits high
// priority; a page similar to a cold region gets low priority.
func TestSimilarityInheritsRegionPriority(t *testing.T) {
	m, regions, _, corpus, _ := newFixture(t)
	// Two regions: kyoto-travel (hot) and knitting (cold).
	hotVec := corpus.VectorizeNew("kyoto station travel shinkansen temple garden")
	coldVec := corpus.VectorizeNew("knitting yarn needle pattern sweater wool")
	hotIdx := regions.Assign(cluster.Point{ID: 1, Vec: hotVec})
	coldIdx := regions.Assign(cluster.Point{ID: 2, Vec: coldVec})

	// Traffic hits the hot region repeatedly.
	for i := 0; i < 20; i++ {
		m.RecordAccess(hotIdx)
	}
	m.RecordAccess(coldIdx)

	pHot, expHot := m.AdmissionPriority(corpus.Vectorize("kyoto temple travel guide"))
	pCold, expCold := m.AdmissionPriority(corpus.Vectorize("knitting wool sweater"))
	if expHot.Region != hotIdx || expCold.Region != coldIdx {
		t.Fatalf("regions: hot=%+v cold=%+v", expHot, expCold)
	}
	if pHot <= pCold {
		t.Errorf("hot-region page priority %v <= cold-region %v", pHot, pCold)
	}
	if pHot <= m.cfg.Default {
		t.Errorf("hot page %v not above default %v", pHot, m.cfg.Default)
	}
}

func TestTopicBoostRaisesPriority(t *testing.T) {
	m, _, topics, corpus, _ := newFixture(t)
	base, _ := m.AdmissionPriority(corpus.Vectorize("gion festival parade"))
	topics.BoostTerm("gion festival", 5)
	boosted, exp := m.AdmissionPriority(corpus.Vectorize("gion festival parade"))
	if boosted <= base {
		t.Errorf("topic boost did not raise priority: %v -> %v", base, boosted)
	}
	if exp.TopicHeat <= 0 {
		t.Errorf("explanation heat = %v", exp.TopicHeat)
	}
}

func TestRegionHeatAges(t *testing.T) {
	m, regions, _, corpus, clock := newFixture(t)
	idx := regions.Assign(cluster.Point{ID: 1, Vec: corpus.VectorizeNew("kyoto travel")})
	for i := 0; i < 10; i++ {
		m.RecordAccess(idx)
	}
	h0 := m.RegionHeat(idx)
	if h0 <= 0.5 || h0 >= 1 {
		t.Fatalf("hot region heat = %v, want in (0.5, 1)", h0)
	}
	// Many epochs later the heat has decayed (hot spots die fast).
	clock.Advance(100 * 50)
	h1 := m.RegionHeat(idx)
	if h1 >= h0 {
		t.Errorf("heat did not decay: %v -> %v", h0, h1)
	}
	m.DecayAll()
	h2 := m.RegionHeat(idx)
	if h2 < 0 || h2 > h1+1e-12 {
		t.Errorf("heat after DecayAll out of range: %v (was %v)", h2, h1)
	}
}

func TestRecordAccessIgnoresNegativeRegion(t *testing.T) {
	m, _, _, _, _ := newFixture(t)
	m.RecordAccess(-1) // must not panic or create entries
	if len(m.heat) != 0 {
		t.Error("negative region recorded")
	}
}

func TestPriorityClamped(t *testing.T) {
	m, regions, topics, corpus, _ := newFixture(t)
	vec := corpus.VectorizeNew("kyoto station travel")
	idx := regions.Assign(cluster.Point{ID: 1, Vec: vec})
	for i := 0; i < 100; i++ {
		m.RecordAccess(idx)
	}
	topics.BoostTerm("kyoto station travel", 100)
	p, _ := m.AdmissionPriority(corpus.Vectorize("kyoto station travel"))
	if p > core.PriorityMax || p < core.PriorityMin {
		t.Errorf("priority %v outside [0,1]", p)
	}
}

func TestNilEvidenceSources(t *testing.T) {
	clock := core.NewSimClock(0)
	cfg := DefaultConfig()
	m, err := NewManager(cfg, clock, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, exp := m.AdmissionPriority(text.Builder{0: 1}.Vector())
	if p != cfg.Default || exp.Region != -1 {
		t.Errorf("nil sources: p=%v exp=%+v", p, exp)
	}
}

func TestManagerConcurrent(t *testing.T) {
	m, regions, _, corpus, _ := newFixture(t)
	idx := regions.Assign(cluster.Point{ID: 1, Vec: corpus.VectorizeNew("kyoto travel")})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				m.RecordAccess(idx)
				m.RegionHeat(idx)
				m.AdmissionPriority(corpus.Vectorize("kyoto"))
				m.DecayAll()
			}
		}()
	}
	wg.Wait()
}

// Regression: evidence with zero weight must not count as informative —
// the default priority applies (this is what makes the "newest = top"
// baseline in E-F8 expressible as a Config).
func TestZeroWeightsFallThroughToDefault(t *testing.T) {
	clock := core.NewSimClock(0)
	corpus := text.NewCorpus()
	regions, _ := cluster.NewOnline(0.15, 0)
	topics := topic.NewManager(corpus.Dict())
	cfg := DefaultConfig()
	cfg.SimilarityWeight = 0
	cfg.TopicWeight = 0
	cfg.Default = 0.77
	m, err := NewManager(cfg, clock, regions, topics)
	if err != nil {
		t.Fatal(err)
	}
	// Both evidence sources would fire if weighted.
	vec := corpus.VectorizeNew("kyoto festival parade")
	regions.Assign(cluster.Point{ID: 1, Vec: vec})
	m.RecordAccess(0)
	topics.BoostTerm("kyoto festival", 5)

	p, exp := m.AdmissionPriority(corpus.Vectorize("kyoto festival"))
	if p != 0.77 {
		t.Errorf("priority = %v, want default 0.77 (exp %+v)", p, exp)
	}
}
