package priority

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"cbfww/internal/core"
	"cbfww/internal/object"
)

// Property test for the Fig. 2 structural rule the priority subsystem
// feeds: under a randomized object hierarchy, a shared object's effective
// priority equals the MAX over its containers' effective priorities —
// never their sum (the paper is explicit that sharing must not inflate
// priority) — and a parentless object keeps its base priority.
func TestEffectivePriorityIsMaxOverContainersNeverSum(t *testing.T) {
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		h := object.NewHierarchy()
		base := make(map[core.ObjectID]core.Priority)

		add := func(kind object.Kind, key string) *object.Object {
			o, err := h.Add(kind, key, core.Bytes(1+rng.Intn(1000)), key, "")
			if err != nil {
				t.Fatal(err)
			}
			base[o.ID] = core.Priority(rng.Float64())
			return o
		}
		link := func(parent, child *object.Object) {
			// Random parent picks may repeat; a duplicate link is a no-op.
			if err := h.Link(parent.ID, child.ID); err != nil && !errors.Is(err, core.ErrExists) {
				t.Fatal(err)
			}
		}

		var regions, logicals, physicals []*object.Object
		for i := 0; i < 1+rng.Intn(4); i++ {
			regions = append(regions, add(object.KindRegion, fmt.Sprintf("r%d", i)))
		}
		for i := 0; i < 2+rng.Intn(5); i++ {
			l := add(object.KindLogical, fmt.Sprintf("l%d", i))
			logicals = append(logicals, l)
			if rng.Intn(4) > 0 { // some logicals stay parentless
				link(regions[rng.Intn(len(regions))], l)
			}
		}
		for i := 0; i < 3+rng.Intn(8); i++ {
			p := add(object.KindPhysical, fmt.Sprintf("p%d", i))
			physicals = append(physicals, p)
			for _, l := range logicals {
				if rng.Intn(3) == 0 {
					link(l, p)
				}
			}
		}
		for i := 0; i < 4+rng.Intn(10); i++ {
			c := add(object.KindRaw, fmt.Sprintf("c%d", i))
			// Components are shared: link under several physical pages.
			n := 1 + rng.Intn(4)
			for j := 0; j < n; j++ {
				link(physicals[rng.Intn(len(physicals))], c)
			}
		}

		eff := h.EffectivePriorities(base)
		const eps = 1e-12
		shared := 0
		for _, kind := range []object.Kind{object.KindRegion, object.KindLogical, object.KindPhysical, object.KindRaw} {
			h.ForEach(kind, func(o *object.Object) {
				parents := h.Parents(o.ID)
				if len(parents) == 0 {
					if math.Abs(float64(eff[o.ID]-base[o.ID])) > eps {
						t.Fatalf("trial %d: parentless %s: eff=%v base=%v", trial, o.Key, eff[o.ID], base[o.ID])
					}
					return
				}
				var max, sum core.Priority
				for i, pid := range parents {
					p := eff[pid]
					sum += p
					if i == 0 || p > max {
						max = p
					}
				}
				if math.Abs(float64(eff[o.ID]-max)) > eps {
					t.Fatalf("trial %d: %s: eff=%v, want max over containers %v", trial, o.Key, eff[o.ID], max)
				}
				if len(parents) >= 2 {
					shared++
					// The sum and the max genuinely differ here (unless all
					// but one parent priority is 0), so eff==max above also
					// proves the sum was NOT used; make it explicit.
					if sum-max > eps && math.Abs(float64(eff[o.ID]-sum)) <= eps {
						t.Fatalf("trial %d: %s: eff=%v equals SUM of containers", trial, o.Key, eff[o.ID])
					}
				}
			})
		}
		if trial == 0 && shared == 0 {
			t.Fatal("no shared objects generated — property vacuous")
		}
	}
}
