package schema

import (
	"errors"
	"strings"
	"testing"

	"cbfww/internal/constraint"
	"cbfww/internal/core"
	"cbfww/internal/storage"
)

const fullSchema = `
# tiers, fastest first
tier memory capacity 64MB latency 0
tier disk capacity 2GB latency 10
tier tertiary latency 100

summary ratio 0.05 threshold 0.25

admit max-size 4MB
admit max-update-rate 0.01
admit deny-copyrighted
admit deny-prefix http://private.example/

consistency weak min-poll 1m max-poll 1d
`

func TestParseFullSchema(t *testing.T) {
	s, err := Parse(fullSchema)
	if err != nil {
		t.Fatal(err)
	}
	if s.Storage.MemCapacity != 64*core.MB {
		t.Errorf("MemCapacity = %v", s.Storage.MemCapacity)
	}
	if s.Storage.DiskCapacity != 2*core.GB {
		t.Errorf("DiskCapacity = %v", s.Storage.DiskCapacity)
	}
	if s.Storage.DiskLatency != 10 || s.Storage.TertiaryLatency != 100 {
		t.Errorf("latencies = %v/%v", s.Storage.DiskLatency, s.Storage.TertiaryLatency)
	}
	if s.Storage.SummaryRatio != 0.05 || s.Storage.SummaryThreshold != 0.25 {
		t.Errorf("summary = %v/%v", s.Storage.SummaryRatio, s.Storage.SummaryThreshold)
	}
	if len(s.Admission.Rules()) != 4 {
		t.Errorf("rules = %v", s.Admission.Rules())
	}
	if s.Consistency.Mode != constraint.Weak || s.Consistency.MinPoll != 60 ||
		s.Consistency.MaxPoll != 24*3600 {
		t.Errorf("consistency = %+v", s.Consistency)
	}

	// The compiled admission behaves.
	if err := s.Admission.Check(constraint.Candidate{URL: "http://ok/x", Size: core.MB}); err != nil {
		t.Errorf("valid candidate rejected: %v", err)
	}
	if err := s.Admission.Check(constraint.Candidate{URL: "http://ok/x", Size: 8 * core.MB}); err == nil {
		t.Error("oversize admitted")
	}
	if err := s.Admission.Check(constraint.Candidate{URL: "http://private.example/x", Size: 1}); err == nil {
		t.Error("denied prefix admitted")
	}

	// The compiled storage config constructs a working manager.
	if _, err := storage.NewManager(s.Storage); err != nil {
		t.Errorf("compiled storage config invalid: %v", err)
	}
}

func TestParseDefaults(t *testing.T) {
	s, err := Parse("# nothing but comments\n\n")
	if err != nil {
		t.Fatal(err)
	}
	def := storage.DefaultConfig()
	if s.Storage.MemCapacity != def.MemCapacity {
		t.Error("defaults not preserved")
	}
	if err := s.Admission.Check(constraint.Candidate{Size: 1 << 50}); err != nil {
		t.Error("default admission not admit-all")
	}
}

func TestParseStrongConsistency(t *testing.T) {
	s, err := Parse("consistency strong")
	if err != nil {
		t.Fatal(err)
	}
	if s.Consistency.Mode != constraint.Strong {
		t.Errorf("mode = %v", s.Consistency.Mode)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"bogus directive",
		"tier",
		"tier memory capacity",
		"tier memory capacity 64XB",
		"tier unknown capacity 1MB",
		"tier tertiary capacity 1MB", // unbounded
		"tier memory wat 3",
		"summary ratio abc",
		"summary bogus 1",
		"admit",
		"admit unknown-rule",
		"admit max-size",
		"admit max-size huge",
		"admit max-update-rate xyz",
		"admit deny-prefix",
		"consistency",
		"consistency sorta",
		"consistency weak min-poll never",
		"consistency weak odd",
		// Valid syntax, invalid semantics (latency inversion).
		"tier memory latency 50\ntier disk latency 1",
	}
	for _, text := range bad {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q) succeeded", text)
		}
	}
	// Errors carry line numbers.
	_, err := Parse("tier memory capacity 1MB\nbogus here")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("err = %v, want line number", err)
	}
}

func TestParseSize(t *testing.T) {
	cases := map[string]core.Bytes{
		"512":   512,
		"512B":  512,
		"4KB":   4 * core.KB,
		"2.5MB": core.Bytes(2.5 * float64(core.MB)),
		"1GB":   core.GB,
		"1tb":   core.TB,
	}
	for in, want := range cases {
		got, err := ParseSize(in)
		if err != nil || got != want {
			t.Errorf("ParseSize(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, in := range []string{"", "abc", "-1KB", "KB"} {
		if _, err := ParseSize(in); !errors.Is(err, core.ErrInvalid) {
			t.Errorf("ParseSize(%q) err = %v", in, err)
		}
	}
}

func TestParseTicks(t *testing.T) {
	cases := map[string]core.Duration{
		"90":  90,
		"90s": 90,
		"5m":  300,
		"2h":  7200,
		"1d":  86400,
	}
	for in, want := range cases {
		got, err := ParseTicks(in)
		if err != nil || got != want {
			t.Errorf("ParseTicks(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, in := range []string{"", "x", "-5m", "1.5h"} {
		if _, err := ParseTicks(in); !errors.Is(err, core.ErrInvalid) {
			t.Errorf("ParseTicks(%q) err = %v", in, err)
		}
	}
}

func TestApply(t *testing.T) {
	s, err := Parse("tier memory capacity 1MB latency 0\ntier disk capacity 10MB latency 5\ntier tertiary latency 50")
	if err != nil {
		t.Fatal(err)
	}
	var st storage.Config
	var adm *constraint.Admission
	var cons constraint.Consistency
	s.Apply(&st, &adm, &cons)
	if st.MemCapacity != core.MB || adm == nil || cons.Mode != constraint.Weak {
		t.Errorf("Apply: %+v %v %+v", st, adm, cons)
	}
}
