// Package schema implements the storage schema definition language that
// §4.4 calls for ("Besides self-organizing functions we also need
// facilities like storage schema definition language"): a line-oriented
// DSL that declares the storage hierarchy, admission constraints and the
// consistency discipline, compiled into the corresponding manager
// configurations.
//
// Example schema:
//
//	# tiers, fastest first
//	tier memory capacity 64MB latency 0
//	tier disk capacity 2GB latency 10
//	tier tertiary latency 100
//
//	summary ratio 0.05 threshold 0.25
//
//	admit max-size 4MB
//	admit max-update-rate 0.01
//	admit deny-copyrighted
//	admit deny-prefix http://private.example/
//
//	consistency weak min-poll 1m max-poll 1d
//
// Sizes accept B/KB/MB/GB/TB suffixes; durations accept raw ticks or
// s/m/h/d suffixes (1 tick = 1 second by convention).
package schema

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"

	"cbfww/internal/constraint"
	"cbfww/internal/core"
	"cbfww/internal/storage"
)

// Schema is the compiled result.
type Schema struct {
	Storage     storage.Config
	Admission   *constraint.Admission
	Consistency constraint.Consistency
}

// Parse compiles a schema text. Missing declarations keep the package
// defaults (storage.DefaultConfig, admit-everything, weak consistency).
func Parse(text string) (Schema, error) {
	s := Schema{
		Storage:     storage.DefaultConfig(),
		Admission:   constraint.NewAdmission(),
		Consistency: constraint.DefaultConsistency(),
	}
	var rules []constraint.AdmissionRule

	sc := bufio.NewScanner(strings.NewReader(text))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		var err error
		switch strings.ToLower(fields[0]) {
		case "tier":
			err = s.parseTier(fields[1:])
		case "summary":
			err = s.parseSummary(fields[1:])
		case "admit":
			var rule constraint.AdmissionRule
			rule, err = parseAdmit(fields[1:])
			if rule != nil {
				rules = append(rules, rule)
			}
		case "consistency":
			err = s.parseConsistency(fields[1:])
		default:
			err = fmt.Errorf("unknown directive %q", fields[0])
		}
		if err != nil {
			return Schema{}, fmt.Errorf("schema: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return Schema{}, fmt.Errorf("schema: %w", err)
	}
	if len(rules) > 0 {
		s.Admission = constraint.NewAdmission(rules...)
	}
	// Validate the storage config by constructing a manager.
	if _, err := storage.NewManager(s.Storage); err != nil {
		return Schema{}, fmt.Errorf("schema: %w", err)
	}
	return s, nil
}

// parseTier handles: tier <memory|disk|tertiary> [capacity <size>] [latency <dur>]
func (s *Schema) parseTier(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("%w: tier needs a name", core.ErrInvalid)
	}
	name := strings.ToLower(args[0])
	kv, err := pairs(args[1:])
	if err != nil {
		return err
	}
	for k, v := range kv {
		switch k {
		case "capacity":
			b, err := ParseSize(v)
			if err != nil {
				return err
			}
			switch name {
			case "memory":
				s.Storage.MemCapacity = b
			case "disk":
				s.Storage.DiskCapacity = b
			case "tertiary":
				return fmt.Errorf("%w: tertiary is unbounded", core.ErrInvalid)
			default:
				return fmt.Errorf("%w: unknown tier %q", core.ErrInvalid, name)
			}
		case "latency":
			d, err := ParseTicks(v)
			if err != nil {
				return err
			}
			switch name {
			case "memory":
				s.Storage.MemLatency = d
			case "disk":
				s.Storage.DiskLatency = d
			case "tertiary":
				s.Storage.TertiaryLatency = d
			default:
				return fmt.Errorf("%w: unknown tier %q", core.ErrInvalid, name)
			}
		default:
			return fmt.Errorf("%w: unknown tier attribute %q", core.ErrInvalid, k)
		}
	}
	return nil
}

// parseSummary handles: summary ratio <f> [threshold <f>]
func (s *Schema) parseSummary(args []string) error {
	kv, err := pairs(args)
	if err != nil {
		return err
	}
	for k, v := range kv {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return fmt.Errorf("%w: bad number %q", core.ErrInvalid, v)
		}
		switch k {
		case "ratio":
			s.Storage.SummaryRatio = f
		case "threshold":
			s.Storage.SummaryThreshold = f
		default:
			return fmt.Errorf("%w: unknown summary attribute %q", core.ErrInvalid, k)
		}
	}
	return nil
}

// parseAdmit handles the admission-rule forms.
func parseAdmit(args []string) (constraint.AdmissionRule, error) {
	if len(args) < 1 {
		return nil, fmt.Errorf("%w: admit needs a rule", core.ErrInvalid)
	}
	switch strings.ToLower(args[0]) {
	case "max-size":
		if len(args) != 2 {
			return nil, fmt.Errorf("%w: admit max-size <size>", core.ErrInvalid)
		}
		b, err := ParseSize(args[1])
		if err != nil {
			return nil, err
		}
		return constraint.MaxSize(b), nil
	case "max-update-rate":
		if len(args) != 2 {
			return nil, fmt.Errorf("%w: admit max-update-rate <rate>", core.ErrInvalid)
		}
		r, err := strconv.ParseFloat(args[1], 64)
		if err != nil {
			return nil, fmt.Errorf("%w: bad rate %q", core.ErrInvalid, args[1])
		}
		return constraint.MaxUpdateRate(r), nil
	case "deny-copyrighted":
		return constraint.DenyCopyrighted(), nil
	case "deny-prefix":
		if len(args) != 2 {
			return nil, fmt.Errorf("%w: admit deny-prefix <url-prefix>", core.ErrInvalid)
		}
		return constraint.DenyURLPrefix(args[1]), nil
	default:
		return nil, fmt.Errorf("%w: unknown admission rule %q", core.ErrInvalid, args[0])
	}
}

// parseConsistency handles: consistency <strong|weak> [min-poll d] [max-poll d]
func (s *Schema) parseConsistency(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("%w: consistency needs a mode", core.ErrInvalid)
	}
	switch strings.ToLower(args[0]) {
	case "strong":
		s.Consistency = constraint.Consistency{Mode: constraint.Strong}
	case "weak":
		s.Consistency.Mode = constraint.Weak
	default:
		return fmt.Errorf("%w: unknown consistency mode %q", core.ErrInvalid, args[0])
	}
	kv, err := pairs(args[1:])
	if err != nil {
		return err
	}
	for k, v := range kv {
		d, err := ParseTicks(v)
		if err != nil {
			return err
		}
		switch k {
		case "min-poll":
			s.Consistency.MinPoll = d
		case "max-poll":
			s.Consistency.MaxPoll = d
		default:
			return fmt.Errorf("%w: unknown consistency attribute %q", core.ErrInvalid, k)
		}
	}
	return nil
}

// pairs turns ["k1" "v1" "k2" "v2"] into a map.
func pairs(args []string) (map[string]string, error) {
	if len(args)%2 != 0 {
		return nil, fmt.Errorf("%w: attributes come in key value pairs", core.ErrInvalid)
	}
	m := make(map[string]string, len(args)/2)
	for i := 0; i < len(args); i += 2 {
		m[strings.ToLower(args[i])] = args[i+1]
	}
	return m, nil
}

// ParseSize parses "512", "4KB", "2.5MB", "1GB", "1TB".
func ParseSize(s string) (core.Bytes, error) {
	u := strings.ToUpper(s)
	mult := core.Bytes(1)
	switch {
	case strings.HasSuffix(u, "TB"):
		mult, u = core.TB, u[:len(u)-2]
	case strings.HasSuffix(u, "GB"):
		mult, u = core.GB, u[:len(u)-2]
	case strings.HasSuffix(u, "MB"):
		mult, u = core.MB, u[:len(u)-2]
	case strings.HasSuffix(u, "KB"):
		mult, u = core.KB, u[:len(u)-2]
	case strings.HasSuffix(u, "B"):
		u = u[:len(u)-1]
	}
	f, err := strconv.ParseFloat(u, 64)
	if err != nil || f < 0 {
		return 0, fmt.Errorf("%w: bad size %q", core.ErrInvalid, s)
	}
	return core.Bytes(f * float64(mult)), nil
}

// ParseTicks parses a duration in ticks: "90", "90s", "5m", "2h", "1d"
// (1 tick = 1 second).
func ParseTicks(s string) (core.Duration, error) {
	u := strings.ToLower(s)
	mult := int64(1)
	switch {
	case strings.HasSuffix(u, "d"):
		mult, u = 24*3600, u[:len(u)-1]
	case strings.HasSuffix(u, "h"):
		mult, u = 3600, u[:len(u)-1]
	case strings.HasSuffix(u, "m"):
		mult, u = 60, u[:len(u)-1]
	case strings.HasSuffix(u, "s"):
		u = u[:len(u)-1]
	}
	n, err := strconv.ParseInt(u, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("%w: bad duration %q", core.ErrInvalid, s)
	}
	return core.Duration(n * mult), nil
}

// Apply merges the schema into a warehouse-style configuration trio.
// (Defined here rather than on warehouse.Config to keep the dependency
// arrow pointing from schema to the managers only.)
func (s Schema) Apply(st *storage.Config, adm **constraint.Admission, cons *constraint.Consistency) {
	*st = s.Storage
	*adm = s.Admission
	*cons = s.Consistency
}
