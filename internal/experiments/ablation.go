package experiments

import (
	"fmt"

	"cbfww/internal/cluster"
	"cbfww/internal/core"
	"cbfww/internal/text"
	"cbfww/internal/warehouse"
	"cbfww/internal/workload"
)

// A1OmegaTitleWeight ablates §5.3's ω (title-over-body weight). Two
// logical documents that share a terminal document differ only in their
// anchor-text titles; higher ω should push their cosine similarity apart
// (lower = more distinguishable) without destroying similarity between
// documents that genuinely share a topic.
func A1OmegaTitleWeight(seed int64) Table {
	rng := newRand(seed)
	vocab := workload.NewVocabulary(4, 20, 6)
	corpus := text.NewCorpus()
	for i := 0; i < 20; i++ {
		corpus.Add(vocab.Sentence(rng, i%4, 25, 0.1))
	}
	body := vocab.Sentence(rng, 0, 30, 0.1) // shared terminal body
	titleA := vocab.Sentence(rng, 1, 6, 0)  // tourist-ish perspective
	titleB := vocab.Sentence(rng, 2, 6, 0)  // business-ish perspective
	sameTopicTitle := vocab.Sentence(rng, 1, 6, 0)

	t := Table{
		Title: "Ablation A1: §5.3 title weight ω",
		Header: []string{"omega", "cos(different perspectives)", "cos(same perspective)",
			"separation"},
	}
	for _, omega := range []float64{1, 2, 3, 5, 10} {
		va := corpus.WeightedVector(titleA, body, omega)
		vb := corpus.WeightedVector(titleB, body, omega)
		vsame := corpus.WeightedVector(sameTopicTitle, body, omega)
		diff := va.Cosine(vb)
		same := va.Cosine(vsame)
		t.AddRow(fmt.Sprintf("%.0f", omega), f3(diff), f3(same), f3(same-diff))
	}
	t.AddNote("shared terminal body; titles from different (resp. the same) topic vocabularies")
	t.AddNote("expected shape: separation grows with ω — title stress is what distinguishes perspectives (§5.3)")
	return t
}

// A2RegionThreshold ablates the semantic-region similarity threshold: too
// low merges topics (few, impure regions); too high shatters them (many
// tiny regions). Purity and region count across the sweep.
func A2RegionThreshold(seed int64) Table {
	const nTopics, perTopic = 6, 25
	rng := newRand(seed)
	vocab := workload.NewVocabulary(nTopics, 20, 6)
	corpus := text.NewCorpus()
	var points []cluster.Point
	labels := make(map[core.ObjectID]int)
	id := core.ObjectID(1)
	for topic := 0; topic < nTopics; topic++ {
		for i := 0; i < perTopic; i++ {
			doc := vocab.Sentence(rng, topic, 30, 0.15)
			points = append(points, cluster.Point{ID: id, Vec: corpus.VectorizeNew(doc)})
			labels[id] = topic
			id++
		}
	}
	rng.Shuffle(len(points), func(i, j int) { points[i], points[j] = points[j], points[i] })

	t := Table{
		Title:  "Ablation A2: semantic-region similarity threshold",
		Header: []string{"minSim", "regions", "purity", "avg members"},
	}
	for _, minSim := range []float64{0.05, 0.10, 0.15, 0.30, 0.60} {
		o, err := cluster.NewOnline(minSim, 0)
		if err != nil {
			panic(err)
		}
		of := make(map[core.ObjectID]int)
		for _, p := range points {
			of[p.ID] = o.Assign(p)
		}
		avg := float64(len(points)) / float64(o.Len())
		t.AddRow(f2(minSim), itoa(o.Len()), f3(cluster.Purity(of, labels)), f2(avg))
	}
	t.AddNote("%d documents, %d ground-truth topics", len(points), nTopics)
	t.AddNote("expected shape: purity rises with the threshold while regions stay few; past the sweet spot regions shatter (many regions, avg members -> 1)")
	return t
}

// A3AdmissionDecay ablates the admission-estimate decay rate: too slow
// and stale estimates pollute memory (unproven-newcomer occupancy); too
// fast and measured heat alone decides (losing nothing here, but losing
// warm-up in the topic-sensor scenario — see E-X2).
func A3AdmissionDecay(seed int64) Table {
	t := Table{
		Title:  "Ablation A3: admission-estimate decay per maintenance sweep",
		Header: []string{"decay", "unproven-newcomer occupancy", "memory hit ratio", "mean latency"},
	}
	for _, decay := range []float64{0.99, 0.9, 0.8, 0.5} {
		wd := buildWorld(seed, 20, 100, 2000, 300_000, nil, func(c *warehouse.Config) {
			c.AdmissionDecay = decay
		}, func(tc *workload.TraceConfig) {
			tc.TopicAffinity = 0.9
			tc.FollowLinkProb = 0.4
		})
		counts := make(map[string]int)
		var wasteSum float64
		var samples int
		next := core.Time(3600)
		for _, r := range wd.trace.Log {
			if r.Time.After(wd.clock.Now()) {
				wd.clock.Set(r.Time)
			}
			if wd.clock.Now() >= next {
				residents, oneTimers := 0, 0
				for _, info := range wd.w.Pages() {
					if info.Tier == "memory" {
						residents++
						if counts[info.URL] <= 1 {
							oneTimers++
						}
					}
				}
				if residents > 0 {
					wasteSum += float64(oneTimers) / float64(residents)
					samples++
				}
				if _, err := wd.w.Maintain(); err != nil {
					panic(err)
				}
				for next <= wd.clock.Now() {
					next = next.Add(3600)
				}
			}
			counts[r.URL]++
			if _, err := wd.w.Get(r.User, r.URL); err != nil {
				panic(err)
			}
		}
		waste := 0.0
		if samples > 0 {
			waste = wasteSum / float64(samples)
		}
		st := wd.w.Stats()
		t.AddRow(f2(decay), pct(waste),
			pct(float64(st.MemoryHits)/float64(st.Requests)), f2(st.MeanLatency()))
	}
	t.AddNote("expected shape: slower decay -> more stale-estimate pollution; the default 0.8 sits on the knee")
	return t
}
