package experiments

import (
	"fmt"

	"cbfww/internal/core"
	"cbfww/internal/storage"
	"cbfww/internal/workload"
)

// TierCurveStacks is the cbfww-bench -tiers vocabulary: the tier stacks
// the tc experiment can sweep.
var TierCurveStacks = []string{"classic", "mmap"}

// TierCurves regenerates the access-cost-vs-capacity curves of the
// dynamic-capacity storage stack: one seeded trace replays against each
// selected tier stack while the fast tiers' capacity targets sweep
// downward through fractions of the working set. Every sweep point
// retargets the *live* manager with ResizeTiers — incremental
// re-placement, not a rebuild — so the moved/demoted columns double as a
// delta-set check: each step migrates only the frontier between the old
// and new water lines, not the whole population.
//
// The stacks:
//
//   - classic: the Figure-3 memory(0)/disk(10)/tertiary(100) table;
//   - mmap:    the four-level table with an NVM-shaped warm tier at a
//     quarter of the disk cost between memory and disk (sized 2× the
//     memory target, swept with it).
//
// Expected shape: cost rises as capacity shrinks on both stacks, but the
// warm tier flattens the curve — objects crowded out of memory land at
// the warm cost instead of paying the full disk latency.
func TierCurves(seed int64, stacks []string) Table {
	clock := core.NewSimClock(0)
	wcfg := workload.DefaultWebConfig()
	wcfg.Sites, wcfg.PagesPerSite, wcfg.Seed = 8, 40, seed
	g, err := workload.GenerateWeb(clock, wcfg)
	if err != nil {
		panic(err)
	}
	tcfg := workload.DefaultTraceConfig()
	tcfg.Sessions = 1200
	tcfg.Length = 200_000
	tcfg.Seed = seed
	tcfg.UpdatesPerTick = 0
	tr, err := workload.GenerateTrace(g, clock, tcfg)
	if err != nil {
		panic(err)
	}

	ids := make(map[string]core.ObjectID, len(g.PageURLs))
	sizes := make(map[core.ObjectID]core.Bytes, len(g.PageURLs))
	var totalBytes core.Bytes
	for i, url := range g.PageURLs {
		id := core.ObjectID(i + 1)
		ids[url] = id
		p, _ := g.Web.Lookup(url)
		sizes[id] = p.Size
		totalBytes += p.Size
	}
	counts := make(map[core.ObjectID]int, len(ids))
	for _, r := range tr.Log {
		counts[ids[r.URL]]++
	}

	fractions := []float64{0.4, 0.2, 0.1, 0.05, 0.02}

	t := Table{
		Title:  "Access cost vs fast-tier capacity (incremental resize, mean ticks)",
		Header: []string{"stack", "mem frac", "mem cap", "cost", "moved Δ", "demoted Δ"},
	}
	for _, stack := range stacks {
		memCap := func(f float64) core.Bytes {
			b := core.Bytes(f * float64(totalBytes))
			if b < 1 {
				b = 1
			}
			return b
		}
		cfg := storage.Config{
			MemCapacity:  memCap(fractions[0]),
			DiskCapacity: totalBytes / 2,
			MemLatency:   0, DiskLatency: 10, TertiaryLatency: 100,
		}
		if stack == "mmap" {
			cfg = cfg.WithMmapTier(2 * memCap(fractions[0]))
		}
		m, err := storage.NewManager(cfg)
		if err != nil {
			panic(err)
		}
		batch := make([]storage.Admission, 0, len(ids))
		for _, id := range ids {
			c := float64(counts[id])
			batch = append(batch, storage.Admission{
				ID: id, Size: sizes[id], Version: 1,
				Priority: core.Priority(c / (1 + c)),
			})
		}
		if err := m.AdmitAll(batch); err != nil {
			panic(err)
		}

		prevMoved, prevDemoted := movedTotals(m)
		for _, f := range fractions {
			targets := map[string]core.Bytes{"memory": memCap(f)}
			if stack == "mmap" {
				targets["mmap"] = 2 * memCap(f)
			}
			if err := m.ResizeTiers(targets); err != nil {
				panic(err)
			}
			var cost float64
			for _, r := range tr.Log {
				res, err := m.Access(ids[r.URL])
				if err != nil {
					panic(err)
				}
				cost += float64(res.Latency)
			}
			moved, demoted := movedTotals(m)
			t.AddRow(stack, f2(f), fmt.Sprintf("%v", memCap(f)),
				f2(cost/float64(len(tr.Log))),
				fmt.Sprintf("%v", moved-prevMoved),
				fmt.Sprintf("%v", demoted-prevDemoted))
			prevMoved, prevDemoted = moved, demoted
		}
		m.Close()
	}
	t.AddNote("working set %v over %d objects, %d requests; capacities sweep downward on a live manager",
		totalBytes, len(ids), len(tr.Log))
	t.AddNote("moved/demoted Δ: bytes migrated by that step's resize alone — the incremental delta set")
	t.AddNote("expected shape: cost climbs as capacity shrinks; the mmap warm tier flattens the curve")
	return t
}

// movedTotals sums moved and demoted bytes across the live tier table.
func movedTotals(m *storage.Manager) (moved, demoted core.Bytes) {
	for _, ti := range m.Tiers() {
		moved += ti.Moved
		demoted += ti.Demoted
	}
	return moved, demoted
}
