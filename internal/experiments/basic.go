package experiments

import (
	"fmt"

	"cbfww/internal/core"
	"cbfww/internal/object"
	"cbfww/internal/simweb"
	"cbfww/internal/text"
	"cbfww/internal/usage"
)

// T1Capabilities regenerates Table 1 of the paper — the comparison among
// database systems, data-stream systems and traditional caches — extended
// with the CBFWW column the paper argues for. The CBFWW column is not
// static text: each capability cell is derived from what this codebase
// actually implements (checked by the E-T1 test).
func T1Capabilities() Table {
	t := Table{
		Title: "Table 1: Databases vs Data Streams vs Caches vs CBFWW",
		Header: []string{"", "Database Systems", "Data Stream Systems",
			"Traditional Caches", "CBFWW (this system)"},
	}
	t.AddRow("Objectives", "Data Management", "Online Decision Support",
		"Efficiency", "Cache+DB+Search+Warehouse")
	t.AddRow("Data Store", "Persistent Store", "Little or No Store",
		"Temporary Store", "Persistent tiered store")
	t.AddRow("Storage Capacity", "No Limit Assumed", "Limited Memory",
		"Limited Storage", "Bound-free (tiered)")
	t.AddRow("Data Manipulation", "Insert, Delete, Update", "Append-Only",
		"Insert, Delete", "Fetch-through + versioning")
	t.AddRow("Query Capability", "Select, Join, Project, Aggregate",
		"(Approximate) Aggregate", "Not Allowed",
		"Select + MRU/LRU/MFU/LFU + MENTION")
	t.AddRow("Management System", "DBMS", "DSMS", "Ad hoc", "CBFWW managers (Fig. 1)")
	t.AddNote("CBFWW column cells are verified against the implementation by TestT1CellsMatchImplementation")
	return t
}

// T2UsageAttributes regenerates Table 2 — the usage-history attributes —
// by running a scripted reference/modification sequence through the usage
// tracker and printing each attribute's value, demonstrating the exact
// semantics (k-th reference times, -infinity before k references,
// modification-invariant firstref).
func T2UsageAttributes() Table {
	clock := core.NewSimClock(0)
	tr := usage.NewTracker(clock, 7*24*3600, 0.3)
	const id = core.ObjectID(1)

	// Scripted history: references at t=10, 30, 100; modification at t=50.
	clock.Set(10)
	tr.Touch(id)
	clock.Set(30)
	tr.Touch(id)
	clock.Set(50)
	tr.Modify(id)
	clock.Set(100)
	tr.Touch(id)
	tr.SetShared(id, 2)

	snap, _ := tr.Get(id)
	t := Table{
		Title:  "Table 2: Attributes Representing History of Past Usage",
		Header: []string{"attribute", "symbol", "value", "description"},
	}
	t.AddRow("frequency", "f_i", fmt.Sprintf("%d", snap.Count), "references recorded (t=10,30,100)")
	t.AddRow("firstref", "t_i", snap.FirstRef.String(), "unchanged by the t=50 modification")
	k1, _ := tr.LastKRef(id, 1)
	k2, _ := tr.LastKRef(id, 2)
	k4, _ := tr.LastKRef(id, 4)
	t.AddRow("lastkref k=1", "t_i^1", k1.String(), "LRU's time-of-last-reference")
	t.AddRow("lastkref k=2", "t_i^2", k2.String(), "LRU-2's attribute")
	t.AddRow("lastkref k=4", "t_i^4", k4.String(), "fewer than 4 refs: -infinity")
	t.AddRow("lastkmod k=1", "u_i^1", snap.LastMod.String(), "time of last modification")
	t.AddRow("shared", "r", fmt.Sprintf("%d", snap.Shared), "number of containers")
	t.AddRow("window freq", "-", fmt.Sprintf("%d", tr.WindowFrequency(id)), "exact sliding-window count")
	t.AddRow("aged freq", "-", fmt.Sprintf("%.3f", tr.AgedFrequency(id)), "lambda-aging estimate")
	return t
}

// F2SharedObjectPriority regenerates the Figure 2 scenario: raw object E5
// shared by physical pages D2 (12 refs/week) and D3 (7 refs/week). The
// naive frequency rank puts E5 first (≈20 direct fetches); the structural
// rule assigns max(12, 7) = 12.
func F2SharedObjectPriority() Table {
	h := object.NewHierarchy()
	d2, _ := h.Add(object.KindPhysical, "D2", 0, "", "")
	d3, _ := h.Add(object.KindPhysical, "D3", 0, "", "")
	e5, _ := h.Add(object.KindRaw, "E5", 0, "", "")
	mustLink(h, d2.ID, e5.ID)
	mustLink(h, d3.ID, e5.ID)

	naive := map[core.ObjectID]core.Priority{d2.ID: 12, d3.ID: 7, e5.ID: 20}
	eff := h.EffectivePriorities(naive)

	t := Table{
		Title:  "Figure 2: Priority of a Shared Raw Web Object",
		Header: []string{"object", "direct refs/week", "naive priority", "structural priority"},
	}
	t.AddRow("D2 (physical page)", "12", "12", f2(float64(eff[d2.ID])))
	t.AddRow("D3 (physical page)", "7", "7", f2(float64(eff[d3.ID])))
	t.AddRow("E5 (shared raw object)", "~20 (via containers)", "20", f2(float64(eff[e5.ID])))
	t.AddNote("paper: 'the reasonable priority of E5 should be based on a maximal reference frequency between D2 and D3, which is 12'")
	t.AddNote("shared count r(E5) = %d", h.SharedCount(e5.ID))
	return t
}

func mustLink(h *object.Hierarchy, p, c core.ObjectID) {
	if err := h.Link(p, c); err != nil {
		panic(err)
	}
}

// F6LogicalContent regenerates the §5.2/§5.3 Kyoto example: the logical
// document's title is the concatenation of anchor texts plus the terminal
// title, and the title-weighted vectors distinguish the tourist path from
// the business path even though both end at the same document.
func F6LogicalContent() Table {
	h := object.NewHierarchy()
	b := object.NewBuilder(h)
	pages := []*simweb.Page{
		{URL: "http://k/travel", Title: "Kyoto tourism", Body: "sights and seasons", Size: 1},
		{URL: "http://k/bus", Title: "Bus network", Body: "routes and fares", Size: 1},
		{URL: "http://k/stations", Title: "Station list", Body: "stations by line", Size: 1},
		{URL: "http://k/ntt", Title: "NTT Western Japan", Body: "corporate directory", Size: 1},
		{URL: "http://k/office", Title: "Kyoto Office", Body: "office locations", Size: 1},
		{URL: "http://k/location", Title: "Office location", Body: "how to find us", Size: 1},
		{URL: "http://k/station", Title: "Access to the Shinkansen superexpress",
			Body: "platform schedule transfer gates", Size: 1},
	}
	for _, p := range pages {
		if _, err := b.AddPhysicalPage(p, nil); err != nil {
			panic(err)
		}
	}
	// The paper's example: anchor texts "Travel in Kyoto", "List of bus
	// stations", "Kyoto station" followed by the terminal document titled
	// "Access to the Shinkansen superexpress".
	tourist, err := b.AddLogicalPage([]object.PathStep{
		{URL: "http://k/travel", AnchorText: "Travel in Kyoto"},
		{URL: "http://k/bus", AnchorText: "List of bus stations"},
		{URL: "http://k/stations", AnchorText: "Kyoto station"},
		{URL: "http://k/station"},
	})
	if err != nil {
		panic(err)
	}
	// §5.3's second reader: "NTT Western Japan", "Kyoto Office",
	// "Location", then the same terminal document.
	business, err := b.AddLogicalPage([]object.PathStep{
		{URL: "http://k/ntt", AnchorText: "NTT Western Japan"},
		{URL: "http://k/office", AnchorText: "Kyoto Office"},
		{URL: "http://k/location", AnchorText: "Location"},
		{URL: "http://k/station"},
	})
	if err != nil {
		panic(err)
	}

	corpus := text.NewCorpus()
	for _, p := range pages {
		corpus.Add(p.Title + "\n" + p.Body)
	}
	vt := corpus.WeightedVector(tourist.Title, tourist.BodyText(), 3)
	vb := corpus.WeightedVector(business.Title, business.BodyText(), 3)
	cross := vt.Cosine(vb)

	t := Table{
		Title:  "Figure 6 / §5.3: Logical Document Content Assembly",
		Header: []string{"logical document", "assembled title"},
	}
	t.AddRow("tourist path", tourist.Title)
	t.AddRow("business path", business.Title)
	t.AddNote("both paths share terminal body %q", tourist.BodyText())
	t.AddNote("cosine(tourist, business) = %.3f — same terminal, distinguishable perspectives (omega=3)", cross)
	return t
}
