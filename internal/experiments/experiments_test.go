package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// cell fetches a table cell by row label prefix and column index.
func cell(t *testing.T, tb Table, rowPrefix string, col int) string {
	t.Helper()
	for _, row := range tb.Rows {
		if strings.HasPrefix(row[0], rowPrefix) {
			if col >= len(row) {
				t.Fatalf("row %q has %d cells", rowPrefix, len(row))
			}
			return row[col]
		}
	}
	t.Fatalf("no row with prefix %q in %q", rowPrefix, tb.Title)
	return ""
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("bad pct cell %q: %v", s, err)
	}
	return v
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad float cell %q: %v", s, err)
	}
	return v
}

func TestT1CellsMatchImplementation(t *testing.T) {
	tb := T1Capabilities()
	if len(tb.Rows) != 6 {
		t.Fatalf("Table 1 has %d rows, want 6", len(tb.Rows))
	}
	// The CBFWW query cell must advertise exactly the modifiers the query
	// package implements.
	qcell := cell(t, tb, "Query Capability", 4)
	for _, mod := range []string{"MRU", "LRU", "MFU", "LFU", "MENTION"} {
		if !strings.Contains(qcell, mod) {
			t.Errorf("CBFWW query cell %q missing %s", qcell, mod)
		}
	}
	out := tb.String()
	if !strings.Contains(out, "Data Stream Systems") {
		t.Error("rendered table missing paper's column")
	}
}

func TestT2AttributesExactValues(t *testing.T) {
	tb := T2UsageAttributes()
	if got := cell(t, tb, "frequency", 2); got != "3" {
		t.Errorf("frequency = %s", got)
	}
	if got := cell(t, tb, "firstref", 2); got != "t10" {
		t.Errorf("firstref = %s", got)
	}
	if got := cell(t, tb, "lastkref k=1", 2); got != "t100" {
		t.Errorf("lastkref(1) = %s", got)
	}
	if got := cell(t, tb, "lastkref k=4", 2); got != "never" {
		t.Errorf("lastkref(4) = %s, want -infinity sentinel", got)
	}
	if got := cell(t, tb, "lastkmod k=1", 2); got != "t50" {
		t.Errorf("lastkmod = %s", got)
	}
	if got := cell(t, tb, "shared", 2); got != "2" {
		t.Errorf("shared = %s", got)
	}
}

func TestF2StructuralPriorityIsTwelve(t *testing.T) {
	tb := F2SharedObjectPriority()
	if got := cell(t, tb, "E5", 3); got != "12.00" {
		t.Errorf("structural priority of E5 = %s, want 12.00 (the paper's max rule)", got)
	}
	if got := cell(t, tb, "E5", 2); got != "20" {
		t.Errorf("naive priority of E5 = %s", got)
	}
}

func TestF6TitleAssembly(t *testing.T) {
	tb := F6LogicalContent()
	title := cell(t, tb, "tourist path", 1)
	want := "Travel in Kyoto, List of bus stations, Kyoto station, Access to the Shinkansen superexpress"
	if title != want {
		t.Errorf("assembled title:\n got %q\nwant %q", title, want)
	}
	// The similarity note must show the two paths are distinguishable.
	found := false
	for _, n := range tb.Notes {
		if strings.Contains(n, "cosine") {
			found = true
			v := strings.Split(n, "= ")[1]
			cos := parseF(t, strings.Fields(v)[0])
			if cos >= 0.95 {
				t.Errorf("paths indistinguishable: cos=%v", cos)
			}
		}
	}
	if !found {
		t.Error("no cosine note")
	}
}

func TestC1OneTimerRegime(t *testing.T) {
	tb := C1OneTimers(1)
	if len(tb.Rows) != 6 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	// At s=0.9 with churn the ratio exceeds the paper's 60% claim; at
	// least the no-churn s=0.9 row must be over 50%.
	for _, row := range tb.Rows {
		if row[0] == "0.90" && row[1] == "0.002" {
			if got := parsePct(t, row[4]); got < 55 {
				t.Errorf("s=0.9 churn one-timer ratio = %v%%, want >= 55%%", got)
			}
		}
	}
	// Heavier skew concentrates reuse in a smaller head, so the one-timer
	// mass stays substantial at every s; sanity-check the no-churn rows
	// are all above 40%.
	for _, row := range tb.Rows {
		if row[1] == "0" {
			if got := parsePct(t, row[4]); got < 40 {
				t.Errorf("s=%s no-churn one-timer ratio = %v%%, want >= 40%%", row[0], got)
			}
		}
	}
}

func TestF5RecoversPaperPaths(t *testing.T) {
	tb := F5LogicalDocuments(1)
	foundADG, foundABE := false, false
	for _, row := range tb.Rows {
		switch row[0] {
		case "/A -> /D -> /G":
			foundADG = true
			if row[1] != "13" {
				t.Errorf("A-D-G support = %s, want 13", row[1])
			}
		case "/A -> /B -> /E":
			foundABE = true
			if row[1] != "5" {
				t.Errorf("A-B-E support = %s, want 5", row[1])
			}
		}
	}
	if !foundADG || !foundABE {
		t.Errorf("paper paths not mined: %+v", tb.Rows)
	}
	// The top row is the most supported.
	if tb.Rows[0][0] != "/A -> /D -> /G" {
		t.Errorf("top path = %s", tb.Rows[0][0])
	}
}

func TestF7ClusterQuality(t *testing.T) {
	tb := F7SemanticRegions(1)
	online := parseF(t, cell(t, tb, "online single-pass", 2))
	if online < 0.75 {
		t.Errorf("online purity = %v", online)
	}
	// SSQ decreases with k for the batch algorithm.
	var prev float64 = 1e18
	for _, row := range tb.Rows {
		if !strings.HasPrefix(row[0], "k-median") {
			continue
		}
		ssq := parseF(t, row[3])
		if ssq > prev*1.05 {
			t.Errorf("SSQ rose with k: %v -> %v", prev, ssq)
		}
		prev = ssq
	}
}

func TestF3PlacementOrdering(t *testing.T) {
	tb := F3StorageMapping(1)
	for _, row := range tb.Rows {
		prio := parseF(t, row[1])
		rnd := parseF(t, row[3])
		oracle := parseF(t, row[4])
		if prio >= rnd {
			t.Errorf("latencies %s: priority %v not better than random %v", row[0], prio, rnd)
		}
		if oracle > prio+1e-9 {
			t.Errorf("latencies %s: oracle %v worse than priority %v", row[0], oracle, prio)
		}
	}
}

func TestF8AdmissionBeatsLRUStyle(t *testing.T) {
	tb := F8AdmissionPriority(1)
	// The headline claim: admission-time priority keeps the never-reused
	// arrival mass out of memory, while "newest = top" floods it.
	wc := parsePct(t, cell(t, tb, "memory occupied by unproven newcomers", 1))
	wt := parsePct(t, cell(t, tb, "memory occupied by unproven newcomers", 2))
	wb := parsePct(t, cell(t, tb, "memory occupied by unproven newcomers", 3))
	if wc >= wt {
		t.Errorf("CBFWW newcomer occupancy %v%% not below newest=top %v%%", wc, wt)
	}
	if wt < 50 {
		t.Errorf("newest=top occupancy %v%% — expected the one-timer flood (>50%%)", wt)
	}
	if wb > wc {
		t.Logf("pessimist waste %v%% above CBFWW %v%% (unusual but allowed)", wb, wc)
	}
	// Memory hit ratio: evidence admission far above newest=top.
	hc := parsePct(t, cell(t, tb, "memory-tier hit ratio", 1))
	ht := parsePct(t, cell(t, tb, "memory-tier hit ratio", 2))
	if hc <= ht {
		t.Errorf("CBFWW memory hits %v%% not above newest=top %v%%", hc, ht)
	}
	// And it does not pay in overall latency.
	lc := parseF(t, cell(t, tb, "mean access latency", 1))
	lt := parseF(t, cell(t, tb, "mean access latency", 2))
	if lc > lt*1.02 {
		t.Errorf("CBFWW latency %v above newest=top %v", lc, lt)
	}
}

func TestX1AgingTracksWindow(t *testing.T) {
	tb := X1FrequencyEstimators(1)
	// Window truth row must exist with zero error; aging rows have bounded
	// error and far fewer entries than the window's peak.
	var windowEntries, agingEntries float64
	for _, row := range tb.Rows {
		if strings.HasPrefix(row[0], "sliding window") {
			windowEntries = parseF(t, row[2])
		}
		if strings.HasPrefix(row[0], "λ-aging λ=0.3") {
			agingEntries = parseF(t, row[2])
			if rmse := parseF(t, row[1]); rmse > 10 {
				t.Errorf("aging RMSE = %v", rmse)
			}
		}
	}
	if windowEntries <= agingEntries {
		t.Errorf("window entries %v not above aging entries %v — the paper's overhead claim", windowEntries, agingEntries)
	}
}

func TestX2SensorImprovesEventWarmth(t *testing.T) {
	tb := X2TopicSensor(1)
	off := parsePct(t, cell(t, tb, "event-window warm ratio", 1))
	on := parsePct(t, cell(t, tb, "event-window warm ratio", 2))
	if on <= off {
		t.Errorf("sensor did not improve event warmth: off=%v%% on=%v%%", off, on)
	}
	offPre := cell(t, tb, "prefetches", 1)
	onPre := cell(t, tb, "prefetches", 2)
	if offPre != "0" {
		t.Errorf("sensor-off prefetches = %s", offPre)
	}
	if onPre == "0" {
		t.Error("sensor-on produced no prefetches")
	}
}

func TestX3BoundedBelowCeiling(t *testing.T) {
	tb := X3BoundedBaselines(1)
	for _, row := range tb.Rows {
		ceiling := parsePct(t, row[5])
		prev := -1.0
		for col := 1; col <= 4; col++ {
			v := parsePct(t, row[col])
			if v > ceiling+0.2 {
				t.Errorf("%s at col %d: %v%% above INF ceiling %v%%", row[0], col, v, ceiling)
			}
			if strings.Contains(row[0], "LRU") && col > 1 && v+2 < prev {
				t.Errorf("%s hit ratio fell sharply with more capacity: %v -> %v", row[0], prev, v)
			}
			prev = v
		}
	}
}

func TestX4CopyControlScenarios(t *testing.T) {
	tb := X4CopyControl(1)
	for _, row := range tb.Rows {
		if row[4] != "ok" {
			t.Errorf("%s: invariants broken: %s", row[0], row[4])
		}
	}
	if got := cell(t, tb, "drop memory", 3); got != "0" {
		t.Errorf("drop memory lost %s objects", got)
	}
	if got := cell(t, tb, "drop memory+disk", 2); got == "0" {
		t.Error("stale recoveries expected after updates since backup")
	}
	if got := cell(t, tb, "drop all tiers", 3); got == "0" {
		t.Error("total loss should lose objects")
	}
}

func TestX5StrongServesNoStale(t *testing.T) {
	tb := X5Consistency(1)
	if got := cell(t, tb, "strong", 4); got != "0" {
		t.Errorf("strong mode served %s stale", got)
	}
	strongReval := parseF(t, cell(t, tb, "strong", 1))
	weakReval := parseF(t, cell(t, tb, "weak", 1))
	if weakReval >= strongReval {
		t.Errorf("weak revalidations %v not below strong %v", weakReval, strongReval)
	}
	weakStale := parseF(t, cell(t, tb, "weak", 4))
	if weakStale == 0 {
		t.Log("weak mode served no stale content on this trace (acceptable but unusual)")
	}
}

func TestQ1AllQueriesSucceed(t *testing.T) {
	tb := Q1PopularityQueries(1)
	if len(tb.Rows) != 4 {
		t.Fatalf("%d query rows", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if strings.HasPrefix(row[1], "ERR") {
			t.Errorf("%s failed: %s", row[0], row[1])
		}
	}
}

func TestAnalyzerHotSpotsShortLifetimes(t *testing.T) {
	tb := AnalyzerHotSpots(1)
	var ev, bg float64
	for _, row := range tb.Rows {
		switch row[0] {
		case "event-driven":
			ev = parseF(t, row[2])
		case "background":
			bg = parseF(t, row[2])
		}
	}
	if ev == 0 || bg == 0 {
		t.Skipf("missing class rows: %+v", tb.Rows)
	}
	// The paper's signature: event-driven hot spots live much shorter
	// lives than steady hot spots.
	if ev >= bg/2 {
		t.Errorf("event-driven lifetime %v not well below background %v", ev, bg)
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{Title: "X", Header: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.AddNote("n=%d", 5)
	out := tb.String()
	for _, want := range []string{"== X ==", "a", "bb", "note: n=5"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}
