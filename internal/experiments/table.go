// Package experiments implements every experiment in EXPERIMENTS.md: one
// function per paper artifact (Table 1, Table 2, Figures 2-8, the §1
// one-timer claim, the §4.3 queries) plus the ablations (frequency
// estimators, topic sensor, bounded baselines, copy control, consistency).
// Each returns a Table that cmd/cbfww-bench prints and bench_test.go
// regenerates.
package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a free-form note printed under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	b.WriteString("== " + t.Title + " ==\n")
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) && len(c) < widths[i] {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	if total > 2 {
		b.WriteString(strings.Repeat("-", total-2) + "\n")
	}
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("note: " + n + "\n")
	}
	return b.String()
}

// JSON renders the table as indented JSON — the machine-readable twin of
// String. Two runs with the same seed must produce identical bytes (the
// regression rig's determinism contract), so nothing time- or
// environment-dependent may ever enter a Table.
func (t Table) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(struct {
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
		Notes  []string   `json:"notes,omitempty"`
	}{t.Title, t.Header, t.Rows, t.Notes}, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// pct formats a ratio as a percentage cell.
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// f2 formats a float cell.
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }

// f3 formats a float cell with more precision.
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }

// itoa formats an int cell.
func itoa(n int) string { return fmt.Sprintf("%d", n) }
