package experiments

import (
	"container/list"
	"fmt"

	"cbfww/internal/core"
	"cbfww/internal/logmine"
	"cbfww/internal/storage"
	"cbfww/internal/usage"
	"cbfww/internal/workload"
)

// F3StorageMapping regenerates Figure 3: mapping the object hierarchy into
// the storage hierarchy adaptively. A trace replays against four placement
// strategies over the same memory/disk/tertiary geometry:
//
//   - priority: the CBFWW way — λ-aged frequency priorities, re-placed
//     every maintenance period (self-organizing);
//   - lru: chained LRU caches (memory over disk), the conventional way;
//   - random: priorities re-drawn at random each period (placement
//     without any signal);
//   - oracle: priorities from true future access counts (the bound).
//
// The measure is mean access cost in ticks, swept over tier latencies.
func F3StorageMapping(seed int64) Table {
	clock := core.NewSimClock(0)
	wcfg := workload.DefaultWebConfig()
	wcfg.Sites, wcfg.PagesPerSite, wcfg.Seed = 10, 60, seed
	g, err := workload.GenerateWeb(clock, wcfg)
	if err != nil {
		panic(err)
	}
	tcfg := workload.DefaultTraceConfig()
	tcfg.Sessions = 2500
	tcfg.Length = 400_000
	tcfg.Seed = seed
	tcfg.UpdatesPerTick = 0
	tr, err := workload.GenerateTrace(g, clock, tcfg)
	if err != nil {
		panic(err)
	}

	// Object universe: container pages only (components follow their
	// containers and would only scale every strategy equally).
	ids := make(map[string]core.ObjectID, len(g.PageURLs))
	sizes := make(map[core.ObjectID]core.Bytes, len(g.PageURLs))
	var totalBytes core.Bytes
	for i, url := range g.PageURLs {
		id := core.ObjectID(i + 1)
		ids[url] = id
		p, _ := g.Web.Lookup(url)
		sizes[id] = p.Size
		totalBytes += p.Size
	}
	memCap := totalBytes / 10
	diskCap := totalBytes / 2

	future := make(map[core.ObjectID]int)
	for _, r := range tr.Log {
		future[ids[r.URL]]++
	}

	t := Table{
		Title:  "Figure 3: Adaptive Mapping into the Storage Hierarchy (mean access cost, ticks)",
		Header: []string{"disk/tape latency", "priority (CBFWW)", "lru", "random", "oracle"},
	}
	for _, lat := range []struct{ disk, tape core.Duration }{
		{10, 100}, {10, 1000}, {50, 1000},
	} {
		prio := replayPriorityPlacement(tr.Log, ids, sizes, memCap, diskCap, lat.disk, lat.tape, false, seed)
		lru := replayChainedLRU(tr.Log, ids, sizes, memCap, diskCap, lat.disk, lat.tape)
		rnd := replayPriorityPlacement(tr.Log, ids, sizes, memCap, diskCap, lat.disk, lat.tape, true, seed)
		oracle := replayOracle(tr.Log, ids, sizes, memCap, diskCap, lat.disk, lat.tape, future)
		t.AddRow(fmt.Sprintf("%d/%d", lat.disk, lat.tape), f2(prio), f2(lru), f2(rnd), f2(oracle))
	}
	t.AddNote("memory holds %v of %v total (10%%), disk 50%%; %d requests over %d objects",
		memCap, totalBytes, len(tr.Log), len(ids))
	t.AddNote("expected shape: priority ≈ lru ≪ random, oracle lower-bounds all; gaps widen with tape latency")
	return t
}

// replayPriorityPlacement replays the log against a storage.Manager whose
// priorities come from λ-aged frequencies (or uniform random when random
// is true), re-applied every maintenance period.
func replayPriorityPlacement(log logmine.Log, ids map[string]core.ObjectID,
	sizes map[core.ObjectID]core.Bytes, memCap, diskCap core.Bytes,
	diskLat, tapeLat core.Duration, random bool, seed int64) float64 {

	m, err := storage.NewManager(storage.Config{
		MemCapacity: memCap, DiskCapacity: diskCap,
		MemLatency: 0, DiskLatency: diskLat, TertiaryLatency: tapeLat,
	})
	if err != nil {
		panic(err)
	}
	batch := make([]storage.Admission, 0, len(ids))
	for _, id := range ids {
		batch = append(batch, storage.Admission{ID: id, Size: sizes[id], Version: 1, Priority: 0})
	}
	if err := m.AdmitAll(batch); err != nil {
		panic(err)
	}

	aging := usage.NewAgingEstimator(0.3)
	aging.EpochLength = 3600
	rng := newRand(seed)
	const period = 3600 // hourly self-organization sweep
	nextApply := core.Time(period)

	var cost float64
	for _, r := range log {
		if r.Time >= nextApply {
			prios := make(map[core.ObjectID]core.Priority, len(ids))
			for _, id := range ids {
				if random {
					prios[id] = core.Priority(rng.Float64())
				} else {
					f := aging.Frequency(id, r.Time)
					prios[id] = core.Priority(f / (1 + f))
				}
			}
			m.ApplyPriorities(prios)
			for nextApply <= r.Time {
				nextApply += period
			}
		}
		id := ids[r.URL]
		aging.Record(id, r.Time)
		res, err := m.Access(id)
		if err != nil {
			panic(err)
		}
		cost += float64(res.Latency)
	}
	return cost / float64(len(log))
}

// replayOracle places by true future access counts once, up front.
func replayOracle(log logmine.Log, ids map[string]core.ObjectID,
	sizes map[core.ObjectID]core.Bytes, memCap, diskCap core.Bytes,
	diskLat, tapeLat core.Duration, future map[core.ObjectID]int) float64 {

	m, err := storage.NewManager(storage.Config{
		MemCapacity: memCap, DiskCapacity: diskCap,
		MemLatency: 0, DiskLatency: diskLat, TertiaryLatency: tapeLat,
	})
	if err != nil {
		panic(err)
	}
	batch := make([]storage.Admission, 0, len(ids))
	for _, id := range ids {
		batch = append(batch, storage.Admission{
			ID: id, Size: sizes[id], Version: 1,
			Priority: core.Priority(future[id]),
		})
	}
	if err := m.AdmitAll(batch); err != nil {
		panic(err)
	}
	var cost float64
	for _, r := range log {
		res, err := m.Access(ids[r.URL])
		if err != nil {
			panic(err)
		}
		cost += float64(res.Latency)
	}
	return cost / float64(len(log))
}

// replayChainedLRU models the conventional design: an LRU memory tier over
// an LRU disk tier over infinite tertiary.
func replayChainedLRU(log logmine.Log, ids map[string]core.ObjectID,
	sizes map[core.ObjectID]core.Bytes, memCap, diskCap core.Bytes,
	diskLat, tapeLat core.Duration) float64 {

	mem := newLRUSet(memCap)
	disk := newLRUSet(diskCap)
	var cost float64
	for _, r := range log {
		id := ids[r.URL]
		size := sizes[id]
		switch {
		case mem.touch(id):
			// memory hit: cost 0
		case disk.touch(id):
			cost += float64(diskLat)
			promote(mem, disk, id, size)
		default:
			cost += float64(tapeLat)
			promote(mem, disk, id, size)
		}
	}
	return cost / float64(len(log))
}

// lruSet is a byte-capacity LRU set of object IDs.
type lruSet struct {
	cap   core.Bytes
	used  core.Bytes
	ll    *list.List
	items map[core.ObjectID]*list.Element
}

type lruEntry struct {
	id   core.ObjectID
	size core.Bytes
}

func newLRUSet(capacity core.Bytes) *lruSet {
	return &lruSet{cap: capacity, ll: list.New(), items: make(map[core.ObjectID]*list.Element)}
}

func (s *lruSet) touch(id core.ObjectID) bool {
	e, ok := s.items[id]
	if ok {
		s.ll.MoveToBack(e)
	}
	return ok
}

// insert adds id, returning evicted entries.
func (s *lruSet) insert(id core.ObjectID, size core.Bytes) []lruEntry {
	if size > s.cap {
		return nil
	}
	var out []lruEntry
	for s.used+size > s.cap {
		front := s.ll.Front()
		if front == nil {
			break
		}
		ent := front.Value.(lruEntry)
		s.ll.Remove(front)
		delete(s.items, ent.id)
		s.used -= ent.size
		out = append(out, ent)
	}
	s.items[id] = s.ll.PushBack(lruEntry{id: id, size: size})
	s.used += size
	return out
}

func (s *lruSet) remove(id core.ObjectID) {
	if e, ok := s.items[id]; ok {
		ent := e.Value.(lruEntry)
		s.ll.Remove(e)
		delete(s.items, id)
		s.used -= ent.size
	}
}

// promote moves id into memory; memory evictees demote to disk.
func promote(mem, disk *lruSet, id core.ObjectID, size core.Bytes) {
	disk.remove(id)
	for _, ev := range mem.insert(id, size) {
		disk.insert(ev.id, ev.size)
	}
}

// X4CopyControl regenerates the §4.4 copy-control behaviour under failure
// injection: memory loss recovers exactly from disk; disk+memory loss
// recovers from (possibly stale) tertiary backups; total loss loses data.
func X4CopyControl(seed int64) Table {
	t := Table{
		Title:  "§4.4: Copy Control and Recovery under Tier Failures",
		Header: []string{"scenario", "restored", "stale", "lost", "invariants"},
	}
	scenario := func(name string, drop []storage.Tier, updateBeforeDrop bool) {
		m, err := storage.NewManager(storage.Config{
			MemCapacity: 100 * core.KB, DiskCapacity: core.MB,
			DiskLatency: 10, TertiaryLatency: 100,
		})
		if err != nil {
			panic(err)
		}
		rng := newRand(seed)
		const n = 50
		for i := 1; i <= n; i++ {
			if err := m.Admit(core.ObjectID(i), core.Bytes(rng.Intn(8)+1)*core.KB, 1,
				core.Priority(rng.Float64())); err != nil {
				panic(err)
			}
		}
		if updateBeforeDrop {
			// Half the objects change after the last backup.
			for i := 1; i <= n/2; i++ {
				if err := m.Update(core.ObjectID(i), 2); err != nil {
					panic(err)
				}
			}
		}
		for _, tier := range drop {
			if err := m.DropTier(tier); err != nil {
				panic(err)
			}
		}
		rep := m.Recover()
		inv := "ok"
		if err := m.CheckInvariants(); err != nil {
			inv = err.Error()
		}
		t.AddRow(name, itoa(rep.Restored), itoa(rep.Stale), itoa(rep.Lost), inv)
	}
	scenario("drop memory", []storage.Tier{storage.Memory}, false)
	scenario("drop disk", []storage.Tier{storage.Disk}, false)
	scenario("drop memory+disk (updates since backup)",
		[]storage.Tier{storage.Memory, storage.Disk}, true)
	scenario("drop all tiers", []storage.Tier{storage.Memory, storage.Disk, storage.Tertiary}, false)
	t.AddNote("memory copies are exact on disk; tertiary backups may lag (stale recoveries); total loss = refetch from origin")
	return t
}

// L1TertiaryLocality reproduces §4.4's locality-of-reference claim: "web
// data once in hot spot may be retrieved together for analysis purpose.
// Such data are clustered in the tertiary storage." An analyst retrieves
// each archived hot-spot group from tape; the table compares the run cost
// under ID-order layout (scattered) against hot-spot-clustered layout,
// across seek/transfer cost ratios.
func L1TertiaryLocality(seed int64) Table {
	const nObjects, nGroups, groupSize = 400, 8, 30
	rng := newRand(seed)

	m, err := storage.NewManager(storage.Config{
		MemCapacity: 1, DiskCapacity: 1, // archive-only: everything on tape
		DiskLatency: 10, TertiaryLatency: 100,
	})
	if err != nil {
		panic(err)
	}
	batch := make([]storage.Admission, nObjects)
	for i := range batch {
		batch[i] = storage.Admission{ID: core.ObjectID(i + 1), Size: 100, Version: 1}
	}
	if err := m.AdmitAll(batch); err != nil {
		panic(err)
	}

	// Hot-spot groups: random disjoint sets of archived objects (the pages
	// of past events).
	perm := rng.Perm(nObjects)
	groups := make([][]core.ObjectID, nGroups)
	for gi := 0; gi < nGroups; gi++ {
		for k := 0; k < groupSize; k++ {
			groups[gi] = append(groups[gi], core.ObjectID(perm[gi*groupSize+k]+1))
		}
	}

	t := Table{
		Title:  "§4.4: Locality of Reference on Tertiary Storage (analysis-run cost, ticks)",
		Header: []string{"seek/transfer ratio", "scattered (ID order)", "clustered by hot spot", "speedup"},
	}
	for _, seek := range []core.Duration{100, 1000, 10000} {
		if err := m.LayoutTertiary(nil); err != nil {
			panic(err)
		}
		var scattered core.Duration
		for _, g := range groups {
			c, err := m.RunCost(g, seek)
			if err != nil {
				panic(err)
			}
			scattered += c
		}
		var clusteredOrder []core.ObjectID
		for _, g := range groups {
			clusteredOrder = append(clusteredOrder, g...)
		}
		if err := m.LayoutTertiary(clusteredOrder); err != nil {
			panic(err)
		}
		var clustered core.Duration
		for _, g := range groups {
			c, err := m.RunCost(g, seek)
			if err != nil {
				panic(err)
			}
			clustered += c
		}
		t.AddRow(fmt.Sprintf("%dx", int64(seek)/100),
			fmt.Sprintf("%d", int64(scattered)),
			fmt.Sprintf("%d", int64(clustered)),
			fmt.Sprintf("%.1fx", float64(scattered)/float64(clustered)))
	}
	t.AddNote("%d archived objects, %d hot-spot groups of %d; each group retrieved in full", nObjects, nGroups, groupSize)
	t.AddNote("expected shape: speedup grows with the seek/transfer ratio — tape seeks dominate scattered layouts")
	return t
}
