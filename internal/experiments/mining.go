package experiments

import (
	"fmt"

	"cbfww/internal/analyzer"
	"cbfww/internal/core"
	"cbfww/internal/logmine"
	"cbfww/internal/workload"
)

// C1OneTimers regenerates the paper's headline measurement — "Over 60% of
// web pages once used will never be retrieved again before modified or
// replaced" — over synthetic Kyoto-inet-like traces, sweeping popularity
// skew and content churn to show the regime where the claim holds.
func C1OneTimers(seed int64) Table {
	t := Table{
		Title: "Claim §1: one-time-use ratio across workload regimes",
		Header: []string{"zipf s", "updates/tick", "objects", "one-timers",
			"one-timer ratio", "max hit ratio"},
	}
	for _, s := range []float64{0.6, 0.9, 1.2} {
		for _, churn := range []float64{0, 0.002} {
			clock := core.NewSimClock(0)
			wcfg := workload.DefaultWebConfig()
			wcfg.Sites, wcfg.PagesPerSite, wcfg.Seed = 20, 150, seed
			g, err := workload.GenerateWeb(clock, wcfg)
			if err != nil {
				panic(err)
			}
			tcfg := workload.DefaultTraceConfig()
			tcfg.Sessions = 1500
			tcfg.Length = 200_000
			tcfg.ZipfS = s
			tcfg.FollowLinkProb = 0.4
			tcfg.UpdatesPerTick = churn
			tcfg.Seed = seed
			tr, err := workload.GenerateTrace(g, clock, tcfg)
			if err != nil {
				panic(err)
			}
			st := logmine.AnalyzeReuse(tr.Log)
			t.AddRow(f2(s), fmt.Sprintf("%g", churn), itoa(st.Objects),
				itoa(st.OneTimers), pct(st.OneTimerRatio()), pct(st.MaxHitRatio()))
		}
	}
	t.AddNote("paper's regime: one-timer ratio > 60%% — reproduced at moderate skew, amplified by content churn")
	return t
}

// F5LogicalDocuments regenerates Figure 5: frequently traversed paths
// become logical documents. The trace embeds the paper's example paths
// A-B-E and A-D-G (A-D-G traversed 13 times) in background noise; the
// miner must recover both with the right supports.
func F5LogicalDocuments(seed int64) Table {
	var log logmine.Log
	at := core.Time(0)
	user := 0
	emit := func(urls ...string) {
		u := fmt.Sprintf("u%02d", user%7)
		user++
		for _, url := range urls {
			log = append(log, logmine.Record{Time: at, User: u, URL: url, Status: 200, Bytes: 1})
			at = at.Add(3)
		}
		at = at.Add(10_000) // session gap
	}
	for i := 0; i < 13; i++ {
		emit("/A", "/D", "/G")
	}
	for i := 0; i < 5; i++ {
		emit("/A", "/B", "/E")
	}
	// Background noise: one-off wanderings.
	noise := []string{"/A", "/B", "/C", "/D", "/E", "/F", "/G", "/H"}
	rng := newRand(seed)
	for i := 0; i < 30; i++ {
		a := noise[rng.Intn(len(noise))]
		b := noise[rng.Intn(len(noise))]
		if a != b {
			emit(a, b)
		}
	}

	sessions := logmine.Sessionize(log, 60)
	paths := logmine.MaximalOnly(logmine.MinePaths(sessions, logmine.MinerConfig{
		MinLength: 3, MaxLength: 3, MinSupport: 4,
	}))

	t := Table{
		Title:  "Figure 5: Logical Documents from Repeated Traversal Paths",
		Header: []string{"path", "support"},
	}
	for _, p := range paths {
		t.AddRow(p.Key(), itoa(p.Support))
	}
	t.AddNote("paper's example: A-D-G traversed 13 times; sessions=%d", len(sessions))
	return t
}

// AnalyzerHotSpots is the §4.4 observation: hot-spot data driven by local
// events has a very short lifetime. An event workload is generated and the
// Data Analyzer's hot-spot lifetimes for event-topic pages are compared
// with steady pages.
func AnalyzerHotSpots(seed int64) Table {
	// Dry run: find the coldest topic under topic-affine background
	// traffic, so the event dominates its pages' access histories (a
	// local event's pages are obscure outside the event — exactly the
	// Kyoto-inet observation).
	base := func() (*workload.GeneratedWeb, workload.TraceConfig, *core.SimClock) {
		clock := core.NewSimClock(0)
		wcfg := workload.DefaultWebConfig()
		wcfg.Sites, wcfg.PagesPerSite, wcfg.Seed = 10, 40, seed
		g, err := workload.GenerateWeb(clock, wcfg)
		if err != nil {
			panic(err)
		}
		tcfg := workload.DefaultTraceConfig()
		tcfg.Sessions = 3000
		tcfg.Length = 500_000
		tcfg.Seed = seed
		// Pure topic-block popularity with steep skew: tail-topic pages see
		// almost no background traffic, so a local event is the only reason
		// anyone ever visits them — the regime the paper describes.
		tcfg.TopicAffinity = 1.0
		tcfg.ZipfS = 1.2
		return g, tcfg, clock
	}
	gDry, tcfgDry, clockDry := base()
	dry, err := workload.GenerateTrace(gDry, clockDry, tcfgDry)
	if err != nil {
		panic(err)
	}
	topicTraffic := make(map[int]int)
	for _, r := range dry.Log {
		topicTraffic[gDry.TopicOf[r.URL]]++
	}
	coldest, coldCount := 0, 1<<62
	for topic := 0; topic < len(gDry.Vocab.Topics); topic++ {
		if c := topicTraffic[topic]; c < coldCount {
			coldest, coldCount = topic, c
		}
	}

	// Real run: the event hits the coldest topic.
	g, tcfg, clock := base()
	tcfg.Events = []workload.Event{
		{Start: 200_000, Length: 8_000, Topic: coldest, Intensity: 0.95,
			Headline: "gion festival parade", Lead: 2000},
	}
	tr, err := workload.GenerateTrace(g, clock, tcfg)
	if err != nil {
		panic(err)
	}
	rep := analyzer.Analyze(tr.Log, 4)

	// Classify pages by event participation: a page is event-driven when
	// most of its accesses landed inside the event window — these are the
	// pages that were hot *because of* the event.
	ev := tcfg.Events[0]
	inWindow := make(map[string]int)
	total := make(map[string]int)
	for _, r := range tr.Log {
		total[r.URL]++
		if r.Time >= ev.Start && r.Time.Before(ev.Start.Add(ev.Length)) {
			inWindow[r.URL]++
		}
	}
	var evSum, bgSum float64
	var evN, bgN int
	for _, h := range rep.HotSpots {
		if 2*inWindow[h.URL] > total[h.URL] {
			evSum += float64(h.Lifetime)
			evN++
		} else {
			bgSum += float64(h.Lifetime)
			bgN++
		}
	}
	t := Table{
		Title:  "§4.4: Hot-Spot Lifetimes (event-driven pages vs background)",
		Header: []string{"page class", "hot spots", "mean lifetime (ticks)"},
	}
	if evN > 0 {
		t.AddRow("event-driven", itoa(evN), f2(evSum/float64(evN)))
	}
	if bgN > 0 {
		t.AddRow("background", itoa(bgN), f2(bgSum/float64(bgN)))
	}
	t.AddNote("trace length %d ticks; event window %d ticks on coldest topic %d",
		int64(tcfg.Length), int64(ev.Length), coldest)
	t.AddNote("paper: \"for local events, there will be almost no access of the corresponding web pages after the event\"")
	return t
}
