package experiments

import (
	"math/rand"

	"cbfww/internal/cluster"
	"cbfww/internal/core"
	"cbfww/internal/text"
	"cbfww/internal/workload"
)

// newRand returns a deterministic RNG for experiment code.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// F7SemanticRegions regenerates Figure 7: adaptive clustering of logical
// documents into semantic regions. Topic-labelled documents are clustered
// by (a) the online single-pass clusterer the Semantic Region Manager
// runs, and (b) the batch LSEARCH-style k-median, sweeping k. Purity
// against ground-truth topics and SSQ measure quality; the paper's
// expectation is that the assumed "near-optimum" algorithm family achieves
// high-quality regions and that the online pass stays close.
func F7SemanticRegions(seed int64) Table {
	const nTopics, perTopic = 6, 30
	rng := newRand(seed)
	vocab := workload.NewVocabulary(nTopics, 20, 6)
	corpus := text.NewCorpus()
	var points []cluster.Point
	labels := make(map[core.ObjectID]int)
	id := core.ObjectID(1)
	for topic := 0; topic < nTopics; topic++ {
		for i := 0; i < perTopic; i++ {
			doc := vocab.Sentence(rng, topic, 30, 0.1)
			points = append(points, cluster.Point{ID: id, Vec: corpus.VectorizeNew(doc)})
			labels[id] = topic
			id++
		}
	}
	rng.Shuffle(len(points), func(i, j int) { points[i], points[j] = points[j], points[i] })

	t := Table{
		Title:  "Figure 7: Semantic Regions by Adaptive Clustering",
		Header: []string{"algorithm", "k/regions", "purity", "SSQ"},
	}

	// Online single-pass (production path).
	online, err := cluster.NewOnline(0.15, 0)
	if err != nil {
		panic(err)
	}
	onlineOf := make(map[core.ObjectID]int)
	for _, p := range points {
		onlineOf[p.ID] = online.Assign(p)
	}
	regs := online.Regions()
	ssqOnline := cluster.SSQ(points, func(p cluster.Point) text.Vector {
		return regs[onlineOf[p.ID]].Centroid
	})
	t.AddRow("online single-pass", itoa(online.Len()),
		f3(cluster.Purity(onlineOf, labels)), f2(ssqOnline))

	// Batch k-median across k.
	for _, k := range []int{3, 6, 12} {
		res, err := cluster.KMedian(points, k, newRand(seed+int64(k)), 20, 20)
		if err != nil {
			panic(err)
		}
		batchOf := make(map[core.ObjectID]int)
		for i, p := range points {
			batchOf[p.ID] = res.Assign[i]
		}
		t.AddRow("k-median (LSEARCH-style)", itoa(k),
			f3(cluster.Purity(batchOf, labels)), f2(res.Cost))
	}
	t.AddNote("%d documents over %d ground-truth topics; purity = fraction in majority-topic region", len(points), nTopics)
	t.AddNote("expected shape: SSQ falls as k grows; purity peaks near k = true topic count; online stays close to batch")
	return t
}
