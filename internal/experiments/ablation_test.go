package experiments

import (
	"testing"
)

func TestA1SeparationGrowsWithOmega(t *testing.T) {
	tb := A1OmegaTitleWeight(1)
	if len(tb.Rows) != 5 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	first := parseF(t, tb.Rows[0][3])
	last := parseF(t, tb.Rows[len(tb.Rows)-1][3])
	if last <= first {
		t.Errorf("separation did not grow with omega: %v -> %v", first, last)
	}
	// Same-perspective similarity stays above different-perspective at
	// every omega.
	for _, row := range tb.Rows {
		diff, same := parseF(t, row[1]), parseF(t, row[2])
		if same <= diff {
			t.Errorf("omega=%s: same %v <= different %v", row[0], same, diff)
		}
	}
}

func TestA2ThresholdSweetSpot(t *testing.T) {
	tb := A2RegionThreshold(1)
	var bestPurity float64
	var maxRegions float64
	for _, row := range tb.Rows {
		p := parseF(t, row[2])
		if p > bestPurity {
			bestPurity = p
		}
		r := parseF(t, row[1])
		if r > maxRegions {
			maxRegions = r
		}
	}
	if bestPurity < 0.9 {
		t.Errorf("no threshold reaches purity >= 0.9 (best %v)", bestPurity)
	}
	// The lowest threshold merges topics: fewer regions, lower purity
	// than the best.
	lowPurity := parseF(t, tb.Rows[0][2])
	if lowPurity >= bestPurity {
		t.Errorf("lowest threshold already optimal: %v >= %v", lowPurity, bestPurity)
	}
	// The highest threshold shatters: strictly more regions than the
	// lowest.
	lowRegions := parseF(t, tb.Rows[0][1])
	highRegions := parseF(t, tb.Rows[len(tb.Rows)-1][1])
	if highRegions <= lowRegions {
		t.Errorf("regions did not grow with threshold: %v -> %v", lowRegions, highRegions)
	}
}

func TestA3DecayMonotoneWaste(t *testing.T) {
	tb := A3AdmissionDecay(1)
	if len(tb.Rows) != 4 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	// Waste at the slowest decay (0.99) must exceed waste at the fastest
	// (0.5).
	slow := parsePct(t, tb.Rows[0][1])
	fast := parsePct(t, tb.Rows[len(tb.Rows)-1][1])
	if slow <= fast {
		t.Errorf("slow decay waste %v%% not above fast decay %v%%", slow, fast)
	}
}

func TestB1DedupSaves(t *testing.T) {
	tb := B1BlobDedup(1)
	if len(tb.Rows) != 2 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	rel := parsePct(t, tb.Rows[1][2])
	if rel >= 95 {
		t.Errorf("dedup saved almost nothing: %v%% of naive", rel)
	}
	if rel <= 5 {
		t.Errorf("dedup suspiciously total: %v%% of naive", rel)
	}
}

func TestL1ClusteringSpeedsAnalysis(t *testing.T) {
	tb := L1TertiaryLocality(1)
	if len(tb.Rows) != 3 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	var prev float64
	for _, row := range tb.Rows {
		scattered := parseF(t, row[1])
		clustered := parseF(t, row[2])
		if clustered >= scattered {
			t.Errorf("%s: clustering did not help (%v vs %v)", row[0], clustered, scattered)
		}
		speedup := scattered / clustered
		if speedup < prev {
			t.Errorf("speedup fell as seeks got costlier: %v -> %v", prev, speedup)
		}
		prev = speedup
	}
}
