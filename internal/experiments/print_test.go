package experiments

import (
	"os"
	"testing"
)

// TestPrintSelected is a debugging aid:
//
//	PRINT_TABLES=1 go test ./internal/experiments -run TestPrintSelected -v
func TestPrintSelected(t *testing.T) {
	if os.Getenv("PRINT_TABLES") == "" {
		t.Skip("set PRINT_TABLES=1 to print")
	}
	t.Log("\n" + AnalyzerHotSpots(1).String())
	t.Log("\n" + F3StorageMapping(1).String())
	t.Log("\n" + Q1PopularityQueries(1).String())
}
