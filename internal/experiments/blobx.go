package experiments

import (
	"crypto/sha256"

	"cbfww/internal/core"
	"cbfww/internal/workload"
)

// B1BlobDedup measures what content-addressed body storage saves on a
// generated web: §5.1's shared media components mean many pages reference
// the same bytes, and version churn re-captures mostly-identical content.
// The table compares naive per-reference storage against the
// content-addressed footprint.
func B1BlobDedup(seed int64) Table {
	clock := core.NewSimClock(0)
	wcfg := workload.DefaultWebConfig()
	wcfg.Sites, wcfg.PagesPerSite, wcfg.Seed = 10, 50, seed
	wcfg.MediaProb = 0.6
	g, err := workload.GenerateWeb(clock, wcfg)
	if err != nil {
		panic(err)
	}

	// Count the web's bodies and media as a warehouse capturing everything
	// would: every page body once per version, every media reference.
	type sum = [sha256.Size]byte
	distinct := make(map[sum]core.Bytes)
	var naive core.Bytes
	addContent := func(content string, size core.Bytes) {
		naive += size
		distinct[sha256.Sum256([]byte(content))] = size
	}
	for _, url := range g.PageURLs {
		p, _ := g.Web.Lookup(url)
		addContent(p.Body, p.Size)
		for _, c := range p.Components {
			// Media content is identified by its URL (simweb components
			// have no body text); identical URL = identical bytes.
			addContent(c.URL, c.Size)
		}
	}
	var deduped core.Bytes
	for _, size := range distinct {
		deduped += size
	}

	t := Table{
		Title:  "Blob store: content-addressed dedup on a generated web",
		Header: []string{"storage discipline", "bytes", "relative"},
	}
	t.AddRow("naive (one copy per reference)", naive.String(), "100.0%")
	t.AddRow("content-addressed (internal/blob)", deduped.String(),
		pct(float64(deduped)/float64(naive)))
	t.AddNote("%d pages, media sharing via per-site component pools (§5.1's shared components)", len(g.PageURLs))
	t.AddNote("the warehouse enables this with Config.BlobDir; version pruning garbage-collects unreferenced bodies")
	return t
}
