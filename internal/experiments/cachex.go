package experiments

import (
	"fmt"
	"math"

	"cbfww/internal/cache"
	"cbfww/internal/core"
	"cbfww/internal/usage"
	"cbfww/internal/workload"
)

// X1FrequencyEstimators compares §4.2's two frequency estimators: the
// exact sliding window and λ-aging. Accuracy is RMSE against the window
// truth at periodic checkpoints; memory is what each must keep resident.
func X1FrequencyEstimators(seed int64) Table {
	clock := core.NewSimClock(0)
	wcfg := workload.DefaultWebConfig()
	wcfg.Sites, wcfg.PagesPerSite, wcfg.Seed = 10, 50, seed
	g, err := workload.GenerateWeb(clock, wcfg)
	if err != nil {
		panic(err)
	}
	tcfg := workload.DefaultTraceConfig()
	tcfg.Sessions = 2000
	tcfg.Length = 7 * 24 * 3600 // one window-week of traffic
	tcfg.Seed = seed
	tr, err := workload.GenerateTrace(g, clock, tcfg)
	if err != nil {
		panic(err)
	}

	const windowSize = 24 * 3600 // one day
	const epoch = 3600

	t := Table{
		Title:  "§4.2: Sliding Window vs λ-Aging Frequency Estimation",
		Header: []string{"estimator", "RMSE vs day-window", "entries kept", "per-ref work"},
	}

	ids := make(map[string]core.ObjectID)
	for i, u := range g.PageURLs {
		ids[u] = core.ObjectID(i + 1)
	}

	for _, lambda := range []float64{0.1, 0.3, 0.6} {
		window := usage.NewSlidingWindow(windowSize)
		aging := usage.NewAgingEstimator(lambda)
		aging.EpochLength = epoch

		var sqErr float64
		var checks int
		next := core.Time(windowSize)
		maxWindowEntries := 0
		for _, r := range tr.Log {
			id := ids[r.URL]
			window.Record(id, r.Time)
			aging.Record(id, r.Time)
			if window.EventCount() > maxWindowEntries {
				maxWindowEntries = window.EventCount()
			}
			if r.Time >= next {
				// Checkpoint: compare normalized rates over sampled objects.
				for _, u := range g.PageURLs {
					oid := ids[u]
					truth := float64(window.Frequency(oid, r.Time)) / (float64(windowSize) / float64(epoch))
					est := aging.Frequency(oid, r.Time)
					d := truth - est
					sqErr += d * d
					checks++
				}
				next += windowSize / 4
			}
		}
		rmse := 0.0
		if checks > 0 {
			rmse = math.Sqrt(sqErr / float64(checks))
		}
		t.AddRow(fmt.Sprintf("λ-aging λ=%.1f", lambda), f3(rmse),
			itoa(aging.Objects()), "O(1)")
		if lambda == 0.3 {
			t.AddRow("sliding window (truth)", "0.000", itoa(maxWindowEntries), "O(expiry scan)")
		}
	}
	t.AddNote("'entries kept': the window retains every in-window reference; aging keeps one entry per object")
	t.AddNote("paper: aging 'removes the overhead for keeping usage information' at bounded estimation error")
	return t
}

// X3BoundedBaselines regenerates the motivating sweep: hit ratio and byte
// hit ratio of the classic bounded policies as cache size grows toward the
// corpus size, against the infinite (bound-free) ceiling.
func X3BoundedBaselines(seed int64) Table {
	clock := core.NewSimClock(0)
	wcfg := workload.DefaultWebConfig()
	wcfg.Sites, wcfg.PagesPerSite, wcfg.Seed = 15, 80, seed
	g, err := workload.GenerateWeb(clock, wcfg)
	if err != nil {
		panic(err)
	}
	tcfg := workload.DefaultTraceConfig()
	tcfg.Sessions = 4000
	tcfg.Length = 600_000
	tcfg.Seed = seed
	tcfg.UpdatesPerTick = 0.0005
	tr, err := workload.GenerateTrace(g, clock, tcfg)
	if err != nil {
		panic(err)
	}

	var corpusBytes core.Bytes
	for _, u := range g.PageURLs {
		p, _ := g.Web.Lookup(u)
		corpusBytes += p.Size
	}

	t := Table{
		Title:  "E-X3: Bounded Replacement Policies vs the Bound-free Ceiling",
		Header: []string{"policy", "1% corpus", "5%", "20%", "100%", "INF ceiling"},
	}
	inf := cache.Run(cache.NewInfinite(), tr.Log)
	caps := []core.Bytes{corpusBytes / 100, corpusBytes / 20, corpusBytes / 5, corpusBytes}
	for _, mk := range []struct {
		name string
		fn   func(core.Bytes) cache.Cache
	}{
		{"LRU", cache.NewLRU},
		{"LFU", cache.NewLFU},
		{"GDSF", cache.NewGDSF},
		{"LRU-2", func(b core.Bytes) cache.Cache { return cache.NewLRUK(b, 2) }},
		{"FIFO", cache.NewFIFO},
		{"SIZE", cache.NewSize},
	} {
		cells := []string{mk.name}
		for _, c := range caps {
			res := cache.Run(mk.fn(c), tr.Log)
			cells = append(cells, pct(res.HitRatio()))
		}
		cells = append(cells, pct(inf.HitRatio()))
		t.AddRow(cells...)
	}
	t.AddNote("corpus %v, %d requests; INF = store everything (capacity bound-free reuse ceiling)", corpusBytes, len(tr.Log))
	t.AddNote("expected shape: every bounded policy climbs toward (never beyond) the INF ceiling; at 100%% of corpus they converge")
	return t
}
