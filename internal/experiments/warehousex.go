package experiments

import (
	"fmt"
	"time"

	"cbfww/internal/constraint"
	"cbfww/internal/core"
	"cbfww/internal/object"
	"cbfww/internal/priority"
	"cbfww/internal/simweb"
	"cbfww/internal/storage"
	"cbfww/internal/warehouse"
	"cbfww/internal/workload"
)

// buildWarehouseWorld generates a web + trace + optional events and a
// warehouse configured for experiments; callers mutate cfg first.
type world struct {
	g     *workload.GeneratedWeb
	clock *core.SimClock
	trace *workload.Trace
	w     *warehouse.Warehouse
}

func buildWorld(seed int64, sites, pages, sessions int, length core.Duration,
	events []workload.Event, mutate func(*warehouse.Config),
	mutateTrace ...func(*workload.TraceConfig)) *world {

	clock := core.NewSimClock(0)
	wcfg := workload.DefaultWebConfig()
	wcfg.Sites, wcfg.PagesPerSite, wcfg.Seed = sites, pages, seed
	g, err := workload.GenerateWeb(clock, wcfg)
	if err != nil {
		panic(err)
	}
	tcfg := workload.DefaultTraceConfig()
	tcfg.Sessions = sessions
	tcfg.Length = length
	tcfg.Seed = seed
	tcfg.Events = events
	for _, m := range mutateTrace {
		m(&tcfg)
	}
	// The trace generator drives the clock; snapshot the log, then rewind
	// is impossible (monotonic clock), so the warehouse replays on a fresh
	// clock of its own.
	tr, err := workload.GenerateTrace(g, clock, tcfg)
	if err != nil {
		panic(err)
	}

	wclock := core.NewSimClock(0)
	// The web's pages have already churned to their final content; that is
	// fine — replay consistency still observes version mismatches through
	// the log's Modified flags having influenced nothing here. The
	// warehouse sees the web as it is now.
	cfg := warehouse.DefaultConfig()
	cfg.Storage = storage.Config{
		MemCapacity:  2 * core.MB,
		DiskCapacity: 256 * core.MB,
		MemLatency:   0, DiskLatency: 10, TertiaryLatency: 100,
		SummaryRatio: 0.05,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	w, err := warehouse.New(cfg, wclock, g.Web)
	if err != nil {
		panic(err)
	}
	return &world{g: g, clock: wclock, trace: tr, w: w}
}

// replay drives the warehouse with the trace log, advancing the clock to
// each record's time and running Maintain every maintainEvery ticks.
func (wd *world) replay(maintainEvery core.Duration) {
	next := core.Time(maintainEvery)
	for _, r := range wd.trace.Log {
		if r.Time.After(wd.clock.Now()) {
			wd.clock.Set(r.Time)
		}
		if maintainEvery > 0 && wd.clock.Now() >= next {
			if _, err := wd.w.Maintain(); err != nil {
				panic(err)
			}
			for next <= wd.clock.Now() {
				next = next.Add(maintainEvery)
			}
		}
		// Errors here mean the page vanished, which this workload doesn't do.
		if _, err := wd.w.Get(r.User, r.URL); err != nil {
			panic(err)
		}
	}
}

// F8AdmissionPriority regenerates Figure 8 — admission-time priority from
// semantic regions and topics — against the conventional "newest page gets
// top priority" rule. Both run the full warehouse; the LRU-style variant
// disables the evidence sources and gives every new page maximal default
// priority, so memory fills with whatever arrived last (exactly the
// behaviour the paper criticizes, since ~60% of arrivals never return).
func F8AdmissionPriority(seed int64) Table {
	// Three admission policies over identical traces. All variants share
	// the same usage-heat machinery and AdmissionDecay, so the only
	// difference is where the admission estimate puts a brand-new page:
	//
	//	top:      every newcomer gets priority 1 (the LRU tradition);
	//	bottom:   every newcomer gets priority 0 (pessimist — correct for
	//	          the ~60% one-timer mass, but cold-starts hot pages);
	//	evidence: semantic-region similarity + hot topics (CBFWW).
	run := func(newcomerPrio float64) (warehouse.Stats, float64) {
		wd := buildWorld(seed, 20, 100, 3000, 400_000, nil, func(c *warehouse.Config) {
			if newcomerPrio >= 0 {
				c.Priority = priority.Config{
					SimilarityWeight: 0, TopicWeight: 0,
					MinSimilarity: 2, // unattainable: region evidence off
					Default:       core.Priority(newcomerPrio),
					Lambda:        0.3, EpochLength: 3600,
				}
			}
		}, func(tc *workload.TraceConfig) {
			// The paper's regime: hot spots are topical, and a heavy
			// one-timer tail exists.
			tc.TopicAffinity = 0.9
			tc.FollowLinkProb = 0.4
		})
		// Manual replay sampling the memory tier at every maintenance
		// sweep: what share of its residents are unproven newcomers
		// (admitted, never yet re-referenced)?
		counts := make(map[string]int)
		var wasteSum float64
		var samples int
		const period = 3600
		next := core.Time(period)
		for _, r := range wd.trace.Log {
			if r.Time.After(wd.clock.Now()) {
				wd.clock.Set(r.Time)
			}
			if wd.clock.Now() >= next {
				// Sample the memory tier *before* the sweep: this is the
				// placement the policy lived with for the last period.
				residents, oneTimers := 0, 0
				for _, info := range wd.w.Pages() {
					if info.Tier == "memory" {
						residents++
						if counts[info.URL] <= 1 {
							oneTimers++
						}
					}
				}
				if residents > 0 {
					wasteSum += float64(oneTimers) / float64(residents)
					samples++
				}
				if _, err := wd.w.Maintain(); err != nil {
					panic(err)
				}
				for next <= wd.clock.Now() {
					next = next.Add(period)
				}
			}
			counts[r.URL]++
			if _, err := wd.w.Get(r.User, r.URL); err != nil {
				panic(err)
			}
		}
		waste := 0.0
		if samples > 0 {
			waste = wasteSum / float64(samples)
		}
		return wd.w.Stats(), waste
	}

	cbfww, wasteC := run(-1)
	top, wasteT := run(1)
	bottom, wasteB := run(0)

	t := Table{
		Title:  "Figure 8: Admission-Time Priority vs Naive Admission Rules",
		Header: []string{"metric", "CBFWW (evidence)", "newest=top (LRU)", "newest=bottom"},
	}
	memHit := func(s warehouse.Stats) string {
		return pct(float64(s.MemoryHits) / float64(s.Requests))
	}
	t.AddRow("memory occupied by unproven newcomers", pct(wasteC), pct(wasteT), pct(wasteB))
	t.AddRow("memory-tier hit ratio", memHit(cbfww), memHit(top), memHit(bottom))
	t.AddRow("warehouse hit ratio", pct(cbfww.HitRatio()), pct(top.HitRatio()), pct(bottom.HitRatio()))
	t.AddRow("mean access latency (ticks)", f2(cbfww.MeanLatency()), f2(top.MeanLatency()), f2(bottom.MeanLatency()))
	t.AddNote("unproven newcomer = resident page never re-referenced since admission, sampled hourly")
	t.AddNote("expected shape: newest=top floods memory with the ~60%% one-timer mass; CBFWW stays near the pessimist's cleanliness while warming hot-topic pages")
	return t
}

// X2TopicSensor measures the Topic Sensor's value on event workloads: the
// same event-laden trace runs with and without the sensor watching the
// news feed that announces the events. With the sensor, event pages are
// prefetched and topic-boosted before the request wave.
func X2TopicSensor(seed int64) Table {
	events := []workload.Event{
		{Start: 150_000, Length: 10_000, Topic: 3, Intensity: 0.85,
			Headline: "gion festival parade tonight", Lead: 8_000},
		{Start: 300_000, Length: 10_000, Topic: 7, Intensity: 0.85,
			Headline: "typhoon landfall warning kansai", Lead: 8_000},
	}
	run := func(sensorOn bool) (warehouse.Stats, float64) {
		wd := buildWorld(seed, 10, 60, 2500, 450_000, events, nil)
		if sensorOn {
			wd.w.WatchFeed(wd.trace.News)
			// Event pages get URL-carrying articles so Maintain can
			// prefetch: announce every event-topic page at lead time.
			for _, ev := range events {
				// PageURLs is generation-ordered: iterating it (not the
				// TopicOf map) keeps the publish order deterministic.
				for _, url := range wd.g.PageURLs {
					if wd.g.TopicOf[url] == ev.Topic {
						wd.trace.News.Publish(simweb.Article{
							Time: ev.Start.Add(-ev.Lead), Headline: ev.Headline, URL: url,
						})
					}
				}
			}
		}

		inEvent := func(url string, at core.Time) bool {
			for _, ev := range events {
				if wd.g.TopicOf[url] == ev.Topic && at >= ev.Start && at.Before(ev.Start.Add(ev.Length)) {
					return true
				}
			}
			return false
		}

		// Manual replay so per-request hits during event windows can be
		// counted directly.
		hits, reqs := 0, 0
		next := core.Time(3600)
		for _, r := range wd.trace.Log {
			if r.Time.After(wd.clock.Now()) {
				wd.clock.Set(r.Time)
			}
			if wd.clock.Now() >= next {
				if _, err := wd.w.Maintain(); err != nil {
					panic(err)
				}
				for next <= wd.clock.Now() {
					next += 3600
				}
			}
			res, err := wd.w.Get(r.User, r.URL)
			if err != nil {
				panic(err)
			}
			if inEvent(r.URL, r.Time) {
				reqs++
				if res.Hit {
					hits++
				}
			}
		}
		ratio := 0.0
		if reqs > 0 {
			ratio = float64(hits) / float64(reqs)
		}
		return wd.w.Stats(), ratio
	}
	off, offRatio := run(false)
	on, onRatio := run(true)

	t := Table{
		Title:  "§3(3): Topic Sensor — Prefetch and Boost on Event Workloads",
		Header: []string{"metric", "sensor off", "sensor on"},
	}
	t.AddRow("prefetches", itoa(off.Prefetches), itoa(on.Prefetches))
	t.AddRow("event-window warm ratio", pct(offRatio), pct(onRatio))
	t.AddRow("overall hit ratio", pct(off.HitRatio()), pct(on.HitRatio()))
	t.AddRow("mean latency (ticks)", f2(off.MeanLatency()), f2(on.MeanLatency()))
	t.AddNote("sensor reads the news feed %q; articles carry event-page URLs (lead %d ticks)", "simnews", 8000)
	t.AddNote("expected shape: sensor-on prefetches event pages, so the first request wave already hits")
	return t
}

// X5Consistency compares strong vs weak consistency on a churning
// workload: origin traffic (revalidations + fetches) against staleness
// served.
func X5Consistency(seed int64) Table {
	t := Table{
		Title: "§3(7): Strong vs Weak Consistency",
		Header: []string{"mode", "revalidations", "origin fetches", "hit ratio",
			"stale serves", "mean latency"},
	}
	for _, mode := range []constraint.Mode{constraint.Strong, constraint.Weak} {
		wd := buildWorld(seed, 8, 50, 2000, 300_000, nil, func(c *warehouse.Config) {
			if mode == constraint.Strong {
				c.Consistency = constraint.Consistency{Mode: constraint.Strong}
			} else {
				c.Consistency = constraint.Consistency{
					Mode: constraint.Weak, MinPoll: 600, MaxPoll: 24 * 3600,
				}
			}
		})
		// Churn the web during the replay: update random pages as time
		// passes (the trace generator's churn already ran before the
		// replay clock; do live churn here).
		stale := 0
		rng := newRand(seed)
		var updates core.Time = 2000
		for _, r := range wd.trace.Log {
			if r.Time.After(wd.clock.Now()) {
				wd.clock.Set(r.Time)
			}
			for updates <= r.Time {
				url := wd.g.PageURLs[rng.Intn(len(wd.g.PageURLs))]
				if err := wd.g.Web.Update(url, "churn content"); err != nil {
					panic(err)
				}
				updates += 2000
			}
			res, err := wd.w.Get(r.User, r.URL)
			if err != nil {
				panic(err)
			}
			if res.Hit {
				if v, _, err := wd.g.Web.Head(r.URL); err == nil && res.Page.Version < v {
					stale++
				}
			}
		}
		st := wd.w.Stats()
		t.AddRow(mode.String(), itoa(st.Revalidations), itoa(st.OriginFetches),
			pct(st.HitRatio()), itoa(stale), f2(st.MeanLatency()))
	}
	t.AddNote("expected shape: strong serves zero stale at the cost of per-access revalidation; weak bounds origin traffic and serves bounded staleness")
	return t
}

// Q1PopularityQueries runs the paper's three §4.3 example queries against
// a populated warehouse and reports their results plus throughput.
func Q1PopularityQueries(seed int64) Table {
	wd := buildWorld(seed, 6, 30, 1200, 200_000, nil, func(c *warehouse.Config) {
		c.Miner.MinSupport = 2
	})
	wd.replay(6 * 3600)
	if _, err := wd.w.MinePaths(); err != nil {
		panic(err)
	}

	queries := []struct {
		name string
		q    string
	}{
		{"paper query 1 (MRU + MENTION)", `
			SELECT MRU p.oid, p.title FROM Physical_Page p
			WHERE p.title MENTION 'station'`},
		{"paper query 2 (MFU + EXISTS)", `
			SELECT MFU 10 l.oid, l.path FROM Logical_Page l
			WHERE EXISTS (SELECT * FROM Physical_Page p
			              WHERE p.oid IN l.physicals AND p.size > 20,000)`},
		{"paper query 3 (MFU + end_at)", fmt.Sprintf(`
			SELECT MFU 5 l.path FROM Logical_Page l
			WHERE end_at(l.oid) IN
			(SELECT p.oid FROM Physical_Page p WHERE p.url = '%s')`, wd.g.PageURLs[0])},
		{"usage-attribute filter", `
			SELECT LFU 5 p.url, p.freq FROM Physical_Page p WHERE p.freq > 0`},
	}

	t := Table{
		Title:  "§4.3: Popularity-Aware Queries on a Populated Warehouse",
		Header: []string{"query", "rows", "latency"},
	}
	for _, q := range queries {
		start := time.Now()
		rows, err := wd.w.Query(q.q)
		lat := time.Since(start)
		if err != nil {
			t.AddRow(q.name, "ERR: "+err.Error(), "-")
			continue
		}
		t.AddRow(q.name, itoa(len(rows)), lat.Round(time.Microsecond).String())
	}
	t.AddNote("warehouse holds %d pages, %d logical pages", wd.w.ResidentPages(),
		wd.w.Hierarchy().Len(object.KindLogical))
	return t
}
