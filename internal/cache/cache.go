// Package cache implements the classic capacity-bound web-cache
// replacement policies CBFWW defines itself against: LRU, FIFO, MRU, LFU
// (with aging), SIZE, GDSF and LRU-k, plus an infinite cache giving the
// reuse upper bound. A trace-driven simulator measures hit ratio and byte
// hit ratio (the paper's §1 performance measures) so experiment E-X3 can
// show bounded caches plateauing long before the corpus fits — the
// observation motivating the capacity-bound-free design.
package cache

import (
	"container/heap"
	"container/list"
	"fmt"

	"cbfww/internal/core"
)

// Cache is a capacity-bound object cache being simulated. Access is the
// only operation: it reports whether the object was resident (hit) and, on
// a miss, admits the object, evicting per policy.
type Cache interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Access simulates a request for key with the given size at time now.
	Access(key string, size core.Bytes, now core.Time) bool
	// Used returns the bytes currently resident.
	Used() core.Bytes
	// Len returns the number of resident objects.
	Len() int
}

// listCache covers the recency-ordered policies (LRU, FIFO, MRU) with a
// doubly linked list; the variants differ only in move-on-hit and eviction
// end.
type listCache struct {
	name      string
	capacity  core.Bytes
	used      core.Bytes
	ll        *list.List // front = next eviction victim
	items     map[string]*list.Element
	moveOnHit bool // LRU refreshes position; FIFO/MRU do not need-move
	evictBack bool // MRU evicts the most recent end
}

type listEntry struct {
	key  string
	size core.Bytes
}

// NewLRU returns a least-recently-used cache of the given byte capacity.
func NewLRU(capacity core.Bytes) Cache {
	return &listCache{name: "LRU", capacity: capacity, ll: list.New(),
		items: make(map[string]*list.Element), moveOnHit: true}
}

// NewFIFO returns a first-in-first-out cache.
func NewFIFO(capacity core.Bytes) Cache {
	return &listCache{name: "FIFO", capacity: capacity, ll: list.New(),
		items: make(map[string]*list.Element)}
}

// NewMRU returns a most-recently-used cache (evicts the newest entry —
// competitive on cyclic scans, terrible on Zipf traffic; included for the
// paper's LRU/MRU/LFU/MFU query modifiers).
func NewMRU(capacity core.Bytes) Cache {
	return &listCache{name: "MRU", capacity: capacity, ll: list.New(),
		items: make(map[string]*list.Element), moveOnHit: true, evictBack: true}
}

func (c *listCache) Name() string     { return c.name }
func (c *listCache) Used() core.Bytes { return c.used }
func (c *listCache) Len() int         { return len(c.items) }

func (c *listCache) Access(key string, size core.Bytes, now core.Time) bool {
	if e, ok := c.items[key]; ok {
		if c.moveOnHit {
			c.ll.MoveToBack(e)
		}
		return true
	}
	if size > c.capacity {
		return false // uncacheable; serve and forget
	}
	for c.used+size > c.capacity {
		c.evictOne()
	}
	el := c.ll.PushBack(listEntry{key: key, size: size})
	c.items[key] = el
	c.used += size
	return false
}

// Resize retargets the cache's byte capacity, evicting per policy until
// the residents fit — the scenario matrix's capacity-shrink lever for the
// bounded baselines.
func (c *listCache) Resize(capacity core.Bytes) {
	c.capacity = capacity
	for c.used > c.capacity && c.ll.Len() > 0 {
		c.evictOne()
	}
}

func (c *listCache) evictOne() {
	var el *list.Element
	if c.evictBack {
		el = c.ll.Back()
	} else {
		el = c.ll.Front()
	}
	if el == nil {
		return
	}
	ent := el.Value.(listEntry)
	c.ll.Remove(el)
	delete(c.items, ent.key)
	c.used -= ent.size
}

// scoreCache covers the value-ordered policies (LFU, SIZE, GDSF, LRU-k):
// a min-heap on a policy-computed score; the minimum scores evict first.
type scoreCache struct {
	name     string
	capacity core.Bytes
	used     core.Bytes
	h        scoreHeap
	items    map[string]*scoreEntry
	seq      int64
	// score computes the entry's eviction score after an access; larger
	// scores survive longer. state is policy-private per-entry data.
	score func(c *scoreCache, e *scoreEntry, now core.Time) float64
	// inflation is GDSF's L: the score floor that rises as entries evict.
	inflation float64
	// histories retains LRU-k reference history across evictions (the
	// LRU-K algorithm's retained information).
	histories map[string][]core.Time
	k         int
}

type scoreEntry struct {
	key   string
	size  core.Bytes
	freq  float64
	score float64
	seq   int64 // tiebreak: lower = older = evict first
	index int
}

type scoreHeap []*scoreEntry

func (h scoreHeap) Len() int { return len(h) }
func (h scoreHeap) Less(i, j int) bool {
	if h[i].score != h[j].score {
		return h[i].score < h[j].score
	}
	return h[i].seq < h[j].seq
}
func (h scoreHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *scoreHeap) Push(x any) {
	e := x.(*scoreEntry)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *scoreHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// NewLFU returns a least-frequently-used cache (ties broken LRU).
func NewLFU(capacity core.Bytes) Cache {
	return &scoreCache{
		name: "LFU", capacity: capacity, items: make(map[string]*scoreEntry),
		score: func(_ *scoreCache, e *scoreEntry, _ core.Time) float64 {
			return e.freq
		},
	}
}

// NewMFU returns a most-frequently-used cache (evicts the hottest entry —
// pathological on Zipf traffic, kept as the paper's MFU query-modifier
// counterpart and as the matrix's lower anchor).
func NewMFU(capacity core.Bytes) Cache {
	return &scoreCache{
		name: "MFU", capacity: capacity, items: make(map[string]*scoreEntry),
		score: func(_ *scoreCache, e *scoreEntry, _ core.Time) float64 {
			return -e.freq
		},
	}
}

// NewSize returns a SIZE cache: biggest objects evict first, maximizing
// object hit ratio on heterogeneous web objects.
func NewSize(capacity core.Bytes) Cache {
	return &scoreCache{
		name: "SIZE", capacity: capacity, items: make(map[string]*scoreEntry),
		score: func(_ *scoreCache, e *scoreEntry, _ core.Time) float64 {
			return -float64(e.size)
		},
	}
}

// NewGDSF returns a Greedy-Dual-Size-Frequency cache (Cherkasova):
// score = L + freq/size; L inflates to the score of each evicted entry,
// aging out entries whose value was earned long ago.
func NewGDSF(capacity core.Bytes) Cache {
	return &scoreCache{
		name: "GDSF", capacity: capacity, items: make(map[string]*scoreEntry),
		score: func(c *scoreCache, e *scoreEntry, _ core.Time) float64 {
			if e.size <= 0 {
				return c.inflation + e.freq
			}
			return c.inflation + e.freq/float64(e.size)
		},
	}
}

// NewLRUK returns an LRU-k cache: the entry whose k-th most recent
// reference is oldest evicts first; entries with fewer than k references
// are the first victims (their t_k is −∞, as in Table 2's lastkref). k
// must be >= 1; k = 1 degenerates to plain LRU.
func NewLRUK(capacity core.Bytes, k int) Cache {
	if k < 1 {
		k = 1
	}
	c := &scoreCache{
		name: fmt.Sprintf("LRU-%d", k), capacity: capacity,
		items: make(map[string]*scoreEntry), histories: make(map[string][]core.Time), k: k,
	}
	c.score = func(cc *scoreCache, e *scoreEntry, _ core.Time) float64 {
		h := cc.histories[e.key]
		if len(h) < cc.k {
			return float64(core.TimeNever)
		}
		return float64(h[len(h)-cc.k])
	}
	return c
}

func (c *scoreCache) Name() string     { return c.name }
func (c *scoreCache) Used() core.Bytes { return c.used }
func (c *scoreCache) Len() int         { return len(c.items) }

func (c *scoreCache) Access(key string, size core.Bytes, now core.Time) bool {
	if c.histories != nil {
		h := append(c.histories[key], now)
		if len(h) > c.k {
			h = h[len(h)-c.k:]
		}
		c.histories[key] = h
	}
	if e, ok := c.items[key]; ok {
		e.freq++
		e.score = c.score(c, e, now)
		heap.Fix(&c.h, e.index)
		return true
	}
	if size > c.capacity {
		return false
	}
	for c.used+size > c.capacity {
		c.evictOne()
	}
	c.seq++
	e := &scoreEntry{key: key, size: size, freq: 1, seq: c.seq}
	e.score = c.score(c, e, now)
	heap.Push(&c.h, e)
	c.items[key] = e
	c.used += size
	return false
}

// Resize retargets the cache's byte capacity, evicting lowest scores
// until the residents fit.
func (c *scoreCache) Resize(capacity core.Bytes) {
	c.capacity = capacity
	for c.used > c.capacity && c.h.Len() > 0 {
		c.evictOne()
	}
}

func (c *scoreCache) evictOne() {
	if c.h.Len() == 0 {
		return
	}
	e := heap.Pop(&c.h).(*scoreEntry)
	delete(c.items, e.key)
	c.used -= e.size
	// GDSF inflation: future entries must beat the evicted value.
	if c.name == "GDSF" && e.score > c.inflation {
		c.inflation = e.score
	}
}

// Infinite is the capacity-bound-free reference point: everything ever
// seen stays resident. Its hit ratio is the trace's reuse ceiling.
type Infinite struct {
	items map[string]core.Bytes
	used  core.Bytes
}

// NewInfinite returns an unbounded cache.
func NewInfinite() *Infinite { return &Infinite{items: make(map[string]core.Bytes)} }

// Name implements Cache.
func (c *Infinite) Name() string { return "INF" }

// Access implements Cache; nothing ever evicts.
func (c *Infinite) Access(key string, size core.Bytes, _ core.Time) bool {
	if _, ok := c.items[key]; ok {
		return true
	}
	c.items[key] = size
	c.used += size
	return false
}

// Used implements Cache.
func (c *Infinite) Used() core.Bytes { return c.used }

// Len implements Cache.
func (c *Infinite) Len() int { return len(c.items) }
