package cache

import (
	"fmt"

	"cbfww/internal/core"
	"cbfww/internal/logmine"
)

// Result summarizes one trace-driven simulation run.
type Result struct {
	Policy string
	// Capacity is the simulated cache size in bytes (0 for INF).
	Capacity core.Bytes
	// Requests and Hits count object-level accesses.
	Requests, Hits int
	// ReqBytes and HitBytes weight by object size (byte hit ratio, the
	// web-adapted measure §1 mentions).
	ReqBytes, HitBytes core.Bytes
}

// HitRatio returns hits over requests.
func (r Result) HitRatio() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Requests)
}

// ByteHitRatio returns hit bytes over requested bytes.
func (r Result) ByteHitRatio() float64 {
	if r.ReqBytes == 0 {
		return 0
	}
	return float64(r.HitBytes) / float64(r.ReqBytes)
}

// String renders the result as an experiment table row.
func (r Result) String() string {
	return fmt.Sprintf("%-7s cap=%-8v hit=%5.1f%% bytehit=%5.1f%% (%d/%d)",
		r.Policy, r.Capacity, 100*r.HitRatio(), 100*r.ByteHitRatio(), r.Hits, r.Requests)
}

// Run replays a log against the cache. A record with Modified=true
// invalidates the cached copy first (the origin changed, so a stale hit is
// not a hit), which mirrors a cache with perfect consistency checking.
func Run(c Cache, trace logmine.Log) Result {
	res := Result{Policy: c.Name()}
	if b, ok := c.(interface{ capacityOf() core.Bytes }); ok {
		res.Capacity = b.capacityOf()
	}
	for _, rec := range trace {
		res.Requests++
		res.ReqBytes += rec.Bytes
		key := rec.URL
		if rec.Modified {
			// The origin changed since the cached copy was stored, so a
			// stale hit is not a hit: the fetch counts as a miss, but the
			// access still updates the policy's bookkeeping and residency.
			c.Access(key, rec.Bytes, rec.Time)
			continue
		}
		if c.Access(key, rec.Bytes, rec.Time) {
			res.Hits++
			res.HitBytes += rec.Bytes
		}
	}
	return res
}

func (c *listCache) capacityOf() core.Bytes  { return c.capacity }
func (c *scoreCache) capacityOf() core.Bytes { return c.capacity }

// Sweep runs the same trace across several cache constructors and
// capacities, returning results in input order — the engine behind E-X3's
// hit-ratio-vs-size curves.
func Sweep(trace logmine.Log, capacities []core.Bytes, makes ...func(core.Bytes) Cache) []Result {
	var out []Result
	for _, mk := range makes {
		for _, cap := range capacities {
			out = append(out, Run(mk(cap), trace))
		}
	}
	return out
}
