package cache

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"cbfww/internal/core"
	"cbfww/internal/logmine"
	"cbfww/internal/workload"
)

// access drives a sequence of equal-size requests and returns "H"/"M"
// outcome string, e.g. "MMHM".
func access(c Cache, size core.Bytes, keys ...string) string {
	var b strings.Builder
	for i, k := range keys {
		if c.Access(k, size, core.Time(i)) {
			b.WriteByte('H')
		} else {
			b.WriteByte('M')
		}
	}
	return b.String()
}

func TestLRUEvictsLeastRecent(t *testing.T) {
	c := NewLRU(2) // two 1-byte objects
	got := access(c, 1, "a", "b", "a", "c", "b", "a")
	// a,b miss; a hit; c evicts b (LRU); b miss evicts a; a miss.
	if got != "MMHMMM" {
		t.Errorf("outcomes = %s, want MMHMMM", got)
	}
	if c.Len() != 2 || c.Used() != 2 {
		t.Errorf("Len=%d Used=%d", c.Len(), c.Used())
	}
}

func TestFIFOIgnoresHits(t *testing.T) {
	c := NewFIFO(2)
	// a,b in; touching a does not refresh it; c evicts a (first in).
	got := access(c, 1, "a", "b", "a", "c", "a")
	if got != "MMHMM" {
		t.Errorf("outcomes = %s, want MMHMM", got)
	}
}

func TestMRUEvictsMostRecent(t *testing.T) {
	c := NewMRU(2)
	// a,b in; c evicts b (most recently used); a still resident.
	got := access(c, 1, "a", "b", "c", "a")
	if got != "MMMH" {
		t.Errorf("outcomes = %s, want MMMH", got)
	}
}

func TestLFUKeepsFrequent(t *testing.T) {
	c := NewLFU(2)
	// a hit twice; b once; c evicts b (least frequent).
	got := access(c, 1, "a", "a", "a", "b", "c", "a")
	if got != "MHHMMH" {
		t.Errorf("outcomes = %s, want MHHMMH", got)
	}
}

func TestSizeEvictsLargest(t *testing.T) {
	c := NewSize(100)
	c.Access("big", 60, 0)
	c.Access("small", 30, 1)
	// Adding 30 more forces eviction of "big" (largest).
	c.Access("mid", 30, 2)
	if c.Access("big", 60, 3) {
		t.Error("big survived SIZE eviction")
	}
	// small had to go to fit big again (60+30+30 > 100 → evict largest
	// first, that's big itself... verify small state empirically).
	_ = c
}

func TestGDSFPrefersSmallPopular(t *testing.T) {
	c := NewGDSF(100)
	// Small object accessed often vs big object accessed once.
	for i := 0; i < 5; i++ {
		c.Access("small", 10, core.Time(i))
	}
	c.Access("big", 90, 10)
	// Inserting forces eviction: big should go (freq 1, huge size).
	c.Access("other", 20, 11)
	if !c.Access("small", 10, 12) {
		t.Error("GDSF evicted the small popular object")
	}
	if c.Access("big", 90, 13) {
		t.Error("GDSF kept the big cold object")
	}
}

func TestLRUKPrefersHistory(t *testing.T) {
	c := NewLRUK(2, 2)
	// a referenced twice (has a t_2), b once (t_2 = -inf).
	access(c, 1, "a", "a", "b")
	// c arrives: b (no k-th reference) evicts first.
	c.Access("c", 1, 10)
	if !c.Access("a", 1, 11) {
		t.Error("LRU-2 evicted the object with full history")
	}
	if c.Access("b", 1, 12) {
		t.Error("LRU-2 kept the single-reference object")
	}
}

func TestLRUKHistorySurvivesEviction(t *testing.T) {
	c := NewLRUK(1, 2).(*scoreCache)
	c.Access("a", 1, 0)
	c.Access("b", 1, 1) // evicts a, but a's history is retained
	if len(c.histories["a"]) == 0 {
		t.Error("history dropped on eviction")
	}
}

func TestOversizeObjectNotCached(t *testing.T) {
	for _, c := range []Cache{NewLRU(10), NewLFU(10), NewGDSF(10), NewSize(10)} {
		if c.Access("huge", 11, 0) {
			t.Errorf("%s: first access hit", c.Name())
		}
		if c.Access("huge", 11, 1) {
			t.Errorf("%s: oversize object was cached", c.Name())
		}
		if c.Len() != 0 {
			t.Errorf("%s: Len = %d", c.Name(), c.Len())
		}
	}
}

func TestInfiniteNeverEvicts(t *testing.T) {
	c := NewInfinite()
	got := access(c, 1, "a", "b", "c", "a", "b", "c")
	if got != "MMMHHH" {
		t.Errorf("outcomes = %s", got)
	}
	if c.Name() != "INF" || c.Len() != 3 || c.Used() != 3 {
		t.Errorf("state: %s %d %v", c.Name(), c.Len(), c.Used())
	}
}

// Property: no bounded cache ever exceeds its capacity, and the infinite
// cache's hit count upper-bounds every policy's on the same trace.
func TestCapacityAndUpperBoundProperty(t *testing.T) {
	f := func(keys []uint8, sizes []uint8) bool {
		n := len(keys)
		if len(sizes) < n {
			n = len(sizes)
		}
		caches := []Cache{
			NewLRU(64), NewFIFO(64), NewMRU(64), NewLFU(64),
			NewSize(64), NewGDSF(64), NewLRUK(64, 2),
		}
		inf := NewInfinite()
		hits := make([]int, len(caches))
		infHits := 0
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("k%d", keys[i]%16)
			size := core.Bytes(sizes[i]%16 + 1)
			for ci, c := range caches {
				if c.Access(key, size, core.Time(i)) {
					hits[ci]++
				}
				if c.Used() > 64 {
					return false
				}
			}
			if inf.Access(key, size, core.Time(i)) {
				infHits++
			}
		}
		for _, h := range hits {
			if h > infHits {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func zipfTrace(t testing.TB, n int) logmine.Log {
	rng := rand.New(rand.NewSource(5))
	z := workload.NewZipf(rng, 500, 0.9)
	sizes := make([]core.Bytes, 500)
	for i := range sizes {
		sizes[i] = core.Bytes(rng.Intn(63) + 1)
	}
	var l logmine.Log
	for i := 0; i < n; i++ {
		r := z.Sample()
		l = append(l, logmine.Record{
			Time: core.Time(i), User: "u", URL: fmt.Sprintf("/p%03d", r),
			Status: 200, Bytes: sizes[r] * core.KB,
		})
	}
	return l
}

func TestRunHitRatioOrdering(t *testing.T) {
	trace := zipfTrace(t, 20000)
	inf := Run(NewInfinite(), trace)
	small := Run(NewLRU(100*core.KB), trace)
	big := Run(NewLRU(4000*core.KB), trace)
	if !(small.HitRatio() < big.HitRatio()) {
		t.Errorf("bigger cache not better: %v vs %v", small.HitRatio(), big.HitRatio())
	}
	if big.HitRatio() > inf.HitRatio() {
		t.Errorf("bounded beat infinite: %v vs %v", big.HitRatio(), inf.HitRatio())
	}
	if inf.HitRatio() <= 0.3 {
		t.Errorf("zipf trace reuse too low: %v", inf.HitRatio())
	}
	if small.Requests != 20000 || small.ReqBytes == 0 {
		t.Errorf("accounting: %+v", small)
	}
	if small.Capacity != 100*core.KB {
		t.Errorf("capacity not recorded: %v", small.Capacity)
	}
}

func TestRunModifiedForcesMiss(t *testing.T) {
	l := logmine.Log{
		{Time: 0, URL: "/a", Bytes: 1, User: "u", Status: 200},
		{Time: 1, URL: "/a", Bytes: 1, User: "u", Status: 200},
		{Time: 2, URL: "/a", Bytes: 1, User: "u", Status: 200, Modified: true},
		{Time: 3, URL: "/a", Bytes: 1, User: "u", Status: 200},
	}
	res := Run(NewLRU(10), l)
	// Accesses: miss, hit, modified (counts as miss), hit.
	if res.Hits != 2 {
		t.Errorf("Hits = %d, want 2", res.Hits)
	}
}

func TestSweepShape(t *testing.T) {
	trace := zipfTrace(t, 2000)
	results := Sweep(trace,
		[]core.Bytes{50 * core.KB, 500 * core.KB},
		NewLRU, NewLFU)
	if len(results) != 4 {
		t.Fatalf("%d results", len(results))
	}
	if results[0].Policy != "LRU" || results[2].Policy != "LFU" {
		t.Errorf("order: %v %v", results[0].Policy, results[2].Policy)
	}
	// Results render as table rows.
	if s := results[0].String(); !strings.Contains(s, "LRU") || !strings.Contains(s, "hit=") {
		t.Errorf("String() = %q", s)
	}
}

func TestResultRatiosEmpty(t *testing.T) {
	var r Result
	if r.HitRatio() != 0 || r.ByteHitRatio() != 0 {
		t.Error("empty result ratios nonzero")
	}
}

func BenchmarkLRUAccess(b *testing.B) {
	trace := zipfTrace(b, 50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(NewLRU(1000*core.KB), trace)
	}
}

func BenchmarkGDSFAccess(b *testing.B) {
	trace := zipfTrace(b, 50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(NewGDSF(1000*core.KB), trace)
	}
}
