package blob

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"

	"cbfww/internal/core"
)

func newStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := newStore(t)
	content := []byte("the festival parade passes through the city center")
	ref, err := s.Put(content)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Valid() {
		t.Fatalf("invalid ref %q", ref)
	}
	got, err := s.Get(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Errorf("Get = %q", got)
	}
	if s.Len() != 1 || s.Size() != core.Bytes(len(content)) {
		t.Errorf("Len=%d Size=%v", s.Len(), s.Size())
	}
}

func TestDedupSharedContent(t *testing.T) {
	s := newStore(t)
	img := bytes.Repeat([]byte("PNG"), 1000)
	// Ten pages embed the same image.
	var refs []Ref
	for i := 0; i < 10; i++ {
		r, err := s.Put(img)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, r)
	}
	for _, r := range refs[1:] {
		if r != refs[0] {
			t.Fatal("identical content produced different refs")
		}
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1 (deduped)", s.Len())
	}
	if s.RefCount(refs[0]) != 10 {
		t.Errorf("RefCount = %d", s.RefCount(refs[0]))
	}
	if s.Size() != core.Bytes(len(img)) {
		t.Errorf("Size = %v, want one copy", s.Size())
	}
}

func TestReleaseGarbageCollects(t *testing.T) {
	s := newStore(t)
	ref, _ := s.Put([]byte("a"))
	s.Put([]byte("a")) // refcount 2
	if err := s.Release(ref); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(ref); err != nil {
		t.Fatalf("blob gone with refs remaining: %v", err)
	}
	if err := s.Release(ref); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(ref); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("Get after GC err = %v", err)
	}
	if s.Len() != 0 || s.Size() != 0 {
		t.Errorf("Len=%d Size=%v after GC", s.Len(), s.Size())
	}
	if err := s.Release(ref); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("double release err = %v", err)
	}
}

func TestGetErrors(t *testing.T) {
	s := newStore(t)
	if _, err := s.Get("zz"); !errors.Is(err, core.ErrInvalid) {
		t.Errorf("bad ref err = %v", err)
	}
	missing := Ref("0000000000000000000000000000000000000000000000000000000000000000")
	if _, err := s.Get(missing); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("missing ref err = %v", err)
	}
}

func TestCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := s.Put([]byte("pristine content"))
	// Corrupt the file on disk.
	path := filepath.Join(dir, string(ref[:2]), string(ref[2:]))
	if err := os.WriteFile(path, []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(ref); err == nil {
		t.Error("corrupted blob served")
	}
}

func TestReopenReindexes(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	ref, _ := s.Put([]byte("survives restarts"))
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Get(ref)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "survives restarts" {
		t.Errorf("Get after reopen = %q", got)
	}
	if s2.Len() != 1 || s2.RefCount(ref) != 1 {
		t.Errorf("reopen state: Len=%d rc=%d", s2.Len(), s2.RefCount(ref))
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(""); !errors.Is(err, core.ErrInvalid) {
		t.Errorf("empty root err = %v", err)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := newStore(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				content := []byte(fmt.Sprintf("doc %d", i%10)) // heavy sharing
				ref, err := s.Put(content)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Get(ref); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 10 {
		t.Errorf("Len = %d, want 10 distinct", s.Len())
	}
	if got := s.RefCount(s.Refs()[0]); got != 40 {
		t.Errorf("RefCount = %d, want 40", got)
	}
}

// Property: Put/Get round-trips arbitrary bytes, and refs are stable.
func TestPutGetProperty(t *testing.T) {
	s := newStore(t)
	f := func(content []byte) bool {
		r1, err := s.Put(content)
		if err != nil {
			return false
		}
		r2, err := s.Put(content)
		if err != nil || r1 != r2 {
			return false
		}
		got, err := s.Get(r1)
		return err == nil && bytes.Equal(got, content)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
