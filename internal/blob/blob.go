// Package blob is a content-addressed on-disk body store: the "disk" of
// the warehouse made real. Bodies are stored once per distinct content
// (SHA-256 address), so the shared media components of §5.1 — the same
// image embedded by many pages — occupy disk space once no matter how many
// pages, versions or backups reference them. Reference counting enables
// garbage collection when version histories are pruned.
package blob

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"cbfww/internal/core"
)

// Ref is the content address of a stored blob (hex SHA-256).
type Ref string

// Valid reports whether the ref has the right shape.
func (r Ref) Valid() bool {
	if len(r) != sha256.Size*2 {
		return false
	}
	_, err := hex.DecodeString(string(r))
	return err == nil
}

// Store is a content-addressed blob store rooted at a directory. Blobs
// live under root/ab/cdef... (two-level fan-out). Safe for concurrent
// use.
type Store struct {
	root string

	mu   sync.Mutex
	refs map[Ref]int // reference counts
	size core.Bytes  // total stored bytes (distinct contents)
}

// Open creates or reopens a store at root. Existing blobs are re-indexed
// with a reference count of 1 each (histories re-Put what they still
// reference, raising counts as needed).
func Open(root string) (*Store, error) {
	if root == "" {
		return nil, fmt.Errorf("blob: %w: empty root", core.ErrInvalid)
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("blob: %w", err)
	}
	s := &Store{root: root, refs: make(map[Ref]int)}
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		name := filepath.Base(filepath.Dir(path)) + filepath.Base(path)
		ref := Ref(name)
		if ref.Valid() {
			s.refs[ref] = 1
			s.size += core.Bytes(info.Size())
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("blob: scan: %w", err)
	}
	return s, nil
}

func (s *Store) pathOf(r Ref) string {
	return filepath.Join(s.root, string(r[:2]), string(r[2:]))
}

// Put stores content and returns its address, incrementing the reference
// count. Identical content is written once.
func (s *Store) Put(content []byte) (Ref, error) {
	sum := sha256.Sum256(content)
	ref := Ref(hex.EncodeToString(sum[:]))

	s.mu.Lock()
	defer s.mu.Unlock()
	if n, ok := s.refs[ref]; ok && n > 0 {
		s.refs[ref] = n + 1
		return ref, nil
	}
	path := s.pathOf(ref)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return "", fmt.Errorf("blob: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, content, 0o644); err != nil {
		return "", fmt.Errorf("blob: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("blob: %w", err)
	}
	s.refs[ref] = 1
	s.size += core.Bytes(len(content))
	return ref, nil
}

// Get reads a blob's content.
func (s *Store) Get(r Ref) ([]byte, error) {
	if !r.Valid() {
		return nil, fmt.Errorf("blob: %w: bad ref %q", core.ErrInvalid, r)
	}
	s.mu.Lock()
	known := s.refs[r] > 0
	s.mu.Unlock()
	if !known {
		return nil, fmt.Errorf("blob: %q: %w", r, core.ErrNotFound)
	}
	b, err := os.ReadFile(s.pathOf(r))
	if err != nil {
		return nil, fmt.Errorf("blob: read %q: %w", r, err)
	}
	// Verify integrity on the way out — a warehouse serving silently
	// corrupted bodies is worse than one that errors.
	sum := sha256.Sum256(b)
	if hex.EncodeToString(sum[:]) != string(r) {
		return nil, fmt.Errorf("blob: %q: content corrupted on disk", r)
	}
	return b, nil
}

// Release decrements a blob's reference count; at zero the file is
// deleted (garbage collection).
func (s *Store) Release(r Ref) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.refs[r]
	if !ok || n <= 0 {
		return fmt.Errorf("blob: release %q: %w", r, core.ErrNotFound)
	}
	if n > 1 {
		s.refs[r] = n - 1
		return nil
	}
	delete(s.refs, r)
	path := s.pathOf(r)
	if info, err := os.Stat(path); err == nil {
		s.size -= core.Bytes(info.Size())
	}
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("blob: gc %q: %w", r, err)
	}
	return nil
}

// RefCount returns the current reference count of r.
func (s *Store) RefCount(r Ref) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.refs[r]
}

// Len returns the number of distinct blobs stored.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.refs)
}

// Size returns the total bytes of distinct stored contents — what the
// dedup actually saves compared to naive per-reference storage.
func (s *Store) Size() core.Bytes {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Refs returns all stored refs, sorted (diagnostics and tests).
func (s *Store) Refs() []Ref {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Ref, 0, len(s.refs))
	for r := range s.refs {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
