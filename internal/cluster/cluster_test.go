package cluster

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"cbfww/internal/core"
	"cbfww/internal/text"
	"cbfww/internal/workload"
)

// topicPoints generates labelled points from disjoint topic vocabularies.
func topicPoints(t *testing.T, nTopics, perTopic int, seed int64) ([]Point, map[core.ObjectID]int, *text.Corpus) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	vocab := workload.NewVocabulary(nTopics, 20, 5)
	corpus := text.NewCorpus()
	var points []Point
	labels := make(map[core.ObjectID]int)
	id := core.ObjectID(1)
	for topic := 0; topic < nTopics; topic++ {
		for i := 0; i < perTopic; i++ {
			doc := vocab.Sentence(rng, topic, 30, 0.1)
			points = append(points, Point{ID: id, Vec: corpus.VectorizeNew(doc)})
			labels[id] = topic
			id++
		}
	}
	// Shuffle arrival order so the online clusterer doesn't see topics in
	// blocks.
	rng.Shuffle(len(points), func(i, j int) { points[i], points[j] = points[j], points[i] })
	return points, labels, corpus
}

func TestNewOnlineValidation(t *testing.T) {
	for _, sim := range []float64{0, 1, -0.5, 1.5} {
		if _, err := NewOnline(sim, 0); err == nil {
			t.Errorf("NewOnline(%v) accepted", sim)
		}
	}
	if _, err := NewOnline(0.3, 10); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestOnlineSeparatesTopics(t *testing.T) {
	points, labels, _ := topicPoints(t, 4, 25, 42)
	o, err := NewOnline(0.15, 0)
	if err != nil {
		t.Fatal(err)
	}
	clusterOf := make(map[core.ObjectID]int)
	for _, p := range points {
		clusterOf[p.ID] = o.Assign(p)
	}
	purity := Purity(clusterOf, labels)
	if purity < 0.8 {
		t.Errorf("online purity = %.2f with %d regions, want >= 0.8", purity, o.Len())
	}
	if o.Len() < 4 {
		t.Errorf("found %d regions for 4 topics", o.Len())
	}
}

func TestOnlineMaxRegionsForcesAssignment(t *testing.T) {
	points, _, _ := topicPoints(t, 6, 10, 7)
	o, err := NewOnline(0.9, 3) // high threshold would open many regions
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		o.Assign(p)
	}
	if o.Len() > 3 {
		t.Errorf("maxRegions violated: %d regions", o.Len())
	}
}

func TestOnlineRegionBookkeeping(t *testing.T) {
	o, _ := NewOnline(0.5, 0)
	v1 := text.Builder{0: 1}.Vector()
	v2 := text.Builder{0: 0.9, 1: 0.1}.Vector().Normalize()
	i1 := o.Assign(Point{ID: 1, Vec: v1})
	i2 := o.Assign(Point{ID: 2, Vec: v2})
	if i1 != i2 {
		t.Fatalf("similar vectors split: %d vs %d", i1, i2)
	}
	v3 := text.Builder{5: 1}.Vector()
	i3 := o.Assign(Point{ID: 3, Vec: v3})
	if i3 == i1 {
		t.Fatal("orthogonal vector joined region")
	}
	if got, ok := o.RegionOf(2); !ok || got != i1 {
		t.Errorf("RegionOf(2) = %d, %v", got, ok)
	}
	if _, ok := o.RegionOf(99); ok {
		t.Error("RegionOf(unknown) ok")
	}
	regs := o.Regions()
	if len(regs) != 2 {
		t.Fatalf("%d regions", len(regs))
	}
	if regs[i1].Size() != 2 || regs[i3].Size() != 1 {
		t.Errorf("sizes: %d, %d", regs[i1].Size(), regs[i3].Size())
	}
	if regs[i1].Radius <= 0 {
		t.Errorf("radius = %v, want > 0 after absorbing a distinct vector", regs[i1].Radius)
	}
	// Centroid stays unit-normalized.
	if n := regs[i1].Centroid.Norm(); math.Abs(n-1) > 1e-9 {
		t.Errorf("centroid norm = %v", n)
	}
	// Snapshot isolation: mutating the copy must not affect the clusterer.
	// (Centroid vectors are immutable values; the Members slice is the
	// mutable part of the snapshot.)
	regs[i1].Members[0] = 999
	regs2 := o.Regions()
	if regs2[i1].Members[0] == 999 {
		t.Error("Regions snapshot aliases internal state")
	}
}

func TestOnlineNearestDoesNotMutate(t *testing.T) {
	o, _ := NewOnline(0.5, 0)
	if _, _, ok := o.Nearest(text.Builder{0: 1}.Vector()); ok {
		t.Error("Nearest on empty clusterer returned ok")
	}
	o.Assign(Point{ID: 1, Vec: text.Builder{0: 1}.Vector()})
	before := o.Len()
	idx, sim, ok := o.Nearest(text.Builder{0: 1}.Vector())
	if !ok || idx != 0 || sim < 0.99 {
		t.Errorf("Nearest = %d, %v, %v", idx, sim, ok)
	}
	if o.Len() != before {
		t.Error("Nearest mutated the clusterer")
	}
}

func TestOnlineConcurrent(t *testing.T) {
	o, _ := NewOnline(0.3, 0)
	points, _, _ := topicPoints(t, 3, 30, 5)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(points); i += 4 {
				o.Assign(points[i])
				o.Nearest(points[i].Vec)
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, r := range o.Regions() {
		total += r.Size()
	}
	if total != len(points) {
		t.Errorf("members = %d, want %d", total, len(points))
	}
}

func TestKMedianRecoverTopics(t *testing.T) {
	points, labels, _ := topicPoints(t, 5, 20, 11)
	rng := rand.New(rand.NewSource(3))
	res, err := KMedian(points, 5, rng, 20, 20)
	if err != nil {
		t.Fatal(err)
	}
	clusterOf := make(map[core.ObjectID]int)
	for i, p := range points {
		clusterOf[p.ID] = res.Assign[i]
	}
	if purity := Purity(clusterOf, labels); purity < 0.9 {
		t.Errorf("k-median purity = %.2f, want >= 0.9", purity)
	}
	if res.Cost <= 0 {
		t.Errorf("cost = %v", res.Cost)
	}
}

func TestKMedianCostDecreasesWithK(t *testing.T) {
	points, _, _ := topicPoints(t, 6, 15, 13)
	var prev float64 = math.Inf(1)
	for _, k := range []int{1, 3, 6, 12} {
		rng := rand.New(rand.NewSource(1))
		res, err := KMedian(points, k, rng, 15, 10)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost > prev*1.05 { // small tolerance: local search is heuristic
			t.Errorf("cost went up at k=%d: %v -> %v", k, prev, res.Cost)
		}
		prev = res.Cost
	}
}

func TestKMedianEdgeCases(t *testing.T) {
	if _, err := KMedian(nil, 3, rand.New(rand.NewSource(1)), 5, 0); err == nil {
		t.Error("no points accepted")
	}
	pts := []Point{{ID: 1, Vec: text.Builder{0: 1}.Vector()}}
	if _, err := KMedian(pts, 0, rand.New(rand.NewSource(1)), 5, 0); err == nil {
		t.Error("k=0 accepted")
	}
	// k > n is clamped.
	res, err := KMedian(pts, 5, rand.New(rand.NewSource(1)), 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 1 {
		t.Errorf("%d centroids for 1 point", len(res.Centroids))
	}
	// Identical points: seeding must not loop forever.
	same := []Point{
		{ID: 1, Vec: text.Builder{0: 1}.Vector()},
		{ID: 2, Vec: text.Builder{0: 1}.Vector()},
		{ID: 3, Vec: text.Builder{0: 1}.Vector()},
	}
	res2, err := KMedian(same, 3, rand.New(rand.NewSource(1)), 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cost > 1e-9 {
		t.Errorf("identical points cost = %v", res2.Cost)
	}
}

func TestSSQ(t *testing.T) {
	c := text.Builder{0: 1}.Vector()
	pts := []Point{
		{ID: 1, Vec: text.Builder{0: 1}.Vector()},
		{ID: 2, Vec: text.Builder{1: 1}.Vector()},
	}
	got := SSQ(pts, func(Point) text.Vector { return c })
	if math.Abs(got-2) > 1e-9 { // 0 + (sqrt(2))^2
		t.Errorf("SSQ = %v, want 2", got)
	}
}

func TestPurity(t *testing.T) {
	clusterOf := map[core.ObjectID]int{1: 0, 2: 0, 3: 0, 4: 1, 5: 1}
	labelOf := map[core.ObjectID]int{1: 7, 2: 7, 3: 8, 4: 9, 5: 9}
	if got := Purity(clusterOf, labelOf); math.Abs(got-0.8) > 1e-9 {
		t.Errorf("Purity = %v, want 0.8", got)
	}
	if Purity(nil, nil) != 0 {
		t.Error("empty purity != 0")
	}
	// Points without labels are ignored.
	if got := Purity(map[core.ObjectID]int{1: 0}, map[core.ObjectID]int{}); got != 0 {
		t.Errorf("unlabeled purity = %v", got)
	}
}

func TestTopTerms(t *testing.T) {
	dict := text.NewDictionary()
	a, b := dict.ID("kyoto"), dict.ID("station")
	r := Region{Centroid: text.Builder{a: 0.9, b: 0.4}.Vector()}
	got := TopTerms(r, dict, 2)
	if len(got) != 2 || got[0] != "kyoto" || got[1] != "station" {
		t.Errorf("TopTerms = %v", got)
	}
}

// Property: the online clusterer always assigns every point somewhere, and
// region member counts sum to the number of assigns.
func TestOnlineAssignTotalProperty(t *testing.T) {
	f := func(seeds []uint8) bool {
		o, err := NewOnline(0.4, 5)
		if err != nil {
			return false
		}
		for i, s := range seeds {
			v := text.Builder{text.TermID(s % 8): 1}.Vector()
			o.Assign(Point{ID: core.ObjectID(i + 1), Vec: v})
		}
		total := 0
		for _, r := range o.Regions() {
			total += r.Size()
		}
		return total == len(seeds) && o.Len() <= 5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Online vs batch: on well-separated topics, the single-pass clusterer
// should reach at least ~85% of the batch k-median's purity (E-F7's
// headline comparison).
func TestOnlineVsBatchShape(t *testing.T) {
	points, labels, _ := topicPoints(t, 5, 30, 99)
	o, _ := NewOnline(0.15, 0)
	onlineOf := make(map[core.ObjectID]int)
	for _, p := range points {
		onlineOf[p.ID] = o.Assign(p)
	}
	res, err := KMedian(points, 5, rand.New(rand.NewSource(2)), 20, 20)
	if err != nil {
		t.Fatal(err)
	}
	batchOf := make(map[core.ObjectID]int)
	for i, p := range points {
		batchOf[p.ID] = res.Assign[i]
	}
	po, pb := Purity(onlineOf, labels), Purity(batchOf, labels)
	t.Logf("online purity %.3f (regions=%d), batch purity %.3f", po, o.Len(), pb)
	if po < pb*0.85 {
		t.Errorf("online %.3f too far below batch %.3f", po, pb)
	}
}

func BenchmarkOnlineAssign(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vocab := workload.NewVocabulary(8, 20, 5)
	corpus := text.NewCorpus()
	points := make([]Point, 512)
	for i := range points {
		doc := vocab.Sentence(rng, i%8, 30, 0.1)
		points[i] = Point{ID: core.ObjectID(i + 1), Vec: corpus.VectorizeNew(doc)}
	}
	o, _ := NewOnline(0.2, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Assign(points[i%len(points)])
	}
}

func BenchmarkKMedian(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vocab := workload.NewVocabulary(8, 20, 5)
	corpus := text.NewCorpus()
	points := make([]Point, 256)
	for i := range points {
		doc := vocab.Sentence(rng, i%8, 30, 0.1)
		points[i] = Point{ID: core.ObjectID(i + 1), Vec: corpus.VectorizeNew(doc)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KMedian(points, 8, rng, 10, 5); err != nil {
			b.Fatal(err)
		}
	}
}
