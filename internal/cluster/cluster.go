// Package cluster provides the clustering substrate behind semantic
// regions (§5.3). The paper denotes a semantic region R = (σ, λ) — a
// centroid σ with radius λ — and assumes "a suitable near-optimum
// [streaming] algorithm" exists, citing LSEARCH and BIRCH. This package
// provides:
//
//   - Online: a single-pass leader-style clusterer that assigns each
//     arriving logical document to the nearest existing region when it is
//     similar enough, and opens a new region otherwise. This is the
//     clusterer the Semantic Region Manager runs in production, because
//     admission decisions cannot wait for a batch.
//   - KMedian: a batch k-median in the LSEARCH family — k-means++-style
//     weighted seeding followed by Lloyd refinement and facility-swap local
//     search — used offline to rebuild regions and in E-F7 to compare
//     against the online clusterer.
//
// Distances are Euclidean over unit-normalized TF-IDF vectors, so squared
// distance and cosine similarity are monotonically related
// (d² = 2 − 2·cos); thresholds are expressed as cosine similarity, which
// is easier to reason about for text.
package cluster

import (
	"fmt"
	"math/rand"
	"sync"

	"cbfww/internal/core"
	"cbfww/internal/text"
)

// Point is one item to cluster: an object and its feature vector. Vectors
// should be unit-normalized.
type Point struct {
	ID  core.ObjectID
	Vec text.Vector
}

// Region is one cluster: the semantic region (σ, λ) of the paper.
type Region struct {
	// Index is the region's position in the clusterer's region list; it is
	// stable for the life of the clusterer (regions are never removed,
	// only merged into).
	Index int
	// Centroid is σ, the running mean of member vectors (kept normalized).
	Centroid text.Vector
	// Radius is λ: the maximum centroid distance among members at the time
	// they were assigned.
	Radius float64
	// Members lists assigned object IDs in arrival order.
	Members []core.ObjectID
	// weight is the number of vectors absorbed into the centroid.
	weight float64
}

// Size returns the number of members.
func (r *Region) Size() int { return len(r.Members) }

// Online is the single-pass clusterer. Safe for concurrent use.
type Online struct {
	mu sync.RWMutex
	// minSim is the cosine similarity above which a point joins the
	// nearest existing region instead of founding a new one.
	minSim float64
	// maxRegions caps the region count; when a new point would exceed it,
	// the point is forced into the nearest region regardless of minSim
	// (memory-bounded operation, as streaming algorithms require).
	maxRegions int
	regions    []*Region
	assign     map[core.ObjectID]int
}

// NewOnline returns an online clusterer. minSim must be in (0, 1);
// maxRegions <= 0 means unbounded.
func NewOnline(minSim float64, maxRegions int) (*Online, error) {
	if minSim <= 0 || minSim >= 1 {
		return nil, fmt.Errorf("cluster: %w: minSim %v outside (0,1)", core.ErrInvalid, minSim)
	}
	return &Online{
		minSim:     minSim,
		maxRegions: maxRegions,
		assign:     make(map[core.ObjectID]int),
	}, nil
}

// Assign places p into a region and returns the region index. Re-assigning
// an already-seen ID moves it only logically: the old centroid contribution
// stays (streaming algorithms cannot un-absorb), but the membership and
// returned index update.
func (o *Online) Assign(p Point) int {
	o.mu.Lock()
	defer o.mu.Unlock()

	best, bestSim := -1, -1.0
	for i, r := range o.regions {
		if sim := p.Vec.Cosine(r.Centroid); sim > bestSim {
			best, bestSim = i, sim
		}
	}
	forced := o.maxRegions > 0 && len(o.regions) >= o.maxRegions
	if best >= 0 && (bestSim >= o.minSim || forced) {
		o.absorb(o.regions[best], p)
		o.assign[p.ID] = best
		return best
	}
	// Found a new region.
	r := &Region{
		Index:    len(o.regions),
		Centroid: p.Vec.Clone(),
		Members:  []core.ObjectID{p.ID},
		weight:   1,
	}
	o.regions = append(o.regions, r)
	o.assign[p.ID] = r.Index
	return r.Index
}

// absorb folds p into region r: running-mean centroid update, member list
// append, radius widening.
func (o *Online) absorb(r *Region, p Point) {
	r.weight++
	// new_mean = mean + (x - mean)/n, done sparsely then re-normalized.
	inv := 1 / r.weight
	r.Centroid = r.Centroid.Scale(1-inv).AddScaled(p.Vec, inv).Normalize()
	if d := p.Vec.Distance(r.Centroid); d > r.Radius {
		r.Radius = d
	}
	r.Members = append(r.Members, p.ID)
}

// RegionOf returns the region index of an assigned ID.
func (o *Online) RegionOf(id core.ObjectID) (int, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	i, ok := o.assign[id]
	return i, ok
}

// Nearest returns the index of the region whose centroid is most cosine-
// similar to v, with that similarity; ok is false when no regions exist.
// It does not modify the clusterer, so queries can probe regions freely.
func (o *Online) Nearest(v text.Vector) (idx int, sim float64, ok bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	idx, sim = -1, -1
	for i, r := range o.regions {
		if s := v.Cosine(r.Centroid); s > sim {
			idx, sim = i, s
		}
	}
	return idx, sim, idx >= 0
}

// Regions returns a snapshot of the regions (copies of metadata; centroid
// vectors are cloned so callers cannot corrupt the clusterer).
func (o *Online) Regions() []Region {
	o.mu.RLock()
	defer o.mu.RUnlock()
	out := make([]Region, len(o.regions))
	for i, r := range o.regions {
		out[i] = Region{
			Index:    r.Index,
			Centroid: r.Centroid.Clone(),
			Radius:   r.Radius,
			Members:  append([]core.ObjectID(nil), r.Members...),
			weight:   r.weight,
		}
	}
	return out
}

// Len returns the current region count.
func (o *Online) Len() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.regions)
}

// SizeOf returns the member count of region idx (0 for unknown indices).
// It is the cheap accessor the Priority Manager uses to convert region
// heat into per-member heat.
func (o *Online) SizeOf(idx int) int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if idx < 0 || idx >= len(o.regions) {
		return 0
	}
	return len(o.regions[idx].Members)
}

// SSQ computes the sum of squared centroid distances of the given points
// under an assignment function — the clustering quality measure the paper
// adopts ("the quality of clustering is measured by the sum of square
// distance of data points from their centroid").
func SSQ(points []Point, centroidOf func(Point) text.Vector) float64 {
	var s float64
	for _, p := range points {
		c := centroidOf(p)
		d := p.Vec.Distance(c)
		s += d * d
	}
	return s
}

// Purity measures agreement with ground-truth labels: the fraction of
// points whose cluster's majority label matches their own. Clusters and
// labels are supplied as parallel maps from object ID.
func Purity(clusterOf map[core.ObjectID]int, labelOf map[core.ObjectID]int) float64 {
	if len(clusterOf) == 0 {
		return 0
	}
	// cluster -> label -> count
	counts := make(map[int]map[int]int)
	for id, c := range clusterOf {
		l, ok := labelOf[id]
		if !ok {
			continue
		}
		if counts[c] == nil {
			counts[c] = make(map[int]int)
		}
		counts[c][l]++
	}
	correct, total := 0, 0
	for _, labels := range counts {
		best, sum := 0, 0
		for _, n := range labels {
			sum += n
			if n > best {
				best = n
			}
		}
		correct += best
		total += sum
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// KMedianResult is the outcome of a batch clustering run.
type KMedianResult struct {
	Centroids []text.Vector
	// Assign maps each input point (by slice position) to a centroid index.
	Assign []int
	// Cost is the final SSQ.
	Cost float64
}

// KMedian clusters points into k groups with weighted seeding, Lloyd
// refinement and facility-swap local search (the LSEARCH family's local
// improvement step). rng drives seeding and swap proposals; swaps is the
// number of local-search proposals (0 disables the phase).
func KMedian(points []Point, k int, rng *rand.Rand, lloydIters, swaps int) (KMedianResult, error) {
	if k < 1 {
		return KMedianResult{}, fmt.Errorf("cluster: %w: k = %d", core.ErrInvalid, k)
	}
	if len(points) == 0 {
		return KMedianResult{}, fmt.Errorf("cluster: %w: no points", core.ErrInvalid)
	}
	if k > len(points) {
		k = len(points)
	}
	cents := seedPlusPlus(points, k, rng)
	assign := make([]int, len(points))
	for it := 0; it < lloydIters; it++ {
		changed := assignAll(points, cents, assign)
		recompute(points, assign, cents)
		if !changed {
			break
		}
	}
	cost := costOf(points, cents, assign)

	// Facility-swap local search: propose replacing a random centroid with
	// a random point; keep the swap when total cost improves.
	for s := 0; s < swaps; s++ {
		ci := rng.Intn(len(cents))
		pi := rng.Intn(len(points))
		old := cents[ci]
		cents[ci] = points[pi].Vec.Clone()
		trial := make([]int, len(points))
		assignAll(points, cents, trial)
		recompute(points, trial, cents)
		if c := costOf(points, cents, trial); c < cost {
			cost = c
			copy(assign, trial)
		} else {
			cents[ci] = old
			assignAll(points, cents, assign)
		}
	}
	return KMedianResult{Centroids: cents, Assign: assign, Cost: cost}, nil
}

// seedPlusPlus picks k initial centroids with distance-weighted sampling.
func seedPlusPlus(points []Point, k int, rng *rand.Rand) []text.Vector {
	cents := make([]text.Vector, 0, k)
	cents = append(cents, points[rng.Intn(len(points))].Vec.Clone())
	d2 := make([]float64, len(points))
	for len(cents) < k {
		var sum float64
		for i, p := range points {
			best := p.Vec.Distance(cents[0])
			for _, c := range cents[1:] {
				if d := p.Vec.Distance(c); d < best {
					best = d
				}
			}
			d2[i] = best * best
			sum += d2[i]
		}
		if sum == 0 {
			// All points coincide with existing centroids; duplicate one.
			cents = append(cents, cents[0].Clone())
			continue
		}
		u := rng.Float64() * sum
		acc := 0.0
		pick := len(points) - 1
		for i, w := range d2 {
			acc += w
			if acc >= u {
				pick = i
				break
			}
		}
		cents = append(cents, points[pick].Vec.Clone())
	}
	return cents
}

func assignAll(points []Point, cents []text.Vector, assign []int) (changed bool) {
	for i, p := range points {
		best, bestD := 0, p.Vec.Distance(cents[0])
		for c := 1; c < len(cents); c++ {
			if d := p.Vec.Distance(cents[c]); d < bestD {
				best, bestD = c, d
			}
		}
		if assign[i] != best {
			assign[i] = best
			changed = true
		}
	}
	return changed
}

func recompute(points []Point, assign []int, cents []text.Vector) {
	sums := make([]text.Builder, len(cents))
	counts := make([]int, len(cents))
	for i := range sums {
		sums[i] = text.NewBuilder()
	}
	for i, p := range points {
		sums[assign[i]].AddScaled(p.Vec, 1)
		counts[assign[i]]++
	}
	for c := range cents {
		if counts[c] > 0 {
			cents[c] = sums[c].Vector().Scale(1 / float64(counts[c])).Normalize()
		}
	}
}

func costOf(points []Point, cents []text.Vector, assign []int) float64 {
	var s float64
	for i, p := range points {
		d := p.Vec.Distance(cents[assign[i]])
		s += d * d
	}
	return s
}

// TopTerms renders each region's strongest terms through a dictionary —
// the human-readable face of a semantic region, used by the Topic Manager
// and the REPL.
func TopTerms(r Region, dict *text.Dictionary, n int) []string {
	ids := r.Centroid.Top(n)
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = dict.Term(id)
	}
	return out
}
