package version

import (
	"fmt"
	"sort"

	"cbfww/internal/text"
)

// Delta describes how content changed between two snapshots, at the term
// level — the granularity the warehouse's indexes and topic model care
// about ("A user can know the data in the past").
type Delta struct {
	FromVersion, ToVersion int
	// Added / Removed are the canonical terms whose counts grew / shrank,
	// sorted. TitleChanged flags a title rewrite.
	Added, Removed []string
	TitleChanged   bool
	// SizeDelta is the byte-size change.
	SizeDelta int64
}

// Empty reports whether the delta carries no observable change.
func (d Delta) Empty() bool {
	return len(d.Added) == 0 && len(d.Removed) == 0 && !d.TitleChanged && d.SizeDelta == 0
}

// String renders the delta compactly: "v1->v2 +3 terms -1 term (+120B)".
func (d Delta) String() string {
	s := fmt.Sprintf("v%d->v%d +%d -%d terms", d.FromVersion, d.ToVersion, len(d.Added), len(d.Removed))
	if d.TitleChanged {
		s += " title-changed"
	}
	if d.SizeDelta != 0 {
		s += fmt.Sprintf(" (%+dB)", d.SizeDelta)
	}
	return s
}

// Diff computes the term-level delta from snapshot a to snapshot b.
func Diff(a, b Snapshot) Delta {
	d := Delta{
		FromVersion:  a.Version,
		ToVersion:    b.Version,
		TitleChanged: a.Title != b.Title,
		SizeDelta:    int64(b.Size - a.Size),
	}
	before := text.TermCounts(a.Title + "\n" + a.Body)
	after := text.TermCounts(b.Title + "\n" + b.Body)
	for term, n := range after {
		if n > before[term] {
			d.Added = append(d.Added, term)
		}
	}
	for term, n := range before {
		if n > after[term] {
			d.Removed = append(d.Removed, term)
		}
	}
	sort.Strings(d.Added)
	sort.Strings(d.Removed)
	return d
}

// DiffVersions diffs two stored versions of url; ok is false when either
// version is not stored.
func (s *Store) DiffVersions(url string, fromVersion, toVersion int) (Delta, bool) {
	s.mu.RLock()
	h := s.histories[url]
	var a, b *Snapshot
	for i := range h {
		switch h[i].Version {
		case fromVersion:
			a = &h[i]
		case toVersion:
			b = &h[i]
		}
	}
	s.mu.RUnlock()
	if a == nil || b == nil {
		return Delta{}, false
	}
	ma, errA := s.Materialize(*a)
	mb, errB := s.Materialize(*b)
	if errA != nil || errB != nil {
		return Delta{}, false
	}
	return Diff(ma, mb), true
}
