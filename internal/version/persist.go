package version

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"cbfww/internal/core"
)

// The version store is the warehouse's durable content archive ("previous
// contents of web pages can be stored"); SaveTo/LoadFrom give it a simple
// persistent form so a warehouse can survive process restarts with its
// history intact. The format is a gob stream: a header followed by the
// histories map.

// persistHeader guards format compatibility.
type persistHeader struct {
	Magic    string
	Version  int
	MaxDepth int
}

const (
	persistMagic   = "cbfww-versions"
	persistVersion = 1
)

// SaveTo serializes the store.
func (s *Store) SaveTo(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	enc := gob.NewEncoder(w)
	if err := enc.Encode(persistHeader{
		Magic: persistMagic, Version: persistVersion, MaxDepth: s.maxDepth,
	}); err != nil {
		return fmt.Errorf("version: save header: %w", err)
	}
	if err := enc.Encode(s.histories); err != nil {
		return fmt.Errorf("version: save histories: %w", err)
	}
	return nil
}

// LoadFrom replaces the store's contents with a previously saved stream.
func (s *Store) LoadFrom(r io.Reader) error {
	dec := gob.NewDecoder(r)
	var h persistHeader
	if err := dec.Decode(&h); err != nil {
		return fmt.Errorf("version: load header: %w", err)
	}
	if h.Magic != persistMagic {
		return fmt.Errorf("version: %w: not a version store (magic %q)", core.ErrInvalid, h.Magic)
	}
	if h.Version != persistVersion {
		return fmt.Errorf("version: %w: format version %d unsupported", core.ErrInvalid, h.Version)
	}
	var histories map[string][]Snapshot
	if err := dec.Decode(&histories); err != nil {
		return fmt.Errorf("version: load histories: %w", err)
	}
	var bytes core.Bytes
	for _, snaps := range histories {
		for _, sn := range snaps {
			bytes += sn.Size
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.maxDepth = h.MaxDepth
	s.histories = histories
	s.bytes = bytes
	return nil
}

// SaveFile writes the store to path atomically (temp file + rename).
func (s *Store) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("version: %w", err)
	}
	if err := s.SaveTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("version: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("version: %w", err)
	}
	return nil
}

// LoadFile reads the store from path.
func (s *Store) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("version: %w", err)
	}
	defer f.Close()
	return s.LoadFrom(f)
}
