// Package version implements the Version Manager of §3(6): "If there is
// extra capacity, previous contents of web pages can be stored. A user can
// know the data in the past."
//
// The store keeps full snapshots per URL ordered by time, supports
// retrieval as-of a timestamp, and bounds per-object history depth (the
// "extra capacity" dial).
package version

import (
	"fmt"
	"sort"
	"sync"

	"cbfww/internal/blob"
	"cbfww/internal/core"
)

// Snapshot is one stored content version.
type Snapshot struct {
	// Version is the origin's version counter.
	Version int
	// Time is when the warehouse captured this content.
	Time core.Time
	// Title and Body are the captured content. When the store uses a blob
	// backend, Body is empty in stored snapshots and BodyRef addresses the
	// content; Materialize resolves it.
	Title, Body string
	// BodyRef is the content address of the body in the blob store
	// (empty when the body is inline).
	BodyRef blob.Ref
	// Size is the content's storage footprint.
	Size core.Bytes
}

// Store keeps version histories per URL. Safe for concurrent use.
type Store struct {
	mu sync.RWMutex
	// maxDepth bounds snapshots kept per URL (0 = unlimited — the true
	// capacity-bound-free setting).
	maxDepth  int
	histories map[string][]Snapshot // ascending by (Time, Version)
	bytes     core.Bytes
	// blobs, when set, stores bodies content-addressed on disk: identical
	// bodies across versions and URLs occupy space once, and pruned
	// versions release their references for garbage collection.
	blobs *blob.Store
}

// NewStore returns a store keeping up to maxDepth snapshots per URL
// (0 = unlimited).
func NewStore(maxDepth int) *Store {
	if maxDepth < 0 {
		maxDepth = 0
	}
	return &Store{maxDepth: maxDepth, histories: make(map[string][]Snapshot)}
}

// UseBlobs switches the store to blob-backed bodies. Must be called
// before the first Capture.
func (s *Store) UseBlobs(bs *blob.Store) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blobs = bs
}

// Capture appends a snapshot. Out-of-order captures are sorted in;
// capturing the same version again replaces the stored copy (idempotent
// refresh). Oldest snapshots are dropped beyond maxDepth (releasing their
// blob references when blob-backed).
func (s *Store) Capture(url string, snap Snapshot) error {
	if url == "" {
		return fmt.Errorf("version: %w: empty URL", core.ErrInvalid)
	}
	if snap.Version < 1 {
		return fmt.Errorf("version: %w: version %d", core.ErrInvalid, snap.Version)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.blobs != nil && snap.Body != "" {
		ref, err := s.blobs.Put([]byte(snap.Body))
		if err != nil {
			return fmt.Errorf("version: archive body: %w", err)
		}
		snap.BodyRef = ref
		snap.Body = ""
	}
	h := s.histories[url]
	// Replace same-version capture.
	for i := range h {
		if h[i].Version == snap.Version {
			s.bytes += snap.Size - h[i].Size
			s.releaseLocked(h[i])
			h[i] = snap
			s.histories[url] = h
			return nil
		}
	}
	h = append(h, snap)
	sort.Slice(h, func(i, j int) bool {
		if h[i].Time != h[j].Time {
			return h[i].Time < h[j].Time
		}
		return h[i].Version < h[j].Version
	})
	s.bytes += snap.Size
	if s.maxDepth > 0 && len(h) > s.maxDepth {
		drop := len(h) - s.maxDepth
		for _, old := range h[:drop] {
			s.bytes -= old.Size
			s.releaseLocked(old)
		}
		h = append([]Snapshot(nil), h[drop:]...)
	}
	s.histories[url] = h
	return nil
}

// releaseLocked drops a pruned snapshot's blob reference, if any.
func (s *Store) releaseLocked(old Snapshot) {
	if s.blobs != nil && old.BodyRef != "" {
		// A release failure only delays garbage collection; the store
		// stays correct, so the error is deliberately ignored.
		_ = s.blobs.Release(old.BodyRef)
	}
}

// Materialize resolves a snapshot's body from the blob store when it is
// blob-backed; inline snapshots pass through unchanged.
func (s *Store) Materialize(snap Snapshot) (Snapshot, error) {
	if snap.BodyRef == "" || snap.Body != "" {
		return snap, nil
	}
	s.mu.RLock()
	bs := s.blobs
	s.mu.RUnlock()
	if bs == nil {
		return snap, fmt.Errorf("version: %w: snapshot is blob-backed but store has no blobs", core.ErrInvalid)
	}
	body, err := bs.Get(snap.BodyRef)
	if err != nil {
		return snap, fmt.Errorf("version: materialize: %w", err)
	}
	snap.Body = string(body)
	return snap, nil
}

// Latest returns the newest snapshot for url.
func (s *Store) Latest(url string) (Snapshot, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h := s.histories[url]
	if len(h) == 0 {
		return Snapshot{}, false
	}
	return h[len(h)-1], true
}

// AsOf returns the snapshot that was current at time t — the newest
// capture with Time <= t.
func (s *Store) AsOf(url string, t core.Time) (Snapshot, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h := s.histories[url]
	i := sort.Search(len(h), func(i int) bool { return h[i].Time > t })
	if i == 0 {
		return Snapshot{}, false
	}
	return h[i-1], true
}

// History returns all snapshots of url in ascending time order.
func (s *Store) History(url string) []Snapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]Snapshot(nil), s.histories[url]...)
}

// Depth returns the number of stored snapshots for url.
func (s *Store) Depth(url string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.histories[url])
}

// Bytes returns total stored content size across all histories.
func (s *Store) Bytes() core.Bytes {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bytes
}

// URLs returns all URLs with history, sorted.
func (s *Store) URLs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.histories))
	for u := range s.histories {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}
