package version

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"cbfww/internal/core"
)

func snap(v int, t core.Time, body string) Snapshot {
	return Snapshot{Version: v, Time: t, Title: "T", Body: body, Size: core.Bytes(len(body))}
}

func TestCaptureAndLatest(t *testing.T) {
	s := NewStore(0)
	if _, ok := s.Latest("u"); ok {
		t.Error("Latest on empty store")
	}
	s.Capture("u", snap(1, 10, "one"))
	s.Capture("u", snap(2, 20, "two!"))
	got, ok := s.Latest("u")
	if !ok || got.Version != 2 || got.Body != "two!" {
		t.Errorf("Latest = %+v, %v", got, ok)
	}
	if s.Depth("u") != 2 {
		t.Errorf("Depth = %d", s.Depth("u"))
	}
	if s.Bytes() != 7 {
		t.Errorf("Bytes = %v", s.Bytes())
	}
}

func TestCaptureValidation(t *testing.T) {
	s := NewStore(0)
	if err := s.Capture("", snap(1, 0, "x")); !errors.Is(err, core.ErrInvalid) {
		t.Errorf("empty URL err = %v", err)
	}
	if err := s.Capture("u", snap(0, 0, "x")); !errors.Is(err, core.ErrInvalid) {
		t.Errorf("zero version err = %v", err)
	}
}

func TestAsOf(t *testing.T) {
	s := NewStore(0)
	s.Capture("u", snap(1, 10, "a"))
	s.Capture("u", snap(2, 20, "b"))
	s.Capture("u", snap(3, 30, "c"))
	cases := []struct {
		t    core.Time
		want int
		ok   bool
	}{
		{5, 0, false},
		{10, 1, true},
		{15, 1, true},
		{20, 2, true},
		{29, 2, true},
		{1000, 3, true},
	}
	for _, c := range cases {
		got, ok := s.AsOf("u", c.t)
		if ok != c.ok || (ok && got.Version != c.want) {
			t.Errorf("AsOf(%v) = v%d, %v; want v%d, %v", c.t, got.Version, ok, c.want, c.ok)
		}
	}
	if _, ok := s.AsOf("missing", 100); ok {
		t.Error("AsOf(missing URL)")
	}
}

func TestOutOfOrderCapture(t *testing.T) {
	s := NewStore(0)
	s.Capture("u", snap(2, 20, "b"))
	s.Capture("u", snap(1, 10, "a"))
	h := s.History("u")
	if len(h) != 2 || h[0].Version != 1 || h[1].Version != 2 {
		t.Errorf("History = %+v", h)
	}
}

func TestSameVersionRecaptureReplaces(t *testing.T) {
	s := NewStore(0)
	s.Capture("u", snap(1, 10, "old"))
	s.Capture("u", snap(1, 10, "newer!!"))
	if s.Depth("u") != 1 {
		t.Errorf("Depth = %d", s.Depth("u"))
	}
	got, _ := s.Latest("u")
	if got.Body != "newer!!" {
		t.Errorf("Body = %q", got.Body)
	}
	if s.Bytes() != 7 {
		t.Errorf("Bytes = %v after replace", s.Bytes())
	}
}

func TestMaxDepthEviction(t *testing.T) {
	s := NewStore(2)
	s.Capture("u", snap(1, 10, "a"))
	s.Capture("u", snap(2, 20, "bb"))
	s.Capture("u", snap(3, 30, "ccc"))
	if s.Depth("u") != 2 {
		t.Fatalf("Depth = %d", s.Depth("u"))
	}
	if _, ok := s.AsOf("u", 15); ok {
		t.Error("evicted snapshot still visible")
	}
	if s.Bytes() != 5 {
		t.Errorf("Bytes = %v, want 5 (bb+ccc)", s.Bytes())
	}
	// Negative depth behaves as unlimited.
	s2 := NewStore(-5)
	for i := 1; i <= 10; i++ {
		s2.Capture("u", snap(i, core.Time(i), "x"))
	}
	if s2.Depth("u") != 10 {
		t.Errorf("unlimited store depth = %d", s2.Depth("u"))
	}
}

func TestURLs(t *testing.T) {
	s := NewStore(0)
	s.Capture("b", snap(1, 1, "x"))
	s.Capture("a", snap(1, 1, "y"))
	got := s.URLs()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("URLs = %v", got)
	}
}

// Property: AsOf never returns a snapshot newer than the query time, and
// histories stay time-sorted.
func TestAsOfProperty(t *testing.T) {
	f := func(times []uint16, q uint16) bool {
		s := NewStore(0)
		for i, tt := range times {
			s.Capture("u", snap(i+1, core.Time(tt), "x"))
		}
		got, ok := s.AsOf("u", core.Time(q))
		if ok && got.Time > core.Time(q) {
			return false
		}
		h := s.History("u")
		for i := 1; i < len(h); i++ {
			if h[i].Time < h[i-1].Time {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStoreConcurrent(t *testing.T) {
	s := NewStore(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			url := fmt.Sprintf("u%d", g%2)
			for i := 1; i <= 100; i++ {
				s.Capture(url, snap(i, core.Time(i), "body"))
				s.Latest(url)
				s.AsOf(url, core.Time(i/2))
			}
		}(g)
	}
	wg.Wait()
	if d := s.Depth("u0"); d != 8 {
		t.Errorf("Depth = %d, want maxDepth 8", d)
	}
}
