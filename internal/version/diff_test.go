package version

import (
	"reflect"
	"strings"
	"testing"
)

func TestDiffTerms(t *testing.T) {
	a := Snapshot{Version: 1, Title: "Kyoto guide", Body: "temple garden station", Size: 100}
	b := Snapshot{Version: 2, Title: "Kyoto guide", Body: "temple garden festival parade", Size: 130}
	d := Diff(a, b)
	if d.FromVersion != 1 || d.ToVersion != 2 {
		t.Errorf("versions = %d->%d", d.FromVersion, d.ToVersion)
	}
	if !reflect.DeepEqual(d.Added, []string{"festiv", "parad"}) {
		t.Errorf("Added = %v", d.Added)
	}
	if !reflect.DeepEqual(d.Removed, []string{"station"}) {
		t.Errorf("Removed = %v", d.Removed)
	}
	if d.TitleChanged {
		t.Error("title flagged changed")
	}
	if d.SizeDelta != 30 {
		t.Errorf("SizeDelta = %d", d.SizeDelta)
	}
	if d.Empty() {
		t.Error("non-empty delta reported empty")
	}
	if s := d.String(); !strings.Contains(s, "v1->v2") || !strings.Contains(s, "+2 -1") {
		t.Errorf("String = %q", s)
	}
}

func TestDiffTitleAndCounts(t *testing.T) {
	a := Snapshot{Version: 1, Title: "Old", Body: "word word", Size: 10}
	b := Snapshot{Version: 2, Title: "New", Body: "word", Size: 10}
	d := Diff(a, b)
	if !d.TitleChanged {
		t.Error("title change missed")
	}
	// "word" count dropped 2->1: removed.
	found := false
	for _, r := range d.Removed {
		if r == "word" {
			found = true
		}
	}
	if !found {
		t.Errorf("count decrease not detected: %+v", d)
	}
}

func TestDiffIdentical(t *testing.T) {
	a := Snapshot{Version: 3, Title: "T", Body: "b", Size: 5}
	d := Diff(a, a)
	if !d.Empty() {
		t.Errorf("self-diff not empty: %+v", d)
	}
}

func TestDiffVersionsFromStore(t *testing.T) {
	s := NewStore(0)
	s.Capture("u", Snapshot{Version: 1, Time: 10, Title: "T", Body: "alpha beta", Size: 10})
	s.Capture("u", Snapshot{Version: 2, Time: 20, Title: "T", Body: "alpha gamma", Size: 11})
	d, ok := s.DiffVersions("u", 1, 2)
	if !ok {
		t.Fatal("diff not found")
	}
	if len(d.Added) != 1 || d.Added[0] != "gamma" {
		t.Errorf("Added = %v", d.Added)
	}
	if _, ok := s.DiffVersions("u", 1, 99); ok {
		t.Error("missing version diffed")
	}
	if _, ok := s.DiffVersions("missing", 1, 2); ok {
		t.Error("missing URL diffed")
	}
}
