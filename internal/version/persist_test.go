package version

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func populated(t *testing.T) *Store {
	t.Helper()
	s := NewStore(4)
	s.Capture("http://a/x", snap(1, 10, "first body"))
	s.Capture("http://a/x", snap(2, 20, "second body longer"))
	s.Capture("http://b/y", snap(1, 15, "other"))
	return s
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := populated(t)
	var buf bytes.Buffer
	if err := s.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore(0)
	if err := s2.LoadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s2.URLs(), s.URLs()) {
		t.Errorf("URLs = %v, want %v", s2.URLs(), s.URLs())
	}
	for _, url := range s.URLs() {
		if !reflect.DeepEqual(s2.History(url), s.History(url)) {
			t.Errorf("history mismatch for %s", url)
		}
	}
	if s2.Bytes() != s.Bytes() {
		t.Errorf("Bytes = %v, want %v", s2.Bytes(), s.Bytes())
	}
	// MaxDepth restored: a 5th capture on x must evict.
	s2.Capture("http://a/x", snap(3, 30, "3"))
	s2.Capture("http://a/x", snap(4, 40, "4"))
	s2.Capture("http://a/x", snap(5, 50, "5"))
	if d := s2.Depth("http://a/x"); d != 4 {
		t.Errorf("depth after reload = %d, want maxDepth 4", d)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	s := NewStore(0)
	if err := s.LoadFrom(strings.NewReader("not a gob stream")); err == nil {
		t.Error("garbage accepted")
	}
	// Wrong magic.
	other := NewStore(0)
	var buf bytes.Buffer
	if err := other.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt the magic bytes in place.
	b := buf.Bytes()
	if i := bytes.Index(b, []byte("cbfww-versions")); i >= 0 {
		copy(b[i:], []byte("xxxxx-versions"))
	}
	if err := s.LoadFrom(bytes.NewReader(b)); err == nil {
		t.Error("wrong magic accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	s := populated(t)
	path := filepath.Join(t.TempDir(), "versions.gob")
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore(0)
	if err := s2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if s2.Depth("http://a/x") != 2 {
		t.Errorf("depth = %d", s2.Depth("http://a/x"))
	}
	if err := s2.LoadFile(filepath.Join(t.TempDir(), "missing.gob")); err == nil {
		t.Error("missing file loaded")
	}
}
