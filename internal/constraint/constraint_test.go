package constraint

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"cbfww/internal/core"
)

func TestAdmissionRules(t *testing.T) {
	a := NewAdmission(
		MaxSize(100*core.KB),
		MaxUpdateRate(0.01),
		DenyCopyrighted(),
		DenyURLPrefix("http://private.example/"),
	)
	ok := Candidate{URL: "http://a.example/x", Size: 10 * core.KB, UpdateRate: 0.001}
	if err := a.Check(ok); err != nil {
		t.Errorf("valid candidate rejected: %v", err)
	}
	cases := []struct {
		name string
		c    Candidate
		want string
	}{
		{"oversize", Candidate{URL: "u", Size: 200 * core.KB}, "max-size"},
		{"churny", Candidate{URL: "u", Size: 1, UpdateRate: 1}, "max-update-rate"},
		{"copyright", Candidate{URL: "u", Size: 1, Copyrighted: true}, "deny-copyrighted"},
		{"prefix", Candidate{URL: "http://private.example/secret", Size: 1}, "deny-prefix"},
	}
	for _, c := range cases {
		err := a.Check(c.c)
		if !errors.Is(err, core.ErrConstraint) {
			t.Errorf("%s: err = %v, want ErrConstraint", c.name, err)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err %q missing rule name %q", c.name, err, c.want)
		}
	}
}

func TestAdmissionEmptyAdmitsAll(t *testing.T) {
	a := NewAdmission()
	if err := a.Check(Candidate{Size: 1 << 40, Copyrighted: true}); err != nil {
		t.Errorf("empty rule set rejected: %v", err)
	}
}

func TestAdmissionRuleNames(t *testing.T) {
	a := NewAdmission(MaxSize(core.MB), DenyCopyrighted())
	names := a.Rules()
	if len(names) != 2 || !strings.HasPrefix(names[0], "max-size") || names[1] != "deny-copyrighted" {
		t.Errorf("Rules = %v", names)
	}
}

func TestStrongConsistency(t *testing.T) {
	c := Consistency{Mode: Strong}
	if got := c.PollInterval(1000, 5); got != 0 {
		t.Errorf("strong PollInterval = %v", got)
	}
	if !c.NeedsCheck(0, 0, 1000, 5) {
		t.Error("strong mode skipped a check")
	}
	if Strong.String() != "strong" || Weak.String() != "weak" {
		t.Error("mode names")
	}
}

func TestWeakPollInterval(t *testing.T) {
	c := DefaultConsistency()
	// Nyquist: half the update gap.
	if got := c.PollInterval(2000, 0); got != 1000 {
		t.Errorf("PollInterval(2000, 0) = %v, want 1000", got)
	}
	// Hot objects poll more often.
	cold := c.PollInterval(2000, 0)
	hot := c.PollInterval(2000, 10)
	if hot >= cold {
		t.Errorf("hot %v not shorter than cold %v", hot, cold)
	}
	// Unknown update gap defaults to MaxPoll (scaled by heat).
	if got := c.PollInterval(0, 0); got != c.MaxPoll {
		t.Errorf("unknown gap = %v, want MaxPoll %v", got, c.MaxPoll)
	}
	// Clamping.
	if got := c.PollInterval(10, 100); got != c.MinPoll {
		t.Errorf("fast churn = %v, want MinPoll %v", got, c.MinPoll)
	}
}

func TestWeakNeedsCheck(t *testing.T) {
	c := Consistency{Mode: Weak, MinPoll: 10, MaxPoll: 100}
	// Cycle for gap 40 = 20.
	if c.NeedsCheck(100, 110, 40, 0) {
		t.Error("checked before cycle elapsed")
	}
	if !c.NeedsCheck(100, 120, 40, 0) {
		t.Error("missed check after cycle elapsed")
	}
}

// Property: the polling cycle is always within [MinPoll, MaxPoll] for any
// inputs, and monotonically non-increasing in frequency.
func TestPollIntervalBoundsProperty(t *testing.T) {
	c := DefaultConsistency()
	f := func(gap uint32, freq uint8) bool {
		g := core.Duration(gap % 1e6)
		lo := c.PollInterval(g, float64(freq))
		hi := c.PollInterval(g, 0)
		return lo >= c.MinPoll && lo <= c.MaxPoll && lo <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
