// Package constraint implements the Constraint Manager of §3(7). With the
// capacity constraint gone, two constraint families remain:
//
//   - Admission constraints — "criteria for what kind of objects are
//     allowed to enter each hierarchy level": object-size limits, update-
//     frequency limits, copyright restrictions.
//   - Consistency constraints — freshness criteria: strong consistency
//     synchronizes on every modification; weak consistency tolerates past
//     data and derives a per-object polling cycle from usage frequency and
//     the average update period.
package constraint

import (
	"fmt"
	"strings"

	"cbfww/internal/core"
)

// Candidate describes an object being considered for admission.
type Candidate struct {
	URL  string
	Size core.Bytes
	// UpdateRate is the object's observed updates per tick (0 when
	// unknown).
	UpdateRate float64
	// Copyrighted marks resources whose licence forbids warehousing.
	Copyrighted bool
}

// AdmissionRule is one admission constraint.
type AdmissionRule interface {
	// Name identifies the rule in rejection errors.
	Name() string
	// Check returns nil to admit or an error (wrapping core.ErrConstraint)
	// to reject.
	Check(c Candidate) error
}

// MaxSize rejects objects larger than the limit ("the limit of object
// size").
func MaxSize(limit core.Bytes) AdmissionRule {
	return ruleFunc{
		name: fmt.Sprintf("max-size(%v)", limit),
		fn: func(c Candidate) error {
			if c.Size > limit {
				return fmt.Errorf("object of %v exceeds limit %v: %w", c.Size, limit, core.ErrConstraint)
			}
			return nil
		},
	}
}

// MaxUpdateRate rejects objects that change faster than the limit ("the
// limit of update frequency") — caching them would serve mostly stale data
// or hammer the origin with revalidations.
func MaxUpdateRate(limit float64) AdmissionRule {
	return ruleFunc{
		name: fmt.Sprintf("max-update-rate(%g)", limit),
		fn: func(c Candidate) error {
			if c.UpdateRate > limit {
				return fmt.Errorf("update rate %g exceeds limit %g: %w", c.UpdateRate, limit, core.ErrConstraint)
			}
			return nil
		},
	}
}

// DenyCopyrighted rejects copyrighted resources ("limit of copyrighted
// resources").
func DenyCopyrighted() AdmissionRule {
	return ruleFunc{
		name: "deny-copyrighted",
		fn: func(c Candidate) error {
			if c.Copyrighted {
				return fmt.Errorf("copyrighted resource: %w", core.ErrConstraint)
			}
			return nil
		},
	}
}

// DenyURLPrefix rejects URLs under the given prefix (operator policy,
// e.g. internal hosts).
func DenyURLPrefix(prefix string) AdmissionRule {
	return ruleFunc{
		name: fmt.Sprintf("deny-prefix(%s)", prefix),
		fn: func(c Candidate) error {
			if strings.HasPrefix(c.URL, prefix) {
				return fmt.Errorf("URL under denied prefix %q: %w", prefix, core.ErrConstraint)
			}
			return nil
		},
	}
}

type ruleFunc struct {
	name string
	fn   func(Candidate) error
}

func (r ruleFunc) Name() string            { return r.name }
func (r ruleFunc) Check(c Candidate) error { return r.fn(c) }

// Admission is an ordered rule set.
type Admission struct {
	rules []AdmissionRule
}

// NewAdmission returns a rule set; zero rules admit everything.
func NewAdmission(rules ...AdmissionRule) *Admission {
	return &Admission{rules: rules}
}

// Check runs every rule; the first rejection wins, annotated with the
// rule's name.
func (a *Admission) Check(c Candidate) error {
	for _, r := range a.rules {
		if err := r.Check(c); err != nil {
			return fmt.Errorf("constraint %s: %w", r.Name(), err)
		}
	}
	return nil
}

// Rules returns the rule names, for Table-1-style capability output.
func (a *Admission) Rules() []string {
	out := make([]string, len(a.rules))
	for i, r := range a.rules {
		out[i] = r.Name()
	}
	return out
}

// Mode selects the consistency discipline.
type Mode int

const (
	// Strong checks the origin on every access: no stale data, maximal
	// origin traffic.
	Strong Mode = iota
	// Weak revalidates on a per-object polling cycle derived from usage
	// and update behaviour: bounded staleness, bounded traffic.
	Weak
)

// String names the mode.
func (m Mode) String() string {
	if m == Strong {
		return "strong"
	}
	return "weak"
}

// Consistency derives revalidation decisions.
type Consistency struct {
	Mode Mode
	// MinPoll and MaxPoll clamp the weak-mode polling cycle.
	MinPoll, MaxPoll core.Duration
}

// DefaultConsistency returns weak consistency with cycle bounds of one
// minute to one day (in one-second ticks).
func DefaultConsistency() Consistency {
	return Consistency{Mode: Weak, MinPoll: 60, MaxPoll: 24 * 3600}
}

// PollInterval computes the revalidation cycle for an object with the
// given mean update gap (ticks between content changes; 0 = never seen
// updating) and aged reference frequency. Strong mode always returns 0
// (check every access). Weak mode polls at half the update gap — Nyquist
// for catching changes — shortened for hot objects (missing an update on a
// hot object hurts more) and clamped to the configured bounds.
func (c Consistency) PollInterval(updateGap core.Duration, agedFreq float64) core.Duration {
	if c.Mode == Strong {
		return 0
	}
	cycle := c.MaxPoll
	if updateGap > 0 {
		cycle = updateGap / 2
	}
	// Hot objects poll up to 4x more often.
	if agedFreq > 0 {
		div := core.Duration(1 + agedFreq)
		if div > 4 {
			div = 4
		}
		cycle /= div
	}
	if cycle < c.MinPoll {
		cycle = c.MinPoll
	}
	if cycle > c.MaxPoll {
		cycle = c.MaxPoll
	}
	return cycle
}

// NeedsCheck reports whether an object whose copy was validated at
// lastCheck must be revalidated at now.
func (c Consistency) NeedsCheck(lastCheck, now core.Time, updateGap core.Duration, agedFreq float64) bool {
	if c.Mode == Strong {
		return true
	}
	return now.Sub(lastCheck) >= c.PollInterval(updateGap, agedFreq)
}
