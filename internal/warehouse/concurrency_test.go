package warehouse

// Race-detector workout for the RWMutex split: read-only surfaces (stats,
// search, queries, listings) running concurrently with fetch-through
// admissions, revalidations and maintenance sweeps.

import (
	"context"
	"sync"
	"testing"
	"time"

	"cbfww/internal/core"
	"cbfww/internal/workload"
)

func newConcurrencyWarehouse(t *testing.T) (*Warehouse, *workload.GeneratedWeb) {
	t.Helper()
	clock := core.NewSimClock(0)
	wcfg := workload.DefaultWebConfig()
	wcfg.Sites, wcfg.PagesPerSite, wcfg.Seed = 4, 10, 11
	g, err := workload.GenerateWeb(clock, wcfg)
	if err != nil {
		t.Fatalf("GenerateWeb: %v", err)
	}
	w, err := New(DefaultConfig(), clock, g.Web)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return w, g
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	w, g := newConcurrencyWarehouse(t)
	urls := g.PageURLs

	var wg sync.WaitGroup
	// Writers: fetch-through traffic over overlapping URL ranges.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 30; j++ {
				url := urls[(i*7+j)%len(urls)]
				if _, err := w.Get("user", url); err != nil {
					t.Errorf("Get %s: %v", url, err)
					return
				}
			}
		}(i)
	}
	// Readers: every non-mutating surface, concurrently.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 30; j++ {
				_ = w.Stats()
				_ = w.ResidentPages()
				_ = w.Pages()
				_ = w.Search("page", 5)
				_ = w.Resident(urls[j%len(urls)])
				_ = w.Recommend("user", 3)
				_ = w.RecommendPages("user", 3)
				_ = w.AccessLog()
				if _, err := w.Query(`SELECT MFU 3 p.url FROM Physical_Page p`); err != nil {
					t.Errorf("Query: %v", err)
					return
				}
			}
		}()
	}
	// One maintenance loop racing both.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 5; j++ {
			if _, err := w.Maintain(); err != nil {
				t.Errorf("Maintain: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	if got := w.Stats().Requests; got == 0 {
		t.Fatal("no requests recorded")
	}
}

func TestGetCtxCancelledBeforeFetch(t *testing.T) {
	w, g := newConcurrencyWarehouse(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := w.GetCtx(ctx, "user", g.PageURLs[0]); err == nil {
		t.Fatal("GetCtx with cancelled context admitted a cold URL")
	}
	if w.Resident(g.PageURLs[0]) {
		t.Fatal("cancelled fetch still admitted the page")
	}

	// A resident page serves fine even under an expired deadline: the
	// warehouse's whole point is that cached content needs no origin.
	if _, err := w.Get("user", g.PageURLs[0]); err != nil {
		t.Fatalf("warm-up Get: %v", err)
	}
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	res, err := w.GetCtx(expired, "user", g.PageURLs[0])
	if err != nil {
		t.Fatalf("resident GetCtx under expired deadline: %v", err)
	}
	if !res.Hit {
		t.Fatal("resident page not served as hit")
	}
}
