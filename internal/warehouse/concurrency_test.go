package warehouse

// Race-detector workout for the RWMutex split: read-only surfaces (stats,
// search, queries, listings) running concurrently with fetch-through
// admissions, revalidations and maintenance sweeps.

import (
	"context"
	"io"
	"sync"
	"testing"
	"time"

	"cbfww/internal/core"
	"cbfww/internal/storage"
	"cbfww/internal/workload"
)

func newConcurrencyWarehouse(t *testing.T) (*Warehouse, *workload.GeneratedWeb) {
	t.Helper()
	clock := core.NewSimClock(0)
	wcfg := workload.DefaultWebConfig()
	wcfg.Sites, wcfg.PagesPerSite, wcfg.Seed = 4, 10, 11
	g, err := workload.GenerateWeb(clock, wcfg)
	if err != nil {
		t.Fatalf("GenerateWeb: %v", err)
	}
	w, err := New(DefaultConfig(), clock, g.Web)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return w, g
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	w, g := newConcurrencyWarehouse(t)
	urls := g.PageURLs

	var wg sync.WaitGroup
	// Writers: fetch-through traffic over overlapping URL ranges.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 30; j++ {
				url := urls[(i*7+j)%len(urls)]
				if _, err := w.Get("user", url); err != nil {
					t.Errorf("Get %s: %v", url, err)
					return
				}
			}
		}(i)
	}
	// Readers: every non-mutating surface, concurrently.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 30; j++ {
				_ = w.Stats()
				_ = w.ResidentPages()
				_ = w.Pages()
				_ = w.Search("page", 5)
				_ = w.Resident(urls[j%len(urls)])
				_ = w.Recommend("user", 3)
				_ = w.RecommendPages("user", 3)
				_ = w.AccessLog()
				if _, err := w.Query(`SELECT MFU 3 p.url FROM Physical_Page p`); err != nil {
					t.Errorf("Query: %v", err)
					return
				}
			}
		}()
	}
	// One maintenance loop racing both.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 5; j++ {
			if _, err := w.Maintain(); err != nil {
				t.Errorf("Maintain: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	if got := w.Stats().Requests; got == 0 {
		t.Fatal("no requests recorded")
	}
}

// TestResizeRacesGetBody oscillates the memory tier's capacity while
// readers stream bodies through GetBodyCtx: a page mid-migration must be
// served from whichever tier still holds it — full bytes, never a short
// read — and the storage invariants must hold when the dust settles.
func TestResizeRacesGetBody(t *testing.T) {
	w, g := newConcurrencyWarehouse(t)
	urls := g.PageURLs

	// Warm every page in and record the authoritative bodies.
	bodies := make(map[string]string, len(urls))
	for _, url := range urls {
		res, err := w.Get("user", url)
		if err != nil {
			t.Fatalf("warm-up Get %s: %v", url, err)
		}
		bodies[url] = res.Page.Body
	}
	mgr := w.StorageManager()
	memCap := storage.DefaultConfig().MemCapacity

	var wg sync.WaitGroup
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-done:
					return
				default:
				}
				url := urls[(i*5+j)%len(urls)]
				_, bs, err := w.GetBodyCtx(context.Background(), "user", url)
				if err != nil {
					t.Errorf("GetBodyCtx %s: %v", url, err)
					return
				}
				data, err := io.ReadAll(bs)
				bs.Close()
				if err != nil {
					t.Errorf("read %s: %v", url, err)
					return
				}
				if string(data) != bodies[url] {
					t.Errorf("%s: streamed %d bytes, want %d", url, len(data), len(bodies[url]))
					return
				}
			}
		}(i)
	}
	// Oscillate: a tiny memory tier demotes nearly every page; restoring
	// the default re-promotes them — migrations in both directions.
	for i := 0; i < 40; i++ {
		target := core.Bytes(8 * core.KB)
		if i%2 == 0 {
			target = memCap
		}
		if err := mgr.ResizeTiers(map[string]core.Bytes{"memory": target}); err != nil {
			t.Fatalf("ResizeTiers: %v", err)
		}
	}
	close(done)
	wg.Wait()
	if err := mgr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGetCtxCancelledBeforeFetch(t *testing.T) {
	w, g := newConcurrencyWarehouse(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := w.GetCtx(ctx, "user", g.PageURLs[0]); err == nil {
		t.Fatal("GetCtx with cancelled context admitted a cold URL")
	}
	if w.Resident(g.PageURLs[0]) {
		t.Fatal("cancelled fetch still admitted the page")
	}

	// A resident page serves fine even under an expired deadline: the
	// warehouse's whole point is that cached content needs no origin.
	if _, err := w.Get("user", g.PageURLs[0]); err != nil {
		t.Fatalf("warm-up Get: %v", err)
	}
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	res, err := w.GetCtx(expired, "user", g.PageURLs[0])
	if err != nil {
		t.Fatalf("resident GetCtx under expired deadline: %v", err)
	}
	if !res.Hit {
		t.Fatal("resident page not served as hit")
	}
}
