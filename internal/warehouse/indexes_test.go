package warehouse

import (
	"sort"
	"strings"
	"testing"

	"cbfww/internal/core"
	"cbfww/internal/storage"
)

func TestHotIndexTracksMemoryResidency(t *testing.T) {
	w, g, clock := fixture(t, func(c *Config) {
		c.Storage.MemCapacity = 64 * core.KB // a handful of pages
	})
	// Admit several pages; hammer two so they earn memory.
	for _, url := range g.PageURLs[:8] {
		if _, err := w.Get("u", url); err != nil {
			t.Fatal(err)
		}
		clock.Advance(2)
	}
	for i := 0; i < 20; i++ {
		w.Get("u", g.PageURLs[0])
		w.Get("u", g.PageURLs[1])
		clock.Advance(2)
	}
	if _, err := w.Maintain(); err != nil {
		t.Fatal(err)
	}
	hot := w.HotIndexSize()
	if hot == 0 {
		t.Fatal("hot index empty after maintenance")
	}
	if hot >= 8 {
		t.Errorf("hot index holds %d of 8 pages — not selective", hot)
	}

	// The hot pages must be findable through the memory tier.
	title := func(url string) string {
		s, _ := w.Versions().Latest(url)
		return strings.Fields(s.Title)[0]
	}
	res := w.SearchTiered(title(g.PageURLs[0]), 1)
	if res.Tier != storage.Memory {
		t.Errorf("hot-page search served from %v", res.Tier)
	}
	if len(res.Scores) == 0 {
		t.Error("hot-page search found nothing")
	}
	if res.Latency != w.cfg.Storage.MemLatency {
		t.Errorf("latency = %v", res.Latency)
	}
	st := w.Stats()
	if st.IndexMemoryProbes == 0 {
		t.Error("memory probe not counted")
	}
}

func TestSearchTieredFallsBackToFullIndex(t *testing.T) {
	w, g, clock := fixture(t, func(c *Config) {
		c.Storage.MemCapacity = 32 * core.KB
	})
	for _, url := range g.PageURLs[:10] {
		if _, err := w.Get("u", url); err != nil {
			t.Fatal(err)
		}
		clock.Advance(2)
	}
	if _, err := w.Maintain(); err != nil {
		t.Fatal(err)
	}
	// Ask for more results than the tiny hot index can hold: the probe
	// must fall back to the full (disk) index.
	res := w.SearchTiered("the", 10) // stop word: finds nothing anywhere
	if res.Tier != storage.Disk {
		t.Errorf("fallback search served from %v", res.Tier)
	}
	if res.Latency != w.cfg.Storage.DiskLatency {
		t.Errorf("latency = %v", res.Latency)
	}
	if w.Stats().IndexDiskProbes == 0 {
		t.Error("disk probe not counted")
	}
}

func TestHotIndexEvictsWithDemotion(t *testing.T) {
	w, g, clock := fixture(t, func(c *Config) {
		c.Storage.MemCapacity = 64 * core.KB
	})
	hotURL := g.PageURLs[0]
	for i := 0; i < 20; i++ {
		w.Get("u", hotURL)
		clock.Advance(2)
	}
	w.Maintain()
	before := w.HotIndexSize()
	if before == 0 {
		t.Fatal("precondition: hot index empty")
	}
	// Crash the memory tier: after recovery-less sync the hot index must
	// be empty, because nothing is memory-resident.
	if err := w.StorageManager().DropTier(storage.Memory); err != nil {
		t.Fatal(err)
	}
	if got := w.HotIndexSize(); got != 0 {
		t.Errorf("hot index still holds %d pages after memory loss", got)
	}
	// Recovery restores residency and, with it, the detailed index.
	w.StorageManager().Recover()
	if got := w.HotIndexSize(); got == 0 {
		t.Error("hot index not rebuilt after recovery")
	}
}

// After maintenance, pages of the same semantic region occupy adjacent
// tertiary positions (§4.4 locality of reference).
func TestMaintainClustersTertiaryByRegion(t *testing.T) {
	w, g, clock := fixture(t, nil)
	for _, url := range g.PageURLs {
		if _, err := w.Get("u", url); err != nil {
			t.Fatal(err)
		}
		clock.Advance(2)
	}
	if _, err := w.Maintain(); err != nil {
		t.Fatal(err)
	}
	// Collect (region, position) pairs of the container objects.
	type rp struct{ region, pos int }
	var pairs []rp
	for _, sh := range w.shards {
		sh.mu.Lock()
		for _, st := range sh.pages {
			if pos, ok := w.store.TertiaryPosition(st.container); ok {
				pairs = append(pairs, rp{st.region, pos})
			}
		}
		sh.mu.Unlock()
	}
	if len(pairs) < 4 {
		t.Skip("too few archived pages")
	}
	// Sort by position: region labels must form contiguous runs, i.e. the
	// number of region switches equals distinct regions - 1.
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].pos < pairs[j].pos })
	distinct := map[int]bool{}
	switches := 0
	for i, p := range pairs {
		distinct[p.region] = true
		if i > 0 && pairs[i-1].region != p.region {
			switches++
		}
	}
	if switches != len(distinct)-1 {
		t.Errorf("tape layout not region-contiguous: %d switches for %d regions", switches, len(distinct))
	}
}
