package warehouse

import (
	"cbfww/internal/analyzer"
	"cbfww/internal/core"
	"cbfww/internal/object"
	"cbfww/internal/query"
	"cbfww/internal/recommend"
	"cbfww/internal/text"
	"cbfww/internal/usage"
)

// querySource adapts the warehouse to the query executor. It is a separate
// type so the warehouse's public surface stays small.
type querySource struct{ w *Warehouse }

// Rows implements query.Source.
func (s querySource) Rows(kind object.Kind) []*object.Object {
	var out []*object.Object
	s.w.objects.ForEach(kind, func(o *object.Object) { out = append(out, o) })
	return out
}

// UsageOf implements query.Source.
func (s querySource) UsageOf(id core.ObjectID) (usage.Snapshot, bool) {
	return s.w.tracker.Get(id)
}

// FrequencyOf implements query.Source.
func (s querySource) FrequencyOf(id core.ObjectID) float64 {
	return s.w.tracker.AgedFrequency(id)
}

// ChildrenOf implements query.Source.
func (s querySource) ChildrenOf(id core.ObjectID) []core.ObjectID {
	return s.w.objects.Children(id)
}

// Query parses and executes a popularity-aware query (§4.3). The query
// text is first run through the Topic Manager's expansion only for MENTION
// phrases at the caller's choice — Query executes exactly what was given;
// use ExpandQuery to pre-expand.
func (w *Warehouse) Query(q string) ([]query.Row, error) {
	// Read lock: queries never mutate, so any number may run concurrently;
	// the lock only excludes in-flight admissions and migrations.
	w.mu.RLock()
	defer w.mu.RUnlock()
	return query.RunString(q, querySource{w: w})
}

// ExpandQuery rewrites free-text search terms through the Topic Manager
// (§3(1): "A query given by a user is modified by the contents of Topic
// Manager").
func (w *Warehouse) ExpandQuery(text string) string {
	return w.topics.ExpandQuery(text, 2)
}

// Search runs ranked full-text retrieval over the warehouse's contents —
// the Search-Engine face of the system.
func (w *Warehouse) Search(queryText string, n int) []text.Score {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.index.Search(queryText, n)
}

// Recommend returns content suggestions for the user over everything the
// warehouse holds.
func (w *Warehouse) Recommend(user string, n int) []recommend.Suggestion {
	w.mu.RLock()
	candidates := make(map[core.ObjectID]text.Vector, len(w.pages))
	for _, st := range w.pages {
		candidates[st.physID] = st.vec
	}
	w.mu.RUnlock()
	return w.social.Recommend(user, candidates, n)
}

// RecommendedPage is a content suggestion resolved back to its URL — the
// form a network client can actually follow.
type RecommendedPage struct {
	URL   string
	Score float64
}

// RecommendPages returns content suggestions for the user with object IDs
// resolved to URLs (the gateway's /recommend payload).
func (w *Warehouse) RecommendPages(user string, n int) []RecommendedPage {
	sugg := w.Recommend(user, n)
	w.mu.RLock()
	defer w.mu.RUnlock()
	urlOf := make(map[core.ObjectID]string, len(w.pages))
	for url, st := range w.pages {
		urlOf[st.physID] = url
	}
	out := make([]RecommendedPage, 0, len(sugg))
	for _, s := range sugg {
		if url, ok := urlOf[s.ID]; ok {
			out = append(out, RecommendedPage{URL: url, Score: s.Score})
		}
	}
	return out
}

// NextHops returns social-navigation suggestions for a user standing on
// url.
func (w *Warehouse) NextHops(url string, n int) []recommend.PathSuggestion {
	return w.social.NextHops(url, n)
}

// Analyze runs the Data Analyzer over the warehouse's operational log.
func (w *Warehouse) Analyze() analyzer.Report {
	return analyzer.Analyze(w.AccessLog(), 3)
}

// Resident reports whether url is already admitted. The gateway uses it to
// route hot hits past its miss-coalescing machinery; a page admitted a
// moment later only costs one redundant (and internally deduplicated)
// admission attempt, so the check racing an admission is harmless.
func (w *Warehouse) Resident(url string) bool {
	w.mu.RLock()
	defer w.mu.RUnlock()
	_, ok := w.pages[url]
	return ok
}

// ResidentPages returns the number of admitted physical pages.
func (w *Warehouse) ResidentPages() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return len(w.pages)
}

// PageInfo describes one admitted page for tooling.
type PageInfo struct {
	URL      string
	Version  int
	Region   int
	Priority core.Priority
	Tier     string
}

// Pages lists admitted pages (unspecified order).
func (w *Warehouse) Pages() []PageInfo {
	w.mu.RLock()
	defer w.mu.RUnlock()
	out := make([]PageInfo, 0, len(w.pages))
	for url, st := range w.pages {
		info := PageInfo{URL: url, Version: st.version, Region: st.region}
		info.Priority, _ = w.store.Priority(st.container)
		if tier, ok := w.store.Contains(st.container); ok {
			info.Tier = tier.String()
		}
		out = append(out, info)
	}
	return out
}
