package warehouse

import (
	"cbfww/internal/analyzer"
	"cbfww/internal/core"
	"cbfww/internal/object"
	"cbfww/internal/query"
	"cbfww/internal/recommend"
	"cbfww/internal/text"
	"cbfww/internal/usage"
)

// querySource adapts the warehouse to the query executor. It is a separate
// type so the warehouse's public surface stays small.
type querySource struct{ w *Warehouse }

// Rows implements query.Source.
func (s querySource) Rows(kind object.Kind) []*object.Object {
	var out []*object.Object
	s.w.objects.ForEach(kind, func(o *object.Object) { out = append(out, o) })
	return out
}

// UsageOf implements query.Source.
func (s querySource) UsageOf(id core.ObjectID) (usage.Snapshot, bool) {
	return s.w.tracker.Get(id)
}

// FrequencyOf implements query.Source.
func (s querySource) FrequencyOf(id core.ObjectID) float64 {
	return s.w.tracker.AgedFrequency(id)
}

// ChildrenOf implements query.Source.
func (s querySource) ChildrenOf(id core.ObjectID) []core.ObjectID {
	return s.w.objects.Children(id)
}

// Query parses and executes a popularity-aware query (§4.3). The query
// text is first run through the Topic Manager's expansion only for MENTION
// phrases at the caller's choice — Query executes exactly what was given;
// use ExpandQuery to pre-expand.
func (w *Warehouse) Query(q string) ([]query.Row, error) {
	// No warehouse-level lock: the executor only reads the object
	// hierarchy and the usage tracker, both internally synchronized, so
	// any number of queries run concurrently with admissions on every
	// shard. A query racing an admission may or may not see the new page
	// — the same read-committed visibility the old read lock gave.
	return query.RunString(q, querySource{w: w})
}

// ExpandQuery rewrites free-text search terms through the Topic Manager
// (§3(1): "A query given by a user is modified by the contents of Topic
// Manager").
func (w *Warehouse) ExpandQuery(text string) string {
	return w.topics.ExpandQuery(text, 2)
}

// Search runs ranked full-text retrieval over the warehouse's contents —
// the Search-Engine face of the system.
func (w *Warehouse) Search(queryText string, n int) []text.Score {
	// The full inverted index is internally synchronized.
	return w.index.Search(queryText, n)
}

// Recommend returns content suggestions for the user over everything the
// warehouse holds. Candidates are collected shard by shard.
func (w *Warehouse) Recommend(user string, n int) []recommend.Suggestion {
	candidates := make(map[core.ObjectID]text.Vector, w.ResidentPages())
	for _, sh := range w.shards {
		sh.mu.RLock()
		for _, st := range sh.pages {
			candidates[st.physID] = st.vec
		}
		sh.mu.RUnlock()
	}
	return w.social.Recommend(user, candidates, n)
}

// RecommendedPage is a content suggestion resolved back to its URL — the
// form a network client can actually follow.
type RecommendedPage struct {
	URL   string
	Score float64
}

// RecommendPages returns content suggestions for the user with object IDs
// resolved to URLs (the gateway's /recommend payload).
func (w *Warehouse) RecommendPages(user string, n int) []RecommendedPage {
	sugg := w.Recommend(user, n)
	urlOf := make(map[core.ObjectID]string, w.ResidentPages())
	for _, sh := range w.shards {
		sh.mu.RLock()
		for url, st := range sh.pages {
			urlOf[st.physID] = url
		}
		sh.mu.RUnlock()
	}
	out := make([]RecommendedPage, 0, len(sugg))
	for _, s := range sugg {
		if url, ok := urlOf[s.ID]; ok {
			out = append(out, RecommendedPage{URL: url, Score: s.Score})
		}
	}
	return out
}

// NextHops returns social-navigation suggestions for a user standing on
// url.
func (w *Warehouse) NextHops(url string, n int) []recommend.PathSuggestion {
	return w.social.NextHops(url, n)
}

// Analyze runs the Data Analyzer over the warehouse's operational log.
func (w *Warehouse) Analyze() analyzer.Report {
	return analyzer.Analyze(w.AccessLog(), 3)
}

// Resident reports whether url is already admitted. The gateway uses it to
// route hot hits past its miss-coalescing machinery; a page admitted a
// moment later only costs one redundant (and internally deduplicated)
// admission attempt, so the check racing an admission is harmless.
func (w *Warehouse) Resident(url string) bool {
	sh := w.shardOf(url)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	_, ok := sh.pages[url]
	return ok
}

// ResidentPages returns the number of admitted physical pages, summed over
// shards.
func (w *Warehouse) ResidentPages() int {
	n := 0
	for _, sh := range w.shards {
		sh.mu.RLock()
		n += len(sh.pages)
		sh.mu.RUnlock()
	}
	return n
}

// PageInfo describes one admitted page for tooling.
type PageInfo struct {
	URL      string
	Version  int
	Region   int
	Priority core.Priority
	Tier     string
}

// Pages lists admitted pages (unspecified order), shard by shard.
func (w *Warehouse) Pages() []PageInfo {
	out := make([]PageInfo, 0, w.ResidentPages())
	for _, sh := range w.shards {
		sh.mu.RLock()
		for url, st := range sh.pages {
			info := PageInfo{URL: url, Version: st.version, Region: st.region}
			info.Priority, _ = w.store.Priority(st.container)
			if tier, ok := w.store.Contains(st.container); ok {
				info.Tier = tier.String()
			}
			out = append(out, info)
		}
		sh.mu.RUnlock()
	}
	return out
}
