package warehouse

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"cbfww/internal/core"
	"cbfww/internal/object"
	"cbfww/internal/workload"
)

// Model-based oracle test for the lock-striped warehouse: a deterministic,
// seeded multiset of Get/Refresh/Maintain operations is executed twice —
// concurrently against a many-shard warehouse and serially against a
// single-shard reference (Config.Shards=1, the pre-striping model) over an
// identical synthetic web. The two runs must be observably equivalent:
//
//   - same Requests and Hits: per URL exactly one request admits (a miss)
//     and every other request is served resident, no matter how cold
//     fetches race — a duplicate cold fetcher finds the page admitted when
//     it retakes the shard lock and serves the resident copy as a hit;
//   - same resident set and per-URL versions (no lost updates);
//   - OriginFetches only bounded, not equal: duplicate cold fetches for
//     one URL are allowed (the gateway's singleflight, not the warehouse,
//     deduplicates them), so unique ≤ fetches ≤ requests;
//   - the Fig. 2 structural rule survives the races: after a quiescent
//     Maintain, every raw object's effective priority is the max over its
//     containers' effective priorities — never the sum — and that is what
//     the Storage Manager placed by.
type oracleOp struct {
	refresh bool
	user    string
	url     string
}

// oracleOps builds the deterministic op multiset: G per-goroutine streams
// of seeded Gets plus occasional Refreshes of pre-warmed URLs.
func oracleOps(goroutines, opsPer int, urls, warm []string) [][]oracleOp {
	streams := make([][]oracleOp, goroutines)
	for g := range streams {
		rng := rand.New(rand.NewSource(int64(1000 + g)))
		ops := make([]oracleOp, opsPer)
		for i := range ops {
			if rng.Intn(10) == 0 {
				ops[i] = oracleOp{refresh: true, url: warm[rng.Intn(len(warm))]}
			} else {
				ops[i] = oracleOp{
					user: fmt.Sprintf("user-%d", g),
					url:  urls[rng.Intn(len(urls))],
				}
			}
		}
		streams[g] = ops
	}
	return streams
}

// oracleWarehouse builds a warehouse over a fresh but identical synthetic
// web (same generator seed both times).
func oracleWarehouse(t *testing.T, shards int) (*Warehouse, []string) {
	t.Helper()
	clock := core.NewSimClock(0)
	wcfg := workload.DefaultWebConfig()
	wcfg.Sites, wcfg.PagesPerSite = 4, 12
	g, err := workload.GenerateWeb(clock, wcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Shards = shards
	w, err := New(cfg, clock, g.Web)
	if err != nil {
		t.Fatal(err)
	}
	return w, g.PageURLs
}

func runOracleOp(w *Warehouse, op oracleOp) error {
	if op.refresh {
		_, err := w.Refresh(context.Background(), op.url)
		return err
	}
	_, err := w.Get(op.user, op.url)
	return err
}

func TestOracleShardedMatchesSingleShardModel(t *testing.T) {
	const (
		goroutines = 8
		opsPer     = 250
		warmCount  = 8
		maintains  = 3
	)
	concurrent, urls := oracleWarehouse(t, 8)
	serial, urls2 := oracleWarehouse(t, 1)
	if len(urls) != len(urls2) {
		t.Fatalf("generated webs differ: %d vs %d pages", len(urls), len(urls2))
	}
	warm := urls[:warmCount]
	streams := oracleOps(goroutines, opsPer, urls, warm)

	// Pre-warm serially in both, so Refresh always has resident targets.
	for _, w := range []*Warehouse{concurrent, serial} {
		for _, u := range warm {
			if _, err := w.Get("warmup", u); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Concurrent run: one goroutine per stream plus a maintenance loop
	// racing them, against the many-shard warehouse.
	errs := make(chan error, goroutines+1)
	var wg sync.WaitGroup
	for _, ops := range streams {
		wg.Add(1)
		go func(ops []oracleOp) {
			defer wg.Done()
			for _, op := range ops {
				if err := runOracleOp(concurrent, op); err != nil {
					errs <- err
					return
				}
			}
		}(ops)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < maintains; i++ {
			if _, err := concurrent.Maintain(); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Reference run: the same op multiset, serially, stream by stream.
	for _, ops := range streams {
		for _, op := range ops {
			if err := runOracleOp(serial, op); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < maintains; i++ {
		if _, err := serial.Maintain(); err != nil {
			t.Fatal(err)
		}
	}

	cs, ss := concurrent.Stats(), serial.Stats()
	if cs.Requests != ss.Requests {
		t.Errorf("Requests: sharded %d, model %d", cs.Requests, ss.Requests)
	}
	if cs.Hits != ss.Hits {
		t.Errorf("Hits: sharded %d, model %d", cs.Hits, ss.Hits)
	}
	if got, want := concurrent.ResidentPages(), serial.ResidentPages(); got != want {
		t.Errorf("ResidentPages: sharded %d, model %d", got, want)
	}

	// Origin fetches: at least one per unique URL, at most one per request
	// (duplicate cold fetches are the only slack).
	unique := map[string]bool{}
	for _, ops := range streams {
		for _, op := range ops {
			if !op.refresh {
				unique[op.url] = true
			}
		}
	}
	for _, u := range warm {
		unique[u] = true
	}
	if cs.OriginFetches < len(unique) || cs.OriginFetches > cs.Requests {
		t.Errorf("OriginFetches = %d, want in [%d, %d]", cs.OriginFetches, len(unique), cs.Requests)
	}

	// No lost updates: every touched URL is resident in both warehouses at
	// the same version.
	for u := range unique {
		if !concurrent.Resident(u) {
			t.Errorf("%s not resident in sharded warehouse", u)
			continue
		}
		c, ok1 := concurrent.Versions().Latest(u)
		s, ok2 := serial.Versions().Latest(u)
		if !ok1 || !ok2 {
			t.Errorf("%s: missing version snapshot (sharded=%v model=%v)", u, ok1, ok2)
			continue
		}
		if c.Version != s.Version {
			t.Errorf("%s: version sharded=%d model=%d", u, c.Version, s.Version)
		}
	}

	assertMaxRulePlacement(t, concurrent)
}

// assertMaxRulePlacement runs one quiescent Maintain, recomputes the base
// priorities exactly as applyPriorities does, and asserts (a) the Fig. 2
// structural rule — every object's effective priority is the max over its
// parents' effective priorities, never the sum — and (b) the Storage
// Manager placed every raw object by exactly that effective priority.
func assertMaxRulePlacement(t *testing.T, w *Warehouse) {
	t.Helper()
	if _, err := w.Maintain(); err != nil {
		t.Fatal(err)
	}

	base := make(map[core.ObjectID]core.Priority)
	for _, sh := range w.shards {
		sh.mu.RLock()
		for _, st := range sh.pages {
			f := w.tracker.AgedFrequency(st.physID)
			heat := core.Priority(f / (1 + f))
			p := st.admissionPriority
			if heat > p {
				p = heat
			}
			base[st.physID] = p
		}
		sh.mu.RUnlock()
	}
	w.metaMu.RLock()
	for id, support := range w.logicalSupport {
		base[id] = core.Priority(float64(support) / (float64(support) + 5))
	}
	regionObjs := make(map[int]core.ObjectID, len(w.regionObjOf))
	for idx, objID := range w.regionObjOf {
		regionObjs[idx] = objID
	}
	w.metaMu.RUnlock()
	for idx, objID := range regionObjs {
		base[objID] = core.Priority(w.prios.RegionHeat(idx))
	}
	eff := w.objects.EffectivePriorities(base)

	const eps = 1e-9
	checked := 0
	w.objects.ForEach(object.KindRaw, func(o *object.Object) {
		parents := w.objects.Parents(o.ID)
		if len(parents) == 0 {
			return
		}
		var max core.Priority
		for _, pid := range parents {
			if p := eff[pid]; p > max {
				max = p
			}
		}
		if math.Abs(float64(eff[o.ID]-max)) > eps {
			t.Errorf("raw %d: eff=%v, max over %d parents=%v (structural rule violated)",
				o.ID, eff[o.ID], len(parents), max)
		}
		stored, ok := w.store.Priority(o.ID)
		if !ok {
			t.Errorf("raw %d: not placed in storage", o.ID)
			return
		}
		if math.Abs(float64(stored-eff[o.ID])) > eps {
			t.Errorf("raw %d: stored priority %v != effective %v", o.ID, stored, eff[o.ID])
		}
		checked++
	})
	if checked == 0 {
		t.Fatal("no raw objects checked — max-rule assertion vacuous")
	}
}
