// Package warehouse is the core of the reproduction: the Capacity
// Bound-free Web Warehouse itself. It wires every manager from Figure 1
// around one fetch-through path:
//
//	user request ── resident? ──► Storage Manager (tiered access)
//	      │ miss                      ▲ placement by priority
//	      ▼                           │
//	Web Requester ─► Constraint Mgr ─► Priority Mgr (admission-time priority
//	      │                           from semantic regions + hot topics)
//	      ▼                           │
//	   indexes, version store, usage log, semantic regions, topic model
//
// plus the non-transparent surfaces the paper promises: popularity-aware
// queries (§4.3), recommendations and social navigation (§3(5)),
// version history (§3(6)) and usage analysis.
package warehouse

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"

	"cbfww/internal/blob"
	"cbfww/internal/cluster"
	"cbfww/internal/constraint"
	"cbfww/internal/core"
	"cbfww/internal/logmine"
	"cbfww/internal/object"
	"cbfww/internal/priority"
	"cbfww/internal/recommend"
	"cbfww/internal/schema"
	"cbfww/internal/simweb"
	"cbfww/internal/storage"
	"cbfww/internal/text"
	"cbfww/internal/topic"
	"cbfww/internal/usage"
	"cbfww/internal/version"
)

// Config assembles the warehouse's tunables.
type Config struct {
	// Storage sizes the tier hierarchy.
	Storage storage.Config
	// Admission rules gate what enters the warehouse; nil admits all.
	Admission *constraint.Admission
	// Consistency picks strong or weak freshness.
	Consistency constraint.Consistency
	// Priority tunes admission-time priority.
	Priority priority.Config
	// RegionMinSim is the cosine threshold for semantic-region membership;
	// RegionMax caps the region count (0 = unbounded).
	RegionMinSim float64
	RegionMax    int
	// Omega is the title-over-body weight of §5.3 (ω > 1).
	Omega float64
	// WindowSize and Lambda configure the usage tracker's estimators;
	// AgingEpoch is the λ-aging epoch length in ticks.
	WindowSize core.Duration
	Lambda     float64
	AgingEpoch core.Duration
	// SessionTimeout separates navigation sessions for path mining.
	SessionTimeout core.Duration
	// Miner bounds logical-document discovery.
	Miner logmine.MinerConfig
	// VersionDepth bounds stored versions per URL (0 = unlimited).
	VersionDepth int
	// DataDir, when non-empty, roots the warehouse's durable state: the
	// storage tiers' file backends live under <DataDir>/store, version
	// bodies under <DataDir>/blobs (unless BlobDir overrides it), and
	// Checkpoint writes the page catalog and version index beside them so
	// Rehydrate can resurrect admitted pages after a restart. Empty keeps
	// every tier in the heap — the simulation shape.
	DataDir string
	// BlobDir, when non-empty, stores version bodies content-addressed on
	// disk (internal/blob): shared and repeated content is stored once,
	// and pruned versions are garbage-collected.
	BlobDir string
	// ProfileBlend tunes recommendation profiles.
	ProfileBlend float64
	// SensorDecay tunes topic-burst baselines.
	SensorDecay float64
	// TopicGain scales how strongly news bursts boost the topic model.
	TopicGain float64
	// TopicDecayFactor is applied to the topic model at every Maintain.
	TopicDecayFactor float64
	// AdmissionDecay is applied to each page's admission-time priority
	// estimate at every Maintain: the estimate is evidence about an
	// object nobody has re-referenced yet, and it must fade on a disuse
	// timescale so measured usage takes over (§4.3 problem (4)).
	AdmissionDecay float64
	// Shards is the lock-stripe count for the hot page state (see
	// shard.go). 0 picks GOMAXPROCS — one stripe per schedulable core is
	// the point of diminishing returns for lock striping. 1 degenerates
	// to the old single-lock warehouse (useful as a reference model in
	// tests).
	Shards int
}

// ApplySchema merges a parsed storage-schema definition (§4.4's schema
// definition language, internal/schema) into the configuration: storage
// geometry, admission rules and consistency discipline.
func (c *Config) ApplySchema(s schema.Schema) {
	s.Apply(&c.Storage, &c.Admission, &c.Consistency)
}

// DefaultConfig returns the configuration the experiments run with.
func DefaultConfig() Config {
	return Config{
		Storage:          storage.DefaultConfig(),
		Admission:        constraint.NewAdmission(),
		Consistency:      constraint.DefaultConsistency(),
		Priority:         priority.DefaultConfig(),
		RegionMinSim:     0.15,
		RegionMax:        256,
		Omega:            3,
		WindowSize:       7 * 24 * 3600, // the paper's "last week" window
		Lambda:           0.3,
		AgingEpoch:       3600,
		SessionTimeout:   1800,
		Miner:            logmine.DefaultMinerConfig(),
		VersionDepth:     16,
		ProfileBlend:     0.2,
		SensorDecay:      0.9,
		TopicGain:        1.0,
		TopicDecayFactor: 0.98,
		AdmissionDecay:   0.8,
	}
}

// Origin is the warehouse's view of the web — the Web Requester's
// downstream. *simweb.Web implements it natively (in-process simulation);
// crawl.Requester implements it over real HTTP sockets.
type Origin interface {
	// Fetch retrieves the current content of url with its origin cost.
	Fetch(url string) (simweb.FetchResult, error)
	// Head returns version and last-modified without a body transfer —
	// the weak-consistency revalidation probe.
	Head(url string) (version int, lastMod core.Time, err error)
}

// ContextOrigin is an Origin whose fetches honor context cancellation and
// deadlines — the contract a network daemon needs to bound origin work per
// request. crawl.Requester and *simweb.Web both implement it. Origins that
// do not are still usable: the context is then checked between steps only,
// not during the fetch itself.
type ContextOrigin interface {
	Origin
	FetchCtx(ctx context.Context, url string) (simweb.FetchResult, error)
	HeadCtx(ctx context.Context, url string) (version int, lastMod core.Time, err error)
}

// PeerSource is the cluster tier's lookup hook: a source of pages some
// other warehouse node already admitted, consulted on cold misses before
// the origin. Implementations must be resident-only on the remote side —
// a probe must never trigger another origin fetch — so the miss order
// stays local → peer → origin with exactly one origin fetch per object
// cluster-wide. peers.Cluster implements it.
type PeerSource interface {
	FetchResident(ctx context.Context, url string) (simweb.FetchResult, bool)
}

// peerSourceBox wraps the interface so it can live in an atomic.Pointer
// (the daemon wires the cluster in after its listener binds, possibly
// with requests already flowing).
type peerSourceBox struct{ ps PeerSource }

// SetPeerSource installs (or replaces) the cluster-peer lookup consulted
// on cold misses. Safe to call concurrently with requests.
func (w *Warehouse) SetPeerSource(ps PeerSource) {
	w.peerSrc.Store(&peerSourceBox{ps: ps})
}

// peerSource returns the installed peer source, nil when absent.
func (w *Warehouse) peerSource() PeerSource {
	if b := w.peerSrc.Load(); b != nil {
		return b.ps
	}
	return nil
}

// Replicator is the cluster tier's write hook: called (non-blocking, from
// under the shard lock) whenever this warehouse admits or refreshes a
// page's content from the origin or a peer probe, so the cluster can push
// the payload to the rest of the URL's replica set. Implementations must
// queue and return — peers.Cluster.ReplicateAdmitted does. Replica pushes
// received via AdmitReplica never re-fire the hook (no replication
// storms).
type Replicator func(url string, page simweb.Page)

// replicatorBox wraps the func for atomic installation (same pattern as
// peerSourceBox: the daemon wires the cluster in after construction).
type replicatorBox struct{ rep Replicator }

// SetReplicator installs (or replaces) the replication hook. Safe to call
// concurrently with requests.
func (w *Warehouse) SetReplicator(rep Replicator) {
	w.replicatorFn.Store(&replicatorBox{rep: rep})
}

// replicator returns the installed hook, nil when absent.
func (w *Warehouse) replicator() Replicator {
	if b := w.replicatorFn.Load(); b != nil {
		return b.rep
	}
	return nil
}

// originFetch fetches from the origin under ctx when the origin supports
// it, degrading to a pre-flight cancellation check when it does not.
func (w *Warehouse) originFetch(ctx context.Context, url string) (simweb.FetchResult, error) {
	if co, ok := w.web.(ContextOrigin); ok {
		return co.FetchCtx(ctx, url)
	}
	if err := ctx.Err(); err != nil {
		return simweb.FetchResult{}, err
	}
	return w.web.Fetch(url)
}

// originHead is the revalidation probe under ctx (see originFetch).
func (w *Warehouse) originHead(ctx context.Context, url string) (int, core.Time, error) {
	if co, ok := w.web.(ContextOrigin); ok {
		return co.HeadCtx(ctx, url)
	}
	if err := ctx.Err(); err != nil {
		return 0, 0, err
	}
	return w.web.Head(url)
}

// Stats counts warehouse activity.
type Stats struct {
	Requests      int
	Hits          int // served from the warehouse (any tier)
	MemoryHits    int
	OriginFetches int
	// PeerFetches counts cold misses satisfied by another cluster node's
	// admitted copy instead of the origin (the peer tier between memory
	// and origin).
	PeerFetches   int
	Revalidations int
	Refetches     int // revalidations that found new content
	Prefetches    int
	// ReplicaAdmits counts payloads absorbed from replica-set peers'
	// /peer/put pushes (fresh admissions and in-place updates both).
	ReplicaAdmits int
	Rejected      int // admission-constraint rejections
	// StaleServes counts degraded serves: the origin failed but a resident
	// copy answered, marked stale (the §5.2 copy-control promise).
	StaleServes int
	// IndexMemoryProbes / IndexDiskProbes count tiered index accesses
	// (§4.1's index hierarchy).
	IndexMemoryProbes int
	IndexDiskProbes   int
	// LatencyTotal accumulates user-visible latency (tier or origin).
	LatencyTotal core.Duration
}

// HitRatio returns warehouse hits over requests.
func (s Stats) HitRatio() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Requests)
}

// MeanLatency returns average user-visible latency per request.
func (s Stats) MeanLatency() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.LatencyTotal) / float64(s.Requests)
}

// pageState is warehouse-local bookkeeping per admitted physical page.
type pageState struct {
	physID    core.ObjectID
	container core.ObjectID
	version   int
	vec       text.Vector
	region    int
	lastCheck core.Time
	// updateGap is an EMA of observed ticks between content changes.
	updateGap         float64
	lastMod           core.Time
	admissionPriority core.Priority
	// anchors maps link target URL -> anchor text, recorded at admission
	// so logical-document titles can be assembled without re-consulting
	// the origin (§5.2).
	anchors map[string]string
	// inHotIndex tracks membership of the memory-resident detailed index
	// (§4.1's index hierarchy).
	inHotIndex bool
}

// Warehouse is the assembled CBFWW system.
type Warehouse struct {
	cfg   Config
	clock core.Clock
	web   Origin

	corpus  *text.Corpus
	index   *text.InvertedIndex
	objects *object.Hierarchy
	builder *object.Builder
	tracker *usage.Tracker
	regions *cluster.Online
	topics  *topic.Manager
	sensor  *topic.Sensor
	prios   *priority.Manager
	store   *storage.Manager
	history *version.Store
	social  *recommend.Manager

	// shards stripe the hot per-URL state (page map, counters, hot-index
	// segments); see shard.go. Fixed at construction, so reads of the
	// slice itself need no lock.
	shards []*shard

	// metaMu guards the cold, low-traffic maps below: mined-path
	// bookkeeping, feed registration and stored views. It is never held
	// together with a shard lock on any writer path, and only ever in
	// metaMu->shard order on readers, so it cannot deadlock with the
	// stripes.
	metaMu           sync.RWMutex
	feeds            []*simweb.NewsFeed
	lastPrefetchPoll core.Time
	// logicalSupport remembers mined path support per logical page ID.
	logicalSupport map[core.ObjectID]int
	// regionObjOf maps cluster region index -> region object ID.
	regionObjOf map[int]core.ObjectID
	// views holds per-user stored queries: user -> name -> query text
	// (§3(5)'s per-user views of relevant contents).
	views map[string]map[string]string

	// logMu guards the operational log. The log is append-mostly and the
	// critical section is one slice append, so a dedicated mutex keeps
	// the global total order of accesses (sessionization needs it)
	// without re-serializing the request path.
	logMu sync.Mutex
	log   logmine.Log

	// Tiered-index probe counters are warehouse-global (a search sweeps
	// every shard), kept as atomics so SearchTiered stays lock-free
	// outside the shard sweeps.
	indexMemProbes  atomic.Int64
	indexDiskProbes atomic.Int64

	// pageOfContainer routes storage residency events (container object ID)
	// back to the owning page URL, and thus to the shard whose hot segment
	// must change. Entries are registered before the container is admitted
	// to storage so no event can precede its route.
	pageOfContainer sync.Map // core.ObjectID -> string (URL)
	// hotGen is the storage memory-residency generation the hot segments
	// currently reflect; when it matches the Storage Manager's counter the
	// segments are provably current and tiered reads skip maintenance
	// entirely. hotMaintMu serializes the drain itself.
	hotGen     atomic.Uint64
	hotMaintMu sync.Mutex

	// peerSrc, when set, is the cluster tier consulted on cold misses
	// before the origin (local → peer → origin). Installed after
	// construction via SetPeerSource, hence the atomic box.
	peerSrc atomic.Pointer[peerSourceBox]

	// replicatorFn, when set, receives every locally admitted or
	// refreshed payload so the cluster can replicate it. Installed after
	// construction via SetReplicator, hence the atomic box.
	replicatorFn atomic.Pointer[replicatorBox]
}

// New assembles a warehouse over the given (simulated) web.
func New(cfg Config, clock core.Clock, web Origin) (*Warehouse, error) {
	if clock == nil || web == nil {
		return nil, fmt.Errorf("warehouse: %w: nil clock or web", core.ErrInvalid)
	}
	if cfg.DataDir == "" && os.Getenv("CBFWW_DISK_TIER") != "" {
		// Test hook: the storage-disk CI job sets CBFWW_DISK_TIER so the
		// whole warehouse suite runs against real file-backed tiers
		// without threading a DataDir through every fixture.
		dir, err := os.MkdirTemp("", "cbfww-disk-*")
		if err != nil {
			return nil, err
		}
		cfg.DataDir = dir
	}
	if cfg.DataDir != "" {
		if cfg.Storage.DataDir == "" {
			cfg.Storage.DataDir = filepath.Join(cfg.DataDir, "store")
		}
		if cfg.BlobDir == "" {
			cfg.BlobDir = filepath.Join(cfg.DataDir, "blobs")
		}
	}
	if cfg.Storage.Summarize == nil {
		// Levels-of-detail summaries truncate the page body but stay
		// decodable, so summary blobs remain servable previews.
		cfg.Storage.Summarize = summarizePagePayload
	}
	store, err := storage.NewManager(cfg.Storage)
	if err != nil {
		return nil, err
	}
	regions, err := cluster.NewOnline(cfg.RegionMinSim, cfg.RegionMax)
	if err != nil {
		return nil, err
	}
	corpus := text.NewCorpus()
	topics := topic.NewManager(corpus.Dict())
	prios, err := priority.NewManager(cfg.Priority, clock, regions, topics)
	if err != nil {
		return nil, err
	}
	if cfg.Admission == nil {
		cfg.Admission = constraint.NewAdmission()
	}
	if cfg.AdmissionDecay <= 0 || cfg.AdmissionDecay > 1 {
		cfg.AdmissionDecay = 0.8
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	w := &Warehouse{
		cfg:              cfg,
		clock:            clock,
		web:              web,
		corpus:           corpus,
		index:            text.NewInvertedIndex(corpus.Dict()),
		objects:          object.NewHierarchy(),
		tracker:          usage.NewTracker(clock, cfg.WindowSize, cfg.Lambda),
		regions:          regions,
		topics:           topics,
		sensor:           topic.NewSensor(clock, cfg.SensorDecay),
		prios:            prios,
		store:            store,
		history:          version.NewStore(cfg.VersionDepth),
		social:           recommend.NewManager(cfg.ProfileBlend),
		shards:           make([]*shard, cfg.Shards),
		lastPrefetchPoll: core.TimeNever,
		logicalSupport:   make(map[core.ObjectID]int),
		regionObjOf:      make(map[int]core.ObjectID),
	}
	for i := range w.shards {
		w.shards[i] = &shard{
			pages:    make(map[string]*pageState),
			hotIndex: text.NewInvertedIndex(corpus.Dict()),
		}
	}
	if cfg.AgingEpoch > 0 {
		w.tracker.SetAgingEpoch(cfg.AgingEpoch)
	}
	if cfg.BlobDir != "" {
		bs, err := blob.Open(cfg.BlobDir)
		if err != nil {
			return nil, err
		}
		w.history.UseBlobs(bs)
	}
	w.builder = object.NewBuilder(w.objects)
	return w, nil
}

// WatchFeed registers a news feed with the Topic Sensor.
func (w *Warehouse) WatchFeed(f *simweb.NewsFeed) {
	w.sensor.AddFeed(f)
	w.metaMu.Lock()
	defer w.metaMu.Unlock()
	w.feeds = append(w.feeds, f)
}

// Stats sums the activity counters over all shards. Each shard is read
// under its own lock, so the total is per-shard consistent: counters from
// a request in flight on another shard may or may not be included, exactly
// as with any monitoring snapshot.
func (w *Warehouse) Stats() Stats {
	var total Stats
	for _, sh := range w.shards {
		sh.mu.RLock()
		s := sh.stats
		sh.mu.RUnlock()
		total.Requests += s.Requests
		total.Hits += s.Hits
		total.MemoryHits += s.MemoryHits
		total.OriginFetches += s.OriginFetches
		total.PeerFetches += s.PeerFetches
		total.Revalidations += s.Revalidations
		total.Refetches += s.Refetches
		total.Prefetches += s.Prefetches
		total.ReplicaAdmits += s.ReplicaAdmits
		total.Rejected += s.Rejected
		total.StaleServes += s.StaleServes
		total.LatencyTotal += s.LatencyTotal
	}
	total.IndexMemoryProbes = int(w.indexMemProbes.Load())
	total.IndexDiskProbes = int(w.indexDiskProbes.Load())
	return total
}

// Close releases file-backed resources (storage tier backends). It does
// not checkpoint: call Checkpoint first for a shutdown that survives a
// restart.
func (w *Warehouse) Close() error { return w.store.Close() }

// Clock exposes the warehouse clock (examples print times).
func (w *Warehouse) Clock() core.Clock { return w.clock }

// Topics exposes the Topic Manager (REPL: HOT, RELATED).
func (w *Warehouse) Topics() *topic.Manager { return w.topics }

// Regions exposes the semantic-region clusterer.
func (w *Warehouse) Regions() *cluster.Online { return w.regions }

// StorageManager exposes the storage tiers (failure-injection experiments).
func (w *Warehouse) StorageManager() *storage.Manager { return w.store }

// Versions exposes the version store.
func (w *Warehouse) Versions() *version.Store { return w.history }

// Corpus exposes the shared corpus (examples vectorize queries with it).
func (w *Warehouse) Corpus() *text.Corpus { return w.corpus }

// Hierarchy exposes the object hierarchy for experiments that inspect
// structure directly.
func (w *Warehouse) Hierarchy() *object.Hierarchy { return w.objects }
