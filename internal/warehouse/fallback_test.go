package warehouse

import (
	"strings"
	"testing"

	"cbfww/internal/core"
	"cbfww/internal/simweb"
)

// A hand-built web where the warehouse holds one hub page whose links
// (with descriptive anchor texts) lead to the content the query wants.
func fallbackFixture(t *testing.T) (*Warehouse, *core.SimClock) {
	t.Helper()
	clock := core.NewSimClock(0)
	web := simweb.NewWeb(clock)
	web.AddSite("h.example", 50)
	pages := []*simweb.Page{
		{
			URL: "http://h.example/hub", Title: "City portal", Body: "directory of services",
			Size: core.KB,
			Anchors: []simweb.Anchor{
				{Text: "Gion festival parade schedule", Target: "http://h.example/festival"},
				{Text: "Garbage collection calendar", Target: "http://h.example/garbage"},
				{Text: "Dead link", Target: "http://h.example/missing"},
			},
		},
		{
			URL: "http://h.example/festival", Title: "Gion festival 2003",
			Body: "the festival parade passes through the city center", Size: core.KB,
		},
		{
			URL: "http://h.example/garbage", Title: "Garbage calendar",
			Body: "burnable waste on tuesdays", Size: core.KB,
		},
	}
	for _, p := range pages {
		if err := web.AddPage(p); err != nil {
			t.Fatal(err)
		}
	}
	w, err := New(DefaultConfig(), clock, web)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Get("u", "http://h.example/hub"); err != nil {
		t.Fatal(err)
	}
	return w, clock
}

func TestSearchWithFallbackFetchesByAnchorText(t *testing.T) {
	w, _ := fallbackFixture(t)
	// The warehouse has only the hub; "festival parade" matches nothing
	// resident, but the hub's anchor text points the way.
	res, err := w.SearchWithFallback("festival parade", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) == 0 {
		t.Fatalf("fallback found nothing: %+v", res)
	}
	if res.Rounds == 0 {
		t.Error("no fallback rounds ran")
	}
	found := false
	for _, u := range res.Fetched {
		if u == "http://h.example/festival" {
			found = true
		}
		if u == "http://h.example/garbage" {
			t.Error("irrelevant link fetched before the relevant one")
		}
	}
	if !found {
		t.Errorf("festival page not fetched: %v", res.Fetched)
	}
	// The fetched page is now resident and directly searchable.
	if got := w.Search("festival parade", 3); len(got) == 0 {
		t.Error("fetched page not indexed")
	}
}

func TestSearchWithFallbackNoopWhenSatisfied(t *testing.T) {
	w, _ := fallbackFixture(t)
	// The hub itself satisfies a query about services.
	res, err := w.SearchWithFallback("directory services", 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fetched) != 0 || res.Rounds != 0 {
		t.Errorf("satisfied query still fetched: %+v", res)
	}
}

func TestSearchWithFallbackRespectsBudget(t *testing.T) {
	w, _ := fallbackFixture(t)
	// Ask for more results than exist with a zero fetch budget.
	res, err := w.SearchWithFallback("festival parade", 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fetched) != 0 {
		t.Errorf("zero budget fetched %v", res.Fetched)
	}
	// With budget 1, at most one fetch happens even though 2 links match
	// weakly.
	res2, err := w.SearchWithFallback("festival parade calendar", 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Fetched) > 1 {
		t.Errorf("budget exceeded: %v", res2.Fetched)
	}
}

func TestSearchWithFallbackSurvivesDeadLinks(t *testing.T) {
	w, _ := fallbackFixture(t)
	// A query matching only the dead link's anchor: the loop must skip the
	// fetch failure and terminate cleanly.
	res, err := w.SearchWithFallback("dead link", 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range res.Fetched {
		if strings.Contains(u, "missing") {
			t.Errorf("dead link reported as fetched: %v", res.Fetched)
		}
	}
}
