package warehouse

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"cbfww/internal/core"
	"cbfww/internal/storage"
)

// TestHotIndexEventEquivalence drives a randomized admit / migrate / evict
// / refresh sequence and, after every single step, asserts that the
// event-maintained hot-segment membership is identical to a from-scratch
// re-derivation from the memory tier's current residents — the invariant
// the old full sweep enforced by construction.
func TestHotIndexEventEquivalence(t *testing.T) {
	w, g, clock := fixture(t, func(c *Config) {
		c.Storage.MemCapacity = 96 * core.KB // small enough to churn
	})
	rng := rand.New(rand.NewSource(7))
	urls := g.PageURLs

	containerOf := func(url string) (core.ObjectID, bool) {
		sh := w.shardOf(url)
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		st := sh.pages[url]
		if st == nil {
			return 0, false
		}
		return st.container, true
	}

	check := func(step int, op string) {
		t.Helper()
		w.HotIndexSize() // drains pending residency events
		resident := make(map[core.ObjectID]bool)
		for _, id := range w.store.ResidentIDs(storage.Memory) {
			resident[id] = true
		}
		for i, sh := range w.shards {
			sh.mu.RLock()
			for url, st := range sh.pages {
				if want := resident[st.container]; st.inHotIndex != want {
					sh.mu.RUnlock()
					t.Fatalf("step %d (%s): shard %d page %q inHotIndex=%v, re-derivation says %v",
						step, op, i, url, st.inHotIndex, want)
				}
				if got := sh.hotIndex.Contains(st.physID); got != st.inHotIndex {
					sh.mu.RUnlock()
					t.Fatalf("step %d (%s): shard %d page %q segment says %v, state says %v",
						step, op, i, url, got, st.inHotIndex)
				}
			}
			sh.mu.RUnlock()
		}
	}

	var admitted []string
	for step := 0; step < 250; step++ {
		op := "admit"
		switch r := rng.Intn(10); {
		case r < 4 || len(admitted) == 0:
			// Admit a page (or re-touch one already resident).
			url := urls[rng.Intn(len(urls))]
			if _, err := w.Get("u", url); err != nil {
				t.Fatal(err)
			}
			admitted = append(admitted, url)
		case r < 6:
			// Migrate: a single page's priority jumps, re-placing everything.
			op = "migrate"
			url := admitted[rng.Intn(len(admitted))]
			if id, ok := containerOf(url); ok {
				if err := w.store.SetPriority(id, core.Priority(rng.Float64())); err != nil {
					t.Fatal(err)
				}
			}
		case r < 8:
			// Bulk migrate: the maintenance-style priority sweep.
			op = "bulk-migrate"
			prios := make(map[core.ObjectID]core.Priority)
			for i := 0; i < 3 && i < len(admitted); i++ {
				if id, ok := containerOf(admitted[rng.Intn(len(admitted))]); ok {
					prios[id] = core.Priority(rng.Float64())
				}
			}
			w.store.ApplyPriorities(prios)
		case r < 9:
			// Evict: the memory tier fails outright; half the time recovery
			// re-promotes from the surviving disk copies.
			op = "evict"
			if err := w.store.DropTier(storage.Memory); err != nil {
				t.Fatal(err)
			}
			if rng.Intn(2) == 0 {
				op = "evict+recover"
				w.store.Recover()
			}
		default:
			// Refresh: force a refetch of a resident page.
			op = "refresh"
			url := admitted[rng.Intn(len(admitted))]
			clock.Advance(3)
			if _, err := w.Refresh(context.Background(), url); err != nil {
				t.Fatal(err)
			}
		}
		clock.Advance(1)
		check(step, op)
	}

	if w.HotIndexSize() == 0 {
		t.Error("suspicious: hot index empty after 250 randomized steps")
	}
}

// TestHotIndexEventConcurrentReaders exercises the maintenance fast path
// under concurrency: searches and priority churn race, and the final
// membership still matches the re-derivation.
func TestHotIndexEventConcurrentReaders(t *testing.T) {
	w, g, clock := fixture(t, func(c *Config) {
		c.Storage.MemCapacity = 96 * core.KB
	})
	for _, url := range g.PageURLs {
		if _, err := w.Get("u", url); err != nil {
			t.Fatal(err)
		}
		clock.Advance(1)
	}
	var wg sync.WaitGroup
	for gi := 0; gi < 4; gi++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				switch rng.Intn(3) {
				case 0:
					w.SearchTiered("the", 5)
				case 1:
					w.HotIndexSize()
				default:
					url := g.PageURLs[rng.Intn(len(g.PageURLs))]
					sh := w.shardOf(url)
					sh.mu.RLock()
					st := sh.pages[url]
					sh.mu.RUnlock()
					if st != nil {
						w.store.SetPriority(st.container, core.Priority(rng.Float64()))
					}
				}
			}
		}(int64(gi + 1))
	}
	wg.Wait()

	w.HotIndexSize()
	resident := make(map[core.ObjectID]bool)
	for _, id := range w.store.ResidentIDs(storage.Memory) {
		resident[id] = true
	}
	for i, sh := range w.shards {
		sh.mu.RLock()
		for url, st := range sh.pages {
			if want := resident[st.container]; st.inHotIndex != want {
				sh.mu.RUnlock()
				t.Fatalf("shard %d page %q inHotIndex=%v, re-derivation says %v", i, url, st.inHotIndex, want)
			}
		}
		sh.mu.RUnlock()
	}
}
