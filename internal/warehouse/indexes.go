package warehouse

import (
	"cbfww/internal/core"
	"cbfww/internal/storage"
	"cbfww/internal/text"
)

// §4.1's hierarchy of indices: "Detailed index is given to important
// documents. Some important indexes are stored in the main memory." The
// warehouse keeps the full inverted index (conceptually disk-resident)
// plus a hot index holding only the pages whose bodies currently live in
// the memory tier. Ranked retrieval probes the hot index first and only
// falls back to the full index — at disk cost — when the memory index
// cannot satisfy the request.

// TieredSearchResult reports how a search was served.
type TieredSearchResult struct {
	Scores []text.Score
	// Tier that served the result set.
	Tier storage.Tier
	// Latency is the simulated index-access cost.
	Latency core.Duration
}

// syncHotIndexLocked re-derives the hot index membership from the memory
// tier's current residents. Requires w.mu.
func (w *Warehouse) syncHotIndexLocked() {
	resident := make(map[core.ObjectID]bool)
	for _, id := range w.store.ResidentIDs(storage.Memory) {
		resident[id] = true
	}
	for url, st := range w.pages {
		hot := resident[st.container]
		if hot == st.inHotIndex {
			continue
		}
		if hot {
			if snap, ok := w.history.Latest(url); ok {
				if m, err := w.history.Materialize(snap); err == nil {
					snap = m
				}
				w.hotIndex.Index(st.physID, snap.Title+"\n"+snap.Body)
				st.inHotIndex = true
			}
		} else {
			w.hotIndex.Remove(st.physID)
			st.inHotIndex = false
		}
	}
}

// SearchTiered performs ranked retrieval through the index hierarchy: the
// memory-resident detailed index first, the full index (disk) only when
// the hot index returns fewer than n results. The returned latency uses
// the storage configuration's tier costs.
func (w *Warehouse) SearchTiered(query string, n int) TieredSearchResult {
	w.mu.Lock()
	w.syncHotIndexLocked()
	w.mu.Unlock()

	if hits := w.hotIndex.Search(query, n); len(hits) >= n {
		w.mu.Lock()
		w.stats.IndexMemoryProbes++
		w.mu.Unlock()
		return TieredSearchResult{
			Scores:  hits,
			Tier:    storage.Memory,
			Latency: w.cfg.Storage.MemLatency,
		}
	}
	w.mu.Lock()
	w.stats.IndexDiskProbes++
	w.mu.Unlock()
	return TieredSearchResult{
		Scores:  w.index.Search(query, n),
		Tier:    storage.Disk,
		Latency: w.cfg.Storage.DiskLatency,
	}
}

// HotIndexSize returns how many pages the memory-resident detailed index
// currently covers.
func (w *Warehouse) HotIndexSize() int {
	w.mu.Lock()
	w.syncHotIndexLocked()
	n := w.hotIndex.NumDocs()
	w.mu.Unlock()
	return n
}
