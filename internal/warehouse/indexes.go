package warehouse

import (
	"sort"

	"cbfww/internal/core"
	"cbfww/internal/storage"
	"cbfww/internal/text"
)

// §4.1's hierarchy of indices: "Detailed index is given to important
// documents. Some important indexes are stored in the main memory." The
// warehouse keeps the full inverted index (conceptually disk-resident)
// plus a hot index holding only the pages whose bodies currently live in
// the memory tier. Ranked retrieval probes the hot index first and only
// falls back to the full index — at disk cost — when the memory index
// cannot satisfy the request.
//
// The hot index is segmented by shard: each stripe maintains the segment
// covering its own pages, so membership sync takes one shard lock at a
// time and a search fans out over the segments and merges. Scores come
// from per-segment statistics (each segment computes IDF over its own
// document population), so a merged ranking can deviate slightly from a
// single unified index — an accepted property of every sharded search
// system; the full disk index still provides globally consistent scoring.

// TieredSearchResult reports how a search was served.
type TieredSearchResult struct {
	Scores []text.Score
	// Tier that served the result set.
	Tier storage.Tier
	// Latency is the simulated index-access cost.
	Latency core.Duration
}

// syncHotIndex re-derives every shard's hot-segment membership from the
// memory tier's current residents, one shard lock at a time.
func (w *Warehouse) syncHotIndex() {
	resident := make(map[core.ObjectID]bool)
	for _, id := range w.store.ResidentIDs(storage.Memory) {
		resident[id] = true
	}
	for _, sh := range w.shards {
		sh.mu.Lock()
		for url, st := range sh.pages {
			hot := resident[st.container]
			if hot == st.inHotIndex {
				continue
			}
			if hot {
				if snap, ok := w.history.Latest(url); ok {
					if m, err := w.history.Materialize(snap); err == nil {
						snap = m
					}
					sh.hotIndex.Index(st.physID, snap.Title+"\n"+snap.Body)
					st.inHotIndex = true
				}
			} else {
				sh.hotIndex.Remove(st.physID)
				st.inHotIndex = false
			}
		}
		sh.mu.Unlock()
	}
}

// SearchTiered performs ranked retrieval through the index hierarchy: the
// memory-resident detailed index first (all shard segments, merged), the
// full index (disk) only when the hot segments return fewer than n
// results. The returned latency uses the storage configuration's tier
// costs.
func (w *Warehouse) SearchTiered(query string, n int) TieredSearchResult {
	w.syncHotIndex()

	var merged []text.Score
	for _, sh := range w.shards {
		// The segment indexes are internally synchronized; no shard lock
		// is needed to search them.
		merged = append(merged, sh.hotIndex.Search(query, n)...)
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Value != merged[j].Value {
			return merged[i].Value > merged[j].Value
		}
		return merged[i].Doc < merged[j].Doc
	})
	if len(merged) >= n {
		w.indexMemProbes.Add(1)
		if n >= 0 && n < len(merged) {
			merged = merged[:n]
		}
		return TieredSearchResult{
			Scores:  merged,
			Tier:    storage.Memory,
			Latency: w.cfg.Storage.MemLatency,
		}
	}
	w.indexDiskProbes.Add(1)
	return TieredSearchResult{
		Scores:  w.index.Search(query, n),
		Tier:    storage.Disk,
		Latency: w.cfg.Storage.DiskLatency,
	}
}

// HotIndexSize returns how many pages the memory-resident detailed index
// currently covers, over all shard segments.
func (w *Warehouse) HotIndexSize() int {
	w.syncHotIndex()
	n := 0
	for _, sh := range w.shards {
		n += sh.hotIndex.NumDocs()
	}
	return n
}
