package warehouse

import (
	"cbfww/internal/core"
	"cbfww/internal/storage"
	"cbfww/internal/text"
)

// §4.1's hierarchy of indices: "Detailed index is given to important
// documents. Some important indexes are stored in the main memory." The
// warehouse keeps the full inverted index (conceptually disk-resident)
// plus a hot index holding only the pages whose bodies currently live in
// the memory tier. Ranked retrieval probes the hot index first and only
// falls back to the full index — at disk cost — when the memory index
// cannot satisfy the request.
//
// The hot index is segmented by shard: each stripe maintains the segment
// covering its own pages, so membership updates take one shard lock at a
// time and a search fans out over the segments and merges. Scores come
// from per-segment statistics (each segment computes IDF over its own
// document population), so a merged ranking can deviate slightly from a
// single unified index — an accepted property of every sharded search
// system; the full disk index still provides globally consistent scoring.
//
// Membership is maintained event-driven rather than by sweeping: the
// Storage Manager coalesces every memory-tier residency change into a
// dirty set stamped with a generation counter, and the warehouse drains
// that set — touching only the affected pages' shards — before serving a
// tiered read. When nothing moved since the last drain, the generation
// comparison alone (two atomic loads) proves the segments current and the
// read proceeds with no locks and no page sweep at all. Events are
// idempotent "re-check this object" notices: the drain re-reads current
// residency per ID, so coalesced, reordered or repeated notices all
// converge on the same membership a from-scratch re-derivation would
// produce.

// TieredSearchResult reports how a search was served.
type TieredSearchResult struct {
	Scores []text.Score
	// Tier that served the result set.
	Tier storage.Tier
	// Latency is the simulated index-access cost.
	Latency core.Duration
}

// maintainHotIndex brings every shard's hot segment up to date with the
// memory tier by applying the pending residency events. The fast path —
// nothing changed — is two atomic loads.
func (w *Warehouse) maintainHotIndex() {
	if w.hotGen.Load() == w.store.MemoryResidencyGen() {
		return
	}
	w.hotMaintMu.Lock()
	defer w.hotMaintMu.Unlock()
	if w.hotGen.Load() == w.store.MemoryResidencyGen() {
		return // another reader drained while we waited
	}
	ids, gen := w.store.DrainMemoryChanges()
	for _, id := range ids {
		w.applyHotEvent(id)
	}
	// Changes that raced past the drain re-raise the generation and are
	// picked up by the next maintenance pass.
	w.hotGen.Store(gen)
}

// applyHotEvent reconciles one object's hot-segment membership with its
// current memory residency. Only page containers are indexed; events for
// component objects (images, scripts) fall out at the routing lookup.
func (w *Warehouse) applyHotEvent(id core.ObjectID) {
	v, ok := w.pageOfContainer.Load(id)
	if !ok {
		return
	}
	url := v.(string)
	sh := w.shardOf(url)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st := sh.pages[url]
	if st == nil || st.container != id {
		// The mapping is registered before the page is published to the
		// shard map, and admission holds the shard lock across both, so a
		// nil entry here means the admission failed after storage had
		// already placed the object; nothing to index.
		return
	}
	hot := w.store.ResidentAt(id, storage.Memory)
	if hot == st.inHotIndex {
		return
	}
	if !hot {
		sh.hotIndex.Remove(st.physID)
		st.inHotIndex = false
		return
	}
	// Index exactly what the tiers hold: the hot segment is built from the
	// stored payload, so a copy that cannot be read back is not indexed.
	data, _, err := w.store.Peek(id)
	if err != nil {
		return
	}
	page, err := decodePagePayload(url, data)
	if err != nil {
		return
	}
	sh.hotIndex.Index(st.physID, page.Title+"\n"+page.Body)
	st.inHotIndex = true
}

// SearchTiered performs ranked retrieval through the index hierarchy: the
// memory-resident detailed index first (all shard segments, merged), the
// full index (disk) only when the hot segments return fewer than n
// results. The returned latency uses the storage configuration's tier
// costs.
func (w *Warehouse) SearchTiered(query string, n int) TieredSearchResult {
	w.maintainHotIndex()

	var merged []text.Score
	if terms := text.Terms(query); len(terms) > 0 {
		// Each segment contributes at most one Score per document it
		// holds, so the total hot-document count sizes the candidate
		// buffer exactly once.
		hint := 0
		for _, sh := range w.shards {
			hint += sh.hotIndex.NumDocs()
		}
		merged = make([]text.Score, 0, hint)
		for _, sh := range w.shards {
			// The segment indexes are internally synchronized; no shard
			// lock is needed to search them. The query is parsed once and
			// every segment appends into the same candidate buffer.
			merged = sh.hotIndex.AppendSearch(merged, terms)
		}
	}
	merged = text.SelectTop(merged, n)
	if len(merged) >= n {
		w.indexMemProbes.Add(1)
		return TieredSearchResult{
			Scores:  merged,
			Tier:    storage.Memory,
			Latency: w.cfg.Storage.MemLatency,
		}
	}
	w.indexDiskProbes.Add(1)
	return TieredSearchResult{
		Scores:  w.index.Search(query, n),
		Tier:    storage.Disk,
		Latency: w.cfg.Storage.DiskLatency,
	}
}

// HotIndexSize returns how many pages the memory-resident detailed index
// currently covers, over all shard segments.
func (w *Warehouse) HotIndexSize() int {
	w.maintainHotIndex()
	n := 0
	for _, sh := range w.shards {
		n += sh.hotIndex.NumDocs()
	}
	return n
}
