package warehouse

import (
	"sort"

	"cbfww/internal/text"
)

// §3(1)'s feedback loop: "Partial results obtained from CBFWW are given to
// the user. If not satisfied, the query is modified further by the result
// and transmitted to Web Requester to get additional contents from web."
//
// SearchWithFallback implements that loop for free-text retrieval: when
// the warehouse's own contents yield fewer than n results, the query is
// expanded through the Topic Manager, the outgoing links of the best
// current results are scored by their anchor texts against the expanded
// query, the most promising unfetched targets are pulled in through the
// Web Requester, and the search re-runs over the enlarged warehouse.

// FallbackResult reports a fallback search.
type FallbackResult struct {
	Scores []text.Score
	// Expanded is the topic-modified query actually used for link scoring.
	Expanded string
	// Fetched lists the URLs pulled from the web during the loop.
	Fetched []string
	// Rounds is how many expand-fetch-research iterations ran.
	Rounds int
}

// SearchWithFallback searches the warehouse, fetching up to maxFetch
// additional pages from the web when fewer than n results are found.
func (w *Warehouse) SearchWithFallback(query string, n, maxFetch int) (FallbackResult, error) {
	res := FallbackResult{Expanded: w.ExpandQuery(query)}
	res.Scores = w.index.Search(query, n)
	if len(res.Scores) >= n || maxFetch <= 0 {
		return res, nil
	}
	qvec := w.corpus.Vectorize(res.Expanded)

	for len(res.Scores) < n && len(res.Fetched) < maxFetch {
		res.Rounds++
		candidates := w.linkCandidates(qvec, maxFetch-len(res.Fetched))
		if len(candidates) == 0 {
			break
		}
		fetchedAny := false
		for _, url := range candidates {
			if err := w.Prefetch(url); err != nil {
				continue // dead link: skip, keep looping
			}
			res.Fetched = append(res.Fetched, url)
			fetchedAny = true
		}
		if !fetchedAny {
			break
		}
		res.Scores = w.index.Search(query, n)
	}
	return res, nil
}

// linkCandidates ranks unfetched link targets across all resident pages by
// the similarity of their anchor texts to the query vector, returning the
// top max targets. Anchor texts are the navigation guides §5.1 describes —
// the only evidence about a page the warehouse has not fetched.
func (w *Warehouse) linkCandidates(qvec text.Vector, max int) []string {
	type cand struct {
		url   string
		score float64
	}
	// First pass: collect anchor targets shard by shard (a target may live
	// on any shard, so residency is filtered afterwards — never holding
	// two shard locks at once).
	anchors := make(map[string]string)
	for _, sh := range w.shards {
		sh.mu.RLock()
		for _, st := range sh.pages {
			for target, anchorText := range st.anchors {
				if _, dup := anchors[target]; !dup {
					anchors[target] = anchorText
				}
			}
		}
		sh.mu.RUnlock()
	}
	var cands []cand
	for target, anchorText := range anchors {
		if anchorText == "" || w.Resident(target) {
			continue
		}
		avec := w.corpus.Vectorize(anchorText)
		if s := qvec.Cosine(avec); s > 0 {
			cands = append(cands, cand{url: target, score: s})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].url < cands[j].url
	})
	if max < len(cands) {
		cands = cands[:max]
	}
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.url
	}
	return out
}
