package warehouse

import (
	"errors"
	"strings"
	"testing"

	"cbfww/internal/constraint"
	"cbfww/internal/core"
	"cbfww/internal/simweb"
	"cbfww/internal/storage"
	"cbfww/internal/workload"
)

// fixture builds a small generated web plus a warehouse over it.
func fixture(t *testing.T, mutate func(*Config)) (*Warehouse, *workload.GeneratedWeb, *core.SimClock) {
	t.Helper()
	clock := core.NewSimClock(0)
	wcfg := workload.DefaultWebConfig()
	wcfg.Sites, wcfg.PagesPerSite = 4, 12
	g, err := workload.GenerateWeb(clock, wcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Storage = storage.Config{
		MemCapacity:  256 * core.KB,
		DiskCapacity: 32 * core.MB,
		MemLatency:   0, DiskLatency: 10, TertiaryLatency: 100,
		SummaryRatio: 0.05,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	w, err := New(cfg, clock, g.Web)
	if err != nil {
		t.Fatal(err)
	}
	return w, g, clock
}

func TestGetMissThenHit(t *testing.T) {
	w, g, _ := fixture(t, nil)
	url := g.PageURLs[0]

	r1, err := w.Get("alice", url)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Hit || r1.Source != "origin" {
		t.Errorf("first access = %+v, want origin miss", r1)
	}
	if r1.Page.Title == "" {
		t.Error("empty page served")
	}

	r2, err := w.Get("alice", url)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Hit {
		t.Errorf("second access = %+v, want hit", r2)
	}
	if r2.Source == "origin" {
		t.Errorf("hit served from origin")
	}
	if r2.Latency >= r1.Latency {
		t.Errorf("hit latency %v not below origin %v", r2.Latency, r1.Latency)
	}
	if r2.Page.Body != r1.Page.Body {
		t.Error("hit served different content")
	}

	st := w.Stats()
	if st.Requests != 2 || st.Hits != 1 || st.OriginFetches != 1 {
		t.Errorf("stats = %+v", st)
	}
	if w.ResidentPages() != 1 {
		t.Errorf("ResidentPages = %d", w.ResidentPages())
	}
}

func TestGetUnknownURL(t *testing.T) {
	w, _, _ := fixture(t, nil)
	if _, err := w.Get("u", "http://nowhere.example/x"); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("err = %v", err)
	}
}

func TestWeakConsistencyServesCachedThenRefetches(t *testing.T) {
	w, g, clock := fixture(t, func(c *Config) {
		c.Consistency = constraint.Consistency{Mode: constraint.Weak, MinPoll: 100, MaxPoll: 1000}
	})
	url := g.PageURLs[0]
	w.Get("u", url)
	// Origin updates immediately.
	if err := g.Web.Update(url, "fresh news content"); err != nil {
		t.Fatal(err)
	}
	// Within the polling cycle the stale copy is served without checking.
	clock.Advance(10)
	r, err := w.Get("u", url)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Hit {
		t.Fatalf("expected cached hit, got %+v", r)
	}
	if strings.Contains(r.Page.Body, "fresh news content") {
		t.Error("weak consistency fetched eagerly")
	}
	// After the cycle the check fires and the new content arrives.
	clock.Advance(2000)
	r2, err := w.Get("u", url)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Hit || !strings.Contains(r2.Page.Body, "fresh news content") {
		t.Errorf("refetch failed: hit=%v body=%q", r2.Hit, r2.Page.Body[:40])
	}
	st := w.Stats()
	if st.Revalidations == 0 || st.Refetches == 0 {
		t.Errorf("stats = %+v", st)
	}
	// Both versions are in the version store.
	if w.Versions().Depth(url) != 2 {
		t.Errorf("version depth = %d", w.Versions().Depth(url))
	}
}

func TestStrongConsistencyAlwaysChecks(t *testing.T) {
	w, g, _ := fixture(t, func(c *Config) {
		c.Consistency = constraint.Consistency{Mode: constraint.Strong}
	})
	url := g.PageURLs[0]
	w.Get("u", url)
	g.Web.Update(url, "instant update")
	r, err := w.Get("u", url)
	if err != nil {
		t.Fatal(err)
	}
	if r.Hit || !strings.Contains(r.Page.Body, "instant update") {
		t.Errorf("strong consistency missed update: %+v", r.Hit)
	}
}

func TestAdmissionConstraintRejects(t *testing.T) {
	w, g, _ := fixture(t, func(c *Config) {
		c.Admission = constraint.NewAdmission(constraint.MaxSize(1)) // reject all
	})
	url := g.PageURLs[0]
	r, err := w.Get("u", url)
	if err != nil {
		t.Fatal(err)
	}
	if r.Hit {
		t.Error("rejected page reported as hit")
	}
	if r.Page.Title == "" {
		t.Error("rejected page not passed through to user")
	}
	// Never admitted: second access is another origin fetch.
	r2, _ := w.Get("u", url)
	if r2.Hit {
		t.Error("rejected page was cached anyway")
	}
	if w.Stats().Rejected < 2 {
		t.Errorf("Rejected = %d", w.Stats().Rejected)
	}
	if w.ResidentPages() != 0 {
		t.Errorf("ResidentPages = %d", w.ResidentPages())
	}
}

func TestQueryOverWarehouse(t *testing.T) {
	w, g, clock := fixture(t, nil)
	// Admit several pages with different access counts.
	for i, url := range g.PageURLs[:6] {
		for j := 0; j <= i; j++ {
			if _, err := w.Get("u", url); err != nil {
				t.Fatal(err)
			}
			clock.Advance(5)
		}
	}
	rows, err := w.Query("SELECT MFU 3 p.oid, p.url FROM Physical_Page p")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %+v", rows)
	}
	// The most frequently used is the last page (7 accesses).
	if rows[0].Values[1].Str != g.PageURLs[5] {
		t.Errorf("MFU top = %q, want %q", rows[0].Values[1].Str, g.PageURLs[5])
	}
	// MENTION over admitted content: query a term from a known title.
	term := strings.Fields(func() string {
		p, _ := g.Web.Lookup(g.PageURLs[0])
		return p.Title
	}())[0]
	rows2, err := w.Query("SELECT MRU 10 p.url FROM Physical_Page p WHERE p.title MENTION '" + term + "'")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows2) == 0 {
		t.Errorf("MENTION %q found nothing", term)
	}
}

func TestMinePathsBuildsLogicalPages(t *testing.T) {
	w, g, clock := fixture(t, func(c *Config) {
		c.Miner.MinSupport = 2
		c.Miner.MinLength = 2
	})
	// Admit a fixed 3-page walk repeatedly, following real links.
	entry := g.PageURLs[0]
	p0, _ := g.Web.Lookup(entry)
	if len(p0.Anchors) == 0 {
		t.Skip("generated page has no links")
	}
	second := p0.Anchors[0].Target
	for rep := 0; rep < 4; rep++ {
		w.Get("bob", entry)
		clock.Advance(3)
		w.Get("bob", second)
		clock.Advance(3000) // session gap
	}
	rep, err := w.MinePaths()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions < 4 || rep.Paths == 0 || rep.LogicalPages == 0 {
		t.Fatalf("mine report = %+v", rep)
	}
	// The logical page's title contains the anchor text used for the hop.
	rows, err := w.Query("SELECT l.path, l.title FROM Logical_Page l")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no logical pages queryable")
	}
	found := false
	anchorText := p0.Anchors[0].Text
	for _, r := range rows {
		if strings.Contains(r.Values[1].Str, anchorText) {
			found = true
		}
	}
	if !found {
		t.Errorf("no logical title contains anchor text %q: %+v", anchorText, rows)
	}
	// Regions were created and linked.
	if rep.Regions == 0 {
		t.Error("no regions after mining")
	}
	// Social navigation now suggests the path.
	hops := w.NextHops(entry, 3)
	if len(hops) == 0 || hops[0].URLs[0] != second {
		t.Errorf("NextHops = %+v", hops)
	}
}

func TestMaintainPrefetchesAnnouncedPages(t *testing.T) {
	w, g, clock := fixture(t, nil)
	feed := simweb.NewNewsFeed("np")
	w.WatchFeed(feed)
	eventURL := g.PageURLs[3]
	feed.Publish(simweb.Article{Time: 5, Headline: "big festival announced", URL: eventURL})
	clock.Advance(10)
	rep, err := w.Maintain()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Prefetched != 1 {
		t.Fatalf("Prefetched = %d", rep.Prefetched)
	}
	if len(rep.Bursts) == 0 {
		t.Error("no bursts from fresh headline")
	}
	// The page is already warm: first user request is a hit.
	r, err := w.Get("u", eventURL)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Hit {
		t.Error("prefetched page missed")
	}
	st := w.Stats()
	if st.Prefetches != 1 {
		t.Errorf("Prefetches = %d", st.Prefetches)
	}
	// Prefetch did not count as a request.
	if st.Requests != 1 {
		t.Errorf("Requests = %d", st.Requests)
	}
}

func TestMaintainMigratesByUsage(t *testing.T) {
	w, g, clock := fixture(t, func(c *Config) {
		c.Storage.MemCapacity = 24 * core.KB // tight memory
		c.Priority.Default = 0.1
	})
	// Admit many pages; hammer one of them.
	for _, url := range g.PageURLs[:10] {
		if _, err := w.Get("u", url); err != nil {
			t.Fatal(err)
		}
		clock.Advance(2)
	}
	hot := g.PageURLs[2]
	for i := 0; i < 30; i++ {
		w.Get("u", hot)
		clock.Advance(2)
	}
	if _, err := w.Maintain(); err != nil {
		t.Fatal(err)
	}
	// The hot page's priority must now exceed a cold one's.
	var hotP, coldP core.Priority
	for _, info := range w.Pages() {
		switch info.URL {
		case hot:
			hotP = info.Priority
		case g.PageURLs[7]:
			coldP = info.Priority
		}
	}
	if hotP <= coldP {
		t.Errorf("hot page priority %v <= cold %v", hotP, coldP)
	}
	if err := w.StorageManager().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRecommendAfterVisits(t *testing.T) {
	w, g, clock := fixture(t, nil)
	for _, url := range g.PageURLs[:8] {
		w.Get("carol", url)
		clock.Advance(2)
	}
	// Admit more pages carol hasn't seen (by another user).
	for _, url := range g.PageURLs[8:12] {
		w.Get("dave", url)
		clock.Advance(2)
	}
	sugg := w.Recommend("carol", 3)
	if len(sugg) == 0 {
		t.Fatal("no recommendations")
	}
	// Suggestions must be unvisited pages.
	visited := map[string]bool{}
	for _, u := range g.PageURLs[:8] {
		visited[u] = true
	}
	for _, s := range sugg {
		for _, info := range w.Pages() {
			_ = info
		}
		_ = s
	}
	if got := w.Recommend("nobody", 3); got != nil {
		t.Errorf("cold user suggestions: %v", got)
	}
}

func TestVersionHistoryAsOf(t *testing.T) {
	w, g, clock := fixture(t, func(c *Config) {
		c.Consistency = constraint.Consistency{Mode: constraint.Strong}
	})
	url := g.PageURLs[0]
	w.Get("u", url)
	t1 := clock.Now()
	clock.Advance(100)
	g.Web.Update(url, "second version content")
	w.Get("u", url)

	old, ok := w.Versions().AsOf(url, t1)
	if !ok || old.Version != 1 {
		t.Errorf("AsOf(t1) = %+v, %v", old, ok)
	}
	latest, _ := w.Versions().Latest(url)
	// Materialize resolves the body when the store keeps it in an external
	// blob (the disk-backed configuration) — a no-op on inline snapshots.
	if m, err := w.Versions().Materialize(latest); err == nil {
		latest = m
	}
	if latest.Version != 2 || !strings.Contains(latest.Body, "second version") {
		t.Errorf("Latest = %+v", latest)
	}
}

func TestSearchRankedRetrieval(t *testing.T) {
	w, g, _ := fixture(t, nil)
	for _, url := range g.PageURLs[:10] {
		w.Get("u", url)
	}
	p, _ := g.Web.Lookup(g.PageURLs[0])
	term := strings.Fields(p.Title)[0]
	scores := w.Search(term, 5)
	if len(scores) == 0 {
		t.Errorf("Search(%q) found nothing", term)
	}
}

func TestExpandQueryUsesTopicModel(t *testing.T) {
	w, g, _ := fixture(t, nil)
	for _, url := range g.PageURLs[:10] {
		w.Get("u", url)
	}
	p, _ := g.Web.Lookup(g.PageURLs[0])
	term := strings.Fields(p.Title)[0]
	expanded := w.ExpandQuery(term)
	if !strings.HasPrefix(expanded, term) {
		t.Errorf("expansion lost original: %q", expanded)
	}
}

func TestNewValidation(t *testing.T) {
	clock := core.NewSimClock(0)
	web := simweb.NewWeb(clock)
	if _, err := New(DefaultConfig(), nil, web); err == nil {
		t.Error("nil clock accepted")
	}
	if _, err := New(DefaultConfig(), clock, nil); err == nil {
		t.Error("nil web accepted")
	}
	bad := DefaultConfig()
	bad.Storage.MemCapacity = 0
	if _, err := New(bad, clock, web); err == nil {
		t.Error("bad storage config accepted")
	}
	bad2 := DefaultConfig()
	bad2.RegionMinSim = 2
	if _, err := New(bad2, clock, web); err == nil {
		t.Error("bad cluster config accepted")
	}
}

func TestStatsDerived(t *testing.T) {
	var s Stats
	if s.HitRatio() != 0 || s.MeanLatency() != 0 {
		t.Error("empty stats ratios")
	}
	s = Stats{Requests: 4, Hits: 1, LatencyTotal: 100}
	if s.HitRatio() != 0.25 || s.MeanLatency() != 25 {
		t.Errorf("stats = %v %v", s.HitRatio(), s.MeanLatency())
	}
}

func TestMinePathsOnEmptyLog(t *testing.T) {
	w, _, _ := fixture(t, nil)
	rep, err := w.MinePaths()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != 0 || rep.Paths != 0 || rep.LogicalPages != 0 {
		t.Errorf("empty-log mine report = %+v", rep)
	}
}

func TestMaintainWithoutFeeds(t *testing.T) {
	w, g, clock := fixture(t, nil)
	w.Get("u", g.PageURLs[0])
	clock.Advance(3600)
	rep, err := w.Maintain()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Prefetched != 0 || len(rep.Bursts) != 0 {
		t.Errorf("feedless maintain report = %+v", rep)
	}
	// Maintain is idempotent when nothing changed.
	if _, err := w.Maintain(); err != nil {
		t.Fatal(err)
	}
}

func TestMinePathsIdempotent(t *testing.T) {
	w, g, clock := fixture(t, func(c *Config) { c.Miner.MinSupport = 2 })
	entry := g.PageURLs[0]
	p0, _ := g.Web.Lookup(entry)
	if len(p0.Anchors) == 0 {
		t.Skip("no links")
	}
	second := p0.Anchors[0].Target
	for i := 0; i < 3; i++ {
		w.Get("bob", entry)
		clock.Advance(3)
		w.Get("bob", second)
		clock.Advance(3000)
	}
	r1, err := w.MinePaths()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := w.MinePaths()
	if err != nil {
		t.Fatal(err)
	}
	if r2.LogicalPages != 0 {
		t.Errorf("second mine created %d new logical pages", r2.LogicalPages)
	}
	if r1.Paths != r2.Paths {
		t.Errorf("path counts differ: %d vs %d", r1.Paths, r2.Paths)
	}
}
