package warehouse

import (
	"context"
	"errors"
	"fmt"

	"cbfww/internal/constraint"
	"cbfww/internal/core"
	"cbfww/internal/logmine"
	"cbfww/internal/object"
	"cbfww/internal/priority"
	"cbfww/internal/simweb"
	"cbfww/internal/storage"
	"cbfww/internal/version"
)

// GetResult reports how a request was served.
type GetResult struct {
	// Page is the content served (possibly a stale cached copy under weak
	// consistency).
	Page simweb.Page
	// Hit reports whether the warehouse served it without an origin fetch.
	Hit bool
	// Source names where the body came from: "memory", "disk", "tertiary",
	// "origin", or "peer" (admitted from another cluster node's copy).
	Source string
	// Latency is the user-visible cost in ticks.
	Latency core.Duration
	// Priority is the page's current admission priority.
	Priority core.Priority
	// Explanation shows how the priority was derived (fresh admissions
	// only).
	Explanation priority.Explanation
	// Stale marks content known to lag the origin (weak consistency).
	Stale bool
}

// Get serves url for user: the warehouse's fetch-through path. An empty
// user is allowed (anonymous access skips profile updates).
func (w *Warehouse) Get(user, url string) (GetResult, error) {
	out, _, err := w.get(context.Background(), user, url, false, false)
	return out, err
}

// GetCtx is Get bounded by a context: cancellation or deadline expiry
// aborts origin fetches (a ContextOrigin aborts mid-flight; any other
// Origin is checked before each fetch). This is the entry point network
// daemons use to enforce per-request deadlines.
func (w *Warehouse) GetCtx(ctx context.Context, user, url string) (GetResult, error) {
	out, _, err := w.get(ctx, user, url, false, false)
	return out, err
}

// Prefetch pulls url into the warehouse without a user request (Topic
// Sensor-driven anticipation). It never counts as a request in Stats.
func (w *Warehouse) Prefetch(url string) error {
	_, _, err := w.get(context.Background(), "", url, true, false)
	return err
}

// Refresh forces a resident page's content to be refetched from the
// origin, bypassing the consistency schedule. When the origin fails and a
// readable copy exists, the copy is served marked stale — the warehouse
// never loses what it admitted. Refresh does not count as a user request.
func (w *Warehouse) Refresh(ctx context.Context, url string) (GetResult, error) {
	sh := w.shardOf(url)
	sh.lock()
	defer sh.mu.Unlock()
	st := sh.pages[url]
	if st == nil {
		return GetResult{}, fmt.Errorf("warehouse: refresh %q: %w", url, core.ErrNotFound)
	}
	out, _, err := w.refetch(ctx, sh, "", url, st, true, false)
	return out, err
}

// get is the shared body of every serve entry point. With stream set, the
// returned GetResult carries an empty Page.Body and the body arrives via
// the BodyStream (which the caller must Close); without it the page is
// materialized as always and the stream is nil.
func (w *Warehouse) get(ctx context.Context, user, url string, prefetch, stream bool) (GetResult, *BodyStream, error) {
	sh := w.shardOf(url)
	sh.lock()
	now := w.clock.Now()

	if st := sh.pages[url]; st != nil {
		defer sh.mu.Unlock()
		// Resident: consistency check first.
		fresh := true
		if w.cfg.Consistency.NeedsCheck(st.lastCheck, now, core.Duration(st.updateGap), w.tracker.AgedFrequency(st.physID)) {
			ver, mod, err := w.originHead(ctx, url)
			if err != nil {
				// Dead origin: the copy-control promise (§5.2) — serve the
				// admitted copy, marked stale since freshness is unknowable.
				if out, bs, ok := w.serveStale(sh, user, url, st, prefetch, stream); ok {
					return out, bs, nil
				}
				// The local copy is unreadable too; fall through to the
				// refetch path, which surfaces the origin error.
				fresh = false
			} else {
				if !prefetch {
					sh.stats.Revalidations++
				}
				st.lastCheck = now
				if ver != st.version {
					fresh = false
					_ = mod
				}
			}
		}
		if fresh {
			return w.serveResident(ctx, sh, user, url, st, prefetch, stream)
		}
		// Content changed: refetch and re-admit the new version.
		if !prefetch {
			sh.stats.Refetches++
		}
		return w.refetch(ctx, sh, user, url, st, prefetch, stream)
	}
	sh.mu.Unlock()

	// First sight of this URL: fetch it outside the shard lock so cold
	// misses proceed in parallel even within one stripe (the gateway's
	// singleflight already coalesces same-URL misses), then retake the
	// lock to admit the result. In a cluster the miss checks peers before
	// the origin (local → peer → origin), so an object admitted anywhere
	// costs the origin exactly one fetch.
	fr, src, err := w.missFetch(ctx, url)
	if err != nil {
		return GetResult{}, nil, fmt.Errorf("warehouse: fetch %q: %w", url, err)
	}
	sh.lock()
	defer sh.mu.Unlock()
	if !prefetch {
		if src == sourcePeer {
			sh.stats.PeerFetches++
		} else {
			sh.stats.OriginFetches++
		}
	}
	if st := sh.pages[url]; st != nil {
		// A concurrent request admitted the URL while we were fetching:
		// serve the resident copy and drop our duplicate fetch.
		return w.serveResident(ctx, sh, user, url, st, prefetch, stream)
	}
	out, err := w.admitNew(sh, user, url, fr, src, prefetch)
	if err != nil {
		return GetResult{}, nil, err
	}
	var bs *BodyStream
	if stream {
		bs = materializedBody(out.Page.Body)
		out.Page.Body = ""
	}
	return out, bs, nil
}

// Miss-fetch provenance: where a first-sight page's bytes came from.
const (
	sourceOrigin  = "origin"
	sourcePeer    = "peer"
	sourceReplica = "replica" // pushed by a replica-set peer via /peer/put
)

// missFetch resolves a cold miss: a configured peer source (the cluster
// tier) is consulted first for a copy some other node already admitted;
// the origin is the fallback and the only party that can fail the fetch.
func (w *Warehouse) missFetch(ctx context.Context, url string) (simweb.FetchResult, string, error) {
	if ps := w.peerSource(); ps != nil {
		if fr, ok := ps.FetchResident(ctx, url); ok {
			return fr, sourcePeer, nil
		}
	}
	fr, err := w.originFetch(ctx, url)
	return fr, sourceOrigin, err
}

// GetResident serves url only when a readable copy is already admitted:
// no origin contact, no peer probes, no consistency check. This is the
// serve path behind the cluster's resident-only peer probes — the remote
// side of "check peers before the origin" — so it must never recurse
// into another fetch. The serve still counts as a request and feeds
// usage tracking: cluster-internal demand is still demand.
func (w *Warehouse) GetResident(user, url string) (GetResult, bool) {
	out, _, ok := w.getResident(user, url, false)
	return out, ok
}

// getResident is the shared body of GetResident and GetResidentStream.
func (w *Warehouse) getResident(user, url string, stream bool) (GetResult, *BodyStream, bool) {
	sh := w.shardOf(url)
	sh.lock()
	defer sh.mu.Unlock()
	st := sh.pages[url]
	if st == nil {
		return GetResult{}, nil, false
	}
	res, page, bs, err := w.readResident(st, url, stream)
	if err != nil {
		return GetResult{}, nil, false
	}
	out := GetResult{
		Page:    page,
		Hit:     true,
		Source:  res.Tier.String(),
		Latency: res.Latency,
		Stale:   res.Stale,
	}
	out.Priority, _ = w.store.Priority(st.container)
	w.afterServe(sh, user, url, st, out, false)
	return out, bs, true
}

// readResident fetches st's container and decodes it, materialized or
// streaming. In stream mode the returned page carries an empty Body and
// the BodyStream holds the bytes — tier-backed when the blob is in the
// streamable format, buffered (the codec-era fallback) otherwise. The
// access is counted either way; on error no stream is returned.
func (w *Warehouse) readResident(st *pageState, url string, stream bool) (storage.AccessResult, simweb.Page, *BodyStream, error) {
	if !stream {
		res, data, err := w.store.Fetch(st.container)
		if err != nil {
			return res, simweb.Page{}, nil, err
		}
		page, err := decodePagePayload(url, data)
		return res, page, nil, err
	}
	res, br, err := w.store.FetchStream(st.container)
	if err != nil {
		return res, simweb.Page{}, nil, err
	}
	if br == nil { // containers always carry payload; treat as lost bytes
		return res, simweb.Page{}, nil, fmt.Errorf("warehouse: body of %q: %w", url, core.ErrNotFound)
	}
	page, bodyLen, slack, streamed, err := decodePageStream(url, br)
	if err != nil {
		br.Close()
		return res, simweb.Page{}, nil, err
	}
	bs := &BodyStream{n: bodyLen}
	if streamed {
		bs.br = br
		bs.rem = bodyLen
		bs.slack = slack > 0
	} else {
		br.Close()
		bs.body = page.Body
		page.Body = ""
	}
	return res, page, bs, nil
}

// serveResident serves a warehouse-resident page. Requires sh.mu (write),
// where sh is the shard owning url.
func (w *Warehouse) serveResident(ctx context.Context, sh *shard, user, url string, st *pageState, prefetch, stream bool) (GetResult, *BodyStream, error) {
	res, page, bs, err := w.readResident(st, url, stream)
	if err != nil {
		// The body was lost (tier failures without recovery) or unreadable
		// (corruption); fall back to the origin path.
		return w.refetch(ctx, sh, user, url, st, prefetch, stream)
	}
	if page.Version < st.version {
		// The bytes lag what this warehouse already served — a tier loss
		// was recovered from an older tertiary backup. Refetch current
		// content (the origin failing degrades to the stale copy below).
		bs.Close()
		return w.refetch(ctx, sh, user, url, st, prefetch, stream)
	}
	out := GetResult{
		Page:    page,
		Hit:     true,
		Source:  res.Tier.String(),
		Latency: res.Latency,
		Stale:   res.Stale,
	}
	out.Priority, _ = w.store.Priority(st.container)
	w.afterServe(sh, user, url, st, out, prefetch)
	return out, bs, nil
}

// serveStale serves a resident page known (or suspected) to lag the
// origin — the degraded mode behind the copy-control promise: once
// admitted, content outlives its origin. Returns false when no readable
// copy exists (lost tiers, corrupt blob). Requires sh.mu (write).
func (w *Warehouse) serveStale(sh *shard, user, url string, st *pageState, prefetch, stream bool) (GetResult, *BodyStream, bool) {
	res, page, bs, err := w.readResident(st, url, stream)
	if err != nil {
		return GetResult{}, nil, false
	}
	out := GetResult{
		Page:    page,
		Hit:     true,
		Source:  res.Tier.String(),
		Latency: res.Latency,
		Stale:   true,
	}
	out.Priority, _ = w.store.Priority(st.container)
	sh.stats.StaleServes++
	w.afterServe(sh, user, url, st, out, prefetch)
	return out, bs, true
}

// refetch replaces a resident page's content with the origin's current
// version. A failing origin degrades to the stale resident copy when one
// is readable. Requires sh.mu (write).
func (w *Warehouse) refetch(ctx context.Context, sh *shard, user, url string, st *pageState, prefetch, stream bool) (GetResult, *BodyStream, error) {
	fr, err := w.originFetch(ctx, url)
	if err != nil {
		if out, bs, ok := w.serveStale(sh, user, url, st, prefetch, stream); ok {
			return out, bs, nil
		}
		return GetResult{}, nil, fmt.Errorf("warehouse: refetch %q: %w", url, err)
	}
	if !prefetch {
		sh.stats.OriginFetches++
	}
	p := fr.Page
	if err := w.absorbContent(sh, st, url, &p); err != nil {
		return GetResult{}, nil, err
	}
	out := GetResult{
		Page:    p,
		Hit:     false,
		Source:  "origin",
		Latency: fr.Latency,
	}
	out.Priority, _ = w.store.Priority(st.container)
	w.afterServe(sh, user, url, st, out, prefetch)
	w.appendLog(user, url, out, true)
	// Fresh content propagates to the rest of the replica set.
	if rep := w.replicator(); rep != nil {
		rep(url, p)
	}
	var bs *BodyStream
	if stream {
		bs = materializedBody(out.Page.Body)
		out.Page.Body = ""
	}
	return out, bs, nil
}

// absorbContent replaces a resident page's content with p: consistency
// bookkeeping, model vector, indexes, version history, and the stored
// bytes. Shared by origin refetches and replica pushes — the two ways a
// resident page's content legitimately changes. Requires sh.mu (write).
func (w *Warehouse) absorbContent(sh *shard, st *pageState, url string, p *simweb.Page) error {
	// Update-gap EMA from observed modification times.
	if st.lastMod != core.TimeNever && p.LastMod.After(st.lastMod) {
		gap := float64(p.LastMod.Sub(st.lastMod))
		if st.updateGap == 0 {
			st.updateGap = gap
		} else {
			st.updateGap = 0.7*st.updateGap + 0.3*gap
		}
	}
	st.lastMod = p.LastMod
	st.lastCheck = w.clock.Now()
	oldVersion := st.version
	st.version = p.Version
	st.vec = w.corpus.WeightedVector(p.Title, p.Body, w.cfg.Omega)
	st.anchors = anchorMap(p.Anchors)

	// Content changed: re-index, capture version, refresh storage copy.
	// A page already in the hot segment keeps its membership but needs the
	// new content; no residency event fires for an in-place rewrite, so
	// re-index it here (the shard lock is held).
	w.index.Index(st.physID, p.Title+"\n"+p.Body)
	if st.inHotIndex {
		sh.hotIndex.Index(st.physID, p.Title+"\n"+p.Body)
	}
	if err := w.history.Capture(url, version.Snapshot{
		Version: p.Version, Time: w.clock.Now(),
		Title: p.Title, Body: p.Body, Size: p.Size,
	}); err != nil {
		return err
	}
	payload := encodePagePayload(p)
	switch serr := w.store.UpdateBytes(st.container, p.Version, payload); {
	case serr == nil:
	case errors.Is(serr, core.ErrInvalid):
		// Storage already holds this version or newer; its bytes stand.
	case errors.Is(serr, core.ErrNotFound):
		// The container was lost from storage outright (unrecovered tier
		// failure): re-admit so the copy-control promise holds again.
		if err := w.store.AdmitBytes(st.container, sizeOrOne(p.Size), p.Version, st.admissionPriority, payload); err != nil && !errors.Is(err, core.ErrExists) {
			return err
		}
	default:
		return serr
	}
	if p.Version > oldVersion {
		w.tracker.Modify(st.physID)
	}
	return nil
}

// AdmitReplica absorbs a payload a replica-set peer pushed via /peer/put.
// It never contacts the origin and never re-fires the replication hook
// (no replication storms). Returns whether the payload was taken: a
// resident copy at the same or newer version stands untouched; a resident
// older copy is updated in place; a cold URL runs the full admission path
// (which may still refuse on admission constraints).
func (w *Warehouse) AdmitReplica(url string, fr simweb.FetchResult) (bool, error) {
	sh := w.shardOf(url)
	sh.lock()
	defer sh.mu.Unlock()
	p := fr.Page
	if st := sh.pages[url]; st != nil {
		if p.Version <= st.version {
			return false, nil
		}
		if err := w.absorbContent(sh, st, url, &p); err != nil {
			return false, err
		}
		sh.stats.ReplicaAdmits++
		return true, nil
	}
	if _, err := w.admitNew(sh, "", url, fr, sourceReplica, true); err != nil {
		return false, err
	}
	return sh.pages[url] != nil, nil
}

// admitNew runs the full admission path for a first-seen URL whose content
// has already been fetched (the fetch happens outside the shard lock; see
// get). src names where the bytes came from — "origin" or "peer" — and
// flows to GetResult.Source. Requires sh.mu (write).
func (w *Warehouse) admitNew(sh *shard, user, url string, fr simweb.FetchResult, src string, prefetch bool) (GetResult, error) {
	p := fr.Page

	out := GetResult{Page: p, Hit: false, Source: src, Latency: fr.Latency}

	// Constraint Manager: may refuse warehousing; the user still gets the
	// page (pass-through), the warehouse just won't keep it.
	cand := constraint.Candidate{URL: url, Size: p.TotalSize()}
	if err := w.cfg.Admission.Check(cand); err != nil {
		sh.stats.Rejected++
		if !prefetch {
			w.countRequest(sh, out)
		}
		w.appendLog(user, url, out, false)
		return out, nil
	}

	// Content model: §5.3 weighted vector, admission priority, region.
	vec := w.corpus.WeightedVector(p.Title, p.Body, w.cfg.Omega)
	prio, exp := w.prios.AdmissionPriority(vec)
	out.Priority, out.Explanation = prio, exp

	// Object hierarchy: physical page + raw objects. The body goes to the
	// storage tiers, not the heap: hierarchy objects carry a lazy loader
	// that reads it back from whatever tier holds the container's bytes.
	phys, err := w.builder.AddPhysicalPage(&p, w.bodyLoader(url))
	if err != nil {
		return GetResult{}, err
	}
	container, _ := w.objects.ByKey(object.KindRaw, url)

	st := &pageState{
		physID:            phys.ID,
		container:         container.ID,
		version:           p.Version,
		vec:               vec,
		region:            w.regions.Assign(clusterPoint(phys.ID, vec)),
		lastCheck:         w.clock.Now(),
		lastMod:           p.LastMod,
		admissionPriority: prio,
		anchors:           anchorMap(p.Anchors),
	}

	// Storage: container + components enter with the page's priority. The
	// page is published to the shard map only afterwards, so cross-shard
	// sweeps (tertiary clustering, priority application) never see a page
	// whose container the Storage Manager does not know yet. The event
	// route is registered first — Admit's placement pass emits the first
	// residency events, and the shard lock held here parks their
	// application until the page is published below.
	w.pageOfContainer.Store(container.ID, url)
	if err := w.store.AdmitBytes(container.ID, sizeOrOne(p.Size), p.Version, prio, encodePagePayload(&p)); err != nil && !errors.Is(err, core.ErrExists) {
		return GetResult{}, err
	}
	for _, c := range p.Components {
		comp, ok := w.objects.ByKey(object.KindRaw, c.URL)
		if !ok {
			continue
		}
		if err := w.store.Admit(comp.ID, sizeOrOne(c.Size), 1, prio); err != nil && !errors.Is(err, core.ErrExists) {
			return GetResult{}, err
		}
	}

	sh.pages[url] = st

	// Indexes, versions, topic model.
	w.index.Index(phys.ID, p.Title+"\n"+p.Body)
	if err := w.history.Capture(url, version.Snapshot{
		Version: p.Version, Time: w.clock.Now(),
		Title: p.Title, Body: p.Body, Size: p.Size,
	}); err != nil {
		return GetResult{}, err
	}
	w.topics.Learn(vec, prio)

	w.afterServe(sh, user, url, st, out, prefetch)
	w.appendLog(user, url, out, false)
	if prefetch {
		if src == sourceReplica {
			sh.stats.ReplicaAdmits++
		} else {
			sh.stats.Prefetches++
		}
	}
	// A freshly admitted payload propagates to the rest of the URL's
	// replica set — unless it arrived as a replica push itself (the hook
	// implementation queues and returns; no blocking under the lock).
	if rep := w.replicator(); rep != nil && src != sourceReplica {
		rep(url, p)
	}
	return out, nil
}

// afterServe updates usage, region heat and the user profile, and counts
// the request. Requires sh.mu (write).
func (w *Warehouse) afterServe(sh *shard, user, url string, st *pageState, out GetResult, prefetch bool) {
	if prefetch {
		return
	}
	w.tracker.Touch(st.physID)
	w.tracker.Touch(st.container)
	w.tracker.SetShared(st.container, w.objects.SharedCount(st.container))
	w.prios.RecordAccess(st.region)
	if user != "" {
		w.social.ObserveVisit(user, st.physID, st.vec)
	}
	w.countRequest(sh, out)
	if out.Hit {
		w.appendLog(user, url, out, false)
	}
}

func (w *Warehouse) countRequest(sh *shard, out GetResult) {
	sh.stats.Requests++
	sh.stats.LatencyTotal += out.Latency
	if out.Hit {
		sh.stats.Hits++
		if out.Source == storage.Memory.String() {
			sh.stats.MemoryHits++
		}
	}
}

// appendLog records the access in the warehouse's operational log
// ("Operational data (logs) are also stored for priority management and
// performance improvement"). The log has its own mutex so appends from
// different shards keep a single total order — sessionization and path
// mining depend on per-user access order across the whole warehouse.
func (w *Warehouse) appendLog(user, url string, out GetResult, modified bool) {
	rec := logmine.Record{
		Time:     w.clock.Now(),
		User:     user,
		URL:      url,
		Status:   200,
		Bytes:    out.Page.Size,
		Modified: modified,
	}
	w.logMu.Lock()
	w.log = append(w.log, rec)
	w.logMu.Unlock()
}

func sizeOrOne(b core.Bytes) core.Bytes {
	if b <= 0 {
		return 1
	}
	return b
}

// anchorMap indexes a page's outgoing anchors by target URL. When several
// anchors share a target, the first wins (the primary link).
func anchorMap(anchors []simweb.Anchor) map[string]string {
	m := make(map[string]string, len(anchors))
	for _, a := range anchors {
		if _, dup := m[a.Target]; !dup {
			m[a.Target] = a.Text
		}
	}
	return m
}
