package warehouse

// Degraded-mode tests: a failing origin must never take down content the
// warehouse already admitted (the §5.2 copy-control promise). Serves from
// a dead origin degrade to the resident copy, marked Stale.

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"cbfww/internal/constraint"
	"cbfww/internal/core"
	"cbfww/internal/simweb"
)

var errOriginDown = errors.New("origin down")

// flakyOrigin wraps a simulated web with a kill switch and a per-URL
// failure set.
type flakyOrigin struct {
	web  *simweb.Web
	down atomic.Bool

	mu       sync.Mutex
	deadURLs map[string]bool
	fetches  int
}

func newFlakyOrigin(web *simweb.Web) *flakyOrigin {
	return &flakyOrigin{web: web, deadURLs: make(map[string]bool)}
}

func (o *flakyOrigin) kill(url string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.deadURLs[url] = true
}

func (o *flakyOrigin) check(url string) error {
	if o.down.Load() {
		return errOriginDown
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.fetches++
	if o.deadURLs[url] {
		return errOriginDown
	}
	return nil
}

func (o *flakyOrigin) Fetch(url string) (simweb.FetchResult, error) {
	if err := o.check(url); err != nil {
		return simweb.FetchResult{}, err
	}
	return o.web.Fetch(url)
}

// Head fails only on a full outage (down), not on per-URL kills: a dead
// page's HEAD may well succeed while its GET errors mid-transfer.
func (o *flakyOrigin) Head(url string) (int, core.Time, error) {
	if o.down.Load() {
		return 0, 0, errOriginDown
	}
	return o.web.Head(url)
}

func (o *flakyOrigin) FetchCtx(ctx context.Context, url string) (simweb.FetchResult, error) {
	if err := ctx.Err(); err != nil {
		return simweb.FetchResult{}, err
	}
	return o.Fetch(url)
}

func (o *flakyOrigin) HeadCtx(ctx context.Context, url string) (int, core.Time, error) {
	if err := ctx.Err(); err != nil {
		return 0, 0, err
	}
	return o.Head(url)
}

// degradedFixture builds a strong-consistency warehouse (every hit
// revalidates at the origin) over a small web behind a flaky origin.
func degradedFixture(t *testing.T) (*Warehouse, *flakyOrigin, *simweb.Web) {
	t.Helper()
	clock := core.NewSimClock(0)
	web := simweb.NewWeb(clock)
	web.AddSite("s.example", 30)
	pages := []*simweb.Page{
		{URL: "http://s.example/a", Title: "alpha page", Body: "warehouse content one", Size: core.KB},
		{URL: "http://s.example/b", Title: "beta page", Body: "warehouse content two", Size: core.KB},
	}
	for _, p := range pages {
		if err := web.AddPage(p); err != nil {
			t.Fatal(err)
		}
	}
	origin := newFlakyOrigin(web)
	cfg := DefaultConfig()
	cfg.Consistency = constraint.Consistency{Mode: constraint.Strong}
	w, err := New(cfg, clock, origin)
	if err != nil {
		t.Fatal(err)
	}
	return w, origin, web
}

func TestStaleServeWhenOriginDies(t *testing.T) {
	w, origin, _ := degradedFixture(t)
	url := "http://s.example/a"
	if _, err := w.Get("u", url); err != nil {
		t.Fatalf("admit: %v", err)
	}

	origin.down.Store(true)

	res, err := w.Get("u", url)
	if err != nil {
		t.Fatalf("degraded get: %v", err)
	}
	if !res.Stale {
		t.Error("degraded serve not marked Stale")
	}
	if !res.Hit {
		t.Error("degraded serve not counted as a hit")
	}
	if res.Page.Title != "alpha page" {
		t.Errorf("degraded serve title = %q", res.Page.Title)
	}
	if got := w.Stats().StaleServes; got != 1 {
		t.Errorf("StaleServes = %d, want 1", got)
	}

	// Unadmitted content has no copy to fall back on: the error stands.
	if _, err := w.Get("u", "http://s.example/b"); !errors.Is(err, errOriginDown) {
		t.Fatalf("unadmitted get err = %v, want origin error", err)
	}

	// Recovery: the origin returns and serves resume fresh.
	origin.down.Store(false)
	res, err = w.Get("u", url)
	if err != nil {
		t.Fatalf("recovered get: %v", err)
	}
	if res.Stale {
		t.Error("recovered serve still marked Stale")
	}
}

func TestRefetchFailureDegradesToStaleCopy(t *testing.T) {
	w, origin, web := degradedFixture(t)
	url := "http://s.example/a"
	if _, err := w.Get("u", url); err != nil {
		t.Fatalf("admit: %v", err)
	}

	// The origin's HEAD succeeds and reports new content, but the refetch
	// GET fails: still a stale serve, not an error.
	if err := web.Update(url, "changed terms"); err != nil {
		t.Fatal(err)
	}
	origin.kill(url)

	res, err := w.Get("u", url)
	if err != nil {
		t.Fatalf("refetch-degraded get: %v", err)
	}
	if !res.Stale {
		t.Error("refetch failure did not degrade to stale copy")
	}
	if strings.Contains(res.Page.Body, "changed terms") {
		t.Error("stale serve returned content the warehouse never fetched")
	}
}

func TestRefreshForcesRefetchAndDegrades(t *testing.T) {
	w, origin, web := degradedFixture(t)
	url := "http://s.example/a"
	if _, err := w.Get("u", url); err != nil {
		t.Fatalf("admit: %v", err)
	}

	// Healthy origin: Refresh picks up new content immediately.
	if err := web.Update(url, "freshly minted words"); err != nil {
		t.Fatal(err)
	}
	res, err := w.Refresh(context.Background(), url)
	if err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	if res.Stale || res.Page.Version != 2 {
		t.Fatalf("refresh result stale=%v version=%d, want fresh v2", res.Stale, res.Page.Version)
	}

	// Dead origin: Refresh degrades to the admitted copy.
	origin.down.Store(true)
	res, err = w.Refresh(context.Background(), url)
	if err != nil {
		t.Fatalf("degraded Refresh: %v", err)
	}
	if !res.Stale || res.Page.Version != 2 {
		t.Fatalf("degraded refresh stale=%v version=%d, want stale v2", res.Stale, res.Page.Version)
	}

	// Refresh of something never admitted is an honest not-found.
	if _, err := w.Refresh(context.Background(), "http://s.example/nope"); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("refresh of unadmitted url err = %v", err)
	}
}

func TestStaleServeRespectsCancelledContext(t *testing.T) {
	w, origin, _ := degradedFixture(t)
	url := "http://s.example/a"
	if _, err := w.Get("u", url); err != nil {
		t.Fatalf("admit: %v", err)
	}
	origin.down.Store(true)

	// Even degraded serves flow through GetCtx; an already-dead context
	// still short-circuits at the origin probe and then degrades — the
	// resident copy is in-process, so serving it needs no origin budget.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := w.GetCtx(ctx, "u", url)
	if err != nil {
		t.Fatalf("GetCtx on cancelled ctx: %v", err)
	}
	if !res.Stale {
		t.Error("cancelled-ctx degraded serve not marked stale")
	}
}

// TestSearchWithFallbackFlakyOrigin covers the §3(1) feedback loop against
// an origin that errors on some link targets: dead links are skipped
// without aborting the loop, and Fetched/Rounds stay accurate.
func TestSearchWithFallbackFlakyOrigin(t *testing.T) {
	clock := core.NewSimClock(0)
	web := simweb.NewWeb(clock)
	web.AddSite("h.example", 50)
	pages := []*simweb.Page{
		{
			URL: "http://h.example/hub", Title: "City portal", Body: "directory of services",
			Size: core.KB,
			Anchors: []simweb.Anchor{
				{Text: "Gion festival parade schedule", Target: "http://h.example/festival"},
				{Text: "Festival parade photographs", Target: "http://h.example/photos"},
				{Text: "Festival parade route map", Target: "http://h.example/map"},
			},
		},
		{
			URL: "http://h.example/festival", Title: "Gion festival 2003",
			Body: "the festival parade passes through the city center", Size: core.KB,
		},
		{
			URL: "http://h.example/photos", Title: "Parade photographs",
			Body: "photographs of the festival parade floats", Size: core.KB,
		},
		{
			URL: "http://h.example/map", Title: "Parade route",
			Body: "the parade route crosses the river", Size: core.KB,
		},
	}
	for _, p := range pages {
		if err := web.AddPage(p); err != nil {
			t.Fatal(err)
		}
	}
	origin := newFlakyOrigin(web)
	// Two of the three matching link targets error at the origin.
	origin.kill("http://h.example/festival")
	origin.kill("http://h.example/map")

	w, err := New(DefaultConfig(), clock, origin)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Get("u", "http://h.example/hub"); err != nil {
		t.Fatalf("admit hub: %v", err)
	}

	res, err := w.SearchWithFallback("festival parade", 2, 5)
	if err != nil {
		t.Fatalf("SearchWithFallback: %v", err)
	}
	// The loop must survive the two failures and still land the live page.
	fetched := map[string]bool{}
	for _, u := range res.Fetched {
		fetched[u] = true
	}
	if !fetched["http://h.example/photos"] {
		t.Errorf("live target not fetched: %v", res.Fetched)
	}
	if fetched["http://h.example/festival"] || fetched["http://h.example/map"] {
		t.Errorf("dead targets reported as fetched: %v", res.Fetched)
	}
	// Fetched lists exactly the successful pulls: every entry resident.
	for _, u := range res.Fetched {
		if !w.Resident(u) {
			t.Errorf("Fetched reports %q but it is not resident", u)
		}
	}
	if res.Rounds < 1 {
		t.Errorf("Rounds = %d, want >= 1", res.Rounds)
	}
	// The live page is now searchable.
	if got := w.Search("photographs", 3); len(got) == 0 {
		t.Error("fetched page not indexed")
	}
}
