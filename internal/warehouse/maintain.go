package warehouse

import (
	"fmt"
	"sort"

	"cbfww/internal/cluster"
	"cbfww/internal/core"
	"cbfww/internal/logmine"
	"cbfww/internal/object"
	"cbfww/internal/text"
	"cbfww/internal/topic"
)

func clusterPoint(id core.ObjectID, vec text.Vector) cluster.Point {
	return cluster.Point{ID: id, Vec: vec}
}

// MineReport summarizes one MinePaths run.
type MineReport struct {
	Sessions     int
	Paths        int
	LogicalPages int
	Regions      int
}

// MinePaths runs the Logical Page Manager's discovery pass: sessionize the
// operational log, mine frequently traversed paths, promote them to
// logical page objects with §5.3 content assembly, cluster the logical
// documents into semantic regions, and hand the path set to the
// Recommendation Manager.
func (w *Warehouse) MinePaths() (MineReport, error) {
	sessions := logmine.Sessionize(w.AccessLog(), w.cfg.SessionTimeout)
	paths := logmine.MaximalOnly(logmine.MinePaths(sessions, w.cfg.Miner))
	rep := MineReport{Sessions: len(sessions), Paths: len(paths)}

	for _, path := range paths {
		steps, ok := w.pathSteps(path)
		if !ok {
			continue
		}
		logical, err := w.builder.AddLogicalPage(steps)
		if err != nil {
			return rep, fmt.Errorf("warehouse: mine: %w", err)
		}
		// §5.3: cluster the logical document's weighted vector into a
		// semantic region, then reflect the region in the hierarchy.
		vec := w.corpus.WeightedVector(logical.Title, logical.BodyText(), w.cfg.Omega)
		idx := w.regions.Assign(clusterPoint(logical.ID, vec))
		name := fmt.Sprintf("region-%03d", idx)
		if _, err := w.builder.AddRegion(name, []core.ObjectID{logical.ID}); err != nil {
			return rep, fmt.Errorf("warehouse: mine: %w", err)
		}
		regionObj, _ := w.objects.ByKey(object.KindRegion, name)

		w.metaMu.Lock()
		if _, seen := w.logicalSupport[logical.ID]; !seen {
			rep.LogicalPages++
		}
		w.logicalSupport[logical.ID] = path.Support
		w.regionObjOf[idx] = regionObj.ID
		w.metaMu.Unlock()

		// Index the logical document so MENTION queries reach it.
		w.index.Index(logical.ID, logical.Title+"\n"+logical.BodyText())
	}
	rep.Regions = w.regions.Len()
	w.social.SetPaths(paths)
	return rep, nil
}

// pathSteps converts a mined URL path into builder steps, attaching the
// anchor texts the warehouse recorded at admission. Paths touching pages
// the warehouse never admitted are skipped. Each URL's anchors are read
// under its own shard lock.
func (w *Warehouse) pathSteps(p logmine.Path) ([]object.PathStep, bool) {
	steps := make([]object.PathStep, len(p.URLs))
	for i, url := range p.URLs {
		next := ""
		if i+1 < len(p.URLs) {
			next = p.URLs[i+1]
		}
		anchor, resident := w.anchorText(url, next)
		if !resident {
			return nil, false
		}
		steps[i] = object.PathStep{URL: url, AnchorText: anchor}
	}
	return steps, true
}

// anchorText returns the anchor text the page at url recorded for target
// at admission ("" when none, or when target is ""), and whether url is
// resident at all.
func (w *Warehouse) anchorText(url, target string) (anchor string, resident bool) {
	sh := w.shardOf(url)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	st, ok := sh.pages[url]
	if !ok {
		return "", false
	}
	return st.anchors[target], true
}

// MaintainReport summarizes one maintenance sweep.
type MaintainReport struct {
	Bursts     []topic.Burst
	Prefetched int
	Migrations int
}

// Maintain runs the warehouse's periodic self-organization: poll the Topic
// Sensor and boost bursting terms, prefetch event pages announced by the
// news feeds, decay the topic and region-heat models, recompute all object
// priorities through the structural rule, re-place storage and refresh
// backups.
func (w *Warehouse) Maintain() (MaintainReport, error) {
	var rep MaintainReport

	// Sensor poll + topic boost (locks inside the components, not w.mu).
	rep.Bursts = w.sensor.FeedInto(w.topics, w.cfg.TopicGain)

	// Article-driven prefetch: the sensor's purpose is the "realization of
	// prefetching operations" — event pages enter the warehouse before the
	// request wave.
	now := w.clock.Now()
	w.metaMu.Lock()
	var candidates []string
	for _, f := range w.feeds {
		for _, a := range f.Since(w.lastPrefetchPoll, now) {
			if a.URL != "" {
				candidates = append(candidates, a.URL)
			}
		}
	}
	w.lastPrefetchPoll = now
	w.metaMu.Unlock()
	for _, u := range candidates {
		if w.Resident(u) {
			continue
		}
		if err := w.Prefetch(u); err == nil {
			rep.Prefetched++
		}
	}

	w.topics.Decay(w.cfg.TopicDecayFactor)
	w.prios.DecayAll()

	before := w.store.Stats().Migrations
	w.applyPriorities()
	w.store.Backup()
	w.clusterTertiary()
	rep.Migrations = w.store.Stats().Migrations - before
	return rep, nil
}

// clusterTertiary lays the tertiary medium out by semantic region (§4.4
// locality of reference): pages of the same region — the ones an analysis
// of a past hot spot retrieves together — sit adjacently on tape. Pages
// are collected shard by shard; admissions racing the sweep just wait for
// the next sweep to be laid out.
func (w *Warehouse) clusterTertiary() {
	byRegion := make(map[int][]core.ObjectID)
	regions := make([]int, 0, 8)
	for _, sh := range w.shards {
		sh.mu.RLock()
		for _, st := range sh.pages {
			if _, seen := byRegion[st.region]; !seen {
				regions = append(regions, st.region)
			}
			byRegion[st.region] = append(byRegion[st.region], st.container)
		}
		sh.mu.RUnlock()
	}
	sort.Ints(regions)
	var order []core.ObjectID
	for _, r := range regions {
		ids := byRegion[r]
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		order = append(order, ids...)
	}
	// Unknown IDs cannot occur (containers always exist); an error here
	// would mean internal inconsistency, so surface it loudly in tests.
	if err := w.store.LayoutTertiary(order); err != nil {
		panic(err)
	}
}

// applyPriorities recomputes every object's priority and re-places
// storage. Base priorities:
//
//   - physical pages: max(admission priority, aged-frequency heat) — the
//     admission estimate until real usage outruns it;
//   - logical pages: mined support, saturating;
//   - semantic regions: the Priority Manager's aged region heat.
//
// The structural rule (max over containers, Fig. 2) then flows these down
// to the raw objects the Storage Manager actually places. The sweep locks
// one shard at a time; pages admitted on already-swept shards while the
// sweep runs simply keep their admission priority until the next sweep.
func (w *Warehouse) applyPriorities() {
	base := make(map[core.ObjectID]core.Priority, w.objects.Len(object.Kind(-1)))
	for _, sh := range w.shards {
		sh.mu.Lock()
		for _, st := range sh.pages {
			f := w.tracker.AgedFrequency(st.physID)
			heat := core.Priority(f / (1 + f))
			// The admission estimate fades with each sweep: once real usage
			// exists it should carry the priority ("priority of an object will
			// be dynamically modified", §4.3 problem (4)).
			st.admissionPriority *= core.Priority(w.cfg.AdmissionDecay)
			p := st.admissionPriority
			if heat > p {
				p = heat
			}
			base[st.physID] = p
		}
		sh.mu.Unlock()
	}
	w.metaMu.RLock()
	for id, support := range w.logicalSupport {
		base[id] = core.Priority(float64(support) / (float64(support) + 5))
	}
	regionObjs := make(map[int]core.ObjectID, len(w.regionObjOf))
	for idx, objID := range w.regionObjOf {
		regionObjs[idx] = objID
	}
	w.metaMu.RUnlock()
	for idx, objID := range regionObjs {
		// RegionHeat takes the Priority Manager's own lock; resolve it
		// outside metaMu to keep lock scopes disjoint.
		base[objID] = core.Priority(w.prios.RegionHeat(idx))
	}
	eff := w.objects.EffectivePriorities(base)

	raws := make(map[core.ObjectID]core.Priority)
	w.objects.ForEach(object.KindRaw, func(o *object.Object) {
		if p, ok := eff[o.ID]; ok {
			raws[o.ID] = p
		}
	})
	w.store.ApplyPriorities(raws)
}

// AccessLog returns a copy of the operational log.
func (w *Warehouse) AccessLog() logmine.Log {
	w.logMu.Lock()
	defer w.logMu.Unlock()
	return append(logmine.Log(nil), w.log...)
}
