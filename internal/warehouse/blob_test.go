package warehouse

import (
	"strings"
	"testing"

	"cbfww/internal/constraint"
)

// A blob-backed warehouse serves identical content through the full
// admission → hit → refetch cycle, with bodies living on disk.
func TestBlobBackedWarehouseEndToEnd(t *testing.T) {
	dir := t.TempDir()
	w, g, clock := fixture(t, func(c *Config) {
		c.BlobDir = dir
		c.Consistency = constraint.Consistency{Mode: constraint.Strong}
	})
	url := g.PageURLs[0]

	r1, err := w.Get("u", url)
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(5)
	r2, err := w.Get("u", url)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Hit {
		t.Fatal("second access missed")
	}
	if r2.Page.Body != r1.Page.Body || r2.Page.Body == "" {
		t.Errorf("blob-backed body mismatch: %q vs %q", trim(r2.Page.Body), trim(r1.Page.Body))
	}

	// Stored snapshots carry refs, not bodies.
	snap, ok := w.Versions().Latest(url)
	if !ok {
		t.Fatal("no snapshot")
	}
	if snap.Body != "" {
		t.Error("stored snapshot has inline body despite blob backend")
	}
	if snap.BodyRef == "" {
		t.Error("stored snapshot has no body ref")
	}

	// Update the origin; strong consistency refetches, and both versions'
	// bodies resolve through the blob store.
	g.Web.Update(url, "brand new paragraph")
	clock.Advance(5)
	r3, err := w.Get("u", url)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r3.Page.Body, "brand new paragraph") {
		t.Error("refetched body missing update")
	}
	d, ok := w.Versions().DiffVersions(url, 1, 2)
	if !ok {
		t.Fatal("diff across blob-backed versions failed")
	}
	if len(d.Added) == 0 {
		t.Errorf("diff found no added terms: %+v", d)
	}
	clock.Advance(5)
	r4, err := w.Get("u", url)
	if err != nil {
		t.Fatal(err)
	}
	if !r4.Hit || !strings.Contains(r4.Page.Body, "brand new paragraph") {
		t.Errorf("hit after refetch: hit=%v", r4.Hit)
	}
}

func trim(s string) string {
	if len(s) > 40 {
		return s[:40]
	}
	return s
}

// Shared media bodies across many pages should deduplicate on disk; here
// identical page bodies (same URL re-captured across versions with no
// change to the body) must not grow the blob store.
func TestBlobDedupAcrossVersions(t *testing.T) {
	dir := t.TempDir()
	w, g, clock := fixture(t, func(c *Config) {
		c.BlobDir = dir
		c.Consistency = constraint.Consistency{Mode: constraint.Strong}
	})
	// Two different pages admitted: two distinct blobs.
	if _, err := w.Get("u", g.PageURLs[0]); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2)
	if _, err := w.Get("u", g.PageURLs[1]); err != nil {
		t.Fatal(err)
	}
	// Re-serving does not add blobs.
	clock.Advance(2)
	for i := 0; i < 5; i++ {
		if _, err := w.Get("u", g.PageURLs[0]); err != nil {
			t.Fatal(err)
		}
		clock.Advance(2)
	}
	if w.Versions().Depth(g.PageURLs[0]) != 1 {
		t.Errorf("depth = %d", w.Versions().Depth(g.PageURLs[0]))
	}
}
