package warehouse

import (
	"sync"
	"sync/atomic"
	"time"

	"cbfww/internal/text"
)

// The warehouse's hot state is lock-striped: every URL hashes (FNV-1a) to
// one of N shards, and each shard owns its slice of the page map, its own
// activity counters and its own segment of the memory-resident detailed
// index. A request for a URL takes exactly one shard lock; requests for
// URLs on different shards never serialize against each other. Cross-shard
// surfaces (Stats, SearchTiered, Maintain, Pages, ...) sweep the shards
// one at a time and aggregate — there is no global warehouse lock left to
// convoy behind.
//
// Every component the shards call into (storage, indexes, tracker, object
// hierarchy, version store, ...) is internally synchronized, so holding
// one shard's lock while calling them is safe; no code path ever holds two
// shard locks at once, so lock ordering is trivially acyclic.

// shard is one lock stripe of the warehouse.
type shard struct {
	// mu guards pages, every pageState reachable from it, and stats.
	mu    sync.RWMutex
	pages map[string]*pageState // by URL
	stats Stats
	// hotIndex is this shard's segment of the §4.1 memory-resident
	// detailed index: it covers exactly the shard's pages whose bodies
	// currently live in the memory tier.
	hotIndex *text.InvertedIndex

	// Contention instrumentation (atomics so readers never need mu):
	// cumulative time spent waiting for the write lock on the request
	// path, and how many acquisitions that covers. The gateway surfaces
	// both per shard so operators can see striping imbalance.
	lockWaitNanos atomic.Int64
	lockAcquires  atomic.Int64
}

// lock takes the shard's write lock, recording how long the caller waited
// for it. All request-path writers come through here so the wait counters
// mean one thing: time lost to same-shard contention.
func (sh *shard) lock() {
	start := time.Now()
	sh.mu.Lock()
	sh.lockWaitNanos.Add(time.Since(start).Nanoseconds())
	sh.lockAcquires.Add(1)
}

// ShardIndex reports which of n stripes a URL hashes to — the same
// FNV-1a mapping the warehouse uses internally. Exported so operators and
// benchmarks can reason about stripe placement (e.g. which pages share a
// stripe with a known-hot URL) without reimplementing the hash.
func ShardIndex(url string, n int) int { return shardIndex(url, n) }

// shardIndex hashes a URL to a stripe with FNV-1a (inlined to avoid the
// hash.Hash32 allocation on every request).
func shardIndex(url string, n int) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(url); i++ {
		h ^= uint32(url[i])
		h *= prime32
	}
	return int(h % uint32(n))
}

// shardOf returns the stripe owning url.
func (w *Warehouse) shardOf(url string) *shard {
	return w.shards[shardIndex(url, len(w.shards))]
}

// NumShards returns the stripe count the warehouse was built with.
func (w *Warehouse) NumShards() int { return len(w.shards) }

// ShardStat is one stripe's activity snapshot: how much of the page
// population and traffic it carries, and how contended its lock is.
type ShardStat struct {
	Shard         int
	Pages         int
	Requests      int
	Hits          int
	OriginFetches int
	// LockWaitMicros is cumulative time request-path writers spent
	// waiting for this shard's lock; LockAcquires is how many waits that
	// spans. Their ratio is the mean queueing delay on the stripe.
	LockWaitMicros int64
	LockAcquires   int64
}

// ShardStats snapshots every stripe. Shards are read one at a time under
// their own read locks; the result is per-shard consistent, not a global
// atomic snapshot — the same deal every aggregated surface offers.
func (w *Warehouse) ShardStats() []ShardStat {
	out := make([]ShardStat, len(w.shards))
	for i, sh := range w.shards {
		sh.mu.RLock()
		out[i] = ShardStat{
			Shard:         i,
			Pages:         len(sh.pages),
			Requests:      sh.stats.Requests,
			Hits:          sh.stats.Hits,
			OriginFetches: sh.stats.OriginFetches,
		}
		sh.mu.RUnlock()
		out[i].LockWaitMicros = sh.lockWaitNanos.Load() / 1000
		out[i].LockAcquires = sh.lockAcquires.Load()
	}
	return out
}
