package warehouse

import (
	"errors"
	"testing"

	"cbfww/internal/core"
)

func TestViewsLifecycle(t *testing.T) {
	w, g, clock := fixture(t, nil)
	for _, url := range g.PageURLs[:5] {
		if _, err := w.Get("alice", url); err != nil {
			t.Fatal(err)
		}
		clock.Advance(2)
	}

	const q = "SELECT MFU 3 p.url, p.freq FROM Physical_Page p"
	if err := w.SaveView("alice", "my-top", q); err != nil {
		t.Fatal(err)
	}
	rows, err := w.View("alice", "my-top")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("view rows = %d", len(rows))
	}

	// Views are live: more traffic changes the answer.
	hot := g.PageURLs[4]
	for i := 0; i < 10; i++ {
		w.Get("alice", hot)
		clock.Advance(2)
	}
	rows2, err := w.View("alice", "my-top")
	if err != nil {
		t.Fatal(err)
	}
	if rows2[0].Values[0].Str != hot {
		t.Errorf("view not live: top = %q, want %q", rows2[0].Values[0].Str, hot)
	}

	infos := w.Views("alice")
	if len(infos) != 1 || infos[0].Name != "my-top" || infos[0].Query != q {
		t.Errorf("Views = %+v", infos)
	}
	if got := w.Views("bob"); len(got) != 0 {
		t.Errorf("bob's views = %+v", got)
	}

	if err := w.DropView("alice", "my-top"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.View("alice", "my-top"); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("dropped view err = %v", err)
	}
	if err := w.DropView("alice", "my-top"); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("double drop err = %v", err)
	}
}

func TestSaveViewValidation(t *testing.T) {
	w, _, _ := fixture(t, nil)
	if err := w.SaveView("", "n", "SELECT p.oid FROM Physical_Page p"); !errors.Is(err, core.ErrInvalid) {
		t.Errorf("empty user err = %v", err)
	}
	if err := w.SaveView("u", "", "SELECT p.oid FROM Physical_Page p"); !errors.Is(err, core.ErrInvalid) {
		t.Errorf("empty name err = %v", err)
	}
	if err := w.SaveView("u", "n", "SELECT garbage"); err == nil {
		t.Error("broken query accepted as view")
	}
	// Replacement works.
	if err := w.SaveView("u", "n", "SELECT p.oid FROM Physical_Page p"); err != nil {
		t.Fatal(err)
	}
	if err := w.SaveView("u", "n", "SELECT MRU p.oid FROM Physical_Page p"); err != nil {
		t.Fatal(err)
	}
	if got := w.Views("u"); len(got) != 1 {
		t.Errorf("Views after replace = %+v", got)
	}
}
