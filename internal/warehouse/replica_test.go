package warehouse

import (
	"context"
	"sync"
	"testing"

	"cbfww/internal/constraint"
	"cbfww/internal/simweb"
)

// recordingReplicator captures replication-hook fires.
type recordingReplicator struct {
	mu    sync.Mutex
	fires []string
}

func (r *recordingReplicator) hook(url string, page simweb.Page) {
	r.mu.Lock()
	r.fires = append(r.fires, url)
	r.mu.Unlock()
}

func (r *recordingReplicator) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.fires)
}

// TestReplicatorFiresOnAdmitAndRefetch: the hook sees every payload this
// node admits or refreshes from the origin — the write side of
// replication.
func TestReplicatorFiresOnAdmitAndRefetch(t *testing.T) {
	w, g, clock := fixture(t, nil)
	rec := &recordingReplicator{}
	w.SetReplicator(rec.hook)
	url := g.PageURLs[0]

	if _, err := w.Get("alice", url); err != nil {
		t.Fatal(err)
	}
	if rec.count() != 1 || rec.fires[0] != url {
		t.Fatalf("after admission: fires = %v, want [%s]", rec.fires, url)
	}
	// A plain hit does not re-replicate.
	if _, err := w.Get("alice", url); err != nil {
		t.Fatal(err)
	}
	if rec.count() != 1 {
		t.Fatalf("a cache hit fired the replicator: %v", rec.fires)
	}
	// Content change + refetch propagates the fresh version.
	_ = clock
	if err := g.Web.Update(url, "fresh content"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Refresh(context.Background(), url); err != nil {
		t.Fatal(err)
	}
	if rec.count() != 2 {
		t.Fatalf("after refetch: fires = %v, want 2", rec.fires)
	}
}

// TestAdmitReplicaColdAndVersions: a replica push admits cold URLs, keeps
// newer resident copies, updates older ones — and never re-fires the
// replication hook.
func TestAdmitReplicaColdAndVersions(t *testing.T) {
	w, g, _ := fixture(t, nil)
	rec := &recordingReplicator{}
	w.SetReplicator(rec.hook)
	url := g.PageURLs[1]
	fr, err := g.Web.Fetch(url)
	if err != nil {
		t.Fatal(err)
	}

	// Cold: the push admits.
	took, err := w.AdmitReplica(url, fr)
	if err != nil || !took {
		t.Fatalf("cold AdmitReplica = (%v, %v), want taken", took, err)
	}
	if !w.Resident(url) {
		t.Fatal("pushed page not resident")
	}
	if rec.count() != 0 {
		t.Fatalf("replica admission re-fired the replicator: %v", rec.fires)
	}
	st := w.Stats()
	if st.ReplicaAdmits != 1 || st.OriginFetches != 0 || st.Requests != 0 {
		t.Fatalf("stats after replica admit = %+v, want 1 replica admit, no origin fetch, no request", st)
	}

	// Same version again: a no-op.
	took, err = w.AdmitReplica(url, fr)
	if err != nil || took {
		t.Fatalf("same-version AdmitReplica = (%v, %v), want refused", took, err)
	}

	// Older version: refused (the resident copy is fresher).
	older := fr
	older.Page.Version = fr.Page.Version - 1
	if took, _ := w.AdmitReplica(url, older); took {
		t.Fatal("older-version push absorbed over a fresher resident copy")
	}

	// Newer version: absorbed in place.
	newer := fr
	newer.Page.Version = fr.Page.Version + 1
	newer.Page.Body = fr.Page.Body + " updated"
	took, err = w.AdmitReplica(url, newer)
	if err != nil || !took {
		t.Fatalf("newer-version AdmitReplica = (%v, %v), want absorbed", took, err)
	}
	res, err := w.Get("alice", url)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hit || res.Page.Version != newer.Page.Version {
		t.Fatalf("serve after newer push = %+v, want hit at version %d", res, newer.Page.Version)
	}
	if got := w.Stats().ReplicaAdmits; got != 2 {
		t.Fatalf("ReplicaAdmits = %d, want 2 (one cold, one update)", got)
	}
	if rec.count() != 0 {
		t.Fatalf("replica path fired the replicator: %v", rec.fires)
	}
}

// TestAdmitReplicaRespectsConstraints: the admission constraint layer still
// gates replica pushes — a replica is not a backdoor past the Constraint
// Manager.
func TestAdmitReplicaRespectsConstraints(t *testing.T) {
	w, g, _ := fixture(t, func(cfg *Config) {
		cfg.Admission = constraint.NewAdmission(constraint.MaxSize(1)) // reject all
	})
	url := g.PageURLs[2]
	fr, err := g.Web.Fetch(url)
	if err != nil {
		t.Fatal(err)
	}
	took, err := w.AdmitReplica(url, fr)
	if err != nil {
		t.Fatal(err)
	}
	if took || w.Resident(url) {
		t.Fatalf("constraint-rejected push was admitted (took=%v resident=%v)", took, w.Resident(url))
	}
	if st := w.Stats(); st.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", st.Rejected)
	}
}
