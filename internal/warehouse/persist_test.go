package warehouse

// Durability tests: the warehouse's checkpoint/rehydrate cycle over the
// file-backed storage tiers, and the degraded path after a recovery that
// adopted a stale tertiary backup.

import (
	"context"
	"strings"
	"testing"

	"cbfww/internal/core"
	"cbfww/internal/simweb"
	"cbfww/internal/storage"
)

// persistFixture builds a warehouse with durable state rooted in dir over
// a small web behind a flaky origin (so tests can prove serves happen
// without origin contact).
func persistFixture(t *testing.T, dir string, clock *core.SimClock, web *simweb.Web) (*Warehouse, *flakyOrigin) {
	t.Helper()
	origin := newFlakyOrigin(web)
	cfg := DefaultConfig()
	cfg.DataDir = dir
	w, err := New(cfg, clock, origin)
	if err != nil {
		t.Fatal(err)
	}
	return w, origin
}

func persistWeb(t *testing.T, clock core.Clock) *simweb.Web {
	t.Helper()
	web := simweb.NewWeb(clock)
	web.AddSite("s.example", 30)
	pages := []*simweb.Page{
		{URL: "http://s.example/a", Title: "alpha page", Body: "durable warehouse content one", Size: core.KB},
		{URL: "http://s.example/b", Title: "beta page", Body: "durable warehouse content two", Size: core.KB},
	}
	for _, p := range pages {
		if err := web.AddPage(p); err != nil {
			t.Fatal(err)
		}
	}
	return web
}

// TestCheckpointRehydrateRoundTrip is the restart story end to end: admit
// pages, checkpoint, tear the process state down, rehydrate a fresh
// warehouse from the same directory with the origin dead, and serve the
// admitted content as hits — no origin contact.
func TestCheckpointRehydrateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	clock := core.NewSimClock(0)
	web := persistWeb(t, clock)

	w1, _ := persistFixture(t, dir, clock, web)
	urls := []string{"http://s.example/a", "http://s.example/b"}
	for _, url := range urls {
		if _, err := w1.Get("u", url); err != nil {
			t.Fatalf("admit %q: %v", url, err)
		}
	}
	if err := w1.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if err := w1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Second life: same directory, dead origin.
	w2, origin := persistFixture(t, dir, clock, web)
	origin.down.Store(true)
	restored, err := w2.Rehydrate()
	if err != nil {
		t.Fatalf("rehydrate: %v", err)
	}
	if restored != len(urls) {
		t.Fatalf("rehydrated %d pages, want %d", restored, len(urls))
	}
	res, err := w2.Get("u", urls[0])
	if err != nil {
		t.Fatalf("get after rehydrate: %v", err)
	}
	if !res.Hit || res.Source == "origin" {
		t.Errorf("rehydrated serve: Hit=%v Source=%q, want a warehouse hit", res.Hit, res.Source)
	}
	if res.Stale {
		t.Error("rehydrated serve marked stale: the copy matches the checkpointed version")
	}
	if !strings.Contains(res.Page.Body, "durable warehouse content one") {
		t.Errorf("rehydrated body = %q", res.Page.Body)
	}
	if res.Page.Title != "alpha page" {
		t.Errorf("rehydrated title = %q", res.Page.Title)
	}
	if origin.fetches != 0 {
		t.Errorf("rehydrated serve contacted the origin %d times", origin.fetches)
	}
	// The full index was rebuilt from the stored payloads.
	if scores := w2.Search("durable", 5); len(scores) != 2 {
		t.Errorf("Search over rehydrated index found %d docs, want 2", len(scores))
	}
	// Version history came back too.
	if snap, ok := w2.Versions().Latest(urls[0]); !ok || snap.Version != 1 {
		t.Errorf("rehydrated Latest = %+v, %v", snap, ok)
	}
	if err := w2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestBackupDriftRefetchOnAccess is the warehouse half of the
// stale-backup story: after tier loss forces recovery onto a tertiary
// backup older than the content the warehouse last served, the next
// access notices the gap and refetches current content from the origin.
func TestBackupDriftRefetchOnAccess(t *testing.T) {
	w, origin, web := degradedFixture(t)
	url := "http://s.example/a"
	if _, err := w.Get("u", url); err != nil {
		t.Fatalf("admit: %v", err)
	}
	// Drift: content moves to v2 (rewriting the fast copies in place);
	// the tertiary anchor still holds the v1 bytes from admission.
	web.Update(url, "changed terms entirely")
	if _, err := w.Refresh(context.Background(), url); err != nil {
		t.Fatalf("refresh: %v", err)
	}

	// Lose both fast tiers; recovery adopts the stale tertiary backup.
	sm := w.StorageManager()
	if err := sm.DropTier(storage.Memory); err != nil {
		t.Fatal(err)
	}
	if err := sm.DropTier(storage.Disk); err != nil {
		t.Fatal(err)
	}
	if rep := sm.Recover(); rep.Stale != 1 {
		t.Fatalf("Recover reported %d stale objects, want 1", rep.Stale)
	}

	// Origin alive: the access sees the reverted copy and refetches.
	res, err := w.Get("u", url)
	if err != nil {
		t.Fatalf("get after recovery: %v", err)
	}
	if res.Hit || res.Source != "origin" {
		t.Errorf("post-recovery access: Hit=%v Source=%q, want an origin refetch", res.Hit, res.Source)
	}
	if !strings.Contains(res.Page.Body, "changed terms") {
		t.Errorf("refetched body = %q, want current content", res.Page.Body)
	}
	// The refetch re-established current bytes in storage.
	if _, ver, err := sm.Peek(pageContainer(t, w, url)); err != nil || ver != 2 {
		t.Errorf("storage after refetch: version=%d err=%v, want version 2", ver, err)
	}
	// And the next access is an ordinary fresh hit again.
	if res, err := w.Get("u", url); err != nil || !res.Hit || res.Stale {
		t.Errorf("settled access = %+v, %v; want a fresh hit", res, err)
	}
	_ = origin
}

// TestBackupDriftStaleServeWhenOriginDead is the same drift, but the
// origin is gone: the refetch fails and the recovered v1 copy is served,
// honestly marked stale.
func TestBackupDriftStaleServeWhenOriginDead(t *testing.T) {
	w, origin, web := degradedFixture(t)
	url := "http://s.example/a"
	if _, err := w.Get("u", url); err != nil {
		t.Fatalf("admit: %v", err)
	}
	web.Update(url, "changed terms entirely")
	if _, err := w.Refresh(context.Background(), url); err != nil {
		t.Fatalf("refresh: %v", err)
	}
	sm := w.StorageManager()
	if err := sm.DropTier(storage.Memory); err != nil {
		t.Fatal(err)
	}
	if err := sm.DropTier(storage.Disk); err != nil {
		t.Fatal(err)
	}
	if rep := sm.Recover(); rep.Stale != 1 {
		t.Fatalf("Recover reported %d stale objects, want 1", rep.Stale)
	}
	origin.down.Store(true)

	res, err := w.Get("u", url)
	if err != nil {
		t.Fatalf("degraded get: %v", err)
	}
	if !res.Hit || !res.Stale {
		t.Errorf("degraded serve: Hit=%v Stale=%v, want a stale hit", res.Hit, res.Stale)
	}
	if strings.Contains(res.Page.Body, "changed terms") {
		t.Error("degraded serve produced v2 content the tiers no longer hold")
	}
	if !strings.Contains(res.Page.Body, "warehouse content one") {
		t.Errorf("degraded body = %q, want the recovered v1 copy", res.Page.Body)
	}
}

// pageContainer resolves a URL's container object ID through the shard
// state.
func pageContainer(t *testing.T, w *Warehouse, url string) core.ObjectID {
	t.Helper()
	sh := w.shardOf(url)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	st := sh.pages[url]
	if st == nil {
		t.Fatalf("page %q not resident", url)
	}
	return st.container
}
