package warehouse

import (
	"fmt"
	"sort"

	"cbfww/internal/core"
	"cbfww/internal/query"
)

// §3(5): "Views of relevant contents are maintained for each user so that
// recommendation is possible." A view is a named, stored popularity-aware
// query owned by a user; evaluating it always reflects the warehouse's
// current contents and usage metadata — a materialized-view-on-demand over
// the cache, which is exactly the non-transparency the paper wants.

// ViewInfo describes a stored view.
type ViewInfo struct {
	User, Name, Query string
}

// SaveView stores (or replaces) a named view for the user. The query is
// parsed eagerly so a broken view is rejected at definition time.
func (w *Warehouse) SaveView(user, name, queryText string) error {
	if user == "" || name == "" {
		return fmt.Errorf("warehouse: %w: view needs user and name", core.ErrInvalid)
	}
	if _, err := query.Parse(queryText); err != nil {
		return fmt.Errorf("warehouse: view %q: %w", name, err)
	}
	w.metaMu.Lock()
	defer w.metaMu.Unlock()
	if w.views == nil {
		w.views = make(map[string]map[string]string)
	}
	if w.views[user] == nil {
		w.views[user] = make(map[string]string)
	}
	w.views[user][name] = queryText
	return nil
}

// View evaluates a stored view against the current warehouse state.
func (w *Warehouse) View(user, name string) ([]query.Row, error) {
	w.metaMu.RLock()
	queryText, ok := w.views[user][name]
	w.metaMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("warehouse: view %s/%s: %w", user, name, core.ErrNotFound)
	}
	return w.Query(queryText)
}

// DropView removes a stored view.
func (w *Warehouse) DropView(user, name string) error {
	w.metaMu.Lock()
	defer w.metaMu.Unlock()
	if _, ok := w.views[user][name]; !ok {
		return fmt.Errorf("warehouse: view %s/%s: %w", user, name, core.ErrNotFound)
	}
	delete(w.views[user], name)
	return nil
}

// Views lists a user's stored views, sorted by name.
func (w *Warehouse) Views(user string) []ViewInfo {
	w.metaMu.RLock()
	defer w.metaMu.RUnlock()
	out := make([]ViewInfo, 0, len(w.views[user]))
	for name, q := range w.views[user] {
		out = append(out, ViewInfo{User: user, Name: name, Query: q})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
