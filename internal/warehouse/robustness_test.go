package warehouse

import (
	"fmt"
	"sync"
	"testing"

	"cbfww/internal/core"
	"cbfww/internal/schema"
	"cbfww/internal/simweb"
	"cbfww/internal/storage"
)

// The warehouse keeps serving through tier failures: memory loss recovers
// from disk copies transparently; losing every replica falls back to an
// origin refetch on the next access.
func TestServeThroughTierFailure(t *testing.T) {
	w, g, clock := fixture(t, nil)
	url := g.PageURLs[0]
	if _, err := w.Get("u", url); err != nil {
		t.Fatal(err)
	}
	clock.Advance(5)

	// Lose memory. The next access must still be a warehouse hit (disk).
	if err := w.StorageManager().DropTier(storage.Memory); err != nil {
		t.Fatal(err)
	}
	r, err := w.Get("u", url)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Hit {
		t.Errorf("memory loss turned a warehouse hit into %+v", r)
	}
	if r.Source == "memory" {
		t.Errorf("served from dropped tier")
	}

	// Recover restores the memory copy.
	rep := w.StorageManager().Recover()
	if rep.Lost != 0 {
		t.Errorf("recover lost %d", rep.Lost)
	}
	if err := w.StorageManager().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTotalLossFallsBackToOrigin(t *testing.T) {
	w, g, clock := fixture(t, nil)
	url := g.PageURLs[0]
	if _, err := w.Get("u", url); err != nil {
		t.Fatal(err)
	}
	clock.Advance(5)
	for _, tier := range []storage.Tier{storage.Memory, storage.Disk, storage.Tertiary} {
		if err := w.StorageManager().DropTier(tier); err != nil {
			t.Fatal(err)
		}
	}
	// The body is gone everywhere; the warehouse must refetch from the
	// origin, not fail.
	r, err := w.Get("u", url)
	if err != nil {
		t.Fatalf("access after total loss: %v", err)
	}
	if r.Hit {
		t.Error("total loss reported a hit")
	}
	if r.Source != "origin" {
		t.Errorf("source = %s", r.Source)
	}
	if r.Page.Title == "" {
		t.Error("refetched page empty")
	}
}

// The origin disappearing must not break serving of resident pages under
// weak consistency (the revalidation probe fails; cached copies serve).
func TestDeadOriginServesCached(t *testing.T) {
	clock := core.NewSimClock(0)
	web := simweb.NewWeb(clock)
	web.AddSite("h.example", 100)
	if err := web.AddPage(&simweb.Page{
		URL: "http://h.example/x", Title: "T", Body: "b", Size: core.KB,
	}); err != nil {
		t.Fatal(err)
	}
	dying := &dyingOrigin{inner: web}
	cfg := DefaultConfig()
	w, err := New(cfg, clock, dying)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Get("u", "http://h.example/x"); err != nil {
		t.Fatal(err)
	}
	dying.dead = true
	clock.Advance(1_000_000) // far past any polling cycle: check will fire and fail
	r, err := w.Get("u", "http://h.example/x")
	if err != nil {
		t.Fatalf("dead origin broke cached serving: %v", err)
	}
	if !r.Hit {
		t.Errorf("dead origin: %+v", r)
	}
}

// dyingOrigin wraps an Origin and can be switched off.
type dyingOrigin struct {
	inner *simweb.Web
	dead  bool
}

func (d *dyingOrigin) Fetch(url string) (simweb.FetchResult, error) {
	if d.dead {
		return simweb.FetchResult{}, fmt.Errorf("origin unreachable: %w", core.ErrNotFound)
	}
	return d.inner.Fetch(url)
}

func (d *dyingOrigin) Head(url string) (int, core.Time, error) {
	if d.dead {
		return 0, 0, fmt.Errorf("origin unreachable: %w", core.ErrNotFound)
	}
	return d.inner.Head(url)
}

// Concurrent Gets, queries, mining and maintenance must not race (run
// under -race in CI) and must keep counters consistent.
func TestWarehouseConcurrentMixedLoad(t *testing.T) {
	w, g, clock := fixture(t, func(c *Config) {
		c.Miner.MinSupport = 1
	})
	var wg sync.WaitGroup
	const goroutines, iters = 8, 40
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			user := fmt.Sprintf("user%d", gi)
			for i := 0; i < iters; i++ {
				url := g.PageURLs[(gi*iters+i)%len(g.PageURLs)]
				if _, err := w.Get(user, url); err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				switch i % 4 {
				case 0:
					if _, err := w.Query("SELECT MFU 3 p.url FROM Physical_Page p"); err != nil {
						t.Errorf("Query: %v", err)
					}
				case 1:
					w.Search("temple", 3)
					w.Recommend(user, 2)
				case 2:
					if _, err := w.Maintain(); err != nil {
						t.Errorf("Maintain: %v", err)
					}
				case 3:
					if _, err := w.MinePaths(); err != nil {
						t.Errorf("MinePaths: %v", err)
					}
				}
			}
		}(gi)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	// Advance the clock while workers run (SimClock is concurrent-safe).
	for {
		select {
		case <-done:
			goto out
		default:
			clock.Advance(1)
		}
	}
out:
	st := w.Stats()
	if st.Requests != goroutines*iters {
		t.Errorf("Requests = %d, want %d", st.Requests, goroutines*iters)
	}
	if err := w.StorageManager().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// A schema-configured warehouse enforces its admission rules end to end.
func TestWarehouseWithSchema(t *testing.T) {
	s, err := schema.Parse(`
tier memory capacity 256KB latency 0
tier disk capacity 32MB latency 10
tier tertiary latency 100
admit max-size 1KB
`)
	if err != nil {
		t.Fatal(err)
	}
	w, g, _ := fixture(t, func(c *Config) {
		c.ApplySchema(s)
	})
	// Every generated page is > 1KB, so everything is rejected.
	r, err := w.Get("u", g.PageURLs[0])
	if err != nil {
		t.Fatal(err)
	}
	if r.Hit {
		t.Error("hit on rejected page")
	}
	if w.ResidentPages() != 0 {
		t.Errorf("ResidentPages = %d", w.ResidentPages())
	}
	if w.Stats().Rejected != 1 {
		t.Errorf("Rejected = %d", w.Stats().Rejected)
	}
}
