package warehouse

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"cbfww/internal/core"
	"cbfww/internal/simweb"
	"cbfww/internal/storage"
)

// boundedStreamFixture stores blob in a manager and hands back a
// BodyStream wired exactly as readResident wires it.
func boundedStreamFixture(t *testing.T, url string, blob []byte) (*BodyStream, simweb.Page) {
	t.Helper()
	m, err := storage.NewManager(storage.Config{
		MemCapacity: 1 * core.MB, DiskCapacity: 4 * core.MB,
		MemLatency: 1, DiskLatency: 10, TertiaryLatency: 100,
	})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	if err := m.AdmitBytes(1, core.Bytes(len(blob)), 1, 0.9, blob); err != nil {
		t.Fatalf("AdmitBytes: %v", err)
	}
	br, _, err := m.PeekStream(1)
	if err != nil {
		t.Fatalf("PeekStream: %v", err)
	}
	page, bodyLen, slack, streamed, err := decodePageStream(url, br)
	if err != nil {
		t.Fatalf("decodePageStream: %v", err)
	}
	if !streamed {
		t.Fatalf("format-2 blob did not take the streaming path")
	}
	bs := &BodyStream{n: bodyLen, br: br, rem: bodyLen, slack: slack > 0}
	return bs, page
}

// TestBodyStreamBoundedByDeclaredLen: a malformed format-2 blob whose
// payload outruns its declared body length must not leak the trailing
// bytes — WriteTo and Read both stop at Len(), the byte count handleBody
// and the peer endpoints commit as Content-Length.
func TestBodyStreamBoundedByDeclaredLen(t *testing.T) {
	const url = "http://a.example/junk-tail"
	body := strings.Repeat("b", 1000)
	blob := encodePagePayload(&simweb.Page{URL: url, Title: "t", Body: body, Version: 1})
	blob = append(blob, []byte("TRAILING-JUNK-THAT-MUST-NOT-ESCAPE")...)

	bs, _ := boundedStreamFixture(t, url, blob)
	if bs.Len() != int64(len(body)) {
		t.Fatalf("Len = %d, want declared body length %d", bs.Len(), len(body))
	}
	var sink bytes.Buffer
	n, err := bs.WriteTo(&sink)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(len(body)) || sink.String() != body {
		t.Fatalf("WriteTo emitted %d bytes (want %d), tail %q", n, len(body), sink.String()[max(0, sink.Len()-20):])
	}
	if n, err := bs.WriteTo(&sink); n != 0 || err != nil {
		t.Fatalf("drained WriteTo = %d, %v; want 0, nil", n, err)
	}
	bs.Close()

	// Same bound via Read.
	bs, _ = boundedStreamFixture(t, url, blob)
	got, err := io.ReadAll(bs)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	bs.Close()
	if string(got) != body {
		t.Fatalf("Read emitted %d bytes, want exactly the declared body (%d)", len(got), len(body))
	}

	// A well-formed blob reports no slack and still round-trips.
	clean := encodePagePayload(&simweb.Page{URL: url, Title: "t", Body: body, Version: 1})
	bs, _ = boundedStreamFixture(t, url, clean)
	if bs.slack {
		t.Errorf("well-formed blob reported slack")
	}
	if got, err := io.ReadAll(bs); err != nil || string(got) != body {
		t.Fatalf("clean blob round-trip = %d bytes, %v", len(got), err)
	}
	bs.Close()
}
