package warehouse

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"cbfww/internal/core"
	"cbfww/internal/object"
	"cbfww/internal/simweb"
)

// Warehouse-level durability. The Storage Manager already persists the
// placement layout (MANIFEST) and the payload bytes themselves (disk and
// tertiary backends); what it cannot know is the warehouse's view of those
// objects — which container belongs to which URL, which raw objects
// compose which physical page. Checkpoint writes that mapping as a small
// JSON catalog beside the store, plus the version history; Rehydrate
// replays both over a recovered Storage Manager so a restarted daemon
// serves previously admitted pages without a single origin fetch.

const (
	catalogName  = "catalog.json"
	versionsName = "versions.gob"
)

// catalog is the on-disk page registry.
type catalog struct {
	Format int           `json:"format"`
	Pages  []catalogPage `json:"pages"`
}

// catalogPage records one admitted page's identity: its URL, the
// hierarchy IDs of its physical page and container raw object (which are
// also its storage-manifest IDs), the version the warehouse last served,
// and its component raw objects.
type catalogPage struct {
	URL        string             `json:"url"`
	PhysID     uint64             `json:"phys_id"`
	Container  uint64             `json:"container_id"`
	Version    int                `json:"version"`
	Components []catalogComponent `json:"components,omitempty"`
}

type catalogComponent struct {
	URL  string     `json:"url"`
	ID   uint64     `json:"id"`
	Size core.Bytes `json:"size"`
}

// Checkpoint flushes the warehouse's durable state: a final Backup pass
// (so every object's tertiary anchor is as fresh as its source copy
// allows), the storage manifest, fsync of the file backends, the version
// history, and the page catalog. A warehouse without a DataDir has
// nothing durable and checkpoints as a no-op.
func (w *Warehouse) Checkpoint() error {
	if w.cfg.DataDir == "" {
		return nil
	}
	w.store.Backup()
	if err := w.store.SaveManifest(); err != nil {
		return fmt.Errorf("warehouse: checkpoint: %w", err)
	}
	if err := w.store.Sync(); err != nil {
		return fmt.Errorf("warehouse: checkpoint: %w", err)
	}
	if err := w.history.SaveFile(filepath.Join(w.cfg.DataDir, versionsName)); err != nil {
		return fmt.Errorf("warehouse: checkpoint: %w", err)
	}
	if err := w.saveCatalog(); err != nil {
		return fmt.Errorf("warehouse: checkpoint: %w", err)
	}
	return nil
}

// saveCatalog writes the page registry atomically (temp file + rename).
func (w *Warehouse) saveCatalog() error {
	var cat catalog
	cat.Format = 1
	for _, sh := range w.shards {
		sh.mu.RLock()
		for url, st := range sh.pages {
			cp := catalogPage{
				URL:       url,
				PhysID:    uint64(st.physID),
				Container: uint64(st.container),
				Version:   st.version,
			}
			for _, cid := range w.objects.Children(st.physID) {
				if cid == st.container {
					continue
				}
				if o, ok := w.objects.Get(cid); ok {
					cp.Components = append(cp.Components, catalogComponent{
						URL: o.Key, ID: uint64(cid), Size: o.Size,
					})
				}
			}
			cat.Pages = append(cat.Pages, cp)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(cat.Pages, func(i, j int) bool { return cat.Pages[i].URL < cat.Pages[j].URL })

	data, err := json.MarshalIndent(&cat, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(w.cfg.DataDir, catalogName)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Rehydrate restores a checkpointed warehouse from its DataDir: version
// history, then the Storage Manager's crash recovery (adopting whatever
// bytes survived on disk), then the page catalog — every page whose
// container payload is still readable gets its hierarchy objects, shard
// state and full-index entry back and is servable without an origin
// fetch. Pages whose bytes did not survive are skipped: their first
// access takes the ordinary miss path. Returns the number of pages
// restored. Must run before the warehouse starts serving.
func (w *Warehouse) Rehydrate() (int, error) {
	if w.cfg.DataDir == "" {
		return 0, nil
	}
	vpath := filepath.Join(w.cfg.DataDir, versionsName)
	if _, err := os.Stat(vpath); err == nil {
		if err := w.history.LoadFile(vpath); err != nil {
			return 0, fmt.Errorf("warehouse: rehydrate: %w", err)
		}
	}
	n, _, err := w.store.RecoverFromDisk()
	if err != nil {
		return 0, fmt.Errorf("warehouse: rehydrate: %w", err)
	}
	if n == 0 {
		return 0, nil
	}
	cat, err := loadCatalog(filepath.Join(w.cfg.DataDir, catalogName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			// Bytes but no catalog (crash before the first checkpoint):
			// the store serves as a recovery source, the pages refetch.
			return 0, nil
		}
		return 0, fmt.Errorf("warehouse: rehydrate: %w", err)
	}
	restored := 0
	for i := range cat.Pages {
		cp := &cat.Pages[i]
		data, _, err := w.store.Peek(core.ObjectID(cp.Container))
		if err != nil {
			continue // payload lost: served from origin on first access
		}
		page, err := decodePagePayload(cp.URL, data)
		if err != nil {
			continue
		}
		if err := w.restorePage(cp, page); err != nil {
			return restored, fmt.Errorf("warehouse: rehydrate %q: %w", cp.URL, err)
		}
		restored++
	}
	return restored, nil
}

func loadCatalog(path string) (*catalog, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cat catalog
	if err := json.Unmarshal(data, &cat); err != nil {
		return nil, err
	}
	if cat.Format != 1 {
		return nil, fmt.Errorf("%w: catalog format %d", core.ErrInvalid, cat.Format)
	}
	return &cat, nil
}

// restorePage rebuilds one page's in-memory state from its catalog entry
// and surviving payload: hierarchy objects under their persisted IDs,
// page state on its shard, and the full-index entry. Usage heat, logical
// pages and regions regrow from traffic — they are derived state.
func (w *Warehouse) restorePage(cp *catalogPage, page simweb.Page) error {
	loader := w.bodyLoader(cp.URL)
	total := sizeOrOne(page.Size)
	for _, c := range cp.Components {
		total += c.Size
	}
	phys, err := w.objects.Restore(object.KindPhysical, cp.URL, core.ObjectID(cp.PhysID), total, page.Title, loader)
	if err != nil {
		return err
	}
	container, err := w.objects.Restore(object.KindRaw, cp.URL, core.ObjectID(cp.Container), sizeOrOne(page.Size), page.Title, loader)
	if err != nil {
		return err
	}
	if err := w.objects.Link(phys.ID, container.ID); err != nil && !errors.Is(err, core.ErrExists) {
		return err
	}
	for _, c := range cp.Components {
		comp, ok := w.objects.ByKey(object.KindRaw, c.URL)
		if !ok {
			// Components are shared across pages; the first page to
			// restore one recreates it under its persisted ID.
			comp, err = w.objects.Restore(object.KindRaw, c.URL, core.ObjectID(c.ID), c.Size, "", nil)
			if err != nil {
				return err
			}
		}
		if err := w.objects.Link(phys.ID, comp.ID); err != nil && !errors.Is(err, core.ErrExists) {
			return err
		}
	}

	// The catalog remembers the version the warehouse last served; the
	// surviving payload may be older (a stale tertiary backup adopted by
	// recovery). Keeping the catalog's number makes the first access
	// notice the gap and refetch — the degraded path's refetch-on-access.
	version := cp.Version
	if page.Version > version {
		version = page.Version
	}
	vec := w.corpus.WeightedVector(page.Title, page.Body, w.cfg.Omega)
	prio, _ := w.store.Priority(container.ID)
	st := &pageState{
		physID:            phys.ID,
		container:         container.ID,
		version:           version,
		vec:               vec,
		region:            w.regions.Assign(clusterPoint(phys.ID, vec)),
		lastCheck:         w.clock.Now(),
		lastMod:           page.LastMod,
		admissionPriority: prio,
		anchors:           anchorMap(page.Anchors),
	}
	w.pageOfContainer.Store(container.ID, cp.URL)
	sh := w.shardOf(cp.URL)
	sh.mu.Lock()
	sh.pages[cp.URL] = st
	sh.mu.Unlock()
	w.index.Index(phys.ID, page.Title+"\n"+page.Body)
	return nil
}
