package warehouse

import (
	"encoding/binary"
	"fmt"

	"cbfww/internal/core"
	"cbfww/internal/object"
	"cbfww/internal/simweb"
)

// bodyLoader returns the lazy body resolver the hierarchy objects for url
// carry: it reads the container's payload back from whatever tier holds
// its bytes. Loaders run under callers that may hold hierarchy or shard
// locks; they only touch the object index and the Storage Manager (both
// leaves in the lock order), never shard state.
func (w *Warehouse) bodyLoader(url string) object.BodyLoader {
	return func() (string, error) {
		o, ok := w.objects.ByKey(object.KindRaw, url)
		if !ok {
			return "", fmt.Errorf("warehouse: body of %q: %w", url, core.ErrNotFound)
		}
		data, _, err := w.store.Peek(o.ID)
		if err != nil {
			return "", err
		}
		p, err := decodePagePayload(url, data)
		if err != nil {
			return "", err
		}
		return p.Body, nil
	}
}

// The page payload codec: the byte format the warehouse stores in the
// Storage Manager's tier backends for a page's container object. The
// blob is the page content itself — title, body, anchors and the origin
// metadata needed to serve a hit without consulting anything else — so a
// copy that survives a restart is a servable page, not just an index
// entry.
//
// Layout (all integers varint/uvarint, strings uvarint-length-prefixed):
//
//	tag(1) version lastMod size title body nAnchors {text target}*
//
// The codec is deliberately hand-rolled: payloads are written on every
// admission and refetch and decoded on every warehouse hit, so the
// format avoids reflection (gob) and field names (json), and summary
// blobs produced by truncating the body stay decodable.

// pagePayloadTag identifies (and versions) the payload format.
const pagePayloadTag = 1

// encodePagePayload serializes the servable content of p.
func encodePagePayload(p *simweb.Page) []byte {
	n := 1 + 3*binary.MaxVarintLen64 +
		uvarintLen(len(p.Title)) + len(p.Title) +
		uvarintLen(len(p.Body)) + len(p.Body) +
		uvarintLen(len(p.Anchors))
	for _, a := range p.Anchors {
		n += uvarintLen(len(a.Text)) + len(a.Text) +
			uvarintLen(len(a.Target)) + len(a.Target)
	}
	buf := make([]byte, 0, n)
	buf = append(buf, pagePayloadTag)
	buf = binary.AppendUvarint(buf, uint64(p.Version))
	buf = binary.AppendVarint(buf, int64(p.LastMod))
	buf = binary.AppendVarint(buf, int64(p.Size))
	buf = appendString(buf, p.Title)
	buf = appendString(buf, p.Body)
	buf = binary.AppendUvarint(buf, uint64(len(p.Anchors)))
	for _, a := range p.Anchors {
		buf = appendString(buf, a.Text)
		buf = appendString(buf, a.Target)
	}
	return buf
}

// decodePagePayload parses a payload blob back into a servable page. The
// URL is not stored in the blob (the blob key already identifies the
// object); the caller supplies it.
func decodePagePayload(url string, data []byte) (simweb.Page, error) {
	var p simweb.Page
	if len(data) == 0 || data[0] != pagePayloadTag {
		return p, fmt.Errorf("warehouse: page payload: %w: bad tag", core.ErrInvalid)
	}
	d := payloadReader{buf: data[1:]}
	version := d.uvarint()
	lastMod := d.varint()
	size := d.varint()
	title := d.string()
	body := d.string()
	nAnchors := d.uvarint()
	var anchors []simweb.Anchor
	// An anchor costs at least two length bytes; reject counts the buffer
	// cannot possibly hold before allocating.
	if d.err == nil && nAnchors > 0 && nAnchors <= uint64(len(d.buf)-d.off)/2+1 {
		anchors = make([]simweb.Anchor, 0, nAnchors)
		for i := uint64(0); i < nAnchors && d.err == nil; i++ {
			text := d.string()
			target := d.string()
			anchors = append(anchors, simweb.Anchor{Text: text, Target: target})
		}
	} else if nAnchors > 0 && d.err == nil {
		d.err = fmt.Errorf("warehouse: page payload: %w: anchor count %d exceeds buffer", core.ErrInvalid, nAnchors)
	}
	if d.err != nil {
		return simweb.Page{}, d.err
	}
	p = simweb.Page{
		URL:     url,
		Title:   title,
		Body:    body,
		Anchors: anchors,
		Size:    core.Bytes(size),
		Version: int(version),
		LastMod: core.Time(lastMod),
	}
	return p, nil
}

// summarizePagePayload is the Storage Manager's Summarize hook: it builds
// a levels-of-detail summary blob by keeping the title and the leading
// slice of the body, dropping anchors, re-encoded in the same format so
// summary copies stay decodable. When the target budget cannot fit even
// the header and title, it falls back to a prefix cut of the encoded
// blob (opaque, but the Manager only needs bytes of the right size).
func summarizePagePayload(data []byte, target core.Bytes) []byte {
	if core.Bytes(len(data)) <= target {
		return data
	}
	p, err := decodePagePayload("", data)
	if err != nil {
		if target < 1 {
			target = 1
		}
		return data[:target]
	}
	p.Anchors = nil
	// Overhead of everything except the body bytes; what remains of the
	// target budget is the body allowance.
	overhead := core.Bytes(len(encodePagePayload(&simweb.Page{
		Title: p.Title, Size: p.Size, Version: p.Version, LastMod: p.LastMod,
	})))
	allow := target - overhead
	if allow < 0 {
		allow = 0
	}
	if core.Bytes(len(p.Body)) > allow {
		p.Body = p.Body[:allow]
	}
	return encodePagePayload(&p)
}

// appendString appends a uvarint-length-prefixed string.
func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// uvarintLen returns the encoded size of n as a uvarint.
func uvarintLen(n int) int {
	l := 1
	for v := uint64(n); v >= 0x80; v >>= 7 {
		l++
	}
	return l
}

// payloadReader decodes the payload format, latching the first error so
// call sites stay linear.
type payloadReader struct {
	buf []byte
	off int
	err error
}

func (d *payloadReader) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("warehouse: page payload: %w: truncated %s", core.ErrInvalid, what)
	}
}

func (d *payloadReader) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *payloadReader) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.off += n
	return v
}

func (d *payloadReader) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.buf)-d.off) {
		d.fail("string")
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}
