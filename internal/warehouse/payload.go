package warehouse

import (
	"encoding/binary"
	"fmt"
	"io"
	"strings"

	"cbfww/internal/core"
	"cbfww/internal/object"
	"cbfww/internal/simweb"
	"cbfww/internal/storage"
)

// bodyLoader returns the lazy body resolver the hierarchy objects for url
// carry: it reads the container's payload back from whatever tier holds
// its bytes. Loaders run under callers that may hold hierarchy or shard
// locks; they only touch the object index and the Storage Manager (both
// leaves in the lock order), never shard state.
func (w *Warehouse) bodyLoader(url string) object.BodyLoader {
	return func() (string, error) {
		o, ok := w.objects.ByKey(object.KindRaw, url)
		if !ok {
			return "", fmt.Errorf("warehouse: body of %q: %w", url, core.ErrNotFound)
		}
		br, _, err := w.store.PeekStream(o.ID)
		if err != nil {
			return "", err
		}
		defer br.Close()
		p, bodyLen, _, streamed, err := decodePageStream(url, br)
		if err != nil {
			return "", err
		}
		if !streamed {
			return p.Body, nil
		}
		var sb strings.Builder
		sb.Grow(int(bodyLen))
		buf := storage.CopyBuffer()
		_, err = io.CopyBuffer(&sb, io.LimitReader(br, bodyLen), buf)
		storage.PutCopyBuffer(buf)
		if err != nil {
			return "", err
		}
		return sb.String(), nil
	}
}

// The page payload codec: the byte format the warehouse stores in the
// Storage Manager's tier backends for a page's container object. The
// blob is the page content itself — title, body, anchors and the origin
// metadata needed to serve a hit without consulting anything else — so a
// copy that survives a restart is a servable page, not just an index
// entry.
//
// Layout, format 2 (all integers varint/uvarint, strings uvarint-length-
// prefixed):
//
//	tag(1)=2 headerLen(u32 BE) header body
//	header = version lastMod size bodyLen title nAnchors {text target}*
//
// The body sits at the END of the blob, after a self-sized metadata
// header, so the serve path can decode everything it needs from a small
// prefix and stream the body store→socket without materializing it
// (decodePageStream). Format 1 — the codec-era layout with the body
// inline between title and anchors — is still decoded on read, so blobs
// admitted by earlier builds survive a restart; they just take the
// buffered fallback instead of the streaming path.
//
// The codec is deliberately hand-rolled: payloads are written on every
// admission and refetch and decoded on every warehouse hit, so the
// format avoids reflection (gob) and field names (json), and summary
// blobs produced by truncating the body stay decodable.

// Payload format tags. pagePayloadTagV1 is the legacy body-inline layout
// (read-only); pagePayloadTag is the streamable header+body layout every
// new blob is written in.
const (
	pagePayloadTagV1 = 1
	pagePayloadTag   = 2
)

// pagePayloadPrefixLen is the fixed-size blob prefix before the header:
// the tag byte plus the big-endian header length.
const pagePayloadPrefixLen = 1 + 4

// encodePagePayload serializes the servable content of p in format 2.
func encodePagePayload(p *simweb.Page) []byte {
	hn := 3*binary.MaxVarintLen64 +
		uvarintLen(len(p.Body)) +
		uvarintLen(len(p.Title)) + len(p.Title) +
		uvarintLen(len(p.Anchors))
	for _, a := range p.Anchors {
		hn += uvarintLen(len(a.Text)) + len(a.Text) +
			uvarintLen(len(a.Target)) + len(a.Target)
	}
	buf := make([]byte, 0, pagePayloadPrefixLen+hn+len(p.Body))
	buf = append(buf, pagePayloadTag, 0, 0, 0, 0) // headerLen patched below
	buf = binary.AppendUvarint(buf, uint64(p.Version))
	buf = binary.AppendVarint(buf, int64(p.LastMod))
	buf = binary.AppendVarint(buf, int64(p.Size))
	buf = binary.AppendUvarint(buf, uint64(len(p.Body)))
	buf = appendString(buf, p.Title)
	buf = binary.AppendUvarint(buf, uint64(len(p.Anchors)))
	for _, a := range p.Anchors {
		buf = appendString(buf, a.Text)
		buf = appendString(buf, a.Target)
	}
	binary.BigEndian.PutUint32(buf[1:pagePayloadPrefixLen], uint32(len(buf)-pagePayloadPrefixLen))
	return append(buf, p.Body...)
}

// decodePagePayload parses a payload blob (either format) back into a
// servable page. The URL is not stored in the blob (the blob key already
// identifies the object); the caller supplies it.
func decodePagePayload(url string, data []byte) (simweb.Page, error) {
	var p simweb.Page
	if len(data) == 0 {
		return p, fmt.Errorf("warehouse: page payload: %w: empty blob", core.ErrInvalid)
	}
	switch data[0] {
	case pagePayloadTagV1:
		return decodePagePayloadV1(url, data)
	case pagePayloadTag:
	default:
		return p, fmt.Errorf("warehouse: page payload: %w: bad tag", core.ErrInvalid)
	}
	if len(data) < pagePayloadPrefixLen {
		return p, fmt.Errorf("warehouse: page payload: %w: truncated prefix", core.ErrInvalid)
	}
	hlen := int(binary.BigEndian.Uint32(data[1:pagePayloadPrefixLen]))
	if hlen > len(data)-pagePayloadPrefixLen {
		return p, fmt.Errorf("warehouse: page payload: %w: header length %d exceeds blob", core.ErrInvalid, hlen)
	}
	p, bodyLen, err := decodePageHeader(url, data[pagePayloadPrefixLen:pagePayloadPrefixLen+hlen])
	if err != nil {
		return simweb.Page{}, err
	}
	body := data[pagePayloadPrefixLen+hlen:]
	if int64(len(body)) < bodyLen {
		// A prefix-cut summary blob (the summarize fallback) may truncate
		// mid-body; serve what survived rather than refusing the blob.
		bodyLen = int64(len(body))
	}
	p.Body = string(body[:bodyLen])
	return p, nil
}

// decodePageHeader parses the format-2 metadata header (everything but
// the body), returning the page with an empty Body plus the declared body
// length.
func decodePageHeader(url string, header []byte) (simweb.Page, int64, error) {
	d := payloadReader{buf: header}
	version := d.uvarint()
	lastMod := d.varint()
	size := d.varint()
	bodyLen := d.uvarint()
	title := d.string()
	nAnchors := d.uvarint()
	var anchors []simweb.Anchor
	// An anchor costs at least two length bytes; reject counts the buffer
	// cannot possibly hold before allocating.
	if d.err == nil && nAnchors > 0 && nAnchors <= uint64(len(d.buf)-d.off)/2+1 {
		anchors = make([]simweb.Anchor, 0, nAnchors)
		for i := uint64(0); i < nAnchors && d.err == nil; i++ {
			text := d.string()
			target := d.string()
			anchors = append(anchors, simweb.Anchor{Text: text, Target: target})
		}
	} else if nAnchors > 0 && d.err == nil {
		d.err = fmt.Errorf("warehouse: page payload: %w: anchor count %d exceeds buffer", core.ErrInvalid, nAnchors)
	}
	if d.err != nil {
		return simweb.Page{}, 0, d.err
	}
	return simweb.Page{
		URL:     url,
		Title:   title,
		Anchors: anchors,
		Size:    core.Bytes(size),
		Version: int(version),
		LastMod: core.Time(lastMod),
	}, int64(bodyLen), nil
}

// decodePagePayloadV1 parses the legacy body-inline layout.
func decodePagePayloadV1(url string, data []byte) (simweb.Page, error) {
	var p simweb.Page
	d := payloadReader{buf: data[1:]}
	version := d.uvarint()
	lastMod := d.varint()
	size := d.varint()
	title := d.string()
	body := d.string()
	nAnchors := d.uvarint()
	var anchors []simweb.Anchor
	if d.err == nil && nAnchors > 0 && nAnchors <= uint64(len(d.buf)-d.off)/2+1 {
		anchors = make([]simweb.Anchor, 0, nAnchors)
		for i := uint64(0); i < nAnchors && d.err == nil; i++ {
			text := d.string()
			target := d.string()
			anchors = append(anchors, simweb.Anchor{Text: text, Target: target})
		}
	} else if nAnchors > 0 && d.err == nil {
		d.err = fmt.Errorf("warehouse: page payload: %w: anchor count %d exceeds buffer", core.ErrInvalid, nAnchors)
	}
	if d.err != nil {
		return simweb.Page{}, d.err
	}
	p = simweb.Page{
		URL:     url,
		Title:   title,
		Body:    body,
		Anchors: anchors,
		Size:    core.Bytes(size),
		Version: int(version),
		LastMod: core.Time(lastMod),
	}
	return p, nil
}

// decodePageStream decodes payload metadata from br without materializing
// the body. For a format-2 blob it reads only the prefix and header,
// returning the page with an empty Body, the body length, and
// streamed=true; br is left positioned at the body's first byte, holding
// bodyLen unread body bytes (plus slack trailing bytes when a malformed
// blob declares a body shorter than the payload that follows — readers
// must stop at bodyLen). For a codec-era (format-1) blob the whole
// stream is buffered and decoded — streamed=false and the returned page
// carries its Body — since that layout cannot be split without a scan.
func decodePageStream(url string, br storage.BlobReader) (p simweb.Page, bodyLen, slack int64, streamed bool, err error) {
	var prefix [pagePayloadPrefixLen]byte
	if _, err := io.ReadFull(br, prefix[:1]); err != nil {
		return p, 0, 0, false, fmt.Errorf("warehouse: page payload: %w: empty blob", core.ErrInvalid)
	}
	switch prefix[0] {
	case pagePayloadTagV1:
		data := make([]byte, br.Len())
		data[0] = prefix[0]
		if _, err := io.ReadFull(br, data[1:]); err != nil {
			return p, 0, 0, false, fmt.Errorf("warehouse: page payload: %w: short blob", core.ErrInvalid)
		}
		p, err = decodePagePayloadV1(url, data)
		if err != nil {
			return simweb.Page{}, 0, 0, false, err
		}
		return p, int64(len(p.Body)), 0, false, nil
	case pagePayloadTag:
	default:
		return p, 0, 0, false, fmt.Errorf("warehouse: page payload: %w: bad tag", core.ErrInvalid)
	}
	if _, err := io.ReadFull(br, prefix[1:]); err != nil {
		return p, 0, 0, false, fmt.Errorf("warehouse: page payload: %w: truncated prefix", core.ErrInvalid)
	}
	hlen := int64(binary.BigEndian.Uint32(prefix[1:]))
	rest := br.Len() - pagePayloadPrefixLen
	if hlen > rest {
		return p, 0, 0, false, fmt.Errorf("warehouse: page payload: %w: header length %d exceeds blob", core.ErrInvalid, hlen)
	}
	hbuf := storage.CopyBuffer()
	defer storage.PutCopyBuffer(hbuf)
	header := hbuf
	if int64(len(header)) < hlen {
		header = make([]byte, hlen)
	}
	header = header[:hlen]
	if _, err := io.ReadFull(br, header); err != nil {
		return p, 0, 0, false, fmt.Errorf("warehouse: page payload: %w: truncated header", core.ErrInvalid)
	}
	p, bodyLen, err = decodePageHeader(url, header)
	if err != nil {
		return simweb.Page{}, 0, 0, false, err
	}
	if bodyLen > rest-hlen {
		// Prefix-cut summary blob: stream what survived the cut.
		bodyLen = rest - hlen
	}
	return p, bodyLen, (rest - hlen) - bodyLen, true, nil
}

// summarizePagePayload is the Storage Manager's Summarize hook: it builds
// a levels-of-detail summary blob by keeping the title and the leading
// slice of the body, dropping anchors, re-encoded in the same format so
// summary copies stay decodable. When the target budget cannot fit even
// the header and title, it falls back to a prefix cut of the encoded
// blob (opaque, but the Manager only needs bytes of the right size).
func summarizePagePayload(data []byte, target core.Bytes) []byte {
	if core.Bytes(len(data)) <= target {
		return data
	}
	p, err := decodePagePayload("", data)
	if err != nil {
		if target < 1 {
			target = 1
		}
		return data[:target]
	}
	p.Anchors = nil
	// Overhead of everything except the body bytes; what remains of the
	// target budget is the body allowance.
	overhead := core.Bytes(len(encodePagePayload(&simweb.Page{
		Title: p.Title, Size: p.Size, Version: p.Version, LastMod: p.LastMod,
	})))
	allow := target - overhead
	if allow < 0 {
		allow = 0
	}
	if core.Bytes(len(p.Body)) > allow {
		p.Body = p.Body[:allow]
	}
	return encodePagePayload(&p)
}

// appendString appends a uvarint-length-prefixed string.
func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// uvarintLen returns the encoded size of n as a uvarint.
func uvarintLen(n int) int {
	l := 1
	for v := uint64(n); v >= 0x80; v >>= 7 {
		l++
	}
	return l
}

// payloadReader decodes the payload format, latching the first error so
// call sites stay linear.
type payloadReader struct {
	buf []byte
	off int
	err error
}

func (d *payloadReader) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("warehouse: page payload: %w: truncated %s", core.ErrInvalid, what)
	}
}

func (d *payloadReader) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *payloadReader) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.off += n
	return v
}

func (d *payloadReader) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.buf)-d.off) {
		d.fail("string")
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}
