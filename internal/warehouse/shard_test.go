package warehouse

import (
	"runtime"
	"testing"
)

func TestShardIndexDeterministicAndInRange(t *testing.T) {
	urls := []string{
		"http://site-0.example/p0", "http://site-1.example/p1",
		"http://site-2.example/a/b/c", "", "x",
	}
	for _, n := range []int{1, 2, 8, 13} {
		for _, u := range urls {
			i := shardIndex(u, n)
			if i != shardIndex(u, n) {
				t.Fatalf("shardIndex(%q, %d) not deterministic", u, n)
			}
			if i < 0 || i >= n {
				t.Fatalf("shardIndex(%q, %d) = %d out of range", u, n, i)
			}
		}
	}
}

// With one shard every URL maps to stripe 0 — the reference model the
// oracle test leans on.
func TestShardIndexSingleShardDegenerate(t *testing.T) {
	for _, u := range []string{"a", "b", "http://x/y"} {
		if i := shardIndex(u, 1); i != 0 {
			t.Fatalf("shardIndex(%q, 1) = %d", u, i)
		}
	}
}

// FNV-1a over realistic URL populations must not collapse onto few
// stripes: with 16 shards and a few hundred URLs, every stripe should see
// traffic and no stripe should carry more than a third of it.
func TestShardIndexSpreadsURLs(t *testing.T) {
	const shards = 16
	counts := make([]int, shards)
	total := 0
	for site := 0; site < 8; site++ {
		for page := 0; page < 40; page++ {
			u := "http://site-" + string(rune('a'+site)) + ".example/page/" + string(rune('a'+page%26)) + "/" + string(rune('0'+page%10))
			counts[shardIndex(u, shards)]++
			total++
		}
	}
	for i, c := range counts {
		if c == 0 {
			t.Errorf("shard %d got no URLs", i)
		}
		if c > total/3 {
			t.Errorf("shard %d got %d of %d URLs — hash collapsing", i, c, total)
		}
	}
}

func TestConfigShardsDefaultsToGOMAXPROCS(t *testing.T) {
	w, _ := oracleWarehouse(t, 0)
	if got, want := w.NumShards(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("NumShards() = %d, want GOMAXPROCS = %d", got, want)
	}
	w1, _ := oracleWarehouse(t, 5)
	if got := w1.NumShards(); got != 5 {
		t.Errorf("NumShards() = %d, want 5", got)
	}
}

func TestShardStatsAggregateToWarehouseStats(t *testing.T) {
	w, urls := oracleWarehouse(t, 8)
	for _, u := range urls {
		if _, err := w.Get("u", u); err != nil {
			t.Fatal(err)
		}
		if _, err := w.Get("u", u); err != nil { // second Get: a hit
			t.Fatal(err)
		}
	}
	per := w.ShardStats()
	if len(per) != 8 {
		t.Fatalf("ShardStats() returned %d entries, want 8", len(per))
	}
	var pages, reqs, hits, fetches int
	for _, s := range per {
		pages += s.Pages
		reqs += s.Requests
		hits += s.Hits
		fetches += s.OriginFetches
		if s.LockAcquires == 0 && s.Pages > 0 {
			t.Errorf("shard %d holds pages but recorded no lock acquisitions", s.Shard)
		}
	}
	st := w.Stats()
	if pages != w.ResidentPages() {
		t.Errorf("shard pages sum %d != ResidentPages %d", pages, w.ResidentPages())
	}
	if reqs != st.Requests || hits != st.Hits || fetches != st.OriginFetches {
		t.Errorf("shard sums (req=%d hit=%d fetch=%d) != Stats (req=%d hit=%d fetch=%d)",
			reqs, hits, fetches, st.Requests, st.Hits, st.OriginFetches)
	}
}
