package warehouse

import (
	"context"
	"io"

	"cbfww/internal/storage"
)

// BodyStream is a one-shot handle on a served page's body. On the
// streaming serve path (GetBodyCtx, GetResidentStream) the GetResult's
// Page carries empty Body and the bytes come through here instead —
// backed directly by the serving tier's BlobReader when the blob is in
// the streamable payload format, or by an already-materialized string for
// origin fetches and codec-era blobs (the buffered fallback).
//
// Like storage.BlobReader, WriteTo picks the cheapest transfer: the
// tier reader's own strategy (single Write for heap, sendfile-eligible
// io.Copy for disk files, pooled pread loop for segments) or one
// io.WriteString for the materialized fallback. Read and WriteTo never
// emit more than Len() bytes, even over a malformed blob whose payload
// outruns its declared body length — Len() is what handleBody and the
// peer endpoints commit as Content-Length, so overrunning it would break
// HTTP framing. Callers must Close; Close on a nil stream is a no-op.
type BodyStream struct {
	br    storage.BlobReader // tier-backed stream; nil when materialized
	rem   int64              // body bytes left to serve on the br branch
	slack bool               // br holds trailing bytes beyond the declared body
	body  string             // materialized body (fallback)
	off   int
	n     int64
}

// materializedBody wraps an in-memory body as a BodyStream.
func materializedBody(body string) *BodyStream {
	return &BodyStream{body: body, n: int64(len(body))}
}

// Len returns the total body size in bytes, regardless of read position.
func (b *BodyStream) Len() int64 { return b.n }

func (b *BodyStream) Read(p []byte) (int, error) {
	if b.br != nil {
		if b.rem <= 0 {
			return 0, io.EOF
		}
		if int64(len(p)) > b.rem {
			p = p[:b.rem]
		}
		n, err := b.br.Read(p)
		b.rem -= int64(n)
		return n, err
	}
	if b.off >= len(b.body) {
		return 0, io.EOF
	}
	n := copy(p, b.body[b.off:])
	b.off += n
	return n, nil
}

func (b *BodyStream) WriteTo(w io.Writer) (int64, error) {
	if b.br != nil {
		if b.rem <= 0 {
			return 0, nil
		}
		if !b.slack {
			// The reader holds exactly rem bytes: its own WriteTo is the
			// cheapest transfer and cannot overrun.
			n, err := b.br.WriteTo(w)
			b.rem -= n
			return n, err
		}
		// Malformed blob: payload outruns the declared body. Copy exactly
		// rem so we never exceed the Content-Length committed from Len().
		n, err := io.Copy(w, io.LimitReader(b.br, b.rem))
		b.rem -= n
		return n, err
	}
	if b.off >= len(b.body) {
		return 0, nil
	}
	n, err := io.WriteString(w, b.body[b.off:])
	b.off += n
	return int64(n), err
}

// Close releases the underlying tier reader, if any. Safe on nil.
func (b *BodyStream) Close() error {
	if b == nil || b.br == nil {
		return nil
	}
	return b.br.Close()
}

// GetBodyCtx is GetCtx on the streaming serve path: the returned
// GetResult is identical except Page.Body is empty — the body arrives
// through the BodyStream, read straight from the serving tier when the
// stored blob allows it. The caller must Close the stream (also after
// errors are ruled out; on error the stream is nil).
func (w *Warehouse) GetBodyCtx(ctx context.Context, user, url string) (GetResult, *BodyStream, error) {
	return w.get(ctx, user, url, false, true)
}

// GetResidentStream is GetResident on the streaming serve path: resident
// copies only, body via BodyStream, no origin or peer contact. The caller
// must Close the stream.
func (w *Warehouse) GetResidentStream(user, url string) (GetResult, *BodyStream, bool) {
	return w.getResident(user, url, true)
}
