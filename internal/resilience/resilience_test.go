package resilience

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"cbfww/internal/core"
	"cbfww/internal/simweb"
)

// scriptOrigin returns canned errors per URL, in order; past the script's
// end it succeeds. Thread-safe.
type scriptOrigin struct {
	mu     sync.Mutex
	script map[string][]error
	calls  map[string]int
	// called, when non-nil, receives a token per origin call (dropped when
	// full) — tests synchronize on attempts instead of sleeping.
	called chan struct{}
}

func newScriptOrigin() *scriptOrigin {
	return &scriptOrigin{script: make(map[string][]error), calls: make(map[string]int)}
}

func (s *scriptOrigin) fail(url string, errs ...error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.script[url] = append(s.script[url], errs...)
}

func (s *scriptOrigin) callCount(url string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls[url]
}

func (s *scriptOrigin) next(url string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls[url]++
	if s.called != nil {
		select {
		case s.called <- struct{}{}:
		default:
		}
	}
	if q := s.script[url]; len(q) > 0 {
		err := q[0]
		s.script[url] = q[1:]
		return err
	}
	return nil
}

func (s *scriptOrigin) FetchCtx(ctx context.Context, url string) (simweb.FetchResult, error) {
	if err := s.next(url); err != nil {
		return simweb.FetchResult{}, err
	}
	return simweb.FetchResult{Page: simweb.Page{URL: url, Title: "t", Version: 1}}, nil
}

func (s *scriptOrigin) Fetch(url string) (simweb.FetchResult, error) {
	return s.FetchCtx(context.Background(), url)
}

func (s *scriptOrigin) HeadCtx(ctx context.Context, url string) (int, core.Time, error) {
	if err := s.next(url); err != nil {
		return 0, 0, err
	}
	return 1, 0, nil
}

func (s *scriptOrigin) Head(url string) (int, core.Time, error) {
	return s.HeadCtx(context.Background(), url)
}

var errFlaky = errors.New("transient origin failure")

// timeoutErr satisfies net.Error with Timeout() true.
type timeoutErr struct{}

func (timeoutErr) Error() string   { return "i/o timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

// coded mimics crawl.StatusError without importing crawl.
type coded struct{ c int }

func (e *coded) Error() string   { return fmt.Sprintf("status %d", e.c) }
func (e *coded) HTTPStatus() int { return e.c }

func TestRetryableClassification(t *testing.T) {
	ctx := context.Background()
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	cases := []struct {
		name string
		ctx  context.Context
		err  error
		want bool
	}{
		{"nil error", ctx, nil, false},
		{"generic", ctx, errFlaky, true},
		{"wrapped not found", ctx, fmt.Errorf("x: %w", core.ErrNotFound), false},
		{"wrapped invalid", ctx, fmt.Errorf("x: %w", core.ErrInvalid), false},
		{"caller cancelled", cancelled, errFlaky, false},
		{"op cancelled", ctx, fmt.Errorf("x: %w", context.Canceled), false},
		// A deadline error while the caller's ctx is alive is an inner
		// per-attempt timeout: transient.
		{"attempt deadline", ctx, fmt.Errorf("x: %w", context.DeadlineExceeded), true},
		{"net timeout", ctx, fmt.Errorf("x: %w", net.Error(timeoutErr{})), true},
		{"http 500", ctx, fmt.Errorf("x: %w", &coded{500}), true},
		{"http 503", ctx, fmt.Errorf("x: %w", &coded{503}), true},
		{"http 429", ctx, fmt.Errorf("x: %w", &coded{429}), true},
		{"http 403", ctx, fmt.Errorf("x: %w", &coded{403}), false},
		{"breaker open", ctx, &BreakerOpenError{Host: "h"}, false},
	}
	for _, c := range cases {
		if got := Retryable(c.ctx, c.err); got != c.want {
			t.Errorf("%s: Retryable = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestHostFailureClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"generic", errFlaky, true},
		{"not found", fmt.Errorf("x: %w", core.ErrNotFound), false},
		{"breaker fast-fail", &BreakerOpenError{Host: "h"}, false},
		{"http 404-ish", fmt.Errorf("x: %w", &coded{403}), false},
		{"http 500", fmt.Errorf("x: %w", &coded{500}), true},
		{"timeout", timeoutErr{}, true},
	}
	for _, c := range cases {
		if got := hostFailure(c.err); got != c.want {
			t.Errorf("%s: hostFailure = %v, want %v", c.name, got, c.want)
		}
	}
}

func wrapT(t *testing.T, inner ContextOrigin, cfg Config) *Origin {
	t.Helper()
	if cfg.Retry.Seed == 0 {
		cfg.Retry.Seed = 1
	}
	o, err := Wrap(inner, cfg)
	if err != nil {
		t.Fatalf("Wrap: %v", err)
	}
	return o
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	s := newScriptOrigin()
	url := "http://a.example/p"
	s.fail(url, errFlaky, errFlaky)
	o := wrapT(t, s, Config{Retry: RetryPolicy{MaxAttempts: 3}})

	res, err := o.FetchCtx(context.Background(), url)
	if err != nil {
		t.Fatalf("FetchCtx: %v", err)
	}
	if res.Page.URL != url {
		t.Errorf("page URL = %q", res.Page.URL)
	}
	if n := s.callCount(url); n != 3 {
		t.Errorf("origin calls = %d, want 3", n)
	}
	if st := o.Stats(); st.Retries != 2 {
		t.Errorf("Retries = %d, want 2", st.Retries)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	s := newScriptOrigin()
	url := "http://a.example/p"
	s.fail(url, errFlaky, errFlaky, errFlaky, errFlaky)
	o := wrapT(t, s, Config{Retry: RetryPolicy{MaxAttempts: 3}})

	if _, err := o.FetchCtx(context.Background(), url); !errors.Is(err, errFlaky) {
		t.Fatalf("err = %v, want errFlaky", err)
	}
	if n := s.callCount(url); n != 3 {
		t.Errorf("origin calls = %d, want 3 (budget)", n)
	}
}

func TestNoRetryOnNotFound(t *testing.T) {
	s := newScriptOrigin()
	url := "http://a.example/missing"
	s.fail(url, fmt.Errorf("origin: %w", core.ErrNotFound))
	o := wrapT(t, s, Config{Retry: RetryPolicy{MaxAttempts: 5}})

	if _, err := o.FetchCtx(context.Background(), url); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if n := s.callCount(url); n != 1 {
		t.Errorf("origin calls = %d, want 1 (no retry)", n)
	}
}

func TestNoRetryAfterCallerCancels(t *testing.T) {
	s := newScriptOrigin()
	s.called = make(chan struct{}, 8)
	url := "http://a.example/p"
	s.fail(url, errFlaky, errFlaky, errFlaky)
	o := wrapT(t, s, Config{Retry: RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Hour}})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := o.FetchCtx(ctx, url)
		done <- err
	}()
	// Wait for the first attempt to actually hit the origin (the hour-long
	// backoff starts right after), then cancel: the call must return
	// promptly instead of sleeping the hour out.
	select {
	case <-s.called:
	case <-time.After(5 * time.Second):
		t.Fatal("first attempt never reached the origin")
	}
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected an error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("retry loop ignored cancellation during backoff")
	}
	if n := s.callCount(url); n > 2 {
		t.Errorf("origin calls = %d after cancel, want <= 2", n)
	}
}

func TestBackoffGrowsAndIsCapped(t *testing.T) {
	o := wrapT(t, newScriptOrigin(), Config{Retry: RetryPolicy{
		MaxAttempts: 5, BaseBackoff: 100 * time.Millisecond, MaxBackoff: 400 * time.Millisecond,
	}})
	for attempt := 1; attempt <= 10; attempt++ {
		d := o.delay(attempt)
		if d < 50*time.Millisecond {
			t.Errorf("attempt %d: delay %v below jitter floor", attempt, d)
		}
		if d > 400*time.Millisecond {
			t.Errorf("attempt %d: delay %v above cap", attempt, d)
		}
	}
	// The first attempt's range never exceeds the base.
	if d := o.delay(1); d > 100*time.Millisecond {
		t.Errorf("attempt 1 delay %v exceeds base", d)
	}
}

// fakeClock drives the breaker cool-down manually.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestBreakerOpensAndFailsFast(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	s := newScriptOrigin()
	url := "http://dead.example/p"
	s.fail(url, errFlaky, errFlaky, errFlaky, errFlaky, errFlaky)
	o := wrapT(t, s, Config{
		Breaker: BreakerConfig{Threshold: 3, Cooldown: time.Minute},
		Now:     clk.Now,
	})

	for i := 0; i < 3; i++ {
		if _, err := o.FetchCtx(context.Background(), url); !errors.Is(err, errFlaky) {
			t.Fatalf("attempt %d: err = %v", i, err)
		}
	}
	st := o.Stats()
	if st.BreakerOpens != 1 || st.OpenHosts != 1 {
		t.Fatalf("after threshold: %+v", st)
	}

	// Open: calls fail fast without touching the origin.
	before := s.callCount(url)
	_, err := o.FetchCtx(context.Background(), url)
	if !errors.Is(err, ErrOpen) {
		t.Fatalf("open breaker err = %v, want ErrOpen", err)
	}
	var open *BreakerOpenError
	if !errors.As(err, &open) || open.Host != "dead.example" || open.RetryAfter <= 0 {
		t.Fatalf("open error detail: %+v", open)
	}
	if s.callCount(url) != before {
		t.Fatal("open breaker still reached the origin")
	}
}

func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	s := newScriptOrigin()
	url := "http://flaky.example/p"
	s.fail(url, errFlaky, errFlaky) // opens at threshold 2, then healthy
	o := wrapT(t, s, Config{
		Breaker: BreakerConfig{Threshold: 2, Cooldown: time.Minute},
		Now:     clk.Now,
	})

	for i := 0; i < 2; i++ {
		o.FetchCtx(context.Background(), url)
	}
	if _, err := o.FetchCtx(context.Background(), url); !errors.Is(err, ErrOpen) {
		t.Fatalf("expected fast fail, got %v", err)
	}

	// Cool-down elapses: the next call is the half-open probe; it succeeds
	// and closes the breaker.
	clk.advance(2 * time.Minute)
	if _, err := o.FetchCtx(context.Background(), url); err != nil {
		t.Fatalf("probe: %v", err)
	}
	st := o.Stats()
	if st.BreakerHalfOpens != 1 || st.OpenHosts != 0 {
		t.Fatalf("after probe: %+v", st)
	}
	// Closed again: traffic flows.
	if _, err := o.FetchCtx(context.Background(), url); err != nil {
		t.Fatalf("post-recovery fetch: %v", err)
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	s := newScriptOrigin()
	url := "http://dead.example/p"
	s.fail(url, errFlaky, errFlaky, errFlaky) // 2 to open + 1 failed probe
	o := wrapT(t, s, Config{
		Breaker: BreakerConfig{Threshold: 2, Cooldown: time.Minute},
		Now:     clk.Now,
	})
	for i := 0; i < 2; i++ {
		o.FetchCtx(context.Background(), url)
	}
	clk.advance(2 * time.Minute)
	if _, err := o.FetchCtx(context.Background(), url); !errors.Is(err, errFlaky) {
		t.Fatalf("probe err = %v", err)
	}
	st := o.Stats()
	if st.BreakerOpens != 2 || st.OpenHosts != 1 {
		t.Fatalf("after failed probe: %+v", st)
	}
	if _, err := o.FetchCtx(context.Background(), url); !errors.Is(err, ErrOpen) {
		t.Fatalf("re-opened breaker err = %v", err)
	}
}

// TestBreakerCooldownJitter: each open draws Cooldown + uniform jitter, so
// a fleet of breakers opened in the same instant does not all probe in the
// same instant (thundering herd on recovery). Negative Jitter disables.
func TestBreakerCooldownJitter(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	bs := NewBreakers(BreakerConfig{Threshold: 1, Cooldown: time.Minute, Jitter: 0.25}, clk.Now)
	const n = 64
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("peer-%d", i)
		rep, err := bs.Allow(keys[i])
		if err != nil {
			t.Fatalf("initial allow %s: %v", keys[i], err)
		}
		rep(true) // threshold 1: opens immediately
	}
	// countAllowed probes every key; allowed probes report success (closing
	// that breaker for good) so each key is counted open at most once.
	countAllowed := func() (allowed, refused int) {
		for _, k := range keys {
			rep, err := bs.Allow(k)
			if err != nil {
				refused++
				continue
			}
			allowed++
			rep(false)
		}
		return
	}
	// At exactly the base cool-down, jittered breakers still refuse.
	clk.advance(time.Minute)
	if allowed, refused := countAllowed(); refused < n/2 {
		t.Fatalf("at base cool-down: %d allowed, %d refused; jitter should hold most closed", allowed, refused)
	}
	// Midway through the jitter window the fleet splits: some probe now,
	// some later — the de-synchronization the jitter exists to create.
	clk.advance(time.Minute / 8)
	midAllowed, midRefused := countAllowed()
	if midAllowed == 0 || midRefused == 0 {
		t.Fatalf("mid-jitter: %d allowed, %d refused; want a split", midAllowed, midRefused)
	}
	// Past the full jitter window everyone probes.
	clk.advance(time.Minute / 8)
	if _, refused := countAllowed(); refused != 0 {
		t.Fatalf("past jitter window: %d still refused, want 0", refused)
	}

	// Negative jitter pins the cool-down to exactly Cooldown.
	exact := NewBreakers(BreakerConfig{Threshold: 1, Cooldown: time.Minute, Jitter: -1}, clk.Now)
	rep, err := exact.Allow("p")
	if err != nil {
		t.Fatalf("allow: %v", err)
	}
	rep(true)
	clk.advance(time.Minute)
	if _, err := exact.Allow("p"); err != nil {
		t.Fatalf("jitter disabled: probe at exactly Cooldown refused: %v", err)
	}
}

func TestBreakerIsPerHost(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	s := newScriptOrigin()
	dead := "http://dead.example/p"
	s.fail(dead, errFlaky, errFlaky)
	o := wrapT(t, s, Config{
		Breaker: BreakerConfig{Threshold: 2, Cooldown: time.Minute},
		Now:     clk.Now,
	})
	for i := 0; i < 2; i++ {
		o.FetchCtx(context.Background(), dead)
	}
	if _, err := o.FetchCtx(context.Background(), dead); !errors.Is(err, ErrOpen) {
		t.Fatalf("dead host err = %v", err)
	}
	// A healthy host is unaffected.
	if _, err := o.FetchCtx(context.Background(), "http://live.example/p"); err != nil {
		t.Fatalf("live host: %v", err)
	}
	// Head goes through the same machinery.
	if _, _, err := o.HeadCtx(context.Background(), dead); !errors.Is(err, ErrOpen) {
		t.Fatalf("head on open host err = %v", err)
	}
}

func TestNotFoundResetsFailureStreak(t *testing.T) {
	s := newScriptOrigin()
	url := "http://a.example/p"
	nf := fmt.Errorf("origin: %w", core.ErrNotFound)
	// failure, failure, not-found (host alive!), failure, failure: never
	// three consecutive host failures.
	s.fail(url, errFlaky, errFlaky, nf, errFlaky, errFlaky)
	o := wrapT(t, s, Config{Breaker: BreakerConfig{Threshold: 3, Cooldown: time.Minute}})
	for i := 0; i < 5; i++ {
		o.FetchCtx(context.Background(), url)
	}
	if st := o.Stats(); st.BreakerOpens != 0 {
		t.Fatalf("breaker opened across a not-found reset: %+v", st)
	}
}

func TestHostOf(t *testing.T) {
	cases := map[string]string{
		"http://a.example/p/q":  "a.example",
		"https://b.example/":    "b.example",
		"http://c.example":      "c.example",
		"no-scheme-at-all":      "no-scheme-at-all",
		"http://d.example:8080": "d.example:8080",
	}
	for in, want := range cases {
		if got := hostOf(in); got != want {
			t.Errorf("hostOf(%q) = %q, want %q", in, got, want)
		}
	}
}
