package resilience

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"cbfww/internal/core"
	"cbfww/internal/simweb"
)

// ContextOrigin is the origin contract the wrapper consumes and provides —
// structurally identical to warehouse.ContextOrigin, declared locally so
// the dependency points outward only.
type ContextOrigin interface {
	Fetch(url string) (simweb.FetchResult, error)
	Head(url string) (version int, lastMod core.Time, err error)
	FetchCtx(ctx context.Context, url string) (simweb.FetchResult, error)
	HeadCtx(ctx context.Context, url string) (int, core.Time, error)
}

// RetryPolicy tunes the retry loop.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget per call; <= 1 disables
	// retries.
	MaxAttempts int
	// BaseBackoff seeds the exponential backoff: attempt k waits roughly
	// BaseBackoff·2^(k-1), equal-jittered. Zero means no waiting.
	BaseBackoff time.Duration
	// MaxBackoff caps a single wait. Zero defaults to 32×BaseBackoff.
	MaxBackoff time.Duration
	// Seed makes the jitter deterministic (tests); 0 seeds from the
	// current time.
	Seed int64
}

// Config assembles the wrapper's tunables.
type Config struct {
	Retry   RetryPolicy
	Breaker BreakerConfig
	// Now overrides the breaker clock (tests); nil means time.Now.
	Now func() time.Time
}

// Stats is a snapshot of the wrapper's activity counters.
type Stats struct {
	// Retries counts re-attempts (excluding each call's first attempt).
	Retries uint64
	// BreakerOpens counts closed→open and half-open→open transitions.
	BreakerOpens uint64
	// BreakerHalfOpens counts open→half-open probe admissions.
	BreakerHalfOpens uint64
	// BreakerFastFails counts calls refused without touching the origin.
	BreakerFastFails uint64
	// OpenHosts is the number of hosts currently refusing traffic.
	OpenHosts int
}

// Origin wraps an inner origin with retries and per-host breaking. Safe
// for concurrent use; implements warehouse.ContextOrigin.
type Origin struct {
	inner    ContextOrigin
	cfg      Config
	breakers *Breakers

	mu      sync.Mutex
	rng     *rand.Rand
	retries uint64
}

// Wrap builds the resilient origin around inner.
func Wrap(inner ContextOrigin, cfg Config) (*Origin, error) {
	if inner == nil {
		return nil, fmt.Errorf("resilience: %w: nil origin", core.ErrInvalid)
	}
	if cfg.Retry.MaxAttempts < 1 {
		cfg.Retry.MaxAttempts = 1
	}
	if cfg.Retry.MaxBackoff <= 0 {
		cfg.Retry.MaxBackoff = 32 * cfg.Retry.BaseBackoff
	}
	seed := cfg.Retry.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Origin{
		inner:    inner,
		cfg:      cfg,
		breakers: NewBreakers(cfg.Breaker, cfg.Now),
		rng:      rand.New(rand.NewSource(seed)),
	}, nil
}

// Stats returns a snapshot of the activity counters.
func (o *Origin) Stats() Stats {
	o.mu.Lock()
	retries := o.retries
	o.mu.Unlock()
	opens, halfOpens, fastFails := o.breakers.Counts()
	st := Stats{
		Retries:          retries,
		BreakerOpens:     opens,
		BreakerHalfOpens: halfOpens,
		BreakerFastFails: fastFails,
	}
	st.OpenHosts = o.breakers.OpenCount()
	return st
}

// Fetch implements warehouse.Origin.
func (o *Origin) Fetch(url string) (simweb.FetchResult, error) {
	return o.FetchCtx(context.Background(), url)
}

// Head implements warehouse.Origin.
func (o *Origin) Head(url string) (int, core.Time, error) {
	return o.HeadCtx(context.Background(), url)
}

// FetchCtx implements warehouse.ContextOrigin with retries and breaking.
func (o *Origin) FetchCtx(ctx context.Context, url string) (simweb.FetchResult, error) {
	var out simweb.FetchResult
	err := o.do(ctx, url, func() error {
		var e error
		out, e = o.inner.FetchCtx(ctx, url)
		return e
	})
	if err != nil {
		return simweb.FetchResult{}, err
	}
	return out, nil
}

// HeadCtx implements warehouse.ContextOrigin with retries and breaking.
func (o *Origin) HeadCtx(ctx context.Context, url string) (int, core.Time, error) {
	var (
		v  int
		lm core.Time
	)
	err := o.do(ctx, url, func() error {
		var e error
		v, lm, e = o.inner.HeadCtx(ctx, url)
		return e
	})
	if err != nil {
		return 0, 0, err
	}
	return v, lm, nil
}

// do runs op under the breaker and retry policy.
func (o *Origin) do(ctx context.Context, url string, op func() error) error {
	host := hostOf(url)
	var err error
	for attempt := 1; ; attempt++ {
		report, derr := o.breakers.Allow(host)
		if derr != nil {
			return derr
		}
		err = op()
		report(hostFailure(err))
		if err == nil || attempt >= o.cfg.Retry.MaxAttempts || !Retryable(ctx, err) {
			return err
		}
		o.mu.Lock()
		o.retries++
		o.mu.Unlock()
		if !o.backoff(ctx, attempt) {
			return err
		}
	}
}

// backoff sleeps the equal-jittered exponential delay for the given
// attempt number, returning false when ctx ends first.
func (o *Origin) backoff(ctx context.Context, attempt int) bool {
	d := o.delay(attempt)
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// delay computes the jittered backoff for attempt (1-based: the wait
// after the attempt-th failure).
func (o *Origin) delay(attempt int) time.Duration {
	base := o.cfg.Retry.BaseBackoff
	if base <= 0 {
		return 0
	}
	d := base << uint(attempt-1)
	if max := o.cfg.Retry.MaxBackoff; d > max || d <= 0 {
		d = max
	}
	// Equal jitter: half fixed, half uniform — spreads synchronized
	// retry herds without collapsing the floor to zero.
	o.mu.Lock()
	j := time.Duration(o.rng.Int63n(int64(d)/2 + 1))
	o.mu.Unlock()
	return d/2 + j
}
