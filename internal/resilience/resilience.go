// Package resilience is the origin-survival layer of the warehouse: the
// paper's premise is that the warehouse — not the origin web — is the
// reliable store ("store everything as long as it seems to be worthwhile",
// §2), so a flaky, slow or dead origin must degrade service, never deny
// it. The package wraps any context-aware origin (crawl.Requester over
// real sockets, *simweb.Web in-process, a fault-injecting simweb origin)
// with:
//
//   - bounded retries with jittered exponential backoff, gated by error
//     classification (retry timeouts, 5xx and connection failures; never
//     retry not-found, invalid input or the caller's own cancellation);
//   - a per-host circuit breaker (closed → open after N consecutive host
//     failures → half-open probe after a cool-down) so a dead site fails
//     fast instead of burning retry budgets and gateway worker-pool slots.
//
// The wrapper satisfies warehouse.ContextOrigin structurally, so it drops
// into the warehouse's origin path unchanged; the warehouse's own
// stale-serve degradation (warehouse.GetCtx) then turns the remaining
// failures into marked stale hits whenever a resident copy exists.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"time"

	"cbfww/internal/core"
)

// ErrOpen is the sentinel matched (errors.Is) by every breaker fast-fail.
// The concrete error is always a *BreakerOpenError carrying the host and
// the remaining cool-down.
var ErrOpen = errors.New("circuit open")

// BreakerOpenError reports a fetch refused because the host's circuit
// breaker is open. RetryAfter is the remaining cool-down — the gateway
// surfaces it as an HTTP Retry-After header.
type BreakerOpenError struct {
	Host       string
	RetryAfter time.Duration
}

func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("resilience: host %q: %v (retry after %s)", e.Host, ErrOpen, e.RetryAfter.Round(time.Millisecond))
}

// Unwrap lets errors.Is(err, ErrOpen) match.
func (e *BreakerOpenError) Unwrap() error { return ErrOpen }

// statusCoded is implemented by origin errors that carry an HTTP status
// (crawl.StatusError does). Declared here so the two packages need not
// import each other.
type statusCoded interface{ HTTPStatus() int }

// Retryable classifies an origin error: true means another attempt could
// plausibly succeed. The never-retry set: the caller's own context ending
// (ctx), cancellation, not-found / invalid-argument / constraint errors
// (deterministic), an open breaker (retrying defeats its purpose), and
// HTTP 4xx other than 408/429. Timeouts, connection failures, 5xx and
// anything unrecognized are transient until proven otherwise.
func Retryable(ctx context.Context, err error) bool {
	if err == nil || ctx.Err() != nil {
		return false
	}
	// A timeout reaching us while the caller's ctx is alive (ruled out
	// above) is a per-attempt timeout — transient. This includes bare
	// context.DeadlineExceeded, which an inner per-attempt budget
	// produces and which itself satisfies net.Error.
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	switch {
	case errors.Is(err, context.Canceled):
		return false
	case errors.Is(err, ErrOpen):
		return false
	case errors.Is(err, core.ErrNotFound), errors.Is(err, core.ErrInvalid),
		errors.Is(err, core.ErrExists), errors.Is(err, core.ErrConstraint),
		errors.Is(err, core.ErrClosed):
		return false
	}
	var sc statusCoded
	if errors.As(err, &sc) {
		code := sc.HTTPStatus()
		return code >= 500 || code == 408 || code == 429
	}
	return true
}

// hostFailure classifies an error as evidence of host ill-health for the
// breaker. Deterministic application-level refusals (not-found, invalid)
// mean the host answered, so they reset the failure streak; the breaker's
// own fast-fails are not evidence either way.
func hostFailure(err error) bool {
	if err == nil {
		return false
	}
	switch {
	case errors.Is(err, ErrOpen):
		return false
	case errors.Is(err, core.ErrNotFound), errors.Is(err, core.ErrInvalid),
		errors.Is(err, core.ErrExists), errors.Is(err, core.ErrConstraint):
		return false
	}
	var sc statusCoded
	if errors.As(err, &sc) && sc.HTTPStatus() < 500 {
		return false
	}
	return true
}

// hostOf extracts the host component used as the breaker key. URLs without
// a scheme key on themselves, so the breaker still partitions sanely when
// handed something unexpected.
func hostOf(url string) string {
	rest, ok := strings.CutPrefix(url, "http://")
	if !ok {
		rest, ok = strings.CutPrefix(url, "https://")
		if !ok {
			rest = url
		}
	}
	host, _, _ := strings.Cut(rest, "/")
	return host
}
