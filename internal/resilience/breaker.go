package resilience

import (
	"sync"
	"time"
)

// BreakerConfig tunes the per-host circuit breaker.
type BreakerConfig struct {
	// Threshold is the consecutive host-failure count that opens the
	// breaker; <= 0 disables breaking entirely.
	Threshold int
	// Cooldown is how long an open breaker refuses traffic before letting
	// one half-open probe through.
	Cooldown time.Duration
}

// breaker states. A breaker is closed (traffic flows, failures counted),
// open (all traffic refused until the cool-down elapses), or half-open
// (exactly one probe in flight decides: success closes, failure re-opens).
const (
	stateClosed = iota
	stateOpen
	stateHalfOpen
)

// hostBreaker is one host's state. Guarded by breakerSet.mu.
type hostBreaker struct {
	state    int
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
}

// breakerSet is the per-host breaker map plus shared counters.
type breakerSet struct {
	cfg BreakerConfig
	now func() time.Time

	mu        sync.Mutex
	hosts     map[string]*hostBreaker
	opens     uint64
	halfOpens uint64
	fastFails uint64
}

func newBreakerSet(cfg BreakerConfig, now func() time.Time) *breakerSet {
	if now == nil {
		now = time.Now
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 30 * time.Second
	}
	return &breakerSet{cfg: cfg, now: now, hosts: make(map[string]*hostBreaker)}
}

// allow asks whether a request to host may proceed. Refusals return a
// *BreakerOpenError. Allowed requests must report their outcome through
// the returned func (failed = hostFailure classification).
func (s *breakerSet) allow(host string) (report func(failed bool), err error) {
	if s == nil || s.cfg.Threshold <= 0 {
		return func(bool) {}, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.hosts[host]
	if b == nil {
		b = &hostBreaker{}
		s.hosts[host] = b
	}
	switch b.state {
	case stateOpen:
		remaining := s.cfg.Cooldown - s.now().Sub(b.openedAt)
		if remaining > 0 {
			s.fastFails++
			return nil, &BreakerOpenError{Host: host, RetryAfter: remaining}
		}
		// Cool-down elapsed: this caller becomes the half-open probe.
		b.state = stateHalfOpen
		s.halfOpens++
	case stateHalfOpen:
		// A probe is already in flight; everyone else keeps failing fast.
		s.fastFails++
		return nil, &BreakerOpenError{Host: host, RetryAfter: s.cfg.Cooldown}
	}
	return func(failed bool) { s.report(host, failed) }, nil
}

// report records an allowed request's outcome.
func (s *breakerSet) report(host string, failed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.hosts[host]
	if b == nil {
		return
	}
	switch b.state {
	case stateHalfOpen:
		if failed {
			// The probe failed: back to open for a fresh cool-down.
			b.state = stateOpen
			b.openedAt = s.now()
			s.opens++
		} else {
			b.state = stateClosed
			b.fails = 0
		}
	case stateClosed:
		if !failed {
			b.fails = 0
			return
		}
		b.fails++
		if b.fails >= s.cfg.Threshold {
			b.state = stateOpen
			b.openedAt = s.now()
			b.fails = 0
			s.opens++
		}
	}
}

// openHosts counts hosts currently refusing traffic.
func (s *breakerSet) openHosts() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, b := range s.hosts {
		if b.state == stateOpen {
			n++
		}
	}
	return n
}
