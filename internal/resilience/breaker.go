package resilience

import (
	"math/rand"
	"sync"
	"time"
)

// BreakerConfig tunes the per-key circuit breaker.
type BreakerConfig struct {
	// Threshold is the consecutive key-failure count that opens the
	// breaker; <= 0 disables breaking entirely.
	Threshold int
	// Cooldown is how long an open breaker refuses traffic before letting
	// one half-open probe through.
	Cooldown time.Duration
	// Jitter spreads half-open probe timing: each open draws a cool-down
	// of Cooldown + uniform[0, Jitter×Cooldown). Without it every peer of
	// a restarted node probes it in the same instant — a thundering herd
	// on recovery. 0 uses DefaultBreakerJitter; negative disables.
	Jitter float64
}

// DefaultBreakerJitter is the half-open jitter fraction used when
// BreakerConfig.Jitter is zero: up to a quarter of the cool-down extra,
// enough to de-synchronize recovering peers without stretching outages.
const DefaultBreakerJitter = 0.25

// breaker states. A breaker is closed (traffic flows, failures counted),
// open (all traffic refused until the cool-down elapses), or half-open
// (exactly one probe in flight decides: success closes, failure re-opens).
const (
	stateClosed = iota
	stateOpen
	stateHalfOpen
)

// breakerStateNames renders states for monitoring surfaces.
var breakerStateNames = [...]string{"closed", "open", "half-open"}

// keyBreaker is one key's state. Guarded by Breakers.mu.
type keyBreaker struct {
	state    int
	fails    int           // consecutive failures while closed
	openedAt time.Time     // when the breaker last opened
	cooldown time.Duration // this open's jittered cool-down
}

// Breakers is a set of independent circuit breakers sharing one
// configuration, keyed by string — origin hosts for the origin wrapper,
// peer addresses for the cluster tier. Safe for concurrent use.
type Breakers struct {
	cfg BreakerConfig
	now func() time.Time

	mu        sync.Mutex
	keys      map[string]*keyBreaker
	rnd       *rand.Rand
	opens     uint64
	halfOpens uint64
	fastFails uint64
}

// NewBreakers builds a breaker set. A nil now uses time.Now; a
// non-positive cool-down defaults to 30s.
func NewBreakers(cfg BreakerConfig, now func() time.Time) *Breakers {
	if now == nil {
		now = time.Now
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 30 * time.Second
	}
	if cfg.Jitter == 0 {
		cfg.Jitter = DefaultBreakerJitter
	}
	return &Breakers{
		cfg: cfg,
		now: now,
		// Seeded from the clock so fake-clock tests are deterministic
		// while real nodes draw distinct sequences.
		rnd:  rand.New(rand.NewSource(now().UnixNano())),
		keys: make(map[string]*keyBreaker),
	}
}

// drawCooldown picks this open's cool-down: the configured base plus a
// uniform jitter slice. Caller holds s.mu.
func (s *Breakers) drawCooldown() time.Duration {
	d := s.cfg.Cooldown
	if s.cfg.Jitter > 0 {
		d += time.Duration(s.rnd.Float64() * s.cfg.Jitter * float64(s.cfg.Cooldown))
	}
	return d
}

// Allow asks whether a request to key may proceed. Refusals return a
// *BreakerOpenError. Allowed requests must report their outcome through
// the returned func (failed = evidence of key ill-health).
func (s *Breakers) Allow(key string) (report func(failed bool), err error) {
	if s == nil || s.cfg.Threshold <= 0 {
		return func(bool) {}, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.keys[key]
	if b == nil {
		b = &keyBreaker{}
		s.keys[key] = b
	}
	switch b.state {
	case stateOpen:
		remaining := b.cooldown - s.now().Sub(b.openedAt)
		if remaining > 0 {
			s.fastFails++
			return nil, &BreakerOpenError{Host: key, RetryAfter: remaining}
		}
		// Cool-down elapsed: this caller becomes the half-open probe.
		b.state = stateHalfOpen
		s.halfOpens++
	case stateHalfOpen:
		// A probe is already in flight; everyone else keeps failing fast.
		s.fastFails++
		return nil, &BreakerOpenError{Host: key, RetryAfter: s.cfg.Cooldown}
	}
	return func(failed bool) { s.report(key, failed) }, nil
}

// report records an allowed request's outcome.
func (s *Breakers) report(key string, failed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.keys[key]
	if b == nil {
		return
	}
	switch b.state {
	case stateHalfOpen:
		if failed {
			// The probe failed: back to open for a fresh cool-down.
			b.state = stateOpen
			b.openedAt = s.now()
			b.cooldown = s.drawCooldown()
			s.opens++
		} else {
			b.state = stateClosed
			b.fails = 0
		}
	case stateClosed:
		if !failed {
			b.fails = 0
			return
		}
		b.fails++
		if b.fails >= s.cfg.Threshold {
			b.state = stateOpen
			b.openedAt = s.now()
			b.cooldown = s.drawCooldown()
			b.fails = 0
			s.opens++
		}
	}
}

// State reports a key's breaker state as "closed", "open" or "half-open".
// Unknown keys (and a disabled set) are closed.
func (s *Breakers) State(key string) string {
	if s == nil || s.cfg.Threshold <= 0 {
		return breakerStateNames[stateClosed]
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.keys[key]
	if b == nil {
		return breakerStateNames[stateClosed]
	}
	return breakerStateNames[b.state]
}

// OpenCount counts keys currently refusing traffic.
func (s *Breakers) OpenCount() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, b := range s.keys {
		if b.state == stateOpen {
			n++
		}
	}
	return n
}

// Counts snapshots the set-wide activity counters: closed/half-open→open
// transitions, open→half-open probe admissions, and fast-fail refusals.
func (s *Breakers) Counts() (opens, halfOpens, fastFails uint64) {
	if s == nil {
		return 0, 0, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.opens, s.halfOpens, s.fastFails
}
