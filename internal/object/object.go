// Package object implements the CBFWW object hierarchy of §4.1 and §5:
//
//	raw web objects ⊂ physical pages ⊂ logical pages ⊂ semantic regions
//
// Raw web objects are single files (an html container, an embedded image).
// A physical page is the composite visual unit: container plus components.
// A logical page is a frequently traversed path of physical pages. A
// semantic region is a cluster of logical pages around a topical centroid.
//
// The hierarchy also carries the paper's structural priority rule (Fig. 2):
// the priority of an object is the *maximum* of its containers' priorities,
// never the sum of its own raw reference counts — a shared image fetched 20
// times through two pages accessed 12 and 7 times has priority 12.
package object

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"cbfww/internal/core"
)

// Kind is the hierarchy level of an object.
type Kind int

// Hierarchy levels, ordered bottom-up. Containment links always go from a
// Kind to the Kind directly below it.
const (
	KindRaw Kind = iota
	KindPhysical
	KindLogical
	KindRegion
	numKinds
)

// String names the kind for logs and query results.
func (k Kind) String() string {
	switch k {
	case KindRaw:
		return "raw"
	case KindPhysical:
		return "physical"
	case KindLogical:
		return "logical"
	case KindRegion:
		return "region"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Valid reports whether k names a real level.
func (k Kind) Valid() bool { return k >= KindRaw && k < numKinds }

// BodyLoader resolves an object's body on demand — the handle pages carry
// instead of an inline string once payload bytes live in the Storage
// Manager's tier backends rather than the heap. Loaders must be safe for
// concurrent use and must not call back into the Hierarchy that owns the
// object's shard-level locks.
type BodyLoader func() (string, error)

// Object is one node of the hierarchy.
type Object struct {
	ID   core.ObjectID
	Kind Kind
	// Key is the natural identifier on the object's level: the URL for raw
	// objects and physical pages, the path key ("a -> b -> c") for logical
	// pages, a region name for semantic regions. Unique per Kind.
	Key string
	// Title and Body hold the indexable content. For a logical page they
	// are the §5.3 assembly (anchor texts + terminal title; terminal body).
	// Objects created with a loader keep Body empty and resolve it lazily
	// through BodyText.
	Title, Body string
	// Size is the storage footprint of the object itself (container file
	// for physical pages — component sizes live on the components).
	Size core.Bytes
	// loader, when set, resolves the body from the storage hierarchy.
	// Immutable after creation, so reads need no lock.
	loader BodyLoader
}

// BodyText returns the object's body, resolving the lazy loader when one
// is set (falling back to the inline Body if the load fails — callers on
// degraded paths prefer stale text over none).
func (o *Object) BodyText() string {
	if o.loader != nil {
		if body, err := o.loader(); err == nil {
			return body
		}
	}
	return o.Body
}

// Content returns the indexable text of the object.
func (o *Object) Content() string {
	body := o.BodyText()
	if o.Title == "" {
		return body
	}
	if body == "" {
		return o.Title
	}
	return o.Title + "\n" + body
}

// Hierarchy is the containment graph over objects. Safe for concurrent
// use.
type Hierarchy struct {
	mu      sync.RWMutex
	alloc   *core.IDAllocator
	objects map[core.ObjectID]*Object
	byKey   [numKinds]map[string]core.ObjectID
	// children[p] lists contained objects in insertion order (order matters
	// for logical-page paths); parents[c] lists containers.
	children map[core.ObjectID][]core.ObjectID
	parents  map[core.ObjectID][]core.ObjectID
}

// NewHierarchy returns an empty hierarchy with its own ID space.
func NewHierarchy() *Hierarchy {
	h := &Hierarchy{
		alloc:    core.NewIDAllocator(),
		objects:  make(map[core.ObjectID]*Object),
		children: make(map[core.ObjectID][]core.ObjectID),
		parents:  make(map[core.ObjectID][]core.ObjectID),
	}
	for k := range h.byKey {
		h.byKey[k] = make(map[string]core.ObjectID)
	}
	return h
}

// Add inserts a new object of the given kind and returns it. The key must
// be unique within the kind.
func (h *Hierarchy) Add(kind Kind, key string, size core.Bytes, title, body string) (*Object, error) {
	return h.add(kind, key, core.InvalidID, size, title, body, nil)
}

// AddWithLoader inserts a new object whose body is resolved lazily
// through loader instead of being held inline — the shape the warehouse
// uses for pages whose payload lives in the storage tiers.
func (h *Hierarchy) AddWithLoader(kind Kind, key string, size core.Bytes, title string, loader BodyLoader) (*Object, error) {
	return h.add(kind, key, core.InvalidID, size, title, "", loader)
}

// Restore re-inserts an object under its persisted ID — the rehydration
// path after a process restart, where storage placements and catalogs
// reference the IDs of a previous life. The allocator's high-water mark
// is bumped past the ID so future fresh objects cannot collide. An ID or
// key already in use is an error.
func (h *Hierarchy) Restore(kind Kind, key string, id core.ObjectID, size core.Bytes, title string, loader BodyLoader) (*Object, error) {
	if !id.Valid() {
		return nil, fmt.Errorf("object: restore %s %q: %w: invalid id", kind, key, core.ErrInvalid)
	}
	return h.add(kind, key, id, size, title, "", loader)
}

func (h *Hierarchy) add(kind Kind, key string, id core.ObjectID, size core.Bytes, title, body string, loader BodyLoader) (*Object, error) {
	if !kind.Valid() {
		return nil, fmt.Errorf("object: %w: kind %d", core.ErrInvalid, int(kind))
	}
	if key == "" {
		return nil, fmt.Errorf("object: %w: empty key", core.ErrInvalid)
	}
	if size < 0 {
		return nil, fmt.Errorf("object: %w: negative size", core.ErrInvalid)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.byKey[kind][key]; dup {
		return nil, fmt.Errorf("object: %s %q: %w", kind, key, core.ErrExists)
	}
	if id == core.InvalidID {
		id = h.alloc.Next()
	} else {
		if _, taken := h.objects[id]; taken {
			return nil, fmt.Errorf("object: restore %s %q: id %v: %w", kind, key, id, core.ErrExists)
		}
		h.alloc.Bump(id)
	}
	o := &Object{
		ID:     id,
		Kind:   kind,
		Key:    key,
		Title:  title,
		Body:   body,
		Size:   size,
		loader: loader,
	}
	h.objects[o.ID] = o
	h.byKey[kind][key] = o.ID
	return o, nil
}

// Get returns the object with the given ID.
func (h *Hierarchy) Get(id core.ObjectID) (*Object, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	o, ok := h.objects[id]
	return o, ok
}

// ByKey returns the object of the given kind with the given key.
func (h *Hierarchy) ByKey(kind Kind, key string) (*Object, bool) {
	if !kind.Valid() {
		return nil, false
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	id, ok := h.byKey[kind][key]
	if !ok {
		return nil, false
	}
	return h.objects[id], true
}

// Link records that parent contains child. The parent's kind must be
// exactly one level above the child's; duplicate links are rejected so
// shared-count bookkeeping stays exact.
func (h *Hierarchy) Link(parent, child core.ObjectID) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.objects[parent]
	if !ok {
		return fmt.Errorf("object: link parent %v: %w", parent, core.ErrNotFound)
	}
	c, ok := h.objects[child]
	if !ok {
		return fmt.Errorf("object: link child %v: %w", child, core.ErrNotFound)
	}
	if p.Kind != c.Kind+1 {
		return fmt.Errorf("object: %w: cannot link %s under %s", core.ErrInvalid, c.Kind, p.Kind)
	}
	for _, existing := range h.children[parent] {
		if existing == child {
			return fmt.Errorf("object: link %v->%v: %w", parent, child, core.ErrExists)
		}
	}
	h.children[parent] = append(h.children[parent], child)
	h.parents[child] = append(h.parents[child], parent)
	return nil
}

// Children returns the contained objects in insertion order.
func (h *Hierarchy) Children(id core.ObjectID) []core.ObjectID {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return append([]core.ObjectID(nil), h.children[id]...)
}

// Parents returns the containers of id.
func (h *Hierarchy) Parents(id core.ObjectID) []core.ObjectID {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return append([]core.ObjectID(nil), h.parents[id]...)
}

// SharedCount returns r of Table 2: the number of containers of id.
func (h *Hierarchy) SharedCount(id core.ObjectID) int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.parents[id])
}

// Len returns the number of objects of the given kind (or all objects for
// an invalid kind).
func (h *Hierarchy) Len(kind Kind) int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if kind.Valid() {
		return len(h.byKey[kind])
	}
	return len(h.objects)
}

// ForEach calls fn for every object of the given kind, in ascending ID
// order. fn must not mutate the hierarchy.
func (h *Hierarchy) ForEach(kind Kind, fn func(*Object)) {
	h.mu.RLock()
	ids := make([]core.ObjectID, 0, len(h.byKey[kind]))
	for _, id := range h.byKey[kind] {
		ids = append(ids, id)
	}
	h.mu.RUnlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if o, ok := h.Get(id); ok {
			fn(o)
		}
	}
}

// EffectivePriorities applies the structural rule of §4.2 to a base
// priority assignment. base gives each object's own priority (usually only
// meaningful for top-level or parentless objects — e.g. physical pages'
// measured reference frequencies, or semantic regions' aggregate heat).
//
// The effective priority of an object with containers is the maximum of its
// containers' *effective* priorities; an object without containers keeps
// its base priority. Because links only point one level down, propagation
// is a single top-down sweep.
func (h *Hierarchy) EffectivePriorities(base map[core.ObjectID]core.Priority) map[core.ObjectID]core.Priority {
	h.mu.RLock()
	defer h.mu.RUnlock()
	eff := make(map[core.ObjectID]core.Priority, len(h.objects))
	for k := KindRegion; ; k-- {
		for _, id := range h.byKey[k] {
			if parents := h.parents[id]; len(parents) > 0 {
				best := core.Priority(0)
				first := true
				for _, p := range parents {
					if ep, ok := eff[p]; ok && (first || ep > best) {
						best, first = ep, false
					}
				}
				if !first {
					eff[id] = best
					continue
				}
			}
			eff[id] = base[id]
		}
		if k == KindRaw {
			break
		}
	}
	return eff
}

// LogicalKey builds the canonical key of a logical page from its physical
// page URLs.
func LogicalKey(urls []string) string { return strings.Join(urls, " -> ") }
