package object

import (
	"errors"
	"fmt"
	"strings"

	"cbfww/internal/core"
	"cbfww/internal/simweb"
)

// Builder wires web-level structures (pages, paths) into the hierarchy,
// performing the §5 assembly rules. It is a thin stateful helper around a
// Hierarchy; one Builder per Hierarchy.
type Builder struct {
	H *Hierarchy
}

// NewBuilder returns a Builder over h.
func NewBuilder(h *Hierarchy) *Builder { return &Builder{H: h} }

// getOrAdd returns the object at (kind, key), creating it when absent.
// Concurrent builders may race a ByKey miss against each other; the loser's
// Add fails with ErrExists, in which case the winner's object is returned.
func (b *Builder) getOrAdd(kind Kind, key string, size core.Bytes, title, body string) (*Object, error) {
	return b.getOrAddLoaded(kind, key, size, title, body, nil)
}

// getOrAddLoaded is getOrAdd with an optional lazy body loader.
func (b *Builder) getOrAddLoaded(kind Kind, key string, size core.Bytes, title, body string, loader BodyLoader) (*Object, error) {
	if existing, ok := b.H.ByKey(kind, key); ok {
		return existing, nil
	}
	var o *Object
	var err error
	if loader != nil {
		o, err = b.H.AddWithLoader(kind, key, size, title, loader)
	} else {
		o, err = b.H.Add(kind, key, size, title, body)
	}
	if err == nil {
		return o, nil
	}
	if isExists(err) {
		if existing, ok := b.H.ByKey(kind, key); ok {
			return existing, nil
		}
	}
	return nil, err
}

// AddPhysicalPage registers a fetched web page as a physical page object
// with its container and component raw objects, linking them. Re-adding an
// existing page returns the existing object (idempotent admission), but
// newly appearing components are still linked.
//
// With a non-nil loader, the physical page and its container raw object
// resolve their bodies through it (the storage hierarchy) rather than
// pinning the fetched string in the heap; a nil loader keeps the body
// inline, preserving the fully-in-heap shape.
func (b *Builder) AddPhysicalPage(p *simweb.Page, loader BodyLoader) (*Object, error) {
	if existing, ok := b.H.ByKey(KindPhysical, p.URL); ok {
		return existing, nil
	}
	body := p.Body
	if loader != nil {
		body = ""
	}
	// The physical page's size is the whole visual unit: container plus
	// components (the paper's queries filter on p.size).
	phys, err := b.getOrAddLoaded(KindPhysical, p.URL, p.TotalSize(), p.Title, body, loader)
	if err != nil {
		return nil, err
	}
	// Container raw object carries the page's own size and content.
	container, err := b.getOrAddLoaded(KindRaw, p.URL, p.Size, p.Title, body, loader)
	if err != nil {
		return nil, err
	}
	if err := b.H.Link(phys.ID, container.ID); err != nil && !isExists(err) {
		return nil, err
	}
	for _, c := range p.Components {
		// Components are routinely shared across pages (that is the point
		// of Fig. 2), so concurrent admissions on different shards race to
		// create them; getOrAdd resolves the race to a single object.
		comp, err := b.getOrAdd(KindRaw, c.URL, c.Size, "", "")
		if err != nil {
			return nil, err
		}
		if err := b.H.Link(phys.ID, comp.ID); err != nil && !isExists(err) {
			return nil, err
		}
	}
	return phys, nil
}

// PathStep is one step of a traversal path: the physical page URL plus the
// anchor text of the link that was followed *from* this page (empty on the
// terminal document).
type PathStep struct {
	URL        string
	AnchorText string
}

// AddLogicalPage registers a frequently traversed path as a logical page,
// linking it over the physical pages on the path. Content follows §5.3:
//
//	content(l) = ⟨ text(a₁)+…+text(aₙ₋₁)+title(dₙ), body(dₙ) ⟩
//
// i.e. the title is the concatenated anchor texts plus the terminal
// document's title, and the body is the terminal's body. Every physical
// page on the path must already exist. Re-adding an existing path returns
// the existing object.
func (b *Builder) AddLogicalPage(steps []PathStep) (*Object, error) {
	if len(steps) == 0 {
		return nil, fmt.Errorf("object: %w: empty path", core.ErrInvalid)
	}
	urls := make([]string, len(steps))
	for i, s := range steps {
		urls[i] = s.URL
	}
	key := LogicalKey(urls)
	if existing, ok := b.H.ByKey(KindLogical, key); ok {
		return existing, nil
	}

	physIDs := make([]core.ObjectID, len(steps))
	var terminal *Object
	for i, s := range steps {
		p, ok := b.H.ByKey(KindPhysical, s.URL)
		if !ok {
			return nil, fmt.Errorf("object: logical path step %q: %w", s.URL, core.ErrNotFound)
		}
		physIDs[i] = p.ID
		if i == len(steps)-1 {
			terminal = p
		}
	}

	var titleParts []string
	for _, s := range steps[:len(steps)-1] {
		if s.AnchorText != "" {
			titleParts = append(titleParts, s.AnchorText)
		}
	}
	titleParts = append(titleParts, terminal.Title)
	title := strings.Join(titleParts, ", ")

	logical, err := b.getOrAdd(KindLogical, key, 0, title, terminal.BodyText())
	if err != nil {
		return nil, err
	}
	for _, pid := range physIDs {
		if err := b.H.Link(logical.ID, pid); err != nil && !isExists(err) {
			return nil, err
		}
	}
	return logical, nil
}

// AddRegion registers a semantic region and links the given logical pages
// into it.
func (b *Builder) AddRegion(name string, logicalIDs []core.ObjectID) (*Object, error) {
	region, err := b.getOrAdd(KindRegion, name, 0, name, "")
	if err != nil {
		return nil, err
	}
	for _, lid := range logicalIDs {
		if err := b.H.Link(region.ID, lid); err != nil && !isExists(err) {
			return nil, err
		}
	}
	return region, nil
}

func isExists(err error) bool { return errors.Is(err, core.ErrExists) }
