package object

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"cbfww/internal/core"
	"cbfww/internal/simweb"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindRaw: "raw", KindPhysical: "physical",
		KindLogical: "logical", KindRegion: "region", Kind(9): "kind(9)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
	if Kind(9).Valid() || Kind(-1).Valid() {
		t.Error("invalid kind reported valid")
	}
}

func TestHierarchyAddAndLookup(t *testing.T) {
	h := NewHierarchy()
	o, err := h.Add(KindRaw, "http://a/x.html", 4*core.KB, "Title", "body text")
	if err != nil {
		t.Fatal(err)
	}
	if !o.ID.Valid() {
		t.Error("invalid ID assigned")
	}
	got, ok := h.Get(o.ID)
	if !ok || got.Key != "http://a/x.html" {
		t.Errorf("Get = %+v, %v", got, ok)
	}
	byKey, ok := h.ByKey(KindRaw, "http://a/x.html")
	if !ok || byKey.ID != o.ID {
		t.Error("ByKey mismatch")
	}
	// Same key under a different kind is fine.
	if _, err := h.Add(KindPhysical, "http://a/x.html", 0, "", ""); err != nil {
		t.Errorf("same key different kind rejected: %v", err)
	}
	// Duplicate within kind is not.
	if _, err := h.Add(KindRaw, "http://a/x.html", 0, "", ""); !errors.Is(err, core.ErrExists) {
		t.Errorf("duplicate err = %v", err)
	}
	if h.Len(KindRaw) != 1 || h.Len(Kind(-1)) != 2 {
		t.Errorf("Len: raw=%d all=%d", h.Len(KindRaw), h.Len(Kind(-1)))
	}
}

func TestHierarchyAddValidation(t *testing.T) {
	h := NewHierarchy()
	if _, err := h.Add(Kind(42), "k", 0, "", ""); !errors.Is(err, core.ErrInvalid) {
		t.Errorf("bad kind err = %v", err)
	}
	if _, err := h.Add(KindRaw, "", 0, "", ""); !errors.Is(err, core.ErrInvalid) {
		t.Errorf("empty key err = %v", err)
	}
	if _, err := h.Add(KindRaw, "k", -1, "", ""); !errors.Is(err, core.ErrInvalid) {
		t.Errorf("negative size err = %v", err)
	}
}

func TestLinkKindDiscipline(t *testing.T) {
	h := NewHierarchy()
	raw, _ := h.Add(KindRaw, "r", 0, "", "")
	phys, _ := h.Add(KindPhysical, "p", 0, "", "")
	logi, _ := h.Add(KindLogical, "l", 0, "", "")

	if err := h.Link(phys.ID, raw.ID); err != nil {
		t.Fatalf("valid link rejected: %v", err)
	}
	if err := h.Link(phys.ID, raw.ID); !errors.Is(err, core.ErrExists) {
		t.Errorf("duplicate link err = %v", err)
	}
	if err := h.Link(logi.ID, raw.ID); !errors.Is(err, core.ErrInvalid) {
		t.Errorf("level-skipping link err = %v", err)
	}
	if err := h.Link(raw.ID, phys.ID); !errors.Is(err, core.ErrInvalid) {
		t.Errorf("upward link err = %v", err)
	}
	if err := h.Link(999, raw.ID); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("unknown parent err = %v", err)
	}
	if err := h.Link(phys.ID, 999); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("unknown child err = %v", err)
	}

	if got := h.Children(phys.ID); !reflect.DeepEqual(got, []core.ObjectID{raw.ID}) {
		t.Errorf("Children = %v", got)
	}
	if got := h.Parents(raw.ID); !reflect.DeepEqual(got, []core.ObjectID{phys.ID}) {
		t.Errorf("Parents = %v", got)
	}
	if h.SharedCount(raw.ID) != 1 {
		t.Errorf("SharedCount = %d", h.SharedCount(raw.ID))
	}
}

// The Figure 2 scenario: raw object E5 shared by physical pages D2 (12
// refs/week) and D3 (7 refs/week). E5's effective priority must be 12 —
// the max — not its own 19-20 direct fetches.
func TestEffectivePrioritiesFig2(t *testing.T) {
	h := NewHierarchy()
	d2, _ := h.Add(KindPhysical, "D2", 0, "", "")
	d3, _ := h.Add(KindPhysical, "D3", 0, "", "")
	e5, _ := h.Add(KindRaw, "E5", 0, "", "")
	if err := h.Link(d2.ID, e5.ID); err != nil {
		t.Fatal(err)
	}
	if err := h.Link(d3.ID, e5.ID); err != nil {
		t.Fatal(err)
	}
	base := map[core.ObjectID]core.Priority{
		d2.ID: 12,
		d3.ID: 7,
		e5.ID: 20, // naive per-object count — must be ignored
	}
	eff := h.EffectivePriorities(base)
	if eff[e5.ID] != 12 {
		t.Errorf("eff(E5) = %v, want 12 (max of containers)", eff[e5.ID])
	}
	if eff[d2.ID] != 12 || eff[d3.ID] != 7 {
		t.Errorf("container priorities changed: d2=%v d3=%v", eff[d2.ID], eff[d3.ID])
	}
	if h.SharedCount(e5.ID) != 2 {
		t.Errorf("SharedCount(E5) = %d", h.SharedCount(e5.ID))
	}
}

// Priorities flow down the full four-level hierarchy: a hot semantic
// region lifts its logical pages, physical pages and raw objects.
func TestEffectivePrioritiesFourLevels(t *testing.T) {
	h := NewHierarchy()
	region, _ := h.Add(KindRegion, "R", 0, "", "")
	logi, _ := h.Add(KindLogical, "L", 0, "", "")
	phys, _ := h.Add(KindPhysical, "P", 0, "", "")
	raw, _ := h.Add(KindRaw, "W", 0, "", "")
	for _, link := range [][2]core.ObjectID{
		{region.ID, logi.ID}, {logi.ID, phys.ID}, {phys.ID, raw.ID},
	} {
		if err := h.Link(link[0], link[1]); err != nil {
			t.Fatal(err)
		}
	}
	eff := h.EffectivePriorities(map[core.ObjectID]core.Priority{region.ID: 0.9})
	for _, o := range []*Object{region, logi, phys, raw} {
		if eff[o.ID] != 0.9 {
			t.Errorf("eff(%s) = %v, want 0.9", o.Key, eff[o.ID])
		}
	}
}

// Parentless objects keep their base priority.
func TestEffectivePrioritiesParentless(t *testing.T) {
	h := NewHierarchy()
	solo, _ := h.Add(KindPhysical, "solo", 0, "", "")
	eff := h.EffectivePriorities(map[core.ObjectID]core.Priority{solo.ID: 0.3})
	if eff[solo.ID] != 0.3 {
		t.Errorf("eff(solo) = %v", eff[solo.ID])
	}
}

// Property: effective priority of any object with containers equals the
// max of its containers' effective priorities, and never exceeds the
// global max base priority.
func TestEffectivePrioritiesProperty(t *testing.T) {
	f := func(basesRaw []uint8, links []uint8) bool {
		h := NewHierarchy()
		var phys, raws []*Object
		for i := 0; i < 6; i++ {
			p, _ := h.Add(KindPhysical, "p"+string(rune('0'+i)), 0, "", "")
			phys = append(phys, p)
			r, _ := h.Add(KindRaw, "r"+string(rune('0'+i)), 0, "", "")
			raws = append(raws, r)
		}
		for _, l := range links {
			h.Link(phys[int(l)%6].ID, raws[int(l/6)%6].ID)
		}
		base := make(map[core.ObjectID]core.Priority)
		maxBase := core.Priority(0)
		for i, b := range basesRaw {
			if i >= 6 {
				break
			}
			p := core.Priority(b) / 255
			base[phys[i].ID] = p
			if p > maxBase {
				maxBase = p
			}
		}
		eff := h.EffectivePriorities(base)
		for _, r := range raws {
			parents := h.Parents(r.ID)
			if len(parents) == 0 {
				if eff[r.ID] != base[r.ID] {
					return false
				}
				continue
			}
			want := core.Priority(0)
			first := true
			for _, p := range parents {
				if first || eff[p] > want {
					want, first = eff[p], false
				}
			}
			if eff[r.ID] != want || eff[r.ID] > maxBase {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestBuilderAddPhysicalPage(t *testing.T) {
	h := NewHierarchy()
	b := NewBuilder(h)
	page := &simweb.Page{
		URL:   "http://a/x.html",
		Title: "Kyoto Station",
		Body:  "access to the shinkansen",
		Size:  4 * core.KB,
		Components: []simweb.Component{
			{URL: "http://a/img.png", Size: 20 * core.KB},
			{URL: "http://a/map.png", Size: 30 * core.KB},
		},
	}
	phys, err := b.AddPhysicalPage(page, nil)
	if err != nil {
		t.Fatal(err)
	}
	if phys.Kind != KindPhysical {
		t.Errorf("kind = %v", phys.Kind)
	}
	kids := h.Children(phys.ID)
	if len(kids) != 3 {
		t.Fatalf("children = %v, want container + 2 components", kids)
	}
	container, ok := h.ByKey(KindRaw, "http://a/x.html")
	if !ok || container.Size != 4*core.KB {
		t.Errorf("container = %+v", container)
	}
	// Idempotent re-add.
	again, err := b.AddPhysicalPage(page, nil)
	if err != nil || again.ID != phys.ID {
		t.Errorf("re-add = %+v, %v", again, err)
	}
	if len(h.Children(phys.ID)) != 3 {
		t.Error("re-add duplicated children")
	}

	// A second page sharing a component raises its shared count.
	page2 := &simweb.Page{
		URL: "http://a/y.html", Title: "Y", Body: "b", Size: core.KB,
		Components: []simweb.Component{{URL: "http://a/img.png", Size: 20 * core.KB}},
	}
	if _, err := b.AddPhysicalPage(page2, nil); err != nil {
		t.Fatal(err)
	}
	img, _ := h.ByKey(KindRaw, "http://a/img.png")
	if h.SharedCount(img.ID) != 2 {
		t.Errorf("shared count = %d, want 2", h.SharedCount(img.ID))
	}
}

// Figure 6 / §5.3: logical document content assembly with the Kyoto
// example from the paper.
func TestBuilderAddLogicalPageKyotoExample(t *testing.T) {
	h := NewHierarchy()
	b := NewBuilder(h)
	pages := []*simweb.Page{
		{URL: "http://k/travel.html", Title: "Kyoto tourism", Body: "sights", Size: core.KB},
		{URL: "http://k/bus.html", Title: "Bus guide", Body: "routes", Size: core.KB},
		{URL: "http://k/station.html", Title: "Access to the Shinkansen superexpress", Body: "platform 11 schedule", Size: core.KB},
	}
	for _, p := range pages {
		if _, err := b.AddPhysicalPage(p, nil); err != nil {
			t.Fatal(err)
		}
	}
	logi, err := b.AddLogicalPage([]PathStep{
		{URL: "http://k/travel.html", AnchorText: "Travel in Kyoto"},
		{URL: "http://k/bus.html", AnchorText: "List of bus stations"},
		{URL: "http://k/station.html"},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantTitle := "Travel in Kyoto, List of bus stations, Access to the Shinkansen superexpress"
	if logi.Title != wantTitle {
		t.Errorf("title = %q\nwant   %q", logi.Title, wantTitle)
	}
	if logi.Body != "platform 11 schedule" {
		t.Errorf("body = %q, want terminal body", logi.Body)
	}
	kids := h.Children(logi.ID)
	if len(kids) != 3 {
		t.Fatalf("logical page links %d physicals", len(kids))
	}
	// Order of children preserves the path.
	first, _ := h.Get(kids[0])
	if first.Key != "http://k/travel.html" {
		t.Errorf("path order lost: first child = %q", first.Key)
	}
	// Idempotent re-add.
	again, err := b.AddLogicalPage([]PathStep{
		{URL: "http://k/travel.html", AnchorText: "Travel in Kyoto"},
		{URL: "http://k/bus.html", AnchorText: "List of bus stations"},
		{URL: "http://k/station.html"},
	})
	if err != nil || again.ID != logi.ID {
		t.Errorf("re-add = %v, %v", again, err)
	}
}

func TestBuilderAddLogicalPageErrors(t *testing.T) {
	h := NewHierarchy()
	b := NewBuilder(h)
	if _, err := b.AddLogicalPage(nil); !errors.Is(err, core.ErrInvalid) {
		t.Errorf("empty path err = %v", err)
	}
	if _, err := b.AddLogicalPage([]PathStep{{URL: "http://missing"}}); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("missing physical err = %v", err)
	}
}

func TestBuilderAddRegion(t *testing.T) {
	h := NewHierarchy()
	b := NewBuilder(h)
	p := &simweb.Page{URL: "http://a/x", Title: "T", Body: "B", Size: core.KB}
	if _, err := b.AddPhysicalPage(p, nil); err != nil {
		t.Fatal(err)
	}
	logi, err := b.AddLogicalPage([]PathStep{{URL: "http://a/x"}})
	if err != nil {
		t.Fatal(err)
	}
	region, err := b.AddRegion("travel", []core.ObjectID{logi.ID})
	if err != nil {
		t.Fatal(err)
	}
	if region.Kind != KindRegion {
		t.Errorf("kind = %v", region.Kind)
	}
	if got := h.Parents(logi.ID); len(got) != 1 || got[0] != region.ID {
		t.Errorf("region link missing: %v", got)
	}
	// Adding more logicals to the same region reuses it.
	again, err := b.AddRegion("travel", nil)
	if err != nil || again.ID != region.ID {
		t.Errorf("region re-add = %v, %v", again, err)
	}
}

func TestObjectContent(t *testing.T) {
	o := &Object{Title: "T", Body: "B"}
	if o.Content() != "T\nB" {
		t.Errorf("Content = %q", o.Content())
	}
	if (&Object{Body: "B"}).Content() != "B" {
		t.Error("title-less content")
	}
	if (&Object{Title: "T"}).Content() != "T" {
		t.Error("body-less content")
	}
}

func TestForEachOrderedByID(t *testing.T) {
	h := NewHierarchy()
	for _, k := range []string{"c", "a", "b"} {
		if _, err := h.Add(KindRaw, k, 0, "", ""); err != nil {
			t.Fatal(err)
		}
	}
	var keys []string
	h.ForEach(KindRaw, func(o *Object) { keys = append(keys, o.Key) })
	// Insertion order == ID order.
	if strings.Join(keys, "") != "cab" {
		t.Errorf("ForEach order = %v", keys)
	}
}

func TestLogicalKey(t *testing.T) {
	if got := LogicalKey([]string{"/a", "/b"}); got != "/a -> /b" {
		t.Errorf("LogicalKey = %q", got)
	}
}
