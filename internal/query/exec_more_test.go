package query

import (
	"testing"

	"cbfww/internal/core"
	"cbfww/internal/object"
	"cbfww/internal/simweb"
	"cbfww/internal/usage"
)

// builderSource builds a full four-level hierarchy via the object.Builder,
// exercising the fields the paper-scenario fixture doesn't reach
// (components, logicals, region name).
func builderSource(t *testing.T) *fakeSource {
	t.Helper()
	h := object.NewHierarchy()
	b := object.NewBuilder(h)
	pages := []*simweb.Page{
		{URL: "http://s/a", Title: "Alpha report", Body: "alpha body text", Size: 10_000,
			Components: []simweb.Component{{URL: "http://s/shared.png", Size: 5000}}},
		{URL: "http://s/b", Title: "Beta report", Body: "beta body text", Size: 20_000,
			Components: []simweb.Component{{URL: "http://s/shared.png", Size: 5000}}},
		{URL: "http://s/c", Title: "Gamma notes", Body: "gamma", Size: 500},
	}
	for _, p := range pages {
		if _, err := b.AddPhysicalPage(p, nil); err != nil {
			t.Fatal(err)
		}
	}
	l, err := b.AddLogicalPage([]object.PathStep{
		{URL: "http://s/a", AnchorText: "to beta"},
		{URL: "http://s/b"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddRegion("reports", []core.ObjectID{l.ID}); err != nil {
		t.Fatal(err)
	}
	return &fakeSource{
		h:     h,
		usage: map[core.ObjectID]usage.Snapshot{},
		freq:  map[core.ObjectID]float64{},
	}
}

func TestQueryRawObjects(t *testing.T) {
	src := builderSource(t)
	rows, err := RunString(`SELECT r.url, r.size FROM Raw_Object r WHERE r.size > 4,000`, src)
	if err != nil {
		t.Fatal(err)
	}
	// Raw objects > 4000 bytes: containers a (10k), b (20k) and shared.png
	// (5k); c's container is 500.
	if len(rows) != 3 {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestQueryComponentsField(t *testing.T) {
	src := builderSource(t)
	// Pages containing the shared component: a and b.
	rows, err := RunString(`
		SELECT p.url FROM Physical_Page p
		WHERE EXISTS (SELECT * FROM Raw_Object r
		              WHERE r.oid IN p.components AND r.url = 'http://s/shared.png')`, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestQueryRegions(t *testing.T) {
	src := builderSource(t)
	rows, err := RunString(`SELECT g.name FROM Semantic_Region g WHERE g.name = 'reports'`, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Values[0].Str != "reports" {
		t.Fatalf("rows = %+v", rows)
	}
	// logicals set field usable in IN.
	rows2, err := RunString(`
		SELECT l.path FROM Logical_Page l
		WHERE EXISTS (SELECT * FROM Semantic_Region g WHERE l.oid IN g.logicals)`, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows2) != 1 {
		t.Fatalf("rows = %+v", rows2)
	}
}

func TestQueryBodyFieldAndKey(t *testing.T) {
	src := builderSource(t)
	rows, err := RunString(`SELECT p.key, p.body FROM Physical_Page p WHERE p.body MENTION 'alpha'`, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Values[0].Str != "http://s/a" {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestQueryStringComparisons(t *testing.T) {
	src := builderSource(t)
	rows, err := RunString(`SELECT p.url FROM Physical_Page p WHERE p.url >= 'http://s/b' AND p.url <= 'http://s/c'`, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	rows2, err := RunString(`SELECT p.url FROM Physical_Page p WHERE p.url != 'http://s/a' AND p.url < 'http://s/c'`, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows2) != 1 || rows2[0].Values[0].Str != "http://s/b" {
		t.Fatalf("rows = %+v", rows2)
	}
}

func TestQueryOrShortCircuit(t *testing.T) {
	src := builderSource(t)
	// OR's right side would error on a bad field, but the left matches
	// everything first for page a... note: short-circuit is per-row, so
	// rows failing the left side WILL evaluate the right and error. Use a
	// valid right side and just verify OR semantics.
	rows, err := RunString(`SELECT p.url FROM Physical_Page p WHERE p.url = 'http://s/a' OR p.size > 15,000`, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestQueryUsageDefaultsWhenUntracked(t *testing.T) {
	src := builderSource(t)
	rows, err := RunString(`SELECT p.freq, p.lastref, p.firstref, p.shared FROM Physical_Page p WHERE p.url = 'http://s/a'`, src)
	if err != nil {
		t.Fatal(err)
	}
	v := rows[0].Values
	if v[0].Num != 0 {
		t.Errorf("freq default = %d", v[0].Num)
	}
	if v[1].Num != int64(core.TimeNever) || v[2].Num != int64(core.TimeNever) {
		t.Errorf("time defaults = %d, %d", v[1].Num, v[2].Num)
	}
}

func TestQueryFieldErrorsOnWrongKind(t *testing.T) {
	src := builderSource(t)
	bad := []string{
		`SELECT r.physicals FROM Raw_Object r`,
		`SELECT p.logicals FROM Physical_Page p`,
		`SELECT l.components FROM Logical_Page l`,
		`SELECT l.url FROM Logical_Page l`,
		`SELECT p.name FROM Physical_Page p`,
		`SELECT r.path FROM Raw_Object r`,
	}
	for _, q := range bad {
		if _, err := RunString(q, src); err == nil {
			t.Errorf("%q succeeded", q)
		}
	}
}

func TestEndAtOnEmptyLogical(t *testing.T) {
	h := object.NewHierarchy()
	if _, err := h.Add(object.KindLogical, "empty", 0, "", ""); err != nil {
		t.Fatal(err)
	}
	src := &fakeSource{h: h, usage: map[core.ObjectID]usage.Snapshot{}, freq: map[core.ObjectID]float64{}}
	rows, err := RunString(`
		SELECT l.path FROM Logical_Page l
		WHERE end_at(l.oid) IN (SELECT p.oid FROM Physical_Page p)`, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Errorf("childless logical matched: %+v", rows)
	}
}
