package query

import (
	"fmt"
	"sort"

	"cbfww/internal/core"
	"cbfww/internal/object"
	"cbfww/internal/text"
	"cbfww/internal/usage"
)

// Source is the executor's view of the warehouse: object collections plus
// the usage metadata the modifiers order by.
type Source interface {
	// Rows returns all objects of the given kind.
	Rows(kind object.Kind) []*object.Object
	// UsageOf returns the Table 2 snapshot of an object; ok is false for
	// never-referenced objects (they sort as least recently/frequently
	// used).
	UsageOf(id core.ObjectID) (usage.Snapshot, bool)
	// FrequencyOf returns the aged reference frequency used by MFU/LFU.
	FrequencyOf(id core.ObjectID) float64
	// ChildrenOf returns the contained objects (the logical page's
	// physicals, the region's logicals), in structural order.
	ChildrenOf(id core.ObjectID) []core.ObjectID
}

// Run executes a parsed query against the source.
func Run(q *Query, src Source) ([]Row, error) {
	ex := &executor{src: src}
	objs, err := ex.evalFrom(q, nil)
	if err != nil {
		return nil, err
	}
	return ex.project(q, objs)
}

// RunString parses and executes in one step.
func RunString(s string, src Source) ([]Row, error) {
	q, err := Parse(s)
	if err != nil {
		return nil, err
	}
	return Run(q, src)
}

type executor struct {
	src Source
	// rowsCache holds the Rows result per kind for the life of one Run. A
	// correlated sub-query (EXISTS, IN) re-scans its class once per outer
	// row; without the cache each re-scan pays a full snapshot of the
	// hierarchy.
	rowsCache map[object.Kind][]*object.Object
}

// rows returns the objects of a kind, snapshotting the source only on the
// first request per Run.
func (ex *executor) rows(kind object.Kind) []*object.Object {
	if objs, ok := ex.rowsCache[kind]; ok {
		return objs
	}
	if ex.rowsCache == nil {
		ex.rowsCache = make(map[object.Kind][]*object.Object)
	}
	objs := ex.src.Rows(kind)
	ex.rowsCache[kind] = objs
	return objs
}

// env binds aliases to the row objects of enclosing queries.
type env struct {
	parent *env
	alias  string
	obj    *object.Object
}

func (e *env) lookup(alias string) (*object.Object, bool) {
	for cur := e; cur != nil; cur = cur.parent {
		if cur.alias == alias {
			return cur.obj, true
		}
	}
	return nil, false
}

// evalFrom returns the objects of q's class that satisfy its WHERE clause,
// ordered by the modifier and truncated to the limit. outer is the
// enclosing binding environment for correlated sub-queries.
func (ex *executor) evalFrom(q *Query, outer *env) ([]*object.Object, error) {
	rows := ex.rows(q.Class)
	var kept []*object.Object
	for _, o := range rows {
		if q.Where == nil {
			kept = append(kept, o)
			continue
		}
		v, err := ex.eval(q.Where, &env{parent: outer, alias: q.Alias, obj: o})
		if err != nil {
			return nil, err
		}
		if v.Kind != ValBool {
			return nil, fmt.Errorf("query: %w: WHERE clause is not boolean", core.ErrInvalid)
		}
		if v.Bool {
			kept = append(kept, o)
		}
	}
	kept = ex.order(q.Modifier, kept, q.Limit)
	if q.Modifier != ModNone && q.Limit > 0 && q.Limit < len(kept) {
		kept = kept[:q.Limit]
	}
	return kept, nil
}

// orderEntry decorates an object with its usage sort keys so each key is
// computed exactly once per object, not once per comparison.
type orderEntry struct {
	o       *object.Object
	recency core.Time
	freq    float64
}

// order ranks objects per the usage modifier and returns the best limit of
// them in order (all of them when limit <= 0); ties break by ID so results
// are deterministic. ModNone keeps Rows order. When limit is smaller than
// the population, a bounded min-heap selects the winners in
// O(n·log limit) instead of sorting everything.
func (ex *executor) order(m Modifier, objs []*object.Object, limit int) []*object.Object {
	if m == ModNone || len(objs) == 0 {
		return objs
	}
	entries := make([]orderEntry, len(objs))
	for i, o := range objs {
		e := orderEntry{o: o, recency: core.TimeNever}
		if s, ok := ex.src.UsageOf(o.ID); ok {
			e.recency = s.LastRef
		}
		e.freq = ex.src.FrequencyOf(o.ID)
		entries[i] = e
	}
	better := orderBetter(m)
	if limit > 0 && limit < len(entries) {
		// Min-heap over the first limit entries, worst kept at the root.
		h := entries[:limit]
		for i := limit/2 - 1; i >= 0; i-- {
			orderSiftDown(h, i, better)
		}
		for i := limit; i < len(entries); i++ {
			if better(entries[i], h[0]) {
				h[0] = entries[i]
				orderSiftDown(h, 0, better)
			}
		}
		entries = h
	}
	sort.Slice(entries, func(i, j int) bool { return better(entries[i], entries[j]) })
	out := objs[:len(entries)]
	for i, e := range entries {
		out[i] = e.o
	}
	return out
}

// orderBetter returns the strict ranking predicate of a modifier.
func orderBetter(m Modifier) func(a, b orderEntry) bool {
	return func(a, b orderEntry) bool {
		switch m {
		case ModMRU:
			if a.recency != b.recency {
				return a.recency > b.recency
			}
		case ModLRU:
			if a.recency != b.recency {
				return a.recency < b.recency
			}
		case ModMFU:
			if a.freq != b.freq {
				return a.freq > b.freq
			}
		case ModLFU:
			if a.freq != b.freq {
				return a.freq < b.freq
			}
		}
		return a.o.ID < b.o.ID
	}
}

// orderSiftDown restores the min-heap property (worst entry at the root)
// below index i.
func orderSiftDown(h []orderEntry, i int, better func(a, b orderEntry) bool) {
	for {
		worst := i
		if l := 2*i + 1; l < len(h) && better(h[worst], h[l]) {
			worst = l
		}
		if r := 2*i + 2; r < len(h) && better(h[worst], h[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}

// project builds result rows from the SELECT field list (or the canonical
// columns for SELECT *).
func (ex *executor) project(q *Query, objs []*object.Object) ([]Row, error) {
	out := make([]Row, 0, len(objs))
	for _, o := range objs {
		row := Row{ID: o.ID}
		if len(q.Fields) == 0 {
			row.Values = []Value{
				{Kind: ValID, ID: o.ID},
				{Kind: ValStr, Str: o.Key},
			}
		} else {
			for _, f := range q.Fields {
				if f.Alias != q.Alias {
					return nil, fmt.Errorf("query: %w: unknown alias %q in SELECT", core.ErrInvalid, f.Alias)
				}
				v, err := ex.fieldValue(o, f.Field)
				if err != nil {
					return nil, err
				}
				row.Values = append(row.Values, v)
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// fieldValue resolves one attribute of an object.
func (ex *executor) fieldValue(o *object.Object, field string) (Value, error) {
	switch field {
	case "oid":
		return Value{Kind: ValID, ID: o.ID}, nil
	case "title":
		return Value{Kind: ValStr, Str: o.Title}, nil
	case "body":
		return Value{Kind: ValStr, Str: o.BodyText()}, nil
	case "size":
		return Value{Kind: ValNum, Num: int64(o.Size)}, nil
	case "url":
		if o.Kind == object.KindRaw || o.Kind == object.KindPhysical {
			return Value{Kind: ValStr, Str: o.Key}, nil
		}
		return Value{}, fmt.Errorf("query: %w: %s has no url", core.ErrInvalid, o.Kind)
	case "path":
		if o.Kind == object.KindLogical {
			return Value{Kind: ValStr, Str: o.Key}, nil
		}
		return Value{}, fmt.Errorf("query: %w: %s has no path", core.ErrInvalid, o.Kind)
	case "name":
		if o.Kind == object.KindRegion {
			return Value{Kind: ValStr, Str: o.Key}, nil
		}
		return Value{}, fmt.Errorf("query: %w: %s has no name", core.ErrInvalid, o.Kind)
	case "key":
		return Value{Kind: ValStr, Str: o.Key}, nil
	case "freq":
		if s, ok := ex.src.UsageOf(o.ID); ok {
			return Value{Kind: ValNum, Num: int64(s.Count)}, nil
		}
		return Value{Kind: ValNum, Num: 0}, nil
	case "lastref":
		if s, ok := ex.src.UsageOf(o.ID); ok {
			return Value{Kind: ValNum, Num: int64(s.LastRef)}, nil
		}
		return Value{Kind: ValNum, Num: int64(core.TimeNever)}, nil
	case "firstref":
		if s, ok := ex.src.UsageOf(o.ID); ok {
			return Value{Kind: ValNum, Num: int64(s.FirstRef)}, nil
		}
		return Value{Kind: ValNum, Num: int64(core.TimeNever)}, nil
	case "shared":
		if s, ok := ex.src.UsageOf(o.ID); ok {
			return Value{Kind: ValNum, Num: int64(s.Shared)}, nil
		}
		return Value{Kind: ValNum, Num: 0}, nil
	case "physicals":
		if o.Kind != object.KindLogical {
			return Value{}, fmt.Errorf("query: %w: %s has no physicals", core.ErrInvalid, o.Kind)
		}
		return ex.childSet(o), nil
	case "logicals":
		if o.Kind != object.KindRegion {
			return Value{}, fmt.Errorf("query: %w: %s has no logicals", core.ErrInvalid, o.Kind)
		}
		return ex.childSet(o), nil
	case "components":
		if o.Kind != object.KindPhysical {
			return Value{}, fmt.Errorf("query: %w: %s has no components", core.ErrInvalid, o.Kind)
		}
		return ex.childSet(o), nil
	default:
		return Value{}, fmt.Errorf("query: %w: unknown field %q", core.ErrInvalid, field)
	}
}

func (ex *executor) childSet(o *object.Object) Value {
	ids := ex.src.ChildrenOf(o.ID)
	set := make(map[core.ObjectID]bool, len(ids))
	for _, id := range ids {
		set[id] = true
	}
	return Value{Kind: ValIDSet, Set: set}
}

// eval evaluates a WHERE expression under the binding environment.
func (ex *executor) eval(e Expr, en *env) (Value, error) {
	switch n := e.(type) {
	case *LitExpr:
		if n.IsNum {
			return Value{Kind: ValNum, Num: n.Num}, nil
		}
		return Value{Kind: ValStr, Str: n.Str}, nil

	case *FieldExpr:
		o, ok := en.lookup(n.Ref.Alias)
		if !ok {
			return Value{}, fmt.Errorf("query: %w: unknown alias %q", core.ErrInvalid, n.Ref.Alias)
		}
		return ex.fieldValue(o, n.Ref.Field)

	case *NotExpr:
		v, err := ex.eval(n.X, en)
		if err != nil {
			return Value{}, err
		}
		if v.Kind != ValBool {
			return Value{}, fmt.Errorf("query: %w: NOT of non-boolean", core.ErrInvalid)
		}
		return Value{Kind: ValBool, Bool: !v.Bool}, nil

	case *BinExpr:
		return ex.evalBin(n, en)

	case *MentionExpr:
		o, ok := en.lookup(n.Field.Alias)
		if !ok {
			return Value{}, fmt.Errorf("query: %w: unknown alias %q", core.ErrInvalid, n.Field.Alias)
		}
		fv, err := ex.fieldValue(o, n.Field.Field)
		if err != nil {
			return Value{}, err
		}
		if fv.Kind != ValStr {
			return Value{}, fmt.Errorf("query: %w: MENTION on non-text field %q", core.ErrInvalid, n.Field.Field)
		}
		return Value{Kind: ValBool, Bool: mentionMatch(fv.Str, n.Phrase)}, nil

	case *InExpr:
		x, err := ex.eval(n.X, en)
		if err != nil {
			return Value{}, err
		}
		set, err := ex.evalSet(n.Set, en)
		if err != nil {
			return Value{}, err
		}
		if x.Kind != ValID {
			return Value{}, fmt.Errorf("query: %w: IN requires an oid on the left", core.ErrInvalid)
		}
		return Value{Kind: ValBool, Bool: set[x.ID]}, nil

	case *ExistsExpr:
		objs, err := ex.evalFrom(n.Sub, en)
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: ValBool, Bool: len(objs) > 0}, nil

	case *CallExpr:
		return ex.evalCall(n, en)

	default:
		return Value{}, fmt.Errorf("query: %w: unhandled expression %T", core.ErrInvalid, e)
	}
}

// evalSet evaluates the right side of IN into an ID set.
func (ex *executor) evalSet(e Expr, en *env) (map[core.ObjectID]bool, error) {
	switch n := e.(type) {
	case *SubqueryExpr:
		objs, err := ex.evalFrom(n.Sub, en)
		if err != nil {
			return nil, err
		}
		set := make(map[core.ObjectID]bool, len(objs))
		// The sub-query contributes its rows' IDs; the conventional form
		// "SELECT p.oid FROM ..." therefore behaves as expected whatever
		// the projection list says.
		for _, o := range objs {
			set[o.ID] = true
		}
		return set, nil
	case *FieldExpr:
		o, ok := en.lookup(n.Ref.Alias)
		if !ok {
			return nil, fmt.Errorf("query: %w: unknown alias %q", core.ErrInvalid, n.Ref.Alias)
		}
		v, err := ex.fieldValue(o, n.Ref.Field)
		if err != nil {
			return nil, err
		}
		if v.Kind != ValIDSet {
			return nil, fmt.Errorf("query: %w: field %q is not a set", core.ErrInvalid, n.Ref.Field)
		}
		return v.Set, nil
	default:
		return nil, fmt.Errorf("query: %w: IN requires a sub-query or set field", core.ErrInvalid)
	}
}

// evalCall implements the path functions end_at and start_at.
func (ex *executor) evalCall(c *CallExpr, en *env) (Value, error) {
	switch c.Name {
	case "end_at", "start_at":
		if len(c.Args) != 1 {
			return Value{}, fmt.Errorf("query: %w: %s takes one argument", core.ErrInvalid, c.Name)
		}
		f, ok := c.Args[0].(*FieldExpr)
		if !ok || f.Ref.Field != "oid" {
			return Value{}, fmt.Errorf("query: %w: %s requires an oid argument", core.ErrInvalid, c.Name)
		}
		o, ok := en.lookup(f.Ref.Alias)
		if !ok {
			return Value{}, fmt.Errorf("query: %w: unknown alias %q", core.ErrInvalid, f.Ref.Alias)
		}
		if o.Kind != object.KindLogical {
			return Value{}, fmt.Errorf("query: %w: %s applies to logical pages", core.ErrInvalid, c.Name)
		}
		kids := ex.src.ChildrenOf(o.ID)
		if len(kids) == 0 {
			return Value{Kind: ValID, ID: core.InvalidID}, nil
		}
		if c.Name == "start_at" {
			return Value{Kind: ValID, ID: kids[0]}, nil
		}
		return Value{Kind: ValID, ID: kids[len(kids)-1]}, nil
	default:
		return Value{}, fmt.Errorf("query: %w: unknown function %q", core.ErrInvalid, c.Name)
	}
}

// evalBin handles comparisons and logical connectives.
func (ex *executor) evalBin(n *BinExpr, en *env) (Value, error) {
	if n.Op == "AND" || n.Op == "OR" {
		l, err := ex.eval(n.L, en)
		if err != nil {
			return Value{}, err
		}
		if l.Kind != ValBool {
			return Value{}, fmt.Errorf("query: %w: %s of non-boolean", core.ErrInvalid, n.Op)
		}
		// Short circuit.
		if n.Op == "AND" && !l.Bool {
			return Value{Kind: ValBool, Bool: false}, nil
		}
		if n.Op == "OR" && l.Bool {
			return Value{Kind: ValBool, Bool: true}, nil
		}
		r, err := ex.eval(n.R, en)
		if err != nil {
			return Value{}, err
		}
		if r.Kind != ValBool {
			return Value{}, fmt.Errorf("query: %w: %s of non-boolean", core.ErrInvalid, n.Op)
		}
		return Value{Kind: ValBool, Bool: r.Bool}, nil
	}

	l, err := ex.eval(n.L, en)
	if err != nil {
		return Value{}, err
	}
	r, err := ex.eval(n.R, en)
	if err != nil {
		return Value{}, err
	}
	return compare(n.Op, l, r)
}

func compare(op string, l, r Value) (Value, error) {
	boolVal := func(b bool) (Value, error) { return Value{Kind: ValBool, Bool: b}, nil }
	switch {
	case l.Kind == ValNum && r.Kind == ValNum:
		switch op {
		case "=":
			return boolVal(l.Num == r.Num)
		case "!=":
			return boolVal(l.Num != r.Num)
		case "<":
			return boolVal(l.Num < r.Num)
		case "<=":
			return boolVal(l.Num <= r.Num)
		case ">":
			return boolVal(l.Num > r.Num)
		case ">=":
			return boolVal(l.Num >= r.Num)
		}
	case l.Kind == ValStr && r.Kind == ValStr:
		switch op {
		case "=":
			return boolVal(l.Str == r.Str)
		case "!=":
			return boolVal(l.Str != r.Str)
		case "<":
			return boolVal(l.Str < r.Str)
		case "<=":
			return boolVal(l.Str <= r.Str)
		case ">":
			return boolVal(l.Str > r.Str)
		case ">=":
			return boolVal(l.Str >= r.Str)
		}
	case l.Kind == ValID && r.Kind == ValID:
		switch op {
		case "=":
			return boolVal(l.ID == r.ID)
		case "!=":
			return boolVal(l.ID != r.ID)
		}
	}
	return Value{}, fmt.Errorf("query: %w: cannot compare %v %s %v", core.ErrInvalid, l.Kind, op, r.Kind)
}

// mentionMatch reports whether every canonical term of phrase occurs in
// the canonical term set of content — the MENTION semantics shared with
// text.InvertedIndex.Mention.
func mentionMatch(content, phrase string) bool {
	want := text.Terms(phrase)
	if len(want) == 0 {
		return false
	}
	have := make(map[string]bool)
	for _, t := range text.Terms(content) {
		have[t] = true
	}
	for _, t := range want {
		if !have[t] {
			return false
		}
	}
	return true
}
