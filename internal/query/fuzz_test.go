package query

import (
	"testing"

	"cbfww/internal/object"
)

// Native fuzz targets for the §4.3 query dialect: whatever bytes arrive,
// the lexer/parser must return (Query, nil) or (nil, error) — never panic
// — and any parse-accepted query must execute against an empty source
// without panicking. Run with
//
//	go test -fuzz FuzzParse ./internal/query/
//
// The seed corpus mixes well-formed §4.3 queries with the malformed shapes
// the robustness tests already exercise.

func fuzzSeeds(f *testing.F) {
	seeds := []string{
		"",
		"SELECT p.oid FROM Physical_Page p",
		"SELECT * FROM Physical_Page p WHERE p.size > 200,000",
		"SELECT MFU 3 l.path FROM Logical_Page l",
		"SELECT MFU 3 l.path FROM Logical_Page l WHERE end_at(l.oid) IN (SELECT p.oid FROM Physical_Page p)",
		"SELECT * FROM Semantic_Region r WHERE r.name MENTION 'x'",
		"SELECT LRU p.oid FROM Raw_Object p WHERE p.size > 0 AND NOT p.key = 'y'",
		"SELECT FROM WHERE",
		"SELECT p.oid FROM Physical_Page p WHERE p.url = 'unterminated",
		"SELECT ((((",
		"MENTION MENTION MENTION",
		"SELECT * FROM Physical_Page p WHERE p.freq >= 10 OR EXISTS (SELECT * FROM Logical_Page l)",
		"@#$ 末尾 ; , . != <=",
		"SELECT MRU 200,000 p.* FROM p",
	}
	for _, s := range seeds {
		f.Add(s)
	}
}

func FuzzParse(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err == nil && q == nil {
			t.Fatalf("Parse(%q) returned nil, nil", src)
		}
	})
}

func FuzzRunString(f *testing.F) {
	fuzzSeeds(f)
	empty := &fakeSource{h: object.NewHierarchy()}
	f.Fuzz(func(t *testing.T, src string) {
		// RunString must never panic: parse errors are returned, accepted
		// queries execute against the empty source.
		_, _ = RunString(src, empty)
	})
}
