package query

import (
	"errors"
	"strings"
	"testing"

	"cbfww/internal/core"
	"cbfww/internal/object"
	"cbfww/internal/usage"
)

// fakeSource is an in-memory Source for executor tests.
type fakeSource struct {
	h     *object.Hierarchy
	usage map[core.ObjectID]usage.Snapshot
	freq  map[core.ObjectID]float64
}

func (s *fakeSource) Rows(kind object.Kind) []*object.Object {
	var out []*object.Object
	s.h.ForEach(kind, func(o *object.Object) { out = append(out, o) })
	return out
}

func (s *fakeSource) UsageOf(id core.ObjectID) (usage.Snapshot, bool) {
	u, ok := s.usage[id]
	return u, ok
}

func (s *fakeSource) FrequencyOf(id core.ObjectID) float64 { return s.freq[id] }

func (s *fakeSource) ChildrenOf(id core.ObjectID) []core.ObjectID {
	return s.h.Children(id)
}

// newPaperSource builds the fixture used throughout: physical pages about
// several topics, logical pages over them, and usage data.
func newPaperSource(t *testing.T) *fakeSource {
	t.Helper()
	h := object.NewHierarchy()
	add := func(kind object.Kind, key, title, body string, size core.Bytes) *object.Object {
		o, err := h.Add(kind, key, size, title, body)
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
	p1 := add(object.KindPhysical, "http://a/dw.html", "data warehouse design", "warehouse architecture notes", 50_000)
	p2 := add(object.KindPhysical, "http://a/ds.html", "data stream systems", "stream processing survey", 300_000)
	p3 := add(object.KindPhysical, "http://www-db.cs.wisc.edu/cidr/", "CIDR 2003 conference", "innovative data systems research", 10_000)
	p4 := add(object.KindPhysical, "http://a/misc.html", "miscellany", "unrelated content", 250_000)

	l1 := add(object.KindLogical, "dw-path", "data warehouse tour", "warehouse architecture notes", 0)
	l2 := add(object.KindLogical, "cidr-via-dw", "to cidr via dw", "conference", 0)
	l3 := add(object.KindLogical, "cidr-direct", "to cidr directly", "conference", 0)
	for _, link := range [][2]core.ObjectID{
		{l1.ID, p1.ID}, {l1.ID, p2.ID},
		{l2.ID, p1.ID}, {l2.ID, p3.ID},
		{l3.ID, p4.ID}, {l3.ID, p3.ID},
	} {
		if err := h.Link(link[0], link[1]); err != nil {
			t.Fatal(err)
		}
	}
	return &fakeSource{
		h: h,
		usage: map[core.ObjectID]usage.Snapshot{
			p1.ID: {ID: p1.ID, Count: 20, LastRef: 100},
			p2.ID: {ID: p2.ID, Count: 5, LastRef: 300},
			p3.ID: {ID: p3.ID, Count: 50, LastRef: 200},
			l1.ID: {ID: l1.ID, Count: 8, LastRef: 90},
			l2.ID: {ID: l2.ID, Count: 13, LastRef: 95},
			l3.ID: {ID: l3.ID, Count: 4, LastRef: 400},
		},
		freq: map[core.ObjectID]float64{
			p1.ID: 20, p2.ID: 5, p3.ID: 50,
			l1.ID: 8, l2.ID: 13, l3.ID: 4,
		},
	}
}

func TestPaperQuery1MentionMRU(t *testing.T) {
	src := newPaperSource(t)
	rows, err := RunString(`
		SELECT MRU p.oid, p.title
		FROM Physical_Page p
		WHERE p.title MENTION 'data warehouse'`, src)
	if err != nil {
		t.Fatal(err)
	}
	// Only p1's title mentions both terms; bare MRU returns the single top.
	if len(rows) != 1 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Values[1].Str != "data warehouse design" {
		t.Errorf("title = %q", rows[0].Values[1].Str)
	}
}

func TestPaperQuery2ExistsCorrelated(t *testing.T) {
	src := newPaperSource(t)
	rows, err := RunString(`
		SELECT MFU 10 l.oid, l.path
		FROM Logical_Page l
		WHERE EXISTS
		( SELECT *
		  FROM Physical_Page p
		  WHERE p.oid IN l.physicals
		    AND p.size > 200,000);`, src)
	if err != nil {
		t.Fatal(err)
	}
	// l1 contains p2 (300KB) and l3 contains p4 (250KB); l2's pages are
	// smaller. MFU: l1 (freq 8) before l3 (freq 4).
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Values[1].Str != "dw-path" || rows[1].Values[1].Str != "cidr-direct" {
		t.Errorf("paths = %q, %q", rows[0].Values[1].Str, rows[1].Values[1].Str)
	}
}

func TestPaperQuery3EndAt(t *testing.T) {
	src := newPaperSource(t)
	rows, err := RunString(`
		SELECT MFU 5 l.path
		FROM Logical_Page l
		WHERE end_at(l.oid) IN
		( SELECT p.oid
		  FROM Physical_Page p
		  WHERE p.url = 'http://www-db.cs.wisc.edu/cidr/')`, src)
	if err != nil {
		t.Fatal(err)
	}
	// l2 and l3 end at the CIDR page; MFU puts l2 (13) first — "the most
	// popular way that users used for reaching CIDR 2003 home page".
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Values[0].Str != "cidr-via-dw" {
		t.Errorf("top path = %q", rows[0].Values[0].Str)
	}
}

func TestModifierOrderings(t *testing.T) {
	src := newPaperSource(t)
	get := func(q string) []core.ObjectID {
		t.Helper()
		rows, err := RunString(q, src)
		if err != nil {
			t.Fatal(err)
		}
		ids := make([]core.ObjectID, len(rows))
		for i, r := range rows {
			ids[i] = r.ID
		}
		return ids
	}
	mru := get("SELECT MRU 4 p.oid FROM Physical_Page p")
	if len(mru) != 4 || mru[0] != 2 { // p2 has LastRef 300
		t.Errorf("MRU = %v", mru)
	}
	lru := get("SELECT LRU 4 p.oid FROM Physical_Page p")
	// p4 has no usage at all -> TimeNever -> least recently used.
	if lru[0] != 4 {
		t.Errorf("LRU = %v", lru)
	}
	mfu := get("SELECT MFU 4 p.oid FROM Physical_Page p")
	if mfu[0] != 3 { // p3 freq 50
		t.Errorf("MFU = %v", mfu)
	}
	lfu := get("SELECT LFU 4 p.oid FROM Physical_Page p")
	if lfu[0] != 4 { // p4 freq 0
		t.Errorf("LFU = %v", lfu)
	}
}

func TestSelectStarAndNoModifier(t *testing.T) {
	src := newPaperSource(t)
	rows, err := RunString("SELECT * FROM Physical_Page p", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// SELECT * projects (oid, key).
	if rows[0].Values[0].Kind != ValID || rows[0].Values[1].Kind != ValStr {
		t.Errorf("star projection = %+v", rows[0].Values)
	}
}

func TestWhereComparisonsAndLogic(t *testing.T) {
	src := newPaperSource(t)
	rows, err := RunString(`
		SELECT p.url FROM Physical_Page p
		WHERE p.size >= 250,000 OR (p.freq > 10 AND NOT p.url = 'http://a/dw.html')`, src)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, r := range rows {
		got[r.Values[0].Str] = true
	}
	// size>=250k: p2, p4. freq>10 and not dw: p3.
	want := []string{"http://a/ds.html", "http://a/misc.html", "http://www-db.cs.wisc.edu/cidr/"}
	if len(got) != len(want) {
		t.Fatalf("rows = %v", got)
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("missing %q", w)
		}
	}
}

func TestUsageFields(t *testing.T) {
	src := newPaperSource(t)
	rows, err := RunString(`SELECT p.freq, p.lastref, p.shared FROM Physical_Page p WHERE p.url = 'http://a/dw.html'`, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatal("no row")
	}
	if rows[0].Values[0].Num != 20 || rows[0].Values[1].Num != 100 {
		t.Errorf("values = %+v", rows[0].Values)
	}
}

func TestStartAtFunction(t *testing.T) {
	src := newPaperSource(t)
	rows, err := RunString(`
		SELECT l.path FROM Logical_Page l
		WHERE start_at(l.oid) IN
		(SELECT p.oid FROM Physical_Page p WHERE p.url = 'http://a/dw.html')`, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 { // l1 and l2 start at p1
		t.Fatalf("rows = %+v", rows)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT p.oid",
		"SELECT p.oid FROM Nothing n",
		"SELECT p.oid FROM Physical_Page",
		"SELECT p.oid FROM Physical_Page p WHERE",
		"SELECT p.oid FROM Physical_Page p WHERE p.size >",
		"SELECT p.oid FROM Physical_Page p WHERE p.title MENTION",
		"SELECT p.oid FROM Physical_Page p WHERE p.title MENTION p.body",
		"SELECT p.oid FROM Physical_Page p WHERE EXISTS p.oid",
		"SELECT p.oid FROM Physical_Page p extra",
		"SELECT p.oid FROM Physical_Page p WHERE p.size = 'x",
		"SELECT MFU 0 p.oid FROM Physical_Page p",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) succeeded", q)
		} else if !errors.Is(err, core.ErrInvalid) {
			t.Errorf("Parse(%q) err = %v, want ErrInvalid", q, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	src := newPaperSource(t)
	bad := []string{
		// Non-boolean WHERE is impossible to parse in this grammar, but
		// type errors at evaluation are:
		"SELECT p.oid FROM Physical_Page p WHERE p.size = 'text'",
		"SELECT p.oid FROM Physical_Page p WHERE p.nosuchfield = 1",
		"SELECT p.path FROM Physical_Page p",
		"SELECT q.oid FROM Physical_Page p",
		"SELECT p.oid FROM Physical_Page p WHERE end_at(p.oid) IN p.components",
		"SELECT l.oid FROM Logical_Page l WHERE l.oid IN l.path",
	}
	for _, q := range bad {
		if _, err := RunString(q, src); err == nil {
			t.Errorf("RunString(%q) succeeded", q)
		}
	}
}

func TestNumberWithThousandsSeparators(t *testing.T) {
	q, err := Parse("SELECT p.oid FROM Physical_Page p WHERE p.size > 200,000")
	if err != nil {
		t.Fatal(err)
	}
	in, ok := q.Where.(*BinExpr)
	if !ok {
		t.Fatalf("where = %T", q.Where)
	}
	lit, ok := in.R.(*LitExpr)
	if !ok || lit.Num != 200000 {
		t.Errorf("literal = %+v", in.R)
	}
}

func TestModifierDefaults(t *testing.T) {
	q, err := Parse("SELECT MRU p.oid FROM Physical_Page p")
	if err != nil {
		t.Fatal(err)
	}
	if q.Modifier != ModMRU || q.Limit != 1 {
		t.Errorf("modifier = %v limit = %d", q.Modifier, q.Limit)
	}
	q2, err := Parse("SELECT MFU, l.path FROM Logical_Page l")
	if err != nil {
		t.Fatal(err)
	}
	if q2.Modifier != ModMFU || len(q2.Fields) != 1 {
		t.Errorf("q2 = %+v", q2)
	}
	q3, err := Parse("SELECT p.oid FROM Physical_Page p")
	if err != nil {
		t.Fatal(err)
	}
	if q3.Modifier != ModNone || q3.Limit != 0 {
		t.Errorf("q3 = %+v", q3)
	}
}

func TestValueAndASTStrings(t *testing.T) {
	if ModMFU.String() != "MFU" || ModNone.String() != "" {
		t.Error("modifier strings")
	}
	v := Value{Kind: ValIDSet, Set: map[core.ObjectID]bool{1: true}}
	if !strings.Contains(v.String(), "1 ids") {
		t.Errorf("set value string = %q", v.String())
	}
	q, err := Parse(`SELECT l.path FROM Logical_Page l WHERE NOT end_at(l.oid) IN (SELECT p.oid FROM Physical_Page p) AND l.path MENTION 'x'`)
	if err != nil {
		t.Fatal(err)
	}
	s := q.Where.(*BinExpr).String()
	for _, want := range []string{"NOT", "end_at", "MENTION"} {
		if !strings.Contains(s, want) {
			t.Errorf("AST string %q missing %q", s, want)
		}
	}
	if ClassForKind(object.KindLogical) != "Logical_Page" {
		t.Error("ClassForKind")
	}
	if _, ok := KindForClass("PHYSICAL_PAGE"); !ok {
		t.Error("case-insensitive class lookup failed")
	}
}

func TestMentionMatchSemantics(t *testing.T) {
	if !mentionMatch("Data Warehouses and their design", "data warehouse") {
		t.Error("stemmed conjunctive match failed")
	}
	if mentionMatch("data only", "data warehouse") {
		t.Error("partial phrase matched")
	}
	if mentionMatch("anything", "") {
		t.Error("empty phrase matched")
	}
}
