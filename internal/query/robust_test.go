package query

import (
	"math/rand"
	"strings"
	"testing"

	"cbfww/internal/object"
)

// The parser must never panic, whatever garbage arrives — it either
// returns a Query or an error. Pseudo-fuzz with random token soup built
// from the grammar's own vocabulary plus junk.
func TestParseNeverPanics(t *testing.T) {
	vocab := []string{
		"SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "IN", "EXISTS",
		"MENTION", "MRU", "MFU", "LRU", "LFU", "Physical_Page",
		"Logical_Page", "p", "l", ".", ",", "(", ")", "*", "=", "!=",
		"<", ">", ">=", "<=", "oid", "url", "path", "size", "freq",
		"physicals", "end_at", "start_at", "'text'", "\"quoted\"", "10",
		"200,000", ";", "'unterminated", "@#$", "末尾",
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		n := rng.Intn(20)
		parts := make([]string, n)
		for j := range parts {
			parts[j] = vocab[rng.Intn(len(vocab))]
		}
		src := strings.Join(parts, " ")
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Parse(%q) panicked: %v", src, r)
				}
			}()
			q, err := Parse(src)
			if err == nil && q == nil {
				t.Fatalf("Parse(%q) returned nil, nil", src)
			}
		}()
	}
}

// Same for the executor: any parse-accepted query must run without
// panicking against an empty source.
func TestRunNeverPanicsOnEmptySource(t *testing.T) {
	empty := &fakeSource{h: object.NewHierarchy()}
	queries := []string{
		"SELECT p.oid FROM Physical_Page p",
		"SELECT MFU 3 l.path FROM Logical_Page l WHERE end_at(l.oid) IN (SELECT p.oid FROM Physical_Page p)",
		"SELECT * FROM Semantic_Region r WHERE r.name MENTION 'x'",
		"SELECT LRU p.oid FROM Raw_Object p WHERE p.size > 0 AND NOT p.key = 'y'",
	}
	for _, src := range queries {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("RunString(%q) panicked: %v", src, r)
				}
			}()
			if rows, err := RunString(src, empty); err == nil && rows == nil {
				// Empty result on empty source is the expected outcome.
				_ = rows
			}
		}()
	}
}
