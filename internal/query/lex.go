// Package query implements the popularity-aware query language of §4.3: an
// OQL-like dialect whose SELECT clause accepts the usage modifiers MRU,
// LRU, MFU and LFU ("used the same way as DISTINCT keyword in SQL
// syntax"), and whose WHERE clause supports MENTION (full-text
// containment), IN over sub-queries and object-set fields, EXISTS with
// correlated sub-queries, and the end_at()/start_at() path functions.
//
// All three example queries from the paper parse and run:
//
//	SELECT MRU p.oid, p.title FROM Physical_Page p
//	WHERE p.title MENTION 'data warehouse'
//
//	SELECT MFU 10 l.oid, l.path FROM Logical_Page l
//	WHERE EXISTS (SELECT * FROM Physical_Page p
//	              WHERE p.oid IN l.physicals AND p.size > 200,000)
//
//	SELECT MFU l.path FROM Logical_Page l
//	WHERE end_at(l.oid) IN (SELECT p.oid FROM Physical_Page p
//	                        WHERE p.url = 'http://www-db.cs.wisc.edu/cidr/')
package query

import (
	"fmt"
	"strings"
	"unicode"

	"cbfww/internal/core"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokComma
	tokDot
	tokLParen
	tokRParen
	tokStar
	tokOp // = != < <= > >=
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of query"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer produces tokens from the query text.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the whole input up front (queries are short).
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, t)
		if t.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == ',':
		l.pos++
		return token{tokComma, ",", start}, nil
	case c == '.':
		l.pos++
		return token{tokDot, ".", start}, nil
	case c == '(':
		l.pos++
		return token{tokLParen, "(", start}, nil
	case c == ')':
		l.pos++
		return token{tokRParen, ")", start}, nil
	case c == '*':
		l.pos++
		return token{tokStar, "*", start}, nil
	case c == ';':
		// Trailing semicolons are permitted and ignored.
		l.pos++
		return l.next()
	case c == '=', c == '<', c == '>', c == '!':
		op := string(c)
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			op += "="
			l.pos++
		}
		if op == "!" {
			return token{}, fmt.Errorf("query: %w: lone '!' at %d", core.ErrInvalid, start)
		}
		return token{tokOp, op, start}, nil
	case c == '\'' || c == '"':
		quote := c
		l.pos++
		var b strings.Builder
		for l.pos < len(l.src) && l.src[l.pos] != quote {
			b.WriteByte(l.src[l.pos])
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, fmt.Errorf("query: %w: unterminated string at %d", core.ErrInvalid, start)
		}
		l.pos++ // closing quote
		return token{tokString, b.String(), start}, nil
	case c >= '0' && c <= '9':
		var b strings.Builder
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch >= '0' && ch <= '9' {
				b.WriteByte(ch)
				l.pos++
				continue
			}
			// The paper writes sizes with thousands separators: 200,000.
			// A comma is part of the number only when a digit follows.
			if ch == ',' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
				l.pos++
				continue
			}
			break
		}
		return token{tokNumber, b.String(), start}, nil
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		return token{tokIdent, l.src[start:l.pos], start}, nil
	default:
		return token{}, fmt.Errorf("query: %w: unexpected character %q at %d", core.ErrInvalid, c, start)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
