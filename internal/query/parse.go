package query

import (
	"fmt"
	"strconv"
	"strings"

	"cbfww/internal/core"
)

// Parse parses one SELECT statement.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF) {
		return nil, p.errf("unexpected %s after query", p.peek())
	}
	return q, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) at(k tokenKind) bool { return p.peek().kind == k }

// atKeyword reports whether the next token is the given keyword
// (case-insensitive).
func (p *parser) atKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) expectKeyword(kw string) error {
	if !p.atKeyword(kw) {
		return p.errf("expected %s, found %s", kw, p.peek())
	}
	p.advance()
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("query: %w: %s (at offset %d)",
		core.ErrInvalid, fmt.Sprintf(format, args...), p.peek().pos)
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	q := &Query{}

	// Optional usage modifier, optional count, optional comma (the paper
	// writes both "SELECT MFU 10 l.oid" and "SELECT MFU, l.path").
	if m := parseModifier(p.peek()); m != ModNone {
		p.advance()
		q.Modifier = m
		q.Limit = 1
		if p.at(tokNumber) {
			n, err := strconv.Atoi(p.advance().text)
			if err != nil || n < 1 {
				return nil, p.errf("bad modifier count")
			}
			q.Limit = n
		}
		if p.at(tokComma) {
			p.advance()
		}
	}

	// Projection: * or field list.
	if p.at(tokStar) {
		p.advance()
	} else {
		for {
			f, err := p.parseFieldRef()
			if err != nil {
				return nil, err
			}
			q.Fields = append(q.Fields, f)
			if !p.at(tokComma) {
				break
			}
			p.advance()
		}
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	if !p.at(tokIdent) {
		return nil, p.errf("expected class name, found %s", p.peek())
	}
	className := p.advance().text
	kind, ok := KindForClass(className)
	if !ok {
		return nil, p.errf("unknown class %q", className)
	}
	q.Class = kind
	if !p.at(tokIdent) || isKeyword(p.peek().text) {
		return nil, p.errf("expected alias after class, found %s", p.peek())
	}
	q.Alias = p.advance().text

	if p.atKeyword("WHERE") {
		p.advance()
		w, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		q.Where = w
	}
	return q, nil
}

func parseModifier(t token) Modifier {
	if t.kind != tokIdent {
		return ModNone
	}
	switch strings.ToUpper(t.text) {
	case "MRU":
		return ModMRU
	case "LRU":
		return ModLRU
	case "MFU":
		return ModMFU
	case "LFU":
		return ModLFU
	default:
		return ModNone
	}
}

var keywords = map[string]bool{
	"select": true, "from": true, "where": true, "and": true, "or": true,
	"not": true, "in": true, "exists": true, "mention": true,
	"mru": true, "lru": true, "mfu": true, "lfu": true,
}

func isKeyword(s string) bool { return keywords[strings.ToLower(s)] }

func (p *parser) parseFieldRef() (FieldRef, error) {
	if !p.at(tokIdent) {
		return FieldRef{}, p.errf("expected field reference, found %s", p.peek())
	}
	alias := p.advance().text
	if !p.at(tokDot) {
		return FieldRef{}, p.errf("expected '.' after %q", alias)
	}
	p.advance()
	if !p.at(tokIdent) {
		return FieldRef{}, p.errf("expected field name after '%s.'", alias)
	}
	field := p.advance().text
	return FieldRef{Alias: alias, Field: strings.ToLower(field)}, nil
}

// parseOr handles OR (lowest precedence).
func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("OR") {
		p.advance()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("AND") {
		p.advance()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.atKeyword("NOT") {
		p.advance()
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{X: x}, nil
	}
	return p.parsePredicate()
}

// parsePredicate handles EXISTS, comparisons, MENTION and IN.
func (p *parser) parsePredicate() (Expr, error) {
	if p.atKeyword("EXISTS") {
		p.advance()
		if !p.at(tokLParen) {
			return nil, p.errf("expected '(' after EXISTS")
		}
		p.advance()
		sub, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		if !p.at(tokRParen) {
			return nil, p.errf("expected ')' closing EXISTS, found %s", p.peek())
		}
		p.advance()
		return &ExistsExpr{Sub: sub}, nil
	}
	if p.at(tokLParen) {
		// Parenthesized boolean expression.
		p.advance()
		x, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if !p.at(tokRParen) {
			return nil, p.errf("expected ')', found %s", p.peek())
		}
		p.advance()
		return x, nil
	}

	left, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	switch {
	case p.atKeyword("MENTION"):
		p.advance()
		f, ok := left.(*FieldExpr)
		if !ok {
			return nil, p.errf("MENTION requires a field on the left")
		}
		if !p.at(tokString) {
			return nil, p.errf("MENTION requires a quoted phrase")
		}
		phrase := p.advance().text
		return &MentionExpr{Field: f.Ref, Phrase: phrase}, nil
	case p.atKeyword("IN"):
		p.advance()
		set, err := p.parseSetOperand()
		if err != nil {
			return nil, err
		}
		return &InExpr{X: left, Set: set}, nil
	case p.at(tokOp):
		op := p.advance().text
		right, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		return &BinExpr{Op: op, L: left, R: right}, nil
	default:
		return nil, p.errf("expected comparison, MENTION or IN, found %s", p.peek())
	}
}

// parseOperand parses a field reference, function call or literal.
func (p *parser) parseOperand() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokString:
		p.advance()
		return &LitExpr{Str: t.text}, nil
	case tokNumber:
		p.advance()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return &LitExpr{Num: n, IsNum: true}, nil
	case tokIdent:
		// Function call: name(args).
		if p.pos+1 < len(p.toks) && p.toks[p.pos+1].kind == tokLParen {
			name := strings.ToLower(p.advance().text)
			p.advance() // (
			var args []Expr
			if !p.at(tokRParen) {
				for {
					a, err := p.parseOperand()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.at(tokComma) {
						break
					}
					p.advance()
				}
			}
			if !p.at(tokRParen) {
				return nil, p.errf("expected ')' closing %s(", name)
			}
			p.advance()
			return &CallExpr{Name: name, Args: args}, nil
		}
		f, err := p.parseFieldRef()
		if err != nil {
			return nil, err
		}
		return &FieldExpr{Ref: f}, nil
	default:
		return nil, p.errf("expected operand, found %s", t)
	}
}

// parseSetOperand parses the right side of IN: a sub-query in parentheses
// or a set-valued field.
func (p *parser) parseSetOperand() (Expr, error) {
	if p.at(tokLParen) {
		p.advance()
		sub, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		if !p.at(tokRParen) {
			return nil, p.errf("expected ')' closing sub-query, found %s", p.peek())
		}
		p.advance()
		return &SubqueryExpr{Sub: sub}, nil
	}
	f, err := p.parseFieldRef()
	if err != nil {
		return nil, err
	}
	return &FieldExpr{Ref: f}, nil
}
